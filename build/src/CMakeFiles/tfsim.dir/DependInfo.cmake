
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch_state.cpp" "src/CMakeFiles/tfsim.dir/arch/arch_state.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/arch/arch_state.cpp.o.d"
  "/root/repo/src/arch/functional_sim.cpp" "src/CMakeFiles/tfsim.dir/arch/functional_sim.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/arch/functional_sim.cpp.o.d"
  "/root/repo/src/arch/memory.cpp" "src/CMakeFiles/tfsim.dir/arch/memory.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/arch/memory.cpp.o.d"
  "/root/repo/src/arch/syscall.cpp" "src/CMakeFiles/tfsim.dir/arch/syscall.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/arch/syscall.cpp.o.d"
  "/root/repo/src/arch/tlb.cpp" "src/CMakeFiles/tfsim.dir/arch/tlb.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/arch/tlb.cpp.o.d"
  "/root/repo/src/inject/cache.cpp" "src/CMakeFiles/tfsim.dir/inject/cache.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/cache.cpp.o.d"
  "/root/repo/src/inject/campaign.cpp" "src/CMakeFiles/tfsim.dir/inject/campaign.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/campaign.cpp.o.d"
  "/root/repo/src/inject/golden.cpp" "src/CMakeFiles/tfsim.dir/inject/golden.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/golden.cpp.o.d"
  "/root/repo/src/inject/outcome.cpp" "src/CMakeFiles/tfsim.dir/inject/outcome.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/outcome.cpp.o.d"
  "/root/repo/src/inject/report.cpp" "src/CMakeFiles/tfsim.dir/inject/report.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/report.cpp.o.d"
  "/root/repo/src/inject/trial.cpp" "src/CMakeFiles/tfsim.dir/inject/trial.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/inject/trial.cpp.o.d"
  "/root/repo/src/isa/assemble.cpp" "src/CMakeFiles/tfsim.dir/isa/assemble.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/isa/assemble.cpp.o.d"
  "/root/repo/src/isa/decode.cpp" "src/CMakeFiles/tfsim.dir/isa/decode.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/isa/decode.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/tfsim.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/tfsim.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/isa/isa.cpp.o.d"
  "/root/repo/src/protect/ecc.cpp" "src/CMakeFiles/tfsim.dir/protect/ecc.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/protect/ecc.cpp.o.d"
  "/root/repo/src/soft/soft_inject.cpp" "src/CMakeFiles/tfsim.dir/soft/soft_inject.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/soft/soft_inject.cpp.o.d"
  "/root/repo/src/state/state_registry.cpp" "src/CMakeFiles/tfsim.dir/state/state_registry.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/state/state_registry.cpp.o.d"
  "/root/repo/src/uarch/bpred.cpp" "src/CMakeFiles/tfsim.dir/uarch/bpred.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/bpred.cpp.o.d"
  "/root/repo/src/uarch/core.cpp" "src/CMakeFiles/tfsim.dir/uarch/core.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/core.cpp.o.d"
  "/root/repo/src/uarch/dcache.cpp" "src/CMakeFiles/tfsim.dir/uarch/dcache.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/dcache.cpp.o.d"
  "/root/repo/src/uarch/decode_stage.cpp" "src/CMakeFiles/tfsim.dir/uarch/decode_stage.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/decode_stage.cpp.o.d"
  "/root/repo/src/uarch/execute.cpp" "src/CMakeFiles/tfsim.dir/uarch/execute.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/execute.cpp.o.d"
  "/root/repo/src/uarch/fetch.cpp" "src/CMakeFiles/tfsim.dir/uarch/fetch.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/fetch.cpp.o.d"
  "/root/repo/src/uarch/icache.cpp" "src/CMakeFiles/tfsim.dir/uarch/icache.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/icache.cpp.o.d"
  "/root/repo/src/uarch/lsq.cpp" "src/CMakeFiles/tfsim.dir/uarch/lsq.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/lsq.cpp.o.d"
  "/root/repo/src/uarch/regfile.cpp" "src/CMakeFiles/tfsim.dir/uarch/regfile.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/regfile.cpp.o.d"
  "/root/repo/src/uarch/rename.cpp" "src/CMakeFiles/tfsim.dir/uarch/rename.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/rename.cpp.o.d"
  "/root/repo/src/uarch/rob.cpp" "src/CMakeFiles/tfsim.dir/uarch/rob.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/rob.cpp.o.d"
  "/root/repo/src/uarch/scheduler.cpp" "src/CMakeFiles/tfsim.dir/uarch/scheduler.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/scheduler.cpp.o.d"
  "/root/repo/src/uarch/store_sets.cpp" "src/CMakeFiles/tfsim.dir/uarch/store_sets.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/store_sets.cpp.o.d"
  "/root/repo/src/uarch/trace.cpp" "src/CMakeFiles/tfsim.dir/uarch/trace.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/uarch/trace.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/tfsim.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/util/env.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/tfsim.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/tfsim.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/tfsim.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/util/table.cpp.o.d"
  "/root/repo/src/workloads/programs_compress.cpp" "src/CMakeFiles/tfsim.dir/workloads/programs_compress.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/workloads/programs_compress.cpp.o.d"
  "/root/repo/src/workloads/programs_misc.cpp" "src/CMakeFiles/tfsim.dir/workloads/programs_misc.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/workloads/programs_misc.cpp.o.d"
  "/root/repo/src/workloads/programs_pointer.cpp" "src/CMakeFiles/tfsim.dir/workloads/programs_pointer.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/workloads/programs_pointer.cpp.o.d"
  "/root/repo/src/workloads/workloads.cpp" "src/CMakeFiles/tfsim.dir/workloads/workloads.cpp.o" "gcc" "src/CMakeFiles/tfsim.dir/workloads/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
