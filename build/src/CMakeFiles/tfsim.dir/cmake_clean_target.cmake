file(REMOVE_RECURSE
  "libtfsim.a"
)
