src/CMakeFiles/tfsim.dir/workloads/programs_compress.cpp.o: \
 /root/repo/src/workloads/programs_compress.cpp \
 /usr/include/stdc-predef.h /root/repo/src/workloads/programs.h
