src/CMakeFiles/tfsim.dir/workloads/programs_misc.cpp.o: \
 /root/repo/src/workloads/programs_misc.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs.h
