src/CMakeFiles/tfsim.dir/workloads/programs_pointer.cpp.o: \
 /root/repo/src/workloads/programs_pointer.cpp /usr/include/stdc-predef.h \
 /root/repo/src/workloads/programs.h
