# Empty dependencies file for tfsim.
# This may be replaced when dependencies are built.
