
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alu.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_alu.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_alu.cpp.o.d"
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_core_memory.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_core_memory.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_core_memory.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_ecc.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_ecc.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_ecc.cpp.o.d"
  "/root/repo/tests/test_fault_totality.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_fault_totality.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_fault_totality.cpp.o.d"
  "/root/repo/tests/test_functional.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_functional.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_functional.cpp.o.d"
  "/root/repo/tests/test_golden_more.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_golden_more.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_golden_more.cpp.o.d"
  "/root/repo/tests/test_inject.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_inject.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_inject.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_protection.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_protection.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_protection.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_soft.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_soft.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_soft.cpp.o.d"
  "/root/repo/tests/test_state_registry.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_state_registry.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_state_registry.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trial_classification.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_trial_classification.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_trial_classification.cpp.o.d"
  "/root/repo/tests/test_uop.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_uop.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_uop.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/tfsim_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/tfsim_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tfsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
