# Empty dependencies file for tfsim_tests.
# This may be replaced when dependencies are built.
