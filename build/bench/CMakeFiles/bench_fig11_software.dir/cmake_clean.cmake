file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_software.dir/bench_fig11_software.cpp.o"
  "CMakeFiles/bench_fig11_software.dir/bench_fig11_software.cpp.o.d"
  "bench_fig11_software"
  "bench_fig11_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
