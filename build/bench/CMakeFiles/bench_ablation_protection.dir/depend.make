# Empty dependencies file for bench_ablation_protection.
# This may be replaced when dependencies are built.
