file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_protection.dir/bench_ablation_protection.cpp.o"
  "CMakeFiles/bench_ablation_protection.dir/bench_ablation_protection.cpp.o.d"
  "bench_ablation_protection"
  "bench_ablation_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
