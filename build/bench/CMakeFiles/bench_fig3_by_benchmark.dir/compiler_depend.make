# Empty compiler generated dependencies file for bench_fig3_by_benchmark.
# This may be replaced when dependencies are built.
