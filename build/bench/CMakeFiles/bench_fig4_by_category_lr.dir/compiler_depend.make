# Empty compiler generated dependencies file for bench_fig4_by_category_lr.
# This may be replaced when dependencies are built.
