file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_by_category_lr.dir/bench_fig4_by_category_lr.cpp.o"
  "CMakeFiles/bench_fig4_by_category_lr.dir/bench_fig4_by_category_lr.cpp.o.d"
  "bench_fig4_by_category_lr"
  "bench_fig4_by_category_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_by_category_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
