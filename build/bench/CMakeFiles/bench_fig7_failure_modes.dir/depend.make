# Empty dependencies file for bench_fig7_failure_modes.
# This may be replaced when dependencies are built.
