file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_protected_contrib.dir/bench_fig10_protected_contrib.cpp.o"
  "CMakeFiles/bench_fig10_protected_contrib.dir/bench_fig10_protected_contrib.cpp.o.d"
  "bench_fig10_protected_contrib"
  "bench_fig10_protected_contrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_protected_contrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
