# Empty compiler generated dependencies file for bench_fig10_protected_contrib.
# This may be replaced when dependencies are built.
