# Empty dependencies file for bench_fig8_contributions.
# This may be replaced when dependencies are built.
