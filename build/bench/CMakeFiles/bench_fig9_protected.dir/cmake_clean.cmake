file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_protected.dir/bench_fig9_protected.cpp.o"
  "CMakeFiles/bench_fig9_protected.dir/bench_fig9_protected.cpp.o.d"
  "bench_fig9_protected"
  "bench_fig9_protected.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_protected.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
