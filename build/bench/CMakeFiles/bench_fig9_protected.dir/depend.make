# Empty dependencies file for bench_fig9_protected.
# This may be replaced when dependencies are built.
