file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_by_category_l.dir/bench_fig5_by_category_l.cpp.o"
  "CMakeFiles/bench_fig5_by_category_l.dir/bench_fig5_by_category_l.cpp.o.d"
  "bench_fig5_by_category_l"
  "bench_fig5_by_category_l.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_by_category_l.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
