# Empty compiler generated dependencies file for bench_fig5_by_category_l.
# This may be replaced when dependencies are built.
