file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multibit.dir/bench_ext_multibit.cpp.o"
  "CMakeFiles/bench_ext_multibit.dir/bench_ext_multibit.cpp.o.d"
  "bench_ext_multibit"
  "bench_ext_multibit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
