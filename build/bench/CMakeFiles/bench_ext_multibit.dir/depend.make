# Empty dependencies file for bench_ext_multibit.
# This may be replaced when dependencies are built.
