file(REMOVE_RECURSE
  "CMakeFiles/tfi.dir/__/tools/tfi.cpp.o"
  "CMakeFiles/tfi.dir/__/tools/tfi.cpp.o.d"
  "tfi"
  "tfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
