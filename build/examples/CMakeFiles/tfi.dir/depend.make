# Empty dependencies file for tfi.
# This may be replaced when dependencies are built.
