file(REMOVE_RECURSE
  "CMakeFiles/cosim_smoke.dir/__/tools/cosim_smoke.cpp.o"
  "CMakeFiles/cosim_smoke.dir/__/tools/cosim_smoke.cpp.o.d"
  "cosim_smoke"
  "cosim_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
