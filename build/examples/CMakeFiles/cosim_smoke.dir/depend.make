# Empty dependencies file for cosim_smoke.
# This may be replaced when dependencies are built.
