file(REMOVE_RECURSE
  "CMakeFiles/software_fault_models.dir/software_fault_models.cpp.o"
  "CMakeFiles/software_fault_models.dir/software_fault_models.cpp.o.d"
  "software_fault_models"
  "software_fault_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/software_fault_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
