# Empty dependencies file for software_fault_models.
# This may be replaced when dependencies are built.
