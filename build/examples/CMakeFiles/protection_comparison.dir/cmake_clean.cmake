file(REMOVE_RECURSE
  "CMakeFiles/protection_comparison.dir/protection_comparison.cpp.o"
  "CMakeFiles/protection_comparison.dir/protection_comparison.cpp.o.d"
  "protection_comparison"
  "protection_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protection_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
