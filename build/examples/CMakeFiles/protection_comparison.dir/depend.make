# Empty dependencies file for protection_comparison.
# This may be replaced when dependencies are built.
