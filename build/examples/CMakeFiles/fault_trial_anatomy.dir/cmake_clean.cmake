file(REMOVE_RECURSE
  "CMakeFiles/fault_trial_anatomy.dir/fault_trial_anatomy.cpp.o"
  "CMakeFiles/fault_trial_anatomy.dir/fault_trial_anatomy.cpp.o.d"
  "fault_trial_anatomy"
  "fault_trial_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_trial_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
