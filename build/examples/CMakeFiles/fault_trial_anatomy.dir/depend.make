# Empty dependencies file for fault_trial_anatomy.
# This may be replaced when dependencies are built.
