file(REMOVE_RECURSE
  "CMakeFiles/campaign_smoke.dir/__/tools/campaign_smoke.cpp.o"
  "CMakeFiles/campaign_smoke.dir/__/tools/campaign_smoke.cpp.o.d"
  "campaign_smoke"
  "campaign_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
