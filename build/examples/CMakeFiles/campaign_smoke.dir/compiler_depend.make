# Empty compiler generated dependencies file for campaign_smoke.
# This may be replaced when dependencies are built.
