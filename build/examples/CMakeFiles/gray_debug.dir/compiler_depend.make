# Empty compiler generated dependencies file for gray_debug.
# This may be replaced when dependencies are built.
