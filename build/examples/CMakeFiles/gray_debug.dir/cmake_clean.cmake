file(REMOVE_RECURSE
  "CMakeFiles/gray_debug.dir/__/tools/gray_debug.cpp.o"
  "CMakeFiles/gray_debug.dir/__/tools/gray_debug.cpp.o.d"
  "gray_debug"
  "gray_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gray_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
