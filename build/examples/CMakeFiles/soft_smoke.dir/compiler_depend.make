# Empty compiler generated dependencies file for soft_smoke.
# This may be replaced when dependencies are built.
