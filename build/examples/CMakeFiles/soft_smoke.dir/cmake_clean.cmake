file(REMOVE_RECURSE
  "CMakeFiles/soft_smoke.dir/__/tools/soft_smoke.cpp.o"
  "CMakeFiles/soft_smoke.dir/__/tools/soft_smoke.cpp.o.d"
  "soft_smoke"
  "soft_smoke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
