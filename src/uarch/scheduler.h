// Dynamic scheduler: 32 entries with speculative wakeup and instruction
// replay (Figure 2). Entries hold the full renamed payload (the paper's
// "scheduler payload" RAM). An entry is NOT freed at issue — only once its
// instruction is known to complete — which the paper calls out as a source
// of dead-but-allocated state.
//
// Speculative wakeup: when a load issues, consumers are woken assuming a
// cache hit; if the load misses, a kill broadcast un-readies the load's
// destination tag everywhere and reverts speculatively issued consumers to
// waiting (replay).
#pragma once

#include <cstdint>
#include <optional>

#include "state/state_registry.h"
#include "uarch/config.h"
#include "uarch/uop.h"

namespace tfsim {

class Scheduler {
 public:
  Scheduler(StateRegistry& reg, const CoreConfig& cfg);

  std::uint64_t entries() const { return entries_; }

  // Index of a free entry, if any (round-robin from the allocation pointer
  // so every payload slot is recycled — matching circular allocation in
  // real schedulers and keeping dead slots from going stale).
  std::optional<std::size_t> FreeEntry() const;
  // Advances the allocation pointer past a just-filled entry.
  void NoteAllocated(std::size_t i);
  int Occupancy() const;

  // Marks srcs whose physical register broadcast just happened as ready.
  void Wakeup(std::uint64_t preg);
  // Reverts a speculative wakeup of `preg` (load miss replay): clears ready
  // bits that match and moves issued-but-incomplete consumers back to
  // waiting (the core separately poisons their in-flight latch copies).
  void KillWakeup(std::uint64_t preg, std::uint64_t loader_entry);

  // A store with this ROB tag executed: clears matching wait_store fields.
  void StoreExecuted(std::uint64_t rob_tag);

  void Free(std::size_t i) { valid.Set(i, 0); }
  void Clear();

  // Entry state values (2-bit `state` field).
  static constexpr std::uint64_t kWaiting = 0;
  static constexpr std::uint64_t kIssued = 1;

  bool ReadyToIssue(std::size_t i) const;

  // --- payload fields (all RAM-class, injectable) ----------------------------
  StateField valid;        // 1 (valid)
  StateField state;        // 2 (ctrl): waiting / issued
  StateField ctrl;         // 26-bit packed control word (ctrl)
  StateField insn;         // 32-bit instruction word (insn)
  StateField parity;       // 1 (parity), when enabled
  StateField pc;           // 62 (pc)
  StateField pred_taken;   // 1 (ctrl)
  StateField pred_target;  // 62 (pc)
  StateField ras_ckpt;     // 3 (ctrl): RAS pointer checkpoint
  StateField src1p, src1_ecc, src1_rdy;  // 7 (regptr) / 4 (ecc) / 1 (ctrl)
  StateField src2p, src2_ecc, src2_rdy;
  StateField dstp, dst_ecc;  // 7 (regptr) / 4 (ecc)
  StateField has_dst;      // 1 (ctrl)
  StateField robtag;       // 6 (robptr)
  StateField lsq_idx;      // 4 (ctrl)
  StateField wait_store;   // 1 (ctrl): store-set dependence pending
  StateField wait_tag;     // 6 (robptr)
  StateField alloc_ptr;    // 5 (qctrl latch): round-robin allocation

  bool parity_on;
  bool ecc_on;

 private:
  std::uint64_t entries_;
};

}  // namespace tfsim
