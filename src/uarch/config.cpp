#include "uarch/config.h"

#include <string>

namespace tfsim {
namespace {

// kNumArchRegs lives in uop.h with the rest of the ISA constants; repeating
// the value here keeps config.cpp free of pipeline headers (uop.h includes
// config.h). A static_assert in core.cpp pins the two together.
constexpr int kArchRegs = 32;

void Require(std::vector<ConfigIssue>& out, bool ok, const char* field,
             std::string message) {
  if (!ok) out.push_back({field, std::move(message)});
}

std::string MustBePow2(const char* what, int v) {
  return std::string(what) + " must be a power of two, got " +
         std::to_string(v);
}

}  // namespace

std::vector<ConfigIssue> CoreConfig::Validate() const {
  std::vector<ConfigIssue> out;

  // Front end. The fetch staging bank is fetch_width latch slots; a fetch
  // group spans at most two I-cache lines, so a width beyond 2 lines of
  // instructions could never be filled.
  Require(out, fetch_width >= 1, "fetch_width", "fetch_width must be >= 1");
  Require(out, fetch_width <= 2 * line_bytes / 4, "fetch_width",
          "fetch_width exceeds two cache lines of instructions (split-line "
          "fetch ceiling is 2*line_bytes/4)");
  Require(out, fetch_queue >= 2, "fetch_queue", "fetch_queue must be >= 2");
  Require(out, fetch_queue >= fetch_width, "fetch_queue",
          "fetch_queue must hold at least one full fetch group "
          "(fetch_queue >= fetch_width)");
  // The RAS pointer wraps by field-width masking (push is ptr+1 into an
  // IndexBits-wide latch), so the stack depth must be a power of two.
  Require(out, IsPow2(ras_entries) && ras_entries >= 2, "ras_entries",
          MustBePow2("ras_entries (pointer-mask wraparound)", ras_entries) +
              "; minimum 2");
  Require(out, IsPow2(btb_sets), "btb_sets", MustBePow2("btb_sets", btb_sets));
  Require(out, btb_ways >= 1, "btb_ways", "btb_ways must be >= 1");

  // Caches: pow2 geometry so set index / tag split is a bit slice.
  Require(out, IsPow2(line_bytes) && line_bytes >= 8, "line_bytes",
          MustBePow2("line_bytes", line_bytes) +
              "; minimum 8 (lines are stored as 64-bit words)");
  Require(out, IsPow2(icache_bytes), "icache_bytes",
          MustBePow2("icache_bytes", icache_bytes));
  Require(out, icache_ways >= 1 && icache_ways <= 2, "icache_ways",
          "icache_ways must be 1 or 2 (single-bit MRU replacement)");
  Require(out, icache_bytes >= icache_ways * line_bytes, "icache_bytes",
          "icache_bytes must provide at least one set "
          "(icache_bytes >= icache_ways * line_bytes)");
  Require(out, IsPow2(dcache_bytes), "dcache_bytes",
          MustBePow2("dcache_bytes", dcache_bytes));
  Require(out, dcache_ways >= 1 && dcache_ways <= 2, "dcache_ways",
          "dcache_ways must be 1 or 2 (single-bit MRU replacement)");
  Require(out, dcache_bytes >= dcache_ways * line_bytes, "dcache_bytes",
          "dcache_bytes must provide at least one set "
          "(dcache_bytes >= dcache_ways * line_bytes)");
  // Bank conflicts are tracked in a 32-bit in-cycle bitmask.
  Require(out, IsPow2(dcache_banks) && dcache_banks >= 1 && dcache_banks <= 32,
          "dcache_banks",
          MustBePow2("dcache_banks", dcache_banks) + "; range [1, 32]");
  Require(out, mshrs >= 1, "mshrs", "mshrs must be >= 1");
  Require(out, miss_cycles >= 1, "miss_cycles", "miss_cycles must be >= 1");
  // The LQ access timer is a 2-bit countdown latch.
  Require(out, dcache_latency >= 1 && dcache_latency <= 3, "dcache_latency",
          "dcache_latency must be in [1, 3] (2-bit LQ access timer)");

  // Decode / rename.
  Require(out, decode_width >= 1, "decode_width", "decode_width must be >= 1");
  Require(out, decode_width <= fetch_queue, "decode_width",
          "decode_width must not exceed fetch_queue");
  Require(out, rename_width == decode_width, "rename_width",
          "the model renames exactly one decode group per cycle; set "
          "rename_width == decode_width");
  // Regptrs (and their SEC ECC codes) are the paper's fixed 7-bit pointers:
  // phys_regs beyond 128 would silently truncate in every regptr field.
  // Below that, the free list must form a real ring over phys - arch regs.
  Require(out, phys_regs <= 128, "phys_regs",
          "phys_regs must be <= 128 (regptrs are the paper's 7-bit pointers)");
  Require(out, phys_regs >= kArchRegs + 2, "phys_regs",
          "phys_regs must exceed the 32 architectural registers by at least "
          "2 (free-list ring)");

  // Issue / memory / retire queues: genuine rings need >= 2 entries.
  Require(out, sched_entries >= 2, "sched_entries",
          "sched_entries must be >= 2");
  Require(out, lq_entries >= 2, "lq_entries", "lq_entries must be >= 2");
  Require(out, sq_entries >= 2, "sq_entries", "sq_entries must be >= 2");
  Require(out, store_buffer >= 2, "store_buffer",
          "store_buffer must be >= 2");
  Require(out, rob_entries >= 4, "rob_entries", "rob_entries must be >= 4");
  Require(out, rob_entries <= 1024, "rob_entries",
          "rob_entries must be <= 1024");
  Require(out, retire_width >= 1, "retire_width",
          "retire_width must be >= 1");
  Require(out, retire_width <= rob_entries, "retire_width",
          "retire_width must not exceed rob_entries");
  Require(out, timeout_cycles >= 1, "timeout_cycles",
          "timeout_cycles must be >= 1");
  return out;
}

void CoreConfig::ValidateOrThrow() const {
  std::vector<ConfigIssue> issues = Validate();
  if (issues.empty()) return;
  std::string what = "invalid CoreConfig (" + std::to_string(issues.size()) +
                     " issue" + (issues.size() == 1 ? "" : "s") + "):";
  for (const ConfigIssue& i : issues)
    what += "\n  [" + i.field + "] " + i.message;
  throw ConfigError(std::move(what), std::move(issues));
}

}  // namespace tfsim
