#include "uarch/core.h"

#include <algorithm>
#include <optional>

#include "arch/syscall.h"
#include "check/invariants.h"
#include "util/rng.h"

namespace tfsim {
namespace {

constexpr std::uint64_t kNoRas = 0xFF;  // sentinel: skip RAS-pointer restore

// Applies load size/sign semantics to a raw memory value.
std::uint64_t FinishLoad(std::uint64_t raw, int size, bool sext) {
  const std::uint64_t mask = size >= 8 ? ~0ULL : ((1ULL << (8 * size)) - 1);
  std::uint64_t v = raw & mask;
  if (sext && size == 4)
    v = static_cast<std::uint64_t>(
        static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
  return v;
}

bool RangesOverlap(std::uint64_t a, int asize, std::uint64_t b, int bsize) {
  return a < b + static_cast<std::uint64_t>(bsize) &&
         b < a + static_cast<std::uint64_t>(asize);
}

}  // namespace

namespace {
// config.cpp repeats this constant to stay free of pipeline headers.
static_assert(kNumArchRegs == 32, "CoreConfig::Validate assumes 32 arch regs");

// Geometry is audited before any member component allocates state: an
// invalid shape must throw, never construct a silently-truncating pipeline.
const CoreConfig& Validated(const CoreConfig& cfg) {
  cfg.ValidateOrThrow();
  return cfg;
}
}  // namespace

Core::Core(const CoreConfig& cfg, const Program& program)
    : cfg_(Validated(cfg)),
      bpred_(registry_, cfg),
      icache_(registry_, cfg),
      dcache_(registry_, cfg),
      storesets_(registry_, cfg),
      regfile_(registry_, cfg),
      rename_(registry_, cfg),
      rob_(registry_, cfg),
      sched_(registry_, cfg),
      lsq_(registry_, cfg),
      fetch_(registry_, cfg),
      decode_(registry_, cfg),
      issue_lat_(registry_, cfg, "iss", kNumPorts, false),
      rr_lat_(registry_, cfg, "rr", kNumPorts, true),
      wb_(registry_, cfg, 10),
      cpipe_(registry_, cfg),
      wakeups_(registry_, cfg) {
  arch_next_pc_ = registry_.Allocate("retire.arch_next_pc", StateCat::kPc,
                                     Storage::kLatch, 1, kPcBits);
  if (cfg_.protect.timeout_counter)
    timeout_count_ = registry_.Allocate(
        "retire.timeout", StateCat::kCtrl, Storage::kLatch, 1,
        CountBits(static_cast<std::uint64_t>(cfg.timeout_cycles)));
  resolved_target_ =
      registry_.Allocate("rob.resolved_target", StateCat::kPc, Storage::kRam,
                         static_cast<std::size_t>(cfg.rob_entries), kPcBits);

  for (const auto& chunk : program.chunks)
    mem_.WriteBytes(chunk.addr, chunk.bytes);
  regfile_.Reset();
  rename_.Reset();
  fetch_.SetFetchPc(program.entry);
  arch_next_pc_.Set(0, PcStore(program.entry));
  rob_seq_.resize(static_cast<std::size_t>(cfg.rob_entries), 0);
  if (cfg_.check_invariants)
    checker_ = std::make_unique<check::InvariantChecker>();
}

Core::~Core() = default;

std::uint64_t Core::StateHash() const {
  std::uint64_t h = registry_.Hash() ^ mem_.ContentHash() ^ out_hash_;
  if (exited_) h ^= Mix64(exit_code_ + 0xE817);
  return h;
}

std::uint64_t Core::ArchViewHash() {
  // The architectural register file as software would observe it: pointers
  // and values pass through ECC correction when those mechanisms are on
  // (a correctable flip is not a visible error), but nothing is scrubbed.
  std::uint64_t h = 0;
  for (std::uint64_t r = 0; r < kNumArchRegs; ++r) {
    const std::uint64_t preg = rename_.ReadArchCorrectedView(r);
    const Word65 v = regfile_.ReadCorrectedView(preg);
    h ^= Mix64((r << 58) ^ Mix64(v.lo + (v.hi ? 2 : 1)));
  }
  return h;
}

std::uint64_t Core::InFlight() const {
  std::uint64_t staged = 0;
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(cfg_.fetch_width);
       ++i)
    if (fetch_.fb_valid.GetBit(i)) ++staged;
  return rob_.Count() + fetch_.FqCount() + staged +
         decode_.stage1.Occupancy() + decode_.stage2.Occupancy();
}

std::uint64_t Core::OldestInflightSeq() const {
  if (rob_.Count() > 0) return rob_seq_[rob_.Head()];
  for (std::uint64_t i = 0; i < decode_.stage2.width; ++i)
    if (decode_.stage2.valid.GetBit(i)) return decode_.stage2.seq[i];
  for (std::uint64_t i = 0; i < decode_.stage1.width; ++i)
    if (decode_.stage1.valid.GetBit(i)) return decode_.stage1.seq[i];
  if (fetch_.FqCount() > 0) return fetch_.fq_seq[fetch_.FqHeadIndex()];
  return fetch_.seq_counter;
}

Core::Snapshot Core::Save() const {
  Snapshot s;
  s.words = registry_.Snapshot();
  s.mem = mem_.Clone();
  s.output = output_;
  s.out_hash = out_hash_;
  s.exited = exited_;
  s.exit_code = exit_code_;
  s.halted_exc = halted_exc_;
  s.retired_total = retired_total_;
  s.seq_counter = fetch_.seq_counter;
  s.fq_seq = fetch_.fq_seq;
  s.fb_seq = fetch_.fb_seq;
  s.d1_seq = decode_.stage1.seq;
  s.d2_seq = decode_.stage2.seq;
  s.rob_seq = rob_seq_;
  return s;
}

void Core::Load(const Snapshot& s) {
  registry_.Restore(s.words);
  mem_ = s.mem.Clone();
  output_ = s.output;
  out_hash_ = s.out_hash;
  exited_ = s.exited;
  exit_code_ = s.exit_code;
  halted_exc_ = s.halted_exc;
  retired_total_ = s.retired_total;
  fetch_.seq_counter = s.seq_counter;
  fetch_.fq_seq = s.fq_seq;
  fetch_.fb_seq = s.fb_seq;
  decode_.stage1.seq = s.d1_seq;
  decode_.stage2.seq = s.d2_seq;
  rob_seq_ = s.rob_seq;
  itlb_miss_ = false;
  stats_ = CoreStats{};
  obs_flushed_ = CoreStats{};
  if (checker_) checker_->Clear();
}

Core::SnapshotDelta Core::SaveDelta(const Snapshot& base) const {
  SnapshotDelta d;
  const std::uint64_t* words = registry_.WordsData();
  for (std::size_t w = 0; w < base.words.size(); ++w) {
    if (words[w] != base.words[w])
      d.words.emplace_back(static_cast<std::uint32_t>(w), words[w]);
  }
  d.mem = mem_.DiffWords(base.mem);
  d.output = output_;
  d.out_hash = out_hash_;
  d.exited = exited_;
  d.exit_code = exit_code_;
  d.halted_exc = halted_exc_;
  d.retired_total = retired_total_;
  d.seq_counter = fetch_.seq_counter;
  d.fq_seq = fetch_.fq_seq;
  d.fb_seq = fetch_.fb_seq;
  d.d1_seq = decode_.stage1.seq;
  d.d2_seq = decode_.stage2.seq;
  d.rob_seq = rob_seq_;
  d.inflight = InFlight();
  return d;
}

void Core::LoadDelta(const Snapshot& base, const SnapshotDelta& d) {
  Load(base);
  for (const auto& [w, value] : d.words) registry_.OverwriteWord(w, value);
  for (const auto& [addr, value] : d.mem) mem_.Write(addr, value, 8);
  output_ = d.output;
  out_hash_ = d.out_hash;
  exited_ = d.exited;
  exit_code_ = d.exit_code;
  halted_exc_ = d.halted_exc;
  retired_total_ = d.retired_total;
  fetch_.seq_counter = d.seq_counter;
  fetch_.fq_seq = d.fq_seq;
  fetch_.fb_seq = d.fb_seq;
  decode_.stage1.seq = d.d1_seq;
  decode_.stage2.seq = d.d2_seq;
  rob_seq_ = d.rob_seq;
}

void Core::Cycle() {
  CycleInner();
  if (checker_ || obs_) {
    // Instrumentation reads (invariant probes, occupancy samples) must not
    // feed the fast path's first-access tracker — it models what the
    // *pipeline* touches.
    WordFirstAccessTracker* tracker = registry_.access_tracker();
    registry_.SetAccessTracker(nullptr);
    if (checker_ && checker_->Check(*this) != 0 && obs_) ObsCountViolations();
    if (obs_) ObsSample();
    registry_.SetAccessTracker(tracker);
  }
}

void Core::CycleInner() {
  retired_this_cycle_.clear();
  retired_seqs_this_cycle_.clear();
  ++stats_.cycles;
  if (exited_ || halted_exc_ != Exception::kNone || itlb_miss_) return;

  icache_.Tick(mem_);
  dcache_.Tick(mem_);
  regfile_.TickEcc();

  RetireStage();
  if (exited_ || halted_exc_ != Exception::kNone) return;
  StoreBufferDrain();
  WritebackStage();
  MemStage();
  ExecuteStage();
  RegReadStage();
  SelectStage();
  DispatchStage();
  decode_.Advance();
  FrontEnd();
}

// ---------------------------------------------------------------------------
// Retirement
// ---------------------------------------------------------------------------

void Core::RetireStage() {
  const std::uint64_t retired_before = retired_total_;
  bool stop = false;
  for (int n = 0; n < cfg_.retire_width && !stop; ++n) RetireOne(stop);

  if (cfg_.protect.timeout_counter && halted_exc_ == Exception::kNone &&
      !exited_) {
    if (retired_total_ != retired_before) {
      timeout_count_.Set(0, 0);
    } else {
      const std::uint64_t c = timeout_count_.Get(0) + 1;
      if (c >= static_cast<std::uint64_t>(cfg_.timeout_cycles)) {
        // Forced flush to clear a potential deadlock (Section 4.2). Restart
        // from the next-to-retire instruction (or the committed next PC when
        // the ROB is empty).
        ++stats_.timeout_flushes;
        const std::uint64_t restart =
            rob_.Count() > 0 ? PcLoad(rob_.pc.Get(rob_.Head()))
                             : PcLoad(arch_next_pc_.Get(0));
        FullFlush(restart);
        timeout_count_.Set(0, 0);
      } else {
        timeout_count_.Set(0, c);
      }
    }
  }
}

void Core::RetireOne(bool& stop) {
  if (rob_.Empty()) {
    stop = true;
    return;
  }
  const std::uint64_t tag = rob_.Head();
  if (!rob_.done.GetBit(tag)) {
    stop = true;
    return;
  }

  RetireEvent e;
  e.pc = PcLoad(rob_.pc.Get(tag));
  e.insn = static_cast<std::uint32_t>(rob_.insn.Get(tag));

  // Exception? Raise it (paper: Terminated/except, or itlb/dtlb SDC).
  const Exception exc = static_cast<Exception>(rob_.exc.Get(tag) % 7);
  if (exc != Exception::kNone) {
    e.exc = exc;
    halted_exc_ = exc;
    retired_this_cycle_.push_back(e);
    stop = true;
    return;
  }

  // Instruction-word parity check, performed before the instruction is
  // allowed to commit (Section 4.2). A mismatch triggers a recovery flush
  // and a clean re-fetch of the same instruction.
  if (rob_.parity_on &&
      InsnParity(static_cast<std::uint32_t>(rob_.insn.Get(tag))) !=
          rob_.parity.Get(tag)) {
    ++stats_.parity_flushes;
    FullFlush(e.pc);
    stop = true;
    return;
  }

  if (rob_.is_syscall.GetBit(tag)) {
    if (!lsq_.SbEmpty()) {  // drain committed stores first
      stop = true;
      return;
    }
    const std::uint64_t number =
        regfile_.Read(rename_.ReadArch(0).val).lo;
    const std::uint64_t a0 = regfile_.Read(rename_.ReadArch(16).val).lo;
    const std::uint64_t a1 = regfile_.Read(rename_.ReadArch(17).val).lo;
    const std::size_t out_before = output_.size();
    const std::uint64_t r0 =
        DoSyscallRaw(number, a0, a1, mem_, output_, exited_, exit_code_);
    for (std::size_t i = out_before; i < output_.size(); ++i)
      out_hash_ = Mix64(out_hash_ ^ output_[i] ^ (i << 32));
    regfile_.Write(rename_.ReadArch(0).val, {r0, false});
    e.is_syscall = true;
    e.dst = 0;
    e.value = r0;
    retired_this_cycle_.push_back(e);
    retired_seqs_this_cycle_.push_back(rob_seq_[tag]);
    ++retired_total_;
    ++stats_.retired;
    arch_next_pc_.Set(0, PcStore(e.pc + 4));
    rob_.PopHead();
    FullFlush(e.pc + 4);  // syscalls serialize the pipeline
    stop = true;
    return;
  }

  if (rob_.is_store.GetBit(tag)) {
    if (lsq_.SbFull()) {  // cannot commit the store yet
      stop = true;
      return;
    }
    const std::uint64_t si = rob_.lsq_idx.Get(tag) % lsq_.sq_entries();
    e.is_store = true;
    e.store_addr = lsq_.sq_addr.Get(si);
    e.store_value = lsq_.sq_data.Get(si);
    e.store_size =
        static_cast<std::uint8_t>(DecodeSizeCode(lsq_.sq_size.Get(si)));
    // Drop forward shadows naming this SQ slot before it is recycled: stores
    // retire in order, so once the forward source commits, any older-than-load
    // store still resolving its address is younger than the source and must
    // always squash — a stale shadow pointing at the slot's next (younger)
    // occupant would wrongly suppress that squash and let the load keep
    // superseded data. (Found by the differential fuzzer.)
    for (std::uint64_t li = 0; li < lsq_.lq_entries(); ++li)
      if (lsq_.lq_valid.GetBit(li) && lsq_.lq_fwd_valid.GetBit(li) &&
          lsq_.lq_fwd_sq.Get(li) % lsq_.sq_entries() == si)
        lsq_.lq_fwd_valid.Set(li, 0);
    lsq_.SbPush(e.store_addr, e.store_value, lsq_.sq_size.Get(si));
    lsq_.PopSqHead();
  }

  if (rob_.is_load.GetBit(tag)) lsq_.PopLqHead();

  if (rob_.has_dst.GetBit(tag)) {
    const RPtr newp =
        ReadPtrField(rob_.newp, rob_.newp_ecc, tag, rob_.ecc_on);
    const RPtr oldp =
        ReadPtrField(rob_.oldp, rob_.oldp_ecc, tag, rob_.ecc_on);
    const std::uint64_t areg = rob_.areg.Get(tag);
    (void)rename_.PopArchFree();  // in fault-free runs this equals newp
    rename_.SetArch(areg, newp);
    rename_.PushArchFree(oldp);
    rename_.PushFree(oldp);
    e.dst = static_cast<std::uint8_t>(areg);
    e.value = regfile_.Read(newp.val).lo;
  }

  arch_next_pc_.Set(
      0, rob_.is_branch.GetBit(tag) ? resolved_target_.Get(tag)
                                    : PcStore(e.pc + 4));

  retired_this_cycle_.push_back(e);
  retired_seqs_this_cycle_.push_back(rob_seq_[tag]);
  ++retired_total_;
  ++stats_.retired;
  rob_.PopHead();
}

void Core::StoreBufferDrain() {
  std::uint64_t addr, data;
  int size;
  if (lsq_.SbPop(addr, data, size))
    dcache_.WriteThrough(addr, data, size, mem_);
}

// ---------------------------------------------------------------------------
// Writeback
// ---------------------------------------------------------------------------

void Core::WritebackStage() {
  for (std::size_t i = 0; i < wb_.slots; ++i) {
    if (!wb_.valid.GetBit(i)) continue;
    if (wb_.has_dst.GetBit(i)) {
      const RPtr p = CheckPtr(
          {wb_.dstp.Get(i), wb_.ecc_on ? wb_.dst_ecc.Get(i) : 0}, wb_.ecc_on);
      regfile_.Write(p.val, {wb_.value_lo.Get(i), wb_.value_hi.GetBit(i)});
      sched_.Wakeup(p.val);  // safety-net broadcast (see DispatchStage races)
    }
    rob_.done.Set(wb_.robtag.Get(i) % rob_.entries(), 1);
    if (wb_.free_sched.GetBit(i)) {
      sched_.Free(wb_.sched_idx.Get(i) % sched_.entries());
    }
    wb_.valid.Set(i, 0);
  }
}

bool Core::ProduceResultInternal(Word65 value, std::uint64_t dstp,
                                 std::uint64_t dst_ecc, bool has_dst,
                                 std::uint64_t robtag, std::uint64_t sched_idx,
                                 bool free_sched) {
  const int slot = wb_.FreeSlot();
  if (slot < 0) return false;
  const std::size_t s = static_cast<std::size_t>(slot);
  wb_.valid.Set(s, 1);
  wb_.alloc_ptr.Set(0, (s + 1) % wb_.slots);
  wb_.value_lo.Set(s, value.lo);
  wb_.value_hi.Set(s, value.hi ? 1 : 0);
  wb_.dstp.Set(s, dstp);
  if (wb_.ecc_on) wb_.dst_ecc.Set(s, dst_ecc);
  wb_.has_dst.Set(s, has_dst ? 1 : 0);
  wb_.robtag.Set(s, robtag);
  wb_.sched_idx.Set(s, sched_idx);
  wb_.free_sched.Set(s, free_sched ? 1 : 0);
  return true;
}

Word65 Core::ReadOperand(std::uint64_t preg) {
  if (regfile_.Ready(preg)) return regfile_.Read(preg);
  // Bypass: the producer's result may be sitting in the writeback bank.
  for (std::size_t i = 0; i < wb_.slots; ++i) {
    if (wb_.valid.GetBit(i) && wb_.has_dst.GetBit(i) &&
        wb_.dstp.Get(i) == preg)
      return {wb_.value_lo.Get(i), wb_.value_hi.GetBit(i)};
  }
  // Mis-timed read (possible only under corruption): defined fallback.
  return regfile_.Read(preg);
}

// ---------------------------------------------------------------------------
// Memory stage
// ---------------------------------------------------------------------------

void Core::KillLoadDependents(std::uint64_t lq_index) {
  const std::uint64_t preg = lsq_.lq_dstp.Get(lq_index);
  ++stats_.replays;
  wakeups_.Kill(preg);
  sched_.KillWakeup(preg, lsq_.lq_sched.Get(lq_index));
  auto poison_bank = [&](UopLatchBank& bank) {
    for (std::size_t s = 0; s < bank.slots; ++s) {
      if (!bank.valid.GetBit(s)) continue;
      const DecodedInst bd = UnpackCtrl(bank.ctrl.Get(s));
      const bool dep = (OpHasSrc1(bd.op) && bank.src1p.Get(s) == preg) ||
                       (OpHasSrc2(bd.op) && bank.src2p.Get(s) == preg);
      if (!dep) continue;
      bank.valid.Set(s, 0);
      // Revert the consumer's scheduler entry so it replays.
      const std::uint64_t si = bank.sched_idx.Get(s) % sched_.entries();
      if (sched_.valid.GetBit(si) &&
          sched_.robtag.Get(si) == bank.robtag.Get(s))
        sched_.state.Set(si, Scheduler::kWaiting);
      // The consumer never produces: cancel its own scheduled wakeup.
      if (bank.has_dst.GetBit(s)) wakeups_.Kill(bank.dstp.Get(s));
    }
  };
  poison_bank(issue_lat_);
  poison_bank(rr_lat_);
}

bool Core::TryLoadAccess(std::uint64_t li) {
  const std::uint64_t addr = lsq_.lq_addr.Get(li);
  const int size = DecodeSizeCode(lsq_.lq_size.Get(li));
  const std::uint64_t load_tag = lsq_.lq_robtag.Get(li);
  // If the speculative (hit-timed) wakeup from issue can no longer be
  // honoured, consumers must replay: flag a kill for next cycle.
  auto spec_failed = [&] {
    if (lsq_.lq_spec.GetBit(li)) {
      lsq_.lq_spec.Set(li, 0);
      lsq_.lq_misskill.Set(li, 1);
    }
  };

  if (!tlb_.LookupData(addr)) {
    rob_.exc.Set(load_tag % rob_.entries(),
                 static_cast<std::uint64_t>(Exception::kDTlbMiss));
    rob_.done.Set(load_tag % rob_.entries(), 1);
    lsq_.lq_state.Set(li, kLqDone);
    lsq_.lq_done.Set(li, 1);
    sched_.Free(lsq_.lq_sched.Get(li) % sched_.entries());
    spec_failed();
    return true;
  }

  // Scan older stores in the SQ, youngest first.
  struct Candidate {
    std::uint64_t index;
    std::uint64_t age;
  };
  std::uint64_t best_age = 0;
  std::uint64_t best_sq = ~0ULL;
  for (std::uint64_t si = 0; si < lsq_.sq_entries(); ++si) {
    if (!lsq_.sq_valid.GetBit(si) || !lsq_.sq_addr_valid.GetBit(si)) continue;
    const std::uint64_t stag = lsq_.sq_robtag.Get(si);
    if (!rob_.Younger(load_tag, stag)) continue;  // store must be older
    const int ssize = DecodeSizeCode(lsq_.sq_size.Get(si));
    if (!RangesOverlap(addr, size, lsq_.sq_addr.Get(si), ssize)) continue;
    const std::uint64_t age = rob_.AgeOf(stag);
    if (best_sq == ~0ULL || age > best_age) {
      best_age = age;
      best_sq = si;
    }
  }
  if (best_sq != ~0ULL) {
    const std::uint64_t si = best_sq;
    const int ssize = DecodeSizeCode(lsq_.sq_size.Get(si));
    const bool exact =
        lsq_.sq_addr.Get(si) == addr && ssize >= size;
    if (!exact || !lsq_.sq_data_valid.GetBit(si)) {
      spec_failed();
      return false;  // stall until the store resolves/drains
    }
    lsq_.lq_spec.Set(li, 0);
    lsq_.lq_value.Set(li, lsq_.sq_data.Get(si));
    lsq_.lq_fwd_valid.Set(li, 1);
    lsq_.lq_fwd_sq.Set(li, si);
    lsq_.lq_state.Set(li, kLqAccessing);
    lsq_.lq_timer.Set(li, 1);
    if (lsq_.lq_has_dst.GetBit(li)) sched_.Wakeup(lsq_.lq_dstp.Get(li));
    return true;
  }

  // Scan the post-retirement store buffer, youngest first.
  const std::uint64_t sbn = static_cast<std::uint64_t>(cfg_.store_buffer);
  for (std::uint64_t k = 0; k < sbn; ++k) {
    const std::uint64_t si =
        (lsq_.sb_tail.Get(0) + sbn - 1 - k) % sbn;
    if (!lsq_.sb_valid.GetBit(si)) continue;
    const int ssize = DecodeSizeCode(lsq_.sb_size.Get(si));
    if (!RangesOverlap(addr, size, lsq_.sb_addr.Get(si), ssize)) continue;
    const bool exact = lsq_.sb_addr.Get(si) == addr && ssize >= size;
    if (!exact) {
      spec_failed();
      return false;  // stall until it drains
    }
    lsq_.lq_spec.Set(li, 0);
    lsq_.lq_value.Set(li, lsq_.sb_data.Get(si));
    // Deliberately NOT recorded as a forward (lq_fwd_valid stays 0): the
    // store buffer holds committed stores, older than every in-flight store,
    // so an older-than-load store resolving later with an overlapping
    // address must always squash this load — the fwd_sq shadow test in
    // CheckOrderViolation can never legitimately apply. (Setting fwd_valid
    // here with a stale fwd_sq slot let exactly such loads keep stale data;
    // found by the differential fuzzer.)
    lsq_.lq_state.Set(li, kLqAccessing);
    lsq_.lq_timer.Set(li, 1);
    if (lsq_.lq_has_dst.GetBit(li)) sched_.Wakeup(lsq_.lq_dstp.Get(li));
    return true;
  }

  // Cache access.
  std::uint64_t value = 0;
  switch (dcache_.AccessLoad(addr, size, mem_, li, value)) {
    case DCache::LoadResult::kHit:
      lsq_.lq_spec.Set(li, 0);
      lsq_.lq_value.Set(li, value);
      lsq_.lq_state.Set(li, kLqAccessing);
      lsq_.lq_timer.Set(li, static_cast<std::uint64_t>(cfg_.dcache_latency - 1));
      if (lsq_.lq_has_dst.GetBit(li)) sched_.Wakeup(lsq_.lq_dstp.Get(li));
      return true;
    case DCache::LoadResult::kMiss:
      ++stats_.dcache_misses;
      lsq_.lq_state.Set(li, kLqWaitFill);
      lsq_.lq_spec.Set(li, 0);
      lsq_.lq_misskill.Set(li, 1);  // replay consumers next cycle
      return true;
    case DCache::LoadResult::kRetry:
      spec_failed();
      return false;
  }
  return false;
}

void Core::MemStage() {
  const std::uint64_t n = lsq_.lq_entries();

  // 1. Load-miss kill broadcasts (speculative wakeup verification failed).
  for (std::uint64_t li = 0; li < n; ++li) {
    if (lsq_.lq_valid.GetBit(li) && lsq_.lq_misskill.GetBit(li)) {
      lsq_.lq_misskill.Set(li, 0);
      KillLoadDependents(li);
    }
  }

  // 2. Completed fills allow their loads to re-access.
  for (std::uint64_t li = 0; li < n; ++li) {
    if (lsq_.lq_valid.GetBit(li) && lsq_.lq_state.Get(li) == kLqWaitFill &&
        dcache_.FillReady(li)) {
      dcache_.ReleaseFill(li);
      lsq_.lq_state.Set(li, kLqReady);
    }
  }

  // 3. Accesses in progress: count down, then deliver into the WB bank.
  for (std::uint64_t li = 0; li < n; ++li) {
    if (!lsq_.lq_valid.GetBit(li) || lsq_.lq_state.Get(li) != kLqAccessing)
      continue;
    const std::uint64_t t = lsq_.lq_timer.Get(li);
    if (t > 1) {
      lsq_.lq_timer.Set(li, t - 1);
      continue;
    }
    const std::uint64_t raw = lsq_.lq_value.Get(li);
    const Word65 v{FinishLoad(raw, DecodeSizeCode(lsq_.lq_size.Get(li)),
                              lsq_.lq_sext.GetBit(li)),
                   false};
    if (ProduceResultInternal(
            v, lsq_.lq_dstp.Get(li),
            lsq_.ecc_on ? lsq_.lq_dst_ecc.Get(li) : 0,
            lsq_.lq_has_dst.GetBit(li), lsq_.lq_robtag.Get(li),
            lsq_.lq_sched.Get(li), /*free_sched=*/true)) {
      lsq_.lq_state.Set(li, kLqDone);
      lsq_.lq_done.Set(li, 1);
    }
    // else: WB bank full; retry next cycle.
  }

  // 4. Ready loads attempt their access (oldest first for fairness).
  for (std::uint64_t age = 0; age < n; ++age) {
    const std::uint64_t li = (lsq_.lq_head.Get(0) + age) % n;
    if (!lsq_.lq_valid.GetBit(li) || lsq_.lq_state.Get(li) != kLqReady)
      continue;
    TryLoadAccess(li);
  }
}

void Core::CheckOrderViolation(std::uint64_t sq_index) {
  const std::uint64_t store_tag = lsq_.sq_robtag.Get(sq_index);
  const std::uint64_t saddr = lsq_.sq_addr.Get(sq_index);
  const int ssize = DecodeSizeCode(lsq_.sq_size.Get(sq_index));

  std::uint64_t victim = ~0ULL;
  std::uint64_t victim_age = ~0ULL;
  for (std::uint64_t li = 0; li < lsq_.lq_entries(); ++li) {
    if (!lsq_.lq_valid.GetBit(li) || !lsq_.lq_addr_valid.GetBit(li)) continue;
    const std::uint64_t s = lsq_.lq_state.Get(li);
    if (s != kLqAccessing && s != kLqDone) continue;  // value not bound yet
    const std::uint64_t ltag = lsq_.lq_robtag.Get(li);
    if (!rob_.Younger(ltag, store_tag)) continue;  // load must be younger
    const int lsize = DecodeSizeCode(lsq_.lq_size.Get(li));
    if (!RangesOverlap(lsq_.lq_addr.Get(li), lsize, saddr, ssize)) continue;
    // A forward from a store younger than this one shadows the conflict.
    if (lsq_.lq_fwd_valid.GetBit(li)) {
      const std::uint64_t fsq = lsq_.lq_fwd_sq.Get(li) % lsq_.sq_entries();
      if (lsq_.sq_valid.GetBit(fsq) &&
          rob_.Younger(lsq_.sq_robtag.Get(fsq), store_tag))
        continue;
    }
    const std::uint64_t age = rob_.AgeOf(ltag);
    if (age < victim_age) {
      victim_age = age;
      victim = li;
    }
  }
  if (victim == ~0ULL) return;

  ++stats_.order_violations;
  const std::uint64_t load_tag = lsq_.lq_robtag.Get(victim);
  const std::uint64_t load_pc = PcLoad(rob_.pc.Get(load_tag % rob_.entries()));
  const std::uint64_t store_pc =
      PcLoad(rob_.pc.Get(store_tag % rob_.entries()));
  storesets_.TrainViolation(load_pc, store_pc);
  SquashYoungerThan(load_tag, /*inclusive=*/true, load_pc, kNoRas);
}

// ---------------------------------------------------------------------------
// Execute
// ---------------------------------------------------------------------------

void Core::DoBranch(int port, const DecodedInst& d, Word65 a) {
  const std::size_t s = static_cast<std::size_t>(port);
  const std::uint64_t pc = PcLoad(rr_lat_.pc.Get(0));  // branch side-latch
  const std::uint64_t tag = rr_lat_.robtag.Get(s) % rob_.entries();

  bool taken = false;
  std::uint64_t target = pc + 4;
  switch (d.cls) {
    case InsnClass::kCondBranch:
      taken = BranchTaken(d.op, a.lo);
      target = taken ? pc + 4 + static_cast<std::uint64_t>(d.imm) * 4 : pc + 4;
      break;
    case InsnClass::kBr:
    case InsnClass::kBsr:
      taken = true;
      target = pc + 4 + static_cast<std::uint64_t>(d.imm) * 4;
      break;
    case InsnClass::kJmp:
    case InsnClass::kJsr:
    case InsnClass::kRet:
      taken = true;
      target = a.lo & ~3ULL;
      break;
    default:
      break;  // corrupted routing: treated as a not-taken branch
  }

  resolved_target_.Set(tag, PcStore(target));
  bpred_.Train(pc, d, taken, target);
  ++stats_.branches;

  const Word65 link{pc + 4, false};
  const bool produced = ProduceResultInternal(
      link, rr_lat_.dstp.Get(s), rr_lat_.ecc_on ? rr_lat_.dst_ecc.Get(s) : 0,
      rr_lat_.has_dst.GetBit(s), rr_lat_.robtag.Get(s),
      rr_lat_.sched_idx.Get(s), /*free_sched=*/true);
  if (!produced) return;  // WB full: keep the latch, retry next cycle
  rr_lat_.valid.Set(s, 0);

  const bool pred_taken = rr_lat_.pred_taken.GetBit(0);
  const std::uint64_t pred_target = PcLoad(rr_lat_.pred_target.Get(0));
  const std::uint64_t actual_next = taken ? target : pc + 4;
  const std::uint64_t pred_next = pred_taken ? pred_target : pc + 4;
  if (actual_next != pred_next) {
    ++stats_.mispredicts;
    // Recover the RAS pointer to the checkpoint, then re-apply this branch's
    // own effect (pointer recovery, Figure 2).
    std::uint64_t ras = rr_lat_.ras_ckpt.Get(0);
    const std::uint64_t rasn = static_cast<std::uint64_t>(cfg_.ras_entries);
    if (d.cls == InsnClass::kBsr || d.cls == InsnClass::kJsr)
      ras = (ras + 1) % rasn;
    if (d.cls == InsnClass::kRet) ras = (ras + rasn - 1) % rasn;
    SquashYoungerThan(rr_lat_.robtag.Get(s), /*inclusive=*/false, actual_next,
                      ras);
    if (d.cls == InsnClass::kBsr || d.cls == InsnClass::kJsr) {
      // Re-push the (correct) return address lost to the pointer restore.
      // Modeled inside Bpred via a fresh predict-side push.
      // The stack contents at [ras-1] already hold pc+4 from fetch time in
      // the common case; only the pointer needed repair.
    }
  }
}

void Core::DoAgu(int port, const DecodedInst& d, Word65 a, Word65 b) {
  const std::size_t s = static_cast<std::size_t>(port);
  const std::uint64_t addr = a.lo + static_cast<std::uint64_t>(d.imm);
  const std::uint64_t tag = rr_lat_.robtag.Get(s) % rob_.entries();
  const std::uint64_t pc = PcLoad(rob_.pc.Get(tag));

  if (d.cls == InsnClass::kLoad) {
    const std::uint64_t li = rr_lat_.lsq_idx.Get(s) % lsq_.lq_entries();
    if (addr % d.mem_size != 0) {
      rob_.exc.Set(tag, static_cast<std::uint64_t>(Exception::kUnaligned));
      rob_.done.Set(tag, 1);
      lsq_.lq_state.Set(li, kLqDone);
      lsq_.lq_done.Set(li, 1);
      sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
      rr_lat_.valid.Set(s, 0);
      if (lsq_.lq_spec.GetBit(li)) {
        lsq_.lq_spec.Set(li, 0);
        lsq_.lq_misskill.Set(li, 1);
      }
      return;
    }
    lsq_.lq_addr.Set(li, addr);
    lsq_.lq_addr_valid.Set(li, 1);
    lsq_.lq_size.Set(li, EncodeSizeCode(d.mem_size));
    lsq_.lq_sext.Set(li, d.op == Op::kLdl ? 1 : 0);
    lsq_.lq_state.Set(li, kLqReady);
    rr_lat_.valid.Set(s, 0);
    return;
  }

  if (d.cls == InsnClass::kStore) {
    const std::uint64_t si = rr_lat_.lsq_idx.Get(s) % lsq_.sq_entries();
    if (addr % d.mem_size != 0) {
      rob_.exc.Set(tag, static_cast<std::uint64_t>(Exception::kUnaligned));
      rob_.done.Set(tag, 1);
      sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
      rr_lat_.valid.Set(s, 0);
      return;
    }
    if (!tlb_.LookupData(addr)) {
      rob_.exc.Set(tag, static_cast<std::uint64_t>(Exception::kDTlbMiss));
      rob_.done.Set(tag, 1);
      sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
      rr_lat_.valid.Set(s, 0);
      return;
    }
    lsq_.sq_addr.Set(si, addr);
    lsq_.sq_addr_valid.Set(si, 1);
    lsq_.sq_data.Set(si, b.lo);
    lsq_.sq_data_hi.Set(si, b.hi ? 1 : 0);
    lsq_.sq_data_valid.Set(si, 1);
    lsq_.sq_size.Set(si, EncodeSizeCode(d.mem_size));
    rob_.done.Set(tag, 1);
    sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
    sched_.StoreExecuted(rr_lat_.robtag.Get(s));
    storesets_.StoreComplete(pc, rr_lat_.robtag.Get(s));
    rr_lat_.valid.Set(s, 0);
    CheckOrderViolation(si);
    return;
  }

  // Corrupted routing: execute as an ALU op (defined behaviour).
  const AluResult r = ExecuteAlu(d, a.lo, b.lo);
  if (r.exc != Exception::kNone) {
    rob_.exc.Set(tag, static_cast<std::uint64_t>(r.exc));
    rob_.done.Set(tag, 1);
    sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
    rr_lat_.valid.Set(s, 0);
    return;
  }
  if (ProduceResultInternal({r.value, false}, rr_lat_.dstp.Get(s),
                            rr_lat_.ecc_on ? rr_lat_.dst_ecc.Get(s) : 0,
                            rr_lat_.has_dst.GetBit(s), rr_lat_.robtag.Get(s),
                            rr_lat_.sched_idx.Get(s), true))
    rr_lat_.valid.Set(s, 0);
}

void Core::ExecuteOnPort(int port) {
  const std::size_t s = static_cast<std::size_t>(port);
  if (!rr_lat_.valid.GetBit(s)) return;
  const DecodedInst d = UnpackCtrl(rr_lat_.ctrl.Get(s));
  const Word65 a{rr_lat_.a_lo.Get(s), rr_lat_.a_hi.GetBit(s)};
  const Word65 b{rr_lat_.b_lo.Get(s), rr_lat_.b_hi.GetBit(s)};

  switch (port) {
    case kPortBranch:
      DoBranch(port, d, a);
      return;
    case kPortAgu0:
    case kPortAgu1:
      DoAgu(port, d, a, b);
      return;
    case kPortComplex: {
      const int slot = cpipe_.FreeSlot();
      if (slot < 0) return;  // structural stall
      const AluResult r = ExecuteAlu(d, a.lo, b.lo);
      const std::size_t c = static_cast<std::size_t>(slot);
      cpipe_.valid.Set(c, 1);
      cpipe_.alloc_ptr.Set(0, (c + 1) % cpipe_.slots);
      cpipe_.timer.Set(c, static_cast<std::uint64_t>(ComplexLatency(d.op) - 1));
      cpipe_.value_lo.Set(c, r.value);
      cpipe_.value_hi.Set(c, 0);
      cpipe_.exc.Set(c, static_cast<std::uint64_t>(r.exc));
      cpipe_.dstp.Set(c, rr_lat_.dstp.Get(s));
      if (cpipe_.ecc_on) cpipe_.dst_ecc.Set(c, rr_lat_.dst_ecc.Get(s));
      cpipe_.has_dst.Set(c, rr_lat_.has_dst.Get(s));
      cpipe_.robtag.Set(c, rr_lat_.robtag.Get(s));
      cpipe_.sched_idx.Set(c, rr_lat_.sched_idx.Get(s));
      rr_lat_.valid.Set(s, 0);
      return;
    }
    default: {  // simple ALU ports
      const AluResult r = ExecuteAlu(d, a.lo, b.lo);
      const std::uint64_t tag = rr_lat_.robtag.Get(s) % rob_.entries();
      if (r.exc != Exception::kNone) {
        rob_.exc.Set(tag, static_cast<std::uint64_t>(r.exc));
        rob_.done.Set(tag, 1);
        sched_.Free(rr_lat_.sched_idx.Get(s) % sched_.entries());
        rr_lat_.valid.Set(s, 0);
        return;
      }
      if (ProduceResultInternal({r.value, false}, rr_lat_.dstp.Get(s),
                                rr_lat_.ecc_on ? rr_lat_.dst_ecc.Get(s) : 0,
                                rr_lat_.has_dst.GetBit(s),
                                rr_lat_.robtag.Get(s),
                                rr_lat_.sched_idx.Get(s), true))
        rr_lat_.valid.Set(s, 0);
      return;
    }
  }
}

void Core::ExecuteStage() {
  // Complex-pipe completion first (frees WB slots fairly).
  for (std::size_t c = 0; c < cpipe_.slots; ++c) {
    if (!cpipe_.valid.GetBit(c)) continue;
    const std::uint64_t t = cpipe_.timer.Get(c);
    if (t > 1) {
      cpipe_.timer.Set(c, t - 1);
      continue;
    }
    const Exception exc = static_cast<Exception>(cpipe_.exc.Get(c) % 7);
    const std::uint64_t tag = cpipe_.robtag.Get(c) % rob_.entries();
    if (exc != Exception::kNone) {
      rob_.exc.Set(tag, static_cast<std::uint64_t>(exc));
      rob_.done.Set(tag, 1);
      sched_.Free(cpipe_.sched_idx.Get(c) % sched_.entries());
      cpipe_.valid.Set(c, 0);
      continue;
    }
    if (ProduceResultInternal({cpipe_.value_lo.Get(c), cpipe_.value_hi.GetBit(c)},
                              cpipe_.dstp.Get(c),
                              cpipe_.ecc_on ? cpipe_.dst_ecc.Get(c) : 0,
                              cpipe_.has_dst.GetBit(c), cpipe_.robtag.Get(c),
                              cpipe_.sched_idx.Get(c), true))
      cpipe_.valid.Set(c, 0);
  }

  for (int port = 0; port < kNumPorts; ++port) ExecuteOnPort(port);
}

// ---------------------------------------------------------------------------
// Register read / select / dispatch
// ---------------------------------------------------------------------------

void Core::RegReadStage() {
  for (std::size_t s = 0; s < issue_lat_.slots; ++s) {
    if (!issue_lat_.valid.GetBit(s) || rr_lat_.valid.GetBit(s)) continue;

    const DecodedInst d = UnpackCtrl(issue_lat_.ctrl.Get(s));
    const RPtr p1 = CheckPtr({issue_lat_.src1p.Get(s),
                              issue_lat_.ecc_on ? issue_lat_.src1_ecc.Get(s) : 0},
                             issue_lat_.ecc_on);
    const RPtr p2 =
        CheckPtr({issue_lat_.src2p.Get(s),
                  issue_lat_.ecc_on ? issue_lat_.src2_ecc.Get(s) : 0},
                 issue_lat_.ecc_on);

    // Wakeup broadcasts are scheduled at issue time with the producer's
    // *advertised* latency. A producer can miss that schedule (writeback
    // bank or complex pipe structurally full, a delayed load delivery), in
    // which case a woken consumer arrives here with an operand that is
    // neither in the register file nor in the bypass bank. Latching the
    // read anyway would capture stale bits, so the uop returns to the
    // scheduler and waits for the producer's actual writeback broadcast
    // (every register-file write re-broadcasts — the safety net). Its own
    // advertised wakeup is premature by the same token and is cancelled;
    // any of its consumers that already issued bounce off this same guard.
    const auto available = [&](const RPtr& p) {
      const std::uint64_t preg = p.val % regfile_.count();
      return regfile_.Ready(preg) || WbBankHolds(preg);
    };
    const bool miss1 = OpHasSrc1(d.op) && !available(p1);
    const bool miss2 = OpHasSrc2(d.op) && !available(p2);
    if (miss1 || miss2) {
      ++stats_.wakeup_replays;
      const std::uint64_t si = issue_lat_.sched_idx.Get(s) % sched_.entries();
      if (sched_.valid.GetBit(si) &&
          sched_.robtag.Get(si) == issue_lat_.robtag.Get(s)) {
        sched_.state.Set(si, Scheduler::kWaiting);
        if (miss1) sched_.src1_rdy.Set(si, 0);
        if (miss2) sched_.src2_rdy.Set(si, 0);
      }
      if (issue_lat_.has_dst.GetBit(s)) wakeups_.Kill(issue_lat_.dstp.Get(s));
      issue_lat_.valid.Set(s, 0);
      continue;
    }

    const Word65 a = ReadOperand(p1.val % regfile_.count());
    Word65 b{static_cast<std::uint64_t>(d.imm), false};
    if (OpHasSrc2(d.op)) b = ReadOperand(p2.val % regfile_.count());

    rr_lat_.valid.Set(s, 1);
    rr_lat_.ctrl.Set(s, issue_lat_.ctrl.Get(s));
    if (s == kPortBranch) {
      rr_lat_.pc.Set(0, issue_lat_.pc.Get(0));
      rr_lat_.pred_taken.Set(0, issue_lat_.pred_taken.Get(0));
      rr_lat_.pred_target.Set(0, issue_lat_.pred_target.Get(0));
      rr_lat_.ras_ckpt.Set(0, issue_lat_.ras_ckpt.Get(0));
    }
    rr_lat_.src1p.Set(s, issue_lat_.src1p.Get(s));
    rr_lat_.src2p.Set(s, issue_lat_.src2p.Get(s));
    rr_lat_.dstp.Set(s, issue_lat_.dstp.Get(s));
    if (rr_lat_.ecc_on) {
      rr_lat_.src1_ecc.Set(s, issue_lat_.src1_ecc.Get(s));
      rr_lat_.src2_ecc.Set(s, issue_lat_.src2_ecc.Get(s));
      rr_lat_.dst_ecc.Set(s, issue_lat_.dst_ecc.Get(s));
    }
    rr_lat_.has_dst.Set(s, issue_lat_.has_dst.Get(s));
    rr_lat_.robtag.Set(s, issue_lat_.robtag.Get(s));
    rr_lat_.lsq_idx.Set(s, issue_lat_.lsq_idx.Get(s));
    rr_lat_.sched_idx.Set(s, issue_lat_.sched_idx.Get(s));
    rr_lat_.a_lo.Set(s, a.lo);
    rr_lat_.a_hi.Set(s, a.hi ? 1 : 0);
    rr_lat_.b_lo.Set(s, b.lo);
    rr_lat_.b_hi.Set(s, b.hi ? 1 : 0);
    issue_lat_.valid.Set(s, 0);
  }
}

void Core::SelectStage() {
  // Fire matured wakeup broadcasts.
  for (std::size_t i = 0; i < wakeups_.slots; ++i) {
    if (!wakeups_.valid.GetBit(i)) continue;
    const std::uint64_t d = wakeups_.delay.Get(i);
    if (d == 0) {
      sched_.Wakeup(wakeups_.preg.Get(i));
      wakeups_.valid.Set(i, 0);
    } else {
      wakeups_.delay.Set(i, d - 1);
    }
  }

  // Collect ready entries, oldest first, and bind them to free ports.
  struct Ready {
    std::uint64_t age;
    std::size_t entry;
    PortClass pclass;
  };
  std::vector<Ready> ready;
  ready.reserve(8);
  for (std::size_t i = 0; i < sched_.entries(); ++i) {
    if (!sched_.ReadyToIssue(i)) continue;
    const DecodedInst d = UnpackCtrl(sched_.ctrl.Get(i));
    ready.push_back({rob_.AgeOf(sched_.robtag.Get(i)), i, PortFor(d.cls)});
  }
  std::sort(ready.begin(), ready.end(),
            [](const Ready& x, const Ready& y) { return x.age < y.age; });

  auto port_free = [&](int p) {
    return !issue_lat_.valid.GetBit(static_cast<std::size_t>(p));
  };
  auto issue_to = [&](int p, std::size_t i) {
    const std::size_t s = static_cast<std::size_t>(p);
    issue_lat_.valid.Set(s, 1);
    issue_lat_.ctrl.Set(s, sched_.ctrl.Get(i));
    if (p == kPortBranch) {
      issue_lat_.pc.Set(0, sched_.pc.Get(i));
      issue_lat_.pred_taken.Set(0, sched_.pred_taken.Get(i));
      issue_lat_.pred_target.Set(0, sched_.pred_target.Get(i));
      issue_lat_.ras_ckpt.Set(0, sched_.ras_ckpt.Get(i));
    }
    issue_lat_.src1p.Set(s, sched_.src1p.Get(i));
    issue_lat_.src2p.Set(s, sched_.src2p.Get(i));
    issue_lat_.dstp.Set(s, sched_.dstp.Get(i));
    if (issue_lat_.ecc_on) {
      issue_lat_.src1_ecc.Set(s, sched_.src1_ecc.Get(i));
      issue_lat_.src2_ecc.Set(s, sched_.src2_ecc.Get(i));
      issue_lat_.dst_ecc.Set(s, sched_.dst_ecc.Get(i));
    }
    issue_lat_.has_dst.Set(s, sched_.has_dst.Get(i));
    issue_lat_.robtag.Set(s, sched_.robtag.Get(i));
    issue_lat_.lsq_idx.Set(s, sched_.lsq_idx.Get(i));
    issue_lat_.sched_idx.Set(s, i);
    sched_.state.Set(i, Scheduler::kIssued);

    // Schedule the wakeup broadcast for this producer's latency class.
    if (sched_.has_dst.GetBit(i)) {
      const DecodedInst d = UnpackCtrl(sched_.ctrl.Get(i));
      std::uint64_t delay = 0;  // simple ALU / branch link
      if (d.cls == InsnClass::kAluComplex)
        delay = static_cast<std::uint64_t>(ComplexLatency(d.op) - 1);
      else if (d.cls == InsnClass::kLoad)
        delay = 2;  // speculative: assumes an L1 hit
      wakeups_.Schedule(sched_.dstp.Get(i), delay);
    }
  };

  int simple_used = 0, agu_used = 0;
  bool complex_used = false, branch_used = false;
  for (const Ready& r : ready) {
    switch (r.pclass) {
      case PortClass::kSimple:
        if (simple_used == 0 && port_free(kPortSimple0)) {
          issue_to(kPortSimple0, r.entry);
          ++simple_used;
        } else if (simple_used <= 1 && port_free(kPortSimple1)) {
          issue_to(kPortSimple1, r.entry);
          simple_used = 2;
        }
        break;
      case PortClass::kComplex:
        if (!complex_used && port_free(kPortComplex)) {
          issue_to(kPortComplex, r.entry);
          complex_used = true;
        }
        break;
      case PortClass::kBranch:
        if (!branch_used && port_free(kPortBranch)) {
          issue_to(kPortBranch, r.entry);
          branch_used = true;
        }
        break;
      case PortClass::kAgu:
        if (agu_used == 0 && port_free(kPortAgu0)) {
          issue_to(kPortAgu0, r.entry);
          ++agu_used;
        } else if (agu_used <= 1 && port_free(kPortAgu1)) {
          issue_to(kPortAgu1, r.entry);
          agu_used = 2;
        }
        break;
    }
  }
}

void Core::DispatchStage() {
  DecodeLatchBank& d2 = decode_.stage2;
  std::uint64_t consumed = 0;

  for (std::uint64_t i = 0; i < d2.width; ++i) {
    if (!d2.valid.GetBit(i)) break;
    const std::uint32_t word = static_cast<std::uint32_t>(d2.insn.Get(i));
    const DecodedInst d = Decode(word);  // register specifiers from the word
    const DecodedInst dc = UnpackCtrl(d2.ctrl.Get(i));  // routing from ctrl

    if (rob_.Full()) break;
    const bool needs_sched = dc.cls != InsnClass::kSyscall &&
                             dc.cls != InsnClass::kIllegal;
    std::optional<std::size_t> slot;
    if (needs_sched) {
      slot = sched_.FreeEntry();
      if (!slot) break;
    }
    if (dc.cls == InsnClass::kLoad && lsq_.LqFull()) break;
    if (dc.cls == InsnClass::kStore && lsq_.SqFull()) break;
    if (d.dst != kNoReg && rename_.SpecFreeCount() == 0) break;

    const std::uint64_t pc = PcLoad(d2.pc.Get(i));
    const std::uint64_t tag = rob_.Allocate();
    rob_seq_[tag] = d2.seq[i];
    rob_.pc.Set(tag, d2.pc.Get(i));
    rob_.insn.Set(tag, word);
    if (rob_.parity_on) rob_.parity.Set(tag, d2.parity.Get(i));
    rob_.done.Set(tag, 0);
    rob_.exc.Set(tag, 0);
    rob_.is_store.Set(tag, dc.cls == InsnClass::kStore ? 1 : 0);
    rob_.is_load.Set(tag, dc.cls == InsnClass::kLoad ? 1 : 0);
    rob_.is_branch.Set(tag, d.IsBranchLike() ? 1 : 0);
    rob_.is_syscall.Set(tag, dc.cls == InsnClass::kSyscall ? 1 : 0);
    rob_.lsq_idx.Set(tag, 0);

    // Rename: sources first, then the destination.
    RPtr s1{0, rename_.ecc_on() ? EncodeRegptrEcc(0) : 0};
    RPtr s2 = s1;
    bool rdy1 = true, rdy2 = true;
    if (d.src1 != kNoReg) {
      s1 = rename_.LookupSpec(d.src1);
      rdy1 = regfile_.Ready(s1.val % regfile_.count());
      if (!rdy1) rdy1 = WbBankHolds(s1.val);
    }
    if (d.src2 != kNoReg) {
      s2 = rename_.LookupSpec(d.src2);
      rdy2 = regfile_.Ready(s2.val % regfile_.count());
      if (!rdy2) rdy2 = WbBankHolds(s2.val);
    }

    RPtr newp{0, rename_.ecc_on() ? EncodeRegptrEcc(0) : 0};
    RPtr oldp = newp;
    const bool has_dst = d.dst != kNoReg;
    if (has_dst) {
      newp = rename_.PopFree();
      oldp = rename_.RenameDst(d.dst, newp);
      regfile_.SetReady(newp.val % regfile_.count(), false);
    }
    rob_.areg.Set(tag, d.dst == kNoReg ? 0 : d.dst);
    rob_.has_dst.Set(tag, has_dst ? 1 : 0);
    WritePtrField(rob_.newp, rob_.newp_ecc, tag, newp, rob_.ecc_on);
    WritePtrField(rob_.oldp, rob_.oldp_ecc, tag, oldp, rob_.ecc_on);

    if (dc.cls == InsnClass::kIllegal) {
      rob_.done.Set(tag, 1);
      rob_.exc.Set(tag, static_cast<std::uint64_t>(Exception::kIllegalOpcode));
      ++consumed;
      continue;
    }
    if (dc.cls == InsnClass::kSyscall) {
      rob_.done.Set(tag, 1);
      ++consumed;
      continue;
    }

    std::uint64_t lsq_idx = 0;
    bool wait_store = false;
    std::uint64_t wait_tag = 0;
    if (dc.cls == InsnClass::kLoad) {
      lsq_idx = lsq_.AllocLq();
      lsq_.lq_robtag.Set(lsq_idx, tag);
      lsq_.lq_size.Set(lsq_idx, EncodeSizeCode(dc.mem_size));
      lsq_.lq_sext.Set(lsq_idx, d.op == Op::kLdl ? 1 : 0);
      WritePtrField(lsq_.lq_dstp, lsq_.lq_dst_ecc, lsq_idx, newp,
                    lsq_.ecc_on);
      lsq_.lq_has_dst.Set(lsq_idx, has_dst ? 1 : 0);
      lsq_.lq_spec.Set(lsq_idx, has_dst ? 1 : 0);
      lsq_.lq_sched.Set(lsq_idx, *slot);
      if (const auto dep = storesets_.LoadDependence(pc)) {
        wait_store = true;
        wait_tag = *dep;
      }
      rob_.lsq_idx.Set(tag, lsq_idx);
    } else if (dc.cls == InsnClass::kStore) {
      lsq_idx = lsq_.AllocSq();
      lsq_.sq_robtag.Set(lsq_idx, tag);
      lsq_.sq_size.Set(lsq_idx, EncodeSizeCode(dc.mem_size));
      storesets_.StoreDispatched(pc, tag);
      rob_.lsq_idx.Set(tag, lsq_idx);
    }

    const std::size_t e = *slot;
    sched_.NoteAllocated(e);
    sched_.valid.Set(e, 1);
    sched_.state.Set(e, Scheduler::kWaiting);
    sched_.ctrl.Set(e, d2.ctrl.Get(i));
    sched_.insn.Set(e, word);
    if (sched_.parity_on) sched_.parity.Set(e, d2.parity.Get(i));
    sched_.pc.Set(e, d2.pc.Get(i));
    sched_.pred_taken.Set(e, d2.pred_taken.Get(i));
    sched_.pred_target.Set(e, d2.pred_target.Get(i));
    sched_.ras_ckpt.Set(e, d2.ras_ckpt.Get(i));
    WritePtrField(sched_.src1p, sched_.src1_ecc, e, s1, sched_.ecc_on);
    WritePtrField(sched_.src2p, sched_.src2_ecc, e, s2, sched_.ecc_on);
    WritePtrField(sched_.dstp, sched_.dst_ecc, e, newp, sched_.ecc_on);
    sched_.src1_rdy.Set(e, rdy1 ? 1 : 0);
    sched_.src2_rdy.Set(e, rdy2 ? 1 : 0);
    sched_.has_dst.Set(e, has_dst ? 1 : 0);
    sched_.robtag.Set(e, tag);
    sched_.lsq_idx.Set(e, lsq_idx);
    sched_.wait_store.Set(e, wait_store ? 1 : 0);
    sched_.wait_tag.Set(e, wait_tag);
    ++consumed;
  }

  d2.ConsumePrefix(consumed);
}

bool Core::WbBankHolds(std::uint64_t preg) const {
  for (std::size_t i = 0; i < wb_.slots; ++i)
    if (wb_.valid.GetBit(i) && wb_.has_dst.GetBit(i) &&
        wb_.dstp.Get(i) == preg)
      return true;
  return false;
}

// ---------------------------------------------------------------------------
// Front end
// ---------------------------------------------------------------------------

void Core::FrontEnd() {
  DecodeLatchBank& d1 = decode_.stage1;
  if (d1.Occupancy() == 0) {
    for (std::uint64_t i = 0; i < d1.width; ++i) {
      if (fetch_.FqEmpty()) break;
      const std::uint64_t f = fetch_.FqHeadIndex();
      d1.valid.Set(i, 1);
      d1.pc.Set(i, fetch_.fq_pc.Get(f));
      d1.insn.Set(i, fetch_.fq_insn.Get(f));
      if (d1.parity_on) d1.parity.Set(i, fetch_.fq_parity.Get(f));
      d1.pred_taken.Set(i, fetch_.fq_pred_taken.Get(f));
      d1.pred_target.Set(i, fetch_.fq_pred_target.Get(f));
      d1.ras_ckpt.Set(i, fetch_.fq_ras_ckpt.Get(f));
      d1.seq[i] = fetch_.fq_seq[f];
      fetch_.FqPopHead();
    }
  }
  fetch_.DrainStaging();
  if (!fetch_.Run(icache_, bpred_, mem_, tlb_, &itlb_addr_))
    itlb_miss_ = true;
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void Core::SquashLatchesWithTag(std::uint64_t tag) {
  auto scrub = [&](UopLatchBank& bank) {
    for (std::size_t s = 0; s < bank.slots; ++s)
      if (bank.valid.GetBit(s) && bank.robtag.Get(s) == tag)
        bank.valid.Set(s, 0);
  };
  scrub(issue_lat_);
  scrub(rr_lat_);
  for (std::size_t c = 0; c < cpipe_.slots; ++c)
    if (cpipe_.valid.GetBit(c) && cpipe_.robtag.Get(c) == tag)
      cpipe_.valid.Set(c, 0);
  for (std::size_t w = 0; w < wb_.slots; ++w)
    if (wb_.valid.GetBit(w) && wb_.robtag.Get(w) == tag) wb_.valid.Set(w, 0);
}

void Core::SquashYoungerThan(std::uint64_t rob_tag, bool inclusive,
                             std::uint64_t restart_pc,
                             std::uint64_t ras_ckpt) {
  const std::uint64_t boundary_age = rob_.AgeOf(rob_tag % rob_.entries());
  while (rob_.Count() > 0) {
    const std::uint64_t youngest =
        (rob_.Head() + rob_.Count() - 1) % rob_.entries();
    const std::uint64_t age = rob_.AgeOf(youngest);
    if (inclusive ? age < boundary_age : age <= boundary_age) break;

    const std::uint64_t t = rob_.PopTail();
    if (rob_.has_dst.GetBit(t)) {
      const RPtr newp = ReadPtrField(rob_.newp, rob_.newp_ecc, t, rob_.ecc_on);
      const RPtr oldp = ReadPtrField(rob_.oldp, rob_.oldp_ecc, t, rob_.ecc_on);
      rename_.UndoRename(rob_.areg.Get(t), oldp);
      rename_.UnpopFree(newp);
      wakeups_.Kill(newp.val);
    }
    if (rob_.is_load.GetBit(t)) {
      const std::uint64_t li = lsq_.PopLqTail();
      dcache_.AbandonMshr(li);
    }
    if (rob_.is_store.GetBit(t)) {
      lsq_.PopSqTail();
      storesets_.StoreComplete(PcLoad(rob_.pc.Get(t)), t);
    }
    for (std::size_t e = 0; e < sched_.entries(); ++e)
      if (sched_.valid.GetBit(e) && sched_.robtag.Get(e) == t)
        sched_.valid.Set(e, 0);
    SquashLatchesWithTag(t);
  }

  decode_.Flush();
  fetch_.Redirect(restart_pc);
  if (ras_ckpt != kNoRas) bpred_.SetRasPtr(ras_ckpt);
}

void Core::FullFlush(std::uint64_t restart_pc) {
  ++stats_.full_flushes;
  rob_.Clear();
  lsq_.ClearQueues();
  sched_.Clear();
  decode_.Flush();
  issue_lat_.Invalidate();
  rr_lat_.Invalidate();
  wb_.Invalidate();
  cpipe_.Invalidate();
  wakeups_.Invalidate();
  storesets_.FlushInflight();
  dcache_.AbandonAll();
  rename_.CopyArchToSpec();
  for (std::uint64_t r = 0; r < regfile_.count(); ++r)
    regfile_.SetReady(r, true);
  fetch_.Redirect(restart_pc);
}

}  // namespace tfsim
