// Execution-path pipeline latches: issue -> register read -> execute ->
// writeback, the complex-ALU internal pipeline (2-5 cycle ops), and the
// pending-wakeup queue that implements speculative wakeup timing.
//
// These banks are the paper's latch populations: operand/result values are
// `data` latches, physical register pointers `regptr` latches, ROB tags
// `robptr` latches, and the packed control words `ctrl` latches. Six issue
// ports: 0-1 simple ALU, 2 complex ALU, 3 branch ALU, 4-5 AGU.
#pragma once

#include <cstdint>
#include <vector>

#include "state/state_registry.h"
#include "uarch/config.h"
#include "uarch/uop.h"

namespace tfsim {

inline constexpr int kNumPorts = 6;
inline constexpr int kPortSimple0 = 0;
inline constexpr int kPortSimple1 = 1;
inline constexpr int kPortComplex = 2;
inline constexpr int kPortBranch = 3;
inline constexpr int kPortAgu0 = 4;
inline constexpr int kPortAgu1 = 5;

// A bank of uop-carrying latches (one slot per issue port, or N generic
// slots). `with_values` adds the 65-bit operand value latches (the register
// read output bank).
struct UopLatchBank {
  UopLatchBank(StateRegistry& reg, const CoreConfig& cfg, const char* prefix,
               std::size_t slots, bool with_values);

  void Invalidate();

  std::size_t slots;
  bool ecc_on;
  bool with_values;

  StateField valid;        // 1 (valid)
  StateField ctrl;         // 26 (ctrl)
  StateField pc;           // 62 (pc)
  StateField pred_taken;   // 1 (ctrl)
  StateField pred_target;  // 62 (pc)
  StateField ras_ckpt;     // 3 (ctrl)
  StateField src1p, src2p, dstp;            // 7 (regptr)
  StateField src1_ecc, src2_ecc, dst_ecc;   // 4 (ecc) when enabled
  StateField has_dst;      // 1 (ctrl)
  StateField robtag;       // 6 (robptr)
  StateField lsq_idx;      // 4 (ctrl)
  StateField sched_idx;    // 5 (ctrl)
  StateField a_lo, b_lo;   // 64 (data) — operand values
  StateField a_hi, b_hi;   // 1 (data)
};

// Result slots awaiting the writeback stage.
struct WbBank {
  WbBank(StateRegistry& reg, const CoreConfig& cfg, std::size_t slots);

  // Returns a free slot index or -1 (writeback bandwidth exhausted).
  int FreeSlot() const;
  void Invalidate();

  std::size_t slots;
  bool ecc_on;
  StateField valid;
  StateField value_lo;  // 64 (data)
  StateField value_hi;  // 1 (data)
  StateField dstp;      // 7 (regptr)
  StateField dst_ecc;   // 4 (ecc)
  StateField has_dst;   // 1 (ctrl)
  StateField robtag;    // 6 (robptr)
  StateField sched_idx; // 5 (ctrl)
  StateField free_sched;  // 1 (ctrl): release the scheduler entry at WB
  StateField alloc_ptr;   // 4 (qctrl): round-robin slot allocation
};

// The complex ALU's internal pipeline: multi-cycle integer ops in flight.
struct ComplexPipe {
  ComplexPipe(StateRegistry& reg, const CoreConfig& cfg);

  int FreeSlot() const;
  void Invalidate();

  std::size_t slots;
  bool ecc_on;
  StateField alloc_ptr;  // 3 (qctrl): round-robin slot allocation
  StateField valid;
  StateField timer;     // 3 (ctrl): cycles until the result is ready
  StateField value_lo;  // 64 (data)
  StateField value_hi;  // 1 (data)
  StateField exc;       // 3 (ctrl)
  StateField dstp;      // 7 (regptr)
  StateField dst_ecc;
  StateField has_dst;
  StateField robtag;
  StateField sched_idx;
};

// Pending wakeup broadcasts: entries fire (set scheduler ready bits) after
// `delay` cycles, implementing speculative wakeup relative to expected
// producer latency.
struct WakeupQueue {
  WakeupQueue(StateRegistry& reg, const CoreConfig& cfg);

  void Schedule(std::uint64_t preg, std::uint64_t delay);
  // Removes pending events for this register (load-miss kill).
  void Kill(std::uint64_t preg);
  void Invalidate();

  std::size_t slots;
  StateField alloc_ptr;  // 4 (qctrl): round-robin slot allocation
  StateField valid;
  StateField preg;   // 7 (regptr)
  StateField delay;  // 3 (ctrl)
};

}  // namespace tfsim
