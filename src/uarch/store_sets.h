// Store-set memory dependence predictor (Chrysos & Emer), Figure 2.
//
// SSIT: 1024-entry table mapping instruction PCs to store-set IDs.
// LFST: per-set "last fetched store" tracking the ROB tag of the most recent
// in-flight store of the set.
//
// Like the branch predictors, these tables only influence *when* a load is
// allowed to issue — a wrong prediction either delays the load (harmless) or
// triggers a detected memory-order violation and squash — so they are
// background (non-injected) state.
#pragma once

#include <cstdint>
#include <optional>

#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

class StoreSets {
 public:
  StoreSets(StateRegistry& reg, const CoreConfig& cfg);

  // Called at dispatch of a load: returns the ROB tag of the store this load
  // should wait for, if its store set has one in flight.
  std::optional<std::uint64_t> LoadDependence(std::uint64_t pc) const;

  // Called at dispatch of a store: records it as the set's last fetched
  // store (if the store belongs to a set).
  void StoreDispatched(std::uint64_t pc, std::uint64_t rob_tag);

  // Called when a store executes, retires, or is squashed: clears the LFST
  // entry if it still names this store.
  void StoreComplete(std::uint64_t pc, std::uint64_t rob_tag);

  // Called on a detected memory-order violation: assigns load and store to a
  // common set so the load waits next time.
  void TrainViolation(std::uint64_t load_pc, std::uint64_t store_pc);

  // Drops all in-flight tracking (pipeline flush).
  void FlushInflight();

 private:
  std::uint64_t Index(std::uint64_t pc) const;

  StateField ssit_valid_;
  StateField ssit_set_;
  StateField lfst_valid_;
  StateField lfst_tag_;
};

}  // namespace tfsim
