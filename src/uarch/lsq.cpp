#include "uarch/lsq.h"

namespace tfsim {

Lsq::Lsq(StateRegistry& reg, const CoreConfig& cfg)
    : ecc_on(cfg.protect.regptr_ecc),
      lq_n_(static_cast<std::uint64_t>(cfg.lq_entries)),
      sq_n_(static_cast<std::uint64_t>(cfg.sq_entries)),
      sb_n_(static_cast<std::uint64_t>(cfg.store_buffer)) {
  const auto ram = Storage::kRam;
  const auto latch = Storage::kLatch;
  const std::uint64_t robbits =
      IndexBits(static_cast<std::uint64_t>(cfg.rob_entries));

  lq_valid = reg.Allocate("lq.valid", StateCat::kValid, ram, lq_n_, 1);
  lq_addr = reg.Allocate("lq.addr", StateCat::kAddr, ram, lq_n_, 64);
  lq_addr_valid =
      reg.Allocate("lq.addr_valid", StateCat::kCtrl, ram, lq_n_, 1);
  lq_size = reg.Allocate("lq.size", StateCat::kCtrl, ram, lq_n_, 2);
  lq_robtag =
      reg.Allocate("lq.robtag", StateCat::kRobptr, ram, lq_n_, robbits);
  lq_done = reg.Allocate("lq.done", StateCat::kCtrl, ram, lq_n_, 1);
  lq_fwd_valid =
      reg.Allocate("lq.fwd_valid", StateCat::kCtrl, ram, lq_n_, 1);
  lq_fwd_sq = reg.Allocate("lq.fwd_sq", StateCat::kCtrl, ram, lq_n_,
                           IndexBits(sq_n_));
  lq_state = reg.Allocate("lq.state", StateCat::kCtrl, ram, lq_n_, 3);
  lq_timer = reg.Allocate("lq.timer", StateCat::kCtrl, ram, lq_n_, 2);
  lq_value = reg.Allocate("lq.value", StateCat::kData, ram, lq_n_, 64);
  lq_sext = reg.Allocate("lq.sext", StateCat::kCtrl, ram, lq_n_, 1);
  lq_dstp = reg.Allocate("lq.dstp", StateCat::kRegptr, ram, lq_n_, 7);
  if (ecc_on)
    lq_dst_ecc = reg.Allocate("lq.dst_ecc", StateCat::kEcc, ram, lq_n_, 4);
  lq_has_dst = reg.Allocate("lq.has_dst", StateCat::kCtrl, ram, lq_n_, 1);
  lq_sched =
      reg.Allocate("lq.sched", StateCat::kCtrl, ram, lq_n_,
                   IndexBits(static_cast<std::uint64_t>(cfg.sched_entries)));
  lq_misskill = reg.Allocate("lq.misskill", StateCat::kCtrl, ram, lq_n_, 1);
  lq_spec = reg.Allocate("lq.spec", StateCat::kCtrl, ram, lq_n_, 1);
  lq_head = reg.Allocate("lq.head", StateCat::kQctrl, latch, 1,
                         IndexBits(lq_n_));
  lq_tail = reg.Allocate("lq.tail", StateCat::kQctrl, latch, 1,
                         IndexBits(lq_n_));
  lq_count = reg.Allocate("lq.count", StateCat::kQctrl, latch, 1,
                          CountBits(lq_n_));

  sq_valid = reg.Allocate("sq.valid", StateCat::kValid, ram, sq_n_, 1);
  sq_addr = reg.Allocate("sq.addr", StateCat::kAddr, ram, sq_n_, 64);
  sq_addr_valid =
      reg.Allocate("sq.addr_valid", StateCat::kCtrl, ram, sq_n_, 1);
  sq_data = reg.Allocate("sq.data", StateCat::kData, ram, sq_n_, 64);
  sq_data_hi = reg.Allocate("sq.data_hi", StateCat::kData, ram, sq_n_, 1);
  sq_data_valid =
      reg.Allocate("sq.data_valid", StateCat::kCtrl, ram, sq_n_, 1);
  sq_size = reg.Allocate("sq.size", StateCat::kCtrl, ram, sq_n_, 2);
  sq_robtag =
      reg.Allocate("sq.robtag", StateCat::kRobptr, ram, sq_n_, robbits);
  sq_head = reg.Allocate("sq.head", StateCat::kQctrl, latch, 1,
                         IndexBits(sq_n_));
  sq_tail = reg.Allocate("sq.tail", StateCat::kQctrl, latch, 1,
                         IndexBits(sq_n_));
  sq_count = reg.Allocate("sq.count", StateCat::kQctrl, latch, 1,
                          CountBits(sq_n_));

  sb_valid = reg.Allocate("sb.valid", StateCat::kValid, ram, sb_n_, 1);
  sb_addr = reg.Allocate("sb.addr", StateCat::kAddr, ram, sb_n_, 64);
  sb_data = reg.Allocate("sb.data", StateCat::kData, ram, sb_n_, 64);
  sb_size = reg.Allocate("sb.size", StateCat::kCtrl, ram, sb_n_, 2);
  sb_head = reg.Allocate("sb.head", StateCat::kQctrl, latch, 1,
                         IndexBits(sb_n_));
  sb_tail = reg.Allocate("sb.tail", StateCat::kQctrl, latch, 1,
                         IndexBits(sb_n_));
  sb_count = reg.Allocate("sb.count", StateCat::kQctrl, latch, 1,
                          CountBits(sb_n_));
}

std::uint64_t Lsq::AllocLq() {
  const std::uint64_t i = lq_tail.Get(0) % lq_n_;
  lq_tail.Set(0, (i + 1) % lq_n_);
  const std::uint64_t c = lq_count.Get(0);
  if (c < lq_n_) lq_count.Set(0, c + 1);
  lq_valid.Set(i, 1);
  lq_addr_valid.Set(i, 0);
  lq_done.Set(i, 0);
  lq_fwd_valid.Set(i, 0);
  lq_state.Set(i, kLqNoAddr);
  lq_misskill.Set(i, 0);
  lq_spec.Set(i, 0);
  return i;
}

std::uint64_t Lsq::AllocSq() {
  const std::uint64_t i = sq_tail.Get(0) % sq_n_;
  sq_tail.Set(0, (i + 1) % sq_n_);
  const std::uint64_t c = sq_count.Get(0);
  if (c < sq_n_) sq_count.Set(0, c + 1);
  sq_valid.Set(i, 1);
  sq_addr_valid.Set(i, 0);
  sq_data_valid.Set(i, 0);
  return i;
}

void Lsq::PopLqHead() {
  const std::uint64_t i = lq_head.Get(0) % lq_n_;
  lq_valid.Set(i, 0);
  lq_head.Set(0, (i + 1) % lq_n_);
  const std::uint64_t c = lq_count.Get(0);
  if (c > 0) lq_count.Set(0, c - 1);
}

void Lsq::PopSqHead() {
  const std::uint64_t i = sq_head.Get(0) % sq_n_;
  sq_valid.Set(i, 0);
  sq_head.Set(0, (i + 1) % sq_n_);
  const std::uint64_t c = sq_count.Get(0);
  if (c > 0) sq_count.Set(0, c - 1);
}

std::uint64_t Lsq::PopLqTail() {
  const std::uint64_t i = (lq_tail.Get(0) + lq_n_ - 1) % lq_n_;
  lq_tail.Set(0, i);
  lq_valid.Set(i, 0);
  const std::uint64_t c = lq_count.Get(0);
  if (c > 0) lq_count.Set(0, c - 1);
  return i;
}

std::uint64_t Lsq::PopSqTail() {
  const std::uint64_t i = (sq_tail.Get(0) + sq_n_ - 1) % sq_n_;
  sq_tail.Set(0, i);
  sq_valid.Set(i, 0);
  const std::uint64_t c = sq_count.Get(0);
  if (c > 0) sq_count.Set(0, c - 1);
  return i;
}

void Lsq::ClearQueues() {
  for (std::uint64_t i = 0; i < lq_n_; ++i) lq_valid.Set(i, 0);
  for (std::uint64_t i = 0; i < sq_n_; ++i) sq_valid.Set(i, 0);
  lq_head.Set(0, 0);
  lq_tail.Set(0, 0);
  lq_count.Set(0, 0);
  sq_head.Set(0, 0);
  sq_tail.Set(0, 0);
  sq_count.Set(0, 0);
}

void Lsq::SbPush(std::uint64_t addr, std::uint64_t data,
                 std::uint64_t size_code) {
  if (SbFull()) return;  // callers gate on SbFull; defined under corruption
  const std::uint64_t i = sb_tail.Get(0) % sb_n_;
  sb_valid.Set(i, 1);
  sb_addr.Set(i, addr);
  sb_data.Set(i, data);
  sb_size.Set(i, size_code);
  sb_tail.Set(0, (i + 1) % sb_n_);
  sb_count.Set(0, sb_count.Get(0) + 1);
}

bool Lsq::SbPop(std::uint64_t& addr, std::uint64_t& data, int& size) {
  if (SbEmpty()) return false;
  const std::uint64_t i = sb_head.Get(0) % sb_n_;
  addr = sb_addr.Get(i);
  data = sb_data.Get(i);
  size = DecodeSizeCode(sb_size.Get(i));
  sb_valid.Set(i, 0);
  sb_head.Set(0, (i + 1) % sb_n_);
  sb_count.Set(0, sb_count.Get(0) - 1);
  return true;
}

}  // namespace tfsim
