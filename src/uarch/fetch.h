// Front end: fetch PC, split-line 8-wide fetch through the I-cache with
// branch prediction, and the 32-entry fetch queue (Figure 2).
//
// Each fetched instruction enters the FQ with its PC, raw instruction word
// (+ parity bit when instruction-word parity protection is on), prediction
// info, and the RAS-pointer checkpoint used for recovery.
#pragma once

#include <cstdint>

#include "arch/memory.h"
#include "arch/tlb.h"
#include "state/state_registry.h"
#include "uarch/bpred.h"
#include "uarch/config.h"
#include "uarch/icache.h"

namespace tfsim {

class Fetch {
 public:
  Fetch(StateRegistry& reg, const CoreConfig& cfg);

  // Fetch stage 1: reads up to fetch_width instructions from the I-cache
  // into the fetch staging bank (runs only when the bank is empty). Returns
  // false if an instruction TLB miss occurred (addr reported via
  // *itlb_addr) — the trial classifier treats that as an itlb failure.
  bool Run(ICache& icache, Bpred& bpred, Memory& mem, Tlb& tlb,
           std::uint64_t* itlb_addr);

  // Fetch stage 2: drains the staging bank into the fetch queue as space
  // allows. Call before Run each cycle.
  void DrainStaging();

  std::uint64_t FetchPc() const;
  void SetFetchPc(std::uint64_t pc);

  std::uint64_t FqCount() const { return fq_count.Get(0); }
  bool FqEmpty() const { return FqCount() == 0; }
  // Pops the oldest FQ entry; index returned for payload access.
  std::uint64_t FqPopHead();
  std::uint64_t FqHeadIndex() const { return fq_head.Get(0) % fq_n_; }

  // Redirect after mispredict/flush: clears the FQ and restarts fetch.
  void Redirect(std::uint64_t pc);

  // Per-instruction fetch sequence numbers (instrumentation only — never
  // read by pipeline logic; used by the golden recorder for the Figure 6
  // valid-instructions-in-flight statistic).
  std::uint64_t seq_counter = 0;
  std::vector<std::uint64_t> fq_seq;

  // Fetch staging bank (the second fetch stage of the 12-stage pipe): the
  // freshly fetched group, latched before fetch-queue insertion. Heavy with
  // bubbles and wrong-path instructions — low-sensitivity latch state.
  StateField fb_valid;        // 1 (valid, latch)
  StateField fb_pc;           // 62 (pc, latch)
  StateField fb_insn;         // 32 (insn, latch)
  StateField fb_parity;       // 1 (parity, latch) when enabled
  StateField fb_pred_taken;   // 1 (ctrl, latch)
  StateField fb_pred_target;  // 62 (pc, latch)
  StateField fb_ras_ckpt;     // 3 (ctrl, latch)
  std::vector<std::uint64_t> fb_seq;  // instrumentation

  // FQ payload.
  StateField fq_valid;   // 1 (valid, RAM)
  StateField fq_pc;      // 62 (pc, RAM)
  StateField fq_insn;    // 32 (insn, RAM)
  StateField fq_parity;  // 1 (parity, RAM) when enabled
  StateField fq_pred_taken;   // 1 (ctrl, RAM)
  StateField fq_pred_target;  // 62 (pc, RAM)
  StateField fq_ras_ckpt;     // 3 (ctrl, RAM)
  StateField fq_head, fq_tail, fq_count;  // qctrl latches

  bool parity_on;

 private:
  std::uint64_t fq_n_;
  int width_;
  int line_bytes_;
  StateField fetch_pc_;  // 62-bit latch (pc)
};

}  // namespace tfsim
