// Register renaming state: speculative and architectural register alias
// tables plus speculative and architectural free lists (Figure 2: 4-wide
// rename from 80 physical registers, speculative and architectural maps).
//
// Categories map 1:1 onto the paper's Table 1: specrat/archrat (32 x 7-bit
// RAM each), specfreelist/archfreelist (48 x 7-bit RAM rings), with the ring
// pointers in qctrl latches.
//
// Misprediction recovery is by ROB walk-back (UndoRename / UnpopFree); full
// flushes copy the architectural map/free-list over the speculative ones.
//
// With ProtectionConfig::regptr_ecc every stored pointer is accompanied by
// 4 SEC check bits that travel with it from structure to structure
// (generated once at reset, as in the paper); reads through the *Checked
// helpers repair single-bit errors in place.
#pragma once

#include <cstdint>

#include "isa/isa.h"
#include "protect/ecc.h"
#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

// A physical register pointer with its (optional) travelling ECC bits.
struct RPtr {
  std::uint64_t val = 0;
  std::uint64_t ecc = 0;
};

// Repairs a pointer/ECC pair in place when ecc_on; returns the usable value.
RPtr CheckPtr(RPtr p, bool ecc_on);

// Reads element i of a pointer field (+ parallel ECC field), repairing and
// scrubbing single-bit errors when ecc_on.
RPtr ReadPtrField(StateField& val, StateField& ecc, std::size_t i,
                  bool ecc_on);
// Writes a pointer (+ECC when enabled) into element i.
void WritePtrField(StateField& val, StateField& ecc, std::size_t i, RPtr p,
                   bool ecc_on);

class Rename {
 public:
  Rename(StateRegistry& reg, const CoreConfig& cfg);

  void Reset();

  bool ecc_on() const { return ecc_on_; }

  // --- speculative map ------------------------------------------------------
  RPtr LookupSpec(std::uint64_t areg);
  // Maps areg to newp; returns the previous mapping (stored in the ROB for
  // walk-back and freeing).
  RPtr RenameDst(std::uint64_t areg, RPtr newp);
  void UndoRename(std::uint64_t areg, RPtr oldp);

  // --- speculative free list ------------------------------------------------
  std::uint64_t SpecFreeCount() const { return sfl_count_.Get(0); }
  RPtr PopFree();          // alloc at rename (empty -> phys 0, defined)
  void UnpopFree(RPtr p);  // walk-back of an allocation
  void PushFree(RPtr p);   // freed register at retirement

  // --- architectural map / free list ----------------------------------------
  RPtr ReadArch(std::uint64_t areg);
  // Raw (no ECC check/scrub) read.
  std::uint64_t ReadArchRaw(std::uint64_t areg) const;
  // ECC-corrected (when enabled), non-mutating pointer view for the
  // architectural-view hash.
  std::uint64_t ReadArchCorrectedView(std::uint64_t areg) const;
  void SetArch(std::uint64_t areg, RPtr p);
  RPtr PopArchFree();
  void PushArchFree(RPtr p);

  // Full-flush recovery: speculative map and free list become copies of the
  // architectural ones.
  void CopyArchToSpec();

  // --- raw audit views (invariant checker) ----------------------------------
  // Direct, non-mutating reads with no ECC scrub — the checker must see the
  // stored bits exactly as they are.
  std::uint64_t ReadSpecRaw(std::uint64_t areg) const {
    return specrat_.Get(areg % kNumArchRegs);
  }
  // Whole-field views so the checker can walk the RATs and free lists through
  // the registry's flat word array (StateField::offset()) instead of paying a
  // Get() per element on its per-cycle path.
  const StateField& SpecRatField() const { return specrat_; }
  const StateField& ArchRatField() const { return archrat_; }
  const StateField& SflField() const { return sfl_; }
  const StateField& AflField() const { return afl_; }
  std::uint64_t SflHead() const { return sfl_head_.Get(0); }
  std::uint64_t SflTail() const { return sfl_tail_.Get(0); }
  std::uint64_t AflHead() const { return afl_head_.Get(0); }
  std::uint64_t AflTail() const { return afl_tail_.Get(0); }
  std::uint64_t ArchFreeCount() const { return afl_count_.Get(0); }
  std::uint64_t free_size() const { return free_size_; }

 private:
  std::uint64_t free_size_;
  bool ecc_on_;

  StateField specrat_, specrat_ecc_;
  StateField archrat_, archrat_ecc_;
  StateField sfl_, sfl_ecc_;
  StateField sfl_head_, sfl_tail_, sfl_count_;
  StateField afl_, afl_ecc_;
  StateField afl_head_, afl_tail_, afl_count_;
};

}  // namespace tfsim
