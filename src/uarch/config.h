// Configuration of the pipeline model (Figure 2 of the paper) and of the
// Section 4 lightweight protection mechanisms.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfsim {

// Protection mechanisms (Section 4.2). Each independently toggleable so the
// ablation bench can attribute coverage to individual mechanisms.
struct ProtectionConfig {
  bool timeout_counter = false;   // flush after retire-less cycles
  bool regfile_ecc = false;       // SEC ECC on the 65-bit physical registers
  bool regptr_ecc = false;        // SEC ECC accompanying every 7-bit reg ptr
  bool insn_parity = false;       // parity bit carried with instruction words

  static ProtectionConfig None() { return {}; }
  static ProtectionConfig All() { return {true, true, true, true}; }
  bool Any() const {
    return timeout_counter || regfile_ecc || regptr_ecc || insn_parity;
  }
};

// Bits needed to *index* one of `n` slots: ceil(log2 n), minimum 1. This is
// the width of every ring pointer and structure tag in the pipeline, so the
// injectable latch count of queue control scales with configured depth
// exactly the way the paper's Table 1 accounting does at the default shape
// (IndexBits(64) == 6, IndexBits(16) == 4, ...).
constexpr std::uint64_t IndexBits(std::uint64_t n) {
  std::uint64_t bits = 1;
  while ((std::uint64_t{1} << bits) < n) ++bits;
  return bits;
}

// Bits needed to *hold the occupancy count* of an n-entry structure — the
// value range is [0, n] inclusive, one more state than an index needs
// (CountBits(64) == 7: a full 64-entry ROB stores count 64).
constexpr std::uint64_t CountBits(std::uint64_t n) {
  std::uint64_t bits = 1;
  while ((std::uint64_t{1} << bits) <= n) ++bits;
  return bits;
}

constexpr bool IsPow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

// One structured finding from CoreConfig::Validate(): the offending field
// and a human-readable constraint description.
struct ConfigIssue {
  std::string field;
  std::string message;
};

// Thrown by CoreConfig::ValidateOrThrow() (and therefore by Core's
// constructor) when a geometry is not instantiable.
struct ConfigError : std::invalid_argument {
  explicit ConfigError(std::string what, std::vector<ConfigIssue> issues_in)
      : std::invalid_argument(std::move(what)), issues(std::move(issues_in)) {}
  std::vector<ConfigIssue> issues;
};

// Microarchitecture parameters. Defaults follow the paper's Figure 2
// (Alpha 21264 / Athlon class). Sizes marked pow2 must stay powers of two.
// Any shape accepted by Validate() builds one and the same binary: every
// pointer/tag/count latch width is derived from these sizes via IndexBits/
// CountBits, and at the defaults those derivations reproduce the paper's
// Table 1 widths bit for bit (pinned by the inventory_audit ctest).
struct CoreConfig {
  // Front end.
  int fetch_width = 8;        // split-line fetch of up to 8 insns/cycle
  int fetch_queue = 32;       // fetch queue entries
  int ras_entries = 8;        // return address stack (pow2; pointer recovery)
  int btb_sets = 256;         // 1024 entries, 4-way (pow2 sets)
  int btb_ways = 4;
  int icache_bytes = 8 * 1024;   // 2-way L1 I (pow2 geometry)
  int icache_ways = 2;
  int line_bytes = 32;
  // Decode / rename.
  int decode_width = 4;
  int rename_width = 4;
  int phys_regs = 80;         // 33..128: regptrs are the paper's fixed 7 bits
  // Issue.
  int sched_entries = 32;
  // Memory.
  int lq_entries = 16;
  int sq_entries = 16;
  int store_buffer = 8;       // post-retirement store buffer (survives flushes)
  int dcache_bytes = 32 * 1024;  // 2-way, 8-bank L1 D (pow2 geometry)
  int dcache_ways = 2;
  int dcache_banks = 8;
  int mshrs = 16;             // non-coalescing miss handling registers
  int miss_cycles = 8;        // constant L1 miss service (paper Section 2.1)
  int dcache_latency = 2;     // load-to-use through the D-cache
  // Retire.
  int rob_entries = 64;
  int retire_width = 8;
  // Protection.
  ProtectionConfig protect;
  int timeout_cycles = 100;   // protection timeout-counter threshold
  // Self-checking: audit structural invariants (preg conservation, queue
  // pointer consistency, ROB/LSQ ordering...) after every cycle. Costs cycle
  // time when on (see EXPERIMENTS.md); violations are recorded on the core's
  // InvariantChecker and, when obs is attached, as check.violations.* metrics.
  bool check_invariants = false;

  // Structural constraint audit: pow2 constraints on pointer-masked and
  // set-indexed structures, width <= depth, minimum viable sizes, and the
  // fixed 7-bit regptr ceiling. Empty result == instantiable. Core's
  // constructor calls ValidateOrThrow(), so no pipeline can be built from a
  // shape that would silently truncate state (StateField::Set masks to
  // field width — an under-wide pointer field wraps instead of failing).
  std::vector<ConfigIssue> Validate() const;
  void ValidateOrThrow() const;

  // Derived.
  int MaxInFlight() const {
    return fetch_queue + rob_entries + fetch_width * decode_width;
  }
};

// Trial-level deadlock detection threshold (Section 4.1: the paper flags
// `locked` after 100 retire-less cycles; we use a slightly larger window so
// that a successful timeout-counter flush at 100 cycles has time to resume
// retirement before the trial-level detector fires — see EXPERIMENTS.md).
inline constexpr int kLockedThresholdCycles = 150;

}  // namespace tfsim
