// Configuration of the pipeline model (Figure 2 of the paper) and of the
// Section 4 lightweight protection mechanisms.
#pragma once

#include <cstdint>

namespace tfsim {

// Protection mechanisms (Section 4.2). Each independently toggleable so the
// ablation bench can attribute coverage to individual mechanisms.
struct ProtectionConfig {
  bool timeout_counter = false;   // flush after retire-less cycles
  bool regfile_ecc = false;       // SEC ECC on the 65-bit physical registers
  bool regptr_ecc = false;        // SEC ECC accompanying every 7-bit reg ptr
  bool insn_parity = false;       // parity bit carried with instruction words

  static ProtectionConfig None() { return {}; }
  static ProtectionConfig All() { return {true, true, true, true}; }
  bool Any() const {
    return timeout_counter || regfile_ecc || regptr_ecc || insn_parity;
  }
};

// Microarchitecture parameters. Defaults follow the paper's Figure 2
// (Alpha 21264 / Athlon class). Sizes marked pow2 must stay powers of two.
struct CoreConfig {
  // Front end.
  int fetch_width = 8;        // split-line fetch of up to 8 insns/cycle
  int fetch_queue = 32;       // fetch queue entries
  int ras_entries = 8;        // return address stack (with pointer recovery)
  int btb_sets = 256;         // 1024 entries, 4-way
  int btb_ways = 4;
  int icache_bytes = 8 * 1024;   // 2-way L1 I
  int icache_ways = 2;
  int line_bytes = 32;
  // Decode / rename.
  int decode_width = 4;
  int rename_width = 4;
  int phys_regs = 80;
  // Issue.
  int sched_entries = 32;
  // Memory.
  int lq_entries = 16;
  int sq_entries = 16;
  int store_buffer = 8;       // post-retirement store buffer (survives flushes)
  int dcache_bytes = 32 * 1024;  // 2-way, 8-bank L1 D
  int dcache_ways = 2;
  int dcache_banks = 8;
  int mshrs = 16;             // non-coalescing miss handling registers
  int miss_cycles = 8;        // constant L1 miss service (paper Section 2.1)
  int dcache_latency = 2;     // load-to-use through the D-cache
  // Retire.
  int rob_entries = 64;
  int retire_width = 8;
  // Protection.
  ProtectionConfig protect;
  int timeout_cycles = 100;   // protection timeout-counter threshold
  // Self-checking: audit structural invariants (preg conservation, queue
  // pointer consistency, ROB/LSQ ordering...) after every cycle. Costs cycle
  // time when on (see EXPERIMENTS.md); violations are recorded on the core's
  // InvariantChecker and, when obs is attached, as check.violations.* metrics.
  bool check_invariants = false;

  // Derived.
  int MaxInFlight() const { return fetch_queue + rob_entries + 8 * 4; }
};

// Trial-level deadlock detection threshold (Section 4.1: the paper flags
// `locked` after 100 retire-less cycles; we use a slightly larger window so
// that a successful timeout-counter flush at 100 cycles has time to resume
// retirement before the trial-level detector fires — see EXPERIMENTS.md).
inline constexpr int kLockedThresholdCycles = 150;

}  // namespace tfsim
