// L1 instruction cache: 8 KB, 2-way set-associative, 32-byte lines, with a
// constant 8-cycle miss service (the paper services every L1 miss in eight
// cycles to avoid long idle periods that would inflate masking).
//
// Tag/data/LRU arrays are background state (the paper excludes cache RAM
// arrays from injection — they are trivially protected by ECC in practice —
// but they still participate in whole-machine state equality).
#pragma once

#include <cstdint>

#include "arch/memory.h"
#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

class ICache {
 public:
  ICache(StateRegistry& reg, const CoreConfig& cfg);

  // Attempts to read the 32-bit word at `addr` this cycle. Returns false on
  // a miss (and starts the miss timer). `mem` backs fills.
  bool Read(std::uint64_t addr, Memory& mem, std::uint32_t& word);

  // Advances the miss timer; call once per cycle.
  void Tick(Memory& mem);

  bool MissPending() const { return miss_valid_.GetBit(0); }

 private:
  int sets_;
  int ways_;
  int line_bytes_;
  int miss_cycles_;

  std::size_t LineWords() const {
    return static_cast<std::size_t>(line_bytes_) / 8;
  }
  std::size_t Entry(std::uint64_t set, int way) const {
    return set * static_cast<std::size_t>(ways_) + static_cast<std::size_t>(way);
  }

  StateField valid_;
  StateField tag_;
  StateField lru_;   // 1 bit per entry (2-way: MRU marker)
  StateField data_;  // line data as 64-bit words
  StateField miss_valid_;
  StateField miss_addr_;
  StateField miss_timer_;
};

}  // namespace tfsim
