#include "uarch/decode_stage.h"

#include <string>

#include "isa/isa.h"
#include "uarch/uop.h"

namespace tfsim {

DecodeLatchBank::DecodeLatchBank(StateRegistry& reg, const CoreConfig& cfg,
                                 const char* prefix, bool with_ctrl)
    : has_ctrl(with_ctrl), parity_on(cfg.protect.insn_parity),
      width(static_cast<std::uint64_t>(cfg.decode_width)) {
  const auto latch = Storage::kLatch;
  const std::string p = prefix;
  valid = reg.Allocate(p + ".valid", StateCat::kValid, latch, width, 1);
  pc = reg.Allocate(p + ".pc", StateCat::kPc, latch, width, kPcBits);
  insn = reg.Allocate(p + ".insn", StateCat::kInsn, latch, width, 32);
  if (parity_on)
    parity = reg.Allocate(p + ".parity", StateCat::kParity, latch, width, 1);
  pred_taken =
      reg.Allocate(p + ".pred_taken", StateCat::kCtrl, latch, width, 1);
  pred_target =
      reg.Allocate(p + ".pred_target", StateCat::kPc, latch, width, kPcBits);
  ras_ckpt = reg.Allocate(p + ".ras_ckpt", StateCat::kCtrl, latch, width,
                          IndexBits(static_cast<std::uint64_t>(cfg.ras_entries)));
  if (with_ctrl)
    ctrl = reg.Allocate(p + ".ctrl", StateCat::kCtrl, latch, width, kCtrlBits);
  seq.resize(width, 0);
}

std::uint64_t DecodeLatchBank::Occupancy() const {
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < width; ++i)
    if (valid.GetBit(i)) ++n;
  return n;
}

void DecodeLatchBank::Invalidate() {
  for (std::uint64_t i = 0; i < width; ++i) valid.Set(i, 0);
}

void DecodeLatchBank::ConsumePrefix(std::uint64_t n) {
  if (n == 0) return;
  for (std::uint64_t i = 0; i < width; ++i) {
    const std::uint64_t from = i + n;
    const bool v = from < width && valid.GetBit(from);
    valid.Set(i, v ? 1 : 0);
    if (!v) continue;
    pc.Set(i, pc.Get(from));
    insn.Set(i, insn.Get(from));
    if (parity_on) parity.Set(i, parity.Get(from));
    pred_taken.Set(i, pred_taken.Get(from));
    pred_target.Set(i, pred_target.Get(from));
    ras_ckpt.Set(i, ras_ckpt.Get(from));
    if (has_ctrl) ctrl.Set(i, ctrl.Get(from));
    seq[i] = seq[from];
  }
}

DecodePipe::DecodePipe(StateRegistry& reg, const CoreConfig& cfg)
    : stage1(reg, cfg, "dec1", false), stage2(reg, cfg, "dec2", true) {}

void DecodePipe::Advance() {
  if (stage2.Occupancy() != 0 || stage1.Occupancy() == 0) return;
  for (std::uint64_t i = 0; i < stage1.width; ++i) {
    const bool v = stage1.valid.GetBit(i);
    stage2.valid.Set(i, v ? 1 : 0);
    if (!v) continue;
    const std::uint32_t word = static_cast<std::uint32_t>(stage1.insn.Get(i));
    stage2.pc.Set(i, stage1.pc.Get(i));
    stage2.insn.Set(i, word);
    if (stage1.parity_on) stage2.parity.Set(i, stage1.parity.Get(i));
    stage2.pred_taken.Set(i, stage1.pred_taken.Get(i));
    stage2.pred_target.Set(i, stage1.pred_target.Get(i));
    stage2.ras_ckpt.Set(i, stage1.ras_ckpt.Get(i));
    stage2.ctrl.Set(i, PackCtrl(Decode(word)));  // the decoder proper
    stage2.seq[i] = stage1.seq[i];
    stage1.valid.Set(i, 0);
  }
}

void DecodePipe::Flush() {
  stage1.Invalidate();
  stage2.Invalidate();
}

}  // namespace tfsim
