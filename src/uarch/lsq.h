// Load/store queues (16 entries each), plus the 8-entry post-retirement
// store buffer. The store buffer intentionally SURVIVES pipeline flushes —
// its stores are already architecturally committed — which is exactly why
// the paper notes that a corrupted store-buffer control field can deadlock
// the machine in a way a pipeline flush cannot repair (Section 4.1).
//
// LQ entries record the store-to-load forwarding source when it occurs —
// state the paper cites as often dead ("state in the memory unit that
// records store to load forwarding, which does not always occur").
#pragma once

#include <cstdint>

#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

// Size codes stored in 2-bit fields; any corrupted value decodes to a
// defined size.
inline int DecodeSizeCode(std::uint64_t code) {
  switch (code & 3) {
    case 0: return 1;
    case 1: return 4;
    default: return 8;
  }
}
inline std::uint64_t EncodeSizeCode(int size) {
  return size == 1 ? 0 : size == 4 ? 1 : 2;
}

// Load-entry state machine values (3-bit lq_state field; corrupted values
// beyond kLqDone behave as kLqNoAddr, i.e. the entry waits forever unless
// re-driven — a realistic deadlock source).
inline constexpr std::uint64_t kLqNoAddr = 0;
inline constexpr std::uint64_t kLqReady = 1;      // address known, may access
inline constexpr std::uint64_t kLqAccessing = 2;  // cache access in progress
inline constexpr std::uint64_t kLqWaitFill = 3;   // MSHR fill outstanding
inline constexpr std::uint64_t kLqDone = 4;

class Lsq {
 public:
  Lsq(StateRegistry& reg, const CoreConfig& cfg);

  bool ecc_on;

  std::uint64_t lq_entries() const { return lq_n_; }
  std::uint64_t sq_entries() const { return sq_n_; }

  // --- circular allocation (program order) ----------------------------------
  bool LqFull() const { return lq_count.Get(0) >= lq_n_; }
  bool SqFull() const { return sq_count.Get(0) >= sq_n_; }
  std::uint64_t AllocLq();
  std::uint64_t AllocSq();
  void PopLqHead();  // retirement
  void PopSqHead();
  std::uint64_t PopLqTail();  // walk-back squash
  std::uint64_t PopSqTail();
  // Age helpers (0 = oldest in queue).
  std::uint64_t LqAge(std::uint64_t i) const {
    return (i + lq_n_ - lq_head.Get(0) % lq_n_) % lq_n_;
  }
  std::uint64_t SqAge(std::uint64_t i) const {
    return (i + sq_n_ - sq_head.Get(0) % sq_n_) % sq_n_;
  }
  bool LqContains(std::uint64_t i) const { return LqAge(i) < lq_count.Get(0); }
  bool SqContains(std::uint64_t i) const { return SqAge(i) < sq_count.Get(0); }

  void ClearQueues();  // pipeline flush (store buffer NOT touched)

  // --- store buffer -----------------------------------------------------------
  bool SbFull() const { return sb_count.Get(0) >= sb_n_; }
  bool SbEmpty() const { return sb_count.Get(0) == 0; }
  void SbPush(std::uint64_t addr, std::uint64_t data, std::uint64_t size_code);
  // Pops the oldest store into the out parameters; returns false when empty.
  bool SbPop(std::uint64_t& addr, std::uint64_t& data, int& size);

  // Load queue payload.
  StateField lq_valid;       // 1 (valid)
  StateField lq_addr;        // 64 (addr)
  StateField lq_addr_valid;  // 1 (ctrl)
  StateField lq_size;        // 2 (ctrl)
  StateField lq_robtag;      // 6 (robptr)
  StateField lq_done;        // 1 (ctrl): load value produced
  StateField lq_fwd_valid;   // 1 (ctrl): forwarded from a store
  StateField lq_fwd_sq;      // 4 (qctrl-ish ctrl): forwarding SQ slot
  // Load execution state machine (see Core::MemStage).
  StateField lq_state;       // 3 (ctrl): kLqNoAddr..kLqDone
  StateField lq_timer;       // 2 (ctrl): cache-latency countdown
  StateField lq_value;       // 64 (data): latched load data
  StateField lq_sext;        // 1 (ctrl): sign-extend 32-bit loads
  StateField lq_dstp, lq_dst_ecc;  // 7 (regptr) / 4 (ecc)
  StateField lq_has_dst;     // 1 (ctrl)
  StateField lq_sched;       // 5 (ctrl): scheduler entry backpointer
  StateField lq_misskill;    // 1 (ctrl): miss kill pending next cycle
  StateField lq_spec;        // 1 (ctrl): speculative wakeup outstanding
  StateField lq_head, lq_tail, lq_count;  // qctrl latches

  // Store queue payload.
  StateField sq_valid;
  StateField sq_addr;        // 64 (addr)
  StateField sq_addr_valid;  // 1 (ctrl)
  StateField sq_data;        // 64 (data)
  StateField sq_data_hi;     // 1 (data) — 65th bit
  StateField sq_data_valid;  // 1 (ctrl)
  StateField sq_size;        // 2 (ctrl)
  StateField sq_robtag;      // 6 (robptr)
  StateField sq_head, sq_tail, sq_count;

  // Post-retirement store buffer (survives flushes).
  StateField sb_valid;
  StateField sb_addr;  // 64 (addr)
  StateField sb_data;  // 64 (data)
  StateField sb_size;  // 2 (ctrl)
  StateField sb_head, sb_tail, sb_count;  // qctrl — the paper's example of
                                          // unflushable deadlock state

 private:
  std::uint64_t lq_n_, sq_n_, sb_n_;
};

}  // namespace tfsim
