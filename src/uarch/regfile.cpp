#include "uarch/regfile.h"

namespace tfsim {
namespace {

constexpr std::size_t kEccPorts = 8;

Word65 Unpack65(std::uint64_t raw_lo, bool hi) { return {raw_lo, hi}; }

}  // namespace

RegFile::RegFile(StateRegistry& reg, const CoreConfig& cfg)
    : count_(static_cast<std::uint64_t>(cfg.phys_regs)),
      ecc_enabled_(cfg.protect.regfile_ecc) {
  value_ = reg.Allocate("regfile.value", StateCat::kRegfile, Storage::kRam,
                        count_, 64);
  // The 65th bit of each entry lives in its own field (the registry packs at
  // most 64 bits per element); together they form the paper's 65-bit entry.
  hi_ = reg.Allocate("regfile.value_hi", StateCat::kRegfile, Storage::kRam,
                     count_, 1);
  ready_ = reg.Allocate("regfile.ready", StateCat::kRegfile, Storage::kLatch,
                        count_, 1);
  if (ecc_enabled_) {
    ecc_ = reg.Allocate("regfile.ecc", StateCat::kEcc, Storage::kRam, count_,
                        kRegfileEccBits);
    ecc_pend_valid_ = reg.Allocate("regfile.ecc_pend_valid", StateCat::kEcc,
                                   Storage::kLatch, kEccPorts, 1);
    ecc_pend_preg_ = reg.Allocate("regfile.ecc_pend_preg", StateCat::kEcc,
                                  Storage::kLatch, kEccPorts, 7);
  }
}

bool RegFile::EccPendingFor(std::uint64_t preg) const {
  for (std::size_t p = 0; p < kEccPorts; ++p)
    if (ecc_pend_valid_.GetBit(p) && ecc_pend_preg_.Get(p) == preg)
      return true;
  return false;
}

Word65 RegFile::Read(std::uint64_t preg) {
  preg %= count_;
  Word65 v = Unpack65(value_.Get(preg), hi_.GetBit(preg));
  if (!ecc_enabled_ || EccPendingFor(preg)) return v;
  const EccDecodeResult r = DecodeRegfileEcc(v, ecc_.Get(preg));
  if (r.corrected) {
    // Scrub: write the repaired data/check back to the array.
    value_.Set(preg, r.data.lo);
    hi_.Set(preg, r.data.hi ? 1 : 0);
    ecc_.Set(preg, r.check);
    return r.data;
  }
  return v;  // clean, or uncorrectable (raw data used as-is)
}

Word65 RegFile::ReadRaw(std::uint64_t preg) const {
  preg %= count_;
  return Unpack65(value_.Get(preg), hi_.GetBit(preg));
}

Word65 RegFile::ReadCorrectedView(std::uint64_t preg) const {
  preg %= count_;
  const Word65 v = Unpack65(value_.Get(preg), hi_.GetBit(preg));
  if (!ecc_enabled_ || EccPendingFor(preg)) return v;
  return DecodeRegfileEcc(v, ecc_.Get(preg)).data;
}

void RegFile::Write(std::uint64_t preg, Word65 v) {
  preg %= count_;
  value_.Set(preg, v.lo);
  hi_.Set(preg, v.hi ? 1 : 0);
  ready_.Set(preg, 1);
  if (!ecc_enabled_) return;
  for (std::size_t p = 0; p < kEccPorts; ++p) {
    if (!ecc_pend_valid_.GetBit(p)) {
      ecc_pend_valid_.Set(p, 1);
      ecc_pend_preg_.Set(p, preg);
      return;
    }
  }
  // More writes in one cycle than ports: generate immediately (models a
  // bypassed encoder; keeps behaviour total).
  ecc_.Set(preg, EncodeRegfileEcc(v));
}

void RegFile::TickEcc() {
  if (!ecc_enabled_) return;
  for (std::size_t p = 0; p < kEccPorts; ++p) {
    if (!ecc_pend_valid_.GetBit(p)) continue;
    const std::uint64_t preg = ecc_pend_preg_.Get(p) % count_;
    const Word65 v = Unpack65(value_.Get(preg), hi_.GetBit(preg));
    ecc_.Set(preg, EncodeRegfileEcc(v));
    ecc_pend_valid_.Set(p, 0);
  }
}

void RegFile::Reset() {
  for (std::uint64_t r = 0; r < count_; ++r) {
    value_.Set(r, 0);
    hi_.Set(r, 0);
    ready_.Set(r, 1);
    if (ecc_enabled_) ecc_.Set(r, EncodeRegfileEcc({0, false}));
  }
}

}  // namespace tfsim
