// Pipeline introspection: renders the live machine state — every queue,
// latch bank and window with disassembly — for debugging the model and for
// teaching what an out-of-order machine is doing cycle by cycle.
#include <iomanip>
#include <ostream>

#include "uarch/core.h"
#include "uarch/uop.h"

namespace tfsim {
namespace {

void Hex(std::ostream& os, std::uint64_t v) {
  os << "0x" << std::hex << v << std::dec;
}

}  // namespace

void Core::DumpPipeline(std::ostream& os) const {
  os << "===== cycle " << stats_.cycles << " | retired " << retired_total_
     << " | IPC " << std::fixed << std::setprecision(2) << stats_.Ipc()
     << " =====\n";

  os << "fetch   pc=";
  Hex(os, fetch_.FetchPc());
  os << "  staging=";
  int staged = 0;
  for (std::uint64_t i = 0; i < 8; ++i)
    if (fetch_.fb_valid.GetBit(i)) ++staged;
  os << staged << "/8  FQ=" << fetch_.FqCount() << "/32"
     << (icache_.MissPending() ? "  [I$ miss pending]" : "") << "\n";

  auto dump_decode = [&](const char* name, const DecodeLatchBank& bank) {
    os << name << "  ";
    for (std::uint64_t i = 0; i < bank.width; ++i) {
      if (!bank.valid.GetBit(i)) {
        os << "[--------] ";
        continue;
      }
      const auto word = static_cast<std::uint32_t>(bank.insn.Get(i));
      os << "[" << Disassemble(word, PcLoad(bank.pc.Get(i))) << "] ";
    }
    os << "\n";
  };
  dump_decode("decode1", decode_.stage1);
  dump_decode("decode2", decode_.stage2);

  os << "sched   " << sched_.Occupancy() << "/32 entries:\n";
  for (std::uint64_t i = 0; i < sched_.entries(); ++i) {
    if (!sched_.valid.GetBit(i)) continue;
    const auto word = static_cast<std::uint32_t>(sched_.insn.Get(i));
    os << "  [" << std::setw(2) << i << "] rob#" << std::setw(2)
       << sched_.robtag.Get(i) << " "
       << (sched_.state.Get(i) == Scheduler::kIssued ? "ISSUED " : "WAIT   ")
       << "s1:p" << std::setw(2) << sched_.src1p.Get(i)
       << (sched_.src1_rdy.GetBit(i) ? "+" : "-") << " s2:p" << std::setw(2)
       << sched_.src2p.Get(i) << (sched_.src2_rdy.GetBit(i) ? "+" : "-")
       << (sched_.wait_store.GetBit(i) ? " (waits store)" : "")
       << "  " << Disassemble(word, PcLoad(sched_.pc.Get(i))) << "\n";
  }

  static const char* kPortNames[kNumPorts] = {"alu0", "alu1", "cplx",
                                              "bran", "agu0", "agu1"};
  os << "ports   issue:[";
  for (int p = 0; p < kNumPorts; ++p)
    os << (issue_lat_.valid.GetBit(static_cast<std::size_t>(p)) ? kPortNames[p]
                                                                : "----")
       << (p + 1 < kNumPorts ? " " : "");
  os << "]  regread:[";
  for (int p = 0; p < kNumPorts; ++p)
    os << (rr_lat_.valid.GetBit(static_cast<std::size_t>(p)) ? kPortNames[p]
                                                             : "----")
       << (p + 1 < kNumPorts ? " " : "");
  os << "]\n";

  int cplx = 0, wbn = 0;
  for (std::size_t i = 0; i < cpipe_.slots; ++i)
    if (cpipe_.valid.GetBit(i)) ++cplx;
  for (std::size_t i = 0; i < wb_.slots; ++i)
    if (wb_.valid.GetBit(i)) ++wbn;
  os << "exec    complex-pipe " << cplx << "/" << cpipe_.slots
     << "  wb-bank " << wbn << "/" << wb_.slots << "\n";

  os << "lsq     LQ " << lsq_.lq_count.Get(0) << "/16  SQ "
     << lsq_.sq_count.Get(0) << "/16  store-buffer " << lsq_.sb_count.Get(0)
     << "/8  MSHRs " << dcache_.MshrsInUse() << "/16\n";

  os << "rob     " << rob_.Count() << "/64";
  if (rob_.Count() > 0) {
    const std::uint64_t head = rob_.Head();
    const auto word = static_cast<std::uint32_t>(rob_.insn.Get(head));
    os << "  head rob#" << head << " "
       << (rob_.done.GetBit(head) ? "DONE " : "BUSY ")
       << Disassemble(word, PcLoad(rob_.pc.Get(head)));
  }
  os << "\n";

  os << "rename  free-regs " << rename_.SpecFreeCount() << "/48  map:";
  for (std::uint64_t a = 0; a < 8; ++a)
    os << " r" << a << "->p" << rename_.ReadArchRaw(a);
  os << " ...\n";
}

}  // namespace tfsim
