// Physical register file: 80 entries x 65 bits plus per-register scoreboard
// (ready) bits — the paper's `regfile` category (5200 RAM bits + 80 latch
// bits). With ProtectionConfig::regfile_ecc, each entry carries 8 ECC check
// bits generated one cycle after the data is written (the paper's
// deliberately cheap implementation, leaving a one-cycle vulnerability
// window) and checked/scrubbed on every read.
#pragma once

#include <cstdint>

#include "protect/ecc.h"
#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

class RegFile {
 public:
  RegFile(StateRegistry& reg, const CoreConfig& cfg);

  // Reads a register. With ECC enabled this checks the code, repairs and
  // scrubs single-bit errors (unless generation for this entry is still
  // pending from last cycle's write).
  Word65 Read(std::uint64_t preg);

  // Raw (no ECC check/scrub) read.
  Word65 ReadRaw(std::uint64_t preg) const;

  // The value as software would observe it: ECC-corrected when the
  // mechanism is enabled, but without mutating the array (used by the
  // architectural-view hash — a correctable flip is not a visible error).
  Word65 ReadCorrectedView(std::uint64_t preg) const;

  // Writes a register and marks it ready. ECC generation is deferred one
  // cycle (see TickEcc).
  void Write(std::uint64_t preg, Word65 value);

  bool Ready(std::uint64_t preg) const {
    return ready_.GetBit(preg % count_);
  }
  void SetReady(std::uint64_t preg, bool r) {
    ready_.Set(preg % count_, r ? 1 : 0);
  }

  // Generates ECC for registers written last cycle. Call once per cycle.
  void TickEcc();

  // Initializes register 0..31 contents/ECC and marks everything ready
  // (pipeline reset state).
  void Reset();

  std::uint64_t count() const { return count_; }

 private:
  bool EccPendingFor(std::uint64_t preg) const;

  std::uint64_t count_;
  bool ecc_enabled_;
  StateField value_;   // 80 x 64 (RAM, regfile)
  StateField hi_;      // 80 x 1  (RAM, regfile) — the 65th bit of each entry
  StateField ready_;   // 80 x 1  (latch, regfile) — the scoreboard
  StateField ecc_;     // 80 x 8  (RAM, ecc), when enabled
  // Write ports: up to 8 registers await ECC generation next cycle.
  StateField ecc_pend_valid_;  // 8 x 1 (latch, ecc)
  StateField ecc_pend_preg_;   // 8 x 7 (latch, ecc)
};

}  // namespace tfsim
