// Packed in-pipeline instruction representations.
//
// Pipeline structures store *bits*, not C++ objects: a control word packs the
// decoded opcode/class/immediate into 26 bits, and program counters are
// stored as 62-bit fields (byte address >> 2, the two always-zero bits are
// not stored — same convention the paper counts). Logic unpacks these stored
// bits every cycle, so a flipped bit genuinely changes what executes, and
// every unpack is total: any corrupted pattern yields defined behaviour.
#pragma once

#include <cstdint>

#include "isa/isa.h"

namespace tfsim {

// --- program counter compression (62-bit fields) ---------------------------

inline std::uint64_t PcStore(std::uint64_t pc) { return pc >> 2; }
inline std::uint64_t PcLoad(std::uint64_t stored) { return stored << 2; }
inline constexpr std::uint8_t kPcBits = 62;

// --- control word -----------------------------------------------------------

// Layout: [5:0] opcode, [9:6] class, [30:10] imm21 (covers both imm16 ALU/
// memory immediates and 21-bit branch displacements). 31 bits.
inline constexpr std::uint8_t kCtrlBits = 31;

inline std::uint64_t PackCtrl(const DecodedInst& d) {
  return (static_cast<std::uint64_t>(d.op) & 63) |
         ((static_cast<std::uint64_t>(d.cls) & 15) << 6) |
         ((static_cast<std::uint64_t>(d.imm) & 0x1FFFFF) << 10);
}

// Unpacks a (possibly corrupted) control word into a DecodedInst usable by
// the execution units. Class values beyond the defined range decode to
// kIllegal; the immediate is sign-extended from its 16 stored bits.
inline DecodedInst UnpackCtrl(std::uint64_t ctrl) {
  DecodedInst d;
  d.op = static_cast<Op>(ctrl & 63);
  const std::uint64_t cls = (ctrl >> 6) & 15;
  d.cls = cls <= static_cast<std::uint64_t>(InsnClass::kSyscall)
              ? static_cast<InsnClass>(cls)
              : InsnClass::kIllegal;
  d.imm = (static_cast<std::int64_t>((ctrl >> 10) & 0x1FFFFF) << 43) >> 43;
  switch (d.op) {
    case Op::kLdq:
    case Op::kStq: d.mem_size = 8; break;
    case Op::kLdl:
    case Op::kStl: d.mem_size = 4; break;
    case Op::kLdbu:
    case Op::kStb: d.mem_size = 1; break;
    default: d.mem_size = 8; break;  // defined fallback for corrupted routing
  }
  return d;
}

// Which register sources an opcode actually reads. Unused source slots carry
// dummy pointers from dispatch, so every CAM that *clears* readiness or
// reverts an issued entry (kill-wakeup, latch poisoning, the reg-read
// availability guard) must consult these: a dummy aliasing a live producer
// preg would otherwise revert an entry whose execution already left the
// poisonable latches, and the re-issue would complete twice — freeing the
// scheduler slot twice, the second free orphaning an innocent new tenant.
// Broadcasts that only *set* readiness may keep matching dummies; that is
// harmless.
inline bool OpHasSrc1(Op op) {
  switch (op) {
    case Op::kBr:
    case Op::kBsr:
    case Op::kSyscall:
      return false;
    default:
      return true;
  }
}

inline bool OpHasSrc2(Op op) {
  const std::uint8_t o = static_cast<std::uint8_t>(op);
  if (o >= 0x04 && o <= 0x1C) return true;  // R-format ALU
  switch (op) {
    case Op::kStq:
    case Op::kStl:
    case Op::kStb:
      return true;
    default:
      return false;
  }
}

// Execution port classes (Figure 2: 2 simple ALUs, 1 complex ALU,
// 1 branch ALU, 2 address generation units).
enum class PortClass : std::uint8_t { kSimple, kComplex, kBranch, kAgu };

inline PortClass PortFor(InsnClass cls) {
  switch (cls) {
    case InsnClass::kAluComplex: return PortClass::kComplex;
    case InsnClass::kCondBranch:
    case InsnClass::kBr:
    case InsnClass::kBsr:
    case InsnClass::kJmp:
    case InsnClass::kJsr:
    case InsnClass::kRet: return PortClass::kBranch;
    case InsnClass::kLoad:
    case InsnClass::kStore: return PortClass::kAgu;
    default: return PortClass::kSimple;  // kAlu + corrupted leftovers
  }
}

// Even-parity bit over a 32-bit instruction word (Section 4.2, instruction
// word parity).
inline std::uint64_t InsnParity(std::uint32_t word) {
  return static_cast<std::uint64_t>(__builtin_parity(word));
}

}  // namespace tfsim
