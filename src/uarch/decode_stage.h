// Decode pipeline: two 4-wide latch stages between the fetch queue and
// rename (the "Decode" stages of the 12-stage pipe). Stage 1 holds raw
// fetched words; stage 2 holds the decoded control bundle alongside the
// surviving instruction-word bits. All per-slot storage is latch-class
// injectable state (the paper's pc/insn/ctrl latch populations).
#pragma once

#include <cstdint>
#include <vector>

#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

// One 4-wide bank of pipeline latches carrying in-flight instructions.
struct DecodeLatchBank {
  DecodeLatchBank(StateRegistry& reg, const CoreConfig& cfg,
                  const char* prefix, bool with_ctrl);

  std::uint64_t Occupancy() const;
  void Invalidate();
  // Removes the first `n` slots, shifting the rest down.
  void ConsumePrefix(std::uint64_t n);

  StateField valid;        // 1 (valid, latch)
  StateField pc;           // 62 (pc, latch)
  StateField insn;         // 32 (insn, latch)
  StateField parity;       // 1 (parity, latch), when enabled
  StateField pred_taken;   // 1 (ctrl, latch)
  StateField pred_target;  // 62 (pc, latch)
  StateField ras_ckpt;     // 3 (ctrl, latch)
  StateField ctrl;         // 26 (ctrl, latch) — stage 2 only
  bool has_ctrl;
  bool parity_on;
  std::uint64_t width;
  // Instrumentation: fetch sequence numbers (never read by pipeline logic).
  std::vector<std::uint64_t> seq;
};

class DecodePipe {
 public:
  DecodePipe(StateRegistry& reg, const CoreConfig& cfg);

  DecodeLatchBank stage1;  // fetched, not yet decoded
  DecodeLatchBank stage2;  // decoded, awaiting rename

  // Advances stage1 -> stage2 (running the decoders) when stage2 is empty.
  void Advance();

  void Flush();
};

}  // namespace tfsim
