// Observability hooks of the detailed core: per-cycle occupancy sampling
// into the metrics registry and the chrome-trace pipeline lane, plus the
// CoreStats counter flush. Kept out of core.cpp so the hot pipeline file
// does not depend on the obs implementation headers.
#include "check/invariants.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "uarch/core.h"

namespace tfsim {

void Core::AttachObs(const obs::ObsSinks* obs) {
  obs_ = obs && obs->Any() ? obs : nullptr;
  h_fq_ = h_sched_ = h_rob_ = h_lq_ = h_sq_ = h_mshr_ = h_inflight_ = nullptr;
  c_viol_.clear();
  obs_flushed_ = CoreStats{};
  if (!obs_ || !obs_->metrics) return;
  obs::MetricsRegistry& m = *obs_->metrics;
  if (checker_) {
    c_viol_.resize(check::kNumInvariantKinds, nullptr);
    for (int k = 0; k < check::kNumInvariantKinds; ++k)
      c_viol_[static_cast<std::size_t>(k)] = &m.GetCounter(
          std::string("check.violations.") +
          check::InvariantKindName(static_cast<check::InvariantKind>(k)));
  }
  // Bucket shapes sized to each structure's *configured* capacity so the
  // histograms read directly as occupancy distributions at any geometry
  // (16 resolution buckets per structure; width 1 below 16 entries).
  const auto occ_width = [](int capacity) {
    return static_cast<std::uint64_t>(capacity >= 16 ? capacity / 16 : 1);
  };
  h_fq_ = &m.GetHistogram("pipe.fetchq.occupancy", occ_width(cfg_.fetch_queue),
                          17);
  h_sched_ = &m.GetHistogram("pipe.scheduler.occupancy",
                             occ_width(cfg_.sched_entries), 17);
  h_rob_ = &m.GetHistogram("pipe.rob.occupancy", occ_width(cfg_.rob_entries),
                           17);
  h_lq_ = &m.GetHistogram("pipe.lq.occupancy", occ_width(cfg_.lq_entries), 17);
  h_sq_ = &m.GetHistogram("pipe.sq.occupancy", occ_width(cfg_.sq_entries), 17);
  h_mshr_ = &m.GetHistogram("pipe.dcache.mshrs_in_use", occ_width(cfg_.mshrs),
                            9);
  h_inflight_ = &m.GetHistogram("pipe.inflight", occ_width(cfg_.MaxInFlight()),
                                18);
}

void Core::ObsCountViolations() {
  if (c_viol_.empty()) return;
  for (const check::InvariantKind k : checker_->last_kinds())
    c_viol_[static_cast<std::size_t>(k)]->Inc();
}

void Core::ObsSample() {
  const std::uint64_t fq = fetch_.FqCount();
  const std::uint64_t sched = static_cast<std::uint64_t>(sched_.Occupancy());
  const std::uint64_t rob = rob_.Count();
  const std::uint64_t lq = lsq_.lq_count.Get(0);
  const std::uint64_t sq = lsq_.sq_count.Get(0);
  const std::uint64_t mshr = static_cast<std::uint64_t>(dcache_.MshrsInUse());
  if (h_fq_) {
    h_fq_->Add(fq);
    h_sched_->Add(sched);
    h_rob_->Add(rob);
    h_lq_->Add(lq);
    h_sq_->Add(sq);
    h_mshr_->Add(mshr);
    h_inflight_->Add(InFlight());
  }
  if (obs_->chrome && stats_.cycles % obs_->chrome_sample_every == 0) {
    obs_->chrome->CounterEvent(
        "occupancy", obs::ChromeTraceWriter::kPidPipeline, stats_.cycles,
        {{"fetchq", static_cast<double>(fq)},
         {"scheduler", static_cast<double>(sched)},
         {"rob", static_cast<double>(rob)},
         {"lq", static_cast<double>(lq)},
         {"sq", static_cast<double>(sq)},
         {"mshrs", static_cast<double>(mshr)}});
  }
}

void Core::FlushObsCounters() {
  if (!obs_ || !obs_->metrics) return;
  obs::MetricsRegistry& m = *obs_->metrics;
  const CoreStats& s = stats_;
  const CoreStats& f = obs_flushed_;
  m.GetCounter("pipe.cycles").Inc(s.cycles - f.cycles);
  m.GetCounter("pipe.retired").Inc(s.retired - f.retired);
  m.GetCounter("pipe.fetch.branches").Inc(s.branches - f.branches);
  m.GetCounter("pipe.fetch.mispredicts").Inc(s.mispredicts - f.mispredicts);
  m.GetCounter("pipe.lsq.loads").Inc(s.loads - f.loads);
  m.GetCounter("pipe.dcache.misses").Inc(s.dcache_misses - f.dcache_misses);
  m.GetCounter("pipe.scheduler.replays").Inc(s.replays - f.replays);
  m.GetCounter("pipe.lsq.order_violations")
      .Inc(s.order_violations - f.order_violations);
  m.GetCounter("pipe.rob.full_flushes").Inc(s.full_flushes - f.full_flushes);
  m.GetCounter("pipe.rob.timeout_flushes")
      .Inc(s.timeout_flushes - f.timeout_flushes);
  m.GetCounter("pipe.rob.parity_flushes")
      .Inc(s.parity_flushes - f.parity_flushes);
  obs_flushed_ = s;
}

}  // namespace tfsim
