#include "uarch/dcache.h"

namespace tfsim {

DCache::DCache(StateRegistry& reg, const CoreConfig& cfg)
    : sets_(cfg.dcache_bytes / cfg.dcache_ways / cfg.line_bytes),
      ways_(cfg.dcache_ways), line_bytes_(cfg.line_bytes),
      banks_(cfg.dcache_banks), mshrs_(cfg.mshrs),
      miss_cycles_(cfg.miss_cycles) {
  const auto bg = Storage::kBackground;
  const std::size_t entries = static_cast<std::size_t>(sets_ * ways_);
  valid_ = reg.Allocate("dcache.valid", StateCat::kValid, bg, entries, 1);
  tag_ = reg.Allocate("dcache.tag", StateCat::kAddr, bg, entries, 22);
  lru_ = reg.Allocate("dcache.lru", StateCat::kCtrl, bg, entries, 1);
  data_ = reg.Allocate("dcache.data", StateCat::kData, bg,
                       entries * LineWords(), 64);

  // The paper injects the miss handling registers; as a 16-entry array they
  // count on the RAM side of the latch/RAM split.
  const std::size_t m = static_cast<std::size_t>(mshrs_);
  mshr_valid_ =
      reg.Allocate("mshr.valid", StateCat::kValid, Storage::kRam, m, 1);
  mshr_addr_ =
      reg.Allocate("mshr.addr", StateCat::kAddr, Storage::kRam, m, 58);
  mshr_timer_ =
      reg.Allocate("mshr.timer", StateCat::kCtrl, Storage::kRam, m,
                   CountBits(static_cast<std::uint64_t>(miss_cycles_)));
  mshr_lq_ = reg.Allocate("mshr.lq", StateCat::kCtrl, Storage::kRam, m,
                          IndexBits(static_cast<std::uint64_t>(cfg.lq_entries)));
  mshr_done_ =
      reg.Allocate("mshr.done", StateCat::kCtrl, Storage::kRam, m, 1);
  mshr_ptr_ =
      reg.Allocate("mshr.ptr", StateCat::kQctrl, Storage::kLatch, 1,
                   IndexBits(static_cast<std::uint64_t>(mshrs_)));
}

int DCache::FindWay(std::uint64_t addr) const {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::uint64_t tag = (line / static_cast<std::uint64_t>(sets_)) & 0x3FFFFF;
  for (int w = 0; w < ways_; ++w) {
    const std::size_t e = Entry(set, w);
    if (valid_.GetBit(e) && tag_.Get(e) == tag) return w;
  }
  return -1;
}

DCache::LoadResult DCache::AccessLoad(std::uint64_t addr, int size,
                                      Memory& mem, std::size_t lq_index,
                                      std::uint64_t& value) {
  const std::uint32_t bank =
      static_cast<std::uint32_t>((addr >> 3) % static_cast<std::uint64_t>(banks_));
  if (banks_used_ & (1u << bank)) return LoadResult::kRetry;
  banks_used_ |= 1u << bank;

  const int way = FindWay(addr);
  if (way >= 0) {
    const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
    const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
    const std::size_t e = Entry(set, way);
    lru_.Set(e, 1);
    if (ways_ == 2) lru_.Set(Entry(set, 1 - way), 0);
    // Assemble the value from the line's 64-bit words (accesses are
    // architecturally aligned, so one word suffices for sizes <= 8).
    const std::size_t wi =
        e * LineWords() + (addr % static_cast<std::uint64_t>(line_bytes_)) / 8;
    const std::uint64_t qword = data_.Get(wi);
    const std::uint64_t shift = (addr & 7) * 8;
    const std::uint64_t mask =
        size >= 8 ? ~0ULL : ((1ULL << (8 * size)) - 1);
    value = (qword >> shift) & mask;
    (void)mem;
    return LoadResult::kHit;
  }

  // Miss: allocate an MSHR (non-coalescing — one per access), round-robin
  // so every register is exercised.
  const std::uint64_t start = mshr_ptr_.Get(0) % static_cast<std::uint64_t>(mshrs_);
  for (int m = 0; m < mshrs_; ++m) {
    const std::size_t e =
        static_cast<std::size_t>((start + static_cast<std::uint64_t>(m)) %
                                 static_cast<std::uint64_t>(mshrs_));
    if (!mshr_valid_.GetBit(e)) {
      mshr_ptr_.Set(0, (e + 1) % static_cast<std::uint64_t>(mshrs_));
      mshr_valid_.Set(e, 1);
      mshr_addr_.Set(e, addr / static_cast<std::uint64_t>(line_bytes_));
      mshr_timer_.Set(e, static_cast<std::uint64_t>(miss_cycles_));
      mshr_lq_.Set(e, lq_index);
      mshr_done_.Set(e, 0);
      return LoadResult::kMiss;
    }
  }
  return LoadResult::kRetry;  // MSHRs full
}

bool DCache::FillReady(std::size_t lq_index) const {
  for (int m = 0; m < mshrs_; ++m) {
    const std::size_t e = static_cast<std::size_t>(m);
    if (mshr_valid_.GetBit(e) && mshr_done_.GetBit(e) &&
        mshr_lq_.Get(e) == lq_index)
      return true;
  }
  return false;
}

void DCache::ReleaseFill(std::size_t lq_index) {
  for (int m = 0; m < mshrs_; ++m) {
    const std::size_t e = static_cast<std::size_t>(m);
    if (mshr_valid_.GetBit(e) && mshr_done_.GetBit(e) &&
        mshr_lq_.Get(e) == lq_index) {
      mshr_valid_.Set(e, 0);
      return;
    }
  }
}

void DCache::AbandonMshr(std::size_t lq_index) {
  for (int m = 0; m < mshrs_; ++m) {
    const std::size_t e = static_cast<std::size_t>(m);
    if (mshr_valid_.GetBit(e) && mshr_lq_.Get(e) == lq_index)
      mshr_valid_.Set(e, 0);
  }
}

void DCache::AbandonAll() {
  for (int m = 0; m < mshrs_; ++m)
    mshr_valid_.Set(static_cast<std::size_t>(m), 0);
}

void DCache::Fill(std::uint64_t line, Memory& mem) {
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::uint64_t tag = (line / static_cast<std::uint64_t>(sets_)) & 0x3FFFFF;
  // Already present (e.g. two non-coalesced misses to one line)?
  for (int w = 0; w < ways_; ++w) {
    const std::size_t e = Entry(set, w);
    if (valid_.GetBit(e) && tag_.Get(e) == tag) return;
  }
  int victim = 0;
  for (int w = 0; w < ways_; ++w) {
    const std::size_t e = Entry(set, w);
    if (!valid_.GetBit(e)) { victim = w; break; }
    if (!lru_.GetBit(e)) victim = w;
  }
  const std::size_t e = Entry(set, victim);
  valid_.Set(e, 1);
  tag_.Set(e, tag);
  lru_.Set(e, 1);
  const std::uint64_t base = line * static_cast<std::uint64_t>(line_bytes_);
  for (std::size_t i = 0; i < LineWords(); ++i)
    data_.Set(e * LineWords() + i, mem.Read(base + i * 8, 8));
}

void DCache::WriteThrough(std::uint64_t addr, std::uint64_t data, int size,
                          Memory& mem) {
  mem.Write(addr, data, size);
  const int way = FindWay(addr);
  if (way < 0) return;  // no-allocate on store miss
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::size_t wi = Entry(set, way) * LineWords() +
                         (addr % static_cast<std::uint64_t>(line_bytes_)) / 8;
  std::uint64_t qword = data_.Get(wi);
  const std::uint64_t shift = (addr & 7) * 8;
  const std::uint64_t mask = size >= 8 ? ~0ULL : ((1ULL << (8 * size)) - 1);
  qword = (qword & ~(mask << shift)) | ((data & mask) << shift);
  data_.Set(wi, qword);
}

void DCache::Tick(Memory& mem) {
  banks_used_ = 0;
  for (int m = 0; m < mshrs_; ++m) {
    const std::size_t e = static_cast<std::size_t>(m);
    if (!mshr_valid_.GetBit(e) || mshr_done_.GetBit(e)) continue;
    const std::uint64_t t = mshr_timer_.Get(e);
    if (t > 1) {
      mshr_timer_.Set(e, t - 1);
    } else {
      Fill(mshr_addr_.Get(e), mem);
      mshr_done_.Set(e, 1);
    }
  }
}

int DCache::MshrsInUse() const {
  int n = 0;
  for (int m = 0; m < mshrs_; ++m)
    if (mshr_valid_.GetBit(static_cast<std::size_t>(m))) ++n;
  return n;
}

}  // namespace tfsim
