// The detailed pipeline model (Figure 1): a superscalar, dynamically
// scheduled, 12-stage, up-to-132-in-flight core executing miniAlpha —
// fetch (I$/bpred/RAS/FQ) -> 2-stage decode -> 4-wide rename -> 32-entry
// scheduler with speculative wakeup/replay -> register read -> 6 execution
// ports -> memory (LQ/SQ/store sets/banked D$/MSHRs) -> 64-entry ROB with
// 8-wide retirement and a post-retirement store buffer.
//
// Every microarchitectural bit lives in the StateRegistry, giving the fault
// injector a uniform bit space and giving trials an O(1) whole-machine
// state-equality test (StateHash). Stage evaluation runs in reverse pipeline
// order each cycle so writes become visible one cycle later, mimicking
// edge-triggered latching.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "arch/arch_state.h"
#include "arch/memory.h"
#include "arch/tlb.h"
#include "isa/assemble.h"
#include "obs/sinks.h"
#include "state/state_registry.h"
#include "uarch/bpred.h"
#include "uarch/config.h"
#include "uarch/dcache.h"
#include "uarch/decode_stage.h"
#include "uarch/execute.h"
#include "uarch/fetch.h"
#include "uarch/icache.h"
#include "uarch/lsq.h"
#include "uarch/regfile.h"
#include "uarch/rename.h"
#include "uarch/rob.h"
#include "uarch/scheduler.h"
#include "uarch/store_sets.h"

namespace tfsim {

namespace check {
class InvariantChecker;
}  // namespace check

// Counters exposed for experiments and realism checks (plain instrumentation,
// not machine state).
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  std::uint64_t loads = 0;
  std::uint64_t dcache_misses = 0;
  std::uint64_t replays = 0;
  std::uint64_t wakeup_replays = 0;
  std::uint64_t order_violations = 0;
  std::uint64_t full_flushes = 0;
  std::uint64_t timeout_flushes = 0;
  std::uint64_t parity_flushes = 0;
  double Ipc() const {
    return cycles ? static_cast<double>(retired) / static_cast<double>(cycles)
                  : 0.0;
  }
};

class Core {
 public:
  Core(const CoreConfig& cfg, const Program& program);
  ~Core();  // out-of-line: InvariantChecker is incomplete here

  // Advances one clock. Retire events produced this cycle are available via
  // RetiredThisCycle() until the next call.
  void Cycle();

  const std::vector<RetireEvent>& RetiredThisCycle() const {
    return retired_this_cycle_;
  }

  // Whole-machine content hash: pipeline + caches + predictors + memory +
  // program output. Equality with the golden run's hash at the same cycle is
  // the paper's "ENTIRE microarchitectural state" match.
  std::uint64_t StateHash() const;

  // Architectural-view hash: the 32 architectural registers as seen through
  // the architectural RAT, plus the next-retirement PC. Compared against the
  // golden run at equal retirement counts (paper: architectural state is
  // verified continuously).
  std::uint64_t ArchViewHash();

  StateRegistry& registry() { return registry_; }
  const StateRegistry& registry() const { return registry_; }
  Memory& memory() { return mem_; }
  Tlb& tlb() { return tlb_; }
  CoreStats& stats() { return stats_; }
  const CoreStats& stats() const { return stats_; }
  const CoreConfig& config() const { return cfg_; }

  // Read-only component views for the invariant checker / audits.
  const Rename& rename_unit() const { return rename_; }
  const Rob& rob() const { return rob_; }
  const Scheduler& scheduler() const { return sched_; }
  const Lsq& lsq() const { return lsq_; }
  const std::vector<std::uint64_t>& RobSeqs() const { return rob_seq_; }
  // Non-null iff CoreConfig::check_invariants; audited after every Cycle(),
  // cleared by Load(). Violations accumulate on the checker.
  const check::InvariantChecker* invariant_checker() const {
    return checker_.get();
  }
  check::InvariantChecker* invariant_checker() { return checker_.get(); }

  bool exited() const { return exited_; }
  Exception halted_exception() const { return halted_exc_; }
  // Set when a fetch touched an unmapped instruction page (itlb failure).
  bool itlb_miss() const { return itlb_miss_; }
  std::uint64_t itlb_addr() const { return itlb_addr_; }

  std::uint64_t RetiredTotal() const { return retired_total_; }
  bool StoreBufferEmpty() const { return lsq_.SbEmpty(); }

  // Number of in-flight instructions currently occupying the ROB + frontend
  // (for the Figure 6 utilization statistic).
  std::uint64_t InFlight() const;

  // Sequence-number instrumentation for the Figure 6 valid-instruction
  // statistic (never read by pipeline logic).
  std::uint64_t OldestInflightSeq() const;
  std::uint64_t NextFetchSeq() const { return fetch_.seq_counter; }
  // Sequence number of the most recently retired instruction (valid only
  // right after a retiring cycle); kNoSeq if none.
  static constexpr std::uint64_t kNoSeq = ~0ULL;
  const std::vector<std::uint64_t>& RetiredSeqsThisCycle() const {
    return retired_seqs_this_cycle_;
  }

  // --- checkpointing ---------------------------------------------------------
  struct Snapshot {
    std::vector<std::uint64_t> words;
    Memory mem;
    std::vector<std::uint8_t> output;
    std::uint64_t out_hash = 0;
    bool exited = false;
    std::uint64_t exit_code = 0;
    Exception halted_exc = Exception::kNone;
    std::uint64_t retired_total = 0;
    // Fetch-sequence instrumentation. Never read by pipeline logic, but the
    // invariant checker audits ROB program order through it, so a restored
    // machine must carry the saving core's numbering — and a worker replica
    // must not inherit stale numbers from whatever it ran before.
    std::uint64_t seq_counter = 0;
    std::vector<std::uint64_t> fq_seq, fb_seq, d1_seq, d2_seq, rob_seq;
  };
  Snapshot Save() const;
  void Load(const Snapshot& s);

  // Sparse difference between the current machine state and an earlier full
  // Snapshot of the same run. A few dozen to a few hundred cycles of
  // execution touch ~3% of registry words and a handful of memory words, so
  // the trial fast path stores one of these per distinct injection cycle
  // (~20 KB) instead of a full ~350 KB Snapshot. LoadDelta(base, d) after
  // SaveDelta(base) reproduces the captured machine bit-exactly (hashes
  // included); CoreStats and the itlb flag reset exactly as Load() does.
  struct SnapshotDelta {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> words;  // idx, value
    std::vector<std::pair<std::uint64_t, std::uint64_t>> mem;    // addr, word
    std::vector<std::uint8_t> output;
    std::uint64_t out_hash = 0;
    bool exited = false;
    std::uint64_t exit_code = 0;
    Exception halted_exc = Exception::kNone;
    std::uint64_t retired_total = 0;
    std::uint64_t seq_counter = 0;
    std::vector<std::uint64_t> fq_seq, fb_seq, d1_seq, d2_seq, rob_seq;
    // InFlight() at capture; lets fast-path trials report utilization
    // without restoring the machine.
    std::uint64_t inflight = 0;
  };
  SnapshotDelta SaveDelta(const Snapshot& base) const;
  void LoadDelta(const Snapshot& base, const SnapshotDelta& d);

  const std::vector<std::uint8_t>& output() const { return output_; }
  std::uint64_t OutputHash() const { return out_hash_; }

  // Writes a human-readable snapshot of the whole pipeline (front end,
  // scheduler, execution ports, LSQ, ROB) to `os` — the simulator's
  // debugging window. Implemented in uarch/trace.cpp.
  void DumpPipeline(std::ostream& os) const;

  // --- observability ---------------------------------------------------------
  // Attaches (or detaches, with nullptr) observability sinks. While attached,
  // every cycle samples per-stage occupancies (fetch queue, scheduler, ROB,
  // LQ/SQ, MSHRs, total in-flight) into metric histograms, and the chrome
  // trace receives sampled occupancy counter tracks. Costs one branch per
  // cycle when detached. `obs` must outlive the attachment.
  void AttachObs(const obs::ObsSinks* obs);
  // Adds the CoreStats event counters (squashes, replays, cache misses...)
  // accumulated since the last flush to the attached metrics registry.
  // Called by hosts before detach/destruction; no-op when unattached.
  void FlushObsCounters();

 private:
  // One full clock of pipeline evaluation (Cycle() minus observability).
  void CycleInner();
  // Pipeline stages, called in reverse order from CycleInner().
  void RetireStage();
  void StoreBufferDrain();
  void WritebackStage();
  void MemStage();
  void ExecuteStage();
  void RegReadStage();
  void SelectStage();
  void DispatchStage();
  void FrontEnd();

  // Helpers.
  void FullFlush(std::uint64_t restart_pc);
  void SquashYoungerThan(std::uint64_t rob_tag, bool inclusive,
                         std::uint64_t restart_pc, std::uint64_t ras_ckpt);
  void SquashLatchesWithTag(std::uint64_t tag);
  void KillLoadDependents(std::uint64_t lq_index);
  Word65 ReadOperand(std::uint64_t preg);
  // Places a result in the WB bank; false when writeback bandwidth is
  // exhausted this cycle (caller retries next cycle).
  bool ProduceResultInternal(Word65 value, std::uint64_t dstp,
                             std::uint64_t dst_ecc, bool has_dst,
                             std::uint64_t robtag, std::uint64_t sched_idx,
                             bool free_sched);
  bool WbBankHolds(std::uint64_t preg) const;
  void ExecuteOnPort(int port);
  void DoBranch(int port, const DecodedInst& d, Word65 a);
  void DoAgu(int port, const DecodedInst& d, Word65 a, Word65 b);
  bool TryLoadAccess(std::uint64_t li);
  void CheckOrderViolation(std::uint64_t sq_index);
  void RetireOne(bool& stop);

  CoreConfig cfg_;
  StateRegistry registry_;
  Memory mem_;
  Tlb tlb_;

  // Components (construction order defines the registry layout).
  Bpred bpred_;
  ICache icache_;
  DCache dcache_;
  StoreSets storesets_;
  RegFile regfile_;
  Rename rename_;
  Rob rob_;
  Scheduler sched_;
  Lsq lsq_;
  Fetch fetch_;
  DecodePipe decode_;
  UopLatchBank issue_lat_;  // select -> register read
  UopLatchBank rr_lat_;     // register read -> execute (with operand values)
  WbBank wb_;
  ComplexPipe cpipe_;
  WakeupQueue wakeups_;

  // Retirement-side registered state.
  StateField arch_next_pc_;   // 62-bit latch (pc): restart point after flush
  StateField timeout_count_;  // 7-bit latch (ctrl), when timeout protection on
  StateField resolved_target_;  // per-ROB-entry branch targets (62, RAM, pc)

  // Program-visible side state (part of Snapshot, not the registry).
  std::vector<std::uint8_t> output_;
  std::uint64_t out_hash_ = 0;
  bool exited_ = false;
  std::uint64_t exit_code_ = 0;
  Exception halted_exc_ = Exception::kNone;
  bool itlb_miss_ = false;
  std::uint64_t itlb_addr_ = 0;
  std::uint64_t retired_total_ = 0;

  // Instrumentation (never read by pipeline logic).
  std::unique_ptr<check::InvariantChecker> checker_;
  CoreStats stats_;
  std::vector<RetireEvent> retired_this_cycle_;
  std::vector<std::uint64_t> retired_seqs_this_cycle_;
  std::vector<std::uint64_t> rob_seq_;

  // Observability sinks (null when detached) and metric handles resolved at
  // attach time. Implemented in uarch/core_obs.cpp.
  void ObsSample();
  const obs::ObsSinks* obs_ = nullptr;
  obs::Histogram* h_fq_ = nullptr;
  obs::Histogram* h_sched_ = nullptr;
  obs::Histogram* h_rob_ = nullptr;
  obs::Histogram* h_lq_ = nullptr;
  obs::Histogram* h_sq_ = nullptr;
  obs::Histogram* h_mshr_ = nullptr;
  obs::Histogram* h_inflight_ = nullptr;
  // check.violations.<kind> counters, indexed by InvariantKind (resolved at
  // attach when this core runs checked; empty otherwise).
  std::vector<obs::Counter*> c_viol_;
  // Bumps c_viol_ for the kinds the checker just reported (core_obs.cpp).
  void ObsCountViolations();
  CoreStats obs_flushed_;  // counter values already pushed to the registry
};

}  // namespace tfsim
