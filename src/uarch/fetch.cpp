#include "uarch/fetch.h"

#include "uarch/uop.h"

namespace tfsim {

Fetch::Fetch(StateRegistry& reg, const CoreConfig& cfg)
    : parity_on(cfg.protect.insn_parity),
      fq_n_(static_cast<std::uint64_t>(cfg.fetch_queue)),
      width_(cfg.fetch_width), line_bytes_(cfg.line_bytes) {
  const auto ram = Storage::kRam;
  const std::uint64_t rasbits =
      IndexBits(static_cast<std::uint64_t>(cfg.ras_entries));
  fq_valid = reg.Allocate("fq.valid", StateCat::kValid, ram, fq_n_, 1);
  fq_pc = reg.Allocate("fq.pc", StateCat::kPc, ram, fq_n_, kPcBits);
  fq_insn = reg.Allocate("fq.insn", StateCat::kInsn, ram, fq_n_, 32);
  if (parity_on)
    fq_parity = reg.Allocate("fq.parity", StateCat::kParity, ram, fq_n_, 1);
  fq_pred_taken =
      reg.Allocate("fq.pred_taken", StateCat::kCtrl, ram, fq_n_, 1);
  fq_pred_target =
      reg.Allocate("fq.pred_target", StateCat::kPc, ram, fq_n_, kPcBits);
  fq_ras_ckpt =
      reg.Allocate("fq.ras_ckpt", StateCat::kCtrl, ram, fq_n_, rasbits);
  fq_head = reg.Allocate("fq.head", StateCat::kQctrl, Storage::kLatch, 1,
                         IndexBits(fq_n_));
  fq_tail = reg.Allocate("fq.tail", StateCat::kQctrl, Storage::kLatch, 1,
                         IndexBits(fq_n_));
  fq_count = reg.Allocate("fq.count", StateCat::kQctrl, Storage::kLatch, 1,
                          CountBits(fq_n_));
  fetch_pc_ =
      reg.Allocate("fetch.pc", StateCat::kPc, Storage::kLatch, 1, kPcBits);
  const auto latch = Storage::kLatch;
  const std::uint64_t w = static_cast<std::uint64_t>(width_);
  fb_valid = reg.Allocate("fb.valid", StateCat::kValid, latch, w, 1);
  fb_pc = reg.Allocate("fb.pc", StateCat::kPc, latch, w, kPcBits);
  fb_insn = reg.Allocate("fb.insn", StateCat::kInsn, latch, w, 32);
  if (parity_on)
    fb_parity = reg.Allocate("fb.parity", StateCat::kParity, latch, w, 1);
  fb_pred_taken =
      reg.Allocate("fb.pred_taken", StateCat::kCtrl, latch, w, 1);
  fb_pred_target =
      reg.Allocate("fb.pred_target", StateCat::kPc, latch, w, kPcBits);
  fb_ras_ckpt =
      reg.Allocate("fb.ras_ckpt", StateCat::kCtrl, latch, w, rasbits);
  fb_seq.resize(w, 0);
  fq_seq.resize(fq_n_, 0);
}

void Fetch::DrainStaging() {
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(width_); ++i) {
    if (!fb_valid.GetBit(i)) continue;
    if (fq_count.Get(0) >= fq_n_) return;  // keep program order: stop
    const std::uint64_t q = fq_tail.Get(0) % fq_n_;
    fq_valid.Set(q, 1);
    fq_pc.Set(q, fb_pc.Get(i));
    fq_insn.Set(q, fb_insn.Get(i));
    if (parity_on) fq_parity.Set(q, fb_parity.Get(i));
    fq_pred_taken.Set(q, fb_pred_taken.Get(i));
    fq_pred_target.Set(q, fb_pred_target.Get(i));
    fq_ras_ckpt.Set(q, fb_ras_ckpt.Get(i));
    fq_seq[q] = fb_seq[i];
    fq_tail.Set(0, (q + 1) % fq_n_);
    fq_count.Set(0, fq_count.Get(0) + 1);
    fb_valid.Set(i, 0);
  }
}

std::uint64_t Fetch::FetchPc() const { return PcLoad(fetch_pc_.Get(0)); }
void Fetch::SetFetchPc(std::uint64_t pc) { fetch_pc_.Set(0, PcStore(pc)); }

std::uint64_t Fetch::FqPopHead() {
  const std::uint64_t i = fq_head.Get(0) % fq_n_;
  fq_valid.Set(i, 0);
  fq_head.Set(0, (i + 1) % fq_n_);
  const std::uint64_t c = fq_count.Get(0);
  if (c > 0) fq_count.Set(0, c - 1);
  return i;
}

void Fetch::Redirect(std::uint64_t pc) {
  for (std::uint64_t i = 0; i < fq_n_; ++i) fq_valid.Set(i, 0);
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(width_); ++i)
    fb_valid.Set(i, 0);
  fq_head.Set(0, 0);
  fq_tail.Set(0, 0);
  fq_count.Set(0, 0);
  SetFetchPc(pc);
}

bool Fetch::Run(ICache& icache, Bpred& bpred, Memory& mem, Tlb& tlb,
                std::uint64_t* itlb_addr) {
  if (icache.MissPending()) return true;
  // Stage 1 stalls while the staging bank still holds instructions.
  for (std::uint64_t i = 0; i < static_cast<std::uint64_t>(width_); ++i)
    if (fb_valid.GetBit(i)) return true;
  std::uint64_t pc = FetchPc();
  int lines_touched = 0;
  std::uint64_t last_line = ~0ULL;
  for (int n = 0; n < width_; ++n) {
    // Split-line fetch: a fetch group may span at most two cache lines.
    const std::uint64_t line = pc / static_cast<std::uint64_t>(line_bytes_);
    if (line != last_line) {
      if (++lines_touched > 2) break;
      last_line = line;
    }
    if (!tlb.LookupInsn(pc)) {
      if (itlb_addr) *itlb_addr = pc;
      return false;
    }
    std::uint32_t word = 0;
    if (!icache.Read(pc, mem, word)) break;  // miss: timer started

    const DecodedInst d = Decode(word);
    const std::uint64_t ras_before = bpred.RasPtr();
    const BranchPrediction pred =
        d.IsBranchLike() ? bpred.Predict(pc, d) : BranchPrediction{false, pc + 4};

    const std::uint64_t i = static_cast<std::uint64_t>(n);
    fb_valid.Set(i, 1);
    fb_pc.Set(i, PcStore(pc));
    fb_insn.Set(i, word);
    if (parity_on) fb_parity.Set(i, InsnParity(word));
    fb_pred_taken.Set(i, pred.taken ? 1 : 0);
    fb_pred_target.Set(i, PcStore(pred.target));
    fb_ras_ckpt.Set(i, ras_before);
    fb_seq[i] = seq_counter++;

    pc = pred.taken ? pred.target : pc + 4;
    if (pred.taken) {
      // Taken control flow ends the fetch group.
      ++n;
      break;
    }
  }
  SetFetchPc(pc);
  return true;
}

}  // namespace tfsim
