#include "uarch/scheduler.h"

#include "uarch/uop.h"

#include <algorithm>

namespace tfsim {

Scheduler::Scheduler(StateRegistry& reg, const CoreConfig& cfg)
    : parity_on(cfg.protect.insn_parity), ecc_on(cfg.protect.regptr_ecc),
      entries_(static_cast<std::uint64_t>(cfg.sched_entries)) {
  const auto ram = Storage::kRam;
  const std::uint64_t n = entries_;
  valid = reg.Allocate("sched.valid", StateCat::kValid, ram, n, 1);
  state = reg.Allocate("sched.state", StateCat::kCtrl, ram, n, 2);
  ctrl = reg.Allocate("sched.ctrl", StateCat::kCtrl, ram, n, kCtrlBits);
  insn = reg.Allocate("sched.insn", StateCat::kInsn, ram, n, 32);
  if (parity_on)
    parity = reg.Allocate("sched.parity", StateCat::kParity, ram, n, 1);
  pc = reg.Allocate("sched.pc", StateCat::kPc, ram, n, kPcBits);
  pred_taken = reg.Allocate("sched.pred_taken", StateCat::kCtrl, ram, n, 1);
  pred_target =
      reg.Allocate("sched.pred_target", StateCat::kPc, ram, n, kPcBits);
  ras_ckpt = reg.Allocate("sched.ras_ckpt", StateCat::kCtrl, ram, n,
                          IndexBits(static_cast<std::uint64_t>(cfg.ras_entries)));
  src1p = reg.Allocate("sched.src1p", StateCat::kRegptr, ram, n, 7);
  src2p = reg.Allocate("sched.src2p", StateCat::kRegptr, ram, n, 7);
  dstp = reg.Allocate("sched.dstp", StateCat::kRegptr, ram, n, 7);
  if (ecc_on) {
    src1_ecc = reg.Allocate("sched.src1_ecc", StateCat::kEcc, ram, n, 4);
    src2_ecc = reg.Allocate("sched.src2_ecc", StateCat::kEcc, ram, n, 4);
    dst_ecc = reg.Allocate("sched.dst_ecc", StateCat::kEcc, ram, n, 4);
  }
  src1_rdy = reg.Allocate("sched.src1_rdy", StateCat::kCtrl, ram, n, 1);
  src2_rdy = reg.Allocate("sched.src2_rdy", StateCat::kCtrl, ram, n, 1);
  has_dst = reg.Allocate("sched.has_dst", StateCat::kCtrl, ram, n, 1);
  const std::uint64_t robbits =
      IndexBits(static_cast<std::uint64_t>(cfg.rob_entries));
  robtag = reg.Allocate("sched.robtag", StateCat::kRobptr, ram, n, robbits);
  lsq_idx = reg.Allocate("sched.lsq_idx", StateCat::kCtrl, ram, n,
                         IndexBits(static_cast<std::uint64_t>(
                             std::max(cfg.lq_entries, cfg.sq_entries))));
  wait_store = reg.Allocate("sched.wait_store", StateCat::kCtrl, ram, n, 1);
  wait_tag = reg.Allocate("sched.wait_tag", StateCat::kRobptr, ram, n, robbits);
  alloc_ptr = reg.Allocate("sched.alloc_ptr", StateCat::kQctrl,
                           Storage::kLatch, 1, IndexBits(entries_));
}

std::optional<std::size_t> Scheduler::FreeEntry() const {
  const std::uint64_t start = alloc_ptr.Get(0) % entries_;
  for (std::size_t k = 0; k < entries_; ++k) {
    const std::size_t i = (start + k) % entries_;
    if (!valid.GetBit(i)) return i;
  }
  return std::nullopt;
}

void Scheduler::NoteAllocated(std::size_t i) {
  alloc_ptr.Set(0, (i + 1) % entries_);
}

int Scheduler::Occupancy() const {
  int n = 0;
  for (std::size_t i = 0; i < entries_; ++i)
    if (valid.GetBit(i)) ++n;
  return n;
}

void Scheduler::Wakeup(std::uint64_t preg) {
  for (std::size_t i = 0; i < entries_; ++i) {
    if (!valid.GetBit(i)) continue;
    if (src1p.Get(i) == preg) src1_rdy.Set(i, 1);
    if (src2p.Get(i) == preg) src2_rdy.Set(i, 1);
  }
}

void Scheduler::KillWakeup(std::uint64_t preg, std::uint64_t loader_entry) {
  for (std::size_t i = 0; i < entries_; ++i) {
    if (!valid.GetBit(i) || i == loader_entry) continue;
    // Only real dependents match: an unused source slot holds a dummy
    // pointer, and clearing readiness on a dummy alias would revert an
    // entry whose execution may already be in flight past the poisonable
    // latches — it would then issue and complete twice, double-freeing its
    // scheduler slot onto the slot's next tenant.
    const DecodedInst d = UnpackCtrl(ctrl.Get(i));
    bool hit = false;
    if (OpHasSrc1(d.op) && src1p.Get(i) == preg) {
      src1_rdy.Set(i, 0);
      hit = true;
    }
    if (OpHasSrc2(d.op) && src2p.Get(i) == preg) {
      src2_rdy.Set(i, 0);
      hit = true;
    }
    if (hit && state.Get(i) == kIssued) state.Set(i, kWaiting);  // replay
  }
}

void Scheduler::StoreExecuted(std::uint64_t rob_tag) {
  for (std::size_t i = 0; i < entries_; ++i) {
    if (!valid.GetBit(i)) continue;
    if (wait_store.GetBit(i) && wait_tag.Get(i) == rob_tag)
      wait_store.Set(i, 0);
  }
}

bool Scheduler::ReadyToIssue(std::size_t i) const {
  return valid.GetBit(i) && state.Get(i) == kWaiting && src1_rdy.GetBit(i) &&
         src2_rdy.GetBit(i) && !wait_store.GetBit(i);
}

void Scheduler::Clear() {
  for (std::size_t i = 0; i < entries_; ++i) valid.Set(i, 0);
}

}  // namespace tfsim
