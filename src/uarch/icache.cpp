#include "uarch/icache.h"

namespace tfsim {

ICache::ICache(StateRegistry& reg, const CoreConfig& cfg)
    : sets_(cfg.icache_bytes / cfg.icache_ways / cfg.line_bytes),
      ways_(cfg.icache_ways), line_bytes_(cfg.line_bytes),
      miss_cycles_(cfg.miss_cycles) {
  const auto bg = Storage::kBackground;
  const std::size_t entries = static_cast<std::size_t>(sets_ * ways_);
  valid_ = reg.Allocate("icache.valid", StateCat::kValid, bg, entries, 1);
  tag_ = reg.Allocate("icache.tag", StateCat::kAddr, bg, entries, 24);
  lru_ = reg.Allocate("icache.lru", StateCat::kCtrl, bg, entries, 1);
  data_ = reg.Allocate("icache.data", StateCat::kInsn, bg,
                       entries * LineWords(), 64);
  miss_valid_ = reg.Allocate("icache.miss_valid", StateCat::kValid,
                             Storage::kLatch, 1, 1);
  miss_addr_ = reg.Allocate("icache.miss_addr", StateCat::kAddr,
                            Storage::kLatch, 1, 58);
  miss_timer_ = reg.Allocate("icache.miss_timer", StateCat::kCtrl,
                             Storage::kLatch, 1,
                             CountBits(static_cast<std::uint64_t>(cfg.miss_cycles)));
}

bool ICache::Read(std::uint64_t addr, Memory& mem, std::uint32_t& word) {
  const std::uint64_t line = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::uint64_t tag = (line / static_cast<std::uint64_t>(sets_)) & 0xFFFFFF;
  for (int w = 0; w < ways_; ++w) {
    const std::size_t e = Entry(set, w);
    if (valid_.GetBit(e) && tag_.Get(e) == tag) {
      const std::size_t word_index =
          e * LineWords() + (addr % static_cast<std::uint64_t>(line_bytes_)) / 8;
      const std::uint64_t qword = data_.Get(word_index);
      word = static_cast<std::uint32_t>((addr & 4) ? qword >> 32 : qword);
      lru_.Set(e, 1);
      if (ways_ == 2) lru_.Set(Entry(set, 1 - w), 0);
      return true;
    }
  }
  if (!miss_valid_.GetBit(0)) {
    miss_valid_.Set(0, 1);
    miss_addr_.Set(0, line);
    miss_timer_.Set(0, static_cast<std::uint64_t>(miss_cycles_));
  }
  (void)mem;
  return false;
}

void ICache::Tick(Memory& mem) {
  if (!miss_valid_.GetBit(0)) return;
  const std::uint64_t t = miss_timer_.Get(0);
  if (t > 1) {
    miss_timer_.Set(0, t - 1);
    return;
  }
  // Fill: choose the non-MRU way as victim.
  const std::uint64_t line = miss_addr_.Get(0);
  const std::uint64_t set = line % static_cast<std::uint64_t>(sets_);
  const std::uint64_t tag = (line / static_cast<std::uint64_t>(sets_)) & 0xFFFFFF;
  int victim = 0;
  for (int w = 0; w < ways_; ++w) {
    const std::size_t e = Entry(set, w);
    if (!valid_.GetBit(e)) { victim = w; break; }
    if (!lru_.GetBit(e)) victim = w;
  }
  const std::size_t e = Entry(set, victim);
  valid_.Set(e, 1);
  tag_.Set(e, tag);
  lru_.Set(e, 1);
  const std::uint64_t base = line * static_cast<std::uint64_t>(line_bytes_);
  for (std::size_t i = 0; i < LineWords(); ++i)
    data_.Set(e * LineWords() + i, mem.Read(base + i * 8, 8));
  miss_valid_.Set(0, 0);
  miss_timer_.Set(0, 0);
}

}  // namespace tfsim
