// Reorder buffer: 64 entries, 8-wide retirement (Figure 2), implemented as a
// circular buffer with qctrl head/tail/count latches. Entries carry the
// renaming triple (areg, new phys, old phys — the walk-back recovery data),
// the PC, the instruction word (+ optional parity bit), and completion/
// exception status.
#pragma once

#include <cstdint>

#include "isa/isa.h"
#include "state/state_registry.h"
#include "uarch/config.h"
#include "uarch/rename.h"

namespace tfsim {

class Rob {
 public:
  Rob(StateRegistry& reg, const CoreConfig& cfg);

  std::uint64_t Count() const { return count_.Get(0); }
  std::uint64_t Head() const { return head_.Get(0) % entries_; }
  std::uint64_t Tail() const { return tail_.Get(0) % entries_; }
  // Raw latch values (audit view — unmasked, so pointer corruption shows).
  std::uint64_t HeadRaw() const { return head_.Get(0); }
  std::uint64_t TailRaw() const { return tail_.Get(0); }
  bool Full() const { return Count() >= entries_; }
  bool Empty() const { return Count() == 0; }
  std::uint64_t entries() const { return entries_; }

  // Allocates the tail entry; returns its tag. Caller must check !Full().
  std::uint64_t Allocate();
  // Removes the head entry (retirement).
  void PopHead();
  // Removes the tail entry (walk-back squash). Returns its tag.
  std::uint64_t PopTail();

  // Relative age of a tag: 0 = head (oldest). Tags not currently in the
  // window still produce a defined value.
  std::uint64_t AgeOf(std::uint64_t tag) const {
    return (tag + entries_ - Head()) % entries_;
  }
  // True when tag a is strictly younger (later) than tag b.
  bool Younger(std::uint64_t a, std::uint64_t b) const {
    return AgeOf(a) > AgeOf(b);
  }
  // True when the tag currently names a live entry.
  bool Contains(std::uint64_t tag) const { return AgeOf(tag) < Count(); }

  void Clear();

  // --- per-entry payload (tag-indexed, masked to the window size) -----------
  StateField pc;        // 62-bit (RAM, pc)
  StateField insn;      // 32-bit (RAM, insn)
  StateField parity;    // 1-bit (RAM, parity), when insn_parity enabled
  StateField areg;      // 5-bit architectural destination (RAM, ctrl)
  StateField has_dst;   // 1-bit (RAM, ctrl)
  StateField newp, newp_ecc;  // 7-bit (+4 ECC) new physical reg (RAM, regptr)
  StateField oldp, oldp_ecc;  // previous mapping (RAM, regptr)
  StateField done;      // 1-bit completion (RAM, ctrl)
  StateField exc;       // 3-bit exception code (RAM, ctrl)
  StateField is_store;  // routing flags (RAM, ctrl)
  StateField is_load;
  StateField is_branch;
  StateField is_syscall;
  StateField lsq_idx;   // 4-bit LQ/SQ slot (RAM, ctrl)

  bool parity_on;
  bool ecc_on;

 private:
  std::uint64_t entries_;
  StateField head_, tail_, count_;  // qctrl latches
};

}  // namespace tfsim
