// L1 data cache: 32 KB, 2-way set-associative, 32-byte lines, dual-ported
// via eight 8-byte-interleaved banks, write-through/no-allocate, with 16
// non-coalescing miss handling registers and a constant 8-cycle miss
// service (Figure 2 / Section 2.1).
//
// Tag/data/LRU arrays are background (excluded from injection like all cache
// RAM); the MSHRs are injectable latch state — the paper explicitly injects
// "the various structures that support the caches, such as miss handling
// registers".
#pragma once

#include <cstdint>

#include "arch/memory.h"
#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

class DCache {
 public:
  enum class LoadResult {
    kHit,       // value available after the cache latency
    kMiss,      // MSHR allocated; retry after the fill completes
    kRetry,     // bank conflict or MSHR full; retry next cycle
  };

  DCache(StateRegistry& reg, const CoreConfig& cfg);

  // Starts a load access of `size` bytes at `addr`. On kHit the raw value is
  // written to `value`. `lq_index` tags the MSHR on a miss so the LSQ can
  // observe fill completion. Call at most twice per cycle (two AGU ports);
  // same-bank accesses conflict.
  LoadResult AccessLoad(std::uint64_t addr, int size, Memory& mem,
                        std::size_t lq_index, std::uint64_t& value);

  // True when a fill for the given LQ entry completed (the entry should then
  // re-issue its access, which will hit).
  bool FillReady(std::size_t lq_index) const;
  // Releases the completed MSHR for the given LQ entry.
  void ReleaseFill(std::size_t lq_index);
  // Drops any MSHR tagged with this LQ entry (squash cleanup).
  void AbandonMshr(std::size_t lq_index);
  // Drops every MSHR (full pipeline flush).
  void AbandonAll();

  // Write-through from the post-retirement store buffer.
  void WriteThrough(std::uint64_t addr, std::uint64_t data, int size,
                    Memory& mem);

  // Per-cycle: advance MSHR timers, complete fills, reset bank arbitration.
  void Tick(Memory& mem);

  int MshrsInUse() const;

 private:
  int sets_;
  int ways_;
  int line_bytes_;
  int banks_;
  int mshrs_;
  int miss_cycles_;
  std::uint32_t banks_used_ = 0;  // per-cycle arbitration, reset in Tick

  std::size_t LineWords() const {
    return static_cast<std::size_t>(line_bytes_) / 8;
  }
  std::size_t Entry(std::uint64_t set, int way) const {
    return set * static_cast<std::size_t>(ways_) + static_cast<std::size_t>(way);
  }
  int FindWay(std::uint64_t addr) const;  // -1 on miss
  void Fill(std::uint64_t line, Memory& mem);

  StateField valid_;
  StateField tag_;
  StateField lru_;
  StateField data_;

  StateField mshr_valid_;  // injectable
  StateField mshr_addr_;   // line address
  StateField mshr_timer_;
  StateField mshr_lq_;
  StateField mshr_done_;
  StateField mshr_ptr_;  // round-robin allocation pointer (qctrl latch)
};

}  // namespace tfsim
