#include "uarch/bpred.h"

#include "uarch/uop.h"

namespace tfsim {
namespace {

constexpr int kBimodalEntries = 1024;
constexpr int kLocalEntries = 1024;
constexpr int kLocalHistBits = 10;
constexpr int kGlobalEntries = 4096;
constexpr int kGhistBits = 12;

}  // namespace

Bpred::Bpred(StateRegistry& reg, const CoreConfig& cfg)
    : btb_sets_(cfg.btb_sets), btb_ways_(cfg.btb_ways),
      ras_entries_(cfg.ras_entries) {
  const auto bg = Storage::kBackground;
  bimodal_ = reg.Allocate("bpred.bimodal", StateCat::kCtrl, bg,
                          kBimodalEntries, 2);
  local_hist_ = reg.Allocate("bpred.local_hist", StateCat::kCtrl, bg,
                             kLocalEntries, kLocalHistBits);
  local_pred_ = reg.Allocate("bpred.local_pred", StateCat::kCtrl, bg,
                             1 << kLocalHistBits, 3);
  global_ = reg.Allocate("bpred.global", StateCat::kCtrl, bg, kGlobalEntries,
                         2);
  choice_g_ = reg.Allocate("bpred.choice_g", StateCat::kCtrl, bg,
                           kGlobalEntries, 2);
  choice_l_ = reg.Allocate("bpred.choice_l", StateCat::kCtrl, bg,
                           kLocalEntries, 2);
  ghist_ = reg.Allocate("bpred.ghist", StateCat::kCtrl, bg, 1, kGhistBits);

  const std::size_t btb_entries =
      static_cast<std::size_t>(btb_sets_ * btb_ways_);
  btb_valid_ = reg.Allocate("btb.valid", StateCat::kValid, bg, btb_entries, 1);
  btb_tag_ = reg.Allocate("btb.tag", StateCat::kPc, bg, btb_entries, 20);
  btb_target_ =
      reg.Allocate("btb.target", StateCat::kPc, bg, btb_entries, kPcBits);
  btb_lru_ = reg.Allocate("btb.lru", StateCat::kCtrl, bg, btb_entries, 2);

  // The RAS only influences prediction (a bad pop causes a recoverable
  // mispredict), so it is background like the other predictor structures.
  ras_ = reg.Allocate("ras.stack", StateCat::kPc, bg,
                      static_cast<std::size_t>(ras_entries_), kPcBits);
  ras_ptr_ = reg.Allocate("ras.ptr", StateCat::kQctrl, bg, 1,
                          IndexBits(static_cast<std::uint64_t>(ras_entries_)));
}

std::uint64_t Bpred::BimodalIndex(std::uint64_t pc) const {
  return (pc >> 2) & (kBimodalEntries - 1);
}

std::uint64_t Bpred::GlobalIndex(std::uint64_t pc) const {
  return (ghist_.Get(0) ^ (pc >> 2)) & (kGlobalEntries - 1);
}

void Bpred::Bump(StateField& f, std::uint64_t i, bool up, int max) {
  const std::int64_t v = static_cast<std::int64_t>(f.Get(i));
  if (up && v < max) f.Set(i, static_cast<std::uint64_t>(v + 1));
  if (!up && v > 0) f.Set(i, static_cast<std::uint64_t>(v - 1));
}

BranchPrediction Bpred::Predict(std::uint64_t pc, const DecodedInst& d) {
  BranchPrediction p;
  const std::uint64_t fall = pc + 4;
  switch (d.cls) {
    case InsnClass::kBr:
      p.taken = true;
      p.target = fall + static_cast<std::uint64_t>(d.imm) * 4;
      return p;
    case InsnClass::kBsr: {
      p.taken = true;
      p.target = fall + static_cast<std::uint64_t>(d.imm) * 4;
      const std::uint64_t top = ras_ptr_.Get(0);
      ras_.Set(top % static_cast<std::uint64_t>(ras_entries_), PcStore(fall));
      ras_ptr_.Set(0, top + 1);
      return p;
    }
    case InsnClass::kRet: {
      p.taken = true;
      const std::uint64_t top = ras_ptr_.Get(0);
      // Pointer-width wraparound pop (ras_entries is pow2 by Validate()).
      const std::uint64_t n = static_cast<std::uint64_t>(ras_entries_);
      const std::uint64_t prev = (top + n - 1) % n;
      p.target = PcLoad(ras_.Get(prev % static_cast<std::uint64_t>(ras_entries_)));
      ras_ptr_.Set(0, prev);
      return p;
    }
    case InsnClass::kJmp:
    case InsnClass::kJsr: {
      p.taken = true;
      // BTB lookup; a miss predicts fall-through (resolved at execute).
      const std::uint64_t set = (pc >> 2) % static_cast<std::uint64_t>(btb_sets_);
      const std::uint64_t tag = (pc >> 2) / static_cast<std::uint64_t>(btb_sets_) & 0xFFFFF;
      p.target = fall;
      for (int w = 0; w < btb_ways_; ++w) {
        const std::size_t e = set * static_cast<std::size_t>(btb_ways_) + static_cast<std::size_t>(w);
        if (btb_valid_.GetBit(e) && btb_tag_.Get(e) == tag) {
          p.target = PcLoad(btb_target_.Get(e));
          btb_lru_.Set(e, 3);
          break;
        }
      }
      if (d.cls == InsnClass::kJsr) {
        const std::uint64_t top = ras_ptr_.Get(0);
        ras_.Set(top % static_cast<std::uint64_t>(ras_entries_), PcStore(fall));
        ras_ptr_.Set(0, top + 1);
      }
      return p;
    }
    case InsnClass::kCondBranch: {
      // Hybrid selection: choice_g picks global vs the local side; the local
      // side's choice_l picks local vs bimodal (McFarling-style combining).
      const std::uint64_t bi = BimodalIndex(pc);
      const bool bimodal_taken = bimodal_.Get(bi) >= 2;
      const std::uint64_t lh = local_hist_.Get(bi);
      const bool local_taken = local_pred_.Get(lh) >= 4;
      const std::uint64_t gi = GlobalIndex(pc);
      const bool global_taken = global_.Get(gi) >= 2;
      const bool use_global = choice_g_.Get(gi) >= 2;
      const bool use_local = choice_l_.Get(bi) >= 2;
      p.taken = use_global ? global_taken
                           : (use_local ? local_taken : bimodal_taken);
      p.target = p.taken ? fall + static_cast<std::uint64_t>(d.imm) * 4 : fall;
      return p;
    }
    default:
      p.taken = false;
      p.target = fall;
      return p;
  }
}

void Bpred::Train(std::uint64_t pc, const DecodedInst& d, bool taken,
                  std::uint64_t target) {
  if (d.cls == InsnClass::kCondBranch) {
    const std::uint64_t bi = BimodalIndex(pc);
    const std::uint64_t lh = local_hist_.Get(bi);
    const std::uint64_t gi = GlobalIndex(pc);
    const bool bimodal_correct = (bimodal_.Get(bi) >= 2) == taken;
    const bool local_correct = (local_pred_.Get(lh) >= 4) == taken;
    const bool global_correct = (global_.Get(gi) >= 2) == taken;

    Bump(bimodal_, bi, taken, 3);
    Bump(local_pred_, lh, taken, 7);
    Bump(global_, gi, taken, 3);
    const bool local_side_correct =
        choice_l_.Get(bi) >= 2 ? local_correct : bimodal_correct;
    if (global_correct != local_side_correct)
      Bump(choice_g_, gi, global_correct, 3);
    if (local_correct != bimodal_correct)
      Bump(choice_l_, bi, local_correct, 3);

    local_hist_.Set(bi, (lh << 1) | (taken ? 1 : 0));
    ghist_.Set(0, (ghist_.Get(0) << 1) | (taken ? 1 : 0));
    return;
  }
  if ((d.cls == InsnClass::kJmp || d.cls == InsnClass::kJsr ||
       d.cls == InsnClass::kRet) && taken) {
    // Install/refresh the indirect target (RET normally comes from the RAS,
    // but a BTB entry helps when the RAS has been clobbered).
    const std::uint64_t set = (pc >> 2) % static_cast<std::uint64_t>(btb_sets_);
    const std::uint64_t tag = (pc >> 2) / static_cast<std::uint64_t>(btb_sets_) & 0xFFFFF;
    std::size_t victim = set * static_cast<std::size_t>(btb_ways_);
    std::uint64_t best = 4;
    for (int w = 0; w < btb_ways_; ++w) {
      const std::size_t e = set * static_cast<std::size_t>(btb_ways_) + static_cast<std::size_t>(w);
      if (btb_valid_.GetBit(e) && btb_tag_.Get(e) == tag) {
        victim = e;
        break;
      }
      const std::uint64_t lru = btb_valid_.GetBit(e) ? btb_lru_.Get(e) : 0;
      if (lru < best) {
        best = lru;
        victim = e;
      }
    }
    btb_valid_.Set(victim, 1);
    btb_tag_.Set(victim, tag);
    btb_target_.Set(victim, PcStore(target));
    btb_lru_.Set(victim, 3);
    // Age the set.
    for (int w = 0; w < btb_ways_; ++w) {
      const std::size_t e = set * static_cast<std::size_t>(btb_ways_) + static_cast<std::size_t>(w);
      if (e != victim && btb_lru_.Get(e) > 0)
        btb_lru_.Set(e, btb_lru_.Get(e) - 1);
    }
  }
}

}  // namespace tfsim
