// Branch prediction: hybrid (bimodal + local + global with choice
// predictors), a 1024-entry 4-way BTB for indirect targets, and an 8-entry
// return address stack with pointer recovery (Figure 2).
//
// Predictor arrays are registered as Storage::kBackground: the paper
// excludes prediction structures from fault injection ("determined to have
// no effect on correctness" — they only affect timing), but they remain part
// of whole-machine state equality, which is why they live in the registry at
// all (a faulty run that trains its predictors differently can never reach a
// complete microarchitectural state match — one source of Gray Area).
#pragma once

#include <cstdint>

#include "isa/isa.h"
#include "state/state_registry.h"
#include "uarch/config.h"

namespace tfsim {

struct BranchPrediction {
  bool taken = false;
  std::uint64_t target = 0;
};

class Bpred {
 public:
  Bpred(StateRegistry& reg, const CoreConfig& cfg);

  // Predicts the outcome of decoded branch `d` at `pc` and speculatively
  // updates the RAS (push for calls, pop for returns).
  BranchPrediction Predict(std::uint64_t pc, const DecodedInst& d);

  // Trains direction tables and BTB with the resolved outcome.
  void Train(std::uint64_t pc, const DecodedInst& d, bool taken,
             std::uint64_t target);

  // RAS pointer checkpoint/restore (pointer recovery on mispredicts).
  std::uint64_t RasPtr() const { return ras_ptr_.Get(0); }
  void SetRasPtr(std::uint64_t p) { ras_ptr_.Set(0, p); }

 private:
  std::uint64_t BimodalIndex(std::uint64_t pc) const;
  std::uint64_t GlobalIndex(std::uint64_t pc) const;

  static void Bump(StateField& f, std::uint64_t i, bool up, int max);

  int btb_sets_;
  int btb_ways_;
  int ras_entries_;

  // Direction predictors.
  StateField bimodal_;    // 1024 x 2-bit counters, pc-indexed
  StateField local_hist_; // 1024 x 10-bit histories, pc-indexed
  StateField local_pred_; // 1024 x 3-bit counters, history-indexed
  StateField global_;     // 4096 x 2-bit counters, ghist^pc-indexed
  StateField choice_g_;   // 4096 x 2-bit: choose global vs local-side
  StateField choice_l_;   // 1024 x 2-bit: choose local vs bimodal
  StateField ghist_;      // 12-bit global history register

  // BTB (indirect targets): valid/tag/target/lru per way.
  StateField btb_valid_;
  StateField btb_tag_;
  StateField btb_target_;  // stored as pc>>2
  StateField btb_lru_;

  // Return address stack.
  StateField ras_;      // 8 x 62-bit
  StateField ras_ptr_;  // 3-bit top-of-stack pointer
};

}  // namespace tfsim
