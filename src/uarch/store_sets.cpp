#include "uarch/store_sets.h"

namespace tfsim {
namespace {

constexpr std::size_t kSsitEntries = 1024;
constexpr std::size_t kSets = 64;

}  // namespace

StoreSets::StoreSets(StateRegistry& reg, const CoreConfig& cfg) {
  const auto bg = Storage::kBackground;
  ssit_valid_ =
      reg.Allocate("storesets.ssit_valid", StateCat::kValid, bg, kSsitEntries, 1);
  ssit_set_ =
      reg.Allocate("storesets.ssit_set", StateCat::kCtrl, bg, kSsitEntries, 6);
  lfst_valid_ =
      reg.Allocate("storesets.lfst_valid", StateCat::kValid, bg, kSets, 1);
  // The LFST holds full ROB tags; a narrower field would silently truncate
  // them past 64 ROB entries and park loads on stores that never match.
  lfst_tag_ = reg.Allocate("storesets.lfst_tag", StateCat::kRobptr, bg, kSets,
                           IndexBits(static_cast<std::uint64_t>(cfg.rob_entries)));
}

std::uint64_t StoreSets::Index(std::uint64_t pc) const {
  return (pc >> 2) % kSsitEntries;
}

std::optional<std::uint64_t> StoreSets::LoadDependence(
    std::uint64_t pc) const {
  const std::uint64_t i = Index(pc);
  if (!ssit_valid_.GetBit(i)) return std::nullopt;
  const std::uint64_t set = ssit_set_.Get(i);
  if (!lfst_valid_.GetBit(set)) return std::nullopt;
  return lfst_tag_.Get(set);
}

void StoreSets::StoreDispatched(std::uint64_t pc, std::uint64_t rob_tag) {
  const std::uint64_t i = Index(pc);
  if (!ssit_valid_.GetBit(i)) return;
  const std::uint64_t set = ssit_set_.Get(i);
  lfst_valid_.Set(set, 1);
  lfst_tag_.Set(set, rob_tag);
}

void StoreSets::StoreComplete(std::uint64_t pc, std::uint64_t rob_tag) {
  const std::uint64_t i = Index(pc);
  if (!ssit_valid_.GetBit(i)) return;
  const std::uint64_t set = ssit_set_.Get(i);
  if (lfst_valid_.GetBit(set) && lfst_tag_.Get(set) == rob_tag)
    lfst_valid_.Set(set, 0);
}

void StoreSets::TrainViolation(std::uint64_t load_pc, std::uint64_t store_pc) {
  const std::uint64_t li = Index(load_pc);
  const std::uint64_t si = Index(store_pc);
  // Merge policy: reuse an existing set if either side has one, else derive
  // a set from the store's index.
  std::uint64_t set;
  if (ssit_valid_.GetBit(si)) set = ssit_set_.Get(si);
  else if (ssit_valid_.GetBit(li)) set = ssit_set_.Get(li);
  else set = si % kSets;
  ssit_valid_.Set(li, 1);
  ssit_set_.Set(li, set);
  ssit_valid_.Set(si, 1);
  ssit_set_.Set(si, set);
}

void StoreSets::FlushInflight() {
  for (std::size_t s = 0; s < kSets; ++s) lfst_valid_.Set(s, 0);
}

}  // namespace tfsim
