#include "uarch/execute.h"

#include <algorithm>
#include <string>

namespace tfsim {

UopLatchBank::UopLatchBank(StateRegistry& reg, const CoreConfig& cfg,
                           const char* prefix, std::size_t n,
                           bool values)
    : slots(n), ecc_on(cfg.protect.regptr_ecc), with_values(values) {
  const auto latch = Storage::kLatch;
  const std::string p = prefix;
  valid = reg.Allocate(p + ".valid", StateCat::kValid, latch, n, 1);
  ctrl = reg.Allocate(p + ".ctrl", StateCat::kCtrl, latch, n, kCtrlBits);
  // Only the branch unit consumes the PC and prediction payload, so these
  // are single side-latches on the branch port rather than per-port copies.
  pc = reg.Allocate(p + ".pc", StateCat::kPc, latch, 1, kPcBits);
  pred_taken = reg.Allocate(p + ".pred_taken", StateCat::kCtrl, latch, 1, 1);
  pred_target =
      reg.Allocate(p + ".pred_target", StateCat::kPc, latch, 1, kPcBits);
  ras_ckpt = reg.Allocate(p + ".ras_ckpt", StateCat::kCtrl, latch, 1,
                          IndexBits(static_cast<std::uint64_t>(cfg.ras_entries)));
  src1p = reg.Allocate(p + ".src1p", StateCat::kRegptr, latch, n, 7);
  src2p = reg.Allocate(p + ".src2p", StateCat::kRegptr, latch, n, 7);
  dstp = reg.Allocate(p + ".dstp", StateCat::kRegptr, latch, n, 7);
  if (ecc_on) {
    src1_ecc = reg.Allocate(p + ".src1_ecc", StateCat::kEcc, latch, n, 4);
    src2_ecc = reg.Allocate(p + ".src2_ecc", StateCat::kEcc, latch, n, 4);
    dst_ecc = reg.Allocate(p + ".dst_ecc", StateCat::kEcc, latch, n, 4);
  }
  has_dst = reg.Allocate(p + ".has_dst", StateCat::kCtrl, latch, n, 1);
  robtag = reg.Allocate(p + ".robtag", StateCat::kRobptr, latch, n,
                        IndexBits(static_cast<std::uint64_t>(cfg.rob_entries)));
  lsq_idx = reg.Allocate(p + ".lsq_idx", StateCat::kCtrl, latch, n,
                         IndexBits(static_cast<std::uint64_t>(
                             std::max(cfg.lq_entries, cfg.sq_entries))));
  sched_idx =
      reg.Allocate(p + ".sched_idx", StateCat::kCtrl, latch, n,
                   IndexBits(static_cast<std::uint64_t>(cfg.sched_entries)));
  if (with_values) {
    a_lo = reg.Allocate(p + ".a_lo", StateCat::kData, latch, n, 64);
    a_hi = reg.Allocate(p + ".a_hi", StateCat::kData, latch, n, 1);
    b_lo = reg.Allocate(p + ".b_lo", StateCat::kData, latch, n, 64);
    b_hi = reg.Allocate(p + ".b_hi", StateCat::kData, latch, n, 1);
  }
}

void UopLatchBank::Invalidate() {
  for (std::size_t i = 0; i < slots; ++i) valid.Set(i, 0);
}

WbBank::WbBank(StateRegistry& reg, const CoreConfig& cfg, std::size_t n)
    : slots(n), ecc_on(cfg.protect.regptr_ecc) {
  const auto latch = Storage::kLatch;
  valid = reg.Allocate("wb.valid", StateCat::kValid, latch, n, 1);
  value_lo = reg.Allocate("wb.value_lo", StateCat::kData, latch, n, 64);
  value_hi = reg.Allocate("wb.value_hi", StateCat::kData, latch, n, 1);
  dstp = reg.Allocate("wb.dstp", StateCat::kRegptr, latch, n, 7);
  if (ecc_on)
    dst_ecc = reg.Allocate("wb.dst_ecc", StateCat::kEcc, latch, n, 4);
  has_dst = reg.Allocate("wb.has_dst", StateCat::kCtrl, latch, n, 1);
  robtag = reg.Allocate("wb.robtag", StateCat::kRobptr, latch, n,
                        IndexBits(static_cast<std::uint64_t>(cfg.rob_entries)));
  sched_idx =
      reg.Allocate("wb.sched_idx", StateCat::kCtrl, latch, n,
                   IndexBits(static_cast<std::uint64_t>(cfg.sched_entries)));
  free_sched = reg.Allocate("wb.free_sched", StateCat::kCtrl, latch, n, 1);
  alloc_ptr = reg.Allocate("wb.alloc_ptr", StateCat::kQctrl, latch, 1, 4);
}

int WbBank::FreeSlot() const {
  const std::uint64_t start = alloc_ptr.Get(0) % slots;
  for (std::size_t k = 0; k < slots; ++k) {
    const std::size_t i = (start + k) % slots;
    if (!valid.GetBit(i)) return static_cast<int>(i);
  }
  return -1;
}

void WbBank::Invalidate() {
  for (std::size_t i = 0; i < slots; ++i) valid.Set(i, 0);
}

ComplexPipe::ComplexPipe(StateRegistry& reg, const CoreConfig& cfg)
    : slots(6), ecc_on(cfg.protect.regptr_ecc) {
  const auto latch = Storage::kLatch;
  alloc_ptr = reg.Allocate("cpipe.alloc_ptr", StateCat::kQctrl, latch, 1, 3);
  valid = reg.Allocate("cpipe.valid", StateCat::kValid, latch, slots, 1);
  timer = reg.Allocate("cpipe.timer", StateCat::kCtrl, latch, slots, 3);
  value_lo = reg.Allocate("cpipe.value_lo", StateCat::kData, latch, slots, 64);
  value_hi = reg.Allocate("cpipe.value_hi", StateCat::kData, latch, slots, 1);
  exc = reg.Allocate("cpipe.exc", StateCat::kCtrl, latch, slots, 3);
  dstp = reg.Allocate("cpipe.dstp", StateCat::kRegptr, latch, slots, 7);
  if (ecc_on)
    dst_ecc = reg.Allocate("cpipe.dst_ecc", StateCat::kEcc, latch, slots, 4);
  has_dst = reg.Allocate("cpipe.has_dst", StateCat::kCtrl, latch, slots, 1);
  robtag =
      reg.Allocate("cpipe.robtag", StateCat::kRobptr, latch, slots,
                   IndexBits(static_cast<std::uint64_t>(cfg.rob_entries)));
  sched_idx =
      reg.Allocate("cpipe.sched_idx", StateCat::kCtrl, latch, slots,
                   IndexBits(static_cast<std::uint64_t>(cfg.sched_entries)));
}

int ComplexPipe::FreeSlot() const {
  const std::uint64_t start = alloc_ptr.Get(0) % slots;
  for (std::size_t k = 0; k < slots; ++k) {
    const std::size_t i = (start + k) % slots;
    if (!valid.GetBit(i)) return static_cast<int>(i);
  }
  return -1;
}

void ComplexPipe::Invalidate() {
  for (std::size_t i = 0; i < slots; ++i) valid.Set(i, 0);
}

WakeupQueue::WakeupQueue(StateRegistry& reg, const CoreConfig& cfg)
    : slots(16) {
  (void)cfg;
  const auto latch = Storage::kLatch;
  alloc_ptr = reg.Allocate("wake.alloc_ptr", StateCat::kQctrl, latch, 1, 4);
  valid = reg.Allocate("wake.valid", StateCat::kValid, latch, slots, 1);
  preg = reg.Allocate("wake.preg", StateCat::kRegptr, latch, slots, 7);
  delay = reg.Allocate("wake.delay", StateCat::kCtrl, latch, slots, 3);
}

void WakeupQueue::Schedule(std::uint64_t p, std::uint64_t d) {
  const std::uint64_t start = alloc_ptr.Get(0) % slots;
  for (std::size_t k = 0; k < slots; ++k) {
    const std::size_t i = (start + k) % slots;
    if (!valid.GetBit(i)) {
      valid.Set(i, 1);
      alloc_ptr.Set(0, (i + 1) % slots);
      preg.Set(i, p);
      delay.Set(i, d);
      return;
    }
  }
  // Queue full (only reachable under corruption): drop; the real writeback
  // broadcast at WB still sets readiness, so progress is preserved.
}

void WakeupQueue::Kill(std::uint64_t p) {
  for (std::size_t i = 0; i < slots; ++i)
    if (valid.GetBit(i) && preg.Get(i) == p) valid.Set(i, 0);
}

void WakeupQueue::Invalidate() {
  for (std::size_t i = 0; i < slots; ++i) valid.Set(i, 0);
}

}  // namespace tfsim
