#include "uarch/rob.h"

#include <algorithm>

#include "uarch/uop.h"

namespace tfsim {

Rob::Rob(StateRegistry& reg, const CoreConfig& cfg)
    : parity_on(cfg.protect.insn_parity), ecc_on(cfg.protect.regptr_ecc),
      entries_(static_cast<std::uint64_t>(cfg.rob_entries)) {
  const auto ram = Storage::kRam;
  pc = reg.Allocate("rob.pc", StateCat::kPc, ram, entries_, kPcBits);
  insn = reg.Allocate("rob.insn", StateCat::kInsn, ram, entries_, 32);
  if (parity_on)
    parity = reg.Allocate("rob.parity", StateCat::kParity, ram, entries_, 1);
  areg = reg.Allocate("rob.areg", StateCat::kCtrl, ram, entries_, 5);
  has_dst = reg.Allocate("rob.has_dst", StateCat::kCtrl, ram, entries_, 1);
  newp = reg.Allocate("rob.newp", StateCat::kRegptr, ram, entries_, 7);
  oldp = reg.Allocate("rob.oldp", StateCat::kRegptr, ram, entries_, 7);
  if (ecc_on) {
    newp_ecc = reg.Allocate("rob.newp_ecc", StateCat::kEcc, ram, entries_, 4);
    oldp_ecc = reg.Allocate("rob.oldp_ecc", StateCat::kEcc, ram, entries_, 4);
  }
  done = reg.Allocate("rob.done", StateCat::kCtrl, ram, entries_, 1);
  exc = reg.Allocate("rob.exc", StateCat::kCtrl, ram, entries_, 3);
  is_store = reg.Allocate("rob.is_store", StateCat::kCtrl, ram, entries_, 1);
  is_load = reg.Allocate("rob.is_load", StateCat::kCtrl, ram, entries_, 1);
  is_branch = reg.Allocate("rob.is_branch", StateCat::kCtrl, ram, entries_, 1);
  is_syscall =
      reg.Allocate("rob.is_syscall", StateCat::kCtrl, ram, entries_, 1);
  lsq_idx = reg.Allocate("rob.lsq_idx", StateCat::kCtrl, ram, entries_,
                         IndexBits(static_cast<std::uint64_t>(
                             std::max(cfg.lq_entries, cfg.sq_entries))));

  head_ = reg.Allocate("rob.head", StateCat::kQctrl, Storage::kLatch, 1,
                       IndexBits(entries_));
  tail_ = reg.Allocate("rob.tail", StateCat::kQctrl, Storage::kLatch, 1,
                       IndexBits(entries_));
  count_ = reg.Allocate("rob.count", StateCat::kQctrl, Storage::kLatch, 1,
                        CountBits(entries_));
}

std::uint64_t Rob::Allocate() {
  const std::uint64_t tag = tail_.Get(0) % entries_;
  tail_.Set(0, (tag + 1) % entries_);
  const std::uint64_t c = count_.Get(0);
  if (c < entries_) count_.Set(0, c + 1);
  return tag;
}

void Rob::PopHead() {
  head_.Set(0, (head_.Get(0) + 1) % entries_);
  const std::uint64_t c = count_.Get(0);
  if (c > 0) count_.Set(0, c - 1);
}

std::uint64_t Rob::PopTail() {
  const std::uint64_t tag = (tail_.Get(0) + entries_ - 1) % entries_;
  tail_.Set(0, tag);
  const std::uint64_t c = count_.Get(0);
  if (c > 0) count_.Set(0, c - 1);
  return tag;
}

void Rob::Clear() {
  head_.Set(0, 0);
  tail_.Set(0, 0);
  count_.Set(0, 0);
}

}  // namespace tfsim
