#include "uarch/rename.h"

namespace tfsim {

RPtr CheckPtr(RPtr p, bool ecc_on) {
  if (!ecc_on) return p;
  const EccDecodeResult r = DecodeRegptrEcc(p.val, p.ecc);
  return {r.data.lo, r.check};
}

RPtr ReadPtrField(StateField& val, StateField& ecc, std::size_t i,
                  bool ecc_on) {
  RPtr p{val.Get(i), ecc_on ? ecc.Get(i) : 0};
  if (!ecc_on) return p;
  const RPtr fixed = CheckPtr(p, true);
  if (fixed.val != p.val || fixed.ecc != p.ecc) {
    val.Set(i, fixed.val);
    ecc.Set(i, fixed.ecc);
  }
  return fixed;
}

void WritePtrField(StateField& val, StateField& ecc, std::size_t i, RPtr p,
                   bool ecc_on) {
  val.Set(i, p.val);
  if (ecc_on) ecc.Set(i, p.ecc);
}

Rename::Rename(StateRegistry& reg, const CoreConfig& cfg)
    : free_size_(static_cast<std::uint64_t>(cfg.phys_regs - kNumArchRegs)),
      ecc_on_(cfg.protect.regptr_ecc) {
  const std::uint64_t fl_idx = IndexBits(free_size_);
  const std::uint64_t fl_cnt = CountBits(free_size_);
  specrat_ = reg.Allocate("rename.specrat", StateCat::kSpecRat, Storage::kRam,
                          kNumArchRegs, 7);
  archrat_ = reg.Allocate("rename.archrat", StateCat::kArchRat, Storage::kRam,
                          kNumArchRegs, 7);
  sfl_ = reg.Allocate("rename.specfreelist", StateCat::kSpecFreelist,
                      Storage::kRam, free_size_, 7);
  afl_ = reg.Allocate("rename.archfreelist", StateCat::kArchFreelist,
                      Storage::kRam, free_size_, 7);
  if (ecc_on_) {
    specrat_ecc_ = reg.Allocate("rename.specrat_ecc", StateCat::kEcc,
                                Storage::kRam, kNumArchRegs, kRegptrEccBits);
    archrat_ecc_ = reg.Allocate("rename.archrat_ecc", StateCat::kEcc,
                                Storage::kRam, kNumArchRegs, kRegptrEccBits);
    sfl_ecc_ = reg.Allocate("rename.specfreelist_ecc", StateCat::kEcc,
                            Storage::kRam, free_size_, kRegptrEccBits);
    afl_ecc_ = reg.Allocate("rename.archfreelist_ecc", StateCat::kEcc,
                            Storage::kRam, free_size_, kRegptrEccBits);
  }
  sfl_head_ = reg.Allocate("rename.sfl_head", StateCat::kQctrl,
                           Storage::kLatch, 1, fl_idx);
  sfl_tail_ = reg.Allocate("rename.sfl_tail", StateCat::kQctrl,
                           Storage::kLatch, 1, fl_idx);
  sfl_count_ = reg.Allocate("rename.sfl_count", StateCat::kQctrl,
                            Storage::kLatch, 1, fl_cnt);
  afl_head_ = reg.Allocate("rename.afl_head", StateCat::kQctrl,
                           Storage::kLatch, 1, fl_idx);
  afl_tail_ = reg.Allocate("rename.afl_tail", StateCat::kQctrl,
                           Storage::kLatch, 1, fl_idx);
  afl_count_ = reg.Allocate("rename.afl_count", StateCat::kQctrl,
                            Storage::kLatch, 1, fl_cnt);
}

void Rename::Reset() {
  for (std::uint64_t a = 0; a < kNumArchRegs; ++a) {
    const RPtr p{a, ecc_on_ ? EncodeRegptrEcc(a) : 0};
    WritePtrField(specrat_, specrat_ecc_, a, p, ecc_on_);
    WritePtrField(archrat_, archrat_ecc_, a, p, ecc_on_);
  }
  for (std::uint64_t i = 0; i < free_size_; ++i) {
    const std::uint64_t preg = kNumArchRegs + i;
    const RPtr p{preg, ecc_on_ ? EncodeRegptrEcc(preg) : 0};
    WritePtrField(sfl_, sfl_ecc_, i, p, ecc_on_);
    WritePtrField(afl_, afl_ecc_, i, p, ecc_on_);
  }
  sfl_head_.Set(0, 0);
  sfl_tail_.Set(0, 0);
  sfl_count_.Set(0, free_size_);
  afl_head_.Set(0, 0);
  afl_tail_.Set(0, 0);
  afl_count_.Set(0, free_size_);
}

RPtr Rename::LookupSpec(std::uint64_t areg) {
  return ReadPtrField(specrat_, specrat_ecc_, areg % kNumArchRegs, ecc_on_);
}

RPtr Rename::RenameDst(std::uint64_t areg, RPtr newp) {
  const std::size_t i = areg % kNumArchRegs;
  const RPtr old = ReadPtrField(specrat_, specrat_ecc_, i, ecc_on_);
  WritePtrField(specrat_, specrat_ecc_, i, newp, ecc_on_);
  return old;
}

void Rename::UndoRename(std::uint64_t areg, RPtr oldp) {
  WritePtrField(specrat_, specrat_ecc_, areg % kNumArchRegs, oldp, ecc_on_);
}

RPtr Rename::PopFree() {
  const std::uint64_t count = sfl_count_.Get(0);
  if (count == 0) return {0, ecc_on_ ? EncodeRegptrEcc(0) : 0};
  const std::uint64_t head = sfl_head_.Get(0) % free_size_;
  const RPtr p = ReadPtrField(sfl_, sfl_ecc_, head, ecc_on_);
  sfl_head_.Set(0, (head + 1) % free_size_);
  sfl_count_.Set(0, count - 1);
  return p;
}

void Rename::UnpopFree(RPtr p) {
  const std::uint64_t count = sfl_count_.Get(0);
  if (count >= free_size_) return;  // defined under corruption
  const std::uint64_t head =
      (sfl_head_.Get(0) + free_size_ - 1) % free_size_;
  WritePtrField(sfl_, sfl_ecc_, head, p, ecc_on_);
  sfl_head_.Set(0, head);
  sfl_count_.Set(0, count + 1);
}

void Rename::PushFree(RPtr p) {
  const std::uint64_t count = sfl_count_.Get(0);
  if (count >= free_size_) return;
  const std::uint64_t tail = sfl_tail_.Get(0) % free_size_;
  WritePtrField(sfl_, sfl_ecc_, tail, p, ecc_on_);
  sfl_tail_.Set(0, (tail + 1) % free_size_);
  sfl_count_.Set(0, count + 1);
}

RPtr Rename::ReadArch(std::uint64_t areg) {
  return ReadPtrField(archrat_, archrat_ecc_, areg % kNumArchRegs, ecc_on_);
}

std::uint64_t Rename::ReadArchRaw(std::uint64_t areg) const {
  return archrat_.Get(areg % kNumArchRegs);
}

std::uint64_t Rename::ReadArchCorrectedView(std::uint64_t areg) const {
  const std::size_t i = areg % kNumArchRegs;
  const std::uint64_t p = archrat_.Get(i);
  if (!ecc_on_) return p;
  return DecodeRegptrEcc(p, archrat_ecc_.Get(i)).data.lo;
}

void Rename::SetArch(std::uint64_t areg, RPtr p) {
  WritePtrField(archrat_, archrat_ecc_, areg % kNumArchRegs, p, ecc_on_);
}

RPtr Rename::PopArchFree() {
  const std::uint64_t count = afl_count_.Get(0);
  if (count == 0) return {0, ecc_on_ ? EncodeRegptrEcc(0) : 0};
  const std::uint64_t head = afl_head_.Get(0) % free_size_;
  const RPtr p = ReadPtrField(afl_, afl_ecc_, head, ecc_on_);
  afl_head_.Set(0, (head + 1) % free_size_);
  afl_count_.Set(0, count - 1);
  return p;
}

void Rename::PushArchFree(RPtr p) {
  const std::uint64_t count = afl_count_.Get(0);
  if (count >= free_size_) return;
  const std::uint64_t tail = afl_tail_.Get(0) % free_size_;
  WritePtrField(afl_, afl_ecc_, tail, p, ecc_on_);
  afl_tail_.Set(0, (tail + 1) % free_size_);
  afl_count_.Set(0, count + 1);
}

void Rename::CopyArchToSpec() {
  for (std::uint64_t a = 0; a < kNumArchRegs; ++a) {
    const RPtr p = ReadPtrField(archrat_, archrat_ecc_, a, ecc_on_);
    WritePtrField(specrat_, specrat_ecc_, a, p, ecc_on_);
  }
  for (std::uint64_t i = 0; i < free_size_; ++i) {
    const RPtr p = ReadPtrField(afl_, afl_ecc_, i, ecc_on_);
    WritePtrField(sfl_, sfl_ecc_, i, p, ecc_on_);
  }
  sfl_head_.Set(0, afl_head_.Get(0));
  sfl_tail_.Set(0, afl_tail_.Get(0));
  sfl_count_.Set(0, afl_count_.Get(0));
}

}  // namespace tfsim
