#include "inject/cache.h"

#include <filesystem>
#include <fstream>

#include "util/env.h"

namespace tfsim {
namespace {

constexpr const char* kMagic = "tfi-cache v1";

}  // namespace

std::string CacheDir() {
  return EnvStr("TFI_CACHE_DIR", ".tfi_cache");
}

std::optional<CampaignResult> LoadCachedCampaign(const CampaignSpec& spec) {
  const std::filesystem::path path =
      std::filesystem::path(CacheDir()) / (spec.CacheKey() + ".txt");
  std::ifstream in(path);
  if (!in) return std::nullopt;

  std::string magic;
  std::getline(in, magic);
  if (magic != kMagic) return std::nullopt;

  CampaignResult r;
  r.spec = spec;
  std::size_t n = 0;
  in >> n;
  for (int c = 0; c < kNumStateCats; ++c)
    in >> r.inventory[c].latch_bits >> r.inventory[c].ram_bits;
  in >> r.golden_ipc >> r.golden_bp_accuracy >> r.golden_dcache_misses;
  r.trials.resize(n);
  for (auto& t : r.trials) {
    int outcome, mode, cat, storage;
    in >> outcome >> mode >> cat >> storage >> t.cycles >> t.valid_instrs >>
        t.inflight;
    t.outcome = static_cast<Outcome>(outcome);
    t.mode = static_cast<FailureMode>(mode);
    t.cat = static_cast<StateCat>(cat);
    t.storage = static_cast<Storage>(storage);
  }
  if (!in) return std::nullopt;  // truncated/corrupt file
  return r;
}

void StoreCachedCampaign(const CampaignResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(CacheDir(), ec);
  const std::filesystem::path path =
      std::filesystem::path(CacheDir()) / (result.spec.CacheKey() + ".txt");
  std::ofstream out(path);
  if (!out) return;  // caching is best-effort
  out << kMagic << '\n' << result.trials.size() << '\n';
  for (int c = 0; c < kNumStateCats; ++c)
    out << result.inventory[c].latch_bits << ' '
        << result.inventory[c].ram_bits << '\n';
  out << result.golden_ipc << ' ' << result.golden_bp_accuracy << ' '
      << result.golden_dcache_misses << '\n';
  for (const auto& t : result.trials)
    out << static_cast<int>(t.outcome) << ' ' << static_cast<int>(t.mode)
        << ' ' << static_cast<int>(t.cat) << ' '
        << static_cast<int>(t.storage) << ' ' << t.cycles << ' '
        << t.valid_instrs << ' ' << t.inflight << '\n';
}

}  // namespace tfsim
