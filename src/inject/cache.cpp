#include "inject/cache.h"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <thread>

#include "obs/metrics.h"
#include "util/checksum.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/fs.h"

namespace tfsim {
namespace {

constexpr const char* kMagicV1 = "tfi-cache v1";
constexpr const char* kMagicV2 = "tfi-cache v2";
constexpr const char* kCkptMagic = "tfi-ckpt v1";

// --- record serialization ----------------------------------------------------

void WriteTrial(std::ostream& os, const TrialRecord& t) {
  os << static_cast<int>(t.outcome) << ' ' << static_cast<int>(t.mode) << ' '
     << static_cast<int>(t.cat) << ' ' << static_cast<int>(t.storage) << ' '
     << t.cycles << ' ' << t.valid_instrs << ' ' << t.inflight << '\n';
}

bool ReadTrial(std::istream& in, TrialRecord& t) {
  int outcome, mode, cat, storage;
  in >> outcome >> mode >> cat >> storage >> t.cycles >> t.valid_instrs >>
      t.inflight;
  if (!in) return false;
  if (outcome < 0 || outcome >= kNumOutcomes || mode < 0 ||
      mode >= kNumFailureModes || cat < 0 || cat >= kNumStateCats ||
      storage < 0 || storage > 2)
    return false;
  t.outcome = static_cast<Outcome>(outcome);
  t.mode = static_cast<FailureMode>(mode);
  t.cat = static_cast<StateCat>(cat);
  t.storage = static_cast<Storage>(storage);
  return true;
}

// The v2 payload: the v1 body, but with every double at max_digits10 so a
// cache hit reproduces the live run's golden stats bit-exactly.
std::string SerializeResultPayload(const CampaignResult& r) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  os << r.trials.size() << '\n';
  for (int c = 0; c < kNumStateCats; ++c)
    os << r.inventory[c].latch_bits << ' ' << r.inventory[c].ram_bits << '\n';
  os << r.golden_ipc << ' ' << r.golden_bp_accuracy << ' '
     << r.golden_dcache_misses << '\n';
  for (const auto& t : r.trials) WriteTrial(os, t);
  return os.str();
}

// Parses a v1/v2 body from `in` into `r` (spec already set). Shared between
// the legacy reader and the checksummed v2 reader: the field layout never
// changed, only the envelope and the double precision did.
bool ParseResultPayload(std::istream& in, CampaignResult& r) {
  std::size_t n = 0;
  in >> n;
  for (int c = 0; c < kNumStateCats; ++c)
    in >> r.inventory[c].latch_bits >> r.inventory[c].ram_bits;
  in >> r.golden_ipc >> r.golden_bp_accuracy >> r.golden_dcache_misses;
  if (!in) return false;
  r.trials.resize(n);
  for (auto& t : r.trials)
    if (!ReadTrial(in, t)) return false;
  // Rebuild the quarantine index (messages are diagnostic-only and not
  // persisted) so cached and live results agree on its shape.
  for (std::size_t i = 0; i < n; ++i)
    if (r.trials[i].outcome == Outcome::kTrialError)
      r.quarantined.push_back({i, std::string()});
  return true;
}

// --- checksummed envelope ----------------------------------------------------
//
//   <magic>\n
//   <crc32 hex> <payload bytes>\n
//   <payload>

std::string WrapChecksummed(const char* magic, const std::string& payload) {
  std::ostringstream os;
  os << magic << '\n' << std::hex << Crc32(payload) << std::dec << ' '
     << payload.size() << '\n'
     << payload;
  return os.str();
}

// Reads and verifies the envelope after the magic line has been consumed.
// Returns the payload only if the declared length matches the remaining
// bytes exactly and the CRC verifies — torn, truncated, padded or tampered
// files all fail here and the caller falls back to a clean re-run.
std::optional<std::string> ReadChecksummed(std::istream& in) {
  std::string header;
  if (!std::getline(in, header)) return std::nullopt;
  std::istringstream hs(header);
  std::uint32_t crc = 0;
  std::size_t size = 0;
  hs >> std::hex >> crc >> std::dec >> size;
  if (!hs) return std::nullopt;
  std::string payload(size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) return std::nullopt;
  if (in.peek() != std::char_traits<char>::eof()) return std::nullopt;
  if (Crc32(payload) != crc) return std::nullopt;
  return payload;
}

// Best-effort atomic store shared by the cache and the journal: ensures the
// directory, writes temp + rename, retries transient failures with bounded
// backoff, and surfaces final failure via stderr and the named counter
// instead of silently dropping hours of results. `failpoint` is the chaos
// site evaluated once per attempt (so a one-in-2 policy fails the first
// attempt and lets the retry succeed).
constexpr int kStoreAttempts = 3;
constexpr std::uint64_t kStoreBackoffUs = 1000;  // 1ms, then 4ms

bool StoreEnvelope(const std::filesystem::path& path, const char* magic,
                   const std::string& payload, const char* failpoint,
                   const char* failure_counter, obs::MetricsRegistry* metrics) {
  const std::string data = WrapChecksummed(magic, payload);
  std::string error;
  for (int attempt = 0; attempt < kStoreAttempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(
          kStoreBackoffUs << (2 * (attempt - 1))));
    error.clear();
    // The directory may have been removed between attempts (or never
    // existed); re-ensure it inside the retry loop.
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      error = "cannot create " + path.parent_path().string() + ": " +
              ec.message();
      continue;
    }
    if (fail::FailHere(failpoint)) {
      error = std::string("failpoint: ") + failpoint;
      continue;
    }
    if (AtomicWriteFile(path, data, &error)) return true;
  }
  std::fprintf(stderr, "[cache] store failed after %d attempts: %s\n",
               kStoreAttempts, error.c_str());
  if (metrics) metrics->GetCounter(failure_counter).Inc();
  return false;
}

}  // namespace

std::string CacheDir() {
  return EnvStr("TFI_CACHE_DIR", ".tfi_cache");
}

std::optional<CampaignResult> LoadCachedCampaign(const CampaignSpec& spec) {
  // A firing load failpoint is indistinguishable from an absent/corrupt
  // cache file: the campaign re-runs cleanly (the graceful-degradation path
  // chaos tests pin).
  if (fail::FailHere("cache.load")) return std::nullopt;
  const std::filesystem::path path =
      std::filesystem::path(CacheDir()) / (spec.CacheKey() + ".txt");
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  std::string magic;
  std::getline(in, magic);

  CampaignResult r;
  r.spec = spec;
  if (magic == kMagicV2) {
    const auto payload = ReadChecksummed(in);
    if (!payload) return std::nullopt;
    std::istringstream body(*payload);
    if (!ParseResultPayload(body, r)) return std::nullopt;
    return r;
  }
  if (magic == kMagicV1) {
    // Legacy uprotected format: no checksum, stream-default double
    // precision. Still readable so existing caches keep their value.
    if (!ParseResultPayload(in, r)) return std::nullopt;
    return r;
  }
  return std::nullopt;
}

bool StoreCachedCampaign(const CampaignResult& result,
                         obs::MetricsRegistry* metrics) {
  const std::filesystem::path path =
      std::filesystem::path(CacheDir()) / (result.spec.CacheKey() + ".txt");
  return StoreEnvelope(path, kMagicV2, SerializeResultPayload(result),
                       "cache.store", "campaign.cache.store_failures",
                       metrics);
}

// --- checkpoint journal ------------------------------------------------------
//
// Journal payload: the campaign's total trial count (a cross-check against
// the spec, though the CacheKey already pins it) followed by the completed
// prefix length and that many records in trial-index order.

std::string CampaignCheckpointPath(const CampaignSpec& spec) {
  return (std::filesystem::path(CacheDir()) / (spec.CacheKey() + ".ckpt"))
      .string();
}

std::optional<std::vector<TrialRecord>> LoadCampaignCheckpoint(
    const CampaignSpec& spec) {
  if (fail::FailHere("ckpt.load")) return std::nullopt;
  std::ifstream in(CampaignCheckpointPath(spec), std::ios::binary);
  if (!in) return std::nullopt;
  std::string magic;
  std::getline(in, magic);
  if (magic != kCkptMagic) return std::nullopt;
  const auto payload = ReadChecksummed(in);
  if (!payload) return std::nullopt;
  std::istringstream body(*payload);
  std::size_t total = 0, done = 0;
  body >> total >> done;
  if (!body || total != static_cast<std::size_t>(spec.trials) || done > total)
    return std::nullopt;
  std::vector<TrialRecord> prefix(done);
  for (auto& t : prefix)
    if (!ReadTrial(body, t)) return std::nullopt;
  return prefix;
}

bool StoreCampaignCheckpoint(const CampaignSpec& spec,
                             const std::vector<TrialRecord>& prefix,
                             obs::MetricsRegistry* metrics) {
  std::ostringstream os;
  os << spec.trials << '\n' << prefix.size() << '\n';
  for (const auto& t : prefix) WriteTrial(os, t);
  return StoreEnvelope(CampaignCheckpointPath(spec), kCkptMagic, os.str(),
                       "ckpt.store", "campaign.checkpoint.store_failures",
                       metrics);
}

void RemoveCampaignCheckpoint(const CampaignSpec& spec) {
  std::error_code ec;
  std::filesystem::remove(CampaignCheckpointPath(spec), ec);
}

}  // namespace tfsim
