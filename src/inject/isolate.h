// Crash containment for fault-injection trials: execute trials in forked
// worker subprocesses under a single-threaded parent supervisor, so a trial
// that segfaults (or wedges past every in-process watchdog) kills only its
// worker. The supervisor harvests the exit status, synthesizes a quarantined
// record for the trial that was in flight, respawns the worker within a
// bounded restart budget, and keeps the campaign running.
//
// Why fork: each worker inherits the (immutable, already-recorded) golden
// run and the pre-generated TrialSpecs by copy-on-write — no serialization
// of the multi-megabyte timeline, and byte-identical TrialRunner behaviour
// to in-process execution. Children run exactly one TrialRunner and spawn no
// threads (fork from a multi-threaded parent is safe only on that
// discipline; it also keeps TSan happy). Trial results return over a pipe as
// fixed-layout frames; the parent fills per-index slots, so surviving
// records are byte-identical to an in-process run at any worker count.
//
// This is the containment substrate RunCampaign's --isolate-trials mode (and
// the ROADMAP's distributed `tfi serve`) builds on.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "inject/golden.h"
#include "inject/outcome.h"
#include "inject/trial.h"
#include "util/cancel.h"

namespace tfsim {

// True where fork-based isolation is implemented (POSIX).
bool IsolationSupported();

struct IsolateOptions {
  // Concurrent worker subprocesses (already resolved; >= 1).
  int jobs = 1;
  // Execution policy forwarded to every child's TrialRunner. timeout_ms is
  // doubly enforced: the child's own watchdog converts in-loop hangs into
  // clean kTrialTimeout frames, and the parent hard-kills (SIGKILL) any
  // worker silent for 2*timeout_ms + 250ms — a hang the child cannot see
  // (e.g. outside the cycle loop) still cannot stall the campaign. With
  // timeout_ms == 0 the parent never hard-kills.
  TrialPolicy policy;
  // Workers respawned after a crash/hard-kill before the supervisor declares
  // containment exhausted and stops (remaining trials are quarantined).
  int max_restarts = 16;
  // Cooperative cancellation: in-flight trials finish (deadline permitting),
  // no new ones start, report.interrupted is set.
  CancellationToken* cancel = nullptr;
  // Test instrumentation, executed IN THE CHILD before each attempt (the
  // isolate-mode equivalent of CampaignOptions::trial_fault_hook): a throw
  // quarantines, a crash or hang exercises the supervisor.
  std::function<void(std::size_t)> before_trial;
  bool verbose = false;
};

// One trial's outcome as observed by the supervisor.
struct IsolatedTrial {
  std::size_t index = 0;
  TrialRecord record;           // kTrialError stand-in when quarantined
  bool quarantined = false;     // any reason
  bool timed_out = false;       // child watchdog or parent hard-kill
  bool crashed = false;         // worker died (signal / nonzero exit)
  bool budget_exhausted = false;  // synthesized: never ran, budget spent
  std::uint64_t status = 0;     // crash: signal number or exit status
  std::uint64_t dur_us = 0;     // wall time (parent-observed for crashes)
  int worker = 0;               // supervisor worker slot
  std::string error;            // diagnostic (not persisted)
};

struct IsolateReport {
  bool exhausted = false;       // restart budget ran out mid-campaign
  bool interrupted = false;     // cancellation observed
  std::uint64_t restarts = 0;   // workers respawned
  std::uint64_t crashes = 0;    // trials lost to worker death
  std::uint64_t timeouts = 0;   // trials lost to deadlines (child or parent)
};

// Runs specs[first..size) in isolated workers, invoking `on_result` once per
// trial index (in completion order, from the supervisor thread — never
// concurrently). Every index in [first, size) gets exactly one callback:
// a real record, a quarantined stand-in, or a budget_exhausted stand-in.
// Throws std::runtime_error where IsolationSupported() is false.
IsolateReport RunTrialsIsolated(
    const std::shared_ptr<const GoldenRun>& golden,
    const std::vector<TrialSpec>& specs, std::size_t first,
    const IsolateOptions& opt,
    const std::function<void(IsolatedTrial&&)>& on_result);

}  // namespace tfsim
