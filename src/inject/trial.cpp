#include "inject/trial.h"

#include "check/invariants.h"
#include "util/rng.h"

namespace tfsim {
namespace {

// Architectural equivalence of two retire events. The recorded PC field is
// deliberately NOT compared: a flipped PC *bookkeeping* bit (e.g. in a ROB
// entry) is architecturally silent until the machine actually uses it — for
// branch execution, exception reporting, or a recovery refetch — at which
// point the divergence shows up in the instruction stream or data values.
// This matches the paper's ctrl failure definition ("the processor fetches,
// executes, and commits an incorrect (but valid) instruction").
bool ArchEquivalent(const RetireEvent& got, const RetireEvent& want) {
  return got.exc == Exception::kNone && got.insn == want.insn &&
         got.dst == want.dst && got.value == want.value &&
         got.is_store == want.is_store &&
         got.store_addr == want.store_addr &&
         got.store_value == want.store_value &&
         got.store_size == want.store_size &&
         got.is_syscall == want.is_syscall;
}

// Classifies a retire-event divergence into a Table 2 failure mode.
FailureMode ClassifyEventMismatch(const RetireEvent& got,
                                  const RetireEvent& want) {
  if (got.exc != Exception::kNone) {
    switch (got.exc) {
      case Exception::kITlbMiss: return FailureMode::kItlb;
      case Exception::kDTlbMiss: return FailureMode::kDtlb;
      default: return FailureMode::kExcept;
    }
  }
  if (got.insn != want.insn)
    return FailureMode::kCtrl;  // wrong (but valid) instruction committed
  if (got.is_store != want.is_store || got.store_addr != want.store_addr ||
      got.store_value != want.store_value ||
      got.store_size != want.store_size)
    return FailureMode::kMem;
  return FailureMode::kRegfile;  // wrong destination register or value
}

Outcome OutcomeOf(FailureMode m) {
  switch (m) {
    case FailureMode::kExcept:
    case FailureMode::kLocked:
      return Outcome::kTerminated;
    default:
      return Outcome::kSdc;
  }
}

}  // namespace

TrialRecord RunTrial(Core& core, const GoldenRun& golden,
                     const TrialSpec& spec, obs::PropagationTrace* trace) {
  const GoldenTimeline& tl = golden.timeline;
  TrialRecord rec;

  core.Load(golden.checkpoints.at(static_cast<std::size_t>(spec.checkpoint)));
  core.tlb() = golden.tlb;  // preloaded with every fault-free page

  // Advance deterministically to the injection cycle (identical to golden).
  const std::uint64_t base =
      static_cast<std::uint64_t>(spec.checkpoint) * golden.spec.spacing;
  for (std::uint64_t c = 0; c < spec.offset; ++c) core.Cycle();

  // Checkpoints are saved before their cycle executes, so after `offset`
  // cycles the machine state equals timeline[base + offset - 1].
  const std::uint64_t inj_index =
      base + (spec.offset > 0 ? spec.offset - 1 : 0);
  rec.valid_instrs = tl.ValidInstrsAt(inj_index);
  rec.inflight = static_cast<std::uint32_t>(core.InFlight());

  // Flip one uniformly chosen bit of eligible state (plus optional extra
  // flips for the multi-bit extension models).
  const std::uint64_t total = core.registry().InjectableBits(spec.include_ram);
  const BitLocation loc =
      core.registry().LocateBit(spec.bit_index % total, spec.include_ram);
  core.registry().FlipBit(loc);
  rec.cat = loc.cat;
  rec.storage = loc.storage;
  for (int k = 1; k < spec.flips; ++k) {
    BitLocation extra;
    if (spec.adjacent) {
      extra = loc;
      extra.bit = static_cast<std::uint8_t>((loc.bit + k) % loc.width);
      if (extra.bit == loc.bit) break;  // element narrower than the burst
    } else {
      extra = core.registry().LocateBit(
          Mix64(spec.bit_index + static_cast<std::uint64_t>(k) * 0x9E3779B9) %
              total,
          spec.include_ram);
    }
    core.registry().FlipBit(extra);
  }

  if (trace) {
    trace->field = loc.name;
    trace->cat = loc.cat;
    trace->storage = loc.storage;
    trace->bit = loc.bit;
    trace->flips = spec.flips;
    trace->valid_instrs = rec.valid_instrs;
    trace->inflight = rec.inflight;
  }

  auto finish = [&](Outcome o, FailureMode m, std::uint64_t cycles) {
    rec.outcome = o;
    rec.mode = m;
    rec.cycles = static_cast<std::uint32_t>(cycles);
    if (trace) {
      trace->outcome = o;
      trace->mode = m;
      trace->classified_cycle = rec.cycles;
      // Every failure mode except deadlock/livelock is detected as an
      // architectural divergence (wrong event, exception or state mismatch)
      // in the cycle it is classified; a locked machine never diverged.
      trace->arch_divergence_cycle =
          m != FailureMode::kNoFailure && m != FailureMode::kLocked
              ? static_cast<std::int64_t>(cycles)
              : -1;
      // Structural self-check results (checked trials only). Violation
      // cycles are CoreStats cycles since the checkpoint Load; the injection
      // happened after `offset` of them, and the pre-injection advance is
      // fault-free, so the difference is the injection-relative latency.
      if (const check::InvariantChecker* chk = core.invariant_checker();
          chk && chk->total() != 0) {
        trace->invariant_violations = chk->total();
        const check::InvariantViolation& v = chk->violations().front();
        trace->first_violation_cycle = static_cast<std::int64_t>(v.cycle) -
                                       static_cast<std::int64_t>(spec.offset);
        trace->first_violation_kind = check::InvariantKindName(v.kind);
      }
    }
    return rec;
  };

  std::uint64_t no_retire_cycles = 0;
  // Absolute retirement index for event comparison. Tracked locally because
  // exception events appear in RetiredThisCycle() without incrementing the
  // core's retired_total.
  std::uint64_t abs_index = core.RetiredTotal();
  for (std::uint64_t c = 1; c <= golden.spec.window; ++c) {
    core.Cycle();
    const std::uint64_t gidx = base + spec.offset + c - 1;
    if (gidx >= tl.state_hash.size())
      return finish(Outcome::kGrayArea, FailureMode::kNoFailure, c);

    // Propagation tracing: which categories hold state divergent from the
    // golden machine at this cycle, and when the fault first escaped the
    // injected category. Read-only with respect to the machine.
    if (trace && gidx < tl.cat_hash.size()) {
      const StateRegistry::CatHashArray& want_cats = tl.cat_hash[gidx];
      const StateRegistry::CatHashArray& got_cats =
          core.registry().CatHashes();
      for (int cat = 0; cat < kNumStateCats; ++cat) {
        if (got_cats[cat] == want_cats[cat]) continue;
        trace->cats_touched_mask |= 1u << cat;
        if (static_cast<StateCat>(cat) != loc.cat &&
            trace->first_spread_cycle < 0) {
          trace->first_spread_cycle = static_cast<std::int64_t>(c);
          trace->first_spread_cat = static_cast<StateCat>(cat);
        }
      }
    }

    // Architectural retire-event comparison (paper: architectural state is
    // verified continuously; any inconsistency is an SDC or Terminated).
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent* want = tl.EventAt(abs_index++);
      if (!want)
        return finish(Outcome::kGrayArea, FailureMode::kNoFailure, c);
      if (!ArchEquivalent(ev, *want)) {
        const FailureMode m = ClassifyEventMismatch(ev, *want);
        return finish(OutcomeOf(m), m, c);
      }
    }

    // Fetch-side TLB miss (conservatively SDC, like the paper).
    if (core.itlb_miss())
      return finish(Outcome::kSdc, FailureMode::kItlb, c);
    // An exception surfaced without retiring events (defensive).
    if (core.halted_exception() != Exception::kNone) {
      const Exception e = core.halted_exception();
      const FailureMode m = e == Exception::kITlbMiss  ? FailureMode::kItlb
                            : e == Exception::kDTlbMiss ? FailureMode::kDtlb
                                                        : FailureMode::kExcept;
      return finish(OutcomeOf(m), m, c);
    }

    // Deadlock/livelock detection.
    no_retire_cycles =
        core.RetiredThisCycle().empty() ? no_retire_cycles + 1 : 0;
    if (no_retire_cycles >= static_cast<std::uint64_t>(kLockedThresholdCycles))
      return finish(Outcome::kTerminated, FailureMode::kLocked, c);

    // Retirement-count-aligned architectural view comparison: catches silent
    // corruption of the architectural register file / RAT immediately, even
    // before a dependent use retires.
    const std::uint64_t k = core.RetiredTotal();
    if (const auto it = tl.count_to_cycle.find(k);
        it != tl.count_to_cycle.end()) {
      const std::size_t g = it->second;
      if (core.ArchViewHash() != tl.arch_hash[g])
        return finish(Outcome::kSdc, FailureMode::kRegfile, c);
      if (tl.sb_empty[g] && core.StoreBufferEmpty() &&
          (core.memory().ContentHash() ^ core.OutputHash()) != tl.mem_hash[g])
        return finish(Outcome::kSdc, FailureMode::kMem, c);
    }

    // Complete microarchitectural state match (every bit of the machine).
    if (core.StateHash() == tl.state_hash[gidx])
      return finish(Outcome::kMicroArchMatch, FailureMode::kNoFailure, c);
  }
  return finish(Outcome::kGrayArea, FailureMode::kNoFailure,
                golden.spec.window);
}

}  // namespace tfsim
