#include "inject/trial.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "check/invariants.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace tfsim {
namespace {

// Architectural equivalence of two retire events. The recorded PC field is
// deliberately NOT compared: a flipped PC *bookkeeping* bit (e.g. in a ROB
// entry) is architecturally silent until the machine actually uses it — for
// branch execution, exception reporting, or a recovery refetch — at which
// point the divergence shows up in the instruction stream or data values.
// This matches the paper's ctrl failure definition ("the processor fetches,
// executes, and commits an incorrect (but valid) instruction").
bool ArchEquivalent(const RetireEvent& got, const RetireEvent& want) {
  return got.exc == Exception::kNone && got.insn == want.insn &&
         got.dst == want.dst && got.value == want.value &&
         got.is_store == want.is_store &&
         got.store_addr == want.store_addr &&
         got.store_value == want.store_value &&
         got.store_size == want.store_size &&
         got.is_syscall == want.is_syscall;
}

// Classifies a retire-event divergence into a Table 2 failure mode.
FailureMode ClassifyEventMismatch(const RetireEvent& got,
                                  const RetireEvent& want) {
  if (got.exc != Exception::kNone) {
    switch (got.exc) {
      case Exception::kITlbMiss: return FailureMode::kItlb;
      case Exception::kDTlbMiss: return FailureMode::kDtlb;
      default: return FailureMode::kExcept;
    }
  }
  if (got.insn != want.insn)
    return FailureMode::kCtrl;  // wrong (but valid) instruction committed
  if (got.is_store != want.is_store || got.store_addr != want.store_addr ||
      got.store_value != want.store_value ||
      got.store_size != want.store_size)
    return FailureMode::kMem;
  return FailureMode::kRegfile;  // wrong destination register or value
}

Outcome OutcomeOf(FailureMode m) {
  switch (m) {
    case FailureMode::kExcept:
    case FailureMode::kLocked:
      return Outcome::kTerminated;
    default:
      return Outcome::kSdc;
  }
}

// Watchdog (and chaos-delay) cadence in the simulation loops: every 256
// cycles keeps a steady_clock read off the per-cycle hot path (<0.1% even on
// short windows) while bounding detection latency to a few hundred cycles.
constexpr std::uint64_t kWatchdogMask = 0xFF;

}  // namespace

InjectionSite ResolveInjectionSite(const GoldenSpec& spec,
                                   const TrialSpec& trial,
                                   const StateRegistry& registry) {
  InjectionSite site;
  site.base = static_cast<std::uint64_t>(trial.checkpoint) * spec.spacing;
  site.inj_cycle = site.base + trial.offset;
  // Checkpoints are saved before their cycle executes, so after `offset`
  // cycles the machine state equals timeline[base + offset - 1].
  site.inj_index = site.base + (trial.offset > 0 ? trial.offset - 1 : 0);

  const std::uint64_t total = registry.InjectableBits(trial.include_ram);
  site.primary = registry.LocateBit(trial.bit_index % total, trial.include_ram);
  site.flips.push_back(site.primary);
  for (int k = 1; k < trial.flips; ++k) {
    BitLocation extra;
    if (trial.adjacent) {
      extra = site.primary;
      extra.bit = static_cast<std::uint8_t>((site.primary.bit + k) %
                                            site.primary.width);
      if (extra.bit == site.primary.bit) break;  // narrower than the burst
    } else {
      extra = registry.LocateBit(
          Mix64(trial.bit_index + static_cast<std::uint64_t>(k) * 0x9E3779B9) %
              total,
          trial.include_ram);
    }
    site.flips.push_back(extra);
  }
  return site;
}

FastPathPlan PlanFastPath(const GoldenSpec& spec,
                          const std::vector<TrialSpec>& trials,
                          const StateRegistry& registry) {
  FastPathPlan plan;
  plan.snapshot_cycles.reserve(trials.size());
  for (const TrialSpec& t : trials) {
    const InjectionSite site = ResolveInjectionSite(spec, t, registry);
    plan.snapshot_cycles.push_back(site.inj_cycle);
    for (const BitLocation& loc : site.flips)
      plan.watches.emplace_back(registry.WordIndexOf(loc), site.inj_cycle);
  }
  std::sort(plan.snapshot_cycles.begin(), plan.snapshot_cycles.end());
  plan.snapshot_cycles.erase(
      std::unique(plan.snapshot_cycles.begin(), plan.snapshot_cycles.end()),
      plan.snapshot_cycles.end());
  std::sort(plan.watches.begin(), plan.watches.end());
  plan.watches.erase(std::unique(plan.watches.begin(), plan.watches.end()),
                     plan.watches.end());
  return plan;
}

TrialRunner::TrialRunner(std::shared_ptr<const GoldenRun> golden,
                         TrialPolicy policy)
    : golden_(std::move(golden)), policy_(policy) {
  CoreConfig cfg = golden_->cfg;
  cfg.check_invariants = policy_.check_invariants;
  core_ = std::make_unique<Core>(cfg, golden_->program);
}

std::uint64_t TrialRunner::window() const {
  return policy_.window != 0 ? policy_.window : golden_->spec.window;
}

void TrialRunner::ArmDeadline() {
  if (policy_.timeout_ms > 0)
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(policy_.timeout_ms);
}

void TrialRunner::CheckDeadline() const {
  if (policy_.timeout_ms <= 0) return;
  if (std::chrono::steady_clock::now() <= deadline_) return;
  throw TrialTimeoutError("trial exceeded its " +
                          std::to_string(policy_.timeout_ms) +
                          "ms watchdog deadline");
}

TrialRunner::Result TrialRunner::Run(const TrialSpec& spec, bool want_trace,
                                     const Hooks* hooks) {
  Result res;
  const int attempts = 1 + std::max(policy_.retries, 0);
  bool ok = false;
  for (int attempt = 1; attempt <= attempts && !ok; ++attempt) {
    res.attempts = attempt;
    // The deadline covers the whole attempt, hooks included: a stalled
    // before_attempt hook shows up at the first in-loop check.
    ArmDeadline();
    try {
      if (hooks != nullptr && hooks->before_attempt) hooks->before_attempt();
      obs::PropagationTrace attempt_trace;
      bool fast = false;
      res.record =
          RunOnce(spec, want_trace ? &attempt_trace : nullptr, &fast);
      res.trace = std::move(attempt_trace);
      res.fast = fast;
      ok = true;
    } catch (const TrialTimeoutError& e) {
      // No retry: a deterministic hang would eat every re-attempt's budget
      // too. Straight to quarantine with the timeout cause preserved.
      res.error = e.what();
      res.timed_out = true;
      break;
    } catch (const std::exception& e) {
      res.error = e.what();
    } catch (...) {
      res.error = "unknown error";
    }
    if (!ok && hooks != nullptr && hooks->on_retry)
      hooks->on_retry(attempt, res.error);
  }
  if (!ok) {
    res.record = TrialRecord{};
    res.record.outcome = Outcome::kTrialError;
    res.quarantined = true;
    return res;
  }
  // Checked runs: a structurally inconsistent machine quarantines the trial
  // even when classification succeeded — its record must not pollute the
  // outcome distribution. The trace (which carries the violation details)
  // is kept for diagnosis.
  if (policy_.check_invariants) {
    if (const check::InvariantChecker* chk = core_->invariant_checker();
        chk != nullptr && chk->total() != 0) {
      const check::InvariantViolation& v = chk->violations().front();
      std::ostringstream msg;
      msg << "invariant violation [" << check::InvariantKindName(v.kind)
          << "] at trial cycle " << v.cycle << ": " << v.detail;
      res.error = msg.str();
      res.record = TrialRecord{};
      res.record.outcome = Outcome::kTrialError;
      res.quarantined = true;
    }
  }
  return res;
}

TrialRecord TrialRunner::RunOnce(const TrialSpec& spec,
                                 obs::PropagationTrace* trace, bool* fast) {
  // First watchdog check of the attempt: catches time already burned in the
  // before_attempt hook (seeded-hang tests stall exactly there).
  CheckDeadline();
  const InjectionSite site =
      ResolveInjectionSite(golden_->spec, spec, core_->registry());
  TrialRecord rec;
  if (TryShortcut(spec, site, rec, trace)) {
    *fast = true;
    return rec;
  }
  *fast = false;
  return Simulate(spec, site, trace);
}

// Dormancy shortcut: classify a trial from the golden recorder's first-access
// data without simulating a single cycle. While every flipped word remains
// untouched by the (tracked) golden execution, the trial machine runs
// cycle-for-cycle identically to golden outside those words — no comparison
// the differential loop performs can fire. So:
//   - first access is a WRITE at golden cycle W: the flip is overwritten and
//     the machines become bit-identical; the loop's StateHash check matches
//     exactly at trial cycle W - J + 1 (μArch Match).
//   - no access inside the window: the flip stays latent; the loop runs to
//     the end (Gray Area at `window`).
//   - first access is a READ: the divergent value enters the pipeline and
//     anything may happen — fall back to real simulation.
// Flips that cancel (multi-bit bursts revisiting a bit) leave the machine
// equal to golden from the start: StateHash matches at cycle 1.
bool TrialRunner::TryShortcut(const TrialSpec& spec, const InjectionSite& site,
                              TrialRecord& rec, obs::PropagationTrace* trace) {
  const GoldenRun& golden = *golden_;
  if (!policy_.fast_path || policy_.check_invariants ||
      !golden.fastpath.enabled || golden.fastpath.access == nullptr)
    return false;
  const GoldenTimeline& tl = golden.timeline;
  const std::uint64_t win = window();
  const std::uint64_t inj = site.inj_cycle;
  // The identical-execution argument needs every window cycle inside the
  // recorded timeline (the loop classifies Gray when it falls off the end,
  // and the recorder only tracked accesses it recorded).
  if (inj + win > tl.state_hash.size()) return false;
  const auto point_it = golden.fastpath.points.find(inj);
  if (point_it == golden.fastpath.points.end()) return false;
  const WordFirstAccessTracker& access = *golden.fastpath.access;

  // Net effect per flipped word (bursts can revisit a word; a fully
  // cancelled word is never divergent).
  struct WordFlip {
    std::size_t word;
    std::uint64_t mask;
    StateCat cat;
  };
  std::vector<WordFlip> words;
  for (const BitLocation& loc : site.flips) {
    const std::size_t w = core_->registry().WordIndexOf(loc);
    bool merged = false;
    for (WordFlip& wf : words) {
      if (wf.word == w) {
        wf.mask ^= 1ULL << loc.bit;
        merged = true;
        break;
      }
    }
    if (!merged) words.push_back({w, 1ULL << loc.bit, loc.cat});
  }

  bool latent = false;              // some divergent word outlives the window
  std::uint64_t converge_c = 1;     // trial cycle of full re-convergence
  std::uint32_t divergent_cats = 0; // cats divergent at the first sample
  for (const WordFlip& wf : words) {
    if (wf.mask == 0) continue;  // cancelled: identical to golden throughout
    if (!access.Watched(wf.word, inj)) return false;  // outside the plan
    const WordFirstAccessTracker::FirstAccess fa = access.Lookup(wf.word, inj);
    const bool accessed =
        fa.cycle >= 0 && static_cast<std::uint64_t>(fa.cycle) < inj + win;
    if (accessed && !fa.is_write) return false;  // read while divergent
    if (!accessed) {
      latent = true;
      divergent_cats |= 1u << static_cast<int>(wf.cat);
    } else {
      const std::uint64_t c = static_cast<std::uint64_t>(fa.cycle) - inj + 1;
      converge_c = std::max(converge_c, c);
      // Divergent at trial cycle 1's sample unless overwritten during the
      // very first cycle.
      if (static_cast<std::uint64_t>(fa.cycle) > inj)
        divergent_cats |= 1u << static_cast<int>(wf.cat);
    }
  }

  Outcome outcome;
  std::uint64_t cycles;
  if (win == 0) {  // degenerate: the loop never runs
    outcome = Outcome::kGrayArea;
    cycles = 0;
  } else if (latent) {
    outcome = Outcome::kGrayArea;
    cycles = win;
  } else {
    outcome = Outcome::kMicroArchMatch;
    cycles = converge_c;
  }

  rec.outcome = outcome;
  rec.mode = FailureMode::kNoFailure;
  rec.cycles = static_cast<std::uint32_t>(cycles);
  rec.cat = site.primary.cat;
  rec.storage = site.primary.storage;
  rec.valid_instrs = tl.ValidInstrsAt(site.inj_index);
  rec.inflight = static_cast<std::uint32_t>(point_it->second.delta.inflight);

  if (trace) {
    trace->field = site.primary.name;
    trace->cat = site.primary.cat;
    trace->storage = site.primary.storage;
    trace->bit = site.primary.bit;
    trace->flips = spec.flips;
    trace->valid_instrs = rec.valid_instrs;
    trace->inflight = rec.inflight;
    trace->outcome = outcome;
    trace->mode = FailureMode::kNoFailure;
    trace->classified_cycle = rec.cycles;
    trace->arch_divergence_cycle = -1;  // Match/Gray never diverged
    // The divergent set only ever shrinks (words are overwritten, never
    // read), so the category mask and any cross-category spread are fully
    // determined by the first sample.
    if (win > 0) {
      trace->cats_touched_mask = divergent_cats;
      for (int cat = 0; cat < kNumStateCats; ++cat) {
        if ((divergent_cats & (1u << cat)) == 0) continue;
        if (static_cast<StateCat>(cat) == site.primary.cat) continue;
        trace->first_spread_cycle = 1;
        trace->first_spread_cat = static_cast<StateCat>(cat);
        break;
      }
    }
  }
  return true;
}

TrialRecord TrialRunner::Simulate(const TrialSpec& spec,
                                  const InjectionSite& site,
                                  obs::PropagationTrace* trace) {
  const GoldenRun& golden = *golden_;
  const GoldenTimeline& tl = golden.timeline;
  Core& core = *core_;
  TrialRecord rec;

  // Restore the machine at the injection cycle: from a pre-captured delta
  // snapshot when available (fast path), otherwise by replaying `offset`
  // cycles from the checkpoint. Both land on bit-identical machine state.
  // Checked runs always replay — violation cycles are reported relative to
  // the checkpoint Load, and the pre-injection advance must be checked too.
  const GoldenFastPath::Point* point = nullptr;
  if (policy_.fast_path && !policy_.check_invariants &&
      golden.fastpath.enabled) {
    const auto it = golden.fastpath.points.find(site.inj_cycle);
    if (it != golden.fastpath.points.end()) point = &it->second;
  }
  if (point != nullptr) {
    core.LoadDelta(golden.checkpoints[point->base_checkpoint], point->delta);
  } else {
    core.Load(
        golden.checkpoints.at(static_cast<std::size_t>(spec.checkpoint)));
  }
  core.tlb() = golden.tlb;  // preloaded with every fault-free page
  if (point == nullptr) {
    // Advance deterministically to the injection cycle (identical to golden).
    for (std::uint64_t c = 0; c < spec.offset; ++c) {
      core.Cycle();
      if ((c & kWatchdogMask) == 0) CheckDeadline();
    }
  }

  const std::uint64_t base = site.base;
  rec.valid_instrs = tl.ValidInstrsAt(site.inj_index);
  rec.inflight = static_cast<std::uint32_t>(core.InFlight());

  // Flip one uniformly chosen bit of eligible state (plus optional extra
  // flips for the multi-bit extension models).
  for (const BitLocation& loc : site.flips) core.registry().FlipBit(loc);
  rec.cat = site.primary.cat;
  rec.storage = site.primary.storage;

  if (trace) {
    trace->field = site.primary.name;
    trace->cat = site.primary.cat;
    trace->storage = site.primary.storage;
    trace->bit = site.primary.bit;
    trace->flips = spec.flips;
    trace->valid_instrs = rec.valid_instrs;
    trace->inflight = rec.inflight;
  }

  auto finish = [&](Outcome o, FailureMode m, std::uint64_t cycles) {
    rec.outcome = o;
    rec.mode = m;
    rec.cycles = static_cast<std::uint32_t>(cycles);
    if (trace) {
      trace->outcome = o;
      trace->mode = m;
      trace->classified_cycle = rec.cycles;
      // Every failure mode except deadlock/livelock is detected as an
      // architectural divergence (wrong event, exception or state mismatch)
      // in the cycle it is classified; a locked machine never diverged.
      trace->arch_divergence_cycle =
          m != FailureMode::kNoFailure && m != FailureMode::kLocked
              ? static_cast<std::int64_t>(cycles)
              : -1;
      // Structural self-check results (checked trials only). Violation
      // cycles are CoreStats cycles since the checkpoint Load; the injection
      // happened after `offset` of them, and the pre-injection advance is
      // fault-free, so the difference is the injection-relative latency.
      if (const check::InvariantChecker* chk = core.invariant_checker();
          chk && chk->total() != 0) {
        trace->invariant_violations = chk->total();
        const check::InvariantViolation& v = chk->violations().front();
        trace->first_violation_cycle = static_cast<std::int64_t>(v.cycle) -
                                       static_cast<std::int64_t>(spec.offset);
        trace->first_violation_kind = check::InvariantKindName(v.kind);
      }
    }
    return rec;
  };

  const std::uint64_t win = window();
  std::uint64_t no_retire_cycles = 0;
  // Absolute retirement index for event comparison. Tracked locally because
  // exception events appear in RetiredThisCycle() without incrementing the
  // core's retired_total.
  std::uint64_t abs_index = core.RetiredTotal();
  for (std::uint64_t c = 1; c <= win; ++c) {
    // Watchdog + chaos cadence: the trial.cycle site lets tests wedge the
    // loop (a delay policy models a fault-corrupted core that stops making
    // progress) and the deadline check converts exactly that into a timeout.
    if ((c & kWatchdogMask) == 0) {
      fail::FailHere("trial.cycle");
      CheckDeadline();
    }
    core.Cycle();
    const std::uint64_t gidx = base + spec.offset + c - 1;
    if (gidx >= tl.state_hash.size())
      return finish(Outcome::kGrayArea, FailureMode::kNoFailure, c);

    // Propagation tracing: which categories hold state divergent from the
    // golden machine at this cycle, and when the fault first escaped the
    // injected category. Read-only with respect to the machine.
    if (trace && gidx < tl.cat_hash.size()) {
      const StateRegistry::CatHashArray& want_cats = tl.cat_hash[gidx];
      const StateRegistry::CatHashArray& got_cats =
          core.registry().CatHashes();
      for (int cat = 0; cat < kNumStateCats; ++cat) {
        if (got_cats[cat] == want_cats[cat]) continue;
        trace->cats_touched_mask |= 1u << cat;
        if (static_cast<StateCat>(cat) != site.primary.cat &&
            trace->first_spread_cycle < 0) {
          trace->first_spread_cycle = static_cast<std::int64_t>(c);
          trace->first_spread_cat = static_cast<StateCat>(cat);
        }
      }
    }

    // Architectural retire-event comparison (paper: architectural state is
    // verified continuously; any inconsistency is an SDC or Terminated).
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent* want = tl.EventAt(abs_index++);
      if (!want)
        return finish(Outcome::kGrayArea, FailureMode::kNoFailure, c);
      if (!ArchEquivalent(ev, *want)) {
        const FailureMode m = ClassifyEventMismatch(ev, *want);
        return finish(OutcomeOf(m), m, c);
      }
    }

    // Fetch-side TLB miss (conservatively SDC, like the paper).
    if (core.itlb_miss())
      return finish(Outcome::kSdc, FailureMode::kItlb, c);
    // An exception surfaced without retiring events (defensive).
    if (core.halted_exception() != Exception::kNone) {
      const Exception e = core.halted_exception();
      const FailureMode m = e == Exception::kITlbMiss  ? FailureMode::kItlb
                            : e == Exception::kDTlbMiss ? FailureMode::kDtlb
                                                        : FailureMode::kExcept;
      return finish(OutcomeOf(m), m, c);
    }

    // Deadlock/livelock detection.
    no_retire_cycles =
        core.RetiredThisCycle().empty() ? no_retire_cycles + 1 : 0;
    if (no_retire_cycles >= static_cast<std::uint64_t>(kLockedThresholdCycles))
      return finish(Outcome::kTerminated, FailureMode::kLocked, c);

    // Retirement-count-aligned architectural view comparison: catches silent
    // corruption of the architectural register file / RAT immediately, even
    // before a dependent use retires.
    const std::uint64_t k = core.RetiredTotal();
    if (const auto it = tl.count_to_cycle.find(k);
        it != tl.count_to_cycle.end()) {
      const std::size_t g = it->second;
      if (core.ArchViewHash() != tl.arch_hash[g])
        return finish(Outcome::kSdc, FailureMode::kRegfile, c);
      if (tl.sb_empty[g] && core.StoreBufferEmpty() &&
          (core.memory().ContentHash() ^ core.OutputHash()) != tl.mem_hash[g])
        return finish(Outcome::kSdc, FailureMode::kMem, c);
    }

    // Complete microarchitectural state match (every bit of the machine).
    if (core.StateHash() == tl.state_hash[gidx])
      return finish(Outcome::kMicroArchMatch, FailureMode::kNoFailure, c);
  }
  return finish(Outcome::kGrayArea, FailureMode::kNoFailure, win);
}

}  // namespace tfsim
