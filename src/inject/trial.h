// Single fault-injection trial: restore the machine at the injection cycle,
// flip one bit, then co-compare against the golden timeline for up to the
// observation window, classifying the paper's four outcomes and seven
// failure modes.
//
// Trials execute through TrialRunner, which owns its core replica and an
// explicit TrialPolicy. With the fast path enabled (the default) and a
// golden run recorded with a FastPathPlan, a trial starts *at* its injection
// cycle from a pre-captured delta snapshot instead of replaying `offset`
// cycles from a checkpoint — and most trials never simulate at all: the
// recorder's first-access data proves a flipped word was either overwritten
// at a known cycle (μArch Match, exact re-convergence latency) or never
// touched inside the window (Gray Area). Only trials whose flipped word is
// *read* while divergent execute the differential loop. Fast and slow paths
// produce byte-identical TrialRecords and propagation traces.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "inject/golden.h"
#include "inject/outcome.h"
#include "obs/prop_trace.h"
#include "uarch/core.h"

namespace tfsim {

struct TrialSpec {
  int checkpoint = 0;            // start point
  std::uint64_t offset = 0;      // cycles from the checkpoint to injection
  std::uint64_t bit_index = 0;   // uniform index into the eligible bit space
  bool include_ram = true;       // latches+RAMs (true) or latches only
  // Extension beyond the paper (whose Section 6 flags the single-bit model
  // as a threat to validity): flip `flips` bits per trial. When `adjacent`,
  // the extra flips hit neighbouring bits of the same element (a spatially
  // correlated strike); otherwise they land uniformly at random.
  int flips = 1;
  bool adjacent = false;
};

// How TrialRunner executes trials. Execution policy only: every combination
// of fast_path and window classifies a given TrialSpec identically (window
// changes the observation length, which IS part of the result — it is a
// policy knob so hosts can thread GoldenRunSpec::window through explicitly;
// 0 means "the golden run's window").
struct TrialPolicy {
  bool fast_path = true;        // use fast-path data when the golden has it
  std::uint64_t window = 0;     // observation window; 0 = golden.spec.window
  int retries = 1;              // re-attempts before quarantining a throw
  bool check_invariants = false;  // run the replica with the cycle checker
  // Watchdog deadline per execution attempt, in wall milliseconds; 0 = off.
  // A fault-corrupted machine that wedges the simulation loop (or a hook
  // that stalls) is converted into a TrialTimeoutError — quarantined as a
  // Trial Error with a distinct timeout reason, never retried (a
  // deterministic hang would hang every retry too). The deadline is checked
  // at attempt start and every 256 simulated cycles, so enforcement
  // granularity is a few hundred cycles, not instructions.
  std::int64_t timeout_ms = 0;
};

// Thrown by the trial runner when an attempt exceeds TrialPolicy::timeout_ms.
// Distinct from other trial failures so hosts can report kTrialTimeout
// instead of a generic quarantine (and skip pointless retries).
struct TrialTimeoutError : std::runtime_error {
  explicit TrialTimeoutError(const std::string& what)
      : std::runtime_error(what) {}
};

// Where a TrialSpec lands: the resolved timeline cycles and flipped bits.
// The single source of truth shared by trial execution, fast-path capture
// planning, and heatmap site re-derivation (inject/report.cpp), so the three
// can never drift.
struct InjectionSite {
  std::uint64_t base = 0;       // checkpoint cycle (timeline index)
  std::uint64_t inj_cycle = 0;  // first cycle executed after injection
  // Timeline index whose recorded state the injected machine was in
  // (utilization sampling; equals inj_cycle - 1 except at offset 0).
  std::uint64_t inj_index = 0;
  BitLocation primary;              // the uniformly drawn bit
  std::vector<BitLocation> flips;   // all flips in application order
};

// Resolves a trial's injection site against a registry of the golden
// machine's layout (any core built from the same config and program).
InjectionSite ResolveInjectionSite(const GoldenSpec& spec,
                                   const TrialSpec& trial,
                                   const StateRegistry& registry);
inline InjectionSite ResolveInjectionSite(const GoldenRun& golden,
                                          const TrialSpec& trial,
                                          const StateRegistry& registry) {
  return ResolveInjectionSite(golden.spec, trial, registry);
}

// Derives the golden recorder's fast-path capture plan (injection-cycle
// snapshots + first-access watches) from a campaign's trial specs.
FastPathPlan PlanFastPath(const GoldenSpec& spec,
                          const std::vector<TrialSpec>& trials,
                          const StateRegistry& registry);

// Runs fault-injection trials against one golden run on a privately owned
// core replica (campaign workers hold one runner each; the golden run is
// shared read-only). Classification depends only on the golden run, the
// TrialSpec, and the effective window — never on fast_path, retries, or how
// many trials ran before.
class TrialRunner {
 public:
  explicit TrialRunner(std::shared_ptr<const GoldenRun> golden,
                       TrialPolicy policy = {});

  struct Result {
    TrialRecord record;
    // Populated when Run() was asked to trace; identical to a slow traced
    // trial's on every path.
    obs::PropagationTrace trace;
    bool fast = false;        // classified from first-access data, no sim
    int attempts = 1;         // execution attempts consumed
    bool quarantined = false; // record is the kTrialError stand-in
    bool timed_out = false;   // quarantine cause was the watchdog deadline
    std::string error;        // last failure message when quarantined
  };

  // Host instrumentation around the retry loop (campaign telemetry/tests).
  struct Hooks {
    // Invoked before each execution attempt; a throw takes the same
    // retry/quarantine path as a throwing trial.
    std::function<void()> before_attempt;
    // Invoked after each failed attempt with its 1-based number.
    std::function<void(int attempt, const std::string& error)> on_retry;
  };

  // Runs one trial: up to 1 + max(retries, 0) attempts, then quarantine.
  // Under check_invariants, a structurally inconsistent machine also
  // quarantines (the violating attempt's trace is kept; the checker state
  // stays readable via core() until the next Run).
  Result Run(const TrialSpec& spec, bool want_trace = false,
             const Hooks* hooks = nullptr);

  // The owned replica: registry layout for site introspection, and the
  // invariant checker's verdicts after a checked Run(). Mutated by Run().
  Core& core() { return *core_; }
  const Core& core() const { return *core_; }

  const GoldenRun& golden() const { return *golden_; }
  const TrialPolicy& policy() const { return policy_; }
  // The observation window Run() classifies against.
  std::uint64_t window() const;

 private:
  // Watchdog: armed per attempt; CheckDeadline throws TrialTimeoutError once
  // the attempt has outlived policy_.timeout_ms.
  void ArmDeadline();
  void CheckDeadline() const;

  TrialRecord RunOnce(const TrialSpec& spec, obs::PropagationTrace* trace,
                      bool* fast);
  TrialRecord Simulate(const TrialSpec& spec, const InjectionSite& site,
                       obs::PropagationTrace* trace);
  bool TryShortcut(const TrialSpec& spec, const InjectionSite& site,
                   TrialRecord& rec, obs::PropagationTrace* trace);

  std::shared_ptr<const GoldenRun> golden_;
  TrialPolicy policy_;
  std::unique_ptr<Core> core_;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace tfsim
