// Single fault-injection trial: restore a checkpoint, advance to the
// injection cycle, flip one bit, then co-compare against the golden timeline
// for up to the observation window, classifying the paper's four outcomes
// and seven failure modes.
#pragma once

#include <cstdint>

#include "inject/golden.h"
#include "inject/outcome.h"
#include "obs/prop_trace.h"
#include "uarch/core.h"

namespace tfsim {

struct TrialSpec {
  int checkpoint = 0;            // start point
  std::uint64_t offset = 0;      // cycles from the checkpoint to injection
  std::uint64_t bit_index = 0;   // uniform index into the eligible bit space
  bool include_ram = true;       // latches+RAMs (true) or latches only
  // Extension beyond the paper (whose Section 6 flags the single-bit model
  // as a threat to validity): flip `flips` bits per trial. When `adjacent`,
  // the extra flips hit neighbouring bits of the same element (a spatially
  // correlated strike); otherwise they land uniformly at random.
  int flips = 1;
  bool adjacent = false;
};

// Runs one trial on `core`, which must have been constructed with the same
// CoreConfig and Program as the golden run (it is fully overwritten by the
// checkpoint restore, so one core can be reused across trials).
//
// When `trace` is non-null, the trial additionally records a per-trial
// fault-propagation trace: the injected bit's site, the first cycle of
// architectural divergence, the set of state categories that held divergent
// state before classification, and the classification latency. Tracing only
// reads machine state, so a traced trial classifies identically to an
// untraced one.
TrialRecord RunTrial(Core& core, const GoldenRun& golden,
                     const TrialSpec& spec,
                     obs::PropagationTrace* trace = nullptr);

}  // namespace tfsim
