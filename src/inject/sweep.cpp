#include "inject/sweep.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "inject/trial.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "soft/harden.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

struct Axis {
  const char* name;
  std::vector<int> values;
};

// The default suite's axes (tentpole ranges: ROB 16-128, scheduler 8-64,
// LQ/SQ 4-32, phys-regs 48-128, fetch/retire width 2-8). Each axis includes
// the baseline value so every curve crosses the paper's shape.
const std::vector<Axis>& DefaultAxes() {
  static const std::vector<Axis> axes = {
      {"rob", {16, 32, 64, 128}},
      {"sched", {8, 16, 32, 64}},
      {"lsq", {4, 8, 16, 32}},
      {"pregs", {48, 64, 80, 96, 128}},
      {"width", {2, 4, 8}},
  };
  return axes;
}

// The 3-point smoke suite for CI: two ROB depths plus a small scheduler.
const std::vector<Axis>& SmokeAxes() {
  static const std::vector<Axis> axes = {
      {"rob", {16, 64}},
      {"sched", {8}},
  };
  return axes;
}

GeometryPoint MakePoint(const CoreConfig& base, const std::string& axis,
                        int value) {
  GeometryPoint p;
  p.axis = axis;
  p.label = axis + "=" + std::to_string(value);
  p.core = base;
  if (axis == "rob") {
    p.core.rob_entries = value;
    p.core.retire_width = std::min(base.retire_width, value);
  } else if (axis == "sched") {
    p.core.sched_entries = value;
  } else if (axis == "lsq") {
    p.core.lq_entries = value;
    p.core.sq_entries = value;
  } else if (axis == "pregs") {
    p.core.phys_regs = value;
  } else if (axis == "width") {
    p.core.fetch_width = value;
    p.core.retire_width = value;
  } else {
    throw std::invalid_argument("unknown sweep axis: " + axis);
  }
  return p;
}

// Structures with a configured capacity and a golden-run occupancy
// histogram (the PR 1/PR 6 pipe.* instrumentation).
struct OccupancySource {
  const char* structure;
  const char* histogram;
  int CoreConfig::* capacity;
};
constexpr OccupancySource kOccupancy[] = {
    {"rob", "pipe.rob.occupancy", &CoreConfig::rob_entries},
    {"sched", "pipe.scheduler.occupancy", &CoreConfig::sched_entries},
    {"lq", "pipe.lq.occupancy", &CoreConfig::lq_entries},
    {"sq", "pipe.sq.occupancy", &CoreConfig::sq_entries},
    {"fq", "pipe.fetchq.occupancy", &CoreConfig::fetch_queue},
    {"mshr", "pipe.dcache.mshrs_in_use", &CoreConfig::mshrs},
};

std::string StructureOf(const std::string& field_name) {
  const std::size_t dot = field_name.find('.');
  return dot == std::string::npos ? field_name : field_name.substr(0, dot);
}

}  // namespace

CampaignSpec SweepSpec::PointSpec(const GeometryPoint& point) const {
  CampaignSpec cs;
  cs.workload = workload;
  cs.core = point.core;
  cs.include_ram = include_ram;
  cs.trials = trials;
  cs.flips = flips;
  cs.adjacent = adjacent;
  cs.golden = golden;
  cs.seed = seed;
  return cs;
}

const std::vector<std::string>& SweepAxisNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Axis& a : DefaultAxes()) out.push_back(a.name);
    return out;
  }();
  return names;
}

std::vector<GeometryPoint> ExpandSweep(const SweepSpec& spec,
                                       const std::string& axis) {
  const std::vector<Axis>* axes = nullptr;
  if (spec.suite == "default") {
    axes = &DefaultAxes();
  } else if (spec.suite == "smoke") {
    axes = &SmokeAxes();
  } else {
    throw std::invalid_argument("unknown sweep suite: " + spec.suite);
  }
  std::vector<GeometryPoint> points;
  bool axis_seen = axis.empty();
  for (const Axis& a : *axes) {
    if (!axis.empty() && axis != a.name) continue;
    axis_seen = true;
    for (int v : a.values) points.push_back(MakePoint(spec.base, a.name, v));
  }
  if (!axis_seen)
    throw std::invalid_argument("unknown sweep axis: " + axis +
                                " (suite " + spec.suite + ")");
  for (const GeometryPoint& p : points) p.core.ValidateOrThrow();
  return points;
}

SweepResult RunSweep(const SweepSpec& spec, const std::string& axis,
                     const CampaignOptions& opt) {
  SweepResult out;
  out.spec = spec;
  out.axis = axis;
  const std::vector<GeometryPoint> points = ExpandSweep(spec, axis);

  const Program program = ResolveCampaignProgram(spec.workload);

  for (const GeometryPoint& point : points) {
    const CampaignSpec cspec = spec.PointSpec(point);

    // Private metrics per point: live campaigns sample golden occupancy
    // into it; the caller's own sinks (if any) are not disturbed.
    obs::MetricsRegistry metrics;
    CampaignOptions popt = opt;
    popt.obs.sinks.metrics = &metrics;
    popt.obs.sinks.chrome = nullptr;
    const CampaignResult cres = RunCampaign(cspec, popt);
    if (cres.interrupted) {
      out.interrupted = true;
      break;  // partial point: checkpointed by the campaign, not recorded
    }

    SweepPointResult pr;
    pr.point = point;
    pr.outcomes = cres.ByOutcome();
    pr.failure_rate = cres.FailureRate().value;
    pr.golden_ipc = cres.golden_ipc;

    // A cache hit skips the golden run, leaving the occupancy histograms
    // empty. Occupancy is a pure function of (core, program, golden spec),
    // so re-recording just the golden run recovers byte-identical values —
    // cached reruns export exactly what the live run did.
    obs::MetricsRegistry replay;
    const obs::MetricsRegistry* occ = &metrics;
    if (metrics.GetHistogram("pipe.rob.occupancy").stat().Count() == 0) {
      pr.from_cache = true;
      obs::ObsSinks sinks;
      sinks.metrics = &replay;
      (void)RecordGolden(cspec.core, program, cspec.golden, &sinks);
      occ = &replay;
    }

    // Per-structure outcome distributions, re-derived from the seeded trial
    // stream exactly like BuildHeatmap (works for cached/resumed results).
    Core core(cspec.core, program);
    const StateRegistry& reg = core.registry();
    const std::vector<TrialSpec> tspecs =
        MakeTrialSpecs(cspec, reg.InjectableBits(cspec.include_ram));
    std::map<std::string, StructureCell> cells;
    for (std::size_t i = 0; i < cres.trials.size() && i < tspecs.size(); ++i) {
      const BitLocation loc =
          ResolveInjectionSite(cspec.golden, tspecs[i], reg).primary;
      StructureCell& c = cells[StructureOf(loc.name)];
      c.trials++;
      const Outcome o = cres.trials[i].outcome;
      if (o == Outcome::kSdc || o == Outcome::kTerminated) c.failures++;
    }
    for (auto& [name, cell] : cells) {
      cell.structure = name;
      cell.vulnerability =
          cell.trials ? static_cast<double>(cell.failures) /
                            static_cast<double>(cell.trials)
                      : 0.0;
      for (const OccupancySource& src : kOccupancy) {
        if (name != src.structure) continue;
        cell.capacity = static_cast<std::uint64_t>(cspec.core.*src.capacity);
        // const_cast-free lookup: GetHistogram on a const registry is not
        // available, so go through a mutable alias of the chosen registry.
        auto& m = const_cast<obs::MetricsRegistry&>(*occ);
        const obs::Histogram& h = m.GetHistogram(src.histogram);
        if (h.stat().Count() > 0 && cell.capacity > 0)
          cell.utilization =
              h.stat().Mean() / static_cast<double>(cell.capacity);
      }
      pr.structures.push_back(cell);
    }
    out.points.push_back(std::move(pr));
  }
  return out;
}

void WriteSweepJson(const SweepResult& result, std::ostream& os) {
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Field("schema_version", 1);
  w.Field("suite", result.spec.suite);
  if (!result.axis.empty()) w.Field("axis", result.axis);
  w.Field("workload", result.spec.workload);
  w.Field("include_ram", result.spec.include_ram);
  w.Field("trials_per_point", result.spec.trials);
  w.Field("seed", result.spec.seed);
  w.BeginArray("points");
  for (const SweepPointResult& p : result.points) {
    w.BeginObject();
    w.Field("axis", p.point.axis);
    w.Field("label", p.point.label);
    w.BeginObject("geometry");
    const CoreConfig& c = p.point.core;
    w.Field("rob_entries", c.rob_entries);
    w.Field("sched_entries", c.sched_entries);
    w.Field("lq_entries", c.lq_entries);
    w.Field("sq_entries", c.sq_entries);
    w.Field("phys_regs", c.phys_regs);
    w.Field("fetch_width", c.fetch_width);
    w.Field("retire_width", c.retire_width);
    w.Field("fetch_queue", c.fetch_queue);
    w.End();
    w.Field("golden_ipc", p.golden_ipc);
    w.Field("failure_rate", p.failure_rate);
    w.BeginObject("outcomes");
    for (int o = 0; o < kNumOutcomes; ++o)
      w.Field(OutcomeName(static_cast<Outcome>(o)), p.outcomes[static_cast<std::size_t>(o)]);
    w.End();
    w.BeginArray("structures");
    for (const StructureCell& cell : p.structures) {
      w.BeginObject();
      w.Field("structure", cell.structure);
      if (cell.capacity > 0) w.Field("capacity", cell.capacity);
      w.Field("trials", cell.trials);
      w.Field("failures", cell.failures);
      w.Field("vulnerability", cell.vulnerability);
      if (cell.utilization >= 0.0)
        w.Field("utilization", cell.utilization);
      w.End();
    }
    w.End();
    w.End();
  }
  w.End();
  // The figure: per-structure vulnerability-vs-utilization curves — every
  // (geometry point, structure) cell that has both coordinates, grouped by
  // structure and ordered by utilization.
  w.BeginObject("curves");
  std::map<std::string, std::vector<std::pair<const SweepPointResult*,
                                              const StructureCell*>>> curves;
  for (const SweepPointResult& p : result.points)
    for (const StructureCell& cell : p.structures)
      if (cell.utilization >= 0.0 && cell.trials > 0)
        curves[cell.structure].push_back({&p, &cell});
  for (auto& [structure, pts] : curves) {
    std::stable_sort(pts.begin(), pts.end(), [](const auto& a, const auto& b) {
      return a.second->utilization < b.second->utilization;
    });
    w.BeginArray(structure);
    for (const auto& [p, cell] : pts) {
      w.BeginObject();
      w.Field("label", p->point.label);
      w.Field("utilization", cell->utilization);
      w.Field("vulnerability", cell->vulnerability);
      w.Field("trials", cell->trials);
      w.End();
    }
    w.End();
  }
  w.End();
  w.End();
  os << '\n';
}

void WriteSweepCsv(const SweepResult& result, std::ostream& os) {
  os << "suite,workload,axis,label,structure,capacity,trials,failures,"
        "vulnerability,utilization,golden_ipc\n";
  for (const SweepPointResult& p : result.points) {
    for (const StructureCell& cell : p.structures) {
      os << result.spec.suite << ',' << result.spec.workload << ','
         << p.point.axis << ',' << p.point.label << ',' << cell.structure
         << ',' << cell.capacity << ',' << cell.trials << ','
         << cell.failures << ',';
      obs::JsonWriter wv(os);
      wv.Value(cell.vulnerability);
      os << ',';
      if (cell.utilization >= 0.0) {
        obs::JsonWriter wu(os);
        wu.Value(cell.utilization);
      }
      os << ',';
      obs::JsonWriter wi(os);
      wi.Value(p.golden_ipc);
      os << '\n';
    }
  }
}

}  // namespace tfsim
