// Fault-injection campaigns: many trials over a workload, with aggregation
// helpers that reproduce the paper's figures (outcome mixes per benchmark,
// per state category, failure-mode breakdowns, utilization correlation).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "inject/golden.h"
#include "inject/outcome.h"
#include "inject/trial.h"
#include "obs/prop_trace.h"
#include "obs/sinks.h"
#include "uarch/config.h"
#include "util/cancel.h"
#include "util/stats.h"

namespace tfsim {

struct CampaignSpec {
  std::string workload;        // name from the workload suite
  CoreConfig core;             // microarchitecture + protection mechanisms
  bool include_ram = true;     // latches+RAMs (l+r) vs latches only (l)
  int trials = 500;
  int flips = 1;               // bits flipped per trial (extension models)
  bool adjacent = false;       // spatially correlated extra flips
  GoldenSpec golden;
  std::uint64_t seed = 20040628;  // DSN 2004 :-)

  // Stable key for the on-disk results cache.
  std::string CacheKey() const;
};

// Optional observability for a campaign run. All members may be left at
// their defaults; observation never changes trial results (tracing and
// metrics only read machine state).
struct CampaignObs {
  // Metrics/chrome sinks, attached to the golden-run core and the trial
  // core, and fed campaign-level counters, timers and trial spans.
  obs::ObsSinks sinks;
  // Record a PropagationTrace per trial into CampaignResult::prop_traces.
  // Traced runs bypass the on-disk result cache (traces are not cached) but
  // still store their results for later untraced runs.
  bool collect_prop_traces = false;
  // Periodic stderr progress lines with trials/sec and the outcome mix,
  // implemented as an obs::ProgressSink consuming the event journal (a
  // private journal is created when `events` is null).
  bool progress = false;
  // Structured campaign event journal (obs/events.h). When non-null, the
  // campaign emits start/finish, golden-done, cache, per-trial-completion,
  // retry/quarantine, checkpoint-flush, cancellation and metrics-snapshot
  // events into it; tfi wires file (--events-jsonl) and HTTP status
  // (--status-port) sinks to the same journal. Emission never blocks trial
  // workers on I/O, and — like every other member here — attaching a
  // journal leaves trial records, classification counts and cache keys
  // byte-identical.
  obs::EventJournal* events = nullptr;
};

// How to run a campaign. Everything here is about *execution*, never about
// *results*: a campaign's trial records, classification counts and cache
// key depend only on the CampaignSpec, and are byte-identical at every
// `jobs` value (trial specs are pre-generated from the seeded Rng before
// any worker starts, and records are collected back in trial-index order).
struct CampaignOptions {
  // Worker threads for the trial loop. 1 runs serially on the calling
  // thread; 0 or negative uses one worker per hardware thread. Each worker
  // owns a private Core replica and shares the immutable golden run.
  int jobs = 1;
  // Stderr progress notes (golden recording, cache loads, trial counts).
  bool verbose = true;
  // Consult/populate the on-disk results cache. Benchmarks and determinism
  // tests disable this to force live execution.
  bool use_cache = true;
  // Trial fast path: record injection-cycle delta snapshots + first-access
  // data during the golden run, then start trials at their injection point
  // and classify provably convergent/latent trials without simulating.
  // Results are byte-identical to the slow path (pinned by
  // tests/test_fastpath.cpp and the fastpath_ab_smoke ctest), so this is
  // pure execution policy and is NOT part of the CacheKey. Checked runs
  // (check_invariants) always take the slow path.
  bool fast_path = true;
  // Re-attempts for a trial whose execution throws before it is quarantined
  // as Outcome::kTrialError. One retry absorbs transient host-level failures
  // (resource exhaustion) without masking deterministic trial bugs.
  int retries = 1;
  // Checkpoint/resume: when > 0, the contiguous completed-trial prefix is
  // flushed to a per-CacheKey journal under TFI_CACHE_DIR every this many
  // completed trials (and on interruption), and an existing journal for the
  // same CacheKey is loaded at startup so the campaign resumes exactly where
  // it stopped. The TFI_CHECKPOINT_EVERY env var, when set, overrides this
  // value (tests force tiny intervals through it). Journals only hold trial
  // records, so runs collecting propagation traces never checkpoint/resume.
  // Resumed records are byte-identical to an uninterrupted run's at any
  // `jobs` value. 0 disables journaling.
  int checkpoint_every = 0;
  // Debug mode: run every trial core with the per-cycle invariant checker
  // (CoreConfig::check_invariants) and quarantine any trial whose injected
  // fault breaks a structural invariant (preg conservation, queue pointers,
  // ordering...) as Outcome::kTrialError, with the first violation in the
  // quarantine message. Data-value faults don't violate structural
  // invariants and classify normally. Checked runs bypass the results cache
  // and checkpoint journal (options must never change cached results) and
  // report check.violations.* counter totals when metrics are attached.
  bool check_invariants = false;
  // Watchdog deadline per trial execution attempt, in wall milliseconds
  // (TrialPolicy::timeout_ms). A trial whose injected fault wedges the
  // simulation loop is quarantined as Outcome::kTrialError with
  // QuarantinedTrial::Reason::kTimeout (journal: kTrialTimeout) instead of
  // hanging a worker forever. The TFI_TRIAL_TIMEOUT env var, when set,
  // overrides this value. 0 disables the watchdog.
  std::int64_t trial_timeout_ms = 0;
  // Crash containment: run trials in forked worker subprocesses under a
  // single-threaded supervisor (inject/isolate.h), so a trial that
  // segfaults kills only its worker — the supervisor synthesizes a
  // quarantined record (Reason::kCrash, journal: kTrialCrash), respawns the
  // worker within `max_worker_restarts`, and the campaign keeps going.
  // Surviving records are byte-identical to an in-process run's at any
  // `jobs` value. Incompatible with propagation tracing and checked runs
  // (both need the trial core in-process); those fall back to in-process
  // execution with a stderr note. No-op on non-POSIX platforms.
  bool isolate_trials = false;
  // Worker respawns the isolation supervisor performs before declaring
  // containment exhausted: remaining trials quarantine with Reason::kBudget
  // and CampaignResult::containment_exhausted is set (the result is then
  // never cached, and the checkpoint journal keeps only genuinely executed
  // trials, so a re-run finishes the job).
  int max_worker_restarts = 16;
  // Cooperative cancellation (e.g. wired to SIGINT). When requested,
  // workers finish their in-flight trials and stop claiming new ones; the
  // campaign flushes its checkpoint journal plus the telemetry for the
  // completed prefix and returns with CampaignResult::interrupted set.
  CancellationToken* cancel = nullptr;
  // Test instrumentation: invoked (from worker threads; must be
  // thread-safe) with the trial index before each execution attempt. An
  // exception thrown here takes exactly the quarantine path a throwing
  // trial would. Never set in production runs.
  std::function<void(std::size_t)> trial_fault_hook;
  // Observability sinks and per-trial propagation tracing.
  CampaignObs obs;
};

// A quarantined trial: its index, why it was quarantined, and a diagnostic
// message. The record itself (trials[index]) carries Outcome::kTrialError;
// the message is diagnostic only and is not persisted in caches or
// checkpoints.
struct QuarantinedTrial {
  enum class Reason : std::uint8_t {
    kException,  // execution threw (after retries) or violated an invariant
    kTimeout,    // watchdog deadline (CampaignOptions::trial_timeout_ms)
    kCrash,      // isolated worker died (signal / nonzero exit)
    kBudget,     // never ran: isolation restart budget exhausted
  };
  std::uint64_t index = 0;
  std::string message;
  Reason reason = Reason::kException;
};
const char* QuarantineReasonName(QuarantinedTrial::Reason r);

struct CampaignResult {
  CampaignSpec spec;
  std::vector<TrialRecord> trials;
  // Trials whose execution threw (after CampaignOptions::retries
  // re-attempts), in trial-index order. Parallel to the kTrialError records
  // in `trials`; counted by the campaign.trials.quarantined metric.
  std::vector<QuarantinedTrial> quarantined;
  // True when the campaign was cancelled before completing: `trials` then
  // holds only the contiguous completed prefix (matching the checkpoint
  // journal on disk, when journaling was enabled) and the result was not
  // cached. Re-running the same spec resumes from the journal.
  bool interrupted = false;
  // True when --isolate-trials ran out of worker respawns: the trailing
  // Reason::kBudget quarantines are synthesized holes, not machine
  // behaviour, so the result is not cached (a re-run resumes from the
  // checkpoint journal, which holds only genuinely executed trials). tfi
  // maps this to exit code 3.
  bool containment_exhausted = false;
  // Workers respawned by the isolation supervisor (0 outside isolate mode).
  std::uint64_t worker_restarts = 0;
  // Per-trial propagation traces, parallel to `trials`. Only populated when
  // CampaignObs::collect_prop_traces was set (never loaded from the cache).
  std::vector<obs::PropagationTrace> prop_traces;
  // Inventory of the injected machine (for Table 1 and rate normalization).
  std::array<StateRegistry::CategoryBits, kNumStateCats> inventory{};
  double golden_ipc = 0.0;
  double golden_bp_accuracy = 0.0;
  std::uint64_t golden_dcache_misses = 0;

  // --- aggregation -----------------------------------------------------------
  std::array<std::uint64_t, kNumOutcomes> ByOutcome() const;
  std::array<std::uint64_t, kNumOutcomes> ByOutcomeForCat(StateCat cat) const;
  std::array<std::uint64_t, kNumFailureModes> ByFailureMode() const;
  std::array<std::uint64_t, kNumFailureModes> ByFailureModeForCat(
      StateCat cat) const;
  std::uint64_t TrialsForCat(StateCat cat) const;
  // Fraction of failed trials (SDC + Terminated).
  Proportion FailureRate() const;
};

// Pre-generates every trial's injection spec from the campaign's seeded
// Rng, in trial order. The trial→spec mapping depends only on `spec` and
// the machine's injectable-bit count — never on CampaignOptions — which is
// what makes parallel runs byte-identical to serial ones.
std::vector<TrialSpec> MakeTrialSpecs(const CampaignSpec& spec,
                                      std::uint64_t injectable_bits);

// Runs (or loads from the cache) a campaign.
CampaignResult RunCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opt = {});

// Merges multiple per-benchmark results into one aggregate (the paper's
// rightmost "aggregate" bars). The parts must describe the same injected
// machine (protection config, injection population, state inventory);
// throws std::invalid_argument otherwise.
CampaignResult MergeResults(const std::vector<CampaignResult>& parts);

// Convenience: runs the same campaign spec across all ten workloads,
// forwarding `opt` (including observability sinks) to every campaign.
std::vector<CampaignResult> RunSuite(CampaignSpec spec,
                                     const CampaignOptions& opt = {});

}  // namespace tfsim
