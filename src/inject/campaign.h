// Fault-injection campaigns: many trials over a workload, with aggregation
// helpers that reproduce the paper's figures (outcome mixes per benchmark,
// per state category, failure-mode breakdowns, utilization correlation).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "inject/golden.h"
#include "inject/outcome.h"
#include "inject/trial.h"
#include "obs/prop_trace.h"
#include "obs/sinks.h"
#include "uarch/config.h"
#include "util/stats.h"

namespace tfsim {

struct CampaignSpec {
  std::string workload;        // name from the workload suite
  CoreConfig core;             // microarchitecture + protection mechanisms
  bool include_ram = true;     // latches+RAMs (l+r) vs latches only (l)
  int trials = 500;
  int flips = 1;               // bits flipped per trial (extension models)
  bool adjacent = false;       // spatially correlated extra flips
  GoldenSpec golden;
  std::uint64_t seed = 20040628;  // DSN 2004 :-)

  // Stable key for the on-disk results cache.
  std::string CacheKey() const;
};

// Optional observability for a campaign run. All members may be left at
// their defaults; observation never changes trial results (tracing and
// metrics only read machine state).
struct CampaignObs {
  // Metrics/chrome sinks, attached to the golden-run core and the trial
  // core, and fed campaign-level counters, timers and trial spans.
  obs::ObsSinks sinks;
  // Record a PropagationTrace per trial into CampaignResult::prop_traces.
  // Traced runs bypass the on-disk result cache (traces are not cached) but
  // still store their results for later untraced runs.
  bool collect_prop_traces = false;
  // Periodic stderr progress lines with trials/sec and the outcome mix.
  bool progress = false;
};

// How to run a campaign. Everything here is about *execution*, never about
// *results*: a campaign's trial records, classification counts and cache
// key depend only on the CampaignSpec, and are byte-identical at every
// `jobs` value (trial specs are pre-generated from the seeded Rng before
// any worker starts, and records are collected back in trial-index order).
struct CampaignOptions {
  // Worker threads for the trial loop. 1 runs serially on the calling
  // thread; 0 or negative uses one worker per hardware thread. Each worker
  // owns a private Core replica and shares the immutable golden run.
  int jobs = 1;
  // Stderr progress notes (golden recording, cache loads, trial counts).
  bool verbose = true;
  // Consult/populate the on-disk results cache. Benchmarks and determinism
  // tests disable this to force live execution.
  bool use_cache = true;
  // Observability sinks and per-trial propagation tracing.
  CampaignObs obs;
};

struct CampaignResult {
  CampaignSpec spec;
  std::vector<TrialRecord> trials;
  // Per-trial propagation traces, parallel to `trials`. Only populated when
  // CampaignObs::collect_prop_traces was set (never loaded from the cache).
  std::vector<obs::PropagationTrace> prop_traces;
  // Inventory of the injected machine (for Table 1 and rate normalization).
  std::array<StateRegistry::CategoryBits, kNumStateCats> inventory{};
  double golden_ipc = 0.0;
  double golden_bp_accuracy = 0.0;
  std::uint64_t golden_dcache_misses = 0;

  // --- aggregation -----------------------------------------------------------
  std::array<std::uint64_t, kNumOutcomes> ByOutcome() const;
  std::array<std::uint64_t, kNumOutcomes> ByOutcomeForCat(StateCat cat) const;
  std::array<std::uint64_t, kNumFailureModes> ByFailureMode() const;
  std::array<std::uint64_t, kNumFailureModes> ByFailureModeForCat(
      StateCat cat) const;
  std::uint64_t TrialsForCat(StateCat cat) const;
  // Fraction of failed trials (SDC + Terminated).
  Proportion FailureRate() const;
};

// Pre-generates every trial's injection spec from the campaign's seeded
// Rng, in trial order. The trial→spec mapping depends only on `spec` and
// the machine's injectable-bit count — never on CampaignOptions — which is
// what makes parallel runs byte-identical to serial ones.
std::vector<TrialSpec> MakeTrialSpecs(const CampaignSpec& spec,
                                      std::uint64_t injectable_bits);

// Runs (or loads from the cache) a campaign.
CampaignResult RunCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opt = {});

// Merges multiple per-benchmark results into one aggregate (the paper's
// rightmost "aggregate" bars). The parts must describe the same injected
// machine (protection config, injection population, state inventory);
// throws std::invalid_argument otherwise.
CampaignResult MergeResults(const std::vector<CampaignResult>& parts);

// Convenience: runs the same campaign spec across all ten workloads,
// forwarding `opt` (including observability sinks) to every campaign.
std::vector<CampaignResult> RunSuite(CampaignSpec spec,
                                     const CampaignOptions& opt = {});

}  // namespace tfsim
