// Microarchitecture geometry sensitivity sweeps: one binary, any core shape.
//
// The paper characterizes per-structure vulnerability at one fixed
// Alpha-21264-class geometry; "Not All Faults Are Equal" (PAPERS.md) shows
// AVF is a strong function of structure *sizing*. This layer makes
// CoreConfig geometry a first-class sweep axis: a named SweepSpec expands
// into per-point CampaignSpecs (ROB depth, scheduler entries, LQ/SQ depth,
// physical registers, fetch/retire width), each run through the ordinary
// campaign machinery — per-point results cache, checkpoint/resume, and
// byte-identical records at any --jobs value all carry over unchanged.
//
// Each point joins two views of the same machine:
//   * per-structure outcome distributions, re-derived from the trial stream
//     the way BuildHeatmap does (field name prefix = structure), and
//   * golden-run occupancy metrics (pipe.*.occupancy histogram means, the
//     PR 1/PR 6 instrumentation) normalized by configured capacity,
// yielding AVF-style vulnerability-vs-utilization curves per structure.
// A cache-hit point re-records only the (deterministic) golden run to
// recover occupancy, so rerun exports are byte-identical to live ones.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "inject/campaign.h"

namespace tfsim {

// One geometry in a sweep: the axis it varies, a stable label for reports
// ("rob=16"), and the full core shape (validated at expansion time).
struct GeometryPoint {
  std::string axis;
  std::string label;
  CoreConfig core;
};

// A named geometry sweep over one workload. `base` is perturbed one axis at
// a time; the baseline shape itself appears wherever an axis crosses it.
struct SweepSpec {
  std::string suite = "default";  // "default" (all axes) or "smoke" (3 pts)
  std::string workload = "gzip";
  bool include_ram = true;
  int trials = 200;
  int flips = 1;
  bool adjacent = false;
  GoldenSpec golden;
  std::uint64_t seed = 20040628;
  CoreConfig base;

  // The per-point CampaignSpec: identical to the sweep's parameters except
  // for the geometry under test (so per-point cache keys differ only by
  // shape — the collision this layer's cache-key fix removed).
  CampaignSpec PointSpec(const GeometryPoint& point) const;
};

// Axis names of the default suite, in expansion order.
const std::vector<std::string>& SweepAxisNames();

// Expands `spec` into its geometry points, optionally restricted to one
// axis (empty = all axes of the suite). Throws std::invalid_argument for an
// unknown suite or axis; every returned point passed CoreConfig::Validate().
std::vector<GeometryPoint> ExpandSweep(const SweepSpec& spec,
                                       const std::string& axis = "");

// One structure's cell at one geometry point.
struct StructureCell {
  std::string structure;     // registry field-name prefix ("rob", "lq", ...)
  std::uint64_t capacity = 0;   // configured entries (0 = not a sized queue)
  std::uint64_t trials = 0;     // trials whose injection landed here
  std::uint64_t failures = 0;   // SDC + Terminated among them
  double vulnerability = 0.0;   // failures / trials
  double utilization = -1.0;    // mean occupancy / capacity; -1 = unsampled
};

struct SweepPointResult {
  GeometryPoint point;
  std::array<std::uint64_t, kNumOutcomes> outcomes{};
  double failure_rate = 0.0;
  double golden_ipc = 0.0;
  bool from_cache = false;  // execution detail; excluded from the exports
  std::vector<StructureCell> structures;  // sorted by structure name
};

struct SweepResult {
  SweepSpec spec;
  std::string axis;  // filter the run used ("" = all)
  std::vector<SweepPointResult> points;
  // A cancelled point stops the sweep; its partial campaign is checkpointed
  // by the ordinary resume journal and is NOT recorded as a point here, so
  // rerunning the identical command completes the sweep from where it left.
  bool interrupted = false;
};

// Runs every point of the sweep through RunCampaign with `opt` as the base
// execution policy (observability sinks are managed per point; a caller-
// provided metrics registry is left untouched). Campaign results reuse the
// per-point cache; occupancy is recovered from a fresh golden recording for
// cached points, so the export is byte-identical between live and cached
// runs and at any jobs value.
SweepResult RunSweep(const SweepSpec& spec, const std::string& axis = "",
                     const CampaignOptions& opt = {});

// Deterministic exports (no timestamps, floats at max_digits10).
void WriteSweepJson(const SweepResult& result, std::ostream& os);
void WriteSweepCsv(const SweepResult& result, std::ostream& os);

}  // namespace tfsim
