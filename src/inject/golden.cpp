#include "inject/golden.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "arch/functional_sim.h"

namespace tfsim {

std::uint32_t GoldenTimeline::ValidInstrsAt(std::size_t cycle_index) const {
  if (cycle_index >= seq_range.size()) return 0;
  const auto [oldest, next] = seq_range[cycle_index];
  std::uint32_t n = 0;
  for (std::uint64_t s = oldest; s < next && s < seq_retired.size(); ++s)
    if (seq_retired[s]) ++n;
  return n;
}

std::shared_ptr<const GoldenRun> RecordGolden(const CoreConfig& cfg,
                                              const Program& program,
                                              const GoldenSpec& spec,
                                              const obs::ObsSinks* obs,
                                              const FastPathPlan* fastpath) {
  auto run = std::make_shared<GoldenRun>();
  run->cfg = cfg;
  run->program = program;
  run->spec = spec;

  Core core(cfg, program);
  FunctionalSim ref(program);
  core.tlb().SetLearning(true);
  core.AttachObs(obs);

  const std::uint64_t record_cycles =
      static_cast<std::uint64_t>(spec.points - 1) * spec.spacing +
      spec.window + spec.offset_max + spec.slack;
  GoldenTimeline& tl = run->timeline;
  tl.state_hash.reserve(record_cycles);

  // Trial fast path: track the first access to every word the campaign will
  // flip. The tracker observes the pipeline's own accesses (installed around
  // Cycle(); Core pauses it for checker/obs instrumentation) plus the
  // ArchViewHash reads below — the trial loop's continuous architectural
  // check reads the arch RAT and arch-mapped registers every cycle, so a
  // flip there is "accessed" even if the pipeline proper never touches it.
  // Everything else the trial loop consults (retire events, state/category/
  // memory hashes, store-buffer emptiness) either involves no registry reads
  // or cannot change a trial's classification while the machine still
  // matches golden outside the flipped words.
  std::shared_ptr<WordFirstAccessTracker> tracker;
  if (fastpath != nullptr) {
    tracker =
        std::make_shared<WordFirstAccessTracker>(core.registry().WordCount());
    for (const auto& [word, cycle] : fastpath->watches)
      tracker->Watch(word, cycle);
    tracker->Seal();
  }

  std::uint64_t max_retire_gap = 0;
  std::uint64_t gap = 0;

  auto step = [&](bool recording, std::uint64_t rel_cycle) {
    const bool track = recording && tracker != nullptr && !tracker->Done();
    if (track) {
      tracker->SetCycle(rel_cycle);
      core.registry().SetAccessTracker(tracker.get());
    }
    core.Cycle();
    if (core.halted_exception() != Exception::kNone || core.itlb_miss() ||
        core.exited()) {
      std::ostringstream os;
      os << "golden run failed at cycle " << core.stats().cycles << ": "
         << (core.exited() ? "program exited inside the window"
                           : ExceptionName(core.halted_exception()));
      throw std::runtime_error(os.str());
    }
    // Co-simulation: the pipeline's retire stream must equal the functional
    // simulator's execution instruction-for-instruction.
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      if (!(ev == want)) {
        throw std::runtime_error("golden co-simulation mismatch:\n  core: " +
                                 ToString(ev) + "\n  ref : " + ToString(want));
      }
    }
    gap = core.RetiredThisCycle().empty() ? gap + 1 : 0;
    if (gap > max_retire_gap) max_retire_gap = gap;

    if (!recording) return;
    tl.state_hash.push_back(core.StateHash());
    tl.cat_hash.push_back(core.registry().CatHashes());
    // ArchViewHash runs with the tracker still installed: its reads mirror
    // the trial loop's continuous architectural check (see above). The
    // samples below are recorder-only instrumentation and stay untracked.
    tl.arch_hash.push_back(core.ArchViewHash());
    core.registry().SetAccessTracker(nullptr);
    tl.mem_hash.push_back(core.memory().ContentHash() ^ core.OutputHash());
    tl.sb_empty.push_back(core.StoreBufferEmpty() ? 1 : 0);
    tl.retired_total.push_back(core.RetiredTotal());
    tl.count_to_cycle.emplace(core.RetiredTotal(), rel_cycle);  // keeps first
    for (const RetireEvent& ev : core.RetiredThisCycle())
      tl.events.push_back(ev);
    tl.seq_range.emplace_back(core.OldestInflightSeq(), core.NextFetchSeq());
    tl.inflight.push_back(core.InFlight());
    for (std::uint64_t s : core.RetiredSeqsThisCycle()) {
      if (s >= tl.seq_retired.size()) tl.seq_retired.resize(s + 1024, false);
      tl.seq_retired[s] = true;
    }
  };

  for (std::uint64_t c = 0; c < spec.warmup; ++c) step(false, 0);
  tl.base_retired = core.RetiredTotal();

  std::size_t next_point = 0;
  for (std::uint64_t c = 0; c < record_cycles; ++c) {
    if (c % spec.spacing == 0 &&
        c / spec.spacing < static_cast<std::uint64_t>(spec.points))
      run->checkpoints.push_back(core.Save());
    // Injection-cycle delta snapshots, captured like checkpoints: before the
    // cycle executes. The base is the newest checkpoint at or before this
    // cycle, so it is always already saved (the offset-0 case diffs a
    // checkpoint against itself and stores an empty delta).
    if (fastpath != nullptr) {
      while (next_point < fastpath->snapshot_cycles.size() &&
             fastpath->snapshot_cycles[next_point] == c) {
        const std::size_t base = std::min(
            static_cast<std::size_t>(c / spec.spacing),
            run->checkpoints.size() - 1);
        run->fastpath.points.emplace(
            c, GoldenFastPath::Point{
                   base, core.SaveDelta(run->checkpoints[base])});
        ++next_point;
      }
    }
    step(true, c);
  }

  if (max_retire_gap >= static_cast<std::uint64_t>(kLockedThresholdCycles))
    throw std::runtime_error(
        "golden run stalled past the locked-detection threshold");

  if (fastpath != nullptr) {
    run->fastpath.enabled = true;
    run->fastpath.access = tracker;
  }
  run->tlb = core.tlb();
  run->tlb.SetLearning(false);
  run->stats = core.stats();
  core.FlushObsCounters();
  return run;
}

}  // namespace tfsim
