#include "inject/outcome.h"

namespace tfsim {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kMicroArchMatch: return "uArch Match";
    case Outcome::kTerminated: return "Terminated";
    case Outcome::kSdc: return "SDC";
    case Outcome::kGrayArea: return "Gray Area";
    case Outcome::kTrialError: return "Trial Error";
  }
  return "?";
}

const char* FailureModeName(FailureMode m) {
  switch (m) {
    case FailureMode::kNoFailure: return "none";
    case FailureMode::kCtrl: return "ctrl";
    case FailureMode::kDtlb: return "dtlb";
    case FailureMode::kExcept: return "except";
    case FailureMode::kItlb: return "itlb";
    case FailureMode::kLocked: return "locked";
    case FailureMode::kMem: return "mem";
    case FailureMode::kRegfile: return "regfile";
  }
  return "?";
}

bool IsSdcMode(FailureMode m) {
  switch (m) {
    case FailureMode::kCtrl:
    case FailureMode::kDtlb:
    case FailureMode::kItlb:
    case FailureMode::kMem:
    case FailureMode::kRegfile:
      return true;
    default:
      return false;
  }
}

}  // namespace tfsim
