// On-disk campaign results cache.
//
// Several paper figures derive from the same campaign (Figures 3/4/7/8 share
// the latches+RAMs baseline campaign), and each bench binary regenerates one
// figure, so results are cached under TFI_CACHE_DIR (default
// <cwd>/.tfi_cache) keyed by a versioned content hash of the campaign spec.
// Delete the directory (or change TFI_TRIALS) to force recomputation.
#pragma once

#include <optional>
#include <string>

#include "inject/campaign.h"

namespace tfsim {

std::string CacheDir();

std::optional<CampaignResult> LoadCachedCampaign(const CampaignSpec& spec);
void StoreCachedCampaign(const CampaignResult& result);

}  // namespace tfsim
