// On-disk campaign results cache and checkpoint journals.
//
// Several paper figures derive from the same campaign (Figures 3/4/7/8 share
// the latches+RAMs baseline campaign), and each bench binary regenerates one
// figure, so results are cached under TFI_CACHE_DIR (default
// <cwd>/.tfi_cache) keyed by a versioned content hash of the campaign spec.
// Delete the directory (or change TFI_TRIALS) to force recomputation.
//
// Cache files are "tfi-cache v2": a CRC32-checksummed payload written via
// temp-file + atomic rename, with every floating-point field serialized at
// max_digits10 so cache hits reproduce golden stats bit-exactly. Files whose
// checksum, length or structure do not verify are treated as absent (the
// campaign re-runs cleanly). Legacy "tfi-cache v1" files are still readable.
//
// Checkpoint journals ("<key>.ckpt", same checksummed-atomic envelope) hold
// the contiguous completed-trial prefix of an in-flight campaign, flushed
// every CampaignOptions::checkpoint_every trials and on interruption, so a
// killed campaign resumes exactly where it stopped.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "inject/campaign.h"

namespace tfsim {

std::string CacheDir();

std::optional<CampaignResult> LoadCachedCampaign(const CampaignSpec& spec);

// Stores `result` in the cache (best-effort). Transient failures retry with
// bounded backoff (3 attempts); on final failure — unwritable cache
// directory, failed atomic rename — returns false, warns on stderr, and
// increments `campaign.cache.store_failures` when `metrics` is non-null.
// Chaos sites: `cache.store` per attempt, `fs.atomic_write` underneath.
bool StoreCachedCampaign(const CampaignResult& result,
                         obs::MetricsRegistry* metrics = nullptr);

// --- checkpoint journal ------------------------------------------------------

// Loads the checkpoint journal for `spec`, if a valid one exists. The
// returned records are the contiguous completed prefix (trial indices
// [0, size)) of a previous interrupted run of the same CacheKey.
std::optional<std::vector<TrialRecord>> LoadCampaignCheckpoint(
    const CampaignSpec& spec);

// Atomically writes the checkpoint journal for `spec` holding `prefix`
// (completed trials [0, prefix.size())). Best-effort like the cache store,
// with the same retry/backoff; final failures increment
// `campaign.checkpoint.store_failures` (and the campaign then disables
// checkpointing for the rest of the run — see RunCampaign).
bool StoreCampaignCheckpoint(const CampaignSpec& spec,
                             const std::vector<TrialRecord>& prefix,
                             obs::MetricsRegistry* metrics = nullptr);

// Deletes the journal for `spec` (after the campaign completes).
void RemoveCampaignCheckpoint(const CampaignSpec& spec);

// Journal path for `spec` (exposed for tests and diagnostics).
std::string CampaignCheckpointPath(const CampaignSpec& spec);

}  // namespace tfsim
