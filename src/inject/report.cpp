#include "inject/report.h"

namespace tfsim {

void WriteTrialsCsv(const CampaignResult& result, std::ostream& os) {
  os << "workload,outcome,failure_mode,category,storage,cycles,valid_instrs,"
        "inflight\n";
  for (const TrialRecord& t : result.trials) {
    os << result.spec.workload << ',' << OutcomeName(t.outcome) << ','
       << FailureModeName(t.mode) << ',' << StateCatName(t.cat) << ','
       << (t.storage == Storage::kLatch ? "latch" : "ram") << ',' << t.cycles
       << ',' << t.valid_instrs << ',' << t.inflight << '\n';
  }
}

void WriteCategoryCsv(const CampaignResult& result, std::ostream& os) {
  os << "category,trials,match,terminated,sdc,gray,trial_error,latch_bits,"
        "ram_bits\n";
  for (int c = 0; c < kNumStateCats; ++c) {
    const auto cat = static_cast<StateCat>(c);
    const auto n = result.TrialsForCat(cat);
    if (n == 0) continue;
    const auto o = result.ByOutcomeForCat(cat);
    os << StateCatName(cat) << ',' << n << ','
       << o[static_cast<int>(Outcome::kMicroArchMatch)] << ','
       << o[static_cast<int>(Outcome::kTerminated)] << ','
       << o[static_cast<int>(Outcome::kSdc)] << ','
       << o[static_cast<int>(Outcome::kGrayArea)] << ','
       << o[static_cast<int>(Outcome::kTrialError)] << ','
       << result.inventory[c].latch_bits << ','
       << result.inventory[c].ram_bits << '\n';
  }
}

bool WritePropTraceJsonl(const CampaignResult& result, std::ostream& os) {
  if (result.prop_traces.empty()) return false;
  for (std::size_t i = 0; i < result.prop_traces.size(); ++i)
    obs::WritePropTraceRow(result.prop_traces[i], result.spec.workload, i, os);
  return true;
}

void WriteUtilizationCsv(const CampaignResult& result, std::ostream& os) {
  os << "valid_instrs,benign\n";
  for (const TrialRecord& t : result.trials) {
    const bool benign = t.outcome == Outcome::kMicroArchMatch ||
                        t.outcome == Outcome::kGrayArea;
    os << t.valid_instrs << ',' << (benign ? 1 : 0) << '\n';
  }
}

}  // namespace tfsim
