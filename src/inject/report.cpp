#include "inject/report.h"

#include "obs/events.h"
#include "uarch/core.h"
#include "soft/harden.h"
#include "workloads/workloads.h"

namespace tfsim {

void WriteTrialsCsv(const CampaignResult& result, std::ostream& os) {
  os << "workload,outcome,failure_mode,category,storage,cycles,valid_instrs,"
        "inflight\n";
  for (const TrialRecord& t : result.trials) {
    os << result.spec.workload << ',' << OutcomeName(t.outcome) << ','
       << FailureModeName(t.mode) << ',' << StateCatName(t.cat) << ','
       << (t.storage == Storage::kLatch ? "latch" : "ram") << ',' << t.cycles
       << ',' << t.valid_instrs << ',' << t.inflight << '\n';
  }
}

void WriteCategoryCsv(const CampaignResult& result, std::ostream& os) {
  os << "category,trials,match,terminated,sdc,gray,trial_error,latch_bits,"
        "ram_bits\n";
  for (int c = 0; c < kNumStateCats; ++c) {
    const auto cat = static_cast<StateCat>(c);
    const auto n = result.TrialsForCat(cat);
    if (n == 0) continue;
    const auto o = result.ByOutcomeForCat(cat);
    os << StateCatName(cat) << ',' << n << ','
       << o[static_cast<int>(Outcome::kMicroArchMatch)] << ','
       << o[static_cast<int>(Outcome::kTerminated)] << ','
       << o[static_cast<int>(Outcome::kSdc)] << ','
       << o[static_cast<int>(Outcome::kGrayArea)] << ','
       << o[static_cast<int>(Outcome::kTrialError)] << ','
       << result.inventory[c].latch_bits << ','
       << result.inventory[c].ram_bits << '\n';
  }
}

bool WritePropTraceJsonl(const CampaignResult& result, std::ostream& os) {
  if (result.prop_traces.empty()) return false;
  os << obs::RenderJournalHeader() << '\n';
  for (std::size_t i = 0; i < result.prop_traces.size(); ++i)
    obs::WritePropTraceRow(result.prop_traces[i], result.spec.workload, i, os);
  return true;
}

obs::VulnerabilityHeatmap BuildHeatmap(const CampaignResult& result) {
  obs::VulnerabilityHeatmap hm;
  if (result.trials.empty()) return hm;
  // Rebuild the machine the campaign injected: the registry layout (and
  // therefore the bit-index → field mapping) depends only on the core
  // config and program, so one throwaway core resolves every trial's site.
  const Program program = ResolveCampaignProgram(result.spec.workload);
  Core core(result.spec.core, program);
  const StateRegistry& reg = core.registry();
  const std::vector<TrialSpec> specs = MakeTrialSpecs(
      result.spec, reg.InjectableBits(result.spec.include_ram));
  // An interrupted result holds only the completed prefix; traces, when
  // collected, are parallel to the kept trials.
  const bool traced = result.prop_traces.size() == result.trials.size();
  for (std::size_t i = 0; i < result.trials.size() && i < specs.size(); ++i) {
    const TrialRecord& rec = result.trials[i];
    const BitLocation loc =
        ResolveInjectionSite(result.spec.golden, specs[i], reg).primary;
    obs::VulnerabilityHeatmap::Sample s;
    s.field = loc.name;
    s.cat = loc.cat;
    s.storage = loc.storage;
    s.field_bits = reg.FieldInfoAt(loc.field_index).bits();
    s.outcome = rec.outcome;
    s.mode = rec.mode;
    s.cycles = rec.cycles;
    if (traced) {
      s.arch_divergence_cycle = result.prop_traces[i].arch_divergence_cycle;
      s.first_spread_cycle = result.prop_traces[i].first_spread_cycle;
    }
    hm.Add(s);
  }
  return hm;
}

void WriteUtilizationCsv(const CampaignResult& result, std::ostream& os) {
  os << "valid_instrs,benign\n";
  for (const TrialRecord& t : result.trials) {
    const bool benign = t.outcome == Outcome::kMicroArchMatch ||
                        t.outcome == Outcome::kGrayArea;
    os << t.valid_instrs << ',' << (benign ? 1 : 0) << '\n';
  }
}

}  // namespace tfsim
