// Machine-readable exports of campaign results (CSV), for plotting the
// paper's figures with external tools.
#pragma once

#include <ostream>

#include "inject/campaign.h"

namespace tfsim {

// One row per trial: outcome, failure mode, category, storage class,
// cycles-to-classification, valid in-flight instructions at injection.
void WriteTrialsCsv(const CampaignResult& result, std::ostream& os);

// One row per state category: trials and outcome counts (Figures 4/5/9).
void WriteCategoryCsv(const CampaignResult& result, std::ostream& os);

// Figure 6 scatter: one row per trial with (valid_instrs, benign 0/1).
void WriteUtilizationCsv(const CampaignResult& result, std::ostream& os);

// Fault-propagation traces as JSONL: one JSON object per traced trial with
// the injection site, outcome, cycles-to-first-architectural-divergence,
// cycles-to-classification and the categories touched. Requires the
// campaign to have run with CampaignObs::collect_prop_traces; writes
// nothing (and returns false) when no traces were recorded.
bool WritePropTraceJsonl(const CampaignResult& result, std::ostream& os);

}  // namespace tfsim
