// Machine-readable exports of campaign results (CSV), for plotting the
// paper's figures with external tools.
#pragma once

#include <ostream>

#include "inject/campaign.h"
#include "obs/heatmap.h"

namespace tfsim {

// One row per trial: outcome, failure mode, category, storage class,
// cycles-to-classification, valid in-flight instructions at injection.
void WriteTrialsCsv(const CampaignResult& result, std::ostream& os);

// One row per state category: trials and outcome counts (Figures 4/5/9).
void WriteCategoryCsv(const CampaignResult& result, std::ostream& os);

// Figure 6 scatter: one row per trial with (valid_instrs, benign 0/1).
void WriteUtilizationCsv(const CampaignResult& result, std::ostream& os);

// Fault-propagation traces as JSONL: a schema_version/generated_at header
// line, then one JSON object per traced trial with the injection site,
// outcome, cycles-to-first-architectural-divergence, cycles-to-
// classification and the categories touched. Requires the campaign to have
// run with CampaignObs::collect_prop_traces; writes nothing (and returns
// false) when no traces were recorded. Readers must keep accepting
// header-less files from schema v1 exports.
bool WritePropTraceJsonl(const CampaignResult& result, std::ostream& os);

// Per-field vulnerability heatmap for one campaign result: re-derives each
// trial's injection site from the spec's seeded trial stream (the same
// MakeTrialSpecs mapping the campaign used, so this works on cached and
// resumed results that never carried field names), and joins propagation-
// latency data when the run collected traces. `result` must be a single
// campaign, not a MergeResults aggregate (the trial→spec mapping is
// per-spec); throws std::out_of_range for an unknown workload (including
// an aggregate's synthetic "aggregate" name).
obs::VulnerabilityHeatmap BuildHeatmap(const CampaignResult& result);

}  // namespace tfsim
