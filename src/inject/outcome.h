// Trial outcome taxonomy — exactly the paper's Section 2.2 outcomes and
// Section 4.1 (Table 2) failure modes.
#pragma once

#include <cstdint>

#include "state/state_registry.h"

namespace tfsim {

// The paper's four trial outcomes (Section 2.2), plus one harness-level
// outcome: a trial whose execution itself failed (an exception escaped the
// trial runner) is quarantined as kTrialError rather than aborting the
// campaign. kTrialError says nothing about the injected machine — it marks
// a hole in the sample that the aggregation layers can see and report.
enum class Outcome : std::uint8_t {
  kMicroArchMatch,  // entire machine state re-converged with the golden run
  kTerminated,      // premature termination (exception or deadlock)
  kSdc,             // silent data corruption of architectural state
  kGrayArea,        // neither failed nor provably re-converged in the window
  kTrialError,      // the trial itself threw and was quarantined
};
inline constexpr int kNumOutcomes = 5;
// The first four outcomes are the paper's taxonomy; figure tables and
// masked/failure statistics iterate these and treat quarantined trials as
// holes in the sample rather than machine behaviour.
inline constexpr int kNumPaperOutcomes = 4;
const char* OutcomeName(Outcome o);

// Seven failure modes (Table 2). kNoFailure for non-failing outcomes.
enum class FailureMode : std::uint8_t {
  kNoFailure,
  kCtrl,     // SDC: control-flow violation (wrong instruction committed)
  kDtlb,     // SDC: non-speculative access to an invalid data page
  kExcept,   // Terminated: an exception was raised
  kItlb,     // SDC: processor redirected to an invalid instruction page
  kLocked,   // Terminated: deadlock or livelock
  kMem,      // SDC: memory image inconsistent
  kRegfile,  // SDC: architectural register file inconsistent
};
inline constexpr int kNumFailureModes = 8;
const char* FailureModeName(FailureMode m);

// True for the SDC-typed failure modes (Table 2's Type column).
bool IsSdcMode(FailureMode m);

// One completed fault-injection trial.
struct TrialRecord {
  Outcome outcome = Outcome::kGrayArea;
  FailureMode mode = FailureMode::kNoFailure;
  StateCat cat = StateCat::kCtrl;     // category of the flipped bit
  Storage storage = Storage::kLatch;  // latch vs RAM
  std::uint32_t cycles = 0;           // cycles until classification
  std::uint32_t valid_instrs = 0;     // Figure 6 x-axis at injection time
  std::uint32_t inflight = 0;         // raw occupancy at injection time
};

}  // namespace tfsim
