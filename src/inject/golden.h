// Golden-run recording: one fault-free execution of a workload on the
// detailed pipeline, co-verified against the functional simulator, with
// per-cycle machine-state hashes, the retire-event stream, architectural
// view samples, checkpoints for trial start points, and the valid-in-flight
// instrumentation behind Figure 6.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/arch_state.h"
#include "arch/tlb.h"
#include "isa/assemble.h"
#include "obs/sinks.h"
#include "uarch/config.h"
#include "uarch/core.h"

namespace tfsim {

struct GoldenSpec {
  std::uint64_t warmup = 60000;    // cycles before the first checkpoint
                                   // (past every workload's init phase)
  int points = 12;                 // checkpoints (paper: 250-300 start points)
  std::uint64_t spacing = 1500;    // cycles between checkpoints
  std::uint64_t window = 10000;    // trial observation window (paper: 10 000)
  std::uint64_t offset_max = 200;  // injection offset within a start point
  std::uint64_t slack = 2000;      // timeline recorded beyond the last window
};

// The recorded timeline. Index 0 corresponds to the first checkpoint's cycle;
// all per-cycle vectors are sampled at the END of each cycle.
struct GoldenTimeline {
  std::vector<std::uint64_t> state_hash;  // whole-machine hash per cycle
  // Per-category registry hashes per cycle (fault-propagation tracing:
  // comparing a trial's CatHashes() against this row tells which structures
  // hold divergent state).
  std::vector<StateRegistry::CatHashArray> cat_hash;
  std::vector<std::uint64_t> arch_hash;   // ArchViewHash per cycle
  std::vector<std::uint64_t> mem_hash;    // memory+output content hash
  std::vector<std::uint8_t> sb_empty;     // store buffer empty?
  std::vector<std::uint64_t> retired_total;  // cumulative retire count
  std::vector<RetireEvent> events;        // flat retire-event stream
  std::uint64_t base_retired = 0;  // retired_total before timeline index 0
  // First timeline index at which retired_total equals the key.
  std::unordered_map<std::uint64_t, std::size_t> count_to_cycle;
  // Figure 6 instrumentation: in-flight seq range per cycle + retirement map.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seq_range;
  std::vector<std::uint64_t> inflight;
  std::vector<bool> seq_retired;  // indexed by fetch sequence number

  // Event for absolute retirement index, or nullptr past the recording.
  const RetireEvent* EventAt(std::uint64_t absolute_index) const {
    if (absolute_index < base_retired) return nullptr;
    const std::uint64_t i = absolute_index - base_retired;
    return i < events.size() ? &events[i] : nullptr;
  }

  // Number of in-flight-at-cycle instructions that eventually retire
  // (the paper's "valid instructions in the pipeline", Figure 6).
  std::uint32_t ValidInstrsAt(std::size_t cycle_index) const;
};

// What the golden recorder should pre-capture for the trial fast path,
// derived from a campaign's trial specs (PlanFastPath in inject/trial.h).
// Cycles are timeline indices (0 = the first checkpoint's cycle).
struct FastPathPlan {
  // Distinct injection cycles to delta-snapshot, sorted ascending. A trial's
  // injection cycle is checkpoint*spacing + offset: the machine state
  // *before* that timeline cycle executes is the trial's start state.
  std::vector<std::uint64_t> snapshot_cycles;
  // (registry word, injection cycle) pairs whose first post-injection access
  // the recorder tracks — the words the campaign's trials flip.
  std::vector<std::pair<std::size_t, std::uint64_t>> watches;
};

// Fast-path data captured during recording when a FastPathPlan was supplied.
// Immutable after RecordGolden returns; shared read-only across trial
// workers like the rest of GoldenRun.
struct GoldenFastPath {
  bool enabled = false;
  // Machine state at each planned injection cycle, stored as a sparse delta
  // against an already-saved checkpoint (~20 KB instead of a ~350 KB full
  // snapshot). Restoring base_checkpoint + delta reproduces bit-exactly the
  // state a slow trial reaches by replaying `offset` cycles.
  struct Point {
    std::size_t base_checkpoint = 0;
    Core::SnapshotDelta delta;
  };
  std::unordered_map<std::uint64_t, Point> points;  // keyed by injection cycle
  // First pipeline access (plus the continuous architectural-view check's
  // reads) to each watched (word, cycle) pair. Lookup() answers whether a
  // flipped word was overwritten (trial provably re-converges), never
  // touched (provably stays latent), or read (trial must simulate).
  std::shared_ptr<const WordFirstAccessTracker> access;
};

struct GoldenRun {
  CoreConfig cfg;
  Program program;
  GoldenSpec spec;
  GoldenTimeline timeline;
  std::vector<Core::Snapshot> checkpoints;  // checkpoint k at index k*spacing
  GoldenFastPath fastpath;  // populated when recorded with a FastPathPlan
  Tlb tlb;        // pages learned across the whole golden run
  CoreStats stats;  // golden pipeline statistics (IPC etc.)
};

// Records a golden run. Throws std::runtime_error if the pipeline diverges
// from the functional simulator, raises an exception, or deadlocks — any of
// which would indicate a model bug, not a valid golden execution. When `obs`
// is non-null its sinks observe the fault-free execution: per-cycle stage
// occupancies land in the metrics registry and (sampled) in the chrome
// trace's pipeline lane. When `fastpath` is non-null the recorder
// additionally captures injection-cycle snapshots and first-access data for
// the trial fast path (GoldenRun::fastpath); recording output is otherwise
// unchanged.
std::shared_ptr<const GoldenRun> RecordGolden(const CoreConfig& cfg,
                                              const Program& program,
                                              const GoldenSpec& spec,
                                              const obs::ObsSinks* obs =
                                                  nullptr,
                                              const FastPathPlan* fastpath =
                                                  nullptr);

}  // namespace tfsim
