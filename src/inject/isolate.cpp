#include "inject/isolate.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "util/failpoint.h"

#ifndef _WIN32

#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace tfsim {
namespace {

using Clock = std::chrono::steady_clock;

// Parent -> child: one 8-byte trial index per hand-off; the sentinel (or
// pipe EOF) shuts the worker down.
constexpr std::uint64_t kShutdown = ~std::uint64_t{0};

// Child -> parent: fixed header, then `error_len` message bytes. Parent and
// child are the same binary in the same address space family, so the struct
// layout is identical on both ends; memcpy in and out keeps the protocol
// alignment-safe.
struct WireFrame {
  std::uint64_t index = 0;
  std::uint64_t dur_us = 0;
  std::uint8_t outcome = 0;
  std::uint8_t mode = 0;
  std::uint8_t cat = 0;
  std::uint8_t storage = 0;
  std::uint32_t cycles = 0;
  std::uint32_t valid_instrs = 0;
  std::uint32_t inflight = 0;
  std::uint8_t quarantined = 0;
  std::uint8_t timed_out = 0;
  std::uint16_t error_len = 0;
};

bool WriteFull(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t w = ::write(fd, p, len);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    len -= static_cast<std::size_t>(w);
  }
  return true;
}

bool ReadFull(int fd, void* data, std::size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t r = ::read(fd, p, len);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    p += r;
    len -= static_cast<std::size_t>(r);
  }
  return true;
}

// Worker child: one TrialRunner, no threads (the single discipline that
// makes fork from a multi-threaded parent safe — and keeps TSan quiet).
// Reads trial indices off `rfd`, writes result frames to `wfd`, exits on
// the shutdown sentinel or pipe EOF. A crash here is the point: it takes
// down only this process, and the supervisor harvests the wreckage.
[[noreturn]] void RunWorkerChild(int rfd, int wfd,
                                 const std::shared_ptr<const GoldenRun>& golden,
                                 const std::vector<TrialSpec>& specs,
                                 const IsolateOptions& opt) {
  // The parent owns interruption policy; a tty SIGINT reaches the whole
  // process group, and a worker dying to it would be recorded as a crash.
  std::signal(SIGINT, SIG_IGN);
  TrialRunner runner(golden, opt.policy);
  std::size_t cur = 0;
  TrialRunner::Hooks hooks;
  hooks.before_attempt = [&] {
    if (opt.before_trial) opt.before_trial(cur);
  };
  for (;;) {
    std::uint64_t idx = 0;
    if (!ReadFull(rfd, &idx, sizeof(idx)) || idx == kShutdown) ::_exit(0);
    cur = static_cast<std::size_t>(idx);
    const auto t0 = Clock::now();
    TrialRunner::Result res = runner.Run(specs[cur], /*want_trace=*/false,
                                         &hooks);
    const auto t1 = Clock::now();
    WireFrame f;
    f.index = idx;
    f.dur_us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
    f.outcome = static_cast<std::uint8_t>(res.record.outcome);
    f.mode = static_cast<std::uint8_t>(res.record.mode);
    f.cat = static_cast<std::uint8_t>(res.record.cat);
    f.storage = static_cast<std::uint8_t>(res.record.storage);
    f.cycles = res.record.cycles;
    f.valid_instrs = res.record.valid_instrs;
    f.inflight = res.record.inflight;
    f.quarantined = res.quarantined ? 1 : 0;
    f.timed_out = res.timed_out ? 1 : 0;
    const std::size_t elen = std::min<std::size_t>(res.error.size(), 4096);
    f.error_len = static_cast<std::uint16_t>(elen);
    if (!WriteFull(wfd, &f, sizeof(f)) ||
        (elen && !WriteFull(wfd, res.error.data(), elen)))
      ::_exit(3);  // parent gone; nothing left to report to
  }
}

struct Worker {
  pid_t pid = -1;
  int to_fd = -1;    // parent writes trial indices
  int from_fd = -1;  // parent reads result frames
  bool alive = false;
  bool busy = false;
  bool killed = false;  // parent SIGKILLed it (hard deadline)
  std::size_t trial = 0;
  Clock::time_point started{};
  std::string buf;  // partially received frame bytes
};

const char* SignalName(int sig) {
  const char* s = strsignal(sig);
  return s ? s : "unknown signal";
}

// The default-constructed kTrialError stand-in — byte-identical to what
// TrialRunner::Run produces for an in-process quarantine, so isolated and
// in-process campaigns disagree on nothing but the diagnostics.
TrialRecord QuarantineRecord() {
  TrialRecord rec{};
  rec.outcome = Outcome::kTrialError;
  return rec;
}

}  // namespace

bool IsolationSupported() { return true; }

IsolateReport RunTrialsIsolated(
    const std::shared_ptr<const GoldenRun>& golden,
    const std::vector<TrialSpec>& specs, std::size_t first,
    const IsolateOptions& opt,
    const std::function<void(IsolatedTrial&&)>& on_result) {
  IsolateReport report;
  const std::size_t total = specs.size();
  if (first >= total) return report;

  // A worker that dies mid-campaign leaves its pipe write-end open in every
  // *other* child (inherited at their forks), which would mask the EOF the
  // supervisor relies on — so children close every descriptor that is not
  // their own pair, and the supervisor re-derives the open set per spawn.
  const int jobs = std::max(
      1, std::min<int>(opt.jobs, static_cast<int>(total - first)));
  std::vector<Worker> workers(static_cast<std::size_t>(jobs));

  // Writes to a worker that died race with the supervisor noticing; EPIPE
  // must be an errno, not a process-killing signal.
  using SigHandler = void (*)(int);
  SigHandler old_pipe = std::signal(SIGPIPE, SIG_IGN);

  // Parent-side hard deadline per trial: generously above the child's own
  // watchdog so it only fires when the child is too wedged to enforce it.
  const std::int64_t hard_ms =
      opt.policy.timeout_ms > 0 ? opt.policy.timeout_ms * 2 + 250 : 0;

  int restarts_left = std::max(opt.max_restarts, 0);
  std::size_t next = first;
  std::vector<std::size_t> requeued;  // hand-offs that never reached a child
  bool exhausted = false;
  bool interrupted = false;

  auto spawn = [&](std::size_t slot) -> bool {
    int to[2] = {-1, -1}, from[2] = {-1, -1};
    if (::pipe(to) != 0) return false;
    if (::pipe(from) != 0) {
      ::close(to[0]);
      ::close(to[1]);
      return false;
    }
    // The failpoint registry mutex must not be mid-acquisition across the
    // fork (children evaluate trial-scoped failpoints); these hooks pin it.
    fail::detail::PrepareFork();
    const pid_t pid = ::fork();
    if (pid == 0) {
      fail::detail::ChildAfterFork();
      for (std::size_t s = 0; s < workers.size(); ++s) {
        if (workers[s].to_fd >= 0) ::close(workers[s].to_fd);
        if (workers[s].from_fd >= 0) ::close(workers[s].from_fd);
      }
      ::close(to[1]);
      ::close(from[0]);
      RunWorkerChild(to[0], from[1], golden, specs, opt);
    }
    fail::detail::ParentAfterFork();
    ::close(to[0]);
    ::close(from[1]);
    if (pid < 0) {
      ::close(to[1]);
      ::close(from[0]);
      return false;
    }
    Worker& w = workers[slot];
    w.pid = pid;
    w.to_fd = to[1];
    w.from_fd = from[0];
    w.alive = true;
    w.busy = false;
    w.killed = false;
    w.buf.clear();
    return true;
  };

  // Reaps a dead worker: harvest the exit status, synthesize the quarantined
  // result for any trial it held, and decide whether the restart budget
  // covers a replacement.
  auto reap = [&](std::size_t slot) {
    Worker& w = workers[slot];
    ::close(w.to_fd);
    ::close(w.from_fd);
    w.to_fd = w.from_fd = -1;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (w.busy) {
      IsolatedTrial t;
      t.index = w.trial;
      t.record = QuarantineRecord();
      t.quarantined = true;
      t.worker = static_cast<int>(slot);
      t.dur_us = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                w.started)
              .count());
      if (w.killed) {
        t.timed_out = true;
        t.status = SIGKILL;
        t.error = "worker " + std::to_string(slot) + " hard-killed after " +
                  std::to_string(hard_ms) + "ms (trial unresponsive)";
        ++report.timeouts;
      } else {
        t.crashed = true;
        if (WIFSIGNALED(status)) {
          const int sig = WTERMSIG(status);
          t.status = static_cast<std::uint64_t>(sig);
          t.error = "worker " + std::to_string(slot) + " killed by signal " +
                    std::to_string(sig) + " (" + SignalName(sig) + ")";
        } else {
          t.status = static_cast<std::uint64_t>(WEXITSTATUS(status));
          t.error = "worker " + std::to_string(slot) +
                    " exited with status " + std::to_string(WEXITSTATUS(status));
        }
        ++report.crashes;
      }
      if (opt.verbose)
        std::fprintf(stderr, "[isolate] trial %zu lost: %s\n", w.trial,
                     t.error.c_str());
      w.busy = false;
      on_result(std::move(t));
    } else if (!clean && opt.verbose) {
      std::fprintf(stderr, "[isolate] idle worker %zu died (status %d)\n",
                   slot, status);
    }
    const bool work_remains =
        !interrupted && !exhausted &&
        (next < total || !requeued.empty());
    // An idle worker exiting cleanly is shutdown, not a failure.
    if (clean && !w.killed && !work_remains) return;
    if (!work_remains) return;
    if (restarts_left <= 0) {
      exhausted = true;
      if (opt.verbose)
        std::fprintf(stderr,
                     "[isolate] restart budget exhausted; quarantining the "
                     "remaining trials\n");
      return;
    }
    --restarts_left;
    ++report.restarts;
    if (!spawn(slot)) exhausted = true;
  };

  // Drains complete frames out of a worker's receive buffer.
  auto drain_frames = [&](std::size_t slot) {
    Worker& w = workers[slot];
    for (;;) {
      if (w.buf.size() < sizeof(WireFrame)) return;
      WireFrame f;
      std::memcpy(&f, w.buf.data(), sizeof(f));
      if (w.buf.size() < sizeof(f) + f.error_len) return;
      IsolatedTrial t;
      t.index = static_cast<std::size_t>(f.index);
      t.record.outcome = static_cast<Outcome>(f.outcome);
      t.record.mode = static_cast<FailureMode>(f.mode);
      t.record.cat = static_cast<StateCat>(f.cat);
      t.record.storage = static_cast<Storage>(f.storage);
      t.record.cycles = f.cycles;
      t.record.valid_instrs = f.valid_instrs;
      t.record.inflight = f.inflight;
      t.quarantined = f.quarantined != 0;
      t.timed_out = f.timed_out != 0;
      t.dur_us = f.dur_us;
      t.worker = static_cast<int>(slot);
      t.error.assign(w.buf.data() + sizeof(f), f.error_len);
      w.buf.erase(0, sizeof(f) + f.error_len);
      if (t.timed_out) ++report.timeouts;
      w.busy = false;
      on_result(std::move(t));
    }
  };

  for (int s = 0; s < jobs; ++s) {
    if (!spawn(static_cast<std::size_t>(s))) {
      // Could not even field the initial crew: contain what we can with the
      // workers that did start; with none, every trial is a budget hole.
      if (s == 0) exhausted = true;
      break;
    }
  }

  for (;;) {
    if (opt.cancel && opt.cancel->cancelled()) interrupted = true;

    // Hand out work to idle workers.
    if (!exhausted && !interrupted) {
      for (std::size_t s = 0; s < workers.size(); ++s) {
        Worker& w = workers[s];
        if (!w.alive || w.busy) continue;
        std::size_t idx;
        if (!requeued.empty()) {
          idx = requeued.back();
          requeued.pop_back();
        } else if (next < total) {
          idx = next++;
        } else {
          break;
        }
        const std::uint64_t wire = idx;
        if (!WriteFull(w.to_fd, &wire, sizeof(wire))) {
          // The child died between trials; the hand-off never landed, so the
          // trial goes back in the queue and the death is handled as usual.
          requeued.push_back(idx);
          reap(s);
          continue;
        }
        w.busy = true;
        w.trial = idx;
        w.started = Clock::now();
      }
    }

    bool any_busy = false;
    for (const Worker& w : workers) any_busy |= w.alive && w.busy;
    const bool work_remains =
        !exhausted && !interrupted && (next < total || !requeued.empty());
    if (!any_busy && !work_remains) break;

    // Wait for frames (or deaths: EOF) on every live worker's pipe.
    std::vector<pollfd> fds;
    std::vector<std::size_t> slots;
    for (std::size_t s = 0; s < workers.size(); ++s) {
      if (!workers[s].alive) continue;
      fds.push_back({workers[s].from_fd, POLLIN, 0});
      slots.push_back(s);
    }
    if (fds.empty()) {
      // Workers all gone but trials owed: reap() marked exhaustion (or a
      // spawn failed); the synthesis pass below settles the books.
      if (work_remains) exhausted = true;
      if (!work_remains && !any_busy) break;
      if (exhausted) break;
      continue;
    }
    ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (!(fds[k].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      const std::size_t s = slots[k];
      char chunk[4096];
      const ssize_t r = ::read(workers[s].from_fd, chunk, sizeof(chunk));
      if (r > 0) {
        workers[s].buf.append(chunk, static_cast<std::size_t>(r));
        drain_frames(s);
      } else if (r == 0 || (r < 0 && errno != EINTR && errno != EAGAIN)) {
        reap(s);
      }
    }

    // Hard deadline: a child too wedged to run its own watchdog (or stuck
    // before reaching a check) gets SIGKILLed; reap() then records the
    // timeout when the pipe EOF arrives.
    if (hard_ms > 0) {
      const auto now = Clock::now();
      for (Worker& w : workers) {
        if (!w.alive || !w.busy || w.killed) continue;
        const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                                now - w.started)
                                .count();
        if (waited > hard_ms) {
          w.killed = true;
          ::kill(w.pid, SIGKILL);
        }
      }
    }
  }

  // Containment exhausted: every un-run trial still gets exactly one result
  // — an explicit budget hole, clearly distinct from machine behaviour.
  if (exhausted) {
    report.exhausted = true;
    std::vector<std::size_t> leftovers = std::move(requeued);
    for (std::size_t i = next; i < total; ++i) leftovers.push_back(i);
    for (std::size_t idx : leftovers) {
      IsolatedTrial t;
      t.index = idx;
      t.record = QuarantineRecord();
      t.quarantined = true;
      t.budget_exhausted = true;
      t.error = "not executed: worker restart budget exhausted";
      on_result(std::move(t));
    }
  }
  report.interrupted = interrupted;

  // Shutdown: closing the command pipe EOFs every child's next read.
  for (std::size_t s = 0; s < workers.size(); ++s) {
    Worker& w = workers[s];
    if (!w.alive) continue;
    const std::uint64_t bye = kShutdown;
    WriteFull(w.to_fd, &bye, sizeof(bye));  // best-effort; EOF also works
    ::close(w.to_fd);
    ::close(w.from_fd);
    w.to_fd = w.from_fd = -1;
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    w.alive = false;
  }

  std::signal(SIGPIPE, old_pipe);
  return report;
}

}  // namespace tfsim

#else  // _WIN32

namespace tfsim {

bool IsolationSupported() { return false; }

IsolateReport RunTrialsIsolated(const std::shared_ptr<const GoldenRun>&,
                                const std::vector<TrialSpec>&, std::size_t,
                                const IsolateOptions&,
                                const std::function<void(IsolatedTrial&&)>&) {
  throw std::runtime_error(
      "trial isolation requires fork(); unsupported on this platform");
}

}  // namespace tfsim

#endif
