#include "inject/campaign.h"

#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>

#include "inject/cache.h"
#include "inject/trial.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {

std::string CampaignSpec::CacheKey() const {
  // Versioned content hash over everything that affects results. Bump the
  // salt when the model or classifier changes behaviour.
  constexpr std::uint64_t kVersionSalt = 8;
  std::uint64_t h = Mix64(kVersionSalt);
  for (char c : workload) h = Mix64(h ^ static_cast<std::uint64_t>(c));
  const auto& p = core.protect;
  h = Mix64(h ^ (static_cast<std::uint64_t>(p.timeout_counter) |
                 static_cast<std::uint64_t>(p.regfile_ecc) << 1 |
                 static_cast<std::uint64_t>(p.regptr_ecc) << 2 |
                 static_cast<std::uint64_t>(p.insn_parity) << 3));
  h = Mix64(h ^ static_cast<std::uint64_t>(include_ram));
  h = Mix64(h ^ static_cast<std::uint64_t>(trials));
  h = Mix64(h ^ golden.warmup);
  h = Mix64(h ^ static_cast<std::uint64_t>(golden.points));
  h = Mix64(h ^ golden.spacing);
  h = Mix64(h ^ golden.window);
  h = Mix64(h ^ seed);
  h = Mix64(h ^ (static_cast<std::uint64_t>(flips) << 8));
  h = Mix64(h ^ static_cast<std::uint64_t>(adjacent));
  std::ostringstream os;
  os << workload << (include_ram ? "_lr" : "_l")
     << (p.timeout_counter || p.regfile_ecc || p.regptr_ecc || p.insn_parity
             ? "_prot"
             : "_base")
     << "_" << std::hex << h;
  return os.str();
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcome() const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcomeForCat(
    StateCat cat) const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes> CampaignResult::ByFailureMode()
    const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.mode)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes>
CampaignResult::ByFailureModeForCat(StateCat cat) const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.mode)]++;
  return out;
}

std::uint64_t CampaignResult::TrialsForCat(StateCat cat) const {
  std::uint64_t n = 0;
  for (const auto& t : trials)
    if (t.cat == cat) ++n;
  return n;
}

Proportion CampaignResult::FailureRate() const {
  const auto o = ByOutcome();
  const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                               o[static_cast<int>(Outcome::kTerminated)];
  return MakeProportion(failed, trials.size());
}

namespace {

// Shared progress/telemetry state for one campaign's trial loop.
struct TrialLoopObs {
  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  Clock::time_point last_progress = start;
  std::array<std::uint64_t, kNumOutcomes> outcomes{};

  std::uint64_t ElapsedUs(Clock::time_point t) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(t - start)
            .count());
  }

  void PrintProgress(const std::string& key, int done, int total,
                     bool final_line) {
    const double secs =
        static_cast<double>(ElapsedUs(Clock::now())) * 1e-6;
    std::fprintf(stderr,
                 "[campaign %s] %d/%d trials  %.1f trials/s  "
                 "match=%llu term=%llu sdc=%llu gray=%llu%s\n",
                 key.c_str(), done, total,
                 secs > 0 ? static_cast<double>(done) / secs : 0.0,
                 (unsigned long long)outcomes[0], (unsigned long long)outcomes[1],
                 (unsigned long long)outcomes[2], (unsigned long long)outcomes[3],
                 final_line ? " [done]" : "");
  }
};

}  // namespace

CampaignResult RunCampaign(const CampaignSpec& spec, bool verbose,
                           const CampaignObs* cobs) {
  obs::MetricsRegistry* metrics = cobs ? cobs->sinks.metrics : nullptr;
  obs::ChromeTraceWriter* chrome = cobs ? cobs->sinks.chrome : nullptr;
  const bool tracing = cobs && cobs->collect_prop_traces;

  // Observed runs bypass the cache load: telemetry (traces, metrics,
  // chrome events) records live execution and is never cached, so a cache
  // hit would export hollow files. Results are still stored for untraced
  // reuse.
  if (!tracing && !metrics && !chrome) {
    if (auto cached = LoadCachedCampaign(spec)) {
      if (metrics) metrics->GetCounter("campaign.cache.hits").Inc();
      if (verbose)
        std::fprintf(stderr, "[campaign %s] loaded %zu trials from cache\n",
                     spec.CacheKey().c_str(), cached->trials.size());
      return *cached;
    }
  }
  if (metrics) metrics->GetCounter("campaign.cache.misses").Inc();
  if (chrome) {
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidPipeline,
                           "pipeline occupancy (golden run, 1us = 1 cycle)");
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidCampaign,
                           "campaign trials (wall clock)");
  }

  const WorkloadInfo& info = WorkloadByName(spec.workload);
  const Program program = BuildWorkload(info, kCampaignIters);
  if (verbose)
    std::fprintf(stderr, "[campaign %s] recording golden run...\n",
                 spec.CacheKey().c_str());
  std::shared_ptr<const GoldenRun> golden;
  {
    std::optional<obs::ScopedTimer> timed;
    if (metrics) timed.emplace(metrics->GetTimer("campaign.golden_record"));
    golden = RecordGolden(spec.core, program, spec.golden,
                          cobs ? &cobs->sinks : nullptr);
  }

  CampaignResult result;
  result.spec = spec;
  result.golden_ipc = golden->stats.Ipc();
  result.golden_bp_accuracy =
      golden->stats.branches
          ? 1.0 - static_cast<double>(golden->stats.mispredicts) /
                      static_cast<double>(golden->stats.branches)
          : 0.0;
  result.golden_dcache_misses = golden->stats.dcache_misses;

  Core core(spec.core, program);
  for (int c = 0; c < kNumStateCats; ++c)
    result.inventory[c] = core.registry().Inventory(static_cast<StateCat>(c));

  Rng rng(spec.seed);
  const std::uint64_t bits = core.registry().InjectableBits(spec.include_ram);
  result.trials.reserve(static_cast<std::size_t>(spec.trials));
  if (tracing) result.prop_traces.reserve(static_cast<std::size_t>(spec.trials));

  TrialLoopObs loop;
  std::optional<obs::ScopedTimer> loop_timer;
  if (metrics) loop_timer.emplace(metrics->GetTimer("campaign.trial_loop"));
  for (int t = 0; t < spec.trials; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(
        rng.NextBelow(static_cast<std::uint64_t>(spec.golden.points)));
    ts.offset = rng.NextBelow(spec.golden.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    ts.include_ram = spec.include_ram;
    ts.flips = spec.flips;
    ts.adjacent = spec.adjacent;

    obs::PropagationTrace trace;
    const auto t0 = TrialLoopObs::Clock::now();
    const TrialRecord rec =
        RunTrial(core, *golden, ts, tracing ? &trace : nullptr);
    const auto t1 = TrialLoopObs::Clock::now();
    result.trials.push_back(rec);
    if (tracing) result.prop_traces.push_back(std::move(trace));
    loop.outcomes[static_cast<int>(rec.outcome)]++;

    if (metrics) {
      metrics->GetCounter("campaign.trials").Inc();
      metrics->GetCounter(std::string("campaign.outcome.") +
                          OutcomeName(rec.outcome))
          .Inc();
      metrics->GetHistogram("campaign.trial_cycles", 512, 20).Add(rec.cycles);
    }
    if (chrome) {
      const std::uint64_t ts_us = loop.ElapsedUs(t0);
      const std::uint64_t dur_us = loop.ElapsedUs(t1) - ts_us;
      chrome->CompleteEvent(
          OutcomeName(rec.outcome), obs::ChromeTraceWriter::kPidCampaign,
          /*tid=*/0, ts_us, dur_us,
          {{"category", StateCatName(rec.cat)},
           {"failure_mode", FailureModeName(rec.mode)},
           {"cycles", std::to_string(rec.cycles)}});
    }

    const bool progress_due =
        cobs && cobs->progress &&
        (TrialLoopObs::Clock::now() - loop.last_progress >=
         std::chrono::seconds(1));
    if (progress_due) {
      loop.last_progress = TrialLoopObs::Clock::now();
      loop.PrintProgress(spec.CacheKey(), t + 1, spec.trials, false);
    } else if (verbose && !(cobs && cobs->progress) && (t + 1) % 200 == 0) {
      std::fprintf(stderr, "[campaign %s] %d/%d trials\n",
                   spec.CacheKey().c_str(), t + 1, spec.trials);
    }
  }
  loop_timer.reset();
  if (cobs && cobs->progress)
    loop.PrintProgress(spec.CacheKey(), spec.trials, spec.trials, true);

  StoreCachedCampaign(result);
  return result;
}

CampaignResult MergeResults(const std::vector<CampaignResult>& parts) {
  CampaignResult merged;
  if (parts.empty()) return merged;
  merged.spec = parts.front().spec;
  merged.spec.workload = "aggregate";
  merged.inventory = parts.front().inventory;
  double ipc = 0;
  for (const auto& p : parts) {
    merged.trials.insert(merged.trials.end(), p.trials.begin(),
                         p.trials.end());
    merged.prop_traces.insert(merged.prop_traces.end(), p.prop_traces.begin(),
                              p.prop_traces.end());
    ipc += p.golden_ipc;
  }
  merged.golden_ipc = ipc / static_cast<double>(parts.size());
  return merged;
}

std::vector<CampaignResult> RunSuite(CampaignSpec spec, bool verbose) {
  std::vector<CampaignResult> out;
  for (const auto& w : AllWorkloads()) {
    spec.workload = w.name;
    out.push_back(RunCampaign(spec, verbose));
  }
  return out;
}

}  // namespace tfsim
