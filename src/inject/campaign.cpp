#include "inject/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "check/invariants.h"
#include "inject/cache.h"
#include "inject/isolate.h"
#include "inject/trial.h"
#include "obs/chrome_trace.h"
#include <iostream>

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/argparse.h"
#include "util/env.h"
#include "util/rng.h"
#include "soft/harden.h"
#include "workloads/workloads.h"

namespace tfsim {

std::string CampaignSpec::CacheKey() const {
  // Versioned content hash over everything that affects results. Bump the
  // salt when the model or classifier changes behaviour.
  constexpr std::uint64_t kVersionSalt = 10;  // 10: geometry hashed (two
                                              // specs differing only in core
                                              // shape used to collide)
  std::uint64_t h = Mix64(kVersionSalt);
  for (char c : workload) h = Mix64(h ^ static_cast<std::uint64_t>(c));
  const auto& p = core.protect;
  h = Mix64(h ^ (static_cast<std::uint64_t>(p.timeout_counter) |
                 static_cast<std::uint64_t>(p.regfile_ecc) << 1 |
                 static_cast<std::uint64_t>(p.regptr_ecc) << 2 |
                 static_cast<std::uint64_t>(p.insn_parity) << 3));
  // Every geometry field: the core shape defines the injectable bit space,
  // so two campaigns differing in any size must never share a cache entry.
  for (int g : {core.fetch_width, core.fetch_queue, core.ras_entries,
                core.btb_sets, core.btb_ways, core.icache_bytes,
                core.icache_ways, core.line_bytes, core.decode_width,
                core.rename_width, core.phys_regs, core.sched_entries,
                core.lq_entries, core.sq_entries, core.store_buffer,
                core.dcache_bytes, core.dcache_ways, core.dcache_banks,
                core.mshrs, core.miss_cycles, core.dcache_latency,
                core.rob_entries, core.retire_width, core.timeout_cycles})
    h = Mix64(h ^ static_cast<std::uint64_t>(g));
  h = Mix64(h ^ static_cast<std::uint64_t>(include_ram));
  h = Mix64(h ^ static_cast<std::uint64_t>(trials));
  h = Mix64(h ^ golden.warmup);
  h = Mix64(h ^ static_cast<std::uint64_t>(golden.points));
  h = Mix64(h ^ golden.spacing);
  h = Mix64(h ^ golden.window);
  h = Mix64(h ^ seed);
  h = Mix64(h ^ (static_cast<std::uint64_t>(flips) << 8));
  h = Mix64(h ^ static_cast<std::uint64_t>(adjacent));
  std::ostringstream os;
  os << workload << (include_ram ? "_lr" : "_l")
     << (p.timeout_counter || p.regfile_ecc || p.regptr_ecc || p.insn_parity
             ? "_prot"
             : "_base")
     << "_" << std::hex << h;
  return os.str();
}

const char* QuarantineReasonName(QuarantinedTrial::Reason r) {
  switch (r) {
    case QuarantinedTrial::Reason::kException:
      return "exception";
    case QuarantinedTrial::Reason::kTimeout:
      return "timeout";
    case QuarantinedTrial::Reason::kCrash:
      return "crash";
    case QuarantinedTrial::Reason::kBudget:
      return "budget";
  }
  return "unknown";
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcome() const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcomeForCat(
    StateCat cat) const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes> CampaignResult::ByFailureMode()
    const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.mode)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes>
CampaignResult::ByFailureModeForCat(StateCat cat) const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.mode)]++;
  return out;
}

std::uint64_t CampaignResult::TrialsForCat(StateCat cat) const {
  std::uint64_t n = 0;
  for (const auto& t : trials)
    if (t.cat == cat) ++n;
  return n;
}

Proportion CampaignResult::FailureRate() const {
  const auto o = ByOutcome();
  const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                               o[static_cast<int>(Outcome::kTerminated)];
  // Quarantined trials (kTrialError) are holes in the sample, not machine
  // behaviour; they leave the denominator rather than diluting the rate.
  std::uint64_t sample = 0;
  for (int i = 0; i < kNumPaperOutcomes; ++i) sample += o[i];
  return MakeProportion(failed, sample);
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedUs(Clock::time_point since, Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - since)
          .count());
}

// Removes the per-campaign progress sink on every exit path (the caller's
// journal outlives this campaign; a sink left registered would dangle).
// RemoveSink waits out in-flight deliveries, so the sink may be destroyed
// as soon as the guard has run.
struct ProgressSinkGuard {
  obs::EventJournal* journal;
  obs::EventSink* sink;
  ProgressSinkGuard(obs::EventJournal* j, obs::EventSink* s)
      : journal(j), sink(s) {
    if (journal && sink) journal->AddSink(sink);
  }
  ~ProgressSinkGuard() {
    if (journal && sink) journal->RemoveSink(sink);
  }
  ProgressSinkGuard(const ProgressSinkGuard&) = delete;
  ProgressSinkGuard& operator=(const ProgressSinkGuard&) = delete;
};

// Wall-clock span of one trial, for the chrome campaign lane. Filled by the
// executing worker; read only after the pool joins.
struct TrialTiming {
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int worker = 0;
};

// Replays a campaign's per-trial counters and histograms into `m`, in trial
// order. Used both by live runs after the pool joins (so counter totals and
// Welford histogram summaries are byte-identical at every `jobs` value) and
// by cache hits (so a metrics-attached run that loads cached results still
// reports the same campaign.* totals as the live run that produced them).
void EmitTrialMetrics(const std::vector<TrialRecord>& trials,
                      obs::MetricsRegistry& m) {
  obs::Counter& total = m.GetCounter("campaign.trials");
  obs::Counter& quarantined = m.GetCounter("campaign.trials.quarantined");
  obs::Histogram& cycles = m.GetHistogram("campaign.trial_cycles", 512, 20);
  for (const TrialRecord& rec : trials) {
    total.Inc();
    m.GetCounter(std::string("campaign.outcome.") + OutcomeName(rec.outcome))
        .Inc();
    if (rec.outcome == Outcome::kTrialError) quarantined.Inc();
    cycles.Add(rec.cycles);
  }
}

}  // namespace

std::vector<TrialSpec> MakeTrialSpecs(const CampaignSpec& spec,
                                      std::uint64_t injectable_bits) {
  Rng rng(spec.seed);
  std::vector<TrialSpec> specs;
  specs.reserve(static_cast<std::size_t>(spec.trials));
  for (int t = 0; t < spec.trials; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(
        rng.NextBelow(static_cast<std::uint64_t>(spec.golden.points)));
    ts.offset = rng.NextBelow(spec.golden.offset_max);
    ts.bit_index = rng.NextBelow(injectable_bits);
    ts.include_ram = spec.include_ram;
    ts.flips = spec.flips;
    ts.adjacent = spec.adjacent;
    specs.push_back(ts);
  }
  return specs;
}

CampaignResult RunCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opt) {
  obs::MetricsRegistry* metrics = opt.obs.sinks.metrics;
  obs::ChromeTraceWriter* chrome = opt.obs.sinks.chrome;
  const bool tracing = opt.obs.collect_prop_traces;
  const std::string key = spec.CacheKey();
  // Checked campaigns run every trial core with the per-cycle invariant
  // checker and quarantine structural violations. The CacheKey deliberately
  // does not hash execution options, so checked runs (whose quarantine
  // decisions differ from unchecked ones) must bypass the cache and the
  // checkpoint journal in both directions.
  const bool checked = opt.check_invariants || spec.core.check_invariants;

  // Event journal: the caller's, or a private one spun up so --progress can
  // run as a journal consumer even with no other telemetry attached. All
  // emission below funnels through `journal`; when it is null an event
  // costs one pointer test. The journal is pure telemetry — trial records,
  // classification counts and cache keys are byte-identical with it on or
  // off (pinned by tests/test_telemetry.cpp).
  std::optional<obs::EventJournal> local_journal;
  obs::EventJournal* journal = opt.obs.events;
  if (!journal && opt.obs.progress) {
    local_journal.emplace();
    journal = &*local_journal;
  }
  std::optional<obs::ProgressSink> progress_sink;
  if (journal && opt.obs.progress)
    progress_sink.emplace(key, spec.trials, std::cerr);
  ProgressSinkGuard progress_guard(
      journal, progress_sink ? &*progress_sink : nullptr);

  auto emit = [&](obs::Event e) {
    if (journal) journal->Emit(std::move(e));
  };
  // Metrics snapshots ride the journal as events whose detail is the full
  // registry JSON, emitted only at points where no other thread mutates the
  // (deliberately lock-free) registry: after the cache check, after the
  // golden run, under the checkpoint mutex, and after the post-join replay.
  // The status server serves the latest one as /metrics; the JSONL file
  // sink skips them.
  auto emit_metrics_snapshot = [&] {
    if (!journal || !metrics) return;
    std::ostringstream os;
    metrics->WriteJson(os);
    obs::Event e;
    e.kind = obs::EventKind::kMetricsSnapshot;
    e.detail = os.str();
    journal->Emit(std::move(e));
  };
  // Campaign-finish bookkeeping shared by the cache-hit and live paths: a
  // final metrics snapshot, the finish event, then a drain so the journal
  // (including the --progress summary line) is complete before RunCampaign
  // returns — also on interruption. The finish event carries the number of
  // events the (shared, possibly pre-used) journal shed to backpressure
  // during THIS campaign, so lossy telemetry is self-reporting.
  const std::uint64_t dropped_before = journal ? journal->dropped() : 0;
  auto finish_journal = [&](std::uint64_t kept, bool interrupted) {
    if (!journal) return;
    const std::uint64_t dropped = journal->dropped() - dropped_before;
    if (metrics && dropped)
      metrics->GetCounter("campaign.events.dropped").Inc(dropped);
    emit_metrics_snapshot();
    obs::Event e;
    e.kind = obs::EventKind::kCampaignFinish;
    e.value = kept;
    e.interrupted = interrupted;
    e.dropped = dropped;
    journal->Emit(std::move(e));
    journal->Flush();
  };

  {
    obs::Event e;
    e.kind = obs::EventKind::kCampaignStart;
    e.detail = key;
    e.field = spec.workload;
    e.value = static_cast<std::uint64_t>(spec.trials);
    emit(std::move(e));
  }

  // Per-trial artifacts (propagation traces, chrome spans) record live
  // execution and are never cached, so runs collecting them always execute.
  // Metrics-attached runs may load cached results: the campaign.* counters
  // and histograms are replayed from the cached records (identical totals to
  // a live run), and the hit itself becomes observable.
  if (opt.use_cache && !tracing && !chrome && !checked) {
    if (auto cached = LoadCachedCampaign(spec)) {
      if (metrics) {
        metrics->GetCounter("campaign.cache.hits").Inc();
        EmitTrialMetrics(cached->trials, *metrics);
      }
      {
        obs::Event e;
        e.kind = obs::EventKind::kCacheHit;
        e.value = cached->trials.size();
        emit(std::move(e));
      }
      if (opt.verbose)
        std::fprintf(stderr, "[campaign %s] loaded %zu trials from cache\n",
                     key.c_str(), cached->trials.size());
      finish_journal(cached->trials.size(), /*interrupted=*/false);
      return *cached;
    }
  }
  if (metrics) metrics->GetCounter("campaign.cache.misses").Inc();
  if (chrome) {
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidPipeline,
                           "pipeline occupancy (golden run, 1us = 1 cycle)");
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidCampaign,
                           "campaign trials (wall clock)");
  }

  const Program program = ResolveCampaignProgram(spec.workload);

  // Trial cores optionally carry the invariant checker; the golden run below
  // always executes unchecked (it defines reference behaviour, and a clean
  // machine never violates). The probe replica exists before the golden run
  // so the trial specs (and the fast-path capture plan derived from them)
  // can be handed to the recorder.
  CoreConfig trial_cfg = spec.core;
  trial_cfg.check_invariants = checked;
  Core probe(trial_cfg, program);

  CampaignResult result;
  result.spec = spec;
  for (int c = 0; c < kNumStateCats; ++c)
    result.inventory[c] = probe.registry().Inventory(static_cast<StateCat>(c));

  const std::uint64_t bits = probe.registry().InjectableBits(spec.include_ram);
  const std::vector<TrialSpec> specs = MakeTrialSpecs(spec, bits);
  const std::size_t n = specs.size();

  // Trial fast path: tell the recorder which injection cycles to
  // delta-snapshot and which words' first accesses to track. Checked
  // campaigns force the slow path (violation cycles are checkpoint-relative
  // and the pre-injection advance must execute under the checker too);
  // everything else is byte-identical either way.
  const bool fast = opt.fast_path && !checked;
  FastPathPlan plan;
  if (fast) plan = PlanFastPath(spec.golden, specs, probe.registry());

  if (opt.verbose)
    std::fprintf(stderr, "[campaign %s] recording golden run...\n",
                 key.c_str());
  std::shared_ptr<const GoldenRun> golden;
  {
    std::optional<obs::ScopedTimer> timed;
    if (metrics) timed.emplace(metrics->GetTimer("campaign.golden_record"));
    golden = RecordGolden(spec.core, program, spec.golden, &opt.obs.sinks,
                          fast ? &plan : nullptr);
  }
  {
    obs::Event e;
    e.kind = obs::EventKind::kGoldenDone;
    e.value = golden->checkpoints.size();
    emit(std::move(e));
  }
  emit_metrics_snapshot();

  result.golden_ipc = golden->stats.Ipc();
  result.golden_bp_accuracy =
      golden->stats.branches
          ? 1.0 - static_cast<double>(golden->stats.mispredicts) /
                      static_cast<double>(golden->stats.branches)
          : 0.0;
  result.golden_dcache_misses = golden->stats.dcache_misses;

  result.trials.resize(n);
  if (tracing) result.prop_traces.resize(n);
  std::vector<TrialTiming> timing(n);

  // Checkpoint journaling. TFI_CHECKPOINT_EVERY overrides the option so
  // smoke tests can force tiny intervals on any binary. Trace-collecting
  // runs never journal: the journal holds records only, and a resumed
  // prefix without its traces would break trace/record parallelism.
  const std::int64_t every_env =
      EnvInt("TFI_CHECKPOINT_EVERY", opt.checkpoint_every);
  const std::uint64_t journal_every = (!tracing && !checked && every_env > 0)
                                          ? static_cast<std::uint64_t>(every_env)
                                          : 0;

  // Per-trial completion flags: the release store in the worker pairs with
  // the acquire scan in the checkpointer, making the record slots of the
  // contiguous completed prefix safe to read while other trials still run.
  auto completed = std::make_unique<std::atomic<bool>[]>(n);
  std::size_t resumed = 0;
  if (journal_every) {
    if (auto ckpt = LoadCampaignCheckpoint(spec)) {
      resumed = std::min(ckpt->size(), n);
      for (std::size_t i = 0; i < resumed; ++i) {
        result.trials[i] = (*ckpt)[i];
        completed[i].store(true, std::memory_order_relaxed);
      }
      if (metrics && resumed)
        metrics->GetCounter("campaign.checkpoint.resumed_trials")
            .Inc(resumed);
      if (opt.verbose && resumed)
        std::fprintf(stderr,
                     "[campaign %s] resumed %zu/%zu trials from checkpoint\n",
                     key.c_str(), resumed, n);
    }
  }

  const int jobs = std::min(
      ResolveJobs(opt.jobs),
      static_cast<int>(std::max<std::size_t>(n - resumed, 1)));
  // Wall epoch for the chrome campaign lane and its instant markers; trial
  // completion counting moved into the event journal (ProgressSink).
  const Clock::time_point wall_epoch = Clock::now();
  std::atomic<std::uint64_t> done{resumed};
  std::atomic<std::size_t> next{resumed};
  std::vector<std::string> errmsgs(n);
  std::vector<QuarantinedTrial::Reason> reasons(
      n, QuarantinedTrial::Reason::kException);
  // Per-trial per-kind invariant-violation counts (checked campaigns only).
  // Collected in per-index slots and summed after the pool joins, so the
  // exported check.violations.* totals are identical at every `jobs` value.
  using KindCounts = std::array<std::uint64_t, check::kNumInvariantKinds>;
  std::vector<KindCounts> viol_counts(checked ? n : 0, KindCounts{});

  // Campaign-lane happenings (retry, quarantine, checkpoint flush,
  // cancellation) surface in the chrome trace as instant markers. Workers
  // collect them under a mutex during the run; they are emitted into the
  // writer (which is not thread-safe) only after the pool joins.
  struct Marker {
    std::string name;
    std::uint64_t ts_us;
    obs::ChromeTraceWriter::Args args;
  };
  std::vector<Marker> markers;
  std::mutex markers_mu;
  auto add_marker = [&](const char* name, obs::ChromeTraceWriter::Args args) {
    if (!chrome) return;
    const std::uint64_t ts = ElapsedUs(wall_epoch, Clock::now());
    std::lock_guard<std::mutex> lock(markers_mu);
    markers.push_back({name, ts, std::move(args)});
  };

  // Flushes the journal with the current contiguous completed prefix.
  // Serialized by the mutex; cheap no-op when the prefix hasn't advanced
  // past what's already on disk.
  std::mutex ckpt_mu;
  std::size_t ckpt_prefix = resumed;   // all three guarded by ckpt_mu
  std::size_t ckpt_flushed = resumed;
  // Checkpoint containment: StoreCampaignCheckpoint already retries with
  // backoff internally; a flush that still fails (disk full, permissions)
  // disables checkpointing for the rest of the run — one stderr warning,
  // one kCheckpointDisabled event — instead of hammering a dead disk every
  // interval. The campaign itself continues unharmed; only resumability of
  // THIS run is lost.
  bool ckpt_disabled = false;
  auto FlushCheckpoint = [&] {
    if (!journal_every) return;
    std::lock_guard<std::mutex> lock(ckpt_mu);
    if (ckpt_disabled) return;
    while (ckpt_prefix < n &&
           completed[ckpt_prefix].load(std::memory_order_acquire))
      ++ckpt_prefix;
    if (ckpt_prefix == ckpt_flushed) return;
    const std::vector<TrialRecord> prefix(
        result.trials.begin(),
        result.trials.begin() + static_cast<std::ptrdiff_t>(ckpt_prefix));
    if (!StoreCampaignCheckpoint(spec, prefix, metrics)) {
      ckpt_disabled = true;
      std::fprintf(stderr,
                   "[campaign %s] checkpoint flush failed; checkpointing "
                   "disabled for the rest of this run\n",
                   key.c_str());
      if (journal) {
        obs::Event e;
        e.kind = obs::EventKind::kCheckpointDisabled;
        e.detail = "checkpoint flush failed; checkpointing disabled";
        journal->Emit(std::move(e));
      }
      add_marker("checkpoint disabled", {});
      return;
    }
    {
      ckpt_flushed = ckpt_prefix;
      add_marker("checkpoint flush",
                 {{"prefix", std::to_string(ckpt_flushed)}});
      if (journal) {
        obs::Event e;
        e.kind = obs::EventKind::kCheckpointFlush;
        e.value = ckpt_flushed;
        journal->Emit(std::move(e));
      }
      // Safe snapshot point: ckpt_mu serializes flushes, and the flushing
      // worker is the only thread touching the registry mid-loop (trial
      // cores carry no sinks; golden-run instruments are quiescent).
      emit_metrics_snapshot();
    }
  };

  // Execution policy for every worker's TrialRunner: the retry/quarantine
  // loop and the checked-run handling live in the runner; the campaign adds
  // telemetry through its hooks and collects results in per-index slots.
  TrialPolicy policy;
  policy.fast_path = fast;
  policy.retries = opt.retries;
  policy.check_invariants = checked;
  // Trial containment: the per-attempt watchdog deadline. TFI_TRIAL_TIMEOUT
  // overrides the option so smoke tests can arm it on any binary.
  policy.timeout_ms = EnvInt("TFI_TRIAL_TIMEOUT", opt.trial_timeout_ms);

  // One worker's share of the campaign: pull the next unclaimed trial index
  // and run it on a private TrialRunner against the shared golden run.
  // Results land in per-index slots, so collection order never depends on
  // scheduling. Cancellation drains: in-flight trials finish, no new ones
  // start. Worker 0 doubles as the progress printer.
  auto work = [&](TrialRunner& runner, int worker) {
    std::size_t cur = 0;  // trial index the hooks below report against
    TrialRunner::Hooks hooks;
    hooks.before_attempt = [&] {
      if (opt.trial_fault_hook) opt.trial_fault_hook(cur);
    };
    hooks.on_retry = [&](int attempt, const std::string& error) {
      if (journal) {
        obs::Event ev;
        ev.kind = obs::EventKind::kTrialRetry;
        ev.trial = static_cast<std::int64_t>(cur);
        ev.value = static_cast<std::uint64_t>(attempt);
        ev.detail = error;
        journal->Emit(std::move(ev));
      }
      add_marker("trial retry",
                 {{"trial", std::to_string(cur)}, {"error", error}});
    };
    for (;;) {
      if (opt.cancel && opt.cancel->cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      cur = i;
      const auto t0 = Clock::now();
      TrialRunner::Result res = runner.Run(specs[i], tracing, &hooks);
      const auto t1 = Clock::now();
      if (res.quarantined) {
        errmsgs[i] = res.error;
        if (res.timed_out) reasons[i] = QuarantinedTrial::Reason::kTimeout;
        if (checked) {
          // Per-kind violation tallies for the check.violations.* totals.
          if (const check::InvariantChecker* chk =
                  runner.core().invariant_checker();
              chk && chk->total() != 0) {
            for (int k = 0; k < check::kNumInvariantKinds; ++k)
              viol_counts[i][static_cast<std::size_t>(k)] =
                  chk->CountFor(static_cast<check::InvariantKind>(k));
          }
        }
        if (journal) {
          obs::Event ev;
          ev.kind = res.timed_out ? obs::EventKind::kTrialTimeout
                                  : obs::EventKind::kTrialQuarantine;
          ev.trial = static_cast<std::int64_t>(i);
          if (res.timed_out)
            ev.value = static_cast<std::uint64_t>(policy.timeout_ms);
          ev.detail = errmsgs[i];
          journal->Emit(std::move(ev));
        }
        add_marker(res.timed_out ? "trial timeout" : "trial quarantined",
                   {{"trial", std::to_string(i)}, {"error", errmsgs[i]}});
      }
      result.trials[i] = res.record;
      if (tracing) result.prop_traces[i] = std::move(res.trace);
      timing[i] = {ElapsedUs(wall_epoch, t0), ElapsedUs(t0, t1), worker};
      completed[i].store(true, std::memory_order_release);
      if (journal) {
        // The injection site resolved to its registry field: the replica's
        // registry layout is identical across cores of the same
        // config/program, so this is a pure read that never perturbs the
        // trial. Propagation latencies join in when tracing (-1 = silent).
        const InjectionSite site = ResolveInjectionSite(
            golden->spec, specs[i], runner.core().registry());
        const BitLocation& loc = site.primary;
        obs::Event ev;
        ev.kind = obs::EventKind::kTrialDone;
        ev.trial = static_cast<std::int64_t>(i);
        ev.outcome = res.record.outcome;
        ev.mode = res.record.mode;
        // Site category/storage come from the resolved location, not the
        // record: a quarantined record carries defaults, but the injection
        // site is still real.
        ev.cat = loc.cat;
        ev.storage = loc.storage;
        ev.cycles = res.record.cycles;
        ev.dur_us = ElapsedUs(t0, t1);
        ev.field = loc.name;
        ev.field_bits =
            runner.core().registry().FieldInfoAt(loc.field_index).bits();
        if (tracing) {
          ev.arch_divergence_cycle = result.prop_traces[i].arch_divergence_cycle;
          ev.first_spread_cycle = result.prop_traces[i].first_spread_cycle;
        }
        journal->Emit(std::move(ev));
      }
      const std::uint64_t d =
          done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (journal_every && d % journal_every == 0) FlushCheckpoint();

      if (worker == 0 && !opt.obs.progress && opt.verbose &&
          d % 200 < static_cast<std::uint64_t>(jobs)) {
        std::fprintf(stderr, "[campaign %s] %llu/%d trials\n", key.c_str(),
                     (unsigned long long)d, spec.trials);
      }
    }
  };

  // Crash containment: forked-worker execution (inject/isolate.h). Tracing
  // and checked runs need the trial core in this process (traces and checker
  // state don't cross the pipe), so they fall back to in-process execution.
  const bool isolate = [&] {
    if (!opt.isolate_trials) return false;
    if (tracing || checked) {
      std::fprintf(stderr,
                   "[campaign %s] --isolate-trials is incompatible with "
                   "propagation tracing and checked runs; executing "
                   "in-process\n",
                   key.c_str());
      return false;
    }
    if (!IsolationSupported()) {
      std::fprintf(stderr,
                   "[campaign %s] trial isolation is not supported on this "
                   "platform; executing in-process\n",
                   key.c_str());
      return false;
    }
    return true;
  }();

  {
    std::optional<obs::ScopedTimer> loop_timer;
    if (metrics) loop_timer.emplace(metrics->GetTimer("campaign.trial_loop"));
    if (isolate) {
      IsolateOptions iso;
      iso.jobs = jobs;
      iso.policy = policy;
      iso.max_restarts = opt.max_worker_restarts;
      iso.cancel = opt.cancel;
      iso.before_trial = opt.trial_fault_hook;
      iso.verbose = opt.verbose;
      // The supervisor invokes this serially (its own thread) per finished
      // trial — the isolate-mode body of the `work` lambda above, minus the
      // runner-local bits (site resolution uses the probe replica, whose
      // registry layout is identical).
      std::uint64_t done_ct = resumed;
      const IsolateReport rep = RunTrialsIsolated(
          golden, specs, resumed, iso, [&](IsolatedTrial&& t) {
            const std::size_t i = t.index;
            result.trials[i] = t.record;
            const std::uint64_t now_us = ElapsedUs(wall_epoch, Clock::now());
            timing[i] = {now_us >= t.dur_us ? now_us - t.dur_us : 0,
                         t.dur_us, t.worker};
            if (t.quarantined) {
              errmsgs[i] = t.error;
              reasons[i] = t.budget_exhausted
                               ? QuarantinedTrial::Reason::kBudget
                           : t.crashed ? QuarantinedTrial::Reason::kCrash
                           : t.timed_out
                               ? QuarantinedTrial::Reason::kTimeout
                               : QuarantinedTrial::Reason::kException;
              if (journal) {
                obs::Event ev;
                ev.trial = static_cast<std::int64_t>(i);
                ev.detail = t.error;
                if (t.crashed) {
                  ev.kind = obs::EventKind::kTrialCrash;
                  ev.value = t.status;
                } else if (t.timed_out) {
                  ev.kind = obs::EventKind::kTrialTimeout;
                  ev.value = static_cast<std::uint64_t>(policy.timeout_ms);
                } else {
                  ev.kind = obs::EventKind::kTrialQuarantine;
                }
                journal->Emit(std::move(ev));
              }
              add_marker(t.crashed     ? "trial crashed"
                         : t.timed_out ? "trial timeout"
                                       : "trial quarantined",
                         {{"trial", std::to_string(i)}, {"error", t.error}});
            }
            // Budget holes never ran: keeping them out of the completed[]
            // prefix keeps them out of the checkpoint journal, so a re-run
            // resumes with real execution instead of inheriting the hole.
            if (!t.budget_exhausted)
              completed[i].store(true, std::memory_order_release);
            if (journal) {
              const InjectionSite site = ResolveInjectionSite(
                  golden->spec, specs[i], probe.registry());
              const BitLocation& loc = site.primary;
              obs::Event ev;
              ev.kind = obs::EventKind::kTrialDone;
              ev.trial = static_cast<std::int64_t>(i);
              ev.outcome = result.trials[i].outcome;
              ev.mode = result.trials[i].mode;
              ev.cat = loc.cat;
              ev.storage = loc.storage;
              ev.cycles = result.trials[i].cycles;
              ev.dur_us = t.dur_us;
              ev.field = loc.name;
              ev.field_bits =
                  probe.registry().FieldInfoAt(loc.field_index).bits();
              journal->Emit(std::move(ev));
            }
            const std::uint64_t d = ++done_ct;
            done.store(d, std::memory_order_relaxed);
            if (journal_every && d % journal_every == 0) FlushCheckpoint();
          });
      result.worker_restarts = rep.restarts;
      result.containment_exhausted = rep.exhausted;
      if (metrics && rep.restarts)
        metrics->GetCounter("campaign.workers.restarts").Inc(rep.restarts);
    } else if (jobs <= 1) {
      TrialRunner runner(golden, policy);
      work(runner, 0);
    } else {
      std::vector<std::exception_ptr> errors(static_cast<std::size_t>(jobs));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(jobs));
      for (int w = 0; w < jobs; ++w) {
        pool.emplace_back([&, w] {
          try {
            TrialRunner runner(golden, policy);
            work(runner, w);
          } catch (...) {
            errors[static_cast<std::size_t>(w)] = std::current_exception();
          }
        });
      }
      for (auto& th : pool) th.join();
      for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
    }
  }
  // Interruption: keep only the contiguous completed prefix — exactly what
  // the journal holds — so the partial result, its telemetry, and a later
  // resumed run all agree on which trials exist. Trials completed out of
  // order beyond the prefix are discarded (their specs re-run on resume).
  if (opt.cancel && opt.cancel->cancelled()) {
    {
      obs::Event e;
      e.kind = obs::EventKind::kCancelRequested;
      emit(std::move(e));
    }
    add_marker("cancelled", {});
    std::size_t prefix = 0;
    while (prefix < n &&
           completed[prefix].load(std::memory_order_acquire))
      ++prefix;
    if (prefix < n) {
      FlushCheckpoint();
      result.interrupted = true;
      result.trials.resize(prefix);
      if (tracing) result.prop_traces.resize(prefix);
      timing.resize(prefix);
      if (opt.verbose)
        std::fprintf(stderr,
                     "[campaign %s] interrupted at %zu/%zu trials%s\n",
                     key.c_str(), prefix, n,
                     journal_every ? " (checkpoint flushed)" : "");
    }
  }

  // Quarantined trials, in trial-index order (messages are empty for
  // records restored from a checkpoint — diagnostics are not persisted).
  for (std::size_t i = 0; i < result.trials.size(); ++i)
    if (result.trials[i].outcome == Outcome::kTrialError)
      result.quarantined.push_back({i, errmsgs[i], reasons[i]});

  // Telemetry is emitted after the pool joins, in trial-index order, so the
  // exported counters/histograms (and the chrome span list) are identical
  // to a serial run's regardless of how trials were scheduled.
  if (metrics) EmitTrialMetrics(result.trials, *metrics);
  if (metrics) {
    // Containment-specific quarantine splits. Only emitted when nonzero so
    // a clean campaign's metrics JSON stays byte-identical to pre-watchdog
    // runs (no new always-present keys).
    std::uint64_t n_timeout = 0, n_crash = 0;
    for (const QuarantinedTrial& q : result.quarantined) {
      if (q.reason == QuarantinedTrial::Reason::kTimeout) ++n_timeout;
      if (q.reason == QuarantinedTrial::Reason::kCrash) ++n_crash;
    }
    if (n_timeout)
      metrics->GetCounter("campaign.trials.timeout").Inc(n_timeout);
    if (n_crash) metrics->GetCounter("campaign.trials.crash").Inc(n_crash);
  }
  if (metrics && checked) {
    for (int k = 0; k < check::kNumInvariantKinds; ++k) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < result.trials.size(); ++i)
        sum += viol_counts[i][static_cast<std::size_t>(k)];
      if (sum)
        metrics
            ->GetCounter(std::string("check.violations.") +
                         check::InvariantKindName(
                             static_cast<check::InvariantKind>(k)))
            .Inc(sum);
    }
  }
  if (chrome) {
    for (int w = 0; w < jobs; ++w)
      chrome->SetThreadName(obs::ChromeTraceWriter::kPidCampaign, w,
                            "trial worker " + std::to_string(w));
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      const TrialRecord& rec = result.trials[i];
      chrome->CompleteEvent(
          OutcomeName(rec.outcome), obs::ChromeTraceWriter::kPidCampaign,
          timing[i].worker, timing[i].ts_us, timing[i].dur_us,
          {{"category", StateCatName(rec.cat)},
           {"failure_mode", FailureModeName(rec.mode)},
           {"cycles", std::to_string(rec.cycles)}});
    }
    // Instant markers last, in time order (workers appended them in
    // completion order, which needn't be monotone across threads).
    std::sort(markers.begin(), markers.end(),
              [](const Marker& a, const Marker& b) { return a.ts_us < b.ts_us; });
    for (const Marker& m : markers)
      chrome->InstantEvent(m.name, obs::ChromeTraceWriter::kPidCampaign,
                           m.ts_us, m.args);
  }

  if (!result.interrupted && result.containment_exhausted) {
    // Budget holes are synthesized, not executed: never cache them, keep
    // the checkpoint journal (which holds only genuinely executed trials,
    // thanks to the completed[] gating above) and flush it one last time so
    // a re-run resumes from the largest real prefix.
    FlushCheckpoint();
  } else if (!result.interrupted) {
    if (opt.use_cache && !checked &&
        StoreCachedCampaign(result, metrics)) {
      obs::Event e;
      e.kind = obs::EventKind::kCacheStore;
      e.value = result.trials.size();
      emit(std::move(e));
    }
    // The journal is subsumed by the completed result; drop it so the next
    // run of this CacheKey starts clean (or hits the cache).
    if (journal_every) RemoveCampaignCheckpoint(spec);
  }
  finish_journal(result.trials.size(), result.interrupted);
  return result;
}

CampaignResult MergeResults(const std::vector<CampaignResult>& parts) {
  CampaignResult merged;
  if (parts.empty()) return merged;
  // An aggregate is only meaningful across campaigns of the same injected
  // machine: the parts may differ in workload (that is the point) but not in
  // protection config, fault model, injection population or state inventory.
  const CampaignSpec& first = parts.front().spec;
  for (const auto& p : parts) {
    const auto& fp = first.core.protect;
    const auto& pp = p.spec.core.protect;
    const bool same_protect = fp.timeout_counter == pp.timeout_counter &&
                              fp.regfile_ecc == pp.regfile_ecc &&
                              fp.regptr_ecc == pp.regptr_ecc &&
                              fp.insn_parity == pp.insn_parity;
    bool same_inventory = true;
    for (int c = 0; c < kNumStateCats; ++c)
      same_inventory &=
          p.inventory[c].latch_bits == parts.front().inventory[c].latch_bits &&
          p.inventory[c].ram_bits == parts.front().inventory[c].ram_bits;
    if (!same_protect || p.spec.include_ram != first.include_ram ||
        p.spec.flips != first.flips || p.spec.adjacent != first.adjacent ||
        !same_inventory)
      throw std::invalid_argument(
          "MergeResults: incompatible campaign specs (workload '" +
          p.spec.workload + "' differs from '" + first.workload +
          "' in protection/fault model/inventory)");
  }
  merged.spec = first;
  merged.spec.workload = "aggregate";
  merged.inventory = parts.front().inventory;
  double ipc = 0, bp = 0;
  std::uint64_t dmiss = 0;
  for (const auto& p : parts) {
    merged.trials.insert(merged.trials.end(), p.trials.begin(),
                         p.trials.end());
    merged.prop_traces.insert(merged.prop_traces.end(), p.prop_traces.begin(),
                              p.prop_traces.end());
    ipc += p.golden_ipc;
    bp += p.golden_bp_accuracy;
    dmiss += p.golden_dcache_misses;
  }
  merged.golden_ipc = ipc / static_cast<double>(parts.size());
  merged.golden_bp_accuracy = bp / static_cast<double>(parts.size());
  merged.golden_dcache_misses = dmiss;
  return merged;
}

std::vector<CampaignResult> RunSuite(CampaignSpec spec,
                                     const CampaignOptions& opt) {
  std::vector<CampaignResult> out;
  for (const auto& w : AllWorkloads()) {
    spec.workload = w.name;
    out.push_back(RunCampaign(spec, opt));
  }
  return out;
}

}  // namespace tfsim
