#include "inject/campaign.h"

#include <cstdio>
#include <sstream>

#include "inject/cache.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {

std::string CampaignSpec::CacheKey() const {
  // Versioned content hash over everything that affects results. Bump the
  // salt when the model or classifier changes behaviour.
  constexpr std::uint64_t kVersionSalt = 8;
  std::uint64_t h = Mix64(kVersionSalt);
  for (char c : workload) h = Mix64(h ^ static_cast<std::uint64_t>(c));
  const auto& p = core.protect;
  h = Mix64(h ^ (static_cast<std::uint64_t>(p.timeout_counter) |
                 static_cast<std::uint64_t>(p.regfile_ecc) << 1 |
                 static_cast<std::uint64_t>(p.regptr_ecc) << 2 |
                 static_cast<std::uint64_t>(p.insn_parity) << 3));
  h = Mix64(h ^ static_cast<std::uint64_t>(include_ram));
  h = Mix64(h ^ static_cast<std::uint64_t>(trials));
  h = Mix64(h ^ golden.warmup);
  h = Mix64(h ^ static_cast<std::uint64_t>(golden.points));
  h = Mix64(h ^ golden.spacing);
  h = Mix64(h ^ golden.window);
  h = Mix64(h ^ seed);
  h = Mix64(h ^ (static_cast<std::uint64_t>(flips) << 8));
  h = Mix64(h ^ static_cast<std::uint64_t>(adjacent));
  std::ostringstream os;
  os << workload << (include_ram ? "_lr" : "_l")
     << (p.timeout_counter || p.regfile_ecc || p.regptr_ecc || p.insn_parity
             ? "_prot"
             : "_base")
     << "_" << std::hex << h;
  return os.str();
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcome() const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcomeForCat(
    StateCat cat) const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes> CampaignResult::ByFailureMode()
    const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.mode)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes>
CampaignResult::ByFailureModeForCat(StateCat cat) const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.mode)]++;
  return out;
}

std::uint64_t CampaignResult::TrialsForCat(StateCat cat) const {
  std::uint64_t n = 0;
  for (const auto& t : trials)
    if (t.cat == cat) ++n;
  return n;
}

Proportion CampaignResult::FailureRate() const {
  const auto o = ByOutcome();
  const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                               o[static_cast<int>(Outcome::kTerminated)];
  return MakeProportion(failed, trials.size());
}

CampaignResult RunCampaign(const CampaignSpec& spec, bool verbose) {
  if (auto cached = LoadCachedCampaign(spec)) {
    if (verbose)
      std::fprintf(stderr, "[campaign %s] loaded %zu trials from cache\n",
                   spec.CacheKey().c_str(), cached->trials.size());
    return *cached;
  }

  const WorkloadInfo& info = WorkloadByName(spec.workload);
  const Program program = BuildWorkload(info, kCampaignIters);
  if (verbose)
    std::fprintf(stderr, "[campaign %s] recording golden run...\n",
                 spec.CacheKey().c_str());
  const auto golden = RecordGolden(spec.core, program, spec.golden);

  CampaignResult result;
  result.spec = spec;
  result.golden_ipc = golden->stats.Ipc();
  result.golden_bp_accuracy =
      golden->stats.branches
          ? 1.0 - static_cast<double>(golden->stats.mispredicts) /
                      static_cast<double>(golden->stats.branches)
          : 0.0;
  result.golden_dcache_misses = golden->stats.dcache_misses;

  Core core(spec.core, program);
  for (int c = 0; c < kNumStateCats; ++c)
    result.inventory[c] = core.registry().Inventory(static_cast<StateCat>(c));

  Rng rng(spec.seed);
  const std::uint64_t bits = core.registry().InjectableBits(spec.include_ram);
  result.trials.reserve(static_cast<std::size_t>(spec.trials));
  for (int t = 0; t < spec.trials; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(
        rng.NextBelow(static_cast<std::uint64_t>(spec.golden.points)));
    ts.offset = rng.NextBelow(spec.golden.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    ts.include_ram = spec.include_ram;
    ts.flips = spec.flips;
    ts.adjacent = spec.adjacent;
    result.trials.push_back(RunTrial(core, *golden, ts));
    if (verbose && (t + 1) % 200 == 0)
      std::fprintf(stderr, "[campaign %s] %d/%d trials\n",
                   spec.CacheKey().c_str(), t + 1, spec.trials);
  }

  StoreCachedCampaign(result);
  return result;
}

CampaignResult MergeResults(const std::vector<CampaignResult>& parts) {
  CampaignResult merged;
  if (parts.empty()) return merged;
  merged.spec = parts.front().spec;
  merged.spec.workload = "aggregate";
  merged.inventory = parts.front().inventory;
  double ipc = 0;
  for (const auto& p : parts) {
    merged.trials.insert(merged.trials.end(), p.trials.begin(),
                         p.trials.end());
    ipc += p.golden_ipc;
  }
  merged.golden_ipc = ipc / static_cast<double>(parts.size());
  return merged;
}

std::vector<CampaignResult> RunSuite(CampaignSpec spec, bool verbose) {
  std::vector<CampaignResult> out;
  for (const auto& w : AllWorkloads()) {
    spec.workload = w.name;
    out.push_back(RunCampaign(spec, verbose));
  }
  return out;
}

}  // namespace tfsim
