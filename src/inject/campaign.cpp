#include "inject/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "check/invariants.h"
#include "inject/cache.h"
#include "inject/trial.h"
#include "obs/chrome_trace.h"
#include "obs/metrics.h"
#include "util/argparse.h"
#include "util/env.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {

std::string CampaignSpec::CacheKey() const {
  // Versioned content hash over everything that affects results. Bump the
  // salt when the model or classifier changes behaviour.
  constexpr std::uint64_t kVersionSalt = 9;  // 9: store-buffer-forward
                                             // order-violation fix
  std::uint64_t h = Mix64(kVersionSalt);
  for (char c : workload) h = Mix64(h ^ static_cast<std::uint64_t>(c));
  const auto& p = core.protect;
  h = Mix64(h ^ (static_cast<std::uint64_t>(p.timeout_counter) |
                 static_cast<std::uint64_t>(p.regfile_ecc) << 1 |
                 static_cast<std::uint64_t>(p.regptr_ecc) << 2 |
                 static_cast<std::uint64_t>(p.insn_parity) << 3));
  h = Mix64(h ^ static_cast<std::uint64_t>(include_ram));
  h = Mix64(h ^ static_cast<std::uint64_t>(trials));
  h = Mix64(h ^ golden.warmup);
  h = Mix64(h ^ static_cast<std::uint64_t>(golden.points));
  h = Mix64(h ^ golden.spacing);
  h = Mix64(h ^ golden.window);
  h = Mix64(h ^ seed);
  h = Mix64(h ^ (static_cast<std::uint64_t>(flips) << 8));
  h = Mix64(h ^ static_cast<std::uint64_t>(adjacent));
  std::ostringstream os;
  os << workload << (include_ram ? "_lr" : "_l")
     << (p.timeout_counter || p.regfile_ecc || p.regptr_ecc || p.insn_parity
             ? "_prot"
             : "_base")
     << "_" << std::hex << h;
  return os.str();
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcome() const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumOutcomes> CampaignResult::ByOutcomeForCat(
    StateCat cat) const {
  std::array<std::uint64_t, kNumOutcomes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.outcome)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes> CampaignResult::ByFailureMode()
    const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials) out[static_cast<int>(t.mode)]++;
  return out;
}

std::array<std::uint64_t, kNumFailureModes>
CampaignResult::ByFailureModeForCat(StateCat cat) const {
  std::array<std::uint64_t, kNumFailureModes> out{};
  for (const auto& t : trials)
    if (t.cat == cat) out[static_cast<int>(t.mode)]++;
  return out;
}

std::uint64_t CampaignResult::TrialsForCat(StateCat cat) const {
  std::uint64_t n = 0;
  for (const auto& t : trials)
    if (t.cat == cat) ++n;
  return n;
}

Proportion CampaignResult::FailureRate() const {
  const auto o = ByOutcome();
  const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                               o[static_cast<int>(Outcome::kTerminated)];
  // Quarantined trials (kTrialError) are holes in the sample, not machine
  // behaviour; they leave the denominator rather than diluting the rate.
  std::uint64_t sample = 0;
  for (int i = 0; i < kNumPaperOutcomes; ++i) sample += o[i];
  return MakeProportion(failed, sample);
}

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ElapsedUs(Clock::time_point since, Clock::time_point t) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - since)
          .count());
}

// Trial progress shared between the workers and the printer (worker 0).
// Plain atomics: these feed progress lines only, never results or metrics.
struct TrialProgress {
  Clock::time_point start = Clock::now();
  Clock::time_point last_line = start;
  std::atomic<std::uint64_t> done{0};
  std::array<std::atomic<std::uint64_t>, kNumOutcomes> outcomes{};

  void PrintLine(const std::string& key, int total, bool final_line) {
    const double secs =
        static_cast<double>(ElapsedUs(start, Clock::now())) * 1e-6;
    const std::uint64_t d = done.load(std::memory_order_relaxed);
    std::fprintf(
        stderr,
        "[campaign %s] %llu/%d trials  %.1f trials/s  "
        "match=%llu term=%llu sdc=%llu gray=%llu err=%llu%s\n",
        key.c_str(), (unsigned long long)d, total,
        secs > 0 ? static_cast<double>(d) / secs : 0.0,
        (unsigned long long)outcomes[0].load(std::memory_order_relaxed),
        (unsigned long long)outcomes[1].load(std::memory_order_relaxed),
        (unsigned long long)outcomes[2].load(std::memory_order_relaxed),
        (unsigned long long)outcomes[3].load(std::memory_order_relaxed),
        (unsigned long long)outcomes[4].load(std::memory_order_relaxed),
        final_line ? " [done]" : "");
  }
};

// Wall-clock span of one trial, for the chrome campaign lane. Filled by the
// executing worker; read only after the pool joins.
struct TrialTiming {
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  int worker = 0;
};

// The deterministic stand-in record for a trial whose execution threw: the
// quarantine outcome with every machine-derived field at its default, so a
// quarantined slot is byte-identical at any `jobs` value and after resume.
TrialRecord QuarantineRecord() {
  TrialRecord rec;
  rec.outcome = Outcome::kTrialError;
  return rec;
}

// Replays a campaign's per-trial counters and histograms into `m`, in trial
// order. Used both by live runs after the pool joins (so counter totals and
// Welford histogram summaries are byte-identical at every `jobs` value) and
// by cache hits (so a metrics-attached run that loads cached results still
// reports the same campaign.* totals as the live run that produced them).
void EmitTrialMetrics(const std::vector<TrialRecord>& trials,
                      obs::MetricsRegistry& m) {
  obs::Counter& total = m.GetCounter("campaign.trials");
  obs::Counter& quarantined = m.GetCounter("campaign.trials.quarantined");
  obs::Histogram& cycles = m.GetHistogram("campaign.trial_cycles", 512, 20);
  for (const TrialRecord& rec : trials) {
    total.Inc();
    m.GetCounter(std::string("campaign.outcome.") + OutcomeName(rec.outcome))
        .Inc();
    if (rec.outcome == Outcome::kTrialError) quarantined.Inc();
    cycles.Add(rec.cycles);
  }
}

}  // namespace

std::vector<TrialSpec> MakeTrialSpecs(const CampaignSpec& spec,
                                      std::uint64_t injectable_bits) {
  Rng rng(spec.seed);
  std::vector<TrialSpec> specs;
  specs.reserve(static_cast<std::size_t>(spec.trials));
  for (int t = 0; t < spec.trials; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(
        rng.NextBelow(static_cast<std::uint64_t>(spec.golden.points)));
    ts.offset = rng.NextBelow(spec.golden.offset_max);
    ts.bit_index = rng.NextBelow(injectable_bits);
    ts.include_ram = spec.include_ram;
    ts.flips = spec.flips;
    ts.adjacent = spec.adjacent;
    specs.push_back(ts);
  }
  return specs;
}

CampaignResult RunCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opt) {
  obs::MetricsRegistry* metrics = opt.obs.sinks.metrics;
  obs::ChromeTraceWriter* chrome = opt.obs.sinks.chrome;
  const bool tracing = opt.obs.collect_prop_traces;
  // Checked campaigns run every trial core with the per-cycle invariant
  // checker and quarantine structural violations. The CacheKey deliberately
  // does not hash execution options, so checked runs (whose quarantine
  // decisions differ from unchecked ones) must bypass the cache and the
  // checkpoint journal in both directions.
  const bool checked = opt.check_invariants || spec.core.check_invariants;

  // Per-trial artifacts (propagation traces, chrome spans) record live
  // execution and are never cached, so runs collecting them always execute.
  // Metrics-attached runs may load cached results: the campaign.* counters
  // and histograms are replayed from the cached records (identical totals to
  // a live run), and the hit itself becomes observable.
  if (opt.use_cache && !tracing && !chrome && !checked) {
    if (auto cached = LoadCachedCampaign(spec)) {
      if (metrics) {
        metrics->GetCounter("campaign.cache.hits").Inc();
        EmitTrialMetrics(cached->trials, *metrics);
      }
      if (opt.verbose)
        std::fprintf(stderr, "[campaign %s] loaded %zu trials from cache\n",
                     spec.CacheKey().c_str(), cached->trials.size());
      return *cached;
    }
  }
  if (metrics) metrics->GetCounter("campaign.cache.misses").Inc();
  if (chrome) {
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidPipeline,
                           "pipeline occupancy (golden run, 1us = 1 cycle)");
    chrome->SetProcessName(obs::ChromeTraceWriter::kPidCampaign,
                           "campaign trials (wall clock)");
  }

  const WorkloadInfo& info = WorkloadByName(spec.workload);
  const Program program = BuildWorkload(info, kCampaignIters);
  if (opt.verbose)
    std::fprintf(stderr, "[campaign %s] recording golden run...\n",
                 spec.CacheKey().c_str());
  std::shared_ptr<const GoldenRun> golden;
  {
    std::optional<obs::ScopedTimer> timed;
    if (metrics) timed.emplace(metrics->GetTimer("campaign.golden_record"));
    golden = RecordGolden(spec.core, program, spec.golden, &opt.obs.sinks);
  }

  CampaignResult result;
  result.spec = spec;
  result.golden_ipc = golden->stats.Ipc();
  result.golden_bp_accuracy =
      golden->stats.branches
          ? 1.0 - static_cast<double>(golden->stats.mispredicts) /
                      static_cast<double>(golden->stats.branches)
          : 0.0;
  result.golden_dcache_misses = golden->stats.dcache_misses;

  // Trial cores optionally carry the invariant checker; the golden run above
  // always executes unchecked (it defines reference behaviour, and a clean
  // machine never violates).
  CoreConfig trial_cfg = spec.core;
  trial_cfg.check_invariants = checked;
  Core core(trial_cfg, program);
  for (int c = 0; c < kNumStateCats; ++c)
    result.inventory[c] = core.registry().Inventory(static_cast<StateCat>(c));

  const std::uint64_t bits = core.registry().InjectableBits(spec.include_ram);
  const std::vector<TrialSpec> specs = MakeTrialSpecs(spec, bits);
  const std::size_t n = specs.size();
  result.trials.resize(n);
  if (tracing) result.prop_traces.resize(n);
  std::vector<TrialTiming> timing(n);

  // Checkpoint journaling. TFI_CHECKPOINT_EVERY overrides the option so
  // smoke tests can force tiny intervals on any binary. Trace-collecting
  // runs never journal: the journal holds records only, and a resumed
  // prefix without its traces would break trace/record parallelism.
  const std::int64_t every_env =
      EnvInt("TFI_CHECKPOINT_EVERY", opt.checkpoint_every);
  const std::uint64_t journal_every = (!tracing && !checked && every_env > 0)
                                          ? static_cast<std::uint64_t>(every_env)
                                          : 0;

  // Per-trial completion flags: the release store in the worker pairs with
  // the acquire scan in the checkpointer, making the record slots of the
  // contiguous completed prefix safe to read while other trials still run.
  auto completed = std::make_unique<std::atomic<bool>[]>(n);
  std::size_t resumed = 0;
  if (journal_every) {
    if (auto ckpt = LoadCampaignCheckpoint(spec)) {
      resumed = std::min(ckpt->size(), n);
      for (std::size_t i = 0; i < resumed; ++i) {
        result.trials[i] = (*ckpt)[i];
        completed[i].store(true, std::memory_order_relaxed);
      }
      if (metrics && resumed)
        metrics->GetCounter("campaign.checkpoint.resumed_trials")
            .Inc(resumed);
      if (opt.verbose && resumed)
        std::fprintf(stderr,
                     "[campaign %s] resumed %zu/%zu trials from checkpoint\n",
                     spec.CacheKey().c_str(), resumed, n);
    }
  }

  const int jobs = std::min(
      ResolveJobs(opt.jobs),
      static_cast<int>(std::max<std::size_t>(n - resumed, 1)));
  TrialProgress progress;
  for (std::size_t i = 0; i < resumed; ++i)
    progress.outcomes[static_cast<int>(result.trials[i].outcome)].fetch_add(
        1, std::memory_order_relaxed);
  progress.done.store(resumed, std::memory_order_relaxed);
  std::atomic<std::size_t> next{resumed};
  std::vector<std::string> errmsgs(n);
  // Per-trial per-kind invariant-violation counts (checked campaigns only).
  // Collected in per-index slots and summed after the pool joins, so the
  // exported check.violations.* totals are identical at every `jobs` value.
  using KindCounts = std::array<std::uint64_t, check::kNumInvariantKinds>;
  std::vector<KindCounts> viol_counts(checked ? n : 0, KindCounts{});

  // Flushes the journal with the current contiguous completed prefix.
  // Serialized by the mutex; cheap no-op when the prefix hasn't advanced
  // past what's already on disk.
  std::mutex ckpt_mu;
  std::size_t ckpt_prefix = resumed;   // both guarded by ckpt_mu
  std::size_t ckpt_flushed = resumed;
  auto FlushCheckpoint = [&] {
    if (!journal_every) return;
    std::lock_guard<std::mutex> lock(ckpt_mu);
    while (ckpt_prefix < n &&
           completed[ckpt_prefix].load(std::memory_order_acquire))
      ++ckpt_prefix;
    if (ckpt_prefix == ckpt_flushed) return;
    const std::vector<TrialRecord> prefix(
        result.trials.begin(),
        result.trials.begin() + static_cast<std::ptrdiff_t>(ckpt_prefix));
    if (StoreCampaignCheckpoint(spec, prefix, metrics))
      ckpt_flushed = ckpt_prefix;
  };

  // One worker's share of the campaign: pull the next unclaimed trial index
  // and run it on a private core replica against the shared golden run.
  // Results land in per-index slots, so collection order never depends on
  // scheduling. A trial whose execution throws is re-attempted up to
  // `retries` times, then quarantined as a kTrialError record instead of
  // poisoning the campaign. Cancellation drains: in-flight trials finish,
  // no new ones start. Worker 0 doubles as the progress printer.
  auto work = [&](Core& worker_core, int worker) {
    for (;;) {
      if (opt.cancel && opt.cancel->cancelled()) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      obs::PropagationTrace trace;
      const auto t0 = Clock::now();
      TrialRecord rec;
      bool ok = false;
      const int attempts = 1 + std::max(opt.retries, 0);
      for (int attempt = 0; attempt < attempts && !ok; ++attempt) {
        try {
          if (opt.trial_fault_hook) opt.trial_fault_hook(i);
          obs::PropagationTrace attempt_trace;
          rec = RunTrial(worker_core, *golden, specs[i],
                         tracing ? &attempt_trace : nullptr);
          trace = std::move(attempt_trace);
          ok = true;
        } catch (const std::exception& e) {
          errmsgs[i] = e.what();
        } catch (...) {
          errmsgs[i] = "non-standard exception";
        }
      }
      if (!ok) rec = QuarantineRecord();
      // Checked campaigns: a trial whose injected fault broke a structural
      // invariant is quarantined like a throwing trial — its classification
      // ran on a machine the checker proved inconsistent. The propagation
      // trace (which already carries the violation details) is kept.
      if (ok && checked) {
        if (const check::InvariantChecker* chk =
                worker_core.invariant_checker();
            chk && chk->total() != 0) {
          for (int k = 0; k < check::kNumInvariantKinds; ++k)
            viol_counts[i][static_cast<std::size_t>(k)] =
                chk->CountFor(static_cast<check::InvariantKind>(k));
          const check::InvariantViolation& v = chk->violations().front();
          std::ostringstream msg;
          msg << "invariant violation [" << check::InvariantKindName(v.kind)
              << "] at trial cycle " << v.cycle << ": " << v.detail;
          errmsgs[i] = msg.str();
          rec = QuarantineRecord();
        }
      }
      const auto t1 = Clock::now();
      result.trials[i] = rec;
      if (tracing) result.prop_traces[i] = std::move(trace);
      timing[i] = {ElapsedUs(progress.start, t0), ElapsedUs(t0, t1), worker};
      completed[i].store(true, std::memory_order_release);
      progress.outcomes[static_cast<int>(rec.outcome)].fetch_add(
          1, std::memory_order_relaxed);
      const std::uint64_t done =
          progress.done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (journal_every && done % journal_every == 0) FlushCheckpoint();

      if (worker != 0) continue;
      if (opt.obs.progress) {
        const auto now = Clock::now();
        if (now - progress.last_line >= std::chrono::seconds(1)) {
          progress.last_line = now;
          progress.PrintLine(spec.CacheKey(), spec.trials, false);
        }
      } else if (opt.verbose && done % 200 < static_cast<std::uint64_t>(jobs)) {
        std::fprintf(stderr, "[campaign %s] %llu/%d trials\n",
                     spec.CacheKey().c_str(), (unsigned long long)done,
                     spec.trials);
      }
    }
  };

  {
    std::optional<obs::ScopedTimer> loop_timer;
    if (metrics) loop_timer.emplace(metrics->GetTimer("campaign.trial_loop"));
    if (jobs <= 1) {
      work(core, 0);
    } else {
      std::vector<std::exception_ptr> errors(static_cast<std::size_t>(jobs));
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(jobs));
      for (int w = 0; w < jobs; ++w) {
        pool.emplace_back([&, w] {
          try {
            Core replica(trial_cfg, program);
            work(replica, w);
          } catch (...) {
            errors[static_cast<std::size_t>(w)] = std::current_exception();
          }
        });
      }
      for (auto& th : pool) th.join();
      for (const auto& e : errors)
        if (e) std::rethrow_exception(e);
    }
  }
  if (opt.obs.progress)
    progress.PrintLine(spec.CacheKey(), spec.trials, true);

  // Interruption: keep only the contiguous completed prefix — exactly what
  // the journal holds — so the partial result, its telemetry, and a later
  // resumed run all agree on which trials exist. Trials completed out of
  // order beyond the prefix are discarded (their specs re-run on resume).
  if (opt.cancel && opt.cancel->cancelled()) {
    std::size_t prefix = 0;
    while (prefix < n &&
           completed[prefix].load(std::memory_order_acquire))
      ++prefix;
    if (prefix < n) {
      FlushCheckpoint();
      result.interrupted = true;
      result.trials.resize(prefix);
      if (tracing) result.prop_traces.resize(prefix);
      timing.resize(prefix);
      if (opt.verbose)
        std::fprintf(stderr,
                     "[campaign %s] interrupted at %zu/%zu trials%s\n",
                     spec.CacheKey().c_str(), prefix, n,
                     journal_every ? " (checkpoint flushed)" : "");
    }
  }

  // Quarantined trials, in trial-index order (messages are empty for
  // records restored from a checkpoint — diagnostics are not persisted).
  for (std::size_t i = 0; i < result.trials.size(); ++i)
    if (result.trials[i].outcome == Outcome::kTrialError)
      result.quarantined.push_back({i, errmsgs[i]});

  // Telemetry is emitted after the pool joins, in trial-index order, so the
  // exported counters/histograms (and the chrome span list) are identical
  // to a serial run's regardless of how trials were scheduled.
  if (metrics) EmitTrialMetrics(result.trials, *metrics);
  if (metrics && checked) {
    for (int k = 0; k < check::kNumInvariantKinds; ++k) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < result.trials.size(); ++i)
        sum += viol_counts[i][static_cast<std::size_t>(k)];
      if (sum)
        metrics
            ->GetCounter(std::string("check.violations.") +
                         check::InvariantKindName(
                             static_cast<check::InvariantKind>(k)))
            .Inc(sum);
    }
  }
  if (chrome) {
    for (int w = 0; w < jobs; ++w)
      chrome->SetThreadName(obs::ChromeTraceWriter::kPidCampaign, w,
                            "trial worker " + std::to_string(w));
    for (std::size_t i = 0; i < result.trials.size(); ++i) {
      const TrialRecord& rec = result.trials[i];
      chrome->CompleteEvent(
          OutcomeName(rec.outcome), obs::ChromeTraceWriter::kPidCampaign,
          timing[i].worker, timing[i].ts_us, timing[i].dur_us,
          {{"category", StateCatName(rec.cat)},
           {"failure_mode", FailureModeName(rec.mode)},
           {"cycles", std::to_string(rec.cycles)}});
    }
  }

  if (!result.interrupted) {
    if (opt.use_cache && !checked) StoreCachedCampaign(result, metrics);
    // The journal is subsumed by the completed result; drop it so the next
    // run of this CacheKey starts clean (or hits the cache).
    if (journal_every) RemoveCampaignCheckpoint(spec);
  }
  return result;
}

CampaignResult MergeResults(const std::vector<CampaignResult>& parts) {
  CampaignResult merged;
  if (parts.empty()) return merged;
  // An aggregate is only meaningful across campaigns of the same injected
  // machine: the parts may differ in workload (that is the point) but not in
  // protection config, fault model, injection population or state inventory.
  const CampaignSpec& first = parts.front().spec;
  for (const auto& p : parts) {
    const auto& fp = first.core.protect;
    const auto& pp = p.spec.core.protect;
    const bool same_protect = fp.timeout_counter == pp.timeout_counter &&
                              fp.regfile_ecc == pp.regfile_ecc &&
                              fp.regptr_ecc == pp.regptr_ecc &&
                              fp.insn_parity == pp.insn_parity;
    bool same_inventory = true;
    for (int c = 0; c < kNumStateCats; ++c)
      same_inventory &=
          p.inventory[c].latch_bits == parts.front().inventory[c].latch_bits &&
          p.inventory[c].ram_bits == parts.front().inventory[c].ram_bits;
    if (!same_protect || p.spec.include_ram != first.include_ram ||
        p.spec.flips != first.flips || p.spec.adjacent != first.adjacent ||
        !same_inventory)
      throw std::invalid_argument(
          "MergeResults: incompatible campaign specs (workload '" +
          p.spec.workload + "' differs from '" + first.workload +
          "' in protection/fault model/inventory)");
  }
  merged.spec = first;
  merged.spec.workload = "aggregate";
  merged.inventory = parts.front().inventory;
  double ipc = 0, bp = 0;
  std::uint64_t dmiss = 0;
  for (const auto& p : parts) {
    merged.trials.insert(merged.trials.end(), p.trials.begin(),
                         p.trials.end());
    merged.prop_traces.insert(merged.prop_traces.end(), p.prop_traces.begin(),
                              p.prop_traces.end());
    ipc += p.golden_ipc;
    bp += p.golden_bp_accuracy;
    dmiss += p.golden_dcache_misses;
  }
  merged.golden_ipc = ipc / static_cast<double>(parts.size());
  merged.golden_bp_accuracy = bp / static_cast<double>(parts.size());
  merged.golden_dcache_misses = dmiss;
  return merged;
}

std::vector<CampaignResult> RunSuite(CampaignSpec spec,
                                     const CampaignOptions& opt) {
  std::vector<CampaignResult> out;
  for (const auto& w : AllWorkloads()) {
    spec.workload = w.name;
    out.push_back(RunCampaign(spec, opt));
  }
  return out;
}

}  // namespace tfsim
