// Per-cycle structural invariant checker (opt-in via
// CoreConfig::check_invariants). After every Core::Cycle() it audits the
// machine's bookkeeping state — the properties the pipeline relies on but
// never re-derives:
//
//   * preg_conservation — every physical register is named exactly once
//     across the speculative RAT + speculative free list + live ROB oldp
//     entries (and, independently, across the architectural RAT + arch free
//     list): no leaked and no double-allocated registers.
//   * queue_pointers   — every circular queue (ROB, LQ, SQ, store buffer,
//     both free lists) has head/tail/count latches that agree:
//     head,tail < size, count <= size, (head + count) mod size == tail.
//   * rob_order        — live ROB entries are in program order (strictly
//     increasing fetch sequence from head to tail).
//   * scheduler_ref    — every valid scheduler entry references a live,
//     incomplete ROB entry and holds a legal state-machine value.
//   * lsq_order        — LQ/SQ valid bits match ring membership; live
//     entries are in ROB age order with correct ROB backpointers
//     (is_load/is_store + lsq_idx).
//   * rename_range     — every live register pointer (RATs, free lists, ROB
//     newp/oldp, scheduler sources/dest, LQ dest) names a real physical
//     register (< phys_regs).
//
// The checker reads stored bits raw (no ECC correction) — it audits what is
// latched, not what a protected read would repair. A fault-free run must
// report zero violations at every cycle boundary; the differential fuzzer
// and the clean-run tests in tests/test_check.cpp enforce exactly that.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tfsim {

class Core;

namespace check {

enum class InvariantKind : std::uint8_t {
  kPregConservation,
  kQueuePointers,
  kRobOrder,
  kSchedulerRef,
  kLsqOrder,
  kRenameRange,
  kNumKinds,
};
inline constexpr int kNumInvariantKinds =
    static_cast<int>(InvariantKind::kNumKinds);

// Stable snake_case name, also the metric suffix: check.violations.<name>.
const char* InvariantKindName(InvariantKind kind);

struct InvariantViolation {
  InvariantKind kind = InvariantKind::kNumKinds;
  std::uint64_t cycle = 0;  // CoreStats::cycles at detection time
  std::string detail;
};

class InvariantChecker {
 public:
  // Audits `core` once and records any violations; returns the number found
  // by this call. Stored violation records are capped at kMaxStored (per-kind
  // counts keep accumulating past the cap).
  std::size_t Check(const Core& core);

  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  std::uint64_t total() const { return total_; }
  std::uint64_t CountFor(InvariantKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  bool SawKind(InvariantKind kind) const { return CountFor(kind) != 0; }
  // Kinds reported by the most recent Check() call, deduplicated — what the
  // core uses to bump check.violations.* counters without re-scanning.
  const std::vector<InvariantKind>& last_kinds() const { return last_kinds_; }

  void Clear();

  static constexpr std::size_t kMaxStored = 64;

 private:
  void Report(InvariantKind kind, std::uint64_t cycle, std::string detail);

  std::vector<InvariantViolation> violations_;
  std::array<std::uint64_t, kNumInvariantKinds> counts_{};
  std::vector<InvariantKind> last_kinds_;
  std::uint64_t total_ = 0;
  // Cached expected mixed-sum for the preg-conservation fast path (a function
  // of phys_regs only; recomputed if a differently-sized core is audited).
  std::uint64_t mix_phys_ = 0;
  std::uint64_t mix_expected_ = 0;
};

}  // namespace check
}  // namespace tfsim
