#include "check/fuzz_harness.h"

#include "arch/functional_sim.h"
#include "check/invariants.h"
#include "isa/assemble.h"
#include "uarch/core.h"

namespace tfsim::check {

FuzzCaseResult RunLockstep(const std::string& src, const FuzzRunOptions& opt) {
  const Program prog = Assemble(src);
  CoreConfig cfg = opt.core;
  cfg.check_invariants = opt.check_invariants;
  Core core(cfg, prog);
  FunctionalSim ref(prog);
  FuzzCaseResult r;
  std::uint64_t last_retire_cycle = 0;
  for (std::uint64_t c = 0; c < opt.cycles; ++c) {
    core.Cycle();
    if (core.halted_exception() != Exception::kNone) {
      r.ok = false;
      r.failure = "pipeline exception at cycle " + std::to_string(c);
      return r;
    }
    for (const RetireEvent& ev : core.RetiredThisCycle()) {
      const RetireEvent want = ref.Step();
      if (!(ev == want)) {
        r.ok = false;
        r.failure = "retire mismatch #" + std::to_string(r.retired) +
                    " at cycle " + std::to_string(c) +
                    "\n  core: " + ToString(ev) + "\n  ref : " +
                    ToString(want);
        return r;
      }
      ++r.retired;
    }
    if (!core.RetiredThisCycle().empty()) last_retire_cycle = c;
    if (const InvariantChecker* chk = core.invariant_checker();
        chk && chk->total() != 0) {
      r.ok = false;
      r.violations = chk->total();
      const InvariantViolation& v = chk->violations().front();
      r.failure = std::string("invariant violation [") +
                  InvariantKindName(v.kind) + "] at cycle " +
                  std::to_string(v.cycle) + ": " + v.detail;
      return r;
    }
    if (c - last_retire_cycle > opt.deadlock_cycles) {
      r.ok = false;
      r.failure = "deadlock: no retirement since cycle " +
                  std::to_string(last_retire_cycle);
      return r;
    }
  }
  return r;
}

ShrinkResult ShrinkFailure(const FuzzProgram& prog,
                           const FuzzRunOptions& opt) {
  ShrinkResult out;
  out.enabled.assign(prog.blocks.size(), true);
  const FuzzCaseResult full = RunLockstep(prog.Source(out.enabled), opt);
  ++out.runs;
  out.failure = full.failure;
  if (full.ok) {  // caller error (case doesn't fail); return it unshrunk
    out.source = prog.Source(out.enabled);
    return out;
  }
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < out.enabled.size(); ++i) {
      if (!out.enabled[i]) continue;
      out.enabled[i] = false;
      const FuzzCaseResult r = RunLockstep(prog.Source(out.enabled), opt);
      ++out.runs;
      if (r.ok) {
        out.enabled[i] = true;  // block is load-bearing, keep it
      } else {
        out.failure = r.failure;
        progress = true;
      }
    }
  }
  out.source = prog.Source(out.enabled);
  return out;
}

}  // namespace tfsim::check
