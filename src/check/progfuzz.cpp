#include "check/progfuzz.h"

#include <sstream>

#include "util/rng.h"

namespace tfsim::check {
namespace {

// Register convention (matches the hand-written workloads): r1..r7 working
// values, r8 scratch (addresses, branch conditions, inner counters), r9
// outer loop counter, r10 buffer base. The buffer is 288 bytes, so every
// masked base (<= 248 for 8-byte, <= 252 for 4-byte, <= 255 for byte) plus
// the largest generated displacement stays inside it.
constexpr const char* kMask8 = "248";
constexpr const char* kMask4 = "252";
constexpr const char* kMask1 = "255";

const char* const kAluR[] = {"addq",  "subq",  "andq",   "bisq", "xorq",
                             "bicq",  "cmpeq", "cmplt",  "cmpule", "addl",
                             "subl",  "sextb", "mulq",   "umulh", "mull",
                             "sllq",  "srlq",  "sraq"};
const char* const kAluI[] = {"addqi", "subqi", "andqi", "bisqi", "xorqi",
                             "mulqi", "cmpeqi", "cmplti", "addli"};
const char* const kCondBr[] = {"beq", "bne", "bgt", "blt", "bge", "ble"};

struct Gen {
  Rng& rng;
  std::ostringstream s;
  const std::string lbl;  // per-block label prefix, keeps labels unique
  int next_label = 0;

  int R() { return 1 + static_cast<int>(rng.NextBelow(7)); }  // r1..r7

  void AluImm() {
    s << "  " << kAluI[rng.NextBelow(std::size(kAluI))] << " r" << R() << ", "
      << rng.NextRange(-1000, 1000) << ", r" << R() << "\n";
  }
  void AluReg() {
    s << "  " << kAluR[rng.NextBelow(std::size(kAluR))] << " r" << R()
      << ", r" << R() << ", r" << R() << "\n";
  }
  void Shift() {
    const char* const ops[] = {"sllqi", "srlqi", "sraqi"};
    s << "  " << ops[rng.NextBelow(3)] << " r" << R() << ", "
      << rng.NextBelow(63) << ", r" << R() << "\n";
  }
  // Computes a masked, in-buffer address into r8.
  void Addr(const char* mask) {
    s << "  andqi r" << R() << ", " << mask << ", r8\n";
    s << "  addq r10, r8, r8\n";
  }
  void StoreLoad(int size) {
    const char* st = size == 1 ? "stb" : size == 4 ? "stl" : "stq";
    const char* ld = size == 1 ? "ldbu" : size == 4 ? "ldl" : "ldq";
    Addr(size == 1 ? kMask1 : size == 4 ? kMask4 : kMask8);
    s << "  " << st << " r" << R() << ", 0(r8)\n";
    // Sometimes interleave ALU work so the load doesn't always forward.
    if (rng.NextBelow(2)) AluReg();
    s << "  " << ld << " r" << R() << ", 0(r8)\n";
  }
  // Back-to-back store burst at stride-separated 8-aligned offsets.
  void StoreBurst() {
    Addr(kMask8);
    const int n = 2 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < n; ++i)
      s << "  stq r" << R() << ", " << 8 * (i % 4) << "(r8)\n";
    s << "  ldq r" << R() << ", " << 8 * rng.NextBelow(4) << "(r8)\n";
  }
  // Mixed-width traffic over one 8-byte word: byte/word stores into a
  // quadword followed by wider/narrower reads (sub-word forwarding corners).
  void MixedWidth() {
    Addr(kMask8);
    s << "  stq r" << R() << ", 0(r8)\n";
    if (rng.NextBelow(2)) s << "  stb r" << R() << ", " << rng.NextBelow(8)
                            << "(r8)\n";
    if (rng.NextBelow(2)) s << "  stl r" << R() << ", "
                            << 4 * rng.NextBelow(2) << "(r8)\n";
    s << "  ldq r" << R() << ", 0(r8)\n";
    s << "  ldbu r" << R() << ", " << rng.NextBelow(8) << "(r8)\n";
    s << "  ldl r" << R() << ", " << 4 * rng.NextBelow(2) << "(r8)\n";
  }
  // Data-dependent forward branch over 1-3 instructions.
  void FwdBranch() {
    const std::string l = lbl + std::to_string(next_label++);
    s << "  andqi r" << R() << ", " << (1 + rng.NextBelow(7)) << ", r8\n";
    s << "  " << kCondBr[rng.NextBelow(std::size(kCondBr))] << " r8, " << l
      << "\n";
    const int skip = 1 + static_cast<int>(rng.NextBelow(3));
    for (int i = 0; i < skip; ++i) rng.NextBelow(2) ? AluImm() : AluReg();
    s << l << ":\n";
  }
  // Bounded inner loop: always terminates (counted down in r8).
  void InnerLoop() {
    const std::string l = lbl + std::to_string(next_label++);
    s << "  li r8, " << 1 + rng.NextBelow(4) << "\n";
    s << l << ":\n";
    rng.NextBelow(2) ? AluReg() : AluImm();
    s << "  subqi r8, 1, r8\n";
    s << "  bgt r8, " << l << "\n";
  }
};

}  // namespace

const char* FuzzShapeName(FuzzShape shape) {
  switch (shape) {
    case FuzzShape::kMixed: return "mixed";
    case FuzzShape::kAluDense: return "alu";
    case FuzzShape::kStoreHeavy: return "store";
    case FuzzShape::kBranchErratic: return "branch";
    case FuzzShape::kMemWidths: return "mem";
  }
  return "?";
}

std::optional<FuzzShape> FuzzShapeFromName(std::string_view name) {
  for (const FuzzShape sh : AllFuzzShapes())
    if (name == FuzzShapeName(sh)) return sh;
  return std::nullopt;
}

std::vector<FuzzShape> AllFuzzShapes() {
  return {FuzzShape::kMixed, FuzzShape::kAluDense, FuzzShape::kStoreHeavy,
          FuzzShape::kBranchErratic, FuzzShape::kMemWidths};
}

std::string FuzzProgram::Source() const { return Source({}); }

std::string FuzzProgram::Source(const std::vector<bool>& enabled) const {
  std::string out = prologue;
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (i >= enabled.size() || enabled[i]) out += blocks[i];
  out += epilogue;
  return out;
}

FuzzProgram GenerateFuzzProgram(std::uint64_t seed, FuzzShape shape) {
  Rng rng(seed ^ (static_cast<std::uint64_t>(shape) << 56));
  FuzzProgram p;

  {
    std::ostringstream s;
    s << "_start:\n";
    s << "  li r9, " << 150 + rng.NextBelow(150) << "\n";
    s << "  la r10, buf\n";
    for (int r = 1; r <= 8; ++r)
      s << "  li r" << r << ", " << rng.NextBelow(32768) << "\n";
    s << "outer:\n";
    p.prologue = s.str();
  }

  const int nblocks = 10 + static_cast<int>(rng.NextBelow(8));
  for (int b = 0; b < nblocks; ++b) {
    Gen g{rng, {}, "b" + std::to_string(b) + "_", 0};
    // Pick a block flavor, biased by the requested shape. One roll in four
    // is an off-shape block so even specialized suites keep some mixing.
    const bool off_shape = rng.NextBelow(4) == 0;
    const FuzzShape eff = off_shape ? FuzzShape::kMixed : shape;
    const int items = 2 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < items; ++i) {
      switch (eff) {
        case FuzzShape::kAluDense:
          switch (rng.NextBelow(6)) {
            case 0: g.Shift(); break;
            case 1: g.AluImm(); break;
            default: g.AluReg(); break;
          }
          break;
        case FuzzShape::kStoreHeavy:
          switch (rng.NextBelow(4)) {
            case 0: g.StoreBurst(); break;
            case 1: g.AluReg(); break;
            default: g.StoreLoad(8); break;
          }
          break;
        case FuzzShape::kBranchErratic:
          switch (rng.NextBelow(4)) {
            case 0: g.InnerLoop(); break;
            case 1: g.AluReg(); break;
            default: g.FwdBranch(); break;
          }
          break;
        case FuzzShape::kMemWidths:
          switch (rng.NextBelow(4)) {
            case 0: g.StoreLoad(1); break;
            case 1: g.StoreLoad(4); break;
            default: g.MixedWidth(); break;
          }
          break;
        case FuzzShape::kMixed:
          switch (rng.NextBelow(8)) {
            case 0: g.StoreLoad(1 << (3 * rng.NextBelow(2))); break;
            case 1: g.Shift(); break;
            case 2: g.FwdBranch(); break;
            case 3: g.AluImm(); break;
            case 4: g.MixedWidth(); break;
            case 5: g.InnerLoop(); break;
            default: g.AluReg(); break;
          }
          break;
      }
    }
    p.blocks.push_back(g.s.str());
  }

  p.epilogue =
      "  subqi r9, 1, r9\n"
      "  bgt r9, outer\n"
      "hang: br hang\n"
      // 288 bytes: a 248-masked base plus the largest burst offset (24) plus
      // an 8-byte access still lands inside the buffer.
      ".data\n.align 8\nbuf: .space 288\n";
  return p;
}

}  // namespace tfsim::check
