// Randomized miniAlpha program generation for differential fuzzing
// (generalized from the generator that used to live inside
// tests/test_differential.cpp).
//
// Generated programs are trap-free by construction (memory accesses are
// masked to aligned offsets inside a private buffer; control flow is an
// outer counted loop of forward branches and bounded inner loops) and
// therefore must retire identically on the detailed core and the functional
// simulator — any divergence is a model bug.
//
// Programs are block-structured: a prologue (register/counter seeding), a
// list of independent labeled body blocks, and an epilogue (loop back-edge +
// data section). The fuzz harness shrinks a failing case by disabling body
// blocks and re-running, so each block must be self-contained (its labels
// are prefixed with its block index and nothing jumps across blocks).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace tfsim::check {

enum class FuzzShape : std::uint8_t {
  kMixed,         // uniform mix of everything below
  kAluDense,      // long dependent ALU chains incl. complex-port ops
  kStoreHeavy,    // store bursts + store-to-load forwarding pairs
  kBranchErratic, // data-dependent forward branches + bounded inner loops
  kMemWidths,     // mixed 1/4/8-byte traffic over overlapping addresses
};

const char* FuzzShapeName(FuzzShape shape);
std::optional<FuzzShape> FuzzShapeFromName(std::string_view name);
// All shapes, for "sweep every shape" loops.
std::vector<FuzzShape> AllFuzzShapes();

struct FuzzProgram {
  std::string prologue;
  std::vector<std::string> blocks;
  std::string epilogue;

  // Assembly source with every block included.
  std::string Source() const;
  // Assembly source with only blocks whose mask bit is true (mask shorter
  // than blocks ⇒ missing entries count as enabled).
  std::string Source(const std::vector<bool>& enabled) const;
};

FuzzProgram GenerateFuzzProgram(std::uint64_t seed, FuzzShape shape);

}  // namespace tfsim::check
