#include "check/invariants.h"

#include <algorithm>
#include <string>

#include "uarch/core.h"

namespace tfsim {
namespace check {
namespace {

std::string U(std::uint64_t v) { return std::to_string(v); }

// Splitmix64-filled table mapping each possible 7-bit register pointer to a
// pseudo-random 64-bit value. The conservation fast path sums these instead
// of marking a table: the multiset {0..phys-1} has a unique expected sum, and
// any corruption (duplicate + leak pair) shifts it by a non-zero delta —
// cancellation would need an exact 64-bit collision across the deltas.
const std::uint64_t* MixTable() {
  static const std::array<std::uint64_t, 128> t = [] {
    std::array<std::uint64_t, 128> a{};
    std::uint64_t x = 0;
    for (auto& v : a) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      v = z ^ (z >> 31);
    }
    return a;
  }();
  return t.data();
}

}  // namespace

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kPregConservation: return "preg_conservation";
    case InvariantKind::kQueuePointers: return "queue_pointers";
    case InvariantKind::kRobOrder: return "rob_order";
    case InvariantKind::kSchedulerRef: return "scheduler_ref";
    case InvariantKind::kLsqOrder: return "lsq_order";
    case InvariantKind::kRenameRange: return "rename_range";
    case InvariantKind::kNumKinds: break;
  }
  return "?";
}

void InvariantChecker::Report(InvariantKind kind, std::uint64_t cycle,
                              std::string detail) {
  ++total_;
  ++counts_[static_cast<std::size_t>(kind)];
  if (std::find(last_kinds_.begin(), last_kinds_.end(), kind) ==
      last_kinds_.end())
    last_kinds_.push_back(kind);
  if (violations_.size() < kMaxStored)
    violations_.push_back({kind, cycle, std::move(detail)});
}

void InvariantChecker::Clear() {
  violations_.clear();
  counts_.fill(0);
  last_kinds_.clear();
  total_ = 0;
}

std::size_t InvariantChecker::Check(const Core& core) {
  last_kinds_.clear();
  const std::uint64_t before = total_;
  const std::uint64_t cyc = core.stats().cycles;

  const Rename& ren = core.rename_unit();
  const Rob& rob = core.rob();
  const Scheduler& sched = core.scheduler();
  const Lsq& lsq = core.lsq();
  const std::uint64_t phys =
      static_cast<std::uint64_t>(core.config().phys_regs);
  const std::uint64_t fls = ren.free_size();
  const std::uint64_t rents = rob.entries();

  // This runs after every cycle of a checked core, so the ring walks below
  // avoid runtime-divisor `%` (an integer division per call in AgeOf/Contains
  // would dominate the whole audit): heads are reduced once, then indices
  // advance with a conditional subtract. Corrupt out-of-range tags still get
  // the (rare) full modulo so the audited semantics match Rob::Contains.
  const std::uint64_t rob_head = rob.Head();
  const std::uint64_t rob_count = rob.Count();
  const auto wrap = [](std::uint64_t v, std::uint64_t size) {
    return v >= size ? v - size : v;
  };
  const auto rob_age = [&](std::uint64_t tag) {
    if (tag >= rents) tag %= rents;
    return wrap(tag + rents - rob_head, rents);
  };
  const auto rob_contains = [&](std::uint64_t tag) {
    return rob_age(tag) < rob_count;
  };

  // Flat view of the registry word store. StateField::Get() is three
  // dependent loads (field -> registry -> word), and the Report() call sites
  // inside every loop stop the compiler from caching any of them; reading
  // w[f.offset() + i] through this local pointer makes each probe one load.
  const std::uint64_t* const w = core.registry().WordsData();
  const auto rd = [w](const StateField& f, std::uint64_t i) {
    return w[f.offset() + i];
  };

  // --- queue_pointers: every ring's latches must agree -----------------------
  const auto ring = [&](const char* name, std::uint64_t head,
                        std::uint64_t tail, std::uint64_t count,
                        std::uint64_t size) {
    if (head < size && tail < size && count <= size &&
        (head + count) % size == tail)
      return;
    Report(InvariantKind::kQueuePointers, cyc,
           std::string(name) + ": head=" + U(head) + " tail=" + U(tail) +
               " count=" + U(count) + " size=" + U(size));
  };
  ring("rob", rob.HeadRaw(), rob.TailRaw(), rob.Count(), rents);
  ring("rename.sfl", ren.SflHead(), ren.SflTail(), ren.SpecFreeCount(), fls);
  ring("rename.afl", ren.AflHead(), ren.AflTail(), ren.ArchFreeCount(), fls);
  ring("lq", lsq.lq_head.Get(0), lsq.lq_tail.Get(0), lsq.lq_count.Get(0),
       lsq.lq_entries());
  ring("sq", lsq.sq_head.Get(0), lsq.sq_tail.Get(0), lsq.sq_count.Get(0),
       lsq.sq_entries());
  ring("sb", lsq.sb_head.Get(0), lsq.sb_tail.Get(0), lsq.sb_count.Get(0),
       lsq.sb_valid.count());

  // --- preg conservation + rename_range --------------------------------------
  // Ownership multiset: a physical register is named exactly once across the
  // RAT + free list + live ROB previous-mapping slots. Pointers are 7-bit, so
  // a 128-slot mark table covers every corrupt value; anything >= phys_regs
  // is a rename_range violation and excluded from the multiset.
  std::uint64_t range_bad = 0;
  std::string range_first;
  const auto range = [&](std::uint64_t p, const char* where,
                         std::uint64_t idx) {
    if (p < phys) return true;
    ++range_bad;
    if (range_first.empty())
      range_first = std::string(where) + "[" + U(idx) + "]=" + U(p);
    return false;
  };
  const std::uint64_t rob_cnt = std::min(rob_count, rents);

  // Fast probe: sum a per-pointer random value over each view and compare
  // count and sum against the full-multiset expectation (see MixTable). This
  // is the every-cycle path — branch-light, no strings, no mark table; the
  // exact mark-based walk below only runs when the probe trips, to name the
  // duplicated/leaked register. All pointer fields are <= 7 bits wide and
  // masked on write, so `mix[p]` is in bounds for any corrupt value.
  const std::uint64_t* const mix = MixTable();
  if (mix_phys_ != phys) {
    mix_phys_ = phys;
    mix_expected_ = 0;
    for (std::uint64_t p = 0; p < phys; ++p) mix_expected_ += mix[p];
  }
  std::uint64_t oor = 0;  // any pointer >= phys in either view
  std::uint64_t sum_spec = 0, cnt_spec = 0, sum_arch = 0, cnt_arch = 0;
  {
    const std::size_t o_srat = ren.SpecRatField().offset();
    const std::size_t o_arat = ren.ArchRatField().offset();
    for (std::uint64_t a = 0; a < kNumArchRegs; ++a) {
      const std::uint64_t ps = w[o_srat + a], pa = w[o_arat + a];
      sum_spec += mix[ps];
      sum_arch += mix[pa];
      oor |= (ps >= phys) | (pa >= phys);
    }
    cnt_spec += kNumArchRegs;
    cnt_arch += kNumArchRegs;
    // Ring walks as two linear spans (head..end, then 0..remainder): memory-
    // sequential, no per-element wraparound arithmetic.
    const auto fl_span = [&](std::size_t o, std::uint64_t start,
                             std::uint64_t n, std::uint64_t& sum) {
      for (std::uint64_t i = start; i < start + n; ++i) {
        const std::uint64_t p = w[o + i];
        sum += mix[p];
        oor |= p >= phys;
      }
    };
    const std::size_t o_sfl = ren.SflField().offset();
    const std::uint64_t sfl_n = std::min(ren.SpecFreeCount(), fls);
    const std::uint64_t sfl_head = ren.SflHead() % fls;
    const std::uint64_t sfl_first = std::min(sfl_n, fls - sfl_head);
    fl_span(o_sfl, sfl_head, sfl_first, sum_spec);
    fl_span(o_sfl, 0, sfl_n - sfl_first, sum_spec);
    cnt_spec += sfl_n;
    const std::size_t o_afl = ren.AflField().offset();
    const std::uint64_t afl_n = std::min(ren.ArchFreeCount(), fls);
    const std::uint64_t afl_head = ren.AflHead() % fls;
    const std::uint64_t afl_first = std::min(afl_n, fls - afl_head);
    fl_span(o_afl, afl_head, afl_first, sum_arch);
    fl_span(o_afl, 0, afl_n - afl_first, sum_arch);
    cnt_arch += afl_n;
    const std::size_t o_hd = rob.has_dst.offset();
    const std::size_t o_oldp = rob.oldp.offset();
    const std::size_t o_newp = rob.newp.offset();
    const auto rob_span = [&](std::uint64_t start, std::uint64_t n) {
      for (std::uint64_t tag = start; tag < start + n; ++tag) {
        const std::uint64_t hd = w[o_hd + tag];  // 1-bit field: 0 or 1
        const std::uint64_t oldp = w[o_oldp + tag];
        const std::uint64_t newp = w[o_newp + tag];
        sum_spec += mix[oldp] & (0 - hd);
        cnt_spec += hd;
        oor |= hd & ((oldp >= phys) | (newp >= phys));
      }
    };
    const std::uint64_t rob_first = std::min(rob_cnt, rents - rob_head);
    rob_span(rob_head, rob_first);
    rob_span(0, rob_cnt - rob_first);
  }

  if (oor || cnt_spec != phys || sum_spec != mix_expected_ ||
      cnt_arch != phys || sum_arch != mix_expected_) {
    std::array<std::uint8_t, 128> marks;
    const auto conserve = [&](const char* view, auto&& fill) {
      marks.fill(0);
      fill();
      std::uint64_t dup = 0, missing = 0;
      std::string first;
      for (std::uint64_t p = 0; p < phys; ++p) {
        if (marks[p] == 1) continue;
        marks[p] ? ++dup : ++missing;
        if (first.empty())
          first = "preg " + U(p) + " named " + U(marks[p]) + "x";
      }
      if (dup || missing)
        Report(InvariantKind::kPregConservation, cyc,
               std::string(view) + ": " + U(dup) + " duplicated, " +
                   U(missing) + " leaked (first: " + first + ")");
    };
    conserve("spec", [&] {
      for (std::uint64_t a = 0; a < kNumArchRegs; ++a) {
        const std::uint64_t p = rd(ren.SpecRatField(), a);
        if (range(p, "specrat", a)) ++marks[p];
      }
      const std::uint64_t n = std::min(ren.SpecFreeCount(), fls);
      const std::uint64_t head = ren.SflHead() % fls;
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t idx = wrap(head + k, fls);
        const std::uint64_t p = rd(ren.SflField(), idx);
        if (range(p, "sfl", idx)) ++marks[p];
      }
      for (std::uint64_t k = 0; k < rob_cnt; ++k) {
        const std::uint64_t tag = wrap(rob_head + k, rents);
        if (!rd(rob.has_dst, tag)) continue;
        const std::uint64_t p = rd(rob.oldp, tag);
        if (range(p, "rob.oldp", tag)) ++marks[p];
        range(rd(rob.newp, tag), "rob.newp", tag);
      }
    });
    conserve("arch", [&] {
      for (std::uint64_t a = 0; a < kNumArchRegs; ++a) {
        const std::uint64_t p = rd(ren.ArchRatField(), a);
        if (range(p, "archrat", a)) ++marks[p];
      }
      const std::uint64_t n = std::min(ren.ArchFreeCount(), fls);
      const std::uint64_t head = ren.AflHead() % fls;
      for (std::uint64_t k = 0; k < n; ++k) {
        const std::uint64_t idx = wrap(head + k, fls);
        const std::uint64_t p = rd(ren.AflField(), idx);
        if (range(p, "afl", idx)) ++marks[p];
      }
    });
  }

  // --- rob_order: live window in program (fetch-sequence) order --------------
  // Branchless monotonicity scan first; the reporting walk runs only when it
  // trips (same fast/slow split as conservation above).
  const std::uint64_t* const seqs = core.RobSeqs().data();
  std::uint64_t order_bad = 0;
  if (rob_cnt > 1) {
    const std::uint64_t first = std::min(rob_cnt, rents - rob_head);
    const std::uint64_t* const a = seqs + rob_head;
    for (std::uint64_t k = 1; k < first; ++k)
      order_bad |= static_cast<std::uint64_t>(a[k] <= a[k - 1]);
    if (rob_cnt > first) {
      order_bad |= static_cast<std::uint64_t>(seqs[0] <= a[first - 1]);
      for (std::uint64_t k = 1; k < rob_cnt - first; ++k)
        order_bad |= static_cast<std::uint64_t>(seqs[k] <= seqs[k - 1]);
    }
  }
  if (order_bad) {
    std::uint64_t prev_seq = 0;
    for (std::uint64_t k = 0; k < rob_cnt; ++k) {
      const std::uint64_t order_tag = wrap(rob_head + k, rents);
      const std::uint64_t seq = seqs[order_tag];
      if (k != 0 && seq <= prev_seq) {
        Report(InvariantKind::kRobOrder, cyc,
               "rob[" + U(order_tag) + "] seq=" + U(seq) +
                   " not younger than predecessor seq=" + U(prev_seq));
        break;
      }
      prev_seq = seq;
    }
  }

  // --- scheduler_ref: valid entries reference live, incomplete uops ----------
  // Branchless anomaly scan over every slot (invalid entries masked out at
  // the end), then the reporting walk only when something tripped.
  std::uint64_t sched_bad = 0;
  {
    const std::size_t o_v = sched.valid.offset();
    const std::size_t o_st = sched.state.offset();
    const std::size_t o_tag = sched.robtag.offset();
    const std::size_t o_s1 = sched.src1p.offset();
    const std::size_t o_s2 = sched.src2p.offset();
    const std::size_t o_hd = sched.has_dst.offset();
    const std::size_t o_dp = sched.dstp.offset();
    const std::size_t o_done = rob.done.offset();
    for (std::uint64_t i = 0; i < sched.entries(); ++i) {
      std::uint64_t tag = w[o_tag + i];
      if (tag >= rents) tag %= rents;
      const std::uint64_t age = wrap(tag + rents - rob_head, rents);
      const std::uint64_t bad =
          static_cast<std::uint64_t>(w[o_st + i] > Scheduler::kIssued) |
          static_cast<std::uint64_t>(age >= rob_count) | w[o_done + tag] |
          static_cast<std::uint64_t>(w[o_s1 + i] >= phys) |
          static_cast<std::uint64_t>(w[o_s2 + i] >= phys) |
          (w[o_hd + i] & static_cast<std::uint64_t>(w[o_dp + i] >= phys));
      sched_bad |= w[o_v + i] & bad;
    }
  }
  if (sched_bad) {
    for (std::uint64_t i = 0; i < sched.entries(); ++i) {
      if (!rd(sched.valid, i)) continue;
      const std::uint64_t st = rd(sched.state, i);
      if (st > Scheduler::kIssued)
        Report(InvariantKind::kSchedulerRef, cyc,
               "sched[" + U(i) + "] illegal state " + U(st));
      const std::uint64_t tag = rd(sched.robtag, i);
      if (!rob_contains(tag))
        Report(InvariantKind::kSchedulerRef, cyc,
               "sched[" + U(i) + "] robtag " + U(tag) + " not in flight");
      else if (rd(rob.done, tag))
        Report(InvariantKind::kSchedulerRef, cyc,
               "sched[" + U(i) + "] robtag " + U(tag) + " already complete");
      range(rd(sched.src1p, i), "sched.src1p", i);
      range(rd(sched.src2p, i), "sched.src2p", i);
      if (rd(sched.has_dst, i)) range(rd(sched.dstp, i), "sched.dstp", i);
    }
  }

  // --- lsq_order: valid bits track the rings; rings in ROB age order ---------
  // Branchless anomaly scan per queue; `queue` below re-walks with reporting
  // only when its scan trips. A backpointer mismatch pollutes prev_age here,
  // but it also sets `bad`, so the slow walk (which skips mismatched entries)
  // still sees every real ordering violation.
  const auto queue_bad = [&](const StateField& valid, const StateField& robtag,
                             const StateField& isflag, std::uint64_t head,
                             std::uint64_t count, std::uint64_t size) {
    const std::size_t o_v = valid.offset();
    const std::size_t o_t = robtag.offset();
    const std::size_t o_f = isflag.offset();
    const std::size_t o_idx = rob.lsq_idx.offset();
    std::uint64_t bad = 0;
    for (std::uint64_t i = 0; i < size; ++i)
      bad |= w[o_v + i] ^
             static_cast<std::uint64_t>(wrap(i + size - head, size) < count);
    const std::uint64_t n = std::min(count, size);
    std::uint64_t prev_age = 0;
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t i = wrap(head + k, size);
      std::uint64_t tag = w[o_t + i];
      if (tag >= rents) tag %= rents;
      const std::uint64_t age = wrap(tag + rents - rob_head, rents);
      bad |= static_cast<std::uint64_t>(age >= rob_count) |
             (w[o_f + tag] ^ 1u) |
             static_cast<std::uint64_t>(w[o_idx + tag] != i) |
             (static_cast<std::uint64_t>(k != 0) &
              static_cast<std::uint64_t>(age <= prev_age));
      prev_age = age;
    }
    return bad != 0;
  };
  const auto queue = [&](const char* name, const StateField& valid,
                         const StateField& robtag, const StateField& isflag,
                         std::uint64_t head, std::uint64_t count,
                         std::uint64_t size) {
    // Ring membership the same way LqContains/SqContains define it, with the
    // head reduction hoisted out of the per-slot test.
    const auto member = [&](std::uint64_t i) {
      return wrap(i + size - head, size) < count;
    };
    for (std::uint64_t i = 0; i < size; ++i) {
      if ((rd(valid, i) != 0) == member(i)) continue;
      Report(InvariantKind::kLsqOrder, cyc,
             std::string(name) + "[" + U(i) + "] valid=" +
                 U(rd(valid, i)) + " but ring membership=" +
                 U(member(i)));
    }
    const std::uint64_t n = std::min(count, size);
    std::uint64_t prev_age = 0;
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t i = wrap(head + k, size);
      const std::uint64_t tag = rd(robtag, i);
      if (!rob_contains(tag) || !rd(isflag, tag) ||
          rd(rob.lsq_idx, tag) != i) {
        Report(InvariantKind::kLsqOrder, cyc,
               std::string(name) + "[" + U(i) + "] robtag " + U(tag) +
                   " backpointer mismatch");
        continue;
      }
      const std::uint64_t age = rob_age(tag);
      if (k != 0 && age <= prev_age)
        Report(InvariantKind::kLsqOrder, cyc,
               std::string(name) + "[" + U(i) + "] rob age " + U(age) +
                   " not younger than predecessor age " + U(prev_age));
      prev_age = age;
    }
  };
  const std::uint64_t lq_head_r = lsq.lq_head.Get(0) % lsq.lq_entries();
  const std::uint64_t sq_head_r = lsq.sq_head.Get(0) % lsq.sq_entries();
  if (queue_bad(lsq.lq_valid, lsq.lq_robtag, rob.is_load, lq_head_r,
                lsq.lq_count.Get(0), lsq.lq_entries()))
    queue("lq", lsq.lq_valid, lsq.lq_robtag, rob.is_load, lq_head_r,
          lsq.lq_count.Get(0), lsq.lq_entries());
  if (queue_bad(lsq.sq_valid, lsq.sq_robtag, rob.is_store, sq_head_r,
                lsq.sq_count.Get(0), lsq.sq_entries()))
    queue("sq", lsq.sq_valid, lsq.sq_robtag, rob.is_store, sq_head_r,
          lsq.sq_count.Get(0), lsq.sq_entries());
  {
    const std::uint64_t lq_n = lsq.lq_entries();
    const std::uint64_t n = std::min(lsq.lq_count.Get(0), lq_n);
    const std::uint64_t head = lsq.lq_head.Get(0) % lq_n;
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t i = wrap(head + k, lq_n);
      if (rd(lsq.lq_has_dst, i)) range(rd(lsq.lq_dstp, i), "lq.dstp", i);
    }
  }

  if (range_bad)
    Report(InvariantKind::kRenameRange, cyc,
           U(range_bad) + " pointer(s) out of range (first: " + range_first +
               ", phys_regs=" + U(phys) + ")");

  return static_cast<std::size_t>(total_ - before);
}

}  // namespace check
}  // namespace tfsim
