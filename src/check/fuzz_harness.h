// Differential fuzzing harness: runs a generated program on the detailed
// core in lockstep with the FunctionalSim oracle, with the per-cycle
// invariant checker enabled, and greedily shrinks failing cases by
// disabling program blocks (see progfuzz.h). Used by tools/fuzz and by the
// differential test suites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/progfuzz.h"
#include "uarch/config.h"

namespace tfsim::check {

struct FuzzRunOptions {
  std::uint64_t cycles = 15000;
  bool check_invariants = true;
  // Generated programs retire continuously when healthy (they end in a
  // self-retiring spin loop); this many retire-less cycles is a deadlock.
  std::uint64_t deadlock_cycles = 2000;
  // Core geometry under test (differential fuzzing sweeps shapes, not just
  // programs). check_invariants above wins over core.check_invariants.
  CoreConfig core;
};

struct FuzzCaseResult {
  bool ok = true;
  std::string failure;           // first mismatch/violation/deadlock report
  std::uint64_t retired = 0;     // retire events compared in lockstep
  std::uint64_t violations = 0;  // invariant violations observed
};

// Assembles `src` and runs the core against the functional simulator,
// failing on the first retire mismatch, invariant violation, pipeline
// exception, or retirement deadlock.
FuzzCaseResult RunLockstep(const std::string& src, const FuzzRunOptions& opt);

struct ShrinkResult {
  std::vector<bool> enabled;  // minimal failing block mask
  std::string source;         // shrunk assembly source
  std::string failure;        // failure report of the shrunk case
  int runs = 0;               // lockstep executions spent shrinking
};

// Greedy shrink to a fixpoint: repeatedly re-runs with each still-enabled
// block disabled, keeping every disable under which the case still fails.
ShrinkResult ShrinkFailure(const FuzzProgram& prog, const FuzzRunOptions& opt);

}  // namespace tfsim::check
