#include "isa/isa.h"

namespace tfsim {
namespace {

bool IsAluR(std::uint8_t op) { return op >= 0x04 && op <= 0x1C; }
bool IsAluI(std::uint8_t op) { return op >= 0x20 && op <= 0x2E; }
bool IsComplex(Op op) {
  switch (op) {
    case Op::kMulq:
    case Op::kMulqi:
    case Op::kMull:
    case Op::kDivq:
    case Op::kRemq:
    case Op::kUmulh:
      return true;
    default:
      return false;
  }
}

DecodedInst DecodeRaw(std::uint32_t word) {
  DecodedInst d;
  const std::uint8_t opf = OpField(word);
  const std::uint8_t ra = RaField(word);
  const std::uint8_t rb = RbField(word);
  const std::uint8_t rc = RcField(word);
  d.op = static_cast<Op>(opf);

  if (IsAluR(opf)) {
    d.cls = IsComplex(d.op) ? InsnClass::kAluComplex : InsnClass::kAlu;
    d.src1 = ra;
    d.src2 = rb;
    d.dst = rc;
    return d;
  }
  if (IsAluI(opf)) {
    d.cls = IsComplex(d.op) ? InsnClass::kAluComplex : InsnClass::kAlu;
    d.src1 = ra;
    d.dst = rb;  // I-format: op | ra | rc | imm16, rc lives in the rb slot
    d.imm = Imm16Field(word);
    return d;
  }

  switch (d.op) {
    case Op::kLda:
    case Op::kLdah:
      d.cls = InsnClass::kAlu;
      d.src1 = rb;
      d.dst = ra;
      d.imm = Imm16Field(word);
      return d;
    case Op::kSyscall:
      d.cls = InsnClass::kSyscall;
      return d;
    case Op::kJmp:
    case Op::kJsr:
    case Op::kRet:
      d.cls = d.op == Op::kJmp   ? InsnClass::kJmp
              : d.op == Op::kJsr ? InsnClass::kJsr
                                 : InsnClass::kRet;
      d.src1 = rb;
      d.dst = ra;
      return d;
    case Op::kBr:
    case Op::kBsr:
      d.cls = d.op == Op::kBr ? InsnClass::kBr : InsnClass::kBsr;
      d.dst = ra;
      d.imm = Disp21Field(word);
      return d;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBle:
    case Op::kBgt:
    case Op::kBge:
      d.cls = InsnClass::kCondBranch;
      d.src1 = ra;
      d.imm = Disp21Field(word);
      return d;
    case Op::kLdq:
    case Op::kLdl:
    case Op::kLdbu:
      d.cls = InsnClass::kLoad;
      d.src1 = rb;
      d.dst = ra;
      d.imm = Imm16Field(word);
      d.mem_size = d.op == Op::kLdq ? 8 : d.op == Op::kLdl ? 4 : 1;
      return d;
    case Op::kStq:
    case Op::kStl:
    case Op::kStb:
      d.cls = InsnClass::kStore;
      d.src1 = rb;   // base address
      d.src2 = ra;   // store data
      d.imm = Imm16Field(word);
      d.mem_size = d.op == Op::kStq ? 8 : d.op == Op::kStl ? 4 : 1;
      return d;
    default:
      d.cls = InsnClass::kIllegal;
      return d;
  }
}

}  // namespace

DecodedInst Decode(std::uint32_t word) {
  DecodedInst d = DecodeRaw(word);
  // Writes to r31 are architectural no-ops; dropping the destination here
  // means the pipeline never allocates a physical register for them.
  if (d.dst == kZeroReg) d.dst = kNoReg;
  return d;
}

}  // namespace tfsim
