#include "isa/assemble.h"

#include <cctype>
#include <cstring>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "isa/isa.h"

namespace tfsim {
namespace {

constexpr std::uint64_t kTextBase = kAsmTextBase;
constexpr std::uint64_t kDataBase = kAsmDataBase;

struct AsmError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void Fail(int line, const std::string& msg) {
  std::ostringstream os;
  os << "asm error at line " << line << ": " << msg;
  throw AsmError(os.str());
}

// Splits a statement into mnemonic + comma-separated operand strings.
struct Stmt {
  std::string label;
  std::string mnemonic;
  std::vector<std::string> operands;
  int line = 0;
};

std::string Trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses a register name (rN or ABI alias). Returns -1 if not a register.
int ParseReg(const std::string& tok) {
  static const std::pair<const char*, int> kAliases[] = {
      {"v0", 0},  {"t0", 1},  {"t1", 2},  {"t2", 3},  {"t3", 4},  {"t4", 5},
      {"t5", 6},  {"t6", 7},  {"t7", 8},  {"s0", 9},  {"s1", 10}, {"s2", 11},
      {"s3", 12}, {"s4", 13}, {"s5", 14}, {"fp", 15}, {"a0", 16}, {"a1", 17},
      {"a2", 18}, {"a3", 19}, {"a4", 20}, {"a5", 21}, {"t8", 22}, {"t9", 23},
      {"t10", 24}, {"t11", 25}, {"ra", 26}, {"pv", 27}, {"at", 28},
      {"gp", 29}, {"sp", 30}, {"zero", 31}};
  if (tok.size() >= 2 && (tok[0] == 'r' || tok[0] == 'R') &&
      std::isdigit(static_cast<unsigned char>(tok[1]))) {
    int n = 0;
    for (std::size_t i = 1; i < tok.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(tok[i]))) return -1;
      n = n * 10 + (tok[i] - '0');
    }
    return n < kNumArchRegs ? n : -1;
  }
  for (const auto& [name, num] : kAliases)
    if (tok == name) return num;
  return -1;
}

class Assembler {
 public:
  Program Run(const std::string& source) {
    Parse(source);
    // Pass 1: lay out addresses.
    emitting_ = false;
    Layout();
    // Pass 2: emit with all symbols known.
    emitting_ = true;
    Layout();
    Program p;
    p.symbols = symbols_;
    Program::Chunk text{kTextBase, std::move(text_)};
    Program::Chunk data{kDataBase, std::move(data_)};
    if (!text.bytes.empty()) p.chunks.push_back(std::move(text));
    if (!data.bytes.empty()) p.chunks.push_back(std::move(data));
    const auto it = symbols_.find("_start");
    p.entry = it != symbols_.end() ? it->second : kTextBase;
    return p;
  }

 private:
  void Parse(const std::string& source) {
    std::istringstream in(source);
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
      ++line;
      // Strip comments, but not inside string literals.
      std::string s;
      bool in_str = false;
      for (char c : raw) {
        if (c == '"') in_str = !in_str;
        if (!in_str && (c == ';' || c == '#')) break;
        s += c;
      }
      s = Trim(s);
      while (!s.empty()) {
        Stmt st;
        st.line = line;
        // Leading label(s).
        const std::size_t colon = s.find(':');
        const std::size_t space = s.find_first_of(" \t\"");
        if (colon != std::string::npos &&
            (space == std::string::npos || colon < space)) {
          st.label = Trim(s.substr(0, colon));
          stmts_.push_back(st);
          s = Trim(s.substr(colon + 1));
          continue;
        }
        // Mnemonic and operands.
        const std::size_t sp = s.find_first_of(" \t");
        st.mnemonic = sp == std::string::npos ? s : s.substr(0, sp);
        std::string rest = sp == std::string::npos ? "" : Trim(s.substr(sp));
        // Split operands on commas outside quotes.
        std::string cur;
        bool q = false;
        for (char c : rest) {
          if (c == '"') q = !q;
          if (c == ',' && !q) {
            st.operands.push_back(Trim(cur));
            cur.clear();
          } else {
            cur += c;
          }
        }
        if (!Trim(cur).empty()) st.operands.push_back(Trim(cur));
        stmts_.push_back(st);
        break;
      }
    }
  }

  std::uint64_t& Lc() { return in_text_ ? text_lc_ : data_lc_; }
  std::uint64_t LcValue() const { return in_text_ ? text_lc_ : data_lc_; }
  std::vector<std::uint8_t>& Buf() { return in_text_ ? text_ : data_; }
  std::uint64_t Base() const { return in_text_ ? kTextBase : kDataBase; }

  void Layout() {
    in_text_ = true;
    text_lc_ = kTextBase;
    data_lc_ = kDataBase;
    if (emitting_) {
      text_.clear();
      data_.clear();
    }
    for (const Stmt& st : stmts_) {
      if (!st.label.empty()) {
        if (!emitting_) {
          if (symbols_.count(st.label))
            Fail(st.line, "duplicate label '" + st.label + "'");
          symbols_[st.label] = Lc();
        }
        continue;
      }
      if (st.mnemonic.empty()) continue;
      if (st.mnemonic[0] == '.') {
        Directive(st);
      } else {
        Instruction(st);
      }
    }
  }

  // --- value parsing -----------------------------------------------------

  std::optional<std::int64_t> ParseNumber(const std::string& tok) const {
    if (tok.empty()) return std::nullopt;
    std::size_t i = 0;
    bool neg = false;
    if (tok[0] == '-' || tok[0] == '+') {
      neg = tok[0] == '-';
      i = 1;
    }
    if (i >= tok.size()) return std::nullopt;
    if (tok.size() >= i + 3 && tok[i] == '\'' && tok[i + 2] == '\'')
      return neg ? -tok[i + 1] : tok[i + 1];
    std::uint64_t v = 0;
    if (tok.size() > i + 2 && tok[i] == '0' &&
        (tok[i + 1] == 'x' || tok[i + 1] == 'X')) {
      for (std::size_t j = i + 2; j < tok.size(); ++j) {
        const char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(tok[j])));
        if (c >= '0' && c <= '9') v = v * 16 + static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f') v = v * 16 + static_cast<std::uint64_t>(c - 'a' + 10);
        else return std::nullopt;
      }
    } else {
      for (std::size_t j = i; j < tok.size(); ++j) {
        if (!std::isdigit(static_cast<unsigned char>(tok[j])))
          return std::nullopt;
        v = v * 10 + static_cast<std::uint64_t>(tok[j] - '0');
      }
    }
    const std::int64_t sv = static_cast<std::int64_t>(v);
    return neg ? -sv : sv;
  }

  // Value: number | label | label+num | label-num. During pass 1 unknown
  // labels resolve to 0 (sizes never depend on label values).
  std::int64_t ParseValue(const std::string& tok, int line) const {
    if (auto n = ParseNumber(tok)) return *n;
    std::size_t split = std::string::npos;
    for (std::size_t i = 1; i < tok.size(); ++i)
      if (tok[i] == '+' || tok[i] == '-') split = i;
    std::string base = tok, offs;
    if (split != std::string::npos) {
      base = tok.substr(0, split);
      offs = tok.substr(split);
    }
    const auto it = symbols_.find(Trim(base));
    std::int64_t v = 0;
    if (it != symbols_.end()) {
      v = static_cast<std::int64_t>(it->second);
    } else if (emitting_) {
      Fail(line, "unknown symbol '" + base + "'");
    }
    if (!offs.empty()) {
      if (auto n = ParseNumber(offs)) v += *n;
      else Fail(line, "bad offset '" + offs + "'");
    }
    return v;
  }

  // --- emission ----------------------------------------------------------

  void EmitBytes(const void* src, std::size_t n) {
    if (emitting_) {
      const std::uint64_t off = Lc() - Base();
      auto& buf = Buf();
      if (buf.size() < off + n) buf.resize(off + n, 0);
      std::memcpy(buf.data() + off, src, n);
    }
    Lc() += n;
  }

  void EmitWord32(std::uint32_t w) { EmitBytes(&w, 4); }

  void Directive(const Stmt& st) {
    const std::string& m = st.mnemonic;
    if (m == ".text") { in_text_ = true; return; }
    if (m == ".data") { in_text_ = false; return; }
    if (m == ".org") {
      Require(st, 1);
      const std::uint64_t addr =
          static_cast<std::uint64_t>(ParseValue(st.operands[0], st.line));
      if (addr < Lc()) Fail(st.line, ".org moves backwards");
      const std::vector<std::uint8_t> pad(addr - Lc(), 0);
      if (!pad.empty()) EmitBytes(pad.data(), pad.size());
      return;
    }
    if (m == ".align") {
      Require(st, 1);
      const std::uint64_t a =
          static_cast<std::uint64_t>(ParseValue(st.operands[0], st.line));
      if (a == 0 || (a & (a - 1)) != 0) Fail(st.line, ".align not power of 2");
      while (Lc() % a != 0) {
        const std::uint8_t z = 0;
        EmitBytes(&z, 1);
      }
      return;
    }
    if (m == ".word" || m == ".quad") {
      for (const auto& opnd : st.operands) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(ParseValue(opnd, st.line));
        EmitBytes(&v, 8);
      }
      return;
    }
    if (m == ".long") {
      for (const auto& opnd : st.operands) {
        const std::uint32_t v =
            static_cast<std::uint32_t>(ParseValue(opnd, st.line));
        EmitBytes(&v, 4);
      }
      return;
    }
    if (m == ".byte") {
      for (const auto& opnd : st.operands) {
        const std::uint8_t v =
            static_cast<std::uint8_t>(ParseValue(opnd, st.line));
        EmitBytes(&v, 1);
      }
      return;
    }
    if (m == ".space") {
      Require(st, 1);
      const std::uint64_t n =
          static_cast<std::uint64_t>(ParseValue(st.operands[0], st.line));
      const std::vector<std::uint8_t> z(n, 0);
      if (n) EmitBytes(z.data(), n);
      return;
    }
    if (m == ".asciiz" || m == ".ascii") {
      Require(st, 1);
      const std::string& s = st.operands[0];
      if (s.size() < 2 || s.front() != '"' || s.back() != '"')
        Fail(st.line, "expected quoted string");
      std::string out;
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        char c = s[i];
        if (c == '\\' && i + 2 < s.size()) {
          ++i;
          switch (s[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default: Fail(st.line, "bad escape");
          }
        }
        out += c;
      }
      if (m == ".asciiz") out += '\0';
      EmitBytes(out.data(), out.size());
      return;
    }
    Fail(st.line, "unknown directive '" + m + "'");
  }

  void Require(const Stmt& st, std::size_t n) const {
    if (st.operands.size() != n)
      Fail(st.line, "expected " + std::to_string(n) + " operand(s) for '" +
                        st.mnemonic + "'");
  }

  int Reg(const Stmt& st, std::size_t i) const {
    const int r = ParseReg(st.operands[i]);
    if (r < 0) Fail(st.line, "bad register '" + st.operands[i] + "'");
    return r;
  }

  // Parses "disp(rb)" or "value" (rb = zero). Returns {disp, rb}.
  std::pair<std::int64_t, int> MemOperand(const Stmt& st,
                                          std::size_t i) const {
    const std::string& s = st.operands[i];
    const std::size_t lp = s.find('(');
    if (lp == std::string::npos)
      return {ParseValue(s, st.line), kZeroReg};
    const std::size_t rp = s.find(')', lp);
    if (rp == std::string::npos) Fail(st.line, "missing ')'");
    const std::string dstr = Trim(s.substr(0, lp));
    const std::int64_t disp = dstr.empty() ? 0 : ParseValue(dstr, st.line);
    const int rb = ParseReg(Trim(s.substr(lp + 1, rp - lp - 1)));
    if (rb < 0) Fail(st.line, "bad base register");
    return {disp, rb};
  }

  void CheckImm16(const Stmt& st, std::int64_t v) const {
    if (v < -32768 || v > 32767)
      Fail(st.line, "immediate " + std::to_string(v) + " out of imm16 range");
  }

  std::int64_t BranchDisp(const Stmt& st, std::size_t i) const {
    const std::int64_t target = ParseValue(st.operands[i], st.line);
    const std::int64_t disp =
        (target - static_cast<std::int64_t>(LcValue()) - 4) / 4;
    if (emitting_ && (disp < -(1 << 20) || disp >= (1 << 20)))
      Fail(st.line, "branch target out of range");
    if (emitting_ && (target & 3) != 0)
      Fail(st.line, "branch target not 4-byte aligned");
    return disp;
  }

  void Instruction(const Stmt& st) {
    const std::string& m = st.mnemonic;

    static const std::map<std::string, Op> kAluR = {
        {"addq", Op::kAddq},   {"subq", Op::kSubq},   {"mulq", Op::kMulq},
        {"divq", Op::kDivq},   {"andq", Op::kAndq},   {"bisq", Op::kBisq},
        {"or", Op::kBisq},     {"xorq", Op::kXorq},   {"bicq", Op::kBicq},
        {"sllq", Op::kSllq},   {"srlq", Op::kSrlq},   {"sraq", Op::kSraq},
        {"cmpeq", Op::kCmpeq}, {"cmplt", Op::kCmplt}, {"cmple", Op::kCmple},
        {"cmpult", Op::kCmpult}, {"cmpule", Op::kCmpule},
        {"addl", Op::kAddl},   {"subl", Op::kSubl},   {"mull", Op::kMull},
        {"sextb", Op::kSextb}, {"sextl", Op::kSextl}, {"addv", Op::kAddv},
        {"subv", Op::kSubv},   {"remq", Op::kRemq},   {"umulh", Op::kUmulh}};
    static const std::map<std::string, Op> kAluI = {
        {"addqi", Op::kAddqi},   {"subqi", Op::kSubqi},
        {"mulqi", Op::kMulqi},   {"andqi", Op::kAndqi},
        {"bisqi", Op::kBisqi},   {"xorqi", Op::kXorqi},
        {"sllqi", Op::kSllqi},   {"srlqi", Op::kSrlqi},
        {"sraqi", Op::kSraqi},   {"cmpeqi", Op::kCmpeqi},
        {"cmplti", Op::kCmplti}, {"cmplei", Op::kCmplei},
        {"cmpulti", Op::kCmpulti}, {"cmpulei", Op::kCmpulei},
        {"addli", Op::kAddli}};
    static const std::map<std::string, Op> kMem = {
        {"ldq", Op::kLdq}, {"ldl", Op::kLdl}, {"ldbu", Op::kLdbu},
        {"stq", Op::kStq}, {"stl", Op::kStl}, {"stb", Op::kStb}};
    static const std::map<std::string, Op> kCond = {
        {"beq", Op::kBeq}, {"bne", Op::kBne}, {"blt", Op::kBlt},
        {"ble", Op::kBle}, {"bgt", Op::kBgt}, {"bge", Op::kBge}};

    if (auto it = kAluR.find(m); it != kAluR.end()) {
      Require(st, 3);
      EmitWord32(EncodeR(it->second, Reg(st, 0), Reg(st, 1), Reg(st, 2)));
      return;
    }
    if (auto it = kAluI.find(m); it != kAluI.end()) {
      Require(st, 3);
      const std::int64_t imm = ParseValue(st.operands[1], st.line);
      CheckImm16(st, imm);
      EmitWord32(EncodeI(it->second, Reg(st, 0), Reg(st, 2), imm));
      return;
    }
    if (auto it = kMem.find(m); it != kMem.end()) {
      Require(st, 2);
      const auto [disp, rb] = MemOperand(st, 1);
      CheckImm16(st, disp);
      EmitWord32(EncodeM(it->second, Reg(st, 0), rb, disp));
      return;
    }
    if (m == "lda" || m == "ldah") {
      Require(st, 2);
      const auto [disp, rb] = MemOperand(st, 1);
      CheckImm16(st, disp);
      EmitWord32(EncodeM(m == "lda" ? Op::kLda : Op::kLdah, Reg(st, 0), rb,
                         disp));
      return;
    }
    if (auto it = kCond.find(m); it != kCond.end()) {
      Require(st, 2);
      const int ra = Reg(st, 0);
      EmitWord32(EncodeB(it->second, ra, BranchDisp(st, 1)));
      return;
    }
    if (m == "br" || m == "bsr") {
      const Op op = m == "br" ? Op::kBr : Op::kBsr;
      if (st.operands.size() == 1) {
        EmitWord32(EncodeB(op, m == "bsr" ? 26 : kZeroReg, BranchDisp(st, 0)));
      } else {
        Require(st, 2);
        EmitWord32(EncodeB(op, Reg(st, 0), BranchDisp(st, 1)));
      }
      return;
    }
    if (m == "jmp" || m == "jsr" || m == "ret") {
      const Op op = m == "jmp" ? Op::kJmp : m == "jsr" ? Op::kJsr : Op::kRet;
      if (st.operands.empty() && m == "ret") {
        EmitWord32(EncodeJ(op, kZeroReg, 26));
      } else {
        Require(st, 2);
        EmitWord32(EncodeJ(op, Reg(st, 0), Reg(st, 1)));
      }
      return;
    }
    if (m == "syscall") {
      EmitWord32(EncodeJ(Op::kSyscall, 0, 0));
      return;
    }
    // Pseudo-instructions.
    if (m == "nop") {
      EmitWord32(EncodeR(Op::kBisq, kZeroReg, kZeroReg, kZeroReg));
      return;
    }
    if (m == "mov") {
      Require(st, 2);
      EmitWord32(EncodeR(Op::kBisq, Reg(st, 0), kZeroReg, Reg(st, 1)));
      return;
    }
    if (m == "li" || m == "la") {
      // Always two instructions (ldah+lda) so pass-1 sizing is label-free.
      Require(st, 2);
      const int rc = Reg(st, 0);
      const std::int64_t v = ParseValue(st.operands[1], st.line);
      const std::int64_t lo = static_cast<std::int16_t>(v & 0xFFFF);
      const std::int64_t hi = (v - lo) >> 16;
      if (emitting_ && (hi < -32768 || hi > 32767))
        Fail(st.line, "li/la value outside the ldah+lda range "
                      "[-0x80008000, 0x7FFF7FFF]");
      EmitWord32(EncodeM(Op::kLdah, rc, kZeroReg, hi & 0xFFFF));
      EmitWord32(EncodeM(Op::kLda, rc, rc, lo));
      return;
    }
    Fail(st.line, "unknown mnemonic '" + m + "'");
  }

  std::vector<Stmt> stmts_;
  std::map<std::string, std::uint64_t> symbols_;
  std::vector<std::uint8_t> text_, data_;
  std::uint64_t text_lc_ = kTextBase, data_lc_ = kDataBase;
  bool in_text_ = true;
  bool emitting_ = false;
};

}  // namespace

Program Assemble(const std::string& source) {
  return Assembler().Run(source);
}

}  // namespace tfsim
