// Two-pass assembler for miniAlpha.
//
// Syntax (one statement per line; `;` or `#` start comments):
//   label:                         — define a label (code or data)
//   addq  r1, r2, r3               — R-format ALU
//   addqi r1, 42, r3               — I-format ALU (imm16, signed)
//   lda   r1, 100(r2)              — address arithmetic / constants
//   ldq   r1, 8(r2)   / stq ...    — memory
//   beq   r1, target  / br r31, t  — branches (label or numeric target)
//   jsr   r26, r4     / ret r31, r26
//   syscall
//   .text / .data                  — switch section
//   .org ADDR                      — set location counter
//   .word V ...  (64-bit)  .long V ... (32-bit)  .byte V ...
//   .space N                       — N zero bytes
//   .asciiz "str"                  — NUL-terminated string
//   .align N                       — align to N bytes
// Registers: r0..r31, or aliases zero(r31), sp(r30), ra(r26).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tfsim {

// Section bases used by the assembler (and by tools that reconstruct
// assembler-shaped images, e.g. analyze::DisassembleProgram and the
// soft::Harden transform).
inline constexpr std::uint64_t kAsmTextBase = 0x1000;
inline constexpr std::uint64_t kAsmDataBase = 0x40000;

// An assembled program image: byte chunks at absolute addresses plus the
// entry point (the `_start` label if present, else the first .text address).
struct Program {
  struct Chunk {
    std::uint64_t addr = 0;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Chunk> chunks;
  std::uint64_t entry = 0;
  std::map<std::string, std::uint64_t> symbols;
};

// Assembles source text. Throws std::runtime_error with a line-numbered
// message on any syntax error (assembly inputs are compiled into the binary,
// so errors are programming bugs, not runtime conditions).
Program Assemble(const std::string& source);

}  // namespace tfsim
