#include <cstdio>

#include "isa/isa.h"

namespace tfsim {

std::string Disassemble(std::uint32_t word, std::uint64_t pc) {
  const DecodedInst d = Decode(word);
  char buf[96];
  const char* name = OpName(d.op);
  switch (d.cls) {
    case InsnClass::kIllegal:
      std::snprintf(buf, sizeof buf, ".word 0x%08x", word);
      break;
    case InsnClass::kAlu:
    case InsnClass::kAluComplex:
      if (d.op == Op::kLda || d.op == Op::kLdah) {
        std::snprintf(buf, sizeof buf, "%s r%u, %lld(r%u)", name, RaField(word),
                      static_cast<long long>(d.imm), RbField(word));
      } else if (d.src2 == kNoReg) {
        std::snprintf(buf, sizeof buf, "%s r%u, %lld, r%u", name, d.src1,
                      static_cast<long long>(d.imm), RbField(word));
      } else {
        std::snprintf(buf, sizeof buf, "%s r%u, r%u, r%u", name, d.src1,
                      d.src2, RcField(word));
      }
      break;
    case InsnClass::kLoad:
    case InsnClass::kStore:
      std::snprintf(buf, sizeof buf, "%s r%u, %lld(r%u)", name, RaField(word),
                    static_cast<long long>(d.imm), RbField(word));
      break;
    case InsnClass::kCondBranch:
      std::snprintf(buf, sizeof buf, "%s r%u, 0x%llx", name, d.src1,
                    static_cast<unsigned long long>(
                        pc + 4 + static_cast<std::uint64_t>(d.imm * 4)));
      break;
    case InsnClass::kBr:
    case InsnClass::kBsr:
      std::snprintf(buf, sizeof buf, "%s r%u, 0x%llx", name, RaField(word),
                    static_cast<unsigned long long>(
                        pc + 4 + static_cast<std::uint64_t>(d.imm * 4)));
      break;
    case InsnClass::kJmp:
    case InsnClass::kJsr:
    case InsnClass::kRet:
      std::snprintf(buf, sizeof buf, "%s r%u, r%u", name, RaField(word),
                    d.src1);
      break;
    case InsnClass::kSyscall:
      std::snprintf(buf, sizeof buf, "syscall");
      break;
  }
  return buf;
}

}  // namespace tfsim
