#include "isa/isa.h"

namespace tfsim {

const char* ExceptionName(Exception e) {
  switch (e) {
    case Exception::kNone: return "none";
    case Exception::kIllegalOpcode: return "illegal-opcode";
    case Exception::kUnaligned: return "unaligned";
    case Exception::kDivZero: return "div-zero";
    case Exception::kOverflow: return "overflow";
    case Exception::kITlbMiss: return "itlb-miss";
    case Exception::kDTlbMiss: return "dtlb-miss";
  }
  return "?";
}

std::uint32_t EncodeR(Op op, int ra, int rb, int rc) {
  return (static_cast<std::uint32_t>(op) << 26) |
         (static_cast<std::uint32_t>(ra & 31) << 21) |
         (static_cast<std::uint32_t>(rb & 31) << 16) |
         (static_cast<std::uint32_t>(rc & 31) << 11);
}

std::uint32_t EncodeI(Op op, int ra, int rc, std::int64_t imm16) {
  return (static_cast<std::uint32_t>(op) << 26) |
         (static_cast<std::uint32_t>(ra & 31) << 21) |
         (static_cast<std::uint32_t>(rc & 31) << 16) |
         (static_cast<std::uint32_t>(imm16) & 0xFFFF);
}

std::uint32_t EncodeM(Op op, int ra, int rb, std::int64_t disp16) {
  return (static_cast<std::uint32_t>(op) << 26) |
         (static_cast<std::uint32_t>(ra & 31) << 21) |
         (static_cast<std::uint32_t>(rb & 31) << 16) |
         (static_cast<std::uint32_t>(disp16) & 0xFFFF);
}

std::uint32_t EncodeB(Op op, int ra, std::int64_t disp21) {
  return (static_cast<std::uint32_t>(op) << 26) |
         (static_cast<std::uint32_t>(ra & 31) << 21) |
         (static_cast<std::uint32_t>(disp21) & 0x1FFFFF);
}

std::uint32_t EncodeJ(Op op, int ra, int rb) {
  return (static_cast<std::uint32_t>(op) << 26) |
         (static_cast<std::uint32_t>(ra & 31) << 21) |
         (static_cast<std::uint32_t>(rb & 31) << 16);
}

namespace {

std::int64_t Sext32(std::uint64_t v) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
}

bool AddOverflows(std::int64_t a, std::int64_t b, std::int64_t sum) {
  return ((a ^ sum) & (b ^ sum)) < 0;
}

}  // namespace

AluResult ExecuteAlu(const DecodedInst& d, std::uint64_t a, std::uint64_t b) {
  const std::int64_t sa = static_cast<std::int64_t>(a);
  const std::int64_t sb = static_cast<std::int64_t>(b);
  switch (d.op) {
    case Op::kAddq:
    case Op::kAddqi:
      return {a + b, Exception::kNone};
    case Op::kSubq:
    case Op::kSubqi:
      return {a - b, Exception::kNone};
    case Op::kMulq:
    case Op::kMulqi:
      return {a * b, Exception::kNone};
    case Op::kDivq:
      if (b == 0) return {0, Exception::kDivZero};
      if (sa == INT64_MIN && sb == -1) return {0, Exception::kOverflow};
      return {static_cast<std::uint64_t>(sa / sb), Exception::kNone};
    case Op::kRemq:
      if (b == 0) return {0, Exception::kDivZero};
      if (sa == INT64_MIN && sb == -1) return {0, Exception::kOverflow};
      return {static_cast<std::uint64_t>(sa % sb), Exception::kNone};
    case Op::kUmulh: {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
      return {static_cast<std::uint64_t>(p >> 64), Exception::kNone};
    }
    case Op::kAndq:
    case Op::kAndqi:
      return {a & b, Exception::kNone};
    case Op::kBisq:
    case Op::kBisqi:
      return {a | b, Exception::kNone};
    case Op::kXorq:
    case Op::kXorqi:
      return {a ^ b, Exception::kNone};
    case Op::kBicq:
      return {a & ~b, Exception::kNone};
    case Op::kSllq:
    case Op::kSllqi:
      return {a << (b & 63), Exception::kNone};
    case Op::kSrlq:
    case Op::kSrlqi:
      return {a >> (b & 63), Exception::kNone};
    case Op::kSraq:
    case Op::kSraqi:
      return {static_cast<std::uint64_t>(sa >> (b & 63)), Exception::kNone};
    case Op::kCmpeq:
    case Op::kCmpeqi:
      return {a == b ? 1ULL : 0ULL, Exception::kNone};
    case Op::kCmplt:
    case Op::kCmplti:
      return {sa < sb ? 1ULL : 0ULL, Exception::kNone};
    case Op::kCmple:
    case Op::kCmplei:
      return {sa <= sb ? 1ULL : 0ULL, Exception::kNone};
    case Op::kCmpult:
    case Op::kCmpulti:
      return {a < b ? 1ULL : 0ULL, Exception::kNone};
    case Op::kCmpule:
    case Op::kCmpulei:
      return {a <= b ? 1ULL : 0ULL, Exception::kNone};
    case Op::kAddl:
    case Op::kAddli:
      return {static_cast<std::uint64_t>(Sext32(a + b)), Exception::kNone};
    case Op::kSubl:
      return {static_cast<std::uint64_t>(Sext32(a - b)), Exception::kNone};
    case Op::kMull:
      return {static_cast<std::uint64_t>(Sext32(a * b)), Exception::kNone};
    case Op::kSextb:
      return {static_cast<std::uint64_t>(static_cast<std::int8_t>(b)),
              Exception::kNone};
    case Op::kSextl:
      return {static_cast<std::uint64_t>(Sext32(b)), Exception::kNone};
    case Op::kAddv: {
      const std::int64_t sum = sa + sb;
      if (AddOverflows(sa, sb, sum)) return {0, Exception::kOverflow};
      return {static_cast<std::uint64_t>(sum), Exception::kNone};
    }
    case Op::kSubv: {
      const std::int64_t diff = sa - sb;
      if (AddOverflows(sa, -sb, diff) || sb == INT64_MIN)
        return {0, Exception::kOverflow};
      return {static_cast<std::uint64_t>(diff), Exception::kNone};
    }
    // LDA/LDAH compute like adds so that the AGU-free functional path and
    // any corrupted routing still have defined behaviour.
    case Op::kLda:
      return {a + b, Exception::kNone};
    case Op::kLdah:
      return {a + (b << 16), Exception::kNone};
    default:
      return {0, Exception::kIllegalOpcode};
  }
}

bool BranchTaken(Op op, std::uint64_t ra_value) {
  const std::int64_t v = static_cast<std::int64_t>(ra_value);
  switch (op) {
    case Op::kBr:
    case Op::kBsr:
      return true;
    case Op::kBeq: return v == 0;
    case Op::kBne: return v != 0;
    case Op::kBlt: return v < 0;
    case Op::kBle: return v <= 0;
    case Op::kBgt: return v > 0;
    case Op::kBge: return v >= 0;
    default: return false;
  }
}

int ComplexLatency(Op op) {
  switch (op) {
    case Op::kMulq:
    case Op::kMulqi:
    case Op::kMull:
      return 3;
    case Op::kUmulh:
      return 4;
    case Op::kDivq:
    case Op::kRemq:
      return 5;
    default:
      return 2;  // anything else routed to the complex ALU
  }
}

const char* OpName(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLda: return "lda";
    case Op::kLdah: return "ldah";
    case Op::kSyscall: return "syscall";
    case Op::kAddq: return "addq";
    case Op::kSubq: return "subq";
    case Op::kMulq: return "mulq";
    case Op::kDivq: return "divq";
    case Op::kAndq: return "andq";
    case Op::kBisq: return "bisq";
    case Op::kXorq: return "xorq";
    case Op::kBicq: return "bicq";
    case Op::kSllq: return "sllq";
    case Op::kSrlq: return "srlq";
    case Op::kSraq: return "sraq";
    case Op::kCmpeq: return "cmpeq";
    case Op::kCmplt: return "cmplt";
    case Op::kCmple: return "cmple";
    case Op::kCmpult: return "cmpult";
    case Op::kCmpule: return "cmpule";
    case Op::kAddl: return "addl";
    case Op::kSubl: return "subl";
    case Op::kMull: return "mull";
    case Op::kSextb: return "sextb";
    case Op::kSextl: return "sextl";
    case Op::kAddv: return "addv";
    case Op::kSubv: return "subv";
    case Op::kRemq: return "remq";
    case Op::kUmulh: return "umulh";
    case Op::kJmp: return "jmp";
    case Op::kJsr: return "jsr";
    case Op::kRet: return "ret";
    case Op::kAddqi: return "addqi";
    case Op::kSubqi: return "subqi";
    case Op::kMulqi: return "mulqi";
    case Op::kAndqi: return "andqi";
    case Op::kBisqi: return "bisqi";
    case Op::kXorqi: return "xorqi";
    case Op::kSllqi: return "sllqi";
    case Op::kSrlqi: return "srlqi";
    case Op::kSraqi: return "sraqi";
    case Op::kCmpeqi: return "cmpeqi";
    case Op::kCmplti: return "cmplti";
    case Op::kCmplei: return "cmplei";
    case Op::kCmpulti: return "cmpulti";
    case Op::kCmpulei: return "cmpulei";
    case Op::kAddli: return "addli";
    case Op::kBr: return "br";
    case Op::kBsr: return "bsr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBle: return "ble";
    case Op::kBgt: return "bgt";
    case Op::kBge: return "bge";
    case Op::kLdq: return "ldq";
    case Op::kLdl: return "ldl";
    case Op::kLdbu: return "ldbu";
    case Op::kStq: return "stq";
    case Op::kStl: return "stl";
    case Op::kStb: return "stb";
  }
  return "?";
}

}  // namespace tfsim
