// miniAlpha: the 64-bit Alpha-like RISC subset executed by both the
// functional simulator and the detailed pipeline model.
//
// The paper's processor executes an Alpha subset (no floating point, no
// synchronizing memory operations). miniAlpha mirrors the structural
// properties that matter for fault propagation: fixed 32-bit encodings,
// 32 integer registers with r31 hardwired to zero, register+displacement
// memory addressing, compare-against-zero conditional branches, and a
// small set of trapping instructions (divide-by-zero, overflow variants,
// unaligned access) so that corrupted instruction words can raise the same
// exception classes the paper observes.
//
// Encoding formats (op = bits [31:26]):
//   R  : op | ra[25:21] | rb[20:16] | rc[15:11] | zero[10:0]
//   I  : op | ra[25:21] | rc[20:16] | imm16[15:0]        (ALU immediate)
//   M  : op | ra[25:21] | rb[20:16] | disp16[15:0]       (memory, LDA/LDAH)
//   B  : op | ra[25:21] | disp21[20:0]                   (branches)
//   J  : op | ra[25:21] | rb[20:16] | zero[15:0]         (JMP/JSR/RET)
#pragma once

#include <cstdint>
#include <string>

namespace tfsim {

inline constexpr int kNumArchRegs = 32;
inline constexpr int kZeroReg = 31;  // r31 reads as zero, writes discarded

// Primary opcodes (6 bits). Every 6-bit value decodes to *something*:
// unassigned values decode to kIllegal, which raises an illegal-opcode
// exception if it reaches execution — a requirement for fault injection,
// where any bit pattern must have defined behaviour.
enum class Op : std::uint8_t {
  kIllegal = 0x00,
  kLda = 0x01,
  kLdah = 0x02,
  kSyscall = 0x03,
  // ALU register format, 0x04..0x1C.
  kAddq = 0x04,
  kSubq = 0x05,
  kMulq = 0x06,
  kDivq = 0x07,
  kAndq = 0x08,
  kBisq = 0x09,
  kXorq = 0x0A,
  kBicq = 0x0B,
  kSllq = 0x0C,
  kSrlq = 0x0D,
  kSraq = 0x0E,
  kCmpeq = 0x0F,
  kCmplt = 0x10,
  kCmple = 0x11,
  kCmpult = 0x12,
  kCmpule = 0x13,
  kAddl = 0x14,
  kSubl = 0x15,
  kMull = 0x16,
  kSextb = 0x17,
  kSextl = 0x18,
  kAddv = 0x19,
  kSubv = 0x1A,
  kRemq = 0x1B,
  kUmulh = 0x1C,
  kJmp = 0x1D,
  kJsr = 0x1E,
  kRet = 0x1F,
  // ALU immediate format, 0x20..0x2E (mirrors the common R-format ops).
  kAddqi = 0x20,
  kSubqi = 0x21,
  kMulqi = 0x22,
  kAndqi = 0x23,
  kBisqi = 0x24,
  kXorqi = 0x25,
  kSllqi = 0x26,
  kSrlqi = 0x27,
  kSraqi = 0x28,
  kCmpeqi = 0x29,
  kCmplti = 0x2A,
  kCmplei = 0x2B,
  kCmpulti = 0x2C,
  kCmpulei = 0x2D,
  kAddli = 0x2E,
  // Branch format, 0x30..0x37.
  kBr = 0x30,
  kBsr = 0x31,
  kBeq = 0x32,
  kBne = 0x33,
  kBlt = 0x34,
  kBle = 0x35,
  kBgt = 0x36,
  kBge = 0x37,
  // Memory format, 0x38..0x3D.
  kLdq = 0x38,
  kLdl = 0x39,
  kLdbu = 0x3A,
  kStq = 0x3B,
  kStl = 0x3C,
  kStb = 0x3D,
};

// Broad instruction classes driving pipeline routing.
enum class InsnClass : std::uint8_t {
  kIllegal,     // raises kIllegalOpcode when executed
  kAlu,         // single-cycle integer op (simple ALU)
  kAluComplex,  // multi-cycle integer op: mul/div/rem/umulh (complex ALU)
  kLoad,
  kStore,
  kCondBranch,
  kBr,      // unconditional PC-relative, writes return address
  kBsr,     // call: kBr + pushes return-address stack
  kJmp,     // indirect jump
  kJsr,     // indirect call: pushes RAS
  kRet,     // indirect return: pops RAS
  kSyscall, // serializing, executed at retirement
};

// Synchronous exception codes. These map onto the paper's Terminated/SDC
// failure modes: kIllegalOpcode/kUnaligned/kDivZero/kOverflow -> `except`,
// TLB misses -> `itlb`/`dtlb`.
enum class Exception : std::uint8_t {
  kNone = 0,
  kIllegalOpcode,
  kUnaligned,
  kDivZero,
  kOverflow,
  kITlbMiss,
  kDTlbMiss,
};

const char* ExceptionName(Exception e);

// Fully decoded instruction. Register fields are architectural indices;
// kNoReg marks absent operands. `imm` is already sign-extended.
inline constexpr std::uint8_t kNoReg = 0xFF;

struct DecodedInst {
  Op op = Op::kIllegal;
  InsnClass cls = InsnClass::kIllegal;
  std::uint8_t src1 = kNoReg;  // first register source
  std::uint8_t src2 = kNoReg;  // second register source
  std::uint8_t dst = kNoReg;   // register destination
  std::int64_t imm = 0;        // sign-extended immediate / displacement
  std::uint8_t mem_size = 0;   // 1/4/8 for memory ops, else 0

  bool IsBranchLike() const {
    return cls == InsnClass::kCondBranch || cls == InsnClass::kBr ||
           cls == InsnClass::kBsr || cls == InsnClass::kJmp ||
           cls == InsnClass::kJsr || cls == InsnClass::kRet;
  }
  bool IsMem() const {
    return cls == InsnClass::kLoad || cls == InsnClass::kStore;
  }
  // True when the branch target is a direct PC-relative displacement
  // (known at fetch/decode); indirect jumps resolve in the branch ALU.
  bool IsDirectBranch() const {
    return cls == InsnClass::kCondBranch || cls == InsnClass::kBr ||
           cls == InsnClass::kBsr;
  }
};

// Decodes any 32-bit word; never fails (unassigned opcodes -> kIllegal).
DecodedInst Decode(std::uint32_t word);

// Field extraction helpers (also used by the encoder tests).
inline std::uint8_t OpField(std::uint32_t w) {
  return static_cast<std::uint8_t>(w >> 26);
}
inline std::uint8_t RaField(std::uint32_t w) {
  return static_cast<std::uint8_t>((w >> 21) & 31);
}
inline std::uint8_t RbField(std::uint32_t w) {
  return static_cast<std::uint8_t>((w >> 16) & 31);
}
inline std::uint8_t RcField(std::uint32_t w) {
  return static_cast<std::uint8_t>((w >> 11) & 31);
}
inline std::int64_t Imm16Field(std::uint32_t w) {
  return static_cast<std::int16_t>(w & 0xFFFF);
}
inline std::int64_t Disp21Field(std::uint32_t w) {
  return (static_cast<std::int64_t>(w & 0x1FFFFF) << 43) >> 43;  // sext21
}

// Encoders (used by the assembler and tests).
std::uint32_t EncodeR(Op op, int ra, int rb, int rc);
std::uint32_t EncodeI(Op op, int ra, int rc, std::int64_t imm16);
std::uint32_t EncodeM(Op op, int ra, int rb, std::int64_t disp16);
std::uint32_t EncodeB(Op op, int ra, std::int64_t disp21);
std::uint32_t EncodeJ(Op op, int ra, int rb);

// Result of executing a (possibly trapping) ALU operation.
struct AluResult {
  std::uint64_t value = 0;
  Exception exc = Exception::kNone;
};

// Executes the integer semantics of a decoded ALU instruction given its two
// source values (src2 value is the immediate for I-format). Total: any
// DecodedInst yields a defined result (non-ALU classes return kIllegalOpcode,
// so corrupted scheduler payloads routed to an ALU behave deterministically).
AluResult ExecuteAlu(const DecodedInst& d, std::uint64_t a, std::uint64_t b);

// Branch direction for conditional branches given the ra source value.
bool BranchTaken(Op op, std::uint64_t ra_value);

// Execution latency in cycles on the complex ALU (2..5); simple ALU ops are 1.
int ComplexLatency(Op op);

// Human-readable mnemonic for an opcode ("addq", "ldq", ...).
const char* OpName(Op op);

// Disassembles one instruction word at `pc` (pc is used to render branch
// targets as absolute addresses).
std::string Disassemble(std::uint32_t word, std::uint64_t pc);

}  // namespace tfsim
