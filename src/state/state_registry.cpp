#include "state/state_registry.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace tfsim {
namespace {

std::uint64_t Contribution(std::size_t word_index, std::uint64_t value) {
  return value == 0
             ? 0
             : Mix64((static_cast<std::uint64_t>(word_index) + 1) *
                         0x9e3779b97f4a7c15ULL ^
                     Mix64(value));
}

}  // namespace

void WordFirstAccessTracker::Watch(std::size_t word,
                                   std::uint64_t from_cycle) {
  if (sealed_) throw std::logic_error("Watch() after Seal()");
  if (word >= slot_.size()) throw std::out_of_range("watched word");
  if (slot_[word] < 0) {
    slot_[word] = static_cast<std::int32_t>(lists_.size());
    lists_.emplace_back();
  }
  auto& entries = lists_[static_cast<std::size_t>(slot_[word])].entries;
  for (const Entry& e : entries) {
    if (e.from_cycle == from_cycle) return;  // duplicate (word, cycle) pair
  }
  entries.push_back(Entry{from_cycle, {}});
  ++outstanding_;
}

void WordFirstAccessTracker::Seal() {
  for (auto& list : lists_) {
    std::sort(list.entries.begin(), list.entries.end(),
              [](const Entry& a, const Entry& b) {
                return a.from_cycle < b.from_cycle;
              });
  }
  sealed_ = true;
}

void WordFirstAccessTracker::Resolve(std::size_t word, bool is_write) {
  WordEntries& list = lists_[static_cast<std::size_t>(slot_[word])];
  // Entries are sorted by from_cycle; an access at cycle_ answers every
  // still-pending watch whose injection cycle is at or before cycle_.
  while (list.head < list.entries.size() &&
         list.entries[list.head].from_cycle <= cycle_) {
    list.entries[list.head].result =
        FirstAccess{static_cast<std::int64_t>(cycle_), is_write};
    ++list.head;
    --outstanding_;
  }
}

WordFirstAccessTracker::FirstAccess WordFirstAccessTracker::Lookup(
    std::size_t word, std::uint64_t from_cycle) const {
  if (word >= slot_.size() || slot_[word] < 0) return {};
  const auto& entries = lists_[static_cast<std::size_t>(slot_[word])].entries;
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), from_cycle,
      [](const Entry& e, std::uint64_t c) { return e.from_cycle < c; });
  if (it == entries.end() || it->from_cycle != from_cycle) return {};
  return it->result;
}

bool WordFirstAccessTracker::Watched(std::size_t word,
                                     std::uint64_t from_cycle) const {
  if (word >= slot_.size() || slot_[word] < 0) return false;
  const auto& entries = lists_[static_cast<std::size_t>(slot_[word])].entries;
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), from_cycle,
      [](const Entry& e, std::uint64_t c) { return e.from_cycle < c; });
  return it != entries.end() && it->from_cycle == from_cycle;
}

const char* StateCatName(StateCat cat) {
  switch (cat) {
    case StateCat::kAddr: return "addr";
    case StateCat::kArchFreelist: return "archfreelist";
    case StateCat::kArchRat: return "archrat";
    case StateCat::kCtrl: return "ctrl";
    case StateCat::kData: return "data";
    case StateCat::kInsn: return "insn";
    case StateCat::kPc: return "pc";
    case StateCat::kQctrl: return "qctrl";
    case StateCat::kRegfile: return "regfile";
    case StateCat::kRegptr: return "regptr";
    case StateCat::kRobptr: return "robptr";
    case StateCat::kSpecFreelist: return "specfreelist";
    case StateCat::kSpecRat: return "specrat";
    case StateCat::kValid: return "valid";
    case StateCat::kEcc: return "ecc";
    case StateCat::kParity: return "parity";
    case StateCat::kNumCats: break;
  }
  return "?";
}

StateField StateRegistry::Allocate(std::string name, StateCat cat,
                                   Storage storage, std::size_t count,
                                   std::uint8_t width,
                                   std::source_location site) {
  if (width == 0 || width > 64)
    throw std::invalid_argument("field width must be 1..64");
  Field f;
  f.name = std::move(name);
  f.cat = cat;
  f.storage = storage;
  f.offset = words_.size();
  f.count = count;
  f.width = width;
  f.mask = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  f.site_file = site.file_name();
  f.site_line = site.line();
  words_.resize(words_.size() + count, 0);
  word_cat_.resize(words_.size(), static_cast<std::uint8_t>(cat));
  fields_.push_back(f);

  StateField h;
  h.reg_ = this;
  h.offset_ = f.offset;
  h.count_ = count;
  h.width_ = width;
  h.cat_ = cat;
  h.storage_ = storage;
  h.mask_ = f.mask;
  return h;
}

void StateRegistry::UpdateHash(std::size_t word_index, std::uint64_t before,
                               std::uint64_t after) {
  const std::uint64_t delta =
      Contribution(word_index, before) ^ Contribution(word_index, after);
  hash_ ^= delta;
  cat_hash_[word_cat_[word_index]] ^= delta;
}

std::uint64_t StateRegistry::RecomputeHash() const {
  std::uint64_t h = 0;
  for (std::size_t w = 0; w < words_.size(); ++w)
    h ^= Contribution(w, words_[w]);
  return h;
}

StateRegistry::CatHashArray StateRegistry::RecomputeCatHashes() const {
  CatHashArray h{};
  for (std::size_t w = 0; w < words_.size(); ++w)
    h[word_cat_[w]] ^= Contribution(w, words_[w]);
  return h;
}

std::uint64_t StateRegistry::InjectableBits(bool include_ram) const {
  std::uint64_t total = 0;
  for (const Field& f : fields_) {
    if (f.storage == Storage::kLatch ||
        (include_ram && f.storage == Storage::kRam))
      total += f.bits();
  }
  return total;
}

BitLocation StateRegistry::LocateBit(std::uint64_t index,
                                     bool include_ram) const {
  for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
    const Field& f = fields_[fi];
    const bool eligible = f.storage == Storage::kLatch ||
                          (include_ram && f.storage == Storage::kRam);
    if (!eligible) continue;
    if (index < f.bits()) {
      BitLocation loc;
      loc.field_index = fi;
      loc.element = index / f.width;
      loc.bit = static_cast<std::uint8_t>(index % f.width);
      loc.width = f.width;
      loc.cat = f.cat;
      loc.storage = f.storage;
      loc.name = f.name;
      return loc;
    }
    index -= f.bits();
  }
  throw std::out_of_range("bit index beyond injectable state");
}

void StateRegistry::FlipBit(const BitLocation& loc) {
  const Field& f = fields_.at(loc.field_index);
  const std::size_t w = f.offset + loc.element;
  const std::uint64_t before = words_[w];
  const std::uint64_t after = before ^ (1ULL << loc.bit);
  words_[w] = after;
  UpdateHash(w, before, after);
}

bool StateRegistry::ReadBit(const BitLocation& loc) const {
  const Field& f = fields_.at(loc.field_index);
  return (words_[f.offset + loc.element] >> loc.bit) & 1;
}

void StateRegistry::Restore(const std::vector<std::uint64_t>& snapshot) {
  if (snapshot.size() != words_.size())
    throw std::invalid_argument("snapshot size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != snapshot[w]) UpdateHash(w, words_[w], snapshot[w]);
  }
  words_ = snapshot;
}

StateRegistry::CategoryBits StateRegistry::Inventory(StateCat cat) const {
  CategoryBits b;
  for (const Field& f : fields_) {
    if (f.cat != cat) continue;
    if (f.storage == Storage::kLatch) b.latch_bits += f.bits();
    if (f.storage == Storage::kRam) b.ram_bits += f.bits();
  }
  return b;
}

StateRegistry::CategoryBits StateRegistry::TotalInjectable() const {
  CategoryBits b;
  for (const Field& f : fields_) {
    if (f.storage == Storage::kLatch) b.latch_bits += f.bits();
    if (f.storage == Storage::kRam) b.ram_bits += f.bits();
  }
  return b;
}

std::vector<StateRegistry::FieldInfo> StateRegistry::Fields() const {
  std::vector<FieldInfo> out;
  out.reserve(fields_.size());
  for (std::size_t i = 0; i < fields_.size(); ++i)
    out.push_back(FieldInfoAt(i));
  return out;
}

StateRegistry::FieldInfo StateRegistry::FieldInfoAt(std::size_t i) const {
  const Field& f = fields_.at(i);
  return {f.name, f.cat,       f.storage,   f.count,
          f.width, f.site_file, f.site_line};
}

}  // namespace tfsim
