// StateRegistry: the explicit, enumerable microarchitectural state of the
// pipeline model — the fault-injection surface.
//
// The paper's model is "latch-accurate": every state element of a real
// implementation exists in the model and vice versa, which is what makes a
// single-bit-flip fault model meaningful. This registry reproduces that
// property at the cycle level:
//
//   * Every pipeline structure allocates its storage here as a *field*:
//     `count` elements of `width` bits, tagged with the paper's Table 1
//     category (addr, archrat, ctrl, data, insn, pc, qctrl, regfile, regptr,
//     robptr, specfreelist, specrat, valid, + ecc/parity for Section 4) and
//     a storage class (latch vs RAM array vs non-injectable background).
//   * Pipeline logic reads values back from these fields each cycle — there
//     is no hidden shadow copy — so a flipped bit genuinely alters behaviour.
//   * A fault injection picks a bit uniformly over the eligible fields
//     (latches only, or latches+RAMs, per experiment) and flips it.
//   * The registry maintains an order-independent incremental content hash,
//     updated O(1) per write. Combined with Memory::ContentHash() this gives
//     the per-cycle whole-machine state-equality test behind the paper's
//     "μArch Match" outcome at negligible cost.
//   * Snapshot/Restore copies the whole word store, the basis of the
//     checkpoint-per-start-point methodology.
#pragma once

#include <array>
#include <cstdint>
#include <source_location>
#include <string>
#include <vector>

namespace tfsim {

// State categories, exactly the paper's Table 1 plus the two categories the
// Section 4 protection mechanisms introduce (Figure 9).
enum class StateCat : std::uint8_t {
  kAddr,
  kArchFreelist,
  kArchRat,
  kCtrl,
  kData,
  kInsn,
  kPc,
  kQctrl,
  kRegfile,
  kRegptr,
  kRobptr,
  kSpecFreelist,
  kSpecRat,
  kValid,
  kEcc,
  kParity,
  kNumCats,
};
inline constexpr int kNumStateCats = static_cast<int>(StateCat::kNumCats);

const char* StateCatName(StateCat cat);

// Storage implementation class. Latches and RAM arrays are the two
// injectable kinds the paper distinguishes (different fault rates, different
// protection options); background marks model state excluded from injection
// (cache arrays, predictor tables) but still part of machine state equality.
enum class Storage : std::uint8_t { kLatch, kRam, kBackground };

class StateRegistry;

// Records the FIRST access (read or write, in call order) to selected words
// at-or-after a per-watch start cycle. Installed on a StateRegistry only
// while the golden run records (see RecordGolden); normal simulation pays a
// single null-pointer check per field access.
//
// Semantics deliberately sit at the *call* level, before StateField::Set's
// no-change short-circuit: a write that happens to store the value already
// present in the golden run would still overwrite a flipped copy of that
// word in a faulty run, so it counts as a write here. That is exactly the
// property the trial fast path needs: if the first access to an injected
// word is a write, the faulty machine provably re-converges with the golden
// timeline at that cycle; if the word is never accessed inside the
// observation window, the fault provably stays latent (Gray Area). Only a
// first access that is a *read* forces a trial to actually simulate.
class WordFirstAccessTracker {
 public:
  struct FirstAccess {
    std::int64_t cycle = -1;  // -1: no access at-or-after from_cycle
    bool is_write = false;
  };

  explicit WordFirstAccessTracker(std::size_t word_count)
      : slot_(word_count, -1) {}

  // Registers interest in the first access to `word` at-or-after
  // `from_cycle`. Duplicate (word, from_cycle) pairs collapse. Must be
  // called before Seal().
  void Watch(std::size_t word, std::uint64_t from_cycle);
  // Sorts the pending lists; call once, after all Watch() calls.
  void Seal();

  // Recording-side interface.
  void SetCycle(std::uint64_t cycle) { cycle_ = cycle; }
  bool Done() const { return outstanding_ == 0; }
  void OnAccess(std::size_t word, bool is_write) {
    if (slot_[word] >= 0) Resolve(word, is_write);
  }

  // Query after recording. Returns cycle=-1 if (word, from_cycle) was never
  // watched or never accessed.
  FirstAccess Lookup(std::size_t word, std::uint64_t from_cycle) const;
  // Whether the exact (word, from_cycle) pair was registered — callers use
  // this to tell "never accessed" (a provable verdict) apart from "never
  // watched" (no data).
  bool Watched(std::size_t word, std::uint64_t from_cycle) const;

 private:
  struct Entry {
    std::uint64_t from_cycle = 0;
    FirstAccess result;
  };
  struct WordEntries {
    std::vector<Entry> entries;  // sorted ascending by from_cycle after Seal
    std::size_t head = 0;        // first unresolved entry
  };

  void Resolve(std::size_t word, bool is_write);

  std::vector<std::int32_t> slot_;  // word -> index into lists_, or -1
  std::vector<WordEntries> lists_;
  std::uint64_t cycle_ = 0;
  std::size_t outstanding_ = 0;
  bool sealed_ = false;
};

// Lightweight handle to an allocated field. Reads are direct; writes go
// through Set() so the registry's incremental hash stays consistent.
class StateField {
 public:
  StateField() = default;

  // Defined inline below StateRegistry: reads and the no-change write
  // fast path stay in the caller (the per-cycle invariant checker makes
  // hundreds of reads per cycle; only real writes pay the hash update).
  std::uint64_t Get(std::size_t i) const;
  void Set(std::size_t i, std::uint64_t value);

  // Convenience for 1-bit fields.
  bool GetBit(std::size_t i) const { return Get(i) != 0; }

  std::size_t count() const { return count_; }
  std::uint8_t width() const { return width_; }
  std::uint64_t mask() const { return mask_; }
  // Table-1 classification of the backing field (introspection for audits;
  // a default-constructed, unallocated handle reads as ctrl/latch).
  StateCat cat() const { return cat_; }
  Storage storage() const { return storage_; }
  // True once the handle is backed by a registry allocation.
  bool allocated() const { return reg_ != nullptr; }
  // Word index of element 0 in StateRegistry::WordsData() — lets bulk readers
  // (the per-cycle invariant checker) index one flat array instead of paying
  // Get()'s registry indirection on every probe.
  std::size_t offset() const { return offset_; }

 private:
  friend class StateRegistry;
  StateRegistry* reg_ = nullptr;
  std::size_t offset_ = 0;  // first word index in the registry store
  std::size_t count_ = 0;
  std::uint8_t width_ = 0;
  StateCat cat_ = StateCat::kCtrl;
  Storage storage_ = Storage::kLatch;
  std::uint64_t mask_ = 0;
};

// Identifies one bit of registered state (result of a uniform draw over the
// eligible bit space).
struct BitLocation {
  std::size_t field_index = 0;
  std::size_t element = 0;
  std::uint8_t bit = 0;
  std::uint8_t width = 0;  // element width (for adjacent multi-bit models)
  StateCat cat = StateCat::kCtrl;
  Storage storage = Storage::kLatch;
  std::string name;  // field name, for reporting
};

class StateRegistry {
 public:
  StateRegistry() = default;
  StateRegistry(const StateRegistry&) = delete;
  StateRegistry& operator=(const StateRegistry&) = delete;

  // Allocates `count` elements of `width` bits. Fields allocated in the same
  // order across two registry instances occupy identical word offsets — the
  // property that makes golden/faulty hash comparison meaningful. The call
  // site is recorded on the field (FieldInfo::site_file/site_line) so audits
  // like `tools/statelint` can map every registered bit back to the source
  // line that declared it.
  StateField Allocate(std::string name, StateCat cat, Storage storage,
                      std::size_t count, std::uint8_t width,
                      std::source_location site =
                          std::source_location::current());

  // Incremental content hash over every registered word (background
  // included). O(1) to read.
  std::uint64_t Hash() const { return hash_; }

  // Per-category incremental content hash (same contribution function as
  // Hash(), partitioned by the owning field's StateCat). Comparing these
  // against a golden run's at the same cycle tells WHICH structures hold
  // divergent state — the basis of fault-propagation tracing. O(1) to read;
  // maintenance piggybacks on the existing per-write hash update.
  std::uint64_t CatHash(StateCat cat) const {
    return cat_hash_[static_cast<std::size_t>(cat)];
  }
  using CatHashArray = std::array<std::uint64_t, kNumStateCats>;
  const CatHashArray& CatHashes() const { return cat_hash_; }

  // Full recomputation; used by tests to validate the incremental hash.
  std::uint64_t RecomputeHash() const;
  CatHashArray RecomputeCatHashes() const;

  // --- fault injection ----------------------------------------------------

  // Total injectable bits. include_ram=false restricts to latches, matching
  // the paper's latch-only campaigns.
  std::uint64_t InjectableBits(bool include_ram) const;

  // Maps a uniform index in [0, InjectableBits(include_ram)) to a bit.
  BitLocation LocateBit(std::uint64_t index, bool include_ram) const;

  // Flips the bit (hash kept consistent).
  void FlipBit(const BitLocation& loc);
  // Reads the bit's current value (diagnostics/tests).
  bool ReadBit(const BitLocation& loc) const;

  // --- snapshotting ---------------------------------------------------------

  std::vector<std::uint64_t> Snapshot() const { return words_; }
  void Restore(const std::vector<std::uint64_t>& snapshot);

  // --- inventory (Table 1) --------------------------------------------------

  struct CategoryBits {
    std::uint64_t latch_bits = 0;
    std::uint64_t ram_bits = 0;
  };
  CategoryBits Inventory(StateCat cat) const;
  CategoryBits TotalInjectable() const;

  struct FieldInfo {
    std::string name;
    StateCat cat = StateCat::kCtrl;
    Storage storage = Storage::kLatch;
    std::size_t count = 0;
    std::uint8_t width = 0;
    // Allocation site (the Allocate() call that created the field).
    const char* site_file = "";
    std::uint32_t site_line = 0;
    std::uint64_t bits() const { return count * width; }
  };
  std::vector<FieldInfo> Fields() const;
  std::size_t FieldCount() const { return fields_.size(); }
  FieldInfo FieldInfoAt(std::size_t i) const;

  std::size_t WordCount() const { return words_.size(); }

  // Read-only view of the whole word store (stable once allocation is done).
  // Pair with StateField::offset(): w[f.offset() + i] == f.Get(i), already
  // masked because every write goes through Set().
  const std::uint64_t* WordsData() const { return words_.data(); }

  // Flat word index backing a located bit (for snapshot deltas and the
  // fast-path access tracker).
  std::size_t WordIndexOf(const BitLocation& loc) const {
    return fields_[loc.field_index].offset + loc.element;
  }

  // Overwrites one word with a value captured from another registry of the
  // same layout, keeping the incremental hashes consistent. Values must
  // already be masked (they are, if they came from WordsData()/Snapshot()).
  void OverwriteWord(std::size_t word, std::uint64_t value) {
    const std::uint64_t before = words_[word];
    if (before == value) return;
    words_[word] = value;
    UpdateHash(word, before, value);
  }

  // --- access tracking ------------------------------------------------------

  // Installs (or removes, with nullptr) a first-access tracker. Every
  // StateField::Get/Set call reports to it, including writes short-circuited
  // by the no-change fast path. Null by default; only golden-run recording
  // installs one, and only around Core::Cycle() so instrumentation reads
  // (hashes, occupancy samples) don't pollute the access stream.
  void SetAccessTracker(WordFirstAccessTracker* tracker) { tracker_ = tracker; }
  WordFirstAccessTracker* access_tracker() const { return tracker_; }

 private:
  friend class StateField;

  struct Field {
    std::string name;
    StateCat cat;
    Storage storage;
    std::size_t offset;
    std::size_t count;
    std::uint8_t width;
    std::uint64_t mask;
    const char* site_file;  // source_location storage is static-duration
    std::uint32_t site_line;
    std::uint64_t bits() const { return count * width; }
  };

  void UpdateHash(std::size_t word_index, std::uint64_t before,
                  std::uint64_t after);

  std::vector<std::uint64_t> words_;
  std::vector<Field> fields_;
  // Category of each word, parallel to words_ (for the per-category hash).
  std::vector<std::uint8_t> word_cat_;
  std::uint64_t hash_ = 0;
  CatHashArray cat_hash_{};
  WordFirstAccessTracker* tracker_ = nullptr;
};

inline std::uint64_t StateField::Get(std::size_t i) const {
  const std::size_t w = offset_ + i;
  if (reg_->tracker_ != nullptr) reg_->tracker_->OnAccess(w, false);
  return reg_->words_[w];
}

inline void StateField::Set(std::size_t i, std::uint64_t value) {
  const std::size_t w = offset_ + i;
  // Report before the no-change short-circuit: a value-preserving write in
  // the golden run still counts as an overwrite for fault convergence.
  if (reg_->tracker_ != nullptr) reg_->tracker_->OnAccess(w, true);
  const std::uint64_t before = reg_->words_[w];
  const std::uint64_t after = value & mask_;
  if (before == after) return;
  reg_->words_[w] = after;
  reg_->UpdateHash(w, before, after);
}

}  // namespace tfsim
