#include "protect/ecc.h"

namespace tfsim {
namespace {

bool DataBit(const Word65& d, int i) {
  return i < 64 ? ((d.lo >> i) & 1) != 0 : d.hi;
}

void SetDataBit(Word65& d, int i, bool v) {
  if (i < 64) {
    d.lo = (d.lo & ~(1ULL << i)) | (static_cast<std::uint64_t>(v) << i);
  } else {
    d.hi = v;
  }
}

bool IsPow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

// Number of Hamming check bits required for k data bits.
int HammingBits(int k) {
  int r = 0;
  while ((1 << r) < k + r + 1) ++r;
  return r;
}

}  // namespace

std::uint64_t EccEncode(Word65 data, int k, int r) {
  const int rh = HammingBits(k);
  const bool dedp = r > rh;  // extra overall-parity bit
  const int n = k + rh;      // codeword length (1-indexed positions)

  // Lay data bits into non-power-of-two positions.
  std::uint64_t check = 0;
  int di = 0;
  bool overall = false;
  for (int pos = 1; pos <= n; ++pos) {
    if (IsPow2(pos)) continue;
    const bool bit = DataBit(data, di++);
    overall ^= bit;
    if (!bit) continue;
    // This data bit feeds every check bit whose index divides its position.
    for (int c = 0; c < rh; ++c)
      if (pos & (1 << c)) check ^= 1ULL << c;
  }
  if (dedp) {
    // Overall parity covers data + hamming check bits.
    bool p = overall;
    for (int c = 0; c < rh; ++c) p ^= ((check >> c) & 1) != 0;
    check |= static_cast<std::uint64_t>(p) << rh;
  }
  return check;
}

EccDecodeResult EccDecode(Word65 data, std::uint64_t check, int k, int r) {
  EccDecodeResult out;
  out.data = data;
  out.check = check;

  const int rh = HammingBits(k);
  const bool dedp = r > rh;
  const std::uint64_t expected = EccEncode(data, k, rh);  // hamming part only
  const std::uint64_t stored_h = check & ((1ULL << rh) - 1);
  const std::uint64_t syndrome = expected ^ stored_h;

  bool overall_mismatch = false;
  if (dedp) {
    bool p = false;
    int di = 0;
    const int n = k + rh;
    for (int pos = 1; pos <= n; ++pos) {
      if (IsPow2(pos)) continue;
      p ^= DataBit(data, di++);
    }
    for (int c = 0; c < rh; ++c) p ^= ((stored_h >> c) & 1) != 0;
    overall_mismatch = p != (((check >> rh) & 1) != 0);
  }

  if (syndrome == 0) {
    if (dedp && overall_mismatch) {
      // Error in the overall parity bit itself: repair it.
      out.check = expected | (static_cast<std::uint64_t>(
                                  !((check >> rh) & 1))
                              << rh);
      out.corrected = true;
    }
    return out;
  }

  if (dedp && !overall_mismatch) {
    // Non-zero syndrome with even overall parity: double error.
    out.uncorrectable = true;
    return out;
  }

  const int pos = static_cast<int>(syndrome);
  if (IsPow2(pos)) {
    // A check bit flipped; the data is fine. Repair the check bits.
    int c = 0;
    while ((1 << c) != pos) ++c;
    out.check = check ^ (1ULL << c);
    out.corrected = true;
    return out;
  }
  if (pos > k + rh) {
    out.uncorrectable = true;  // syndrome names a non-existent position
    return out;
  }
  // Map position back to the data bit index it holds.
  int di = 0;
  for (int p = 1; p < pos; ++p)
    if (!IsPow2(p)) ++di;
  SetDataBit(out.data, di, !DataBit(out.data, di));
  out.corrected = true;
  return out;
}

}  // namespace tfsim
