// Hamming single-error-correcting codes used by the Section 4 protection
// mechanisms:
//   * (72,65) SEC-DED for physical register file entries — 8 check bits per
//     65-bit entry, exactly the paper's overhead ("eight bits for each of
//     the 80 register file entries").
//   * (11,7) SEC for physical register pointers — 4 check bits per 7-bit
//     pointer ("4 bits of overhead to each 7 bit register file pointer").
//
// The codec is generic over data width k <= 65 using the classic scheme:
// bit positions 1..n, power-of-two positions hold check bits, check bit p
// covers every position with bit p set in its index; the syndrome names the
// corrupted position. An optional overall-parity bit extends SEC to SEC-DED.
#pragma once

#include <cstdint>

namespace tfsim {

inline constexpr int kRegfileDataBits = 65;
inline constexpr int kRegfileEccBits = 8;  // 7 Hamming + overall parity
inline constexpr int kRegptrDataBits = 7;
inline constexpr int kRegptrEccBits = 4;   // Hamming(11,7)

// 65-bit values travel as (lo 64 bits, bit 64) pairs.
struct Word65 {
  std::uint64_t lo = 0;
  bool hi = false;
  bool operator==(const Word65&) const = default;
};

// Computes the check bits for `k` data bits (k <= 65) with `r` check bits.
// When r exceeds the Hamming requirement by one, the extra bit is an overall
// parity bit (SEC-DED).
std::uint64_t EccEncode(Word65 data, int k, int r);

struct EccDecodeResult {
  Word65 data;              // possibly corrected data
  std::uint64_t check = 0;  // possibly corrected check bits
  bool corrected = false;   // a single-bit error was repaired
  bool uncorrectable = false;  // double error detected (SEC-DED only)
};

// Checks and (single-bit) corrects a data/check pair.
EccDecodeResult EccDecode(Word65 data, std::uint64_t check, int k, int r);

// Convenience wrappers for the two concrete codes.
inline std::uint64_t EncodeRegfileEcc(Word65 v) {
  return EccEncode(v, kRegfileDataBits, kRegfileEccBits);
}
inline EccDecodeResult DecodeRegfileEcc(Word65 v, std::uint64_t check) {
  return EccDecode(v, check, kRegfileDataBits, kRegfileEccBits);
}
inline std::uint64_t EncodeRegptrEcc(std::uint64_t ptr) {
  return EccEncode({ptr & 0x7F, false}, kRegptrDataBits, kRegptrEccBits);
}
inline EccDecodeResult DecodeRegptrEcc(std::uint64_t ptr,
                                       std::uint64_t check) {
  return EccDecode({ptr & 0x7F, false}, check, kRegptrDataBits,
                   kRegptrEccBits);
}

}  // namespace tfsim
