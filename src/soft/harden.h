// Software-only fault hardening for miniAlpha programs, after SWIFT
// (Reis et al.) and the Azambuja et al. catalog of SEU/SET software
// techniques the paper's protection study points to:
//
//   * Duplication (kDup): every value-producing instruction is re-executed
//     into a shadow copy, and the shadow is compared against the master
//     before the value can escape — at stores (data and address registers),
//     at conditional branches (the decision register), and at syscalls (the
//     ABI registers). Register pressure makes true shadow *registers*
//     impossible on the workloads (they use most of the file), so shadows
//     live in a dedicated memory region: one 8-byte slot per architectural
//     register at shadow_base + 8*r, addressed off a reserved base register.
//     Comparison failure jumps to a fault block holding an illegal opcode —
//     fail-stop detection, converting would-be SDC into a Terminated/except
//     outcome the campaign machinery already classifies.
//
//   * Control-flow checking (kCfc): every basic block is assigned a
//     signature constant; a reserved register G carries the signature of the
//     block just exited, and each block entry checks G against the
//     signatures of its CFG predecessors (CFCSS-style), so a corrupted
//     branch that lands at any block entry other than a legal successor is
//     detected. Branch targets are remapped to land exactly at the checks;
//     indirect jumps work because their li/la target materializations are
//     rewritten to the hardened layout.
//
//   * kFull: both.
//
// The transform is static Program -> Program: the hardened image runs
// unmodified on the functional simulator and the pipeline (identical
// architectural output when fault-free — a tier-1 cosim test), and campaigns
// treat it as just another workload ("gzip+sw"), with distinct cache keys
// because CacheKey hashes the workload string.
//
// VerifyHardened is the analyzer side: it independently re-derives the
// hardening plan from the original program and checks the hardened text
// component by component (prologue, per-edge signature checks, per-value
// duplication, per-store/branch/syscall guards, fault block), classifying
// every deviation as a structured asmlint finding — the transform is
// audited, not trusted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analyze/asm/asmlint.h"
#include "isa/assemble.h"

namespace tfsim {

enum class HardenMode : std::uint8_t { kCfc, kDup, kFull };

const char* HardenModeName(HardenMode m);

// The reserved-register and layout decisions, derived deterministically from
// the original program alone (so the verifier can re-derive them without
// trusting the transform). PlanHarden throws std::runtime_error when the
// program is not hardenable: unresolved indirect jumps, branch targets
// outside the text chunk, or too few unused registers for the mode.
struct HardenPlan {
  HardenMode mode = HardenMode::kFull;
  // Reserved registers (kNoReg when the mode does not need the role):
  std::uint8_t sb = kNoReg;  // shadow-slot base pointer
  std::uint8_t s1 = kNoReg;  // shadow scratch (first source)
  std::uint8_t s2 = kNoReg;  // shadow scratch (second source)
  std::uint8_t s3 = kNoReg;  // shadow result
  std::uint8_t g = kNoReg;   // control-flow signature
  std::uint8_t t = kNoReg;   // comparison temporary
  std::uint64_t shadow_base = 0;
  // Per-original-basic-block signature constants (imm16), plus the synthetic
  // prologue signature accepted by the entry block.
  std::vector<std::int64_t> sig;
  std::int64_t prologue_sig = 1;

  std::uint32_t ReservedMask() const;
  bool Dup() const { return mode != HardenMode::kCfc; }
  bool Cfc() const { return mode != HardenMode::kDup; }
};

HardenPlan PlanHarden(const analyze::AsmProgram& orig, const analyze::Cfg& cfg,
                      HardenMode mode);

// A hardened program plus the emission trace VerifyHardened uses to attribute
// word-level deviations to finding classes.
struct HardenedProgram {
  Program program;
  HardenPlan plan;
  struct Component {
    analyze::AsmFindingKind kind;  // finding class if this span is corrupted
    std::uint64_t orig_addr = 0;   // original-program location for findings
    std::size_t first_word = 0;    // span in the hardened text, in words
    std::size_t num_words = 0;
    const char* what = "";
  };
  std::vector<Component> components;
  std::vector<std::size_t> block_start_word;  // per original block
  std::size_t fault_word = 0;
};

HardenedProgram Harden(const Program& orig, HardenMode mode);

// Statically verifies that `hardened` is a correctly hardened `orig`:
// re-derives the plan from `orig`, walks the hardened text component by
// component, and reports every deviation (missing or corrupted duplication,
// guard, signature check/set, clobbered reserved state, broken fault block)
// as findings. Empty result == proven-hardened.
std::vector<analyze::AsmFinding> VerifyHardened(const Program& orig,
                                                const Program& hardened,
                                                HardenMode mode,
                                                const std::string& unit);

// --- campaign integration --------------------------------------------------
// Workload-name suffixes select software protection: "gzip+sw" (full),
// "gzip+swdup", "gzip+swcfc". CampaignSpec::CacheKey hashes the full string,
// so hardened variants get distinct cache keys for free.
std::optional<HardenMode> ParseHardenSuffix(const std::string& workload,
                                            std::string* base_name);

// Builds the campaign program for a (possibly suffixed) workload name:
// BuildWorkload(base, kCampaignIters), hardened per the suffix. The single
// program-construction point for campaign.cpp / report.cpp / sweep.cpp.
Program ResolveCampaignProgram(const std::string& workload);

}  // namespace tfsim
