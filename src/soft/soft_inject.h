// Section 5: architectural-level fault injection on the functional
// simulator (the paper's modified SimpleScalar). A randomly selected dynamic
// instruction is forced to execute incorrectly under one of six fault
// models; the run is then monitored for one of four outcomes.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "isa/assemble.h"
#include "util/stats.h"

namespace tfsim {

// The paper's six architectural fault models (Section 5).
enum class SoftFaultModel : std::uint8_t {
  kRegBit32,     // (1) single bit flip in the low 32 bits of a reg write
  kRegBit64,     // (2) single bit flip across all 64 bits of a reg write
  kRegRandom,    // (3) replace a reg-write result with 64 random bits
  kInsnBit,      // (4) single bit flip in an instruction word
  kNop,          // (5) convert an instruction to a no-op
  kBranchFlip,   // (6) force a conditional branch the wrong way
};
inline constexpr int kNumSoftFaultModels = 6;
const char* SoftFaultModelName(SoftFaultModel m);

// The paper's four outcomes (Section 5).
enum class SoftOutcome : std::uint8_t {
  kException,  // a "noisy" failure (includes runaway executions, see DESIGN)
  kStateOk,    // architectural state fully converged before a syscall
  kOutputOk,   // state diverged but program output was identical
  kOutputBad,  // user-visible output corrupted
};
inline constexpr int kNumSoftOutcomes = 4;
const char* SoftOutcomeName(SoftOutcome o);

struct SoftTrialResult {
  SoftOutcome outcome = SoftOutcome::kOutputBad;
  // The fault transiently changed control flow before being masked (the
  // paper reports 10-20% of State OK trials had divergent control flow).
  bool control_flow_diverged = false;
  std::uint64_t insns_executed = 0;
};

struct SoftCampaignSpec {
  std::string workload;
  std::uint64_t iters = 40;        // workload size (must run to completion)
  SoftFaultModel model = SoftFaultModel::kRegBit64;
  int trials = 300;
  std::uint64_t seed = 5;
  std::uint64_t max_insn_factor = 4;  // runaway bound vs reference length
};

struct SoftCampaignResult {
  SoftCampaignSpec spec;
  std::array<std::uint64_t, kNumSoftOutcomes> by_outcome{};
  std::uint64_t state_ok_with_divergence = 0;
  std::uint64_t trials = 0;

  Proportion Rate(SoftOutcome o) const {
    return MakeProportion(by_outcome[static_cast<int>(o)], trials);
  }
};

// Runs one architectural-level injection trial: executes the program with a
// fault applied to the `target`-th dynamic instruction and classifies the
// outcome against a fault-free reference execution.
SoftTrialResult RunSoftTrial(const Program& program, SoftFaultModel model,
                             std::uint64_t target_insn, std::uint64_t rng_seed,
                             std::uint64_t max_insns);

// Runs a campaign (targets drawn uniformly over the dynamic instruction
// stream). Uses the on-disk cache via the same TFI_CACHE_DIR mechanism.
SoftCampaignResult RunSoftCampaign(const SoftCampaignSpec& spec,
                                   bool verbose = true);

}  // namespace tfsim
