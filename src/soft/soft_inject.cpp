#include "soft/soft_inject.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "arch/functional_sim.h"
#include "inject/cache.h"
#include "util/rng.h"
#include "soft/harden.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

// Is this dynamic instruction an eligible fault target for the model?
bool Eligible(SoftFaultModel model, const DecodedInst& d) {
  switch (model) {
    case SoftFaultModel::kRegBit32:
    case SoftFaultModel::kRegBit64:
    case SoftFaultModel::kRegRandom:
      return d.dst != kNoReg;  // instructions that write a register
    case SoftFaultModel::kInsnBit:
    case SoftFaultModel::kNop:
      return true;
    case SoftFaultModel::kBranchFlip:
      return d.cls == InsnClass::kCondBranch;
  }
  return false;
}

// Inverted conditional-branch opcode (beq<->bne, blt<->bge, ble<->bgt).
Op InvertBranch(Op op) {
  switch (op) {
    case Op::kBeq: return Op::kBne;
    case Op::kBne: return Op::kBeq;
    case Op::kBlt: return Op::kBge;
    case Op::kBge: return Op::kBlt;
    case Op::kBle: return Op::kBgt;
    case Op::kBgt: return Op::kBle;
    default: return op;
  }
}

// Reference execution record.
struct Reference {
  std::vector<std::uint64_t> pc_trace;           // pc per dynamic insn
  std::vector<std::uint64_t> syscall_hashes;     // state hash before each
  std::vector<std::uint8_t> output;
  std::uint64_t total_insns = 0;
  std::uint64_t eligible[kNumSoftFaultModels] = {};
};

Reference RunReference(const Program& program, std::uint64_t max_insns) {
  Reference ref;
  FunctionalSim sim(program);
  while (sim.Running() && ref.total_insns < max_insns) {
    const std::uint64_t pc = sim.state().pc;
    const DecodedInst d =
        Decode(static_cast<std::uint32_t>(sim.state().mem.Read(pc, 4)));
    if (d.cls == InsnClass::kSyscall)
      ref.syscall_hashes.push_back(sim.state().Hash());
    for (int m = 0; m < kNumSoftFaultModels; ++m)
      if (Eligible(static_cast<SoftFaultModel>(m), d)) ++ref.eligible[m];
    ref.pc_trace.push_back(pc);
    sim.Step();
    ++ref.total_insns;
  }
  ref.output = sim.state().output;
  return ref;
}

}  // namespace

const char* SoftFaultModelName(SoftFaultModel m) {
  switch (m) {
    case SoftFaultModel::kRegBit32: return "reg-bit-32";
    case SoftFaultModel::kRegBit64: return "reg-bit-64";
    case SoftFaultModel::kRegRandom: return "reg-random-64";
    case SoftFaultModel::kInsnBit: return "insn-bit";
    case SoftFaultModel::kNop: return "to-nop";
    case SoftFaultModel::kBranchFlip: return "branch-flip";
  }
  return "?";
}

const char* SoftOutcomeName(SoftOutcome o) {
  switch (o) {
    case SoftOutcome::kException: return "Exception";
    case SoftOutcome::kStateOk: return "State OK";
    case SoftOutcome::kOutputOk: return "Output OK";
    case SoftOutcome::kOutputBad: return "Output Bad";
  }
  return "?";
}

// Content fingerprint for the reference cache: a stale pointer to a
// different program must never match (program objects are routinely
// reconstructed at the same address across campaigns).
static std::uint64_t Fingerprint(const Program& program) {
  std::uint64_t h = Mix64(program.entry + 1);
  for (const auto& chunk : program.chunks) {
    h = Mix64(h ^ chunk.addr);
    for (std::size_t i = 0; i < chunk.bytes.size(); i += 97)
      h = Mix64(h ^ (static_cast<std::uint64_t>(chunk.bytes[i]) << (i % 56)));
    h = Mix64(h ^ chunk.bytes.size());
  }
  return h;
}

SoftTrialResult RunSoftTrial(const Program& program, SoftFaultModel model,
                             std::uint64_t target_insn, std::uint64_t rng_seed,
                             std::uint64_t max_insns) {
  // The fault-free reference is computed once per distinct program (keyed by
  // content, not address) and reused across trials.
  static thread_local struct {
    std::uint64_t key = 0;
    Reference ref;
  } cache;
  const std::uint64_t key = Fingerprint(program);
  if (cache.key != key) {
    cache.ref = RunReference(program, 1ULL << 40);
    cache.key = key;
  }
  const Reference& ref = cache.ref;

  SoftTrialResult result;
  Rng rng(rng_seed);
  FunctionalSim sim(program);

  std::uint64_t eligible_seen = 0;
  std::uint64_t insns = 0;
  std::size_t syscalls_seen = 0;
  bool injected = false;

  while (sim.Running() && insns < max_insns) {
    const std::uint64_t pc = sim.state().pc;
    const std::uint32_t word =
        static_cast<std::uint32_t>(sim.state().mem.Read(pc, 4));
    const DecodedInst d = Decode(word);

    // Control-flow divergence vs the reference at the same dynamic index.
    if (insns < ref.pc_trace.size() && ref.pc_trace[insns] != pc)
      result.control_flow_diverged = true;

    // State-convergence check at syscall boundaries (Section 5: "prior to a
    // system call"). Exact state equality implies the remainder of the run
    // is identical, so the fault has been fully masked.
    if (injected && d.cls == InsnClass::kSyscall &&
        syscalls_seen < ref.syscall_hashes.size() &&
        sim.state().Hash() == ref.syscall_hashes[syscalls_seen]) {
      result.outcome = SoftOutcome::kStateOk;
      result.insns_executed = insns;
      return result;
    }
    if (d.cls == InsnClass::kSyscall) ++syscalls_seen;

    const bool is_target =
        !injected && Eligible(model, d) && eligible_seen++ == target_insn;
    if (!is_target) {
      sim.Step();
      ++insns;
      continue;
    }
    injected = true;

    switch (model) {
      case SoftFaultModel::kRegBit32:
      case SoftFaultModel::kRegBit64:
      case SoftFaultModel::kRegRandom: {
        sim.Step();
        ++insns;
        if (d.dst != kNoReg && sim.pending_exception() == Exception::kNone) {
          std::uint64_t v = sim.state().Reg(d.dst);
          if (model == SoftFaultModel::kRegRandom) v = rng.Next();
          else if (model == SoftFaultModel::kRegBit32) v ^= 1ULL << rng.NextBelow(32);
          else v ^= 1ULL << rng.NextBelow(64);
          sim.state().SetReg(d.dst, v);
        }
        break;
      }
      case SoftFaultModel::kInsnBit:
      case SoftFaultModel::kNop:
      case SoftFaultModel::kBranchFlip: {
        // Transiently replace the instruction word for one execution.
        std::uint32_t faulty = word;
        if (model == SoftFaultModel::kInsnBit) {
          faulty = word ^ (1u << rng.NextBelow(32));
        } else if (model == SoftFaultModel::kNop) {
          faulty = EncodeR(Op::kBisq, kZeroReg, kZeroReg, kZeroReg);
        } else {
          faulty = (word & 0x03FFFFFF) |
                   (static_cast<std::uint32_t>(InvertBranch(d.op)) << 26);
        }
        sim.state().mem.Write(pc, faulty, 4);
        sim.Step();
        sim.state().mem.Write(pc, word, 4);  // the fault is transient
        ++insns;
        break;
      }
    }
  }

  result.insns_executed = insns;
  if (sim.pending_exception() != Exception::kNone || insns >= max_insns) {
    // Exceptions are noisy failures; runaway executions are classified the
    // same way (the paper's four categories have no separate hang bucket).
    result.outcome = SoftOutcome::kException;
  } else if (sim.state().output == ref.output) {
    result.outcome = SoftOutcome::kOutputOk;
  } else {
    result.outcome = SoftOutcome::kOutputBad;
  }
  return result;
}

SoftCampaignResult RunSoftCampaign(const SoftCampaignSpec& spec,
                                   bool verbose) {
  SoftCampaignResult result;
  result.spec = spec;

  // On-disk cache (same directory as the pipeline campaigns).
  std::uint64_t key = Mix64(0x50F7 + 2);
  for (char c : spec.workload) key = Mix64(key ^ static_cast<std::uint64_t>(c));
  key = Mix64(key ^ static_cast<std::uint64_t>(spec.model));
  key = Mix64(key ^ spec.iters);
  key = Mix64(key ^ static_cast<std::uint64_t>(spec.trials));
  key = Mix64(key ^ spec.seed);
  std::ostringstream name;
  name << "soft_" << spec.workload << "_" << SoftFaultModelName(spec.model)
       << "_" << std::hex << key << ".txt";
  const std::filesystem::path path =
      std::filesystem::path(CacheDir()) / name.str();
  if (std::ifstream in(path); in) {
    std::string magic;
    std::getline(in, magic);
    if (magic == "tfi-soft v1") {
      in >> result.trials;
      for (auto& v : result.by_outcome) in >> v;
      in >> result.state_ok_with_divergence;
      if (in) return result;
    }
    result = SoftCampaignResult{};
    result.spec = spec;
  }

  // Harden-suffixed names ("gzip+sw", ...) run the software-hardened
  // variant; the cache key above hashes the full workload string, so the
  // variants are cached apart from their bases for free.
  std::string base;
  const auto hmode = ParseHardenSuffix(spec.workload, &base);
  Program program = BuildWorkload(WorkloadByName(base), spec.iters,
                                  /*emit_each_iteration=*/true);
  if (hmode) program = Harden(program, *hmode).program;
  const Reference ref = RunReference(program, 1ULL << 40);
  const std::uint64_t max_insns = ref.total_insns * spec.max_insn_factor;
  const std::uint64_t eligible = ref.eligible[static_cast<int>(spec.model)];

  Rng rng(spec.seed);
  for (int t = 0; t < spec.trials; ++t) {
    const std::uint64_t target = rng.NextBelow(eligible);
    const SoftTrialResult r =
        RunSoftTrial(program, spec.model, target, rng.Next(), max_insns);
    result.by_outcome[static_cast<int>(r.outcome)]++;
    if (r.outcome == SoftOutcome::kStateOk && r.control_flow_diverged)
      ++result.state_ok_with_divergence;
    ++result.trials;
    if (verbose && (t + 1) % 100 == 0)
      std::fprintf(stderr, "[soft %s/%s] %d/%d trials\n",
                   spec.workload.c_str(), SoftFaultModelName(spec.model),
                   t + 1, spec.trials);
  }

  std::error_code ec;
  std::filesystem::create_directories(CacheDir(), ec);
  if (std::ofstream out(path); out) {
    out << "tfi-soft v1\n" << result.trials << '\n';
    for (auto v : result.by_outcome) out << v << ' ';
    out << '\n' << result.state_ok_with_divergence << '\n';
  }
  return result;
}

}  // namespace tfsim
