#include "soft/harden.h"

#include <algorithm>
#include <cstring>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "analyze/asm/cfg.h"
#include "analyze/asm/dataflow.h"
#include "workloads/workloads.h"

namespace tfsim {

using analyze::AsmFinding;
using analyze::AsmFindingKind;
using analyze::AsmInst;
using analyze::AsmProgram;
using analyze::BasicBlock;
using analyze::Cfg;

const char* HardenModeName(HardenMode m) {
  switch (m) {
    case HardenMode::kCfc: return "cfc";
    case HardenMode::kDup: return "dup";
    case HardenMode::kFull: return "full";
  }
  return "?";
}

std::uint32_t HardenPlan::ReservedMask() const {
  std::uint32_t mask = 0;
  for (const std::uint8_t r : {sb, s1, s2, s3, g, t})
    if (r != kNoReg) mask |= 1u << r;
  return mask;
}

namespace {

std::int64_t SlotOf(std::uint8_t reg) { return 8 * static_cast<int>(reg); }

// Detects the assembler's li/la expansion at instruction i: `ldah r, hi(zero)`
// immediately followed by `lda r, lo(r)`. Returns the materialized value.
std::optional<std::int64_t> LiPairValue(const AsmProgram& prog,
                                        std::size_t i) {
  if (i + 1 >= prog.insts.size()) return std::nullopt;
  const DecodedInst& a = prog.insts[i].d;
  const DecodedInst& b = prog.insts[i + 1].d;
  if (!prog.insts[i].canonical || !prog.insts[i + 1].canonical)
    return std::nullopt;
  if (a.op != Op::kLdah || a.src1 != kZeroReg || a.dst == kNoReg)
    return std::nullopt;
  if (b.op != Op::kLda || b.dst != a.dst || b.src1 != a.dst)
    return std::nullopt;
  return (a.imm << 16) + b.imm;
}

// A li/la pair whose value is a text address must be remapped to the hardened
// layout; that is only sound when it names a basic-block leader.
std::optional<std::size_t> TextPairTargetBlock(const AsmProgram& prog,
                                               const Cfg& cfg,
                                               std::size_t i) {
  const auto value = LiPairValue(prog, i);
  if (!value) return std::nullopt;
  const std::uint64_t addr = static_cast<std::uint64_t>(*value);
  if (addr < prog.text_base || addr >= prog.EndAddr()) return std::nullopt;
  const auto idx = prog.IndexOf(addr);
  if (!idx) {
    throw std::runtime_error(
        "harden: text-pointer materialization at " + prog.Locate(prog.insts[i].addr) +
        " is not word-aligned");
  }
  const std::size_t blk = cfg.block_of_inst[*idx];
  if (cfg.blocks[blk].first != *idx) {
    throw std::runtime_error(
        "harden: text pointer at " + prog.Locate(prog.insts[i].addr) +
        " names the middle of a basic block");
  }
  return blk;
}

class Emitter {
 public:
  Emitter(const AsmProgram& prog, const Cfg& cfg, HardenPlan plan)
      : prog_(prog), cfg_(cfg), plan_(std::move(plan)) {}

  HardenedProgram Run(const Program& orig) {
    EmitPrologue();
    block_start_.assign(cfg_.blocks.size(), 0);
    const auto resync = ReturnPointResyncs();
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      block_start_[b] = words_.size();
      EmitCheck(b);
      if (const auto it = resync.find(b); plan_.Dup() && it != resync.end()) {
        for (const std::uint8_t rd : it->second) {
          Component(AsmFindingKind::kUnduplicatedValue,
                    prog_.insts[cfg_.blocks[b].first].addr,
                    "call-return shadow resync", [&] {
                      W(EncodeM(Op::kStq, rd, plan_.sb, SlotOf(rd)));
                    });
        }
      }
      EmitBody(b);
    }
    fault_word_ = words_.size();
    Component(AsmFindingKind::kHardenStructure, prog_.entry, "fault block",
              [&] { W(0); });  // opcode 0x00 = kIllegal: fail-stop trap
    ApplyFixups();
    return Finish(orig);
  }

 private:
  struct Fixup {
    enum Kind { kFault, kBlock, kPairHi, kPairLo } kind;
    std::size_t word_idx;
    std::size_t target_block = 0;
  };

  void W(std::uint32_t w) { words_.push_back(w); }

  template <typename Fn>
  void Component(AsmFindingKind kind, std::uint64_t orig_addr,
                 const char* what, Fn fn) {
    HardenedProgram::Component c;
    c.kind = kind;
    c.orig_addr = orig_addr;
    c.first_word = words_.size();
    c.what = what;
    fn();
    c.num_words = words_.size() - c.first_word;
    if (c.num_words == 0) return;
    components_.push_back(c);
  }

  void Master(std::uint64_t orig_addr, std::uint32_t word) {
    Component(AsmFindingKind::kHardenStructure, orig_addr, "master",
              [&] { W(word); });
  }

  void GSet(std::size_t b, std::uint64_t orig_addr) {
    if (!plan_.Cfc()) return;
    Component(AsmFindingKind::kSignatureEdge, orig_addr, "signature set", [&] {
      W(EncodeI(Op::kAddqi, kZeroReg, plan_.g, plan_.sig[b]));
    });
  }

  // `ldq S1, slot(reg); cmpeq reg, S1, T; beq T, fault`
  void Guard(std::uint8_t reg, std::uint64_t orig_addr, AsmFindingKind kind,
             const char* what) {
    if (!plan_.Dup() || reg == kZeroReg || reg == kNoReg) return;
    Component(kind, orig_addr, what, [&] {
      W(EncodeM(Op::kLdq, plan_.s1, plan_.sb, SlotOf(reg)));
      W(EncodeR(Op::kCmpeq, reg, plan_.s1, plan_.t));
      fixups_.push_back({Fixup::kFault, words_.size()});
      W(EncodeB(Op::kBeq, plan_.t, 0));
    });
  }

  void EmitPrologue() {
    const std::uint64_t at = prog_.entry;
    if (plan_.Dup()) {
      Component(AsmFindingKind::kHardenStructure, at, "prologue", [&] {
        const std::int64_t v = static_cast<std::int64_t>(plan_.shadow_base);
        const std::int64_t lo = static_cast<std::int16_t>(v & 0xFFFF);
        const std::int64_t hi = (v - lo) >> 16;
        W(EncodeM(Op::kLdah, plan_.sb, kZeroReg, hi));
        W(EncodeM(Op::kLda, plan_.sb, plan_.sb, lo));
        const std::uint32_t reserved = plan_.ReservedMask();
        for (int r = 0; r < kZeroReg; ++r) {
          if (reserved & (1u << r)) continue;
          W(EncodeM(Op::kStq, static_cast<std::uint8_t>(r), plan_.sb,
                    SlotOf(static_cast<std::uint8_t>(r))));
        }
      });
    }
    if (plan_.Cfc()) {
      Component(AsmFindingKind::kSignatureEdge, at, "prologue signature",
                [&] {
                  W(EncodeI(Op::kAddqi, kZeroReg, plan_.g,
                            plan_.prologue_sig));
                });
    }
    Component(AsmFindingKind::kHardenStructure, at, "prologue entry jump",
              [&] {
                fixups_.push_back(
                    {Fixup::kBlock, words_.size(), cfg_.entry_block});
                W(EncodeB(Op::kBr, kZeroReg, 0));
              });
  }

  // Allowed incoming signatures of block b: its CFG predecessors, plus the
  // synthetic prologue for the entry block.
  std::vector<std::int64_t> CheckConsts(std::size_t b) const {
    std::set<std::int64_t> consts;
    for (const std::size_t p : cfg_.blocks[b].preds)
      consts.insert(plan_.sig[p]);
    if (b == cfg_.entry_block) consts.insert(plan_.prologue_sig);
    return {consts.begin(), consts.end()};
  }

  void EmitCheck(std::size_t b) {
    if (!plan_.Cfc()) return;
    const std::vector<std::int64_t> consts = CheckConsts(b);
    if (consts.empty()) return;  // unreachable block: nothing can arrive
    const std::uint64_t at = prog_.insts[cfg_.blocks[b].first].addr;
    Component(AsmFindingKind::kSignatureEdge, at, "entry signature check",
              [&] {
                const std::size_t ok = words_.size() + 2 * consts.size();
                for (std::size_t j = 0; j < consts.size(); ++j) {
                  W(EncodeI(Op::kCmpeqi, plan_.g, plan_.t, consts[j]));
                  if (j + 1 < consts.size()) {
                    const std::int64_t disp =
                        static_cast<std::int64_t>(ok) -
                        static_cast<std::int64_t>(words_.size()) - 1;
                    W(EncodeB(Op::kBne, plan_.t, disp));
                  } else {
                    fixups_.push_back({Fixup::kFault, words_.size()});
                    W(EncodeB(Op::kBeq, plan_.t, 0));
                  }
                }
              });
  }

  // Shadow re-execution of a value-producing master. Sources load from their
  // shadow slots; the result lands in S3 and is stored back to dst's slot.
  void EmitDup(const AsmInst& ai) {
    if (!plan_.Dup() || ai.d.dst == kNoReg) return;
    const DecodedInst& d = ai.d;
    Component(AsmFindingKind::kUnduplicatedValue, ai.addr, "duplication", [&] {
      const auto shadow_src = [&](std::uint8_t reg,
                                  std::uint8_t scratch) -> std::uint8_t {
        if (reg == kZeroReg || reg == kNoReg) return kZeroReg;
        W(EncodeM(Op::kLdq, scratch, plan_.sb, SlotOf(reg)));
        return scratch;
      };
      if (d.op == Op::kLda || d.op == Op::kLdah ||
          d.cls == InsnClass::kLoad) {
        const std::uint8_t a = shadow_src(d.src1, plan_.s1);
        W(EncodeM(d.op, plan_.s3, a, d.imm));
      } else if (d.src2 == kNoReg) {  // I-format ALU
        const std::uint8_t a = shadow_src(d.src1, plan_.s1);
        W(EncodeI(d.op, a, plan_.s3, d.imm));
      } else {  // R-format ALU
        const std::uint8_t a = shadow_src(d.src1, plan_.s1);
        const std::uint8_t b = shadow_src(d.src2, plan_.s2);
        W(EncodeR(d.op, a, b, plan_.s3));
      }
      W(EncodeM(Op::kStq, plan_.s3, plan_.sb, SlotOf(d.dst)));
    });
  }

  // Remapped text-pointer pair: the ldah/lda immediates are fixed up to the
  // hardened address of the target block (master and shadow alike).
  void EmitTextPair(const AsmInst& hi, const AsmInst& lo, std::size_t blk) {
    const std::uint8_t r = hi.d.dst;
    Component(AsmFindingKind::kHardenStructure, hi.addr, "master", [&] {
      fixups_.push_back({Fixup::kPairHi, words_.size(), blk});
      W(EncodeM(Op::kLdah, r, kZeroReg, 0));
    });
    if (plan_.Dup()) {
      Component(AsmFindingKind::kUnduplicatedValue, hi.addr, "duplication",
                [&] {
                  fixups_.push_back({Fixup::kPairHi, words_.size(), blk});
                  W(EncodeM(Op::kLdah, plan_.s3, kZeroReg, 0));
                  W(EncodeM(Op::kStq, plan_.s3, plan_.sb, SlotOf(r)));
                });
    }
    Component(AsmFindingKind::kHardenStructure, lo.addr, "master", [&] {
      fixups_.push_back({Fixup::kPairLo, words_.size(), blk});
      W(EncodeM(Op::kLda, r, r, 0));
    });
    if (plan_.Dup()) {
      Component(AsmFindingKind::kUnduplicatedValue, lo.addr, "duplication",
                [&] {
                  W(EncodeM(Op::kLdq, plan_.s1, plan_.sb, SlotOf(r)));
                  fixups_.push_back({Fixup::kPairLo, words_.size(), blk});
                  W(EncodeM(Op::kLda, plan_.s3, plan_.s1, 0));
                  W(EncodeM(Op::kStq, plan_.s3, plan_.sb, SlotOf(r)));
                });
    }
  }

  void EmitBody(std::size_t b) {
    const BasicBlock& bb = cfg_.blocks[b];
    bool skip_next = false;
    bool gset_done = false;
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      if (skip_next) {
        skip_next = false;
        continue;
      }
      const AsmInst& ai = prog_.insts[i];
      orig_to_word_[i] = words_.size();
      if (!ai.canonical) {
        Master(ai.addr, ai.word);
        continue;
      }
      const DecodedInst& d = ai.d;
      switch (d.cls) {
        case InsnClass::kCondBranch: {
          Guard(d.src1, ai.addr, AsmFindingKind::kUnguardedBranch,
                "branch guard");
          GSet(b, ai.addr);
          gset_done = true;
          const std::uint64_t target =
              ai.addr + 4 + static_cast<std::uint64_t>(d.imm) * 4;
          const std::size_t tb = cfg_.block_of_inst[*prog_.IndexOf(target)];
          Component(AsmFindingKind::kHardenStructure, ai.addr, "master", [&] {
            fixups_.push_back({Fixup::kBlock, words_.size(), tb});
            W(EncodeB(d.op, d.src1, 0));
          });
          break;
        }
        case InsnClass::kBr:
        case InsnClass::kBsr: {
          GSet(b, ai.addr);
          gset_done = true;
          const std::uint64_t target =
              ai.addr + 4 + static_cast<std::uint64_t>(d.imm) * 4;
          const std::size_t tb = cfg_.block_of_inst[*prog_.IndexOf(target)];
          const std::uint8_t ra = RaField(ai.word);
          Component(AsmFindingKind::kHardenStructure, ai.addr, "master", [&] {
            fixups_.push_back({Fixup::kBlock, words_.size(), tb});
            W(EncodeB(d.op, ra, 0));
          });
          break;
        }
        case InsnClass::kJmp:
        case InsnClass::kJsr:
        case InsnClass::kRet:
          GSet(b, ai.addr);
          gset_done = true;
          Master(ai.addr, ai.word);
          break;
        case InsnClass::kSyscall:
          for (const std::uint8_t r : {std::uint8_t{0}, std::uint8_t{16},
                                       std::uint8_t{17}}) {
            Guard(r, ai.addr, AsmFindingKind::kUnguardedStore,
                  "syscall guard");
          }
          Master(ai.addr, ai.word);
          if (plan_.Dup()) {
            // The syscall writes v0; bring its shadow back in sync.
            Component(AsmFindingKind::kUnduplicatedValue, ai.addr,
                      "syscall resync",
                      [&] { W(EncodeM(Op::kStq, 0, plan_.sb, 0)); });
          }
          break;
        case InsnClass::kStore:
          Guard(d.src2, ai.addr, AsmFindingKind::kUnguardedStore,
                "store data guard");
          Guard(d.src1, ai.addr, AsmFindingKind::kUnguardedStore,
                "store address guard");
          Master(ai.addr, ai.word);
          break;
        default: {  // kAlu / kAluComplex / kLoad: value instructions
          const auto pair_blk = TextPairTargetBlock(prog_, cfg_, i);
          if (pair_blk && i + 1 <= bb.last) {
            EmitTextPair(ai, prog_.insts[i + 1], *pair_blk);
            orig_to_word_[i + 1] = orig_to_word_[i];
            skip_next = true;
            break;
          }
          Master(ai.addr, ai.word);
          EmitDup(ai);
          break;
        }
      }
    }
    // Fallthrough (or syscall / plain) block ends: publish the signature
    // before control reaches the next block's check.
    if (!gset_done && !bb.succs.empty())
      GSet(b, prog_.insts[bb.last].addr);
  }

  // Return-point block -> call destination registers needing a shadow resync
  // (the call wrote its return address into dst at runtime).
  std::map<std::size_t, std::set<std::uint8_t>> ReturnPointResyncs() const {
    std::map<std::size_t, std::set<std::uint8_t>> out;
    for (std::size_t b = 0; b < cfg_.blocks.size(); ++b) {
      const BasicBlock& bb = cfg_.blocks[b];
      if (!bb.is_call) continue;
      const auto rp = cfg_.ReturnPoint(b);
      if (!rp) continue;
      const std::uint8_t rd = prog_.insts[bb.last].d.dst;
      if (rd != kNoReg) out[*rp].insert(rd);
    }
    return out;
  }

  void ApplyFixups() {
    for (const Fixup& f : fixups_) {
      const std::uint32_t w = words_[f.word_idx];
      const Op op = static_cast<Op>(OpField(w));
      const std::size_t target =
          f.kind == Fixup::kFault ? fault_word_ : block_start_[f.target_block];
      if (f.kind == Fixup::kFault || f.kind == Fixup::kBlock) {
        const std::int64_t disp = static_cast<std::int64_t>(target) -
                                  static_cast<std::int64_t>(f.word_idx) - 1;
        words_[f.word_idx] = EncodeB(op, RaField(w), disp);
      } else {
        const std::int64_t addr =
            static_cast<std::int64_t>(kAsmTextBase + 4 * target);
        const std::int64_t lo = static_cast<std::int16_t>(addr & 0xFFFF);
        const std::int64_t hi = (addr - lo) >> 16;
        words_[f.word_idx] = EncodeM(
            op, RaField(w), RbField(w), f.kind == Fixup::kPairHi ? hi : lo);
      }
    }
  }

  HardenedProgram Finish(const Program& orig) {
    HardenedProgram hp;
    hp.plan = plan_;
    hp.components = std::move(components_);
    hp.block_start_word = block_start_;
    hp.fault_word = fault_word_;

    Program& p = hp.program;
    Program::Chunk text;
    text.addr = kAsmTextBase;
    text.bytes.resize(words_.size() * 4);
    std::memcpy(text.bytes.data(), words_.data(), text.bytes.size());
    p.chunks.push_back(std::move(text));
    for (const auto& c : orig.chunks) {
      const bool is_text = prog_.text_base == c.addr &&
                           c.bytes.size() == prog_.insts.size() * 4;
      if (!is_text) p.chunks.push_back(c);
    }
    p.entry = kAsmTextBase;
    for (const auto& [name, value] : orig.symbols) {
      if (const auto idx = prog_.IndexOf(value)) {
        const auto it = orig_to_word_.find(*idx);
        if (it != orig_to_word_.end()) {
          const std::size_t blk = cfg_.block_of_inst[*idx];
          const std::size_t word = cfg_.blocks[blk].first == *idx
                                       ? block_start_[blk]
                                       : it->second;
          p.symbols[name] = kAsmTextBase + 4 * word;
          continue;
        }
      }
      p.symbols[name] = value;
    }
    p.symbols["_start"] = kAsmTextBase;
    p.symbols["__harden_fault"] = kAsmTextBase + 4 * fault_word_;
    return hp;
  }

  const AsmProgram& prog_;
  const Cfg& cfg_;
  HardenPlan plan_;
  std::vector<std::uint32_t> words_;
  std::vector<Fixup> fixups_;
  std::vector<HardenedProgram::Component> components_;
  std::vector<std::size_t> block_start_;
  std::map<std::size_t, std::size_t> orig_to_word_;
  std::size_t fault_word_ = 0;
};

}  // namespace

HardenPlan PlanHarden(const AsmProgram& orig, const Cfg& cfg,
                      HardenMode mode) {
  if (orig.insts.empty()) throw std::runtime_error("harden: empty program");
  if (!cfg.unresolved_indirect.empty()) {
    throw std::runtime_error(
        "harden: unresolved indirect jump at " +
        orig.Locate(orig.insts[cfg.unresolved_indirect.front()].addr));
  }
  if (!cfg.out_of_text.empty()) {
    throw std::runtime_error(
        "harden: branch target outside text at " +
        orig.Locate(orig.insts[cfg.out_of_text.front()].addr));
  }
  if (cfg.blocks.size() > 32000)
    throw std::runtime_error("harden: too many blocks for imm16 signatures");
  // Validate every text-pointer materialization up front (throws on
  // mid-block targets); a pair split across a block boundary cannot be
  // remapped atomically.
  for (std::size_t i = 0; i < orig.insts.size(); ++i) {
    if (TextPairTargetBlock(orig, cfg, i) &&
        cfg.block_of_inst[i] != cfg.block_of_inst[i + 1]) {
      throw std::runtime_error(
          "harden: text-pointer li/la pair at " +
          orig.Locate(orig.insts[i].addr) + " straddles a block boundary");
    }
  }

  HardenPlan plan;
  plan.mode = mode;
  std::uint32_t used = (1u << 0) | (1u << 16) | (1u << 17);  // syscall ABI
  for (const auto& ai : orig.insts) {
    if (!ai.canonical) continue;
    used |= analyze::UseMask(ai.d) | analyze::DefMask(ai.d);
  }
  static constexpr std::uint8_t kPool[] = {29, 28, 27, 26, 30, 21, 20, 19,
                                           18, 25, 24, 23, 22, 15, 14, 13,
                                           12, 11, 10, 9,  8,  7,  6,  5,
                                           4,  3,  2,  1};
  std::vector<std::uint8_t*> roles;
  if (plan.Dup())
    roles.insert(roles.end(), {&plan.sb, &plan.s1, &plan.s2, &plan.s3});
  if (plan.Cfc()) roles.push_back(&plan.g);
  roles.push_back(&plan.t);
  std::size_t next = 0;
  for (std::uint8_t* role : roles) {
    while (next < std::size(kPool) && (used & (1u << kPool[next]))) ++next;
    if (next >= std::size(kPool)) {
      throw std::runtime_error(
          "harden: not enough unused registers for mode " +
          std::string(HardenModeName(mode)));
    }
    *role = kPool[next++];
  }
  if (plan.Dup()) {
    std::uint64_t end = 0;
    // The original text chunk is not in `orig` (AsmProgram) chunk form; use
    // its end address plus every data chunk implied by symbols. The caller
    // passes the full Program to Harden, which recomputes this bound; here
    // it is derived from the lifted view for verifier reproducibility.
    end = std::max(end, orig.EndAddr());
    for (const auto& [name, value] : orig.symbols)
      end = std::max(end, value);
    plan.shadow_base = ((end + 0xFFFF) / 0x10000 + 1) * 0x10000;
  }
  if (cfg.blocks.size() != plan.sig.size()) {
    plan.sig.resize(cfg.blocks.size());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
      plan.sig[b] = 2 + static_cast<std::int64_t>(b);
  }
  return plan;
}

HardenedProgram Harden(const Program& orig, HardenMode mode) {
  const AsmProgram ap = analyze::Lift(orig);
  const Cfg cfg = analyze::BuildCfg(ap);
  HardenPlan plan = PlanHarden(ap, cfg, mode);
  if (plan.Dup()) {
    // Tighten the shadow region using the real chunk extents (symbols alone
    // under-approximate data that labels only at its start).
    std::uint64_t end = 0;
    for (const auto& c : orig.chunks)
      end = std::max(end, c.addr + c.bytes.size());
    for (const auto& [name, value] : orig.symbols)
      end = std::max(end, value);
    plan.shadow_base = ((end + 0xFFFF) / 0x10000 + 1) * 0x10000;
  }
  return Emitter(ap, cfg, plan).Run(orig);
}

std::vector<AsmFinding> VerifyHardened(const Program& orig,
                                       const Program& hardened,
                                       HardenMode mode,
                                       const std::string& unit) {
  std::vector<AsmFinding> out;
  const auto emit = [&out, &unit](AsmFindingKind kind, std::uint64_t addr,
                                  const std::string& where,
                                  std::string detail) {
    AsmFinding f;
    f.kind = kind;
    f.unit = unit;
    f.addr = addr;
    f.where = where;
    f.detail = std::move(detail);
    out.push_back(std::move(f));
  };

  // Re-derive the reference hardening from the original alone.
  const HardenedProgram expected = Harden(orig, mode);
  const AsmProgram orig_ap = analyze::Lift(orig);

  const AsmProgram exp_ap = analyze::Lift(expected.program);
  AsmProgram act_ap;
  try {
    act_ap = analyze::Lift(hardened);
  } catch (const std::exception& e) {
    emit(AsmFindingKind::kHardenStructure, 0, "text", e.what());
    return out;
  }
  if (act_ap.text_base != exp_ap.text_base ||
      hardened.entry != expected.program.entry) {
    emit(AsmFindingKind::kHardenStructure, 0, "entry",
         "hardened entry/text base does not match the hardened layout");
  }
  if (act_ap.insts.size() != exp_ap.insts.size()) {
    emit(AsmFindingKind::kHardenStructure, 0, "text",
         "hardened text is " + std::to_string(act_ap.insts.size()) +
             " words, expected " + std::to_string(exp_ap.insts.size()));
  }

  // Component-by-component comparison: each deviation gets the component's
  // finding class, located at the original-program instruction it serves.
  const std::uint32_t reserved = expected.plan.ReservedMask();
  for (const auto& c : expected.components) {
    bool mismatch = false;
    for (std::size_t w = c.first_word; w < c.first_word + c.num_words; ++w) {
      if (w >= act_ap.insts.size() ||
          act_ap.insts[w].word != exp_ap.insts[w].word) {
        mismatch = true;
        break;
      }
    }
    if (mismatch) {
      emit(c.kind, c.orig_addr, orig_ap.Locate(c.orig_addr),
           std::string(c.what) + " missing or corrupted");
    }
    // Independent of word equality: a master op may never touch reserved
    // registers or address the shadow region (it would desynchronize or
    // forge the very state the checks rely on).
    if (std::string_view(c.what) == "master") {
      for (std::size_t w = c.first_word;
           w < c.first_word + c.num_words && w < act_ap.insts.size(); ++w) {
        const DecodedInst& d = act_ap.insts[w].d;
        if (!act_ap.insts[w].canonical) continue;
        const std::uint32_t touched =
            analyze::UseMask(d) | analyze::DefMask(d);
        if ((touched & reserved) ||
            (d.IsMem() && d.src1 == expected.plan.sb)) {
          emit(AsmFindingKind::kShadowClobber, c.orig_addr,
               orig_ap.Locate(c.orig_addr),
               "master `" + Disassemble(act_ap.insts[w].word,
                                        act_ap.insts[w].addr) +
                   "` touches reserved hardening state");
        }
      }
    }
  }

  // The fault block must remain a trap.
  if (expected.fault_word < act_ap.insts.size() &&
      act_ap.insts[expected.fault_word].d.cls != InsnClass::kIllegal) {
    emit(AsmFindingKind::kHardenStructure, 0, "__harden_fault",
         "fault block no longer raises illegal-opcode");
  }

  // Data image must be carried over untouched.
  const std::size_t exp_chunks = expected.program.chunks.size();
  if (hardened.chunks.size() != exp_chunks) {
    emit(AsmFindingKind::kHardenStructure, 0, "data",
         "hardened image has " + std::to_string(hardened.chunks.size()) +
             " chunks, expected " + std::to_string(exp_chunks));
  } else {
    for (std::size_t i = 1; i < exp_chunks; ++i) {
      if (hardened.chunks[i].addr != expected.program.chunks[i].addr ||
          hardened.chunks[i].bytes != expected.program.chunks[i].bytes) {
        emit(AsmFindingKind::kHardenStructure, hardened.chunks[i].addr,
             "data", "data chunk differs from the original image");
      }
    }
  }
  return out;
}

std::optional<HardenMode> ParseHardenSuffix(const std::string& workload,
                                            std::string* base_name) {
  struct Suffix {
    const char* text;
    HardenMode mode;
  };
  static constexpr Suffix kSuffixes[] = {{"+swdup", HardenMode::kDup},
                                         {"+swcfc", HardenMode::kCfc},
                                         {"+sw", HardenMode::kFull}};
  for (const Suffix& s : kSuffixes) {
    const std::size_t n = std::strlen(s.text);
    if (workload.size() > n &&
        workload.compare(workload.size() - n, n, s.text) == 0) {
      if (base_name) *base_name = workload.substr(0, workload.size() - n);
      return s.mode;
    }
  }
  if (base_name) *base_name = workload;
  return std::nullopt;
}

Program ResolveCampaignProgram(const std::string& workload) {
  std::string base;
  const auto mode = ParseHardenSuffix(workload, &base);
  const Program p = BuildWorkload(WorkloadByName(base), kCampaignIters);
  if (!mode) return p;
  return Harden(p, *mode).program;
}

}  // namespace tfsim
