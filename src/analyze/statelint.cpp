#include "analyze/statelint.h"

#include <algorithm>
#include <sstream>

namespace tfsim::analyze {
namespace {

// True when the class takes part in the injection surface: it allocates
// registry state (or holds StateField handles). Only such classes are held
// to the every-member-is-registered standard.
bool Participates(const CppClass& c) {
  if (c.registry_ctor) return true;
  return std::any_of(c.members.begin(), c.members.end(),
                     [](const CppMember& m) { return m.is_state_field; });
}

// True when `type` names another participating class (possibly qualified):
// component members (Core holds a Rob, a Scheduler...) are audited through
// their own class, not as hidden state of the owner.
bool IsComponentType(const CppModel& model, const std::string& type) {
  for (const CppClass& c : model.classes) {
    if (!Participates(c)) continue;
    const std::size_t cut = c.name.find_last_of(':');
    const std::string short_name =
        cut == std::string::npos ? c.name : c.name.substr(cut + 1);
    if (type == c.name || type == short_name) return true;
  }
  return false;
}

std::string ShortClassName(const std::string& name) {
  const std::size_t cut = name.find_last_of(':');
  return cut == std::string::npos ? name : name.substr(cut + 1);
}

bool Consume(std::vector<AllowEntry>& allow, const std::string& key) {
  bool found = false;
  for (AllowEntry& e : allow)
    if (e.key == key) e.used = found = true;
  return found;
}

std::string Basename(const std::string& path) {
  const std::size_t cut = path.find_last_of('/');
  return cut == std::string::npos ? path : path.substr(cut + 1);
}

// Pairs a live registry field with the static Allocate call that produced
// it: same source file, compatible registered name (exact or prefix+suffix),
// and the call starting within a few lines of the field's allocation-site
// tag (std::source_location reports the END of a multi-line call; the
// extractor records the line of the `Allocate` token).
bool SiteMatches(const CppAllocation& a, const StateRegistry::FieldInfo& f) {
  if (!a.MatchesFieldName(f.name)) return false;
  if (!f.site_file || Basename(f.site_file) != Basename(a.file)) return false;
  const int site = static_cast<int>(f.site_line);
  return a.line <= site && site - a.line <= 10;
}

}  // namespace

const char* FindingKindName(FindingKind k) {
  switch (k) {
    case FindingKind::kHiddenState: return "hidden-state";
    case FindingKind::kStaleRegistration: return "stale-registration";
    case FindingKind::kCatStorageMismatch: return "cat-storage-mismatch";
    case FindingKind::kUnusedAllowlist: return "unused-allowlist";
    case FindingKind::kParseGap: return "parse-gap";
  }
  return "?";
}

std::string Finding::Format() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << FindingKindName(kind) << "] " << where
     << ": " << detail;
  return os.str();
}

bool ParseAllowlist(const std::string& text, std::vector<AllowEntry>* out,
                    std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    const std::size_t e = line.find_last_not_of(" \t");
    line = line.substr(b, e - b + 1);
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      if (error)
        *error = "allowlist line " + std::to_string(lineno) +
                 ": expected `Class.member: justification`";
      return false;
    }
    AllowEntry entry;
    entry.key = line.substr(0, colon);
    while (!entry.key.empty() && entry.key.back() == ' ') entry.key.pop_back();
    const std::size_t wb = line.find_first_not_of(" \t", colon + 1);
    entry.why = wb == std::string::npos ? "" : line.substr(wb);
    entry.line = lineno;
    if (entry.key.empty() || entry.why.empty()) {
      if (error)
        *error = "allowlist line " + std::to_string(lineno) +
                 ": every exception needs a non-empty key and a one-line "
                 "justification";
      return false;
    }
    out->push_back(std::move(entry));
  }
  return true;
}

std::vector<Finding> RunStateLint(const CppModel& model,
                                  std::vector<AllowEntry>& allow,
                                  const LintOptions& opt) {
  std::vector<Finding> findings;
  auto report = [&](FindingKind kind, std::string where, std::string file,
                    int line, std::string detail) {
    findings.push_back(
        {kind, std::move(where), std::move(file), line, std::move(detail)});
  };

  // --- hidden state --------------------------------------------------------
  for (const CppClass& cls : model.classes) {
    if (!Participates(cls)) continue;
    const std::string short_name = ShortClassName(cls.name);
    for (const CppMember& m : cls.members) {
      const std::string key = short_name + "." + m.name;
      if (m.is_state_field) {
        // A StateField member must be backed by at least one Allocate call
        // (conditionally-compiled or config-gated allocations still appear
        // statically, which is all that matters here).
        const bool backed = std::any_of(
            model.allocations.begin(), model.allocations.end(),
            [&](const CppAllocation& a) {
              return a.member == m.name &&
                     (a.class_name == cls.name ||
                      ShortClassName(a.class_name) == short_name);
            });
        if (!backed && !Consume(allow, key))
          report(FindingKind::kHiddenState, key, cls.file, m.line,
                 "StateField member has no StateRegistry::Allocate call "
                 "backing it — the handle is never registered");
        continue;
      }
      if (!m.MutableNonField()) continue;
      if (IsComponentType(model, m.type)) continue;  // audited via its class
      if (Consume(allow, key)) continue;
      report(FindingKind::kHiddenState, key, cls.file, m.line,
             "mutable member (type `" + m.type +
                 "`) is not backed by a StateField — state here escapes "
                 "the injection surface; register it or allowlist it with "
                 "a justification");
    }
  }

  // --- stale registration --------------------------------------------------
  // Count identifier occurrences of each allocated member beyond its
  // declaration(s) and allocation statement(s); zero means the field is
  // write-only dead weight in the bit space.
  for (const CppAllocation& a : model.allocations) {
    if (a.member.empty()) continue;
    int occurrences = 0;
    for (const CppFile& f : model.files)
      occurrences += CountIdentifier(f.blanked, a.member);
    int expected = 0;  // declarations + allocation assignments of this name
    for (const CppClass& c : model.classes)
      for (const CppMember& m : c.members)
        if (m.name == a.member) ++expected;
    for (const CppAllocation& other : model.allocations)
      if (other.member == a.member) ++expected;
    if (occurrences > expected) continue;
    const std::string key = ShortClassName(a.class_name) + "." + a.member;
    if (Consume(allow, key)) continue;
    report(FindingKind::kStaleRegistration, key, a.file, a.line,
           "field `" + a.reg_name +
               "` is allocated but its member is never read back — "
               "injections into it can never alter behaviour");
  }

  // --- category/storage mismatches ----------------------------------------
  // Prefer exact shapes from the live registry (matched by registered
  // name); fall back to literal count/width when running purely statically.
  for (const CppAllocation& a : model.allocations) {
    // Shapes to check: every live field produced by this call (a class
    // instantiated N times yields N fields per call), or the literal
    // count/width when running purely statically.
    std::vector<std::pair<long long, long long>> shapes;
    if (opt.runtime_fields) {
      for (const auto& f : *opt.runtime_fields)
        if (SiteMatches(a, f))
          shapes.emplace_back(static_cast<long long>(f.count), f.width);
    }
    if (shapes.empty() && a.count_value >= 0 && a.width_value >= 0)
      shapes.emplace_back(a.count_value, a.width_value);
    const std::string key = ShortClassName(a.class_name) + "." +
                            (a.member.empty() ? a.reg_name : a.member);
    for (const auto& [count, width] : shapes) {
      const long long bits = count * width;
      if (a.storage == "kLatch" &&
          count >= static_cast<long long>(opt.latch_count_limit) &&
          bits >= static_cast<long long>(opt.latch_bits_limit) &&
          !Consume(allow, key)) {
        report(FindingKind::kCatStorageMismatch, key, a.file, a.line,
               "`" + a.reg_name + "` registers " + std::to_string(count) +
                   " x " + std::to_string(width) +
                   "b as kLatch — a RAM-sized array misfiled as latch state "
                   "skews the paper's latch-only campaigns");
        break;
      }
      if (a.storage == "kRam" && count == 1 && !Consume(allow, key)) {
        report(FindingKind::kCatStorageMismatch, key, a.file, a.line,
               "`" + a.reg_name +
                   "` registers a single element as kRam — a lone latch "
                   "misfiled as RAM escapes latch-only campaigns");
        break;
      }
      if (a.cat == "kParity" && width != 1 && !Consume(allow, key)) {
        report(FindingKind::kCatStorageMismatch, key, a.file, a.line,
               "`" + a.reg_name + "` registers " + std::to_string(width) +
                   "-bit elements as kParity — parity check bits are 1-bit "
                   "by construction");
        break;
      }
    }
  }

  // --- parse gaps (live registry cross-check) ------------------------------
  if (opt.runtime_fields) {
    for (const auto& f : *opt.runtime_fields) {
      const bool matched = std::any_of(
          model.allocations.begin(), model.allocations.end(),
          [&](const CppAllocation& a) { return SiteMatches(a, f); });
      if (matched || Consume(allow, f.name)) continue;
      report(FindingKind::kParseGap, f.name,
             f.site_file ? f.site_file : "", static_cast<int>(f.site_line),
             "live registry field has no statically-extracted Allocate "
             "call — the extractor cannot see this allocation site, so "
             "hidden state could hide beside it");
    }
  }

  // --- unused allowlist entries --------------------------------------------
  for (const AllowEntry& e : allow) {
    if (e.used) continue;
    report(FindingKind::kUnusedAllowlist, e.key, "statelint_allow.txt",
           e.line,
           "allowlist exception matched no member or field — remove it "
           "(stale exceptions erode the audit)");
  }

  return findings;
}

}  // namespace tfsim::analyze
