#include "analyze/cpp_model.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tfsim::analyze {
namespace {

// ---------------------------------------------------------------------------
// Preprocessing: comment stripping, literal blanking, #-line removal.
// ---------------------------------------------------------------------------

// Strips // and /* */ comments, replacing them with spaces (newlines kept so
// token line numbers stay true). When `blank_literals`, the contents of
// string and character literals are replaced with spaces too (quotes kept).
std::string StripComments(const std::string& in, bool blank_literals) {
  std::string out;
  out.reserve(in.size());
  enum { kCode, kLine, kBlock, kStr, kChar } st = kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    const char n = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') { st = kLine; out += "  "; ++i; }
        else if (c == '/' && n == '*') { st = kBlock; out += "  "; ++i; }
        else if (c == '"') { st = kStr; out += c; }
        else if (c == '\'') { st = kChar; out += c; }
        else out += c;
        break;
      case kLine:
        if (c == '\n') { st = kCode; out += c; }
        else out += ' ';
        break;
      case kBlock:
        if (c == '*' && n == '/') { st = kCode; out += "  "; ++i; }
        else out += c == '\n' ? '\n' : ' ';
        break;
      case kStr:
        if (c == '\\' && n != '\0') {
          out += blank_literals ? "  " : in.substr(i, 2);
          ++i;
        } else if (c == '"') { st = kCode; out += c; }
        else out += blank_literals ? ' ' : c;
        break;
      case kChar:
        if (c == '\\' && n != '\0') {
          out += blank_literals ? "  " : in.substr(i, 2);
          ++i;
        } else if (c == '\'') { st = kCode; out += c; }
        else out += blank_literals ? ' ' : c;
        break;
    }
  }
  return out;
}

// Blanks preprocessor directive lines (and their \-continuations), keeping
// the controlled text of every branch: a member under #ifdef exists in SOME
// build, so the lint must see it.
void BlankDirectives(std::string& text) {
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t j = i;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    const bool directive = j < text.size() && text[j] == '#';
    bool cont = false;
    std::size_t k = i;
    for (; k < text.size() && text[k] != '\n'; ++k) {
      if (directive) {
        cont = text[k] == '\\' && k + 1 < text.size() && text[k + 1] == '\n';
        text[k] = ' ';
      }
    }
    i = k + 1;
    if (directive && cont) {
      // Continuation: blank the next line too by not resetting `directive` —
      // handled by looping from here with the same treatment.
      std::size_t m = i;
      bool more = true;
      while (m < text.size() && more) {
        more = false;
        for (; m < text.size() && text[m] != '\n'; ++m) {
          more = text[m] == '\\' && m + 1 < text.size() && text[m + 1] == '\n';
          text[m] = ' ';
        }
        ++m;
      }
      i = m;
    }
  }
}

// ---------------------------------------------------------------------------
// Tokenizer.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
  bool IsIdent() const {
    return !text.empty() && (std::isalpha((unsigned char)text[0]) || text[0] == '_');
  }
  bool IsString() const { return !text.empty() && text[0] == '"'; }
  bool Is(const char* s) const { return text == s; }
};

std::vector<Token> Tokenize(const std::string& code) {
  std::vector<Token> out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = code.size();
  while (i < n) {
    const char c = code[i];
    if (c == '\n') { ++line; ++i; continue; }
    if (std::isspace((unsigned char)c)) { ++i; continue; }
    if (std::isalpha((unsigned char)c) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum((unsigned char)code[j]) || code[j] == '_'))
        ++j;
      out.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit((unsigned char)c)) {
      std::size_t j = i;
      while (j < n && (std::isalnum((unsigned char)code[j]) || code[j] == '_' ||
                       code[j] == '.' ||
                       ((code[j] == '+' || code[j] == '-') && j > i &&
                        (code[j - 1] == 'e' || code[j - 1] == 'E'))))
        ++j;
      out.push_back({code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (c == '"' || c == '\'') {
      std::size_t j = i + 1;
      while (j < n && code[j] != c) {
        if (code[j] == '\\') ++j;
        ++j;
      }
      out.push_back({code.substr(i, j + 1 - i), line});
      i = j + 1;
      continue;
    }
    if (c == ':' && i + 1 < n && code[i + 1] == ':') {
      out.push_back({"::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && code[i + 1] == '>') {
      out.push_back({"->", line});
      i += 2;
      continue;
    }
    out.push_back({std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

class Parser {
 public:
  Parser(std::string path, const std::vector<Token>& toks, CppModel* model)
      : path_(std::move(path)), t_(toks), model_(model) {}

  void Run() { ParseOuter(0, t_.size(), ""); }

 private:
  const Token& At(std::size_t i) const {
    static const Token kEnd{"", 0};
    return i < t_.size() ? t_[i] : kEnd;
  }

  // Advances past a balanced open..close region; `i` points at the opener.
  std::size_t SkipBalanced(std::size_t i, const char* open,
                           const char* close) const {
    int depth = 0;
    for (; i < t_.size(); ++i) {
      if (At(i).Is(open)) ++depth;
      else if (At(i).Is(close) && --depth == 0) return i + 1;
    }
    return t_.size();
  }

  // --- outer scope: classes and qualified function definitions --------------
  void ParseOuter(std::size_t i, std::size_t end, const std::string& scope) {
    while (i < end) {
      const Token& t = At(i);
      // Descend into namespace bodies (named, nested A::B, or anonymous):
      // the closing '}' is consumed later as a stray token, which is fine
      // since classes and definitions are matched structurally.
      if (t.Is("namespace")) {
        ++i;
        while (At(i).IsIdent() || At(i).Is("::")) ++i;
        if (At(i).Is("{") || At(i).Is(";")) ++i;
        continue;
      }
      if ((t.Is("class") || t.Is("struct")) && !At(i + 1).Is(";") &&
          At(i + 1).IsIdent() && !(i > 0 && At(i - 1).Is("enum"))) {
        std::size_t j = i + 2;
        while (j < end && !At(j).Is("{") && !At(j).Is(";")) ++j;
        if (j < end && At(j).Is("{")) {
          const std::string name =
              scope.empty() ? At(i + 1).text : scope + "::" + At(i + 1).text;
          i = ParseClass(name, At(i + 1).line, j + 1);
          // Trailing declarators (e.g. `struct X { ... } member_;`) are
          // handled by the caller when inside a class; at namespace scope
          // they are globals, which the lint ignores — skip to ';'.
          while (i < end && !At(i).Is(";")) ++i;
          ++i;
          continue;
        }
      }
      if (t.Is("enum")) {
        while (i < end && !At(i).Is("{") && !At(i).Is(";")) ++i;
        if (i < end && At(i).Is("{")) i = SkipBalanced(i, "{", "}");
        continue;
      }
      // Qualified function definition: Name::...::fn ( params ) [init] {
      if (t.IsIdent() && At(i + 1).Is("::")) {
        std::size_t j = i;
        std::string qual = At(j).text;
        j += 2;
        while (At(j).IsIdent() && At(j + 1).Is("::")) {
          qual += "::" + At(j).text;
          j += 2;
        }
        if (At(j).Is("~")) ++j;  // destructor
        if (At(j).IsIdent() && At(j + 1).Is("(")) {
          std::size_t k = SkipBalanced(j + 1, "(", ")");
          // Skip cv-qualifiers and the ctor-initializer list up to the body
          // brace. Init-list entries may themselves be brace-initialized
          // (`: cfg_{cfg}`), so each entry's (...)/{...} is skipped as a
          // unit rather than mistaken for the body.
          while (k < end && (At(k).Is("const") || At(k).Is("noexcept") ||
                             At(k).Is("override") || At(k).Is("final")))
            ++k;
          if (k < end && At(k).Is(":")) {
            ++k;
            while (k < end) {
              while (At(k).IsIdent() || At(k).Is("::")) ++k;
              if (At(k).Is("(")) k = SkipBalanced(k, "(", ")");
              else if (At(k).Is("{")) k = SkipBalanced(k, "{", "}");
              if (At(k).Is(",")) { ++k; continue; }
              break;
            }
          }
          if (k < end && At(k).Is("{")) {
            const std::size_t body_end = SkipBalanced(k, "{", "}");
            ParseFunctionBody(qual, k + 1, body_end - 1);
            i = body_end;
            continue;
          }
          i = k + 1;
          continue;
        }
      }
      if (t.Is("{")) { i = SkipBalanced(i, "{", "}"); continue; }
      ++i;
    }
  }

  // --- class bodies ---------------------------------------------------------
  // `i` points just past the opening '{'. Returns the index just past the
  // closing '}'.
  std::size_t ParseClass(const std::string& name, int line, std::size_t i) {
    CppClass cls;
    cls.name = name;
    cls.file = path_;
    cls.line = line;
    while (i < t_.size() && !At(i).Is("}")) {
      const Token& t = At(i);
      if ((t.Is("public") || t.Is("private") || t.Is("protected")) &&
          At(i + 1).Is(":")) {
        i += 2;
        continue;
      }
      if (t.Is("friend") || t.Is("using") || t.Is("typedef")) {
        while (i < t_.size() && !At(i).Is(";")) {
          if (At(i).Is("{")) { i = SkipBalanced(i, "{", "}"); continue; }
          ++i;
        }
        ++i;
        continue;
      }
      if (t.Is("enum")) {
        while (i < t_.size() && !At(i).Is("{") && !At(i).Is(";")) ++i;
        if (At(i).Is("{")) i = SkipBalanced(i, "{", "}");
        while (i < t_.size() && !At(i).Is(";")) ++i;
        ++i;
        continue;
      }
      if (t.Is("template")) {  // member template: skip the <...> header
        ++i;
        if (At(i).Is("<")) i = SkipBalanced(i, "<", ">");
        continue;
      }
      if ((t.Is("class") || t.Is("struct")) && At(i + 1).IsIdent()) {
        std::size_t j = i + 2;
        while (j < t_.size() && !At(j).Is("{") && !At(j).Is(";")) ++j;
        if (At(j).Is("{")) {
          // Nested class; afterwards, trailing declarators are members of
          // the ENCLOSING class with the nested type.
          const std::string nested = name + "::" + At(i + 1).text;
          const std::string nested_short = At(i + 1).text;
          std::size_t after = ParseClass(nested, At(i + 1).line, j + 1);
          while (after < t_.size() && !At(after).Is(";")) {
            if (At(after).IsIdent()) {
              CppMember m;
              m.name = At(after).text;
              m.type = nested_short;
              m.line = At(after).line;
              cls.members.push_back(m);
            }
            ++after;
          }
          i = after + 1;
          continue;
        }
        i = j + 1;  // forward declaration
        continue;
      }
      i = ParseMemberStatement(cls, i);
    }
    // Constructor detection happened in ParseMemberStatement; record class.
    model_->classes.push_back(std::move(cls));
    return i + 1;
  }

  // Parses one statement inside a class body starting at `i`; appends any
  // data members found; returns the index past the statement.
  std::size_t ParseMemberStatement(CppClass& cls, std::size_t i) {
    std::vector<Token> decl;  // statement tokens with initializers removed
    bool has_paren = false;
    bool saw_ctor_registry = false;
    const std::string short_name =
        cls.name.find_last_of(':') == std::string::npos
            ? cls.name
            : cls.name.substr(cls.name.find_last_of(':') + 1);
    while (i < t_.size()) {
      const Token& t = At(i);
      if (t.Is(";")) { ++i; break; }
      if (t.Is("}")) break;  // class end (defensive)
      if (t.Is("=")) {
        // default member initializer / pure-virtual / deleted fn: skip the
        // initializer expression up to a top-level ',' or ';'.
        int d = 0;
        ++i;
        while (i < t_.size()) {
          const Token& u = At(i);
          if (u.Is("(") || u.Is("{") || u.Is("[")) ++d;
          else if (u.Is(")") || u.Is("}") || u.Is("]")) --d;
          else if (d == 0 && (u.Is(",") || u.Is(";"))) break;
          ++i;
        }
        continue;
      }
      if (t.Is("(")) {
        has_paren = true;
        const std::size_t close = SkipBalanced(i, "(", ")");
        // Constructor taking StateRegistry&?
        if (!decl.empty() && decl.back().text == short_name) {
          for (std::size_t k = i; k < close; ++k)
            if (At(k).Is("StateRegistry")) saw_ctor_registry = true;
        }
        i = close;
        continue;
      }
      if (t.Is("{")) {
        const std::size_t close = SkipBalanced(i, "{", "}");
        // With a parameter list already seen, a '{' preceded by ')' (or by a
        // trailing qualifier, or the '}' of an init-list brace) starts an
        // inline function body; a '{' preceded by an identifier is a member
        // initializer inside a ctor-init list (`: x_{1}`), not the body.
        const Token& prev = At(i - 1);
        const bool body_start =
            prev.Is(")") || prev.Is("}") || prev.Is("const") ||
            prev.Is("noexcept") || prev.Is("override") || prev.Is("final");
        if (has_paren && body_start) {
          // Inline member function definition: parse its body for Allocate
          // calls (fixtures and future in-header constructors), then end the
          // statement (no trailing ';' required).
          ParseFunctionBody(cls.name, i + 1, close - 1);
          i = close;
          if (At(i).Is(";")) ++i;
          if (saw_ctor_registry) cls.registry_ctor = true;
          return i;
        }
        i = close;  // brace initializer
        continue;
      }
      decl.push_back(t);
      ++i;
    }
    if (saw_ctor_registry) cls.registry_ctor = true;
    if (has_paren || decl.empty()) return i;  // function decl or empty stmt
    ClassifyMember(cls, decl);
    return i;
  }

  // Turns one declaration token list into members of `cls`.
  void ClassifyMember(CppClass& cls, const std::vector<Token>& decl) {
    bool is_static = false, is_const = false;
    std::vector<Token> toks;
    for (const Token& t : decl) {
      if (t.Is("static")) { is_static = true; continue; }
      if (t.Is("constexpr")) { is_const = true; continue; }
      if (t.Is("const")) { is_const = true; continue; }
      if (t.Is("mutable") || t.Is("inline") || t.Is("volatile")) continue;
      toks.push_back(t);
    }
    if (toks.empty()) return;
    // Split into declarator groups at top-level commas (angle depth tracked
    // so template argument commas stay inside the type).
    std::vector<std::vector<Token>> groups(1);
    int angle = 0, square = 0;
    for (const Token& t : toks) {
      if (t.Is("<")) ++angle;
      else if (t.Is(">") && angle > 0) --angle;
      else if (t.Is("[")) ++square;
      else if (t.Is("]")) --square;
      if (t.Is(",") && angle == 0 && square == 0) {
        groups.emplace_back();
        continue;
      }
      groups.back().push_back(t);
    }
    // First group: type tokens + first declarator name [+ array suffix].
    const std::vector<Token>& g0 = groups[0];
    // Find the last identifier not inside [] (the declared name); anything
    // before it is the type. A trailing `: width` bitfield is ignored.
    int name_idx = -1;
    int sq = 0;
    for (std::size_t k = 0; k < g0.size(); ++k) {
      if (g0[k].Is("[")) ++sq;
      else if (g0[k].Is("]")) --sq;
      else if (g0[k].Is(":")) break;  // bitfield width follows
      else if (sq == 0 && g0[k].IsIdent())
        name_idx = static_cast<int>(k);
    }
    if (name_idx <= 0) return;  // no plausible `type name` split
    // `const T* p` declares a mutable pointer to const T: the const belongs
    // to the pointee, so the member still counts as mutable state.
    for (int k = 0; k < name_idx; ++k)
      if (g0[k].Is("*")) is_const = false;
    std::string type;
    for (int k = 0; k < name_idx; ++k) {
      if (!type.empty() && g0[k].IsIdent() &&
          std::isalnum((unsigned char)type.back()))
        type += ' ';
      type += g0[k].text;
    }
    if (type.empty()) return;
    const bool state_field = type == "StateField";
    auto push = [&](const std::vector<Token>& g, int from) {
      // Name then optional array suffix within this group.
      int ni = -1;
      int sqd = 0;
      for (std::size_t k = from; k < g.size(); ++k) {
        if (g[k].Is("[")) ++sqd;
        else if (g[k].Is("]")) --sqd;
        else if (g[k].Is(":")) break;
        else if (sqd == 0 && g[k].IsIdent()) ni = static_cast<int>(k);
      }
      if (ni < 0) return;
      CppMember m;
      m.name = g[ni].text;
      m.type = type;
      m.line = g[ni].line;
      m.is_static = is_static;
      m.is_const = is_const;
      m.is_state_field = state_field;
      for (std::size_t k = ni + 1; k < g.size(); ++k) {
        if (g[k].Is(":")) break;
        m.array_suffix += g[k].text;
      }
      cls.members.push_back(std::move(m));
    };
    push(g0, name_idx);
    for (std::size_t gi = 1; gi < groups.size(); ++gi) push(groups[gi], 0);
  }

  // --- function bodies: alias resolution + Allocate extraction --------------
  void ParseFunctionBody(const std::string& qualified, std::size_t i,
                         std::size_t end) {
    // Class name = qualifier minus the function name when the qualifier
    // names a known pattern (A::B -> class A; A::B::C -> class A::B). For
    // in-class bodies the caller passes the class name directly.
    std::string class_name = qualified;
    const std::size_t last = qualified.rfind("::");
    if (last != std::string::npos) class_name = qualified.substr(0, last);

    // Local enum aliases: `const auto x = Storage::kLatch;` etc.
    struct Alias { std::string kind, value; };
    std::vector<std::pair<std::string, Alias>> aliases;
    auto lookup = [&](const std::string& id, const char* kind) -> std::string {
      for (const auto& [n, a] : aliases)
        if (n == id && a.kind == kind) return a.value;
      return "";
    };

    for (std::size_t j = i; j < end; ++j) {
      // Alias pattern: ident = (Storage|StateCat) :: ident ;
      if (At(j).IsIdent() && At(j + 1).Is("=") &&
          (At(j + 2).Is("Storage") || At(j + 2).Is("StateCat")) &&
          At(j + 3).Is("::") && At(j + 4).IsIdent() && At(j + 5).Is(";")) {
        aliases.push_back({At(j).text, {At(j + 2).text, At(j + 4).text}});
        j += 5;
        continue;
      }
      // Allocate call: ... '.' Allocate '(' with >= 5 arguments.
      if (At(j).Is("Allocate") && j > 0 &&
          (At(j - 1).Is(".") || At(j - 1).Is("->")) && At(j + 1).Is("(")) {
        const std::size_t close = SkipBalanced(j + 1, "(", ")");
        CppAllocation alloc;
        alloc.file = path_;
        alloc.line = At(j).line;
        alloc.class_name = class_name;
        // Arguments, split at top-level commas.
        std::vector<std::vector<Token>> args(1);
        int d = 0;
        for (std::size_t k = j + 2; k + 1 < close; ++k) {
          const Token& u = At(k);
          if (u.Is("(") || u.Is("{") || u.Is("[")) ++d;
          else if (u.Is(")") || u.Is("}") || u.Is("]")) --d;
          if (u.Is(",") && d == 0) { args.emplace_back(); continue; }
          args.back().push_back(u);
        }
        if (args.size() < 5) continue;  // not the registry's Allocate
        // LHS member: scan back across the receiver chain for `name =`.
        std::size_t b = j - 1;  // at '.'/'->'
        while (b > i) {
          const Token& u = At(b - 1);
          if (u.IsIdent() || u.Is(".") || u.Is("->") || u.Is("]") ||
              u.Is("[") || u.Is("this")) { --b; continue; }
          break;
        }
        if (b > i && At(b - 1).Is("=")) {
          // tokens before '=' back to the statement boundary form the lhs.
          std::size_t s = b - 1;
          while (s > i && !At(s - 1).Is(";") && !At(s - 1).Is("{") &&
                 !At(s - 1).Is("}"))
            --s;
          int sqd = 0;
          for (std::size_t k = s; k < b - 1; ++k) {
            if (At(k).Is("[")) ++sqd;
            else if (At(k).Is("]")) --sqd;
            else if (sqd == 0 && At(k).IsIdent() && !At(k).Is("this"))
              alloc.member = At(k).text;
          }
        }
        // arg0: registered name.
        bool any_nonliteral = false;
        std::string lit;
        for (const Token& u : args[0]) {
          if (u.IsString())
            lit += u.text.substr(1, u.text.size() - 2);
          else if (!u.Is("+"))
            any_nonliteral = true;
        }
        alloc.reg_name = lit;
        alloc.name_is_suffix = any_nonliteral && !lit.empty();
        // arg1/arg2: category and storage.
        auto enum_of = [&](const std::vector<Token>& a,
                           const char* kind) -> std::string {
          if (a.size() >= 3 && a[0].Is(kind) && a[1].Is("::")) return a[2].text;
          if (a.size() == 1 && a[0].IsIdent()) return lookup(a[0].text, kind);
          return "";
        };
        alloc.cat = enum_of(args[1], "StateCat");
        alloc.storage = enum_of(args[2], "Storage");
        auto join = [](const std::vector<Token>& a) {
          std::string s;
          for (const Token& u : a) {
            if (!s.empty() && u.IsIdent() &&
                std::isalnum((unsigned char)s.back()))
              s += ' ';
            s += u.text;
          }
          return s;
        };
        alloc.count_expr = join(args[3]);
        alloc.width_expr = join(args[4]);
        auto literal = [](const std::string& s) -> long long {
          if (s.empty()) return -1;
          char* endp = nullptr;
          const long long v = std::strtoll(s.c_str(), &endp, 0);
          return endp && *endp == '\0' ? v : -1;
        };
        alloc.count_value = literal(alloc.count_expr);
        alloc.width_value = literal(alloc.width_expr);
        model_->allocations.push_back(std::move(alloc));
        j = close - 1;
        continue;
      }
    }
  }

  std::string path_;
  const std::vector<Token>& t_;
  CppModel* model_;
};

}  // namespace

bool CppAllocation::MatchesFieldName(const std::string& n) const {
  if (reg_name.empty()) return false;
  if (!name_is_suffix) return n == reg_name;
  return n.size() > reg_name.size() &&
         n.compare(n.size() - reg_name.size(), reg_name.size(), reg_name) == 0;
}

void ParseCppSource(const std::string& path, const std::string& text,
                    CppModel* model) {
  std::string code = StripComments(text, /*blank_literals=*/false);
  BlankDirectives(code);
  std::string blanked = StripComments(text, /*blank_literals=*/true);
  BlankDirectives(blanked);
  const std::vector<Token> toks = Tokenize(code);
  Parser(path, toks, model).Run();
  model->files.push_back({path, std::move(code), std::move(blanked)});
}

CppModel ParseCppFiles(const std::vector<std::string>& paths) {
  CppModel model;
  for (const std::string& p : paths) {
    std::ifstream in(p);
    if (!in) throw std::runtime_error("statelint: cannot read " + p);
    std::ostringstream ss;
    ss << in.rdbuf();
    ParseCppSource(p, ss.str(), &model);
  }
  return model;
}

int CountIdentifier(const std::string& text, const std::string& ident) {
  if (ident.empty()) return 0;
  int count = 0;
  std::size_t pos = 0;
  auto is_word = [](char c) {
    return std::isalnum((unsigned char)c) || c == '_';
  };
  while ((pos = text.find(ident, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_word(text[pos - 1]);
    const std::size_t after = pos + ident.size();
    const bool right_ok = after >= text.size() || !is_word(text[after]);
    if (left_ok && right_ok) ++count;
    pos = after;
  }
  return count;
}

}  // namespace tfsim::analyze
