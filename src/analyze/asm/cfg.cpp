#include "analyze/asm/cfg.h"

#include <algorithm>
#include <deque>
#include <set>

#include "arch/syscall.h"

namespace tfsim::analyze {
namespace {

bool IsTerminator(const AsmInst& ai) {
  return !ai.canonical || ai.d.IsBranchLike() ||
         ai.d.cls == InsnClass::kSyscall;
}

std::optional<std::size_t> DirectTarget(const AsmProgram& prog,
                                        std::size_t i) {
  const AsmInst& ai = prog.insts[i];
  const std::uint64_t target =
      ai.addr + 4 + static_cast<std::uint64_t>(ai.d.imm) * 4;
  return prog.IndexOf(target);
}

bool Defines(const DecodedInst& d, std::uint8_t reg) { return d.dst == reg; }

// Constant-materialization scan shared by indirect-target resolution (which
// runs before blocks exist and stops at `stop(j)`) and the public
// MaterializedConst (which stops at the block boundary).
template <typename StopFn>
std::optional<std::int64_t> ScanConst(const AsmProgram& prog,
                                      std::size_t before_idx, std::uint8_t reg,
                                      StopFn stop) {
  if (reg == kZeroReg) return 0;
  for (std::size_t j = before_idx; j-- > 0;) {
    const AsmInst& ai = prog.insts[j];
    if (!ai.canonical || ai.d.IsBranchLike() ||
        ai.d.cls == InsnClass::kSyscall) {
      return std::nullopt;  // value not materialized on this straight line
    }
    if (!Defines(ai.d, reg)) {
      if (stop(j)) return std::nullopt;
      continue;
    }
    switch (ai.d.op) {
      case Op::kLda:
        if (ai.d.src1 == kZeroReg) return ai.d.imm;
        // The ldah half must be on the same straight line: if the lda is
        // itself a join point, some path skips the ldah.
        if (ai.d.src1 == reg && j > 0 && !stop(j)) {
          const AsmInst& prev = prog.insts[j - 1];
          if (prev.canonical && prev.d.op == Op::kLdah && prev.d.dst == reg &&
              prev.d.src1 == kZeroReg) {
            return (prev.d.imm << 16) + ai.d.imm;  // the li/la expansion
          }
        }
        return std::nullopt;
      case Op::kLdah:
        if (ai.d.src1 == kZeroReg) return ai.d.imm << 16;
        return std::nullopt;
      case Op::kAddqi:
      case Op::kBisqi:
        if (ai.d.src1 == kZeroReg) return ai.d.imm;
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

bool Cfg::Dominates(std::size_t a, std::size_t b) const {
  while (b != kNoBlock) {
    if (a == b) return true;
    if (b == entry_block) return false;
    b = idom[b];
  }
  return false;
}

std::optional<std::size_t> Cfg::ReturnPoint(std::size_t call_block) const {
  const std::size_t next = blocks[call_block].last + 1;
  if (next >= prog->insts.size()) return std::nullopt;
  return block_of_inst[next];
}

std::optional<std::int64_t> MaterializedConst(const Cfg& cfg,
                                              std::size_t before_idx,
                                              std::uint8_t reg) {
  const std::size_t first = cfg.blocks[cfg.block_of_inst[before_idx]].first;
  return ScanConst(*cfg.prog, before_idx, reg,
                   [first](std::size_t j) { return j <= first; });
}

Cfg BuildCfg(const AsmProgram& prog) {
  Cfg cfg;
  cfg.prog = &prog;
  const std::size_t n = prog.insts.size();
  if (n == 0) return cfg;

  // --- leaders -----------------------------------------------------------
  std::set<std::size_t> leaders;
  const std::size_t entry_idx = prog.IndexOf(prog.entry).value_or(0);
  leaders.insert(entry_idx);
  // Indirect-jump resolutions (inst index -> resolved target index).
  std::vector<std::optional<std::size_t>> indirect(n);
  for (std::size_t i = 0; i < n; ++i) {
    const AsmInst& ai = prog.insts[i];
    if (ai.canonical && ai.d.IsDirectBranch()) {
      if (auto t = DirectTarget(prog, i)) {
        leaders.insert(*t);
      } else {
        cfg.out_of_text.push_back(i);
      }
    }
    if (ai.canonical &&
        (ai.d.cls == InsnClass::kJmp || ai.d.cls == InsnClass::kJsr)) {
      // Stop the scan at already-known leaders: past a join point the
      // materialization is not guaranteed on every incoming path.
      const auto value =
          ScanConst(prog, i, ai.d.src1, [&leaders](std::size_t j) {
            return leaders.count(j) != 0;
          });
      if (value) {
        if (auto t = prog.IndexOf(static_cast<std::uint64_t>(*value))) {
          indirect[i] = *t;
          leaders.insert(*t);
        } else {
          cfg.out_of_text.push_back(i);
        }
      } else {
        cfg.unresolved_indirect.push_back(i);
      }
    }
    if (IsTerminator(ai) && i + 1 < n) leaders.insert(i + 1);
  }

  // --- blocks ------------------------------------------------------------
  std::vector<std::size_t> sorted(leaders.begin(), leaders.end());
  cfg.block_of_inst.assign(n, kNoBlock);
  for (std::size_t b = 0; b < sorted.size(); ++b) {
    BasicBlock bb;
    bb.first = sorted[b];
    bb.last = (b + 1 < sorted.size() ? sorted[b + 1] : n) - 1;
    for (std::size_t i = bb.first; i <= bb.last; ++i)
      cfg.block_of_inst[i] = b;
    cfg.blocks.push_back(bb);
  }
  cfg.entry_block = cfg.block_of_inst[entry_idx];

  // --- edges -------------------------------------------------------------
  auto link = [&cfg](std::size_t from, std::size_t to) {
    cfg.blocks[from].succs.push_back(to);
    cfg.blocks[to].preds.push_back(from);
  };
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    BasicBlock& bb = cfg.blocks[b];
    const std::size_t t = bb.last;
    const AsmInst& ai = prog.insts[t];
    const bool has_fallthrough = t + 1 < n;
    if (!ai.canonical) continue;  // traps: no successors
    switch (ai.d.cls) {
      case InsnClass::kCondBranch:
        if (auto tgt = prog.IndexOf(ai.addr + 4 +
                                    static_cast<std::uint64_t>(ai.d.imm) * 4))
          link(b, cfg.block_of_inst[*tgt]);
        if (has_fallthrough) link(b, cfg.block_of_inst[t + 1]);
        break;
      case InsnClass::kBr:
        if (auto tgt = DirectTarget(prog, t)) link(b, cfg.block_of_inst[*tgt]);
        break;
      case InsnClass::kBsr:
        bb.is_call = true;
        if (auto tgt = DirectTarget(prog, t)) {
          bb.call_target = cfg.block_of_inst[*tgt];
          link(b, *bb.call_target);
        }
        break;
      case InsnClass::kJmp:
        if (indirect[t]) {
          link(b, cfg.block_of_inst[*indirect[t]]);
        } else {
          bb.indirect_unresolved = true;
        }
        break;
      case InsnClass::kJsr:
        bb.is_call = true;
        if (indirect[t]) {
          bb.call_target = cfg.block_of_inst[*indirect[t]];
          link(b, *bb.call_target);
        } else {
          bb.indirect_unresolved = true;
        }
        break;
      case InsnClass::kRet:
        bb.is_ret = true;  // successors wired below, per function
        break;
      case InsnClass::kSyscall: {
        // An exit syscall ends the graph; anything else falls through.
        std::optional<std::int64_t> v0;
        {
          const std::size_t first = bb.first;
          v0 = ScanConst(prog, t, 0,
                         [first](std::size_t j) { return j <= first; });
        }
        bb.is_exit =
            v0 && static_cast<std::uint64_t>(*v0) == kSysExit;
        if (!bb.is_exit && has_fallthrough) link(b, cfg.block_of_inst[t + 1]);
        break;
      }
      default:
        if (has_fallthrough) link(b, cfg.block_of_inst[t + 1]);
        break;
    }
  }

  // --- function partition ------------------------------------------------
  // Entries: the program entry plus every resolved call target. Blocks are
  // assigned by intra-procedural traversal: calls continue at their return
  // point, rets stop.
  cfg.func_of.assign(cfg.blocks.size(), kNoBlock);
  std::vector<std::size_t> func_entries{cfg.entry_block};
  for (const BasicBlock& bb : cfg.blocks)
    if (bb.call_target) func_entries.push_back(*bb.call_target);
  std::sort(func_entries.begin(), func_entries.end());
  func_entries.erase(std::unique(func_entries.begin(), func_entries.end()),
                     func_entries.end());
  for (const std::size_t fe : func_entries) {
    if (cfg.func_of[fe] != kNoBlock) continue;  // entry inside another body
    std::deque<std::size_t> work{fe};
    cfg.func_of[fe] = fe;
    while (!work.empty()) {
      const std::size_t b = work.front();
      work.pop_front();
      const BasicBlock& bb = cfg.blocks[b];
      std::vector<std::size_t> next;
      if (bb.is_call) {
        if (auto rp = cfg.ReturnPoint(b)) next.push_back(*rp);
      } else if (!bb.is_ret) {
        next = bb.succs;
      }
      for (const std::size_t s : next) {
        if (cfg.func_of[s] != kNoBlock) continue;
        cfg.func_of[s] = fe;
        work.push_back(s);
      }
    }
  }

  // --- RAS-aware return edges ---------------------------------------------
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    const BasicBlock& bb = cfg.blocks[b];
    if (!bb.is_call || !bb.call_target) continue;
    const auto rp = cfg.ReturnPoint(b);
    if (!rp) continue;
    const std::size_t callee = *bb.call_target;
    for (std::size_t r = 0; r < cfg.blocks.size(); ++r) {
      if (cfg.blocks[r].is_ret && cfg.func_of[r] == callee) link(r, *rp);
    }
  }

  // --- reverse postorder + reachability ------------------------------------
  std::vector<int> state(cfg.blocks.size(), 0);  // 0 unseen, 1 open, 2 done
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (block, next succ)
  std::vector<std::size_t> postorder;
  stack.emplace_back(cfg.entry_block, 0);
  state[cfg.entry_block] = 1;
  while (!stack.empty()) {
    auto& [b, i] = stack.back();
    if (i < cfg.blocks[b].succs.size()) {
      const std::size_t s = cfg.blocks[b].succs[i++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      postorder.push_back(b);
      stack.pop_back();
    }
  }
  cfg.rpo.assign(postorder.rbegin(), postorder.rend());
  cfg.reachable.assign(cfg.blocks.size(), false);
  for (const std::size_t b : cfg.rpo) cfg.reachable[b] = true;

  // --- dominators (Cooper-Harvey-Kennedy) ---------------------------------
  std::vector<std::size_t> rpo_num(cfg.blocks.size(), kNoBlock);
  for (std::size_t i = 0; i < cfg.rpo.size(); ++i) rpo_num[cfg.rpo[i]] = i;
  cfg.idom.assign(cfg.blocks.size(), kNoBlock);
  cfg.idom[cfg.entry_block] = cfg.entry_block;
  auto intersect = [&](std::size_t a, std::size_t b) {
    while (a != b) {
      while (rpo_num[a] > rpo_num[b]) a = cfg.idom[a];
      while (rpo_num[b] > rpo_num[a]) b = cfg.idom[b];
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t b : cfg.rpo) {
      if (b == cfg.entry_block) continue;
      std::size_t new_idom = kNoBlock;
      for (const std::size_t p : cfg.blocks[b].preds) {
        if (cfg.idom[p] == kNoBlock) continue;  // not yet processed/unreached
        new_idom = new_idom == kNoBlock ? p : intersect(new_idom, p);
      }
      if (new_idom != kNoBlock && cfg.idom[b] != new_idom) {
        cfg.idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return cfg;
}

}  // namespace tfsim::analyze
