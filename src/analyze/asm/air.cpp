#include "analyze/asm/air.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace tfsim::analyze {
namespace {

// Index of the chunk containing `entry`; falls back to the first chunk so
// hand-built images without an in-chunk entry still lift.
std::size_t TextChunkIndex(const Program& p) {
  for (std::size_t i = 0; i < p.chunks.size(); ++i) {
    const auto& c = p.chunks[i];
    if (p.entry >= c.addr && p.entry < c.addr + c.bytes.size()) return i;
  }
  return 0;
}

std::uint32_t Word32At(const std::vector<std::uint8_t>& bytes,
                       std::size_t off) {
  std::uint32_t w = 0;
  std::memcpy(&w, bytes.data() + off, 4);
  return w;
}

}  // namespace

bool IsCanonicalWord(std::uint32_t word) {
  const Op op = static_cast<Op>(OpField(word));
  const DecodedInst d = Decode(word);
  // Re-encode from the raw register fields (not the decoded operands: Decode
  // drops r31 destinations to kNoReg) and demand bit-exactness.
  switch (d.cls) {
    case InsnClass::kIllegal:
      return false;
    case InsnClass::kAlu:
    case InsnClass::kAluComplex:
      if (op == Op::kLda || op == Op::kLdah)
        return EncodeM(op, RaField(word), RbField(word), Imm16Field(word)) ==
               word;
      if (OpField(word) >= 0x20)  // I-format block
        return EncodeI(op, RaField(word), RbField(word), Imm16Field(word)) ==
               word;
      return EncodeR(op, RaField(word), RbField(word), RcField(word)) == word;
    case InsnClass::kLoad:
    case InsnClass::kStore:
      return EncodeM(op, RaField(word), RbField(word), Imm16Field(word)) ==
             word;
    case InsnClass::kCondBranch:
    case InsnClass::kBr:
    case InsnClass::kBsr:
      return EncodeB(op, RaField(word), Disp21Field(word)) == word;
    case InsnClass::kJmp:
    case InsnClass::kJsr:
    case InsnClass::kRet:
      return EncodeJ(op, RaField(word), RbField(word)) == word;
    case InsnClass::kSyscall:
      // The textual form carries no operands, so only the all-zero-field
      // encoding round-trips.
      return word == EncodeJ(Op::kSyscall, 0, 0);
  }
  return false;
}

std::string AsmProgram::Locate(std::uint64_t addr) const {
  const std::string* best_name = nullptr;
  std::uint64_t best = 0;
  for (const auto& [name, value] : symbols) {
    if (value > addr) continue;
    if (best_name == nullptr || value > best) {
      best_name = &name;
      best = value;
    }
  }
  char buf[96];
  if (best_name == nullptr) {
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(addr));
    return buf;
  }
  if (addr == best) return *best_name;
  std::snprintf(buf, sizeof buf, "%s+0x%llx", best_name->c_str(),
                static_cast<unsigned long long>(addr - best));
  return buf;
}

AsmProgram Lift(const Program& program) {
  if (program.chunks.empty())
    throw std::invalid_argument("Lift: program has no chunks");
  const auto& text = program.chunks[TextChunkIndex(program)];
  AsmProgram ap;
  ap.entry = program.entry;
  ap.text_base = text.addr;
  ap.symbols = program.symbols;
  ap.insts.reserve(text.bytes.size() / 4);
  for (std::size_t off = 0; off + 4 <= text.bytes.size(); off += 4) {
    AsmInst ai;
    ai.addr = text.addr + off;
    ai.word = Word32At(text.bytes, off);
    ai.d = Decode(ai.word);
    ai.canonical = IsCanonicalWord(ai.word);
    ap.insts.push_back(ai);
  }
  return ap;
}

namespace {

void EmitLong(std::ostringstream& os, std::uint32_t w) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "  .long 0x%08x", w);
  os << buf << "\n";
}

void EmitOrg(std::ostringstream& os, std::uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof buf, ".org 0x%llx",
                static_cast<unsigned long long>(addr));
  os << buf << "\n";
}

// Emits a data chunk as .byte/.space runs, placing `_start:` if the entry
// point happens to live inside data.
void EmitDataBytes(std::ostringstream& os, const Program::Chunk& c,
                   std::uint64_t entry) {
  std::size_t i = 0;
  while (i < c.bytes.size()) {
    if (c.addr + i == entry) os << "_start:\n";
    // A byte run ends at the entry label (so the label lands between
    // directives) and groups at most 8 values per .byte line.
    std::size_t limit = c.bytes.size();
    if (entry > c.addr + i && entry < c.addr + c.bytes.size())
      limit = std::min<std::size_t>(limit, entry - c.addr);
    std::size_t z = i;
    while (z < limit && c.bytes[z] == 0) ++z;
    if (z - i >= 8 || (z == limit && z > i)) {
      os << "  .space " << (z - i) << "\n";
      i = z;
      continue;
    }
    os << "  .byte ";
    std::size_t n = 0;
    while (i < limit && n < 8) {
      // Stop before a long zero run so it compresses to .space.
      if (c.bytes[i] == 0) {
        std::size_t run = i;
        while (run < limit && c.bytes[run] == 0) ++run;
        if (run - i >= 8 || run == limit) break;
      }
      if (n) os << ", ";
      os << static_cast<unsigned>(c.bytes[i]);
      ++i;
      ++n;
    }
    os << "\n";
  }
}

}  // namespace

std::string DisassembleProgram(const Program& program) {
  if (program.chunks.empty())
    throw std::invalid_argument("DisassembleProgram: program has no chunks");
  const std::size_t text_idx = TextChunkIndex(program);
  const auto& text = program.chunks[text_idx];
  if (text.addr < kAsmTextBase || text.bytes.size() % 4 != 0)
    throw std::invalid_argument(
        "DisassembleProgram: text chunk not assembler-shaped");

  std::ostringstream os;
  os << ".text\n";
  if (text.addr != kAsmTextBase) EmitOrg(os, text.addr);
  for (std::size_t off = 0; off < text.bytes.size(); off += 4) {
    const std::uint64_t addr = text.addr + off;
    if (addr == program.entry) os << "_start:\n";
    const std::uint32_t w = Word32At(text.bytes, off);
    if (IsCanonicalWord(w)) {
      os << "  " << Disassemble(w, addr) << "\n";
    } else {
      EmitLong(os, w);
    }
  }

  // Remaining chunks in address order become the data section. The data
  // location counter starts at kAsmDataBase, so only chunks past it need an
  // explicit .org.
  std::vector<std::size_t> data_idx;
  for (std::size_t i = 0; i < program.chunks.size(); ++i)
    if (i != text_idx) data_idx.push_back(i);
  std::sort(data_idx.begin(), data_idx.end(), [&](std::size_t a,
                                                  std::size_t b) {
    return program.chunks[a].addr < program.chunks[b].addr;
  });
  if (!data_idx.empty()) {
    os << ".data\n";
    for (const std::size_t i : data_idx) {
      const auto& c = program.chunks[i];
      if (c.addr < kAsmDataBase)
        throw std::invalid_argument(
            "DisassembleProgram: data chunk below the assembler data base");
      if (c.addr != kAsmDataBase) EmitOrg(os, c.addr);
      EmitDataBytes(os, c, program.entry);
    }
  }
  return os.str();
}

}  // namespace tfsim::analyze
