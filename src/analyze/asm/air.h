// Assembly IR: the decoded-instruction view of an assembled miniAlpha
// Program that the CFG/dataflow framework (analyze/asm/) and the software
// hardening transform (soft/harden.h) are built on.
//
// A Program is byte chunks; the lifter recovers the instruction stream of
// the text chunk (the chunk holding the entry point), decodes every 32-bit
// word, and records whether each word is *canonical* — i.e. re-encoding its
// decoded form reproduces the word bit for bit. Canonical words round-trip
// through the textual disassembler; non-canonical words (data embedded in
// .text, corrupted encodings) are preserved as `.long` directives, so
// DisassembleProgram() is a true inverse of Assemble() on assembled images:
//
//   Assemble(DisassembleProgram(p)) has byte-identical chunks and entry.
//
// That fixed point is a tier-1 property test (tests/test_asm_framework.cpp)
// across all ten workloads and examples/hello.s.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/assemble.h"
#include "isa/isa.h"

namespace tfsim::analyze {

// One lifted text-chunk instruction.
struct AsmInst {
  std::uint64_t addr = 0;
  std::uint32_t word = 0;
  DecodedInst d;
  // Re-encoding the decoded fields reproduces `word` exactly. Non-canonical
  // words behave as data (or trap as kIllegal) and are excluded from
  // instruction-level analyses.
  bool canonical = false;
};

struct AsmProgram {
  std::uint64_t entry = 0;
  std::uint64_t text_base = 0;  // address of the first lifted instruction
  std::vector<AsmInst> insts;   // text chunk in address order
  std::map<std::string, std::uint64_t> symbols;  // from the Program

  // Index of the instruction at `addr` (addr must be word-aligned and inside
  // the text chunk), or nullopt.
  std::optional<std::size_t> IndexOf(std::uint64_t addr) const {
    if (addr < text_base || (addr - text_base) % 4 != 0) return std::nullopt;
    const std::uint64_t i = (addr - text_base) / 4;
    if (i >= insts.size()) return std::nullopt;
    return static_cast<std::size_t>(i);
  }
  std::uint64_t EndAddr() const { return text_base + 4 * insts.size(); }

  // "label+0x10" for the nearest preceding text symbol (stable across small
  // edits, used for finding locations and allowlist keys).
  std::string Locate(std::uint64_t addr) const;
};

// Lifts the text chunk (the chunk containing `entry`; the first chunk when
// the entry lies outside every chunk). Throws std::invalid_argument when the
// program has no chunks.
AsmProgram Lift(const Program& program);

// Emits assembly source that re-assembles to a byte-identical image (see
// header comment). Data chunks are emitted as .byte/.space runs under .org.
std::string DisassembleProgram(const Program& program);

// True when re-encoding `Decode(word)` reproduces `word` exactly.
bool IsCanonicalWord(std::uint32_t word);

}  // namespace tfsim::analyze
