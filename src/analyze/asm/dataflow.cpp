#include "analyze/asm/dataflow.h"

namespace tfsim::analyze {
namespace {

std::uint32_t RegBit(std::uint8_t r) {
  return (r == kNoReg || r == kZeroReg) ? 0u : (1u << r);
}

}  // namespace

std::uint32_t UseMask(const DecodedInst& d) {
  if (d.cls == InsnClass::kSyscall) {
    // number in v0(r0), args in a0(r16)/a1(r17)
    return RegBit(0) | RegBit(16) | RegBit(17);
  }
  return RegBit(d.src1) | RegBit(d.src2);
}

std::uint32_t DefMask(const DecodedInst& d) {
  if (d.cls == InsnClass::kSyscall) return RegBit(0);  // result in v0
  return RegBit(d.dst);
}

bool MayTrap(const DecodedInst& d) {
  if (d.IsMem()) return true;  // unaligned / TLB
  switch (d.op) {
    case Op::kDivq:
    case Op::kRemq:
    case Op::kAddv:
    case Op::kSubv:
      return true;
    default:
      return false;
  }
}

Dataflow::Dataflow(const Cfg& cfg) : cfg_(&cfg) {
  const AsmProgram& prog = *cfg.prog;
  const std::size_t nb = cfg.blocks.size();
  const std::size_t ni = prog.insts.size();

  // Per-block gen/kill for the register analyses.
  std::vector<std::uint32_t> ue_var(nb, 0), var_kill(nb, 0);
  for (std::size_t b = 0; b < nb; ++b) {
    for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last; ++i) {
      const DecodedInst& d = prog.insts[i].d;
      if (!prog.insts[i].canonical) continue;
      ue_var[b] |= UseMask(d) & ~var_kill[b];
      var_kill[b] |= DefMask(d);
    }
  }

  // Liveness: LiveOut(b) = U LiveIn(s); LiveIn(b) = UEVar U (Out \ Kill).
  live_in_.assign(nb, 0);
  live_out_.assign(nb, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = cfg.rpo.rbegin(); it != cfg.rpo.rend(); ++it) {
      const std::size_t b = *it;
      std::uint32_t out = 0;
      for (const std::size_t s : cfg.blocks[b].succs) out |= live_in_[s];
      // An under-approximated terminator (unresolved indirect) may continue
      // anywhere: keep everything the unit still reads live past it.
      if (cfg.blocks[b].indirect_unresolved)
        for (std::size_t x = 0; x < nb; ++x) out |= ue_var[x];
      const std::uint32_t in = ue_var[b] | (out & ~var_kill[b]);
      if (out != live_out_[b] || in != live_in_[b]) {
        live_out_[b] = out;
        live_in_[b] = in;
        changed = true;
      }
    }
  }

  // Maybe-uninit: forward may-analysis; the entry block starts with every
  // register carrying its synthetic "never written" definition (the
  // architectural state zero-initializes registers — reading one is defined
  // behaviour but almost always a workload bug).
  uninit_in_.assign(nb, 0);
  uninit_in_[cfg.entry_block] = 0x7FFFFFFFu;  // r0..r30
  changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t b : cfg.rpo) {
      std::uint32_t in = b == cfg.entry_block ? 0x7FFFFFFFu : 0;
      for (const std::size_t p : cfg.blocks[b].preds)
        in |= uninit_in_[p] & ~var_kill[p];
      if (in != uninit_in_[b]) {
        uninit_in_[b] = in;
        changed = true;
      }
    }
  }

  // Reaching definitions over instruction indices (dense bitsets). A def of
  // register r kills every other def of r.
  const std::size_t words = (ni + 63) / 64;
  std::vector<std::vector<std::uint64_t>> gen(nb), kill_mask(nb);
  // def_sites[r] = bitset of instructions defining r.
  std::vector<std::vector<std::uint64_t>> def_sites(
      kNumArchRegs, std::vector<std::uint64_t>(words, 0));
  auto set_bit = [](std::vector<std::uint64_t>& v, std::size_t i) {
    v[i / 64] |= std::uint64_t{1} << (i % 64);
  };
  for (std::size_t i = 0; i < ni; ++i) {
    if (!prog.insts[i].canonical) continue;
    const std::uint32_t defs = DefMask(prog.insts[i].d);
    for (int r = 0; r < kNumArchRegs; ++r)
      if (defs & (1u << r)) set_bit(def_sites[r], i);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    gen[b].assign(words, 0);
    kill_mask[b].assign(words, 0);
    for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last; ++i) {
      if (!prog.insts[i].canonical) continue;
      const std::uint32_t defs = DefMask(prog.insts[i].d);
      if (!defs) continue;
      for (int r = 0; r < kNumArchRegs; ++r) {
        if (!(defs & (1u << r))) continue;
        for (std::size_t w = 0; w < words; ++w) {
          gen[b][w] &= ~def_sites[r][w];
          kill_mask[b][w] |= def_sites[r][w];
        }
      }
      set_bit(gen[b], i);
    }
  }
  reach_in_.assign(nb, std::vector<std::uint64_t>(words, 0));
  std::vector<std::vector<std::uint64_t>> reach_out(
      nb, std::vector<std::uint64_t>(words, 0));
  changed = true;
  while (changed) {
    changed = false;
    for (const std::size_t b : cfg.rpo) {
      std::vector<std::uint64_t> in(words, 0);
      for (const std::size_t p : cfg.blocks[b].preds)
        for (std::size_t w = 0; w < words; ++w) in[w] |= reach_out[p][w];
      std::vector<std::uint64_t> out(words);
      for (std::size_t w = 0; w < words; ++w)
        out[w] = gen[b][w] | (in[w] & ~kill_mask[b][w]);
      if (in != reach_in_[b] || out != reach_out[b]) {
        reach_in_[b] = std::move(in);
        reach_out[b] = std::move(out);
        changed = true;
      }
    }
  }
}

}  // namespace tfsim::analyze
