// Control-flow graph recovery over a lifted AsmProgram.
//
// Leaders are the entry point, direct-branch targets, statically resolved
// indirect-jump targets, and the instruction after every terminator
// (branch-like, syscall, or non-canonical word). Indirect jmp/jsr targets
// are recovered by walking backwards for the li/la (ldah+lda) pair — or
// addqi-from-zero — that materializes the target register; unresolvable
// indirections are recorded rather than guessed. Call/return edges are
// RAS-aware: blocks are partitioned into functions (program entry plus every
// call target), and each `ret` block gets successor edges only to the return
// points of the call sites that target its function — not to every return
// point in the program.
//
// Exit syscalls (v0 statically materialized to kSysExit) end the graph; other
// syscalls fall through. Dominators are computed with the Cooper-Harvey-
// Kennedy iterative algorithm over reverse postorder.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analyze/asm/air.h"

namespace tfsim::analyze {

inline constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

struct BasicBlock {
  std::size_t first = 0;  // inclusive instruction index range
  std::size_t last = 0;
  std::vector<std::size_t> succs;  // block ids (call blocks -> callee entry)
  std::vector<std::size_t> preds;
  // Terminator classification (of insts[last]).
  bool is_call = false;          // ends in bsr/jsr
  bool is_ret = false;           // ends in ret
  bool is_exit = false;          // syscall with v0 resolved to kSysExit
  bool indirect_unresolved = false;  // jmp/jsr target not materializable
  std::optional<std::size_t> call_target;  // callee entry block (bsr/jsr)
};

struct Cfg {
  const AsmProgram* prog = nullptr;
  std::vector<BasicBlock> blocks;          // in address order
  std::vector<std::size_t> block_of_inst;  // inst index -> block id
  std::size_t entry_block = kNoBlock;
  // Reverse postorder from the entry over successor edges (reached blocks
  // only — anything absent is statically unreachable).
  std::vector<std::size_t> rpo;
  std::vector<bool> reachable;            // per block
  std::vector<std::size_t> idom;          // per block; kNoBlock if unreached
  std::vector<std::size_t> func_of;       // function-entry block id, or kNoBlock
  // Instruction indices of branches whose targets left the text chunk, and of
  // unresolved indirect jumps (lint findings; the CFG under-approximates
  // successors at these points).
  std::vector<std::size_t> out_of_text;
  std::vector<std::size_t> unresolved_indirect;

  // True when block `a` dominates block `b` (both must be reachable).
  bool Dominates(std::size_t a, std::size_t b) const;
  // The return-point block of a call block, if the call site has one.
  std::optional<std::size_t> ReturnPoint(std::size_t call_block) const;
};

Cfg BuildCfg(const AsmProgram& prog);

// Walks backwards from insts[before_idx] (exclusive) within its basic block
// for a constant materialization of `reg`: an ldah+lda pair, a lone
// lda/ldah from r31, or addqi/bisqi from r31. Returns the constant, or
// nullopt when the defining instruction is absent, outside the block, or not
// a recognized pattern.
std::optional<std::int64_t> MaterializedConst(const Cfg& cfg,
                                              std::size_t before_idx,
                                              std::uint8_t reg);

}  // namespace tfsim::analyze
