// asmlint: static lint over assembled miniAlpha programs, built on the
// Lift -> BuildCfg -> Dataflow stack. Two finding families share one
// vocabulary:
//
// Workload lints (RunAsmLint):
//   * use-before-def      — a register read on some path before any write
//                           (architecturally reads zero; almost always a bug)
//   * dead-value          — a non-trapping definition never observed by any
//                           later use (the paper's dead/transitively-dead
//                           value classes, surfaced statically)
//   * dead-store          — a store overwritten by a same-address store with
//                           no intervening read, load, call, or syscall
//   * unreachable         — a decodable block no path from the entry reaches
//   * indirect-unresolved — jmp/jsr whose target register has no static
//                           materialization (CFG under-approximates here)
//   * misaligned          — memory access whose statically-known effective
//                           address is not size-aligned (guaranteed trap)
//   * stack-discipline    — sp written by anything other than an immediate
//                           adjustment or the initial materialization
//   * illegal-word        — a reachable non-canonical instruction word
//
// Hardening-verifier findings (soft/harden.h VerifyHardened): unduplicated
// value, unguarded store/branch, signature edge, shadow clobber, structural.
//
// Allowlisting mirrors statelint: `key: justification` entries (reusing
// analyze::ParseAllowlist), key = `<unit>.<kind>.<location>` with the
// location from AsmProgram::Locate (nearest label + offset). Unused entries
// are findings, so the audit trail cannot rot.
#pragma once

#include <string>
#include <vector>

#include "analyze/asm/dataflow.h"
#include "analyze/statelint.h"

namespace tfsim::analyze {

enum class AsmFindingKind {
  kUseBeforeDef,
  kDeadValue,
  kDeadStore,
  kUnreachable,
  kIndirectUnresolved,
  kMisaligned,
  kStackDiscipline,
  kIllegalWord,
  // VerifyHardened (soft/harden.h) findings.
  kUnduplicatedValue,
  kUnguardedStore,
  kUnguardedBranch,
  kSignatureEdge,
  kShadowClobber,
  kHardenStructure,
  kUnusedAllowlist,
};

const char* AsmFindingKindName(AsmFindingKind k);

struct AsmFinding {
  AsmFindingKind kind = AsmFindingKind::kUseBeforeDef;
  std::string unit;     // workload / program name
  std::uint64_t addr = 0;
  std::string where;    // AsmProgram::Locate(addr)
  std::string detail;

  // `<unit>.<kind>.<where>` — the allowlist key.
  std::string Key() const;
  std::string Format() const;
};

struct AsmLintOptions {
  std::string unit = "program";
  // The unreachable check is automatically skipped when the unit contains
  // unresolved indirect jumps (any block could be a target).
  bool check_unreachable = true;
};

// Lints one program. Findings suppressed by `allow` mark their entry used.
std::vector<AsmFinding> RunAsmLint(const AsmProgram& prog,
                                   std::vector<AllowEntry>& allow,
                                   const AsmLintOptions& opt);

// Applies the allowlist to independently produced findings (e.g. from
// VerifyHardened): suppressed findings are removed, entries marked used.
void ApplyAllowlist(std::vector<AsmFinding>& findings,
                    std::vector<AllowEntry>& allow);

// One kUnusedAllowlist finding per never-consumed entry; call after every
// unit has been linted against the shared allowlist.
std::vector<AsmFinding> UnusedAllowFindings(const std::vector<AllowEntry>& allow);

}  // namespace tfsim::analyze
