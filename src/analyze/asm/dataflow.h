// Register dataflow over a recovered Cfg: per-instruction use/def masks
// (syscall-ABI aware), backward liveness, and reaching definitions with a
// synthetic entry definition per register so use-before-def falls out of the
// reaching-def sets. All analyses run on the supergraph BuildCfg produces
// (call edges into callees, RAS-aware return edges back), so facts propagate
// through calls conservatively.
#pragma once

#include <cstdint>
#include <vector>

#include "analyze/asm/cfg.h"

namespace tfsim::analyze {

// Bit r set = register r participates; r31 never appears (reads as zero,
// writes discarded), kNoReg operands contribute nothing.
std::uint32_t UseMask(const DecodedInst& d);
std::uint32_t DefMask(const DecodedInst& d);

// True for operations whose execution can raise an exception even when the
// result is dead (div/rem zero, overflow variants, memory access faults) —
// a dead destination does not make these removable, so the dead-value lint
// reports them at a lower confidence.
bool MayTrap(const DecodedInst& d);

class Dataflow {
 public:
  explicit Dataflow(const Cfg& cfg);

  const Cfg& cfg() const { return *cfg_; }

  // Liveness (backward may-analysis), per block.
  std::uint32_t LiveIn(std::size_t block) const { return live_in_[block]; }
  std::uint32_t LiveOut(std::size_t block) const { return live_out_[block]; }

  // Registers whose synthetic entry definition (never written on some path
  // from the program entry) reaches the top of `block`.
  std::uint32_t MaybeUninitIn(std::size_t block) const {
    return uninit_in_[block];
  }

  // Reaching definitions: the set of instruction indices whose definition of
  // some register reaches the top of `block` (dense bitset over insts).
  const std::vector<std::uint64_t>& ReachingIn(std::size_t block) const {
    return reach_in_[block];
  }
  static bool TestBit(const std::vector<std::uint64_t>& bits, std::size_t i) {
    return (bits[i / 64] >> (i % 64)) & 1;
  }

 private:
  const Cfg* cfg_;
  std::vector<std::uint32_t> live_in_, live_out_;
  std::vector<std::uint32_t> uninit_in_;
  std::vector<std::vector<std::uint64_t>> reach_in_;
};

}  // namespace tfsim::analyze
