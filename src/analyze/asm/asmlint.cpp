#include "analyze/asm/asmlint.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace tfsim::analyze {
namespace {

const char* RegName(int r) {
  static const char* kNames[] = {
      "r0",  "r1",  "r2",  "r3",  "r4",  "r5",  "r6",  "r7",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15",
      "r16", "r17", "r18", "r19", "r20", "r21", "r22", "r23",
      "r24", "r25", "r26", "r27", "r28", "r29", "r30", "r31"};
  return kNames[r & 31];
}

bool IsNop(const AsmInst& ai) {
  // bisq zero, zero, zero — the assembler's `nop`.
  return ai.canonical && ai.d.op == Op::kBisq && ai.d.src1 == kZeroReg &&
         ai.d.src2 == kZeroReg && ai.d.dst == kNoReg;
}

void Emit(std::vector<AsmFinding>& out, const AsmProgram& prog,
          const AsmLintOptions& opt, AsmFindingKind kind, std::uint64_t addr,
          std::string detail) {
  AsmFinding f;
  f.kind = kind;
  f.unit = opt.unit;
  f.addr = addr;
  f.where = prog.Locate(addr);
  f.detail = std::move(detail);
  out.push_back(std::move(f));
}

void LintUseBeforeDef(const Dataflow& df, const AsmLintOptions& opt,
                      std::vector<AsmFinding>& out) {
  const Cfg& cfg = df.cfg();
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    std::uint32_t uninit = df.MaybeUninitIn(b);
    for (std::size_t i = cfg.blocks[b].first; i <= cfg.blocks[b].last; ++i) {
      const AsmInst& ai = prog.insts[i];
      if (!ai.canonical) continue;
      const std::uint32_t hit = UseMask(ai.d) & uninit;
      for (int r = 0; r < kNumArchRegs; ++r) {
        if (!(hit & (1u << r))) continue;
        Emit(out, prog, opt, AsmFindingKind::kUseBeforeDef, ai.addr,
             std::string(RegName(r)) + " read before any write in `" +
                 Disassemble(ai.word, ai.addr) + "` (reads zero)");
      }
      uninit &= ~DefMask(ai.d);
    }
  }
}

void LintDeadValues(const Dataflow& df, const AsmLintOptions& opt,
                    std::vector<AsmFinding>& out) {
  const Cfg& cfg = df.cfg();
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    const BasicBlock& bb = cfg.blocks[b];
    std::uint32_t live = df.LiveOut(b);
    // Past an under-approximated terminator anything may be read.
    if (bb.indirect_unresolved) live = ~0u;
    for (std::size_t i = bb.last + 1; i-- > bb.first;) {
      const AsmInst& ai = prog.insts[i];
      if (!ai.canonical) continue;
      const std::uint32_t defs = DefMask(ai.d);
      const bool call_or_sys = ai.d.cls == InsnClass::kBsr ||
                               ai.d.cls == InsnClass::kJsr ||
                               ai.d.cls == InsnClass::kBr ||
                               ai.d.cls == InsnClass::kSyscall;
      if (defs && !(defs & live) && !call_or_sys && !MayTrap(ai.d)) {
        Emit(out, prog, opt, AsmFindingKind::kDeadValue, ai.addr,
             "result of `" + Disassemble(ai.word, ai.addr) +
                 "` is never used on any path");
      }
      live = (live & ~defs) | UseMask(ai.d);
    }
  }
}

void LintDeadStores(const Cfg& cfg, const AsmLintOptions& opt,
                    std::vector<AsmFinding>& out) {
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    const BasicBlock& bb = cfg.blocks[b];
    // (base reg, disp) -> index of the pending store; cleared by anything
    // that could observe memory or change the base.
    std::map<std::pair<std::uint8_t, std::int64_t>, std::size_t> pending;
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const AsmInst& ai = prog.insts[i];
      if (!ai.canonical) continue;
      const DecodedInst& d = ai.d;
      if (d.cls == InsnClass::kLoad || d.cls == InsnClass::kSyscall ||
          d.IsBranchLike()) {
        pending.clear();
        continue;
      }
      if (d.cls == InsnClass::kStore) {
        const auto key = std::make_pair(d.src1, d.imm);
        const auto it = pending.find(key);
        // Same base, same displacement, at-least-covering width, no
        // intervening observer: the earlier store is dead.
        if (it != pending.end() &&
            d.mem_size >= prog.insts[it->second].d.mem_size) {
          const AsmInst& dead = prog.insts[it->second];
          std::ostringstream msg;
          msg << "`" << Disassemble(dead.word, dead.addr)
              << "` is overwritten at " << prog.Locate(ai.addr)
              << " with no intervening read";
          Emit(out, prog, opt, AsmFindingKind::kDeadStore, dead.addr,
               msg.str());
        }
        // Stores through a *different* base may alias anything: keep only
        // this base's facts.
        for (auto pit = pending.begin(); pit != pending.end();) {
          pit = pit->first.first != d.src1 ? pending.erase(pit)
                                           : std::next(pit);
        }
        pending[key] = i;
        continue;
      }
      // A write to a register invalidates address facts built on it.
      const std::uint32_t defs = DefMask(d);
      if (defs) {
        for (auto pit = pending.begin(); pit != pending.end();) {
          pit = (defs & (1u << pit->first.first)) ? pending.erase(pit)
                                                  : std::next(pit);
        }
      }
    }
  }
}

void LintUnreachable(const Cfg& cfg, const AsmLintOptions& opt,
                     std::vector<AsmFinding>& out) {
  if (!opt.check_unreachable || !cfg.unresolved_indirect.empty()) return;
  const AsmProgram& prog = *cfg.prog;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    if (cfg.reachable[b]) continue;
    const BasicBlock& bb = cfg.blocks[b];
    // Data or padding embedded in .text decodes as non-canonical words or
    // nops; only flag blocks containing real instructions.
    std::size_t real = 0;
    for (std::size_t i = bb.first; i <= bb.last; ++i)
      if (prog.insts[i].canonical && !IsNop(prog.insts[i])) ++real;
    if (real == 0) continue;
    Emit(out, prog, opt, AsmFindingKind::kUnreachable,
         prog.insts[bb.first].addr,
         std::to_string(real) + " instruction(s) unreachable from the entry");
  }
}

void LintIndirect(const Cfg& cfg, const AsmLintOptions& opt,
                  std::vector<AsmFinding>& out) {
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t i : cfg.unresolved_indirect) {
    const AsmInst& ai = prog.insts[i];
    Emit(out, prog, opt, AsmFindingKind::kIndirectUnresolved, ai.addr,
         "target of `" + Disassemble(ai.word, ai.addr) +
             "` has no static materialization; CFG edges are incomplete");
  }
  for (const std::size_t i : cfg.out_of_text) {
    const AsmInst& ai = prog.insts[i];
    Emit(out, prog, opt, AsmFindingKind::kIndirectUnresolved, ai.addr,
         "target of `" + Disassemble(ai.word, ai.addr) +
             "` lies outside the text chunk");
  }
}

void LintMisaligned(const Cfg& cfg, const AsmLintOptions& opt,
                    std::vector<AsmFinding>& out) {
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    const BasicBlock& bb = cfg.blocks[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const AsmInst& ai = prog.insts[i];
      if (!ai.canonical || !ai.d.IsMem() || ai.d.mem_size <= 1) continue;
      const auto base = MaterializedConst(cfg, i, ai.d.src1);
      if (!base) continue;
      const std::int64_t ea = *base + ai.d.imm;
      if (ea % ai.d.mem_size != 0) {
        std::ostringstream msg;
        msg << "`" << Disassemble(ai.word, ai.addr) << "` accesses 0x"
            << std::hex << ea << std::dec << ", not "
            << static_cast<int>(ai.d.mem_size)
            << "-byte aligned (guaranteed trap)";
        Emit(out, prog, opt, AsmFindingKind::kMisaligned, ai.addr, msg.str());
      }
    }
  }
}

void LintStackDiscipline(const Cfg& cfg, const AsmLintOptions& opt,
                         std::vector<AsmFinding>& out) {
  constexpr std::uint8_t kSp = 30;
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    const BasicBlock& bb = cfg.blocks[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const AsmInst& ai = prog.insts[i];
      if (!ai.canonical || ai.d.dst != kSp) continue;
      const DecodedInst& d = ai.d;
      // Legitimate shapes: immediate adjustment (addqi/subqi/lda off sp) or
      // the absolute initial materialization (ldah/lda from zero).
      const bool adjust = (d.op == Op::kAddqi || d.op == Op::kSubqi ||
                           d.op == Op::kLda) &&
                          d.src1 == kSp;
      const bool materialize =
          (d.op == Op::kLdah || d.op == Op::kLda || d.op == Op::kAddqi ||
           d.op == Op::kBisqi) &&
          d.src1 == kZeroReg;
      if (!adjust && !materialize) {
        Emit(out, prog, opt, AsmFindingKind::kStackDiscipline, ai.addr,
             "sp written by `" + Disassemble(ai.word, ai.addr) +
                 "`, not an immediate adjustment or materialization");
      }
    }
  }
}

void LintIllegalWords(const Cfg& cfg, const AsmLintOptions& opt,
                      std::vector<AsmFinding>& out) {
  const AsmProgram& prog = *cfg.prog;
  for (const std::size_t b : cfg.rpo) {
    const BasicBlock& bb = cfg.blocks[b];
    for (std::size_t i = bb.first; i <= bb.last; ++i) {
      const AsmInst& ai = prog.insts[i];
      if (ai.canonical) continue;
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%08x", ai.word);
      Emit(out, prog, opt, AsmFindingKind::kIllegalWord, ai.addr,
           std::string("reachable non-canonical word ") + buf +
               " (raises illegal-opcode if executed)");
    }
  }
}

}  // namespace

const char* AsmFindingKindName(AsmFindingKind k) {
  switch (k) {
    case AsmFindingKind::kUseBeforeDef: return "use-before-def";
    case AsmFindingKind::kDeadValue: return "dead-value";
    case AsmFindingKind::kDeadStore: return "dead-store";
    case AsmFindingKind::kUnreachable: return "unreachable";
    case AsmFindingKind::kIndirectUnresolved: return "indirect-unresolved";
    case AsmFindingKind::kMisaligned: return "misaligned";
    case AsmFindingKind::kStackDiscipline: return "stack-discipline";
    case AsmFindingKind::kIllegalWord: return "illegal-word";
    case AsmFindingKind::kUnduplicatedValue: return "unduplicated-value";
    case AsmFindingKind::kUnguardedStore: return "unguarded-store";
    case AsmFindingKind::kUnguardedBranch: return "unguarded-branch";
    case AsmFindingKind::kSignatureEdge: return "signature-edge";
    case AsmFindingKind::kShadowClobber: return "shadow-clobber";
    case AsmFindingKind::kHardenStructure: return "harden-structure";
    case AsmFindingKind::kUnusedAllowlist: return "unused-allowlist";
  }
  return "?";
}

std::string AsmFinding::Key() const {
  return unit + "." + AsmFindingKindName(kind) + "." + where;
}

std::string AsmFinding::Format() const {
  std::ostringstream os;
  os << "[" << AsmFindingKindName(kind) << "] " << unit << " @ " << where
     << ": " << detail;
  return os.str();
}

void ApplyAllowlist(std::vector<AsmFinding>& findings,
                    std::vector<AllowEntry>& allow) {
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&allow](const AsmFinding& f) {
                       const std::string key = f.Key();
                       for (AllowEntry& e : allow) {
                         if (e.key == key) {
                           e.used = true;
                           return true;
                         }
                       }
                       return false;
                     }),
      findings.end());
}

std::vector<AsmFinding> UnusedAllowFindings(
    const std::vector<AllowEntry>& allow) {
  std::vector<AsmFinding> out;
  for (const AllowEntry& e : allow) {
    if (e.used) continue;
    AsmFinding f;
    f.kind = AsmFindingKind::kUnusedAllowlist;
    f.unit = "allowlist";
    f.where = e.key;
    f.detail = "entry at line " + std::to_string(e.line) +
               " suppressed nothing; remove it";
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<AsmFinding> RunAsmLint(const AsmProgram& prog,
                                   std::vector<AllowEntry>& allow,
                                   const AsmLintOptions& opt) {
  const Cfg cfg = BuildCfg(prog);
  const Dataflow df(cfg);
  std::vector<AsmFinding> out;
  LintUseBeforeDef(df, opt, out);
  LintDeadValues(df, opt, out);
  LintDeadStores(cfg, opt, out);
  LintUnreachable(cfg, opt, out);
  LintIndirect(cfg, opt, out);
  LintMisaligned(cfg, opt, out);
  LintStackDiscipline(cfg, opt, out);
  LintIllegalWords(cfg, opt, out);
  std::sort(out.begin(), out.end(),
            [](const AsmFinding& a, const AsmFinding& b) {
              return a.addr != b.addr ? a.addr < b.addr
                                      : static_cast<int>(a.kind) <
                                            static_cast<int>(b.kind);
            });
  ApplyAllowlist(out, allow);
  return out;
}

}  // namespace tfsim::analyze
