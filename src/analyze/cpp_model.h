// Lightweight, purpose-built C++ extractor for the injection-surface lint
// (tools/statelint). Parses the pipeline model's sources — no libclang, no
// full grammar — and recovers exactly the two things the lint needs:
//
//   * every data member of every class/struct (name, type, const/static,
//     StateField-ness, declaration site), including members declared in
//     comma lists, nested structs, arrays, and under conditional
//     compilation (all #if branches are treated as present: the lint must
//     see state that only exists in some build flavors);
//   * every `<member> = <receiver>.Allocate("name", cat, storage, count,
//     width)` call, attributed to its enclosing class via the qualified
//     function definition it appears in, with local `const auto latch =
//     Storage::kLatch;`-style aliases resolved.
//
// The extractor is deliberately conservative: it never evaluates the
// preprocessor or templates, and anything it cannot attribute is surfaced
// by the lint as a parse gap rather than silently dropped (statelint
// cross-checks the extracted model against the runtime registry, so an
// extractor blind spot cannot silently widen into a hidden-state hole).
#pragma once

#include <string>
#include <vector>

namespace tfsim::analyze {

// One data member of an extracted class.
struct CppMember {
  std::string name;
  std::string type;  // normalized declaration type text
  int line = 0;
  bool is_static = false;
  bool is_const = false;        // const / constexpr declaration
  bool is_state_field = false;  // StateField (or array of StateField)
  std::string array_suffix;     // "[N]" for array members, else empty
  // Mutable per-instance state that is NOT registry-backed: the lint's
  // hidden-state candidates.
  bool MutableNonField() const {
    return !is_static && !is_const && !is_state_field;
  }
};

struct CppClass {
  std::string name;  // outer::inner for nested classes
  std::string file;
  int line = 0;
  bool registry_ctor = false;  // a constructor takes StateRegistry&
  std::vector<CppMember> members;

  const CppMember* FindMember(const std::string& n) const {
    for (const auto& m : members)
      if (m.name == n) return &m;
    return nullptr;
  }
};

// One StateRegistry Allocate call.
struct CppAllocation {
  std::string class_name;  // enclosing class ("" when unattributed)
  std::string member;      // assigned member ("" when the result is dropped)
  std::string reg_name;    // registered name literal (or suffix, see below)
  bool name_is_suffix = false;  // reg_name is the literal tail of `prefix + ".x"`
  std::string cat;              // "kPc"... ("" when unresolved)
  std::string storage;          // "kLatch"/"kRam"/"kBackground" ("" unresolved)
  std::string count_expr;
  std::string width_expr;
  long long count_value = -1;  // literal values when the exprs are numeric
  long long width_value = -1;
  std::string file;
  int line = 0;

  // True when this allocation's registered name matches runtime field `n`.
  bool MatchesFieldName(const std::string& n) const;
};

// One parsed source file: the comment-stripped text (for structure) and the
// literal-blanked text (for identifier-use scans, where an identifier inside
// a registered-name string must not count as a read).
struct CppFile {
  std::string path;
  std::string code;     // comments stripped, literals intact
  std::string blanked;  // comments stripped, string/char contents blanked
};

struct CppModel {
  std::vector<CppClass> classes;
  std::vector<CppAllocation> allocations;
  std::vector<CppFile> files;

  const CppClass* FindClass(const std::string& name) const {
    for (const auto& c : classes)
      if (c.name == name) return &c;
    return nullptr;
  }
};

// Parses one translation unit's text into the model. `path` is recorded for
// reporting; nothing is read from disk.
void ParseCppSource(const std::string& path, const std::string& text,
                    CppModel* model);

// Reads and parses every file (throws on unreadable paths).
CppModel ParseCppFiles(const std::vector<std::string>& paths);

// Counts word-boundary occurrences of identifier `ident` in `text`.
int CountIdentifier(const std::string& text, const std::string& ident);

}  // namespace tfsim::analyze
