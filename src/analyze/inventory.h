// Runtime injection-surface audit: the repo's Table-1 analogue.
//
// Walks the live StateRegistry of a constructed core and produces a
// canonical JSON accounting of the surface — per-category latch/RAM/
// background bit counts for the base and fully-protected configurations,
// plus a map of which registered bits each Section-4 protection mechanism
// covers (and, just as importantly, which eligible bits it does NOT).
//
// The JSON is deterministic byte-for-byte, so it can be pinned as
// tools/inventory_baseline.json: any PR that changes the injection surface
// fails the `inventory_audit` ctest until the baseline is consciously
// regenerated (`tfi inventory --write-baseline`), making surface changes
// reviewable events instead of silent drift.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "state/state_registry.h"

namespace tfsim::analyze {

// Coverage of one protection mechanism over the registered bit space.
struct MechanismCoverage {
  std::string mechanism;
  std::uint64_t covered_bits = 0;    // data bits the mechanism protects
  std::uint64_t uncovered_bits = 0;  // eligible bits it does NOT reach
  std::uint64_t check_bits = 0;      // added ecc/parity storage
  std::vector<std::string> uncovered_fields;  // names behind uncovered_bits
};

// Computes coverage from a fully-protected registry's field list.
std::vector<MechanismCoverage> ComputeProtectionCoverage(
    const std::vector<StateRegistry::FieldInfo>& fields);

// Builds the canonical inventory JSON from the two registries' field lists
// (base configuration and ProtectionConfig::All + timeout counter).
std::string BuildInventoryJson(
    const std::vector<StateRegistry::FieldInfo>& base_fields,
    const std::vector<StateRegistry::FieldInfo>& protected_fields);

// Convenience: constructs the two cores (empty program — the registry
// layout depends only on the configuration) and renders the JSON.
std::string BuildInventoryJsonFromCores();

// Byte-for-byte baseline comparison. Returns true on match; otherwise
// `message` carries a first-difference diagnostic.
bool CheckInventoryBaseline(const std::string& generated,
                            const std::string& baseline,
                            std::string* message);

}  // namespace tfsim::analyze
