#include "analyze/inventory.h"

#include <algorithm>
#include <sstream>

#include "isa/assemble.h"
#include "uarch/core.h"

namespace tfsim::analyze {
namespace {

bool HasField(const std::vector<StateRegistry::FieldInfo>& fields,
              const std::string& name) {
  return std::any_of(fields.begin(), fields.end(),
                     [&](const auto& f) { return f.name == name; });
}

std::string Prefix(const std::string& name) {
  const std::size_t dot = name.find_last_of('.');
  return dot == std::string::npos ? name : name.substr(0, dot);
}

// Does a travelling-ECC sibling exist for pointer field `name`? Naming in
// the model follows two idioms: `x` -> `x_ecc` (rename.specrat ->
// rename.specrat_ecc) and `xp`/`xpN` -> `x_ecc` with the trailing 'p'
// dropped (sched.src1p -> sched.src1_ecc, lq.dstp -> lq.dst_ecc).
bool HasEccSibling(const std::vector<StateRegistry::FieldInfo>& fields,
                   const std::string& name) {
  if (HasField(fields, name + "_ecc")) return true;
  if (!name.empty() && name.back() == 'p' &&
      HasField(fields, name.substr(0, name.size() - 1) + "_ecc"))
    return true;
  return false;
}

}  // namespace

std::vector<MechanismCoverage> ComputeProtectionCoverage(
    const std::vector<StateRegistry::FieldInfo>& fields) {
  MechanismCoverage regfile;
  regfile.mechanism = "regfile_ecc";
  MechanismCoverage regptr;
  regptr.mechanism = "regptr_ecc";
  MechanismCoverage parity;
  parity.mechanism = "insn_parity";
  MechanismCoverage timeout;
  timeout.mechanism = "timeout_counter";

  const bool regfile_ecc_on = HasField(fields, "regfile.ecc");
  for (const auto& f : fields) {
    switch (f.cat) {
      case StateCat::kRegfile:
        // The paper ECCs the 65-bit register entries (RAM); the per-register
        // ready scoreboard stays an unprotected latch.
        if (f.storage == Storage::kRam && regfile_ecc_on) {
          regfile.covered_bits += f.bits();
        } else {
          regfile.uncovered_bits += f.bits();
          regfile.uncovered_fields.push_back(f.name);
        }
        break;
      case StateCat::kRegptr:
      case StateCat::kSpecRat:
      case StateCat::kArchRat:
      case StateCat::kSpecFreelist:
      case StateCat::kArchFreelist:
        if (HasEccSibling(fields, f.name)) {
          regptr.covered_bits += f.bits();
        } else {
          regptr.uncovered_bits += f.bits();
          regptr.uncovered_fields.push_back(f.name);
        }
        break;
      case StateCat::kInsn:
        if (f.storage == Storage::kBackground) break;  // cache arrays
        if (HasField(fields, Prefix(f.name) + ".parity")) {
          parity.covered_bits += f.bits();
        } else {
          parity.uncovered_bits += f.bits();
          parity.uncovered_fields.push_back(f.name);
        }
        break;
      case StateCat::kEcc:
        if (Prefix(f.name) == "regfile")
          regfile.check_bits += f.bits();
        else
          regptr.check_bits += f.bits();
        break;
      case StateCat::kParity:
        parity.check_bits += f.bits();
        break;
      default:
        break;
    }
    // The timeout counter adds one latch counter and covers no stored bits —
    // it is a recovery mechanism for corrupted control state, not storage
    // protection.
    if (f.name == "retire.timeout") timeout.check_bits += f.bits();
  }
  return {regfile, regptr, parity, timeout};
}

namespace {

void WriteConfig(std::ostream& os,
                 const std::vector<StateRegistry::FieldInfo>& fields,
                 bool with_protection) {
  struct Bits {
    std::uint64_t latch = 0, ram = 0, background = 0;
  };
  Bits cats[kNumStateCats];
  Bits total;
  std::uint64_t words = 0;
  for (const auto& f : fields) {
    Bits& b = cats[static_cast<int>(f.cat)];
    words += f.count;
    switch (f.storage) {
      case Storage::kLatch: b.latch += f.bits(); total.latch += f.bits(); break;
      case Storage::kRam: b.ram += f.bits(); total.ram += f.bits(); break;
      case Storage::kBackground:
        b.background += f.bits();
        total.background += f.bits();
        break;
    }
  }
  os << "    \"categories\": {\n";
  bool first = true;
  for (int c = 0; c < kNumStateCats; ++c) {
    const Bits& b = cats[c];
    if (b.latch + b.ram + b.background == 0) continue;
    if (!first) os << ",\n";
    first = false;
    os << "      \"" << StateCatName(static_cast<StateCat>(c))
       << "\": {\"latch\": " << b.latch << ", \"ram\": " << b.ram
       << ", \"background\": " << b.background << "}";
  }
  os << "\n    },\n";
  os << "    \"totals\": {\"latch\": " << total.latch << ", \"ram\": "
     << total.ram << ", \"background\": " << total.background
     << ", \"injectable\": " << total.latch + total.ram
     << ", \"fields\": " << fields.size() << ", \"words\": " << words
     << "}";
  if (!with_protection) {
    os << "\n";
    return;
  }
  os << ",\n    \"protection\": {\n";
  const auto coverage = ComputeProtectionCoverage(fields);
  for (std::size_t i = 0; i < coverage.size(); ++i) {
    const MechanismCoverage& m = coverage[i];
    os << "      \"" << m.mechanism << "\": {\"covered\": " << m.covered_bits
       << ", \"uncovered\": " << m.uncovered_bits
       << ", \"check_bits\": " << m.check_bits << ", \"uncovered_fields\": [";
    for (std::size_t u = 0; u < m.uncovered_fields.size(); ++u)
      os << (u ? ", " : "") << "\"" << m.uncovered_fields[u] << "\"";
    os << "]}" << (i + 1 < coverage.size() ? "," : "") << "\n";
  }
  os << "    }\n";
}

}  // namespace

std::string BuildInventoryJson(
    const std::vector<StateRegistry::FieldInfo>& base_fields,
    const std::vector<StateRegistry::FieldInfo>& protected_fields) {
  std::ostringstream os;
  os << "{\n  \"schema\": 1,\n  \"base\": {\n";
  WriteConfig(os, base_fields, /*with_protection=*/false);
  os << "  },\n  \"protected\": {\n";
  WriteConfig(os, protected_fields, /*with_protection=*/true);
  os << "  }\n}\n";
  return os.str();
}

std::string BuildInventoryJsonFromCores() {
  CoreConfig base;
  CoreConfig prot;
  prot.protect = ProtectionConfig::All();
  const Program empty;
  const Core base_core(base, empty);
  const Core prot_core(prot, empty);
  return BuildInventoryJson(base_core.registry().Fields(),
                            prot_core.registry().Fields());
}

bool CheckInventoryBaseline(const std::string& generated,
                            const std::string& baseline,
                            std::string* message) {
  if (generated == baseline) return true;
  if (message) {
    std::size_t i = 0;
    int line = 1;
    while (i < generated.size() && i < baseline.size() &&
           generated[i] == baseline[i]) {
      if (generated[i] == '\n') ++line;
      ++i;
    }
    auto context = [i](const std::string& s) {
      const std::size_t b = s.rfind('\n', i == 0 ? 0 : i - 1);
      const std::size_t e = s.find('\n', i);
      return s.substr(b == std::string::npos ? 0 : b + 1,
                      (e == std::string::npos ? s.size() : e) -
                          (b == std::string::npos ? 0 : b + 1));
    };
    *message = "inventory differs from baseline at line " +
               std::to_string(line) + ":\n  baseline:  " + context(baseline) +
               "\n  generated: " + context(generated) +
               "\nif the surface change is deliberate, regenerate with "
               "`tfi inventory --write-baseline`";
  }
  return false;
}

}  // namespace tfsim::analyze
