// statelint: static verification of the injection surface.
//
// The paper's methodology stands on the model being latch-accurate: every
// bit of pipeline state is enumerable (Table 1) and uniformly samplable.
// A mutable data member added to a src/uarch/ pipeline class WITHOUT a
// backing StateRegistry field is a hole in that surface — campaigns would
// silently never inject it, biasing every figure. statelint makes the
// completeness a machine-checked invariant by cross-referencing the
// extracted C++ model (analyze/cpp_model.h) against the Allocate calls
// backing it, optionally tightened with the live registry of a constructed
// core (count/width values and extractor-gap detection).
//
// Finding classes:
//   * hidden-state        — a mutable member of a registry-backed class with
//                           no StateField backing and no allowlist entry
//                           (also: a StateField member never Allocate-d).
//   * stale-registration  — an Allocate whose field is never read back
//                           anywhere on the cycle path (write-only state
//                           cannot affect behaviour, so injections into it
//                           are silently dead).
//   * cat-storage-mismatch— a field whose registered Table-1 classification
//                           contradicts its shape (RAM-sized array as
//                           kLatch, single element as kRam, multi-bit
//                           kParity).
//   * unused-allowlist    — an allowlist exception no finding needed (the
//                           audit trail must not rot).
//   * parse-gap           — a live registry field the extractor could not
//                           attribute to any Allocate call (an extractor
//                           blind spot; surfaced so it cannot hide state).
#pragma once

#include <string>
#include <vector>

#include "analyze/cpp_model.h"
#include "state/state_registry.h"

namespace tfsim::analyze {

enum class FindingKind {
  kHiddenState,
  kStaleRegistration,
  kCatStorageMismatch,
  kUnusedAllowlist,
  kParseGap,
};

const char* FindingKindName(FindingKind k);

struct Finding {
  FindingKind kind = FindingKind::kHiddenState;
  std::string where;   // "Class.member" or registered field name
  std::string file;    // declaration / allocation site
  int line = 0;
  std::string detail;  // human-readable explanation

  std::string Format() const;
};

// One audited exception: `Class.member: one-line justification`.
struct AllowEntry {
  std::string key;
  std::string why;
  int line = 0;
  bool used = false;
};

// Parses the allowlist text. Entries without a justification are reported
// through `error` (and the parse fails): an unexplained exception is exactly
// the hidden-state problem the lint exists to prevent.
bool ParseAllowlist(const std::string& text, std::vector<AllowEntry>* out,
                    std::string* error);

struct LintOptions {
  // Live registry fields from a constructed core (all protection mechanisms
  // on, so conditionally-allocated fields are present). Enables exact
  // count/width values for the mismatch checks and the parse-gap
  // cross-check. Null for purely static runs (extractor tests).
  const std::vector<StateRegistry::FieldInfo>* runtime_fields = nullptr;
  // Shape thresholds for "RAM-sized array registered as kLatch".
  std::size_t latch_count_limit = 32;
  std::uint64_t latch_bits_limit = 1024;
};

// Runs every check over the extracted model. Allowlist entries consumed by a
// suppressed finding are marked used; unused entries become findings.
std::vector<Finding> RunStateLint(const CppModel& model,
                                  std::vector<AllowEntry>& allow,
                                  const LintOptions& opt);

}  // namespace tfsim::analyze
