// Minimal HTTP/1.1 listener (and a matching blocking client for tests and
// smokes) for the campaign status endpoint. Deliberately tiny: GET-only,
// loopback-only, one short-lived connection at a time, `Connection: close`
// on every response. This is a telemetry peephole, not a web server — the
// future `tfi serve` campaign service is expected to reuse exactly this
// request/response surface.
//
// Threading: Start() spawns one accept thread; the handler runs on that
// thread, so a slow handler delays the next request but never the campaign.
// Stop() (also run by the destructor) shuts the listener down and joins.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace tfsim {

struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // target with the query string stripped ("/events")
  std::map<std::string, std::string> query;  // parsed ?k=v&k2=v2 params
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, readable via port())
  // and starts the accept thread. Returns false with a diagnostic in *error
  // on bind/listen failure or when already running.
  bool Start(std::uint16_t port, Handler handler, std::string* error = nullptr);

  // Stops accepting, closes the listener and joins the thread. Idempotent.
  void Stop();

  bool running() const { return running_; }
  std::uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;
  // Accept thread handle, opaque to keep <thread> out of this header.
  struct Impl;
  Impl* impl_ = nullptr;
};

// Blocking GET of http://127.0.0.1:port/<target> (target may carry a query
// string). Fills *body (and *status when non-null) from the response;
// returns false with a diagnostic in *error on connect/IO/parse failure.
bool HttpGet(std::uint16_t port, const std::string& target, std::string* body,
             int* status = nullptr, std::string* error = nullptr);

}  // namespace tfsim
