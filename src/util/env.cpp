#include "util/env.h"

#include <cstdlib>

namespace tfsim {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

std::string EnvStr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v && *v) ? std::string(v) : fallback;
}

}  // namespace tfsim
