#include "util/failpoint.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "util/env.h"

namespace tfsim::fail {
namespace {

struct SiteState {
  Policy policy;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  // Keyed by the configured string (exact sites and '*'-suffixed prefixes
  // share the map; lookup tries exact first, then the longest prefix).
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& Reg() {
  static Registry* r = new Registry;  // leaked: usable during shutdown
  return *r;
}

SiteState* Find(Registry& reg, const char* site) {
  const std::string_view sv(site);
  if (auto it = reg.sites.find(sv); it != reg.sites.end()) return &it->second;
  SiteState* best = nullptr;
  std::size_t best_len = 0;
  for (auto& [key, state] : reg.sites) {
    if (key.empty() || key.back() != '*') continue;
    const std::string_view prefix(key.data(), key.size() - 1);
    if (sv.substr(0, prefix.size()) == prefix && prefix.size() >= best_len) {
      best = &state;
      best_len = prefix.size();
    }
  }
  return best;
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};

bool Evaluate(const char* site) {
  std::uint64_t delay_us = 0;
  bool threw = false;
  {
    std::lock_guard<std::mutex> lock(Reg().mu);
    SiteState* s = Find(Reg(), site);
    if (s == nullptr || s->policy.action == Action::kOff) return false;
    ++s->hits;
    const std::uint64_t n = s->policy.one_in ? s->policy.one_in : 1;
    if ((s->hits - 1) % n != 0) return false;
    if (s->policy.limit && s->fires >= s->policy.limit) return false;
    ++s->fires;
    switch (s->policy.action) {
      case Action::kOff: return false;
      case Action::kError: return true;
      case Action::kThrow: threw = true; break;
      case Action::kDelay: delay_us = s->policy.delay_us; break;
    }
  }
  // Throw and sleep outside the lock so concurrent probes never serialize on
  // a firing site.
  if (threw) throw FailpointError(std::string("failpoint: ") + site);
  if (delay_us)
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  return false;
}

void PrepareFork() { Reg().mu.lock(); }
void ParentAfterFork() { Reg().mu.unlock(); }
void ChildAfterFork() {
  // The child owns a single-threaded copy of the registry whose mutex was
  // held (by us, pre-fork) at the snapshot; re-initialize it in place.
  new (&Reg().mu) std::mutex;
}

}  // namespace detail

void Configure(std::string_view site, const Policy& policy) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  if (policy.action == Action::kOff) {
    Reg().sites.erase(std::string(site));
  } else {
    Reg().sites[std::string(site)] = SiteState{policy, 0, 0};
  }
  detail::g_armed.store(!Reg().sites.empty(), std::memory_order_relaxed);
}

namespace {

bool ParseEntry(std::string_view entry, std::string* error) {
  const std::size_t eq = entry.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    if (error) *error = "expected site=action in '" + std::string(entry) + "'";
    return false;
  }
  const std::string_view site = entry.substr(0, eq);
  std::string_view rest = entry.substr(eq + 1);
  Policy p;

  // Trailing decorations first: #limit, then @1inN.
  auto parse_u64 = [&](std::string_view s, std::uint64_t* out) {
    if (s.empty()) return false;
    std::uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    *out = v;
    return true;
  };
  if (const std::size_t hash = rest.rfind('#');
      hash != std::string_view::npos) {
    if (!parse_u64(rest.substr(hash + 1), &p.limit)) {
      if (error) *error = "bad #limit in '" + std::string(entry) + "'";
      return false;
    }
    rest = rest.substr(0, hash);
  }
  if (const std::size_t at = rest.rfind('@'); at != std::string_view::npos) {
    const std::string_view oin = rest.substr(at + 1);
    if (oin.substr(0, 3) != "1in" || !parse_u64(oin.substr(3), &p.one_in) ||
        p.one_in == 0) {
      if (error) *error = "bad @1inN in '" + std::string(entry) + "'";
      return false;
    }
    rest = rest.substr(0, at);
  }
  std::string_view action = rest;
  if (const std::size_t colon = rest.find(':');
      colon != std::string_view::npos) {
    action = rest.substr(0, colon);
    if (!parse_u64(rest.substr(colon + 1), &p.delay_us)) {
      if (error) *error = "bad :delay_us in '" + std::string(entry) + "'";
      return false;
    }
  }
  if (action == "off") {
    p.action = Action::kOff;
  } else if (action == "error") {
    p.action = Action::kError;
  } else if (action == "throw") {
    p.action = Action::kThrow;
  } else if (action == "delay") {
    p.action = Action::kDelay;
    if (p.delay_us == 0) p.delay_us = 1000;  // delay without :us = 1ms
  } else {
    if (error)
      *error = "unknown action '" + std::string(action) + "' in '" +
               std::string(entry) + "' (off|error|throw|delay)";
    return false;
  }
  Configure(site, p);
  return true;
}

}  // namespace

bool ConfigureFromSpec(std::string_view spec, std::string* error) {
  while (!spec.empty()) {
    const std::size_t sep = spec.find_first_of(";,");
    std::string_view entry = spec.substr(0, sep);
    // Trim surrounding whitespace.
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t'))
      entry.remove_prefix(1);
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t'))
      entry.remove_suffix(1);
    if (!entry.empty() && !ParseEntry(entry, error)) return false;
    if (sep == std::string_view::npos) break;
    spec.remove_prefix(sep + 1);
  }
  return true;
}

int ConfigureFromEnv() {
  const std::string spec = EnvStr("TFI_FAILPOINTS", "");
  if (spec.empty()) return 0;
  std::string error;
  if (!ConfigureFromSpec(spec, &error)) {
    std::fprintf(stderr, "TFI_FAILPOINTS: %s\n", error.c_str());
  }
  std::lock_guard<std::mutex> lock(Reg().mu);
  return static_cast<int>(Reg().sites.size());
}

void Reset() {
  std::lock_guard<std::mutex> lock(Reg().mu);
  Reg().sites.clear();
  detail::g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t HitCount(std::string_view site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  const auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.hits;
}

std::uint64_t FireCount(std::string_view site) {
  std::lock_guard<std::mutex> lock(Reg().mu);
  const auto it = Reg().sites.find(site);
  return it == Reg().sites.end() ? 0 : it->second.fires;
}

}  // namespace tfsim::fail
