// Environment-variable configuration helpers for the benchmark harness.
// Campaign sizes default to CI-friendly values and scale up via env vars
// (TFI_TRIALS, TFI_POINTS, TFI_CACHE_DIR, ...).
#pragma once

#include <cstdint>
#include <string>

namespace tfsim {

// Reads an integer env var; returns fallback when unset or unparsable.
std::int64_t EnvInt(const char* name, std::int64_t fallback);

// Reads a string env var; returns fallback when unset.
std::string EnvStr(const char* name, const std::string& fallback);

}  // namespace tfsim
