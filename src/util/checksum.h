// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
// guarding the v2 results cache and campaign checkpoint journals against
// torn or tampered files. Matches zlib's crc32(), so files can be checked
// with standard tools.
#pragma once

#include <cstdint>
#include <string_view>

namespace tfsim {

// CRC of `data`, optionally continuing from a previous CRC (pass the prior
// return value as `crc` to checksum a stream incrementally; 0 starts fresh).
std::uint32_t Crc32(std::string_view data, std::uint32_t crc = 0);

}  // namespace tfsim
