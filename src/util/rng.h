// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic choices in the simulator and the fault-injection campaigns
// flow through Rng so that a (seed, program) pair fully determines every
// result. The generator is xoshiro256** seeded via splitmix64, which has
// excellent statistical quality and is trivially portable.
#pragma once

#include <cstdint>

namespace tfsim {

// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t SplitMix64(std::uint64_t& state);

// Stateless 64-bit finalizer/mixer (the splitmix64 output function).
// Useful for hashing small tuples deterministically.
std::uint64_t Mix64(std::uint64_t x);

// xoshiro256** generator. Copyable; copies advance independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over all 64-bit values.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection to avoid bias.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextRange(std::int64_t lo, std::int64_t hi);

  // Uniform real in [0, 1).
  double NextDouble();

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Derive an independent child generator; successive calls yield distinct
  // streams. Used to give each trial / module its own stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace tfsim
