#include "util/checksum.h"

#include <array>

namespace tfsim {
namespace {

constexpr std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

constexpr auto kCrcTable = MakeCrcTable();

}  // namespace

std::uint32_t Crc32(std::string_view data, std::uint32_t crc) {
  crc = ~crc;
  for (const char ch : data)
    crc = kCrcTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^
          (crc >> 8);
  return ~crc;
}

}  // namespace tfsim
