#include "util/rng.h"

namespace tfsim {
namespace {

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  return Mix64(state);
}

std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  // Lemire-style rejection-free-in-the-common-case bounded draw.
  if (bound == 0) return 0;
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextRange(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() {
  return Rng(Next() ^ 0xd1b54a32d192ed03ULL);
}

}  // namespace tfsim
