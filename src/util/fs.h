// Filesystem helpers for crash-consistent on-disk state.
//
// The results cache and checkpoint journals must never be observed
// half-written: a reader either sees the previous complete file or the new
// complete file. AtomicWriteFile gets that by writing a uniquely-named
// temporary in the target directory and renaming it over the destination
// (rename within one directory is atomic on POSIX).
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

namespace tfsim {

// Writes `contents` to `path` atomically (temp file + rename). Returns
// false on failure, with a diagnostic in *error when non-null; any
// temporary is cleaned up. The parent directory must already exist.
bool AtomicWriteFile(const std::filesystem::path& path,
                     std::string_view contents, std::string* error = nullptr);

}  // namespace tfsim
