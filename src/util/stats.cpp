#include "util/stats.h"

#include <cmath>

namespace tfsim {

Proportion MakeProportion(std::uint64_t count, std::uint64_t total) {
  Proportion p;
  p.count = count;
  p.total = total;
  if (total == 0) return p;
  const double n = static_cast<double>(total);
  p.value = static_cast<double>(count) / n;
  // 95% normal approximation, as used in the paper's significance section.
  p.ci95 = 1.96 * std::sqrt(p.value * (1.0 - p.value) / n);
  return p;
}

LinearFit FitLeastSquares(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  LinearFit fit;
  const std::size_t n = xs.size() < ys.size() ? xs.size() : ys.size();
  if (n == 0) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

void RunningStat::Add(double x) {
  if (n_ == 0 || x < min_) min_ = x;
  if (n_ == 0 || x > max_) max_ = x;
  ++n_;
  // Welford update: mean and M2 (sum of squared deviations) in one pass.
  const double d1 = x - mean_;
  mean_ += d1 / static_cast<double>(n_);
  m2_ += d1 * (x - mean_);
}

double RunningStat::Mean() const { return n_ ? mean_ : 0.0; }

double RunningStat::Variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::SampleVariance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

}  // namespace tfsim
