// Minimal declarative command-line flag parser shared by the tfi driver,
// the smoke tools and the bench binaries, so --jobs/--trials/telemetry
// flags spell and fail identically everywhere.
//
// Flags are registered by name with a bound target (string, int64 or
// presence-bool); Parse() walks argv, fills targets, collects non-flag
// tokens as positionals, and rejects the first unknown --flag or flag
// missing its value with a diagnostic (flags are never silently treated as
// positional workload names).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tfsim {

class ArgParser {
 public:
  // Registers a presence flag: `--name` sets *target to true.
  void AddFlag(const std::string& name, bool* target, const std::string& help);
  // Registers `--name N`, parsed as a base-10 signed integer.
  void AddInt(const std::string& name, std::int64_t* target,
              const std::string& help);
  // Registers `--name VALUE`, stored verbatim.
  void AddStr(const std::string& name, std::string* target,
              const std::string& help);

  // Parses argv[begin..argc). Returns false on the first unknown --flag,
  // flag missing its value, or malformed integer, with the diagnostic in
  // error(). Targets already assigned before the error keep their values.
  bool Parse(int argc, char** argv, int begin = 1);

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // One "  --name <kind>  help" line per registered flag, in registration
  // order, for embedding in a tool's usage text.
  std::string Help() const;

 private:
  enum class Kind { kFlag, kInt, kStr };
  struct Spec {
    std::string name;  // including the leading "--"
    Kind kind;
    void* target;
    std::string help;
  };
  const Spec* Find(const std::string& name) const;

  std::vector<Spec> specs_;
  std::vector<std::string> positional_;
  std::string error_;
};

// Resolves a --jobs value to a concrete worker count: positive values are
// used as-is; 0 or negative means one worker per hardware thread, falling
// back to 1 when std::thread::hardware_concurrency() reports 0 (the value
// is unknown on some platforms) so a campaign never spawns zero workers.
int ResolveJobs(std::int64_t jobs);

}  // namespace tfsim
