// Plain-text table and horizontal-bar rendering for the benchmark harness.
// Every bench binary prints paper-style tables/figures through this helper so
// output formatting is uniform across experiments.
#pragma once

#include <string>
#include <vector>

namespace tfsim {

// A simple left/right-aligned column table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void AddSeparator();

  // Renders with column widths fitted to contents. Numeric-looking cells are
  // right-aligned, text cells left-aligned.
  std::string Render() const;

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<Row> rows_;
};

// Formats a double with the given number of decimals.
std::string Fmt(double v, int decimals = 1);

// Formats "value% ± ci%" for a proportion in [0,1].
std::string FmtPct(double value, double ci95);

// Renders a 0..1 value as a fixed-width ASCII bar, e.g. "#####....." — used
// for the stacked-bar figures.
std::string Bar(double fraction, int width = 40, char fill = '#');

// Renders a stacked bar from segment fractions (summing to <= 1) using one
// glyph per segment, in order. Width is total characters.
std::string StackedBar(const std::vector<double>& fractions,
                       const std::string& glyphs, int width = 50);

}  // namespace tfsim
