#include "util/argparse.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <thread>

namespace tfsim {

void ArgParser::AddFlag(const std::string& name, bool* target,
                        const std::string& help) {
  specs_.push_back({"--" + name, Kind::kFlag, target, help});
}

void ArgParser::AddInt(const std::string& name, std::int64_t* target,
                       const std::string& help) {
  specs_.push_back({"--" + name, Kind::kInt, target, help});
}

void ArgParser::AddStr(const std::string& name, std::string* target,
                       const std::string& help) {
  specs_.push_back({"--" + name, Kind::kStr, target, help});
}

const ArgParser::Spec* ArgParser::Find(const std::string& name) const {
  for (const Spec& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

bool ArgParser::Parse(int argc, char** argv, int begin) {
  error_.clear();
  positional_.clear();
  for (int i = begin; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok.rfind("--", 0) != 0) {
      positional_.push_back(tok);
      continue;
    }
    const Spec* spec = Find(tok);
    if (!spec) {
      error_ = "unknown option " + tok;
      return false;
    }
    if (spec->kind == Kind::kFlag) {
      *static_cast<bool*>(spec->target) = true;
      continue;
    }
    if (++i >= argc) {
      error_ = tok + " requires a value";
      return false;
    }
    const std::string val = argv[i];
    if (spec->kind == Kind::kStr) {
      *static_cast<std::string*>(spec->target) = val;
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const long long parsed = std::strtoll(val.c_str(), &end, 10);
    if (errno != 0 || end == val.c_str() || *end != '\0') {
      error_ = tok + " expects an integer, got '" + val + "'";
      return false;
    }
    *static_cast<std::int64_t*>(spec->target) = parsed;
  }
  return true;
}

int ResolveJobs(std::int64_t jobs) {
  if (jobs > 0)
    return jobs > std::numeric_limits<int>::max()
               ? std::numeric_limits<int>::max()
               : static_cast<int>(jobs);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

std::string ArgParser::Help() const {
  std::ostringstream os;
  for (const Spec& s : specs_) {
    std::string left = s.name;
    if (s.kind == Kind::kInt) left += " N";
    if (s.kind == Kind::kStr) left += " VALUE";
    os << "  " << left;
    for (std::size_t p = left.size(); p < 22; ++p) os << ' ';
    os << s.help << '\n';
  }
  return os.str();
}

}  // namespace tfsim
