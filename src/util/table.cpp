#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace tfsim {
namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == '%' || c == ' ' || c == 'e' ||
          c == static_cast<char>(0xC2) /* UTF-8 lead of ± */ ||
          c == static_cast<char>(0xB1)))
      return false;
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
}

void TextTable::AddSeparator() { rows_.push_back({{}, true}); }

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells, bool align_numeric) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      const bool right = align_numeric && i > 0 && LooksNumeric(cell);
      const std::size_t pad = widths[i] >= cell.size() ? widths[i] - cell.size() : 0;
      if (i) out << "  ";
      if (right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit(header_, false);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& r : rows_) {
    if (r.separator)
      out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    else
      emit(r.cells, true);
  }
  return out.str();
}

std::string Fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string FmtPct(double value, double ci95) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%5.1f%% +-%4.1f", value * 100.0,
                ci95 * 100.0);
  return buf;
}

std::string Bar(double fraction, int width, char fill) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int n = static_cast<int>(std::lround(fraction * width));
  std::string s(static_cast<std::size_t>(n), fill);
  s += std::string(static_cast<std::size_t>(width - n), '.');
  return s;
}

std::string StackedBar(const std::vector<double>& fractions,
                       const std::string& glyphs, int width) {
  std::string s;
  int used = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const char g = i < glyphs.size() ? glyphs[i] : '?';
    int n = static_cast<int>(std::lround(std::clamp(fractions[i], 0.0, 1.0) *
                                         width));
    n = std::min(n, width - used);
    s += std::string(static_cast<std::size_t>(n), g);
    used += n;
  }
  s += std::string(static_cast<std::size_t>(width - used), ' ');
  return s;
}

}  // namespace tfsim
