// Failpoint chaos engine: named fault-injection sites on the harness's own
// durability and telemetry seams (cache stores, checkpoint flushes, JSONL
// sinks, HTTP serving, the trial cycle loop), so tests can prove campaigns
// degrade gracefully under I/O failure instead of assuming it.
//
// A site is a string constant at the seam:
//
//   if (fail::FailHere("cache.store")) return false;   // error-return site
//
// Policies are configured per site (off / error-return / throw / delay),
// optionally firing only every Nth hit and/or a bounded number of times:
//
//   fail::Configure("cache.store", {fail::Action::kError, /*one_in=*/2});
//   fail::ConfigureFromSpec("ckpt.store=error@1in3;events.jsonl.write=throw");
//   fail::ConfigureFromEnv();   // reads TFI_FAILPOINTS (the spec syntax)
//
// Activation is strictly opt-in: the library never reads TFI_FAILPOINTS on
// its own — only binaries that call ConfigureFromEnv() (tfi, chaos_smoke)
// or tests that call Configure() arm the engine. When no site is configured,
// FailHere is a single relaxed atomic load — unmeasurable on the campaign
// hot path (the <0.5% BM_CampaignTrialsFast budget).
//
// Shipped sites (grep for fail::FailHere to audit):
//   fs.atomic_write      AtomicWriteFile, before the temp write
//   cache.load           LoadCachedCampaign (fires = treated as a miss)
//   cache.store          StoreCachedCampaign's write attempt (retried)
//   ckpt.load            LoadCampaignCheckpoint (fires = no resume data)
//   ckpt.store           StoreCampaignCheckpoint's write attempt (retried)
//   events.jsonl.write   JsonlEventSink::OnEvent (fires = stream failure)
//   http.accept          status-server accept loop (fires = drop connection)
//   http.write           status-server response write (fires = drop reply)
//   trial.cycle          TrialRunner's cycle loop, every 256 cycles (kDelay
//                        here simulates a wedged core for watchdog tests)
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace tfsim::fail {

enum class Action : std::uint8_t {
  kOff,    // site disabled (same as never configured)
  kError,  // FailHere returns true: the seam takes its error-return path
  kThrow,  // FailHere throws FailpointError("failpoint: <site>")
  kDelay,  // FailHere sleeps delay_us then returns false (slow-sink model)
};

struct Policy {
  Action action = Action::kOff;
  // Fire on hits 1, 1+N, 1+2N, ... (the first hit always fires, so an
  // @1in2 store failure fails the first attempt and lets the retry succeed).
  std::uint64_t one_in = 1;
  std::uint64_t delay_us = 0;  // kDelay sleep per firing
  std::uint64_t limit = 0;     // stop firing after this many; 0 = unlimited
};

// The exception kThrow sites raise (derives from std::runtime_error so every
// existing catch/quarantine path handles it like any other failure).
struct FailpointError : std::runtime_error {
  explicit FailpointError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
extern std::atomic<bool> g_armed;
bool Evaluate(const char* site);
// Fork protocol for multi-threaded parents (inject/isolate.cpp): the parent
// holds the registry lock across fork() so no other thread can be mid-update
// in the child's memory image; the child re-initializes the lock it
// inherited. Everything else in the registry is plain data, so the child's
// failpoints (e.g. trial.cycle delays) keep working after fork.
void PrepareFork();
void ParentAfterFork();
void ChildAfterFork();
}  // namespace detail

// The per-site probe. Zero-cost when disarmed: one relaxed atomic load.
inline bool FailHere(const char* site) {
  if (!detail::g_armed.load(std::memory_order_relaxed)) return false;
  return detail::Evaluate(site);
}

// Installs (or with Action::kOff clears) the policy for `site`. A site
// ending in '*' is a prefix pattern matching every site it prefixes; exact
// entries win over prefixes. Thread-safe.
void Configure(std::string_view site, const Policy& policy);

// Parses and installs a spec: `site=action[:delay_us][@1inN][#limit]`
// entries separated by ';' or ','. Examples:
//   cache.store=error@1in2            fail every other store attempt
//   events.jsonl.write=throw#1        one exception from the JSONL sink
//   trial.cycle=delay:20000@1in64     a 20ms stall every 64th probe
//   ckpt.*=error                      every checkpoint seam error-returns
// Returns false (with a diagnostic in *error) on malformed input; valid
// prefix entries before the malformed one stay installed.
bool ConfigureFromSpec(std::string_view spec, std::string* error = nullptr);

// Reads TFI_FAILPOINTS and applies ConfigureFromSpec. Returns the number of
// sites configured (0 when unset/empty); malformed specs warn on stderr and
// configure nothing further. This call is the opt-in: binaries that never
// call it are immune to the env var.
int ConfigureFromEnv();

// Clears every policy and counter and disarms the fast path.
void Reset();

// Probe counters for the configured entry `site` (the exact string passed
// to Configure, including any '*'): total FailHere evaluations that matched
// it, and how many fired. Zero for unknown entries.
std::uint64_t HitCount(std::string_view site);
std::uint64_t FireCount(std::string_view site);

}  // namespace tfsim::fail
