// Cooperative cancellation for long-running loops (the campaign trial loop).
//
// Request() flips a single lock-free atomic flag, so it is safe to call from
// a POSIX signal handler (tools/tfi.cpp wires it to SIGINT). Workers poll
// cancelled() between trials and drain: in-flight trials finish, no new ones
// start, and the campaign flushes its checkpoint before returning.
#pragma once

#include <atomic>

namespace tfsim {

class CancellationToken {
 public:
  void Request() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  // For reuse across sequential campaigns in one process (tests, suites).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace tfsim
