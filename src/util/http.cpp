#include "util/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <thread>

#include "util/failpoint.h"

namespace tfsim {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kIoTimeoutMs = 2000;

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

// %xx-decodes a query component (plus '+' as space).
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back(s[i]);
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void ParseTarget(std::string_view target, HttpRequest* req) {
  const std::size_t qpos = target.find('?');
  req->path = std::string(target.substr(0, qpos));
  if (qpos == std::string_view::npos) return;
  std::string_view qs = target.substr(qpos + 1);
  while (!qs.empty()) {
    const std::size_t amp = qs.find('&');
    std::string_view pair = qs.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos)
      req->query[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    else if (!pair.empty())
      req->query[UrlDecode(pair)] = "";
    if (amp == std::string_view::npos) break;
    qs.remove_prefix(amp + 1);
  }
}

// Reads from `fd` until the header terminator, EOF, error or timeout.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    if (head->find("\r\n\r\n") != std::string::npos) return true;
    pollfd p{fd, POLLIN, 0};
    const int pr = poll(&p, 1, kIoTimeoutMs);
    if (pr <= 0) return false;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<std::size_t>(n));
  }
  return head->find("\r\n\r\n") != std::string::npos;
}

bool SendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& r) {
  std::ostringstream os;
  os << "HTTP/1.1 " << r.status << ' ' << StatusText(r.status) << "\r\n"
     << "Content-Type: " << r.content_type << "\r\n"
     << "Content-Length: " << r.body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << r.body;
  return os.str();
}

}  // namespace

struct HttpServer::Impl {
  std::thread thread;
  std::atomic<bool> stop{false};
};

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::uint16_t port, Handler handler,
                       std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) close(listen_fd_);
    listen_fd_ = -1;
    return false;
  };
  if (running_) {
    if (error) *error = "already running";
    return false;
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return fail("bind 127.0.0.1:" + std::to_string(port));
  if (listen(listen_fd_, 16) != 0) return fail("listen");
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return fail("getsockname");
  port_ = ntohs(addr.sin_port);
  handler_ = std::move(handler);
  impl_ = new Impl;
  impl_->thread = std::thread([this] { AcceptLoop(); });
  running_ = true;
  return true;
}

void HttpServer::Stop() {
  if (!impl_) return;
  impl_->stop.store(true, std::memory_order_relaxed);
  impl_->thread.join();
  delete impl_;
  impl_ = nullptr;
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void HttpServer::AcceptLoop() {
  // Poll with a short timeout so Stop()'s flag is honoured promptly without
  // the platform games of waking a blocked accept().
  while (!impl_->stop.load(std::memory_order_relaxed)) {
    pollfd p{listen_fd_, POLLIN, 0};
    const int pr = poll(&p, 1, 50);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0 || !(p.revents & POLLIN)) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Chaos site: a firing http.accept models a flaky listener — the
    // connection is dropped before any request is read. Clients see a reset;
    // the campaign never notices (serving is pure telemetry). An exception
    // (throw-action failpoint, handler bug) likewise costs only the one
    // connection, never the accept thread.
    try {
      if (!fail::FailHere("http.accept")) ServeConnection(fd);
    } catch (...) {
    }
    close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string head;
  if (!ReadRequestHead(fd, &head)) return;
  const std::size_t eol = head.find("\r\n");
  std::istringstream line(head.substr(0, eol));
  HttpRequest req;
  std::string target, version;
  line >> req.method >> target >> version;
  HttpResponse resp;
  if (req.method.empty() || target.empty() || target[0] != '/') {
    resp = {400, "application/json", "{\"error\":\"malformed request\"}\n"};
  } else if (req.method != "GET") {
    resp = {405, "application/json", "{\"error\":\"GET only\"}\n"};
  } else {
    ParseTarget(target, &req);
    resp = handler_(req);
  }
  // Chaos site: a firing http.write drops the response after the handler ran
  // (a torn reply, as a mid-write peer disconnect would produce).
  if (fail::FailHere("http.write")) return;
  SendAll(fd, RenderResponse(resp));
}

bool HttpGet(std::uint16_t port, const std::string& target, std::string* body,
             int* status, std::string* error) {
  auto fail = [&](const std::string& what, int fd = -1) {
    if (error) *error = what + ": " + std::strerror(errno);
    if (fd >= 0) close(fd);
    return false;
  };
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return fail("connect 127.0.0.1:" + std::to_string(port), fd);
  const std::string req = "GET " + target +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  if (!SendAll(fd, req)) return fail("send", fd);
  std::string raw;
  char buf[2048];
  for (;;) {
    pollfd p{fd, POLLIN, 0};
    if (poll(&p, 1, kIoTimeoutMs) <= 0) return fail("poll", fd);
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) return fail("recv", fd);
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  const std::size_t sep = raw.find("\r\n\r\n");
  if (raw.rfind("HTTP/1.", 0) != 0 || sep == std::string::npos) {
    if (error) *error = "malformed response";
    return false;
  }
  if (status) *status = std::atoi(raw.c_str() + raw.find(' ') + 1);
  if (body) *body = raw.substr(sep + 4);
  return true;
}

}  // namespace tfsim
