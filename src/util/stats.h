// Small statistics helpers: proportions with confidence intervals and a
// least-squares linear fit (used for the Figure 6 utilization trendline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tfsim {

// A binomial proportion estimate with its normal-approximation 95% CI
// half-width, matching how the paper reports confidence intervals.
struct Proportion {
  double value = 0.0;      // successes / total, in [0,1]
  double ci95 = 0.0;       // 95% confidence half-width
  std::uint64_t count = 0;  // successes
  std::uint64_t total = 0;  // trials
};

// Computes count/total with a 95% normal-approximation CI. total==0 yields
// a zero proportion with zero CI.
Proportion MakeProportion(std::uint64_t count, std::uint64_t total);

// Result of an ordinary least-squares fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  // coefficient of determination
};

// Least-squares fit over paired samples; requires xs.size()==ys.size().
// Fewer than two points yields a flat fit through the mean.
LinearFit FitLeastSquares(const std::vector<double>& xs,
                          const std::vector<double>& ys);

// Running scalar summary (mean/min/max/variance) for cheap instrumentation.
// Mean and variance use Welford's online algorithm, which is numerically
// stable for long streams (e.g. per-cycle occupancy over millions of
// cycles) where a naive sum-of-squares accumulator loses precision.
class RunningStat {
 public:
  void Add(double x);
  double Mean() const;
  // Population variance (divides by n). Zero for fewer than two samples.
  double Variance() const;
  // Sample variance (divides by n-1). Zero for fewer than two samples.
  double SampleVariance() const;
  // sqrt(Variance()): spread of the observed stream itself.
  double StdDev() const;
  double Min() const { return n_ ? min_ : 0.0; }
  double Max() const { return n_ ? max_ : 0.0; }
  std::size_t Count() const { return n_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tfsim
