#include "util/fs.h"

#include <atomic>
#include <fstream>
#include <system_error>

#include "util/failpoint.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace tfsim {
namespace {

// Temp names carry the pid and a process-wide sequence number so concurrent
// writers (threads or processes sharing a cache directory) never collide on
// the temporary; the final rename then serializes at the filesystem.
std::string UniqueSuffix() {
  static std::atomic<std::uint64_t> seq{0};
  const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
#ifndef _WIN32
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  return ".tmp." + std::to_string(pid) + "." + std::to_string(n);
}

bool Fail(const std::string& what, std::string* error) {
  if (error) *error = what;
  return false;
}

}  // namespace

bool AtomicWriteFile(const std::filesystem::path& path,
                     std::string_view contents, std::string* error) {
  if (fail::FailHere("fs.atomic_write"))
    return Fail("failpoint: fs.atomic_write (" + path.string() + ")", error);
  const std::filesystem::path tmp(path.string() + UniqueSuffix());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Fail("cannot create " + tmp.string(), error);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      std::filesystem::remove(tmp, ignored);
      return Fail("short write to " + tmp.string(), error);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    return Fail("rename to " + path.string() + " failed: " + ec.message(),
                error);
  }
  return true;
}

}  // namespace tfsim
