// gzip- and bzip2-like kernels: compression-style scanning and block
// sorting. Both are high-IPC workloads with good cache behaviour, matching
// the paper's observation that gzip/bzip2 show the highest failure rates
// (more live state in flight).
#include "workloads/programs.h"

namespace tfsim::programs {

// LZ-style match/emit over a pseudo-random 4 KB buffer.
const char* kGzip = R"(
        .text
_start:
        li      s0, @ITERS@
        li      fp, 65536
        mov     zero, s5
        ; --- fill buf[0..4095] from an LCG ---
        la      t4, buf
        li      t0, 4096
        li      t1, 987654321
        li      t2, 1103515245
        li      t3, 12345
init:
        mulq    t1, t2, t1
        addq    t1, t3, t1
        srlqi   t1, 16, t5
        andqi   t5, 255, t5
        stb     t5, 0(t4)
        addqi   t4, 1, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 0                 ; checksum
outer:
        li      s2, 64                ; i
        la      s4, buf
scan:
        addq    s4, s2, t1            ; &buf[i]
        ldbu    t2, 0(t1)             ; c = buf[i]
        li      t3, 16                ; window tries
        mov     t1, t4
search:
        subqi   t4, 1, t4
        ldbu    t5, 0(t4)
        cmpeq   t5, t2, t6
        bne     t6, found
        subqi   t3, 1, t3
        bgt     t3, search
        addq    s3, t2, s3            ; literal
        br      next
found:
        subq    t1, t4, t7            ; match distance
        sllqi   t7, 4, t7
        addq    s3, t7, s3
        xorq    s3, t2, s3
next:
        ; emit one output byte per token (the compressed stream)
        la      t8, emitb
        addq    t8, s2, t8
        stb     s3, 0(t8)
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t2, s3, t10
        xorq    t10, t2, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, gzadt
        bisq    t10, t11, t10        ; dead repair path
gzadt:
        addqi   s2, 1, s2
        cmplti  s2, 1088, t0
        bne     t0, scan
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s5, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s5, 4160, s5
        cmplt   s5, fp, t11
        bne     t11, coldnw
        mov     zero, s5
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        ; --- emit checksum and exit ---
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
buf:    .space  4200
emitb:  .space  1100
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Block "sort": insertion-sorts 32-element segments of a word array, then
// folds a histogram-style checksum.
const char* kBzip2 = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s4, 65536
        mov     zero, s1
        ; --- fill a[0..255] (64-bit words) from an LCG ---
        la      t4, arr
        li      t0, 256
        li      t1, 424242
        li      t2, 1103515245
        li      t3, 12345
init:
        mulq    t1, t2, t1
        addq    t1, t3, t1
        srlqi   t1, 8, t5
        andqi   t5, 4095, t5
        stq     t5, 0(t4)
        addqi   t4, 8, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 0
outer:
        li      s2, 0                 ; segment base index
seg:
        ; insertion sort arr[s2 .. s2+31]
        li      t0, 1                 ; j
ins_outer:
        la      t4, arr
        addq    s2, t0, t1
        sllqi   t1, 3, t1
        addq    t4, t1, t1            ; &arr[s2+j]
        ldq     t2, 0(t1)             ; key
        mov     t0, t3                ; k = j
ins_inner:
        ble     t3, ins_done
        ldq     t5, -8(t1)
        cmple   t5, t2, t6
        bne     t6, ins_done
        stq     t5, 0(t1)
        subqi   t1, 8, t1
        subqi   t3, 1, t3
        br      ins_inner
ins_done:
        stq     t2, 0(t1)
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t2, s3, t10
        xorq    t10, t2, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, bzadt
        bisq    t10, t11, t10        ; dead repair path
bzadt:
        addqi   t0, 1, t0
        cmplti  t0, 32, t6
        bne     t6, ins_outer
        addqi   s2, 32, s2
        cmplti  s2, 256, t6
        bne     t6, seg
        ; fold a few sorted sentinels into the checksum
        la      t4, arr
        ldq     t0, 0(t4)
        ldq     t1, 1016(t4)
        addq    s3, t0, s3
        xorq    s3, t1, s3
        ; re-perturb the array so the next iteration has work to do
        la      t4, arr
        li      t0, 256
        mov     s3, t1
        la      t2, kmul
        ldq     t2, 0(t2)
perturb:
        mulq    t1, t2, t1
        addqi   t1, 14423, t1
        srlqi   t1, 16, t5
        andqi   t5, 4095, t5
        stq     t5, 0(t4)
        addqi   t4, 8, t4
        subqi   t0, 1, t0
        bgt     t0, perturb
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, s4, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
arr:    .space  2048
kmul:   .word   0x5851F42D4C957F2D
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Bitboard-style 64-bit logic kernel: rotates, masks, and a shift-add
// population count. Almost no memory traffic, very high IPC.
const char* kCrafty = R"(
        .text
_start:
        li      s0, @ITERS@
        li      fp, 65536
        mov     zero, s5
        li      s1, 81985529         ; board state
        la      t0, kmask
        ldq     s2, 0(t0)            ; 0x5555... style mask
        ldq     s4, 8(t0)
        li      s3, 0                ; checksum
outer:
        li      t0, 200              ; inner ops
bits:
        ; rotate left 13
        sllqi   s1, 13, t1
        srlqi   s1, 51, t2
        bisq    t1, t2, s1
        ; mix with masks (xorshift step keeps the walk from collapsing
        ; into a short cycle)
        andq    s1, s2, t3
        xorq    s1, s4, t4
        addq    t3, t4, s1
        srlqi   s1, 7, t9
        xorq    s1, t9, s1
        addqi   s1, 30211, s1
        ; popcount of t3 via shift-add loop (8 nibbles)
        li      t5, 0
        mov     t3, t6
        li      t7, 16
pop:
        andqi   t6, 15, t8
        addq    t5, t8, t5
        srlqi   t6, 4, t6
        subqi   t7, 1, t7
        bgt     t7, pop
        addq    s3, t5, s3
        ; record the evaluation in a history table (memory traffic)
        la      t8, hist
        andqi   t0, 255, t9
        addq    t8, t9, t9
        stb     t5, 0(t9)
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t5, s1, t10
        xorq    t10, t5, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, cradt
        bisq    t10, t11, t10        ; dead repair path
cradt:
        subqi   t0, 1, t0
        bgt     t0, bits
        xorq    s3, s1, s3
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s5, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s5, 4160, s5
        cmplt   s5, fp, t11
        bne     t11, coldnw
        mov     zero, s5
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
kmask:  .word   0x5555555555555555
        .word   0x3333333333333333
hist:   .space  256
        .align  8
cold:   .space  98304
out:    .space  8
)";

}  // namespace tfsim::programs
