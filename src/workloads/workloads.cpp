#include "workloads/workloads.h"

#include <stdexcept>

#include "workloads/programs.h"

namespace tfsim {
namespace {

std::string Subst(const char* source, std::uint64_t iters, bool emit) {
  std::string s = source;
  const std::string key = "@ITERS@";
  const std::size_t pos = s.find(key);
  if (pos != std::string::npos)
    s.replace(pos, key.size(), std::to_string(iters));
  // Optional per-iteration output: inject a write syscall before the outer
  // loop back-edge (every program ends its outer body with this exact pair).
  if (emit) {
    const std::string backedge = "        subqi   s0, 1, s0\n        bgt     s0, outer";
    const std::string chat =
        "        la      a0, out\n"
        "        stq     s3, 0(a0)\n"
        "        li      a1, 8\n"
        "        li      v0, 2\n"
        "        syscall\n";
    const std::size_t be = s.rfind(backedge);
    if (be != std::string::npos) s.insert(be, chat);
  }
  return s;
}

}  // namespace

const std::vector<WorkloadInfo>& AllWorkloads() {
  static const std::vector<WorkloadInfo> kAll = {
      {"bzip2", "block sort + histogram (high IPC, high D$ hit)",
       programs::kBzip2},
      {"crafty", "bitboard logic (ALU dense, very high IPC)",
       programs::kCrafty},
      {"gap", "modular arithmetic / gcd (complex-ALU heavy)", programs::kGap},
      {"gcc", "branchy expression dispatch (mispredict heavy)",
       programs::kGcc},
      {"gzip", "LZ match/emit compression (high IPC)", programs::kGzip},
      {"mcf", "pointer chase over 128 KB (D$ miss heavy)", programs::kMcf},
      {"parser", "tokenizer + dictionary hashing (byte loads, branchy)",
       programs::kParser},
      {"twolf", "RNG-driven placement swaps (scattered memory)",
       programs::kTwolf},
      {"vortex", "hash-table object store (mixed)", programs::kVortex},
      {"vpr", "2D grid relaxation (regular loops)", programs::kVpr},
  };
  return kAll;
}

const WorkloadInfo& WorkloadByName(const std::string& name) {
  for (const auto& w : AllWorkloads())
    if (w.name == name) return w;
  throw std::out_of_range("unknown workload: " + name);
}

Program BuildWorkload(const WorkloadInfo& info, std::uint64_t iters,
                      bool emit_each_iteration) {
  return Assemble(Subst(info.source, iters, emit_each_iteration));
}

}  // namespace tfsim
