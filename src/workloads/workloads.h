// Workload suite: ten synthetic miniAlpha assembly kernels standing in for
// the SPEC2000 integer benchmarks of the paper's evaluation (see DESIGN.md
// for the substitution rationale). Each kernel mimics its namesake's
// dominant microarchitectural behaviour:
//
//   gzip    — LZ-style match/emit compression loop (high IPC)
//   bzip2   — block sort + byte counting (high IPC, high D$ hit rate)
//   gcc     — expression-tree walk with branchy dispatch (mispredict heavy)
//   mcf     — linked-node relaxation over a large array (D$ miss heavy)
//   crafty  — 64-bit bitboard manipulation (ALU dense)
//   parser  — tokenizing + dictionary hashing (byte loads, branchy)
//   vortex  — hash-table insert/lookup object store (mixed)
//   gap     — modular arithmetic / gcd kernels (complex-ALU heavy)
//   twolf   — RNG-driven placement swaps (scattered loads/stores)
//   vpr     — 2D grid relaxation sweeps (regular loops)
//
// Programs are parameterized by an outer iteration count: campaigns use a
// huge count (the program never terminates inside the observation window,
// like a SPEC benchmark snapshot); the Section 5 software-level experiments
// use a small count so programs run to completion and produce output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assemble.h"

namespace tfsim {

struct WorkloadInfo {
  std::string name;
  std::string description;
  const char* source;  // assembly text with an @ITERS@ placeholder
};

// All ten workloads, in the order benches report them.
const std::vector<WorkloadInfo>& AllWorkloads();

// Looks up a workload (throws std::out_of_range on unknown names).
const WorkloadInfo& WorkloadByName(const std::string& name);

// Assembles a workload with the given outer iteration count. When
// `emit_each_iteration` is set, the program performs a write syscall at the
// end of every outer iteration (used by the Section 5 software-level
// experiments, where progressive output enables early state-convergence
// detection); pipeline campaigns leave it off, as SPEC-like workloads
// syscall rarely.
Program BuildWorkload(const WorkloadInfo& info, std::uint64_t iters,
                      bool emit_each_iteration = false);

// Iteration count used by pipeline campaigns (effectively non-terminating).
inline constexpr std::uint64_t kCampaignIters = 1u << 30;

}  // namespace tfsim
