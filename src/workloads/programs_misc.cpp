// vortex-, gap-, twolf- and vpr-like kernels: object-store hashing,
// complex-ALU arithmetic, RNG-driven swaps, and grid relaxation.
#include "workloads/programs.h"

namespace tfsim::programs {

// Hash-table object store: interleaved inserts and lookups over 256 buckets
// of 4 slots each (the vortex profile: mixed ALU/memory, moderate branches).
const char* kVortex = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s4, 65536
        mov     zero, s1
        li      s3, 0                 ; checksum
        li      s5, 112233            ; key RNG
outer:
        li      s2, 256               ; operations per round
op:
        ; next key
        li      t2, 1103515245
        mulq    s5, t2, s5
        addqi   s5, 12345, s5
        srlqi   s5, 9, t0
        sllqi   t0, 48, t0
        srlqi   t0, 48, t0            ; key (16 bits)
        ; bucket = (key * 40503) >> 8 & 255
        mulqi   t0, 24247, t1
        srlqi   t1, 8, t1
        andqi   t1, 255, t1
        sllqi   t1, 5, t1             ; 4 slots x 8 bytes
        la      t3, table
        addq    t3, t1, t3
        ; probe 4 slots for key or empty
        li      t4, 4
probe:
        ldq     t5, 0(t3)
        cmpeq   t5, t0, t6
        bne     t6, hit
        cmpeqi  t5, 0, t6
        bne     t6, empty
        addqi   t3, 8, t3
        subqi   t4, 1, t4
        bgt     t4, probe
        ; bucket full: evict slot 0 of this bucket
        subqi   t3, 32, t3
empty:
        stq     t0, 0(t3)
        addq    s3, t0, s3
        br      next
hit:
        xorq    s3, t0, s3
next:
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t0, s3, t10
        xorq    t10, t0, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, voadt
        bisq    t10, t11, t10        ; dead repair path
voadt:
        subqi   s2, 1, s2
        bgt     s2, op
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, s4, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
table:  .space  8192
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Computer-algebra style arithmetic: modular exponentiation by square and
// multiply plus a gcd loop — dominated by the complex ALU (mulq/remq).
const char* kGap = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s5, 65536
        mov     zero, s4
        li      s3, 0
        li      s1, 1234577           ; modulus (odd)
        li      s2, 16807             ; base seed
outer:
        ; modexp: r = s2^e mod s1, e = 20 bits of s2
        mov     s2, t0                ; base
        andqi   s2, 4095, t1
        bisqi   t1, 1, t1             ; exponent (nonzero)
        li      t2, 1                 ; result
modexp:
        andqi   t1, 1, t3
        beq     t3, square
        mulq    t2, t0, t2
        remq    t2, s1, t2
square:
        mulq    t0, t0, t0
        remq    t0, s1, t0
        ; spill the running partial (memory traffic)
        la      t4, mstk
        andqi   t1, 63, t5
        sllqi   t5, 3, t5
        addq    t4, t5, t4
        stq     t2, 0(t4)
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t2, t0, t10
        xorq    t10, t2, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, gaadt
        bisq    t10, t11, t10        ; dead repair path
gaadt:
        srlqi   t1, 1, t1
        bgt     t1, modexp
        addq    s3, t2, s3
        ; gcd(t2+3, s2+7)
        addqi   t2, 3, t4
        addqi   s2, 7, t5
gcd:
        beq     t5, gcd_done
        remq    t4, t5, t6
        mov     t5, t4
        mov     t6, t5
        br      gcd
gcd_done:
        xorq    s3, t4, s3
        ; advance seed
        mulqi   s2, 16807, s2
        addqi   s2, 1, s2
        srlqi   s2, 3, t6
        addq    s2, t6, s2
        sllqi   s2, 44, s2
        srlqi   s2, 44, s2            ; keep the seed bounded (20 bits)
        bisqi   s2, 2, s2             ; and nonzero
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s4, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s4, 4160, s4
        cmplt   s4, s5, t11
        bne     t11, coldnw
        mov     zero, s4
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
mstk:   .space  512
cold:   .space  98304
out:    .space  8
)";

// Placement-swap kernel: an LCG picks two cells; swap if it lowers a local
// cost (scattered accesses, data-dependent branches — the twolf profile).
const char* kTwolf = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s4, 65536
        mov     zero, s1
        ; --- fill cells[0..1023] ---
        la      t4, cells
        li      t0, 1024
        li      t1, 55555
        li      t2, 1103515245
init:
        mulq    t1, t2, t1
        addqi   t1, 12345, t1
        srlqi   t1, 7, t5
        andqi   t5, 8191, t5
        stq     t5, 0(t4)
        addqi   t4, 8, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 0
        li      s5, 99991             ; RNG
outer:
        li      s2, 256               ; swaps per round
swap:
        li      t2, 1103515245
        mulq    s5, t2, s5
        addqi   s5, 12345, s5
        srlqi   s5, 8, t0
        andqi   t0, 1023, t0          ; i
        srlqi   s5, 20, t1
        andqi   t1, 1023, t1          ; j
        la      t3, cells
        sllqi   t0, 3, t4
        addq    t3, t4, t4
        sllqi   t1, 3, t5
        addq    t3, t5, t5
        ldq     t6, 0(t4)             ; a
        ldq     t7, 0(t5)             ; b
        ; swap if a > b XOR (i < j)  (data dependent)
        cmplt   t7, t6, t8
        cmplt   t0, t1, t9
        xorq    t8, t9, t8
        beq     t8, noswap
        stq     t7, 0(t4)
        stq     t6, 0(t5)
        addqi   s3, 1, s3
noswap:
        addq    s3, t6, s3
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t6, t7, t10
        xorq    t10, t6, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, twadt
        bisq    t10, t11, t10        ; dead repair path
twadt:
        subqi   s2, 1, s2
        bgt     s2, swap
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, s4, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
cells:  .space  8192
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Grid relaxation: repeated min-plus sweeps over a 32x32 array (the vpr
// routing-cost profile: regular nested loops, predictable branches).
const char* kVpr = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s5, 65536
        mov     zero, s1
        ; --- init grid[0..1023] ---
        la      t4, grid
        li      t0, 1024
        li      t1, 24680
        li      t2, 1103515245
init:
        mulq    t1, t2, t1
        addqi   t1, 12345, t1
        srlqi   t1, 10, t5
        andqi   t5, 1023, t5
        addqi   t5, 1, t5
        stq     t5, 0(t4)
        addqi   t4, 8, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 0
outer:
        ; one relaxation sweep over interior cells (row 1..30, col 1..30)
        li      s2, 1                 ; row
row:
        li      s4, 1                 ; col
col:
        sllqi   s2, 5, t0
        addq    t0, s4, t0            ; idx = row*32+col
        sllqi   t0, 3, t0
        la      t1, grid
        addq    t1, t0, t0            ; &grid[idx]
        ldq     t2, -8(t0)            ; left
        ldq     t3, 8(t0)             ; right
        ldq     t4, -256(t0)          ; up
        ldq     t5, 256(t0)           ; down
        ; min of neighbours
        cmplt   t3, t2, t6
        beq     t6, m1
        mov     t3, t2
m1:
        cmplt   t5, t4, t6
        beq     t6, m2
        mov     t5, t4
m2:
        cmplt   t4, t2, t6
        beq     t6, m3
        mov     t4, t2
m3:
        addqi   t2, 1, t2             ; min + unit cost
        ldq     t7, 0(t0)
        cmplt   t2, t7, t6
        beq     t6, keep
        mov     t7, t2
keep:
        stq     t2, 0(t0)
        addq    s3, t2, s3
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    t2, t7, t10
        xorq    t10, t2, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, vpadt
        bisq    t10, t11, t10        ; dead repair path
vpadt:
        addqi   s4, 1, s4
        cmplti  s4, 31, t6
        bne     t6, col
        addqi   s2, 1, s2
        cmplti  s2, 31, t6
        bne     t6, row
        ; re-seed one diagonal so sweeps keep changing
        la      t1, grid
        li      t0, 31
reseed:
        sllqi   t0, 5, t2
        addq    t2, t0, t2
        sllqi   t2, 3, t2
        addq    t1, t2, t2
        addq    s3, t0, t3
        andqi   t3, 1023, t3
        addqi   t3, 1, t3
        stq     t3, 0(t2)
        subqi   t0, 1, t0
        bgt     t0, reseed
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, s5, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
grid:   .space  8192
        .align  8
cold:   .space  98304
out:    .space  8
)";

}  // namespace tfsim::programs
