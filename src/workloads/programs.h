// Assembly sources for the workload suite (internal to src/workloads).
#pragma once

namespace tfsim::programs {

extern const char* kGzip;
extern const char* kBzip2;
extern const char* kCrafty;
extern const char* kGcc;
extern const char* kMcf;
extern const char* kParser;
extern const char* kVortex;
extern const char* kGap;
extern const char* kTwolf;
extern const char* kVpr;

}  // namespace tfsim::programs
