// gcc-, mcf- and parser-like kernels: branchy dispatch, cache-hostile
// pointer chasing, and byte-wise tokenizing with dictionary hashing.
#include "workloads/programs.h"

namespace tfsim::programs {

// Expression-evaluator style dispatch: walks a pseudo-random opcode stream
// and takes a different action per opcode class. Data-dependent branches
// defeat the predictors (the paper's low-IPC, mispredict-heavy bucket).
const char* kGcc = R"(
        .text
_start:
        li      s0, @ITERS@
        li      fp, 65536
        mov     zero, s5
        ; --- fill ops[0..1023] with bytes 0..7 ---
        la      t4, ops
        li      t0, 1024
        li      t1, 777
        li      t2, 1103515245
init:
        mulq    t1, t2, t1
        addqi   t1, 12345, t1
        srlqi   t1, 13, t5
        andqi   t5, 7, t5
        stb     t5, 0(t4)
        addqi   t4, 1, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 1                 ; accumulator
outer:
        la      s4, ops
        li      s2, 1024
dispatch:
        ldbu    t0, 0(s4)
        addqi   s4, 1, s4
        cmpeqi  t0, 0, t1
        bne     t1, case_add
        cmpeqi  t0, 1, t1
        bne     t1, case_sub
        cmpeqi  t0, 2, t1
        bne     t1, case_xor
        cmpeqi  t0, 3, t1
        bne     t1, case_shift
        cmpeqi  t0, 4, t1
        bne     t1, case_and
        cmpeqi  t0, 5, t1
        bne     t1, case_or
        cmpeqi  t0, 6, t1
        bne     t1, case_mul
        ; case 7: rotate
        sllqi   s3, 7, t2
        srlqi   s3, 57, t3
        bisq    t2, t3, s3
        br      done
case_add:
        addqi   s3, 1021, s3
        br      done
case_sub:
        subqi   s3, 3, s3
        br      done
case_xor:
        xorqi   s3, 21845, s3
        br      done
case_shift:
        sllqi   s3, 1, s3
        br      done
case_and:
        bisqi   s3, 255, s3
        br      done
case_or:
        bisqi   s3, 4097, s3
        br      done
case_mul:
        mulqi   s3, 37, s3
done:
        ; spill the accumulator (expression results go to memory)
        la      t4, wrbuf
        andqi   s2, 1023, t5
        addq    t4, t5, t4
        stb     s3, 0(t4)
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    s3, t0, t10
        xorq    t10, s3, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, gcadt
        bisq    t10, t11, t10        ; dead repair path
gcadt:
        subqi   s2, 1, s2
        bgt     s2, dispatch
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s5, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s5, 4160, s5
        cmplt   s5, fp, t11
        bne     t11, coldnw
        mov     zero, s5
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
ops:    .space  1032
wrbuf:  .space  1032
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Cache-hostile pointer chase over a 128 KB permutation array (the mcf
// profile: low IPC, dominated by D-cache misses).
const char* kMcf = R"(
        .text
_start:
        li      s0, @ITERS@
        li      s4, 65536
        mov     zero, s1
        ; --- build a stride permutation: next[i] = (i + 6151) % 16384 ---
        la      t4, nodes
        li      t0, 0                 ; i
        li      t2, 16384
fill:
        addqi   t0, 6151, t1
        cmplt   t1, t2, t3
        bne     t3, nowrap
        subq    t1, t2, t1
nowrap:
        sllqi   t0, 4, t5             ; 16-byte nodes: {next, flow}
        addq    t4, t5, t5
        stq     t1, 0(t5)
        addqi   t0, 1, t0
        cmplt   t0, t2, t3
        bne     t3, fill
        li      s3, 0
        li      s2, 1                 ; current node
outer:
        li      t0, 2048              ; chase length
chase:
        la      t4, nodes
        sllqi   s2, 4, t5
        addq    t4, t5, t5
        ldq     s2, 0(t5)             ; s2 = node->next
        stq     s3, 8(t5)             ; node->flow update
        addq    s3, s2, s3
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    s2, s3, t10
        xorq    t10, s2, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, mcadt
        bisq    t10, t11, t10        ; dead repair path
mcadt:
        subqi   t0, 1, t0
        bgt     t0, chase
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, s4, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
        .align  8
nodes:  .space  262144
        .align  8
cold:   .space  98304
out:    .space  8
)";

// Tokenizer + dictionary hash: splits a pseudo-random byte stream into
// "words" and folds each through a 64-bucket hash table.
const char* kParser = R"(
        .text
_start:
        li      s0, @ITERS@
        li      fp, 65536
        mov     zero, s1
        ; --- synthesize text[0..2047]: letters with ~1/8 separators ---
        la      t4, text
        li      t0, 2048
        li      t1, 31337
        li      t2, 1103515245
init:
        mulq    t1, t2, t1
        addqi   t1, 12345, t1
        srlqi   t1, 11, t5
        andqi   t5, 7, t6
        bne     t6, letter
        li      t5, 32                ; separator
        br      emit
letter:
        srlqi   t1, 17, t5
        andqi   t5, 25, t5
        addqi   t5, 97, t5            ; 'a'..'z'
emit:
        stb     t5, 0(t4)
        addqi   t4, 1, t4
        subqi   t0, 1, t0
        bgt     t0, init
        li      s3, 0
outer:
        la      s4, text
        li      s2, 2048
        li      s5, 0                 ; current token hash
token:
        ldbu    t0, 0(s4)
        addqi   s4, 1, s4
        cmpeqi  t0, 32, t1
        bne     t1, endword
        mulqi   s5, 31, s5
        addq    s5, t0, s5
        br      cont
endword:
        ; bucket = hash & 63; counts[bucket] += hash
        andqi   s5, 63, t2
        sllqi   t2, 3, t2
        la      t3, dict
        addq    t3, t2, t2
        ldq     t4, 0(t2)
        addq    t4, s5, t4
        stq     t4, 0(t2)
        xorq    s3, t4, s3
        li      s5, 0
cont:
        ; bookkeeping check: these values die without reaching program
        ; output (real programs spend much of their dynamic work here —
        ; the paper's "dead and transitively dead values")
        addq    s5, t0, t10
        xorq    t10, s5, t10
        srlqi   t10, 7, t11
        addq    t10, t11, t10
        cmpule  zero, t10, t11
        bne     t11, paadt
        bisq    t10, t11, t10        ; dead repair path
paadt:
        subqi   s2, 1, s2
        bgt     s2, token
        ; --- cold-region sweep: far-striding loads, a store and a multiply
        ; keep the MSHRs, store queue/buffer and complex-ALU pipe in steady
        ; use, as real SPEC workloads do ---
        la      t10, cold
        addq    t10, s1, t10
        ldq     t11, 0(t10)
        addq    s3, t11, s3
        ldq     t11, 8256(t10)
        xorq    s3, t11, s3
        mulq    t11, s3, t11
        stq     t11, 16512(t10)
        ldq     t11, 24768(t10)
        addq    s3, t11, s3
        addqi   s1, 4160, s1
        cmplt   s1, fp, t11
        bne     t11, coldnw
        mov     zero, s1
coldnw:
        subqi   s0, 1, s0
        bgt     s0, outer
        la      a0, out
        stq     s3, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0
        li      v0, 1
        syscall
hang:   br      hang
        .data
text:   .space  2056
        .align  8
dict:   .space  512
        .align  8
cold:   .space  98304
out:    .space  8
)";

}  // namespace tfsim::programs
