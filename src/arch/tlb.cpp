#include "arch/tlb.h"

#include "arch/memory.h"

namespace tfsim {

bool Tlb::Lookup(std::unordered_set<std::uint64_t>& pages,
                 std::uint64_t addr) {
  const std::uint64_t page = addr / kPageBytes;
  if (learning_) {
    pages.insert(page);
    return true;
  }
  return pages.count(page) != 0;
}

bool Tlb::LookupInsn(std::uint64_t addr) { return Lookup(ipages_, addr); }
bool Tlb::LookupData(std::uint64_t addr) { return Lookup(dpages_, addr); }

}  // namespace tfsim
