#include "arch/syscall.h"

namespace tfsim {

std::uint64_t DoSyscallRaw(std::uint64_t number, std::uint64_t a0,
                           std::uint64_t a1, Memory& mem,
                           std::vector<std::uint8_t>& output, bool& exited,
                           std::uint64_t& exit_code) {
  switch (number) {
    case kSysExit:
      exited = true;
      exit_code = a0;
      return 0;
    case kSysWrite: {
      const std::uint64_t n = a1 < kMaxWriteBytes ? a1 : kMaxWriteBytes;
      for (std::uint64_t i = 0; i < n; ++i)
        output.push_back(mem.ReadByte(a0 + i));
      return n;
    }
    default:
      return static_cast<std::uint64_t>(-1);
  }
}

void DoSyscall(ArchState& state) {
  const std::uint64_t r0 =
      DoSyscallRaw(state.Reg(0), state.Reg(16), state.Reg(17), state.mem,
                   state.output, state.exited, state.exit_code);
  state.SetReg(0, r0);
}

}  // namespace tfsim
