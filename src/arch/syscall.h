// System-call layer shared by the functional simulator and the pipeline's
// retirement stage (syscalls are serializing and execute atomically at
// retirement in both models, so their semantics must be identical).
//
// Calling convention: syscall number in r0, arguments in a0/a1 (r16/r17).
//   1 = exit(code)            — stops the program
//   2 = write(addr, len)      — appends len bytes at addr to the output
#pragma once

#include <cstdint>
#include <vector>

#include "arch/arch_state.h"

namespace tfsim {

inline constexpr std::uint64_t kSysExit = 1;
inline constexpr std::uint64_t kSysWrite = 2;

// Maximum bytes a single write syscall transfers; defends against corrupted
// length registers requesting gigabytes.
inline constexpr std::uint64_t kMaxWriteBytes = 1 << 20;

// Core syscall semantics against explicit state pieces. Returns the r0
// result. Never throws; unknown numbers return (uint64_t)-1 (ENOSYS-style).
std::uint64_t DoSyscallRaw(std::uint64_t number, std::uint64_t a0,
                           std::uint64_t a1, Memory& mem,
                           std::vector<std::uint8_t>& output, bool& exited,
                           std::uint64_t& exit_code);

// Convenience wrapper over a full ArchState (functional simulator path).
void DoSyscall(ArchState& state);

}  // namespace tfsim
