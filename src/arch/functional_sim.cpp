#include "arch/functional_sim.h"

#include "arch/syscall.h"

namespace tfsim {

void LoadProgram(const Program& program, ArchState& state) {
  for (const auto& chunk : program.chunks)
    state.mem.WriteBytes(chunk.addr, chunk.bytes);
  state.pc = program.entry;
}

FunctionalSim::FunctionalSim(const Program& program) {
  LoadProgram(program, state_);
}

RetireEvent FunctionalSim::Step() {
  RetireEvent e;
  e.pc = state_.pc;
  if (!Running()) return e;

  if (!tlb_.LookupInsn(state_.pc)) {
    e.exc = pending_exc_ = Exception::kITlbMiss;
    return e;
  }
  const std::uint32_t word =
      static_cast<std::uint32_t>(state_.mem.Read(state_.pc, 4));
  e.insn = word;
  const DecodedInst d = Decode(word);
  ++insn_count_;

  auto src = [&](std::uint8_t r) { return state_.Reg(r); };

  switch (d.cls) {
    case InsnClass::kIllegal:
      e.exc = pending_exc_ = Exception::kIllegalOpcode;
      return e;

    case InsnClass::kAlu:
    case InsnClass::kAluComplex: {
      const std::uint64_t a = src(d.src1);
      const std::uint64_t b = d.src2 != kNoReg
                                  ? src(d.src2)
                                  : static_cast<std::uint64_t>(d.imm);
      const AluResult r = ExecuteAlu(d, a, b);
      if (r.exc != Exception::kNone) {
        e.exc = pending_exc_ = r.exc;
        return e;
      }
      state_.SetReg(d.dst == kNoReg ? kZeroReg : d.dst, r.value);
      e.dst = d.dst;
      e.value = d.dst != kNoReg ? r.value : 0;
      state_.pc += 4;
      return e;
    }

    case InsnClass::kLoad: {
      const std::uint64_t addr =
          src(d.src1) + static_cast<std::uint64_t>(d.imm);
      if (addr % d.mem_size != 0) {
        e.exc = pending_exc_ = Exception::kUnaligned;
        return e;
      }
      if (!tlb_.LookupData(addr)) {
        e.exc = pending_exc_ = Exception::kDTlbMiss;
        return e;
      }
      std::uint64_t v = state_.mem.Read(addr, d.mem_size);
      if (d.op == Op::kLdl)
        v = static_cast<std::uint64_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(v)));
      state_.SetReg(d.dst == kNoReg ? kZeroReg : d.dst, v);
      e.dst = d.dst;
      e.value = d.dst != kNoReg ? v : 0;
      state_.pc += 4;
      return e;
    }

    case InsnClass::kStore: {
      const std::uint64_t addr =
          src(d.src1) + static_cast<std::uint64_t>(d.imm);
      if (addr % d.mem_size != 0) {
        e.exc = pending_exc_ = Exception::kUnaligned;
        return e;
      }
      if (!tlb_.LookupData(addr)) {
        e.exc = pending_exc_ = Exception::kDTlbMiss;
        return e;
      }
      const std::uint64_t v = src(d.src2);
      state_.mem.Write(addr, v, d.mem_size);
      e.is_store = true;
      e.store_addr = addr;
      e.store_value = v;
      e.store_size = d.mem_size;
      state_.pc += 4;
      return e;
    }

    case InsnClass::kCondBranch: {
      const bool taken = BranchTaken(d.op, src(d.src1));
      state_.pc =
          taken ? state_.pc + 4 + static_cast<std::uint64_t>(d.imm) * 4
                : state_.pc + 4;
      return e;
    }

    case InsnClass::kBr:
    case InsnClass::kBsr: {
      const std::uint64_t link = state_.pc + 4;
      state_.SetReg(d.dst == kNoReg ? kZeroReg : d.dst, link);
      e.dst = d.dst;
      e.value = d.dst != kNoReg ? link : 0;
      state_.pc += 4 + static_cast<std::uint64_t>(d.imm) * 4;
      return e;
    }

    case InsnClass::kJmp:
    case InsnClass::kJsr:
    case InsnClass::kRet: {
      const std::uint64_t target = src(d.src1) & ~3ULL;
      const std::uint64_t link = state_.pc + 4;
      state_.SetReg(d.dst == kNoReg ? kZeroReg : d.dst, link);
      e.dst = d.dst;
      e.value = d.dst != kNoReg ? link : 0;
      state_.pc = target;
      return e;
    }

    case InsnClass::kSyscall: {
      DoSyscall(state_);
      e.is_syscall = true;
      e.dst = 0;
      e.value = state_.Reg(0);
      state_.pc += 4;
      return e;
    }
  }
  e.exc = pending_exc_ = Exception::kIllegalOpcode;
  return e;
}

std::uint64_t FunctionalSim::Run(std::uint64_t max_insns) {
  std::uint64_t n = 0;
  while (n < max_insns && Running()) {
    Step();
    ++n;
  }
  return n;
}

}  // namespace tfsim
