#include "arch/memory.h"

#include <cstring>

#include "util/rng.h"

namespace tfsim {
namespace {

std::uint64_t WordContribution(std::uint64_t aligned_addr,
                               std::uint64_t value) {
  return value == 0 ? 0 : Mix64(aligned_addr ^ Mix64(value));
}

}  // namespace

const Memory::Page* Memory::FindPage(std::uint64_t page_index) const {
  if (page_index == cached_index_) return cached_page_;
  const auto it = pages_.find(page_index);
  if (it == pages_.end()) return nullptr;
  cached_index_ = page_index;
  cached_page_ = it->second.get();
  return cached_page_;
}

Memory::Page& Memory::EnsurePage(std::uint64_t page_index) {
  if (page_index == cached_index_) return *cached_page_;
  auto& slot = pages_[page_index];
  if (!slot) {
    slot = std::make_unique<Page>();
    slot->fill(0);
  }
  cached_index_ = page_index;
  cached_page_ = slot.get();
  return *slot;
}

std::uint64_t Memory::AlignedWord(std::uint64_t aligned_addr) const {
  const Page* page = FindPage(aligned_addr / kPageBytes);
  if (!page) return 0;
  std::uint64_t v;
  std::memcpy(&v, page->data() + aligned_addr % kPageBytes, 8);
  return v;
}

std::uint8_t Memory::ReadByte(std::uint64_t addr) const {
  const Page* page = FindPage(addr / kPageBytes);
  return page ? (*page)[addr % kPageBytes] : 0;
}

void Memory::WriteByte(std::uint64_t addr, std::uint8_t value) {
  const std::uint64_t aligned = addr & ~7ULL;
  const std::uint64_t before = AlignedWord(aligned);
  Page& page = EnsurePage(addr / kPageBytes);
  page[addr % kPageBytes] = value;
  const std::uint64_t after = AlignedWord(aligned);
  hash_ ^= WordContribution(aligned, before) ^ WordContribution(aligned, after);
}

std::uint64_t Memory::Read(std::uint64_t addr, int size) const {
  // Fast path: access contained in one page.
  if (addr % kPageBytes + static_cast<std::uint64_t>(size) <= kPageBytes) {
    const Page* page = FindPage(addr / kPageBytes);
    if (!page) return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, page->data() + addr % kPageBytes,
                static_cast<std::size_t>(size));
    return v;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < size; ++i)
    v |= static_cast<std::uint64_t>(ReadByte(addr + static_cast<std::uint64_t>(i))) << (8 * i);
  return v;
}

void Memory::Write(std::uint64_t addr, std::uint64_t value, int size) {
  for (int i = 0; i < size; ++i)
    WriteByte(addr + static_cast<std::uint64_t>(i),
              static_cast<std::uint8_t>(value >> (8 * i)));
}

void Memory::WriteBytes(std::uint64_t addr,
                        std::span<const std::uint8_t> bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i)
    WriteByte(addr + i, bytes[i]);
}

std::vector<std::uint8_t> Memory::ReadBytes(std::uint64_t addr,
                                            std::size_t n) const {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = ReadByte(addr + i);
  return out;
}

Memory Memory::Clone() const {
  Memory copy;
  copy.hash_ = hash_;
  copy.cached_index_ = ~0ULL;
  copy.cached_page_ = nullptr;
  for (const auto& [index, page] : pages_)
    copy.pages_[index] = std::make_unique<Page>(*page);
  return copy;
}

std::vector<std::uint64_t> Memory::MappedPageIndices() const {
  std::vector<std::uint64_t> out;
  out.reserve(pages_.size());
  for (const auto& [index, page] : pages_) out.push_back(index);
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Memory::DiffWords(
    const Memory& base) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  static const Page kZeroPage{};
  for (const auto& [index, page] : pages_) {
    const Page* theirs = base.FindPage(index);
    if (theirs == nullptr) theirs = &kZeroPage;  // unmapped base reads as 0
    if (std::memcmp(page->data(), theirs->data(), kPageBytes) == 0) continue;
    for (std::uint64_t off = 0; off < kPageBytes; off += 8) {
      std::uint64_t mine, base_word;
      std::memcpy(&mine, page->data() + off, 8);
      std::memcpy(&base_word, theirs->data() + off, 8);
      if (mine != base_word) out.emplace_back(index * kPageBytes + off, mine);
    }
  }
  return out;
}

bool Memory::operator==(const Memory& other) const {
  if (hash_ != other.hash_) return false;
  // Hash equality is the fast path; verify bytes for the (test-only) cases
  // where exactness matters.
  for (const auto& [index, page] : pages_) {
    const Page* theirs = other.FindPage(index);
    if (!theirs) {
      for (std::uint8_t b : *page)
        if (b) return false;
      continue;
    }
    if (std::memcmp(page->data(), theirs->data(), kPageBytes) != 0)
      return false;
  }
  for (const auto& [index, page] : other.pages_) {
    if (!FindPage(index)) {
      for (std::uint8_t b : *page)
        if (b) return false;
    }
  }
  return true;
}

}  // namespace tfsim
