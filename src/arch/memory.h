// Sparse paged memory image with an incremental content hash.
//
// The fault-injection methodology requires deciding, every cycle, whether the
// ENTIRE machine state of a faulty run equals the golden run's. Large
// background arrays (this memory image, cache arrays, predictor tables) make
// per-cycle re-hashing prohibitive, so Memory maintains an order-independent
// content hash incrementally: each aligned 8-byte word at address A with
// non-zero value V contributes Mix64(A ^ Mix64(V)) XORed into the hash, and
// every write updates the hash in O(1). Two Memory images are equal iff their
// hashes are equal (up to negligible collision probability), regardless of
// the order in which they were written.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

namespace tfsim {

inline constexpr std::uint64_t kPageBytes = 8192;

class Memory {
 public:
  Memory() = default;

  // Byte-granularity accessors. Reads of unmapped addresses return zero;
  // writes allocate pages on demand.
  std::uint8_t ReadByte(std::uint64_t addr) const;
  void WriteByte(std::uint64_t addr, std::uint8_t value);

  // Little-endian multi-byte accessors; size in {1,2,4,8}. Addresses may be
  // unaligned (callers enforce architectural alignment rules themselves).
  std::uint64_t Read(std::uint64_t addr, int size) const;
  void Write(std::uint64_t addr, std::uint64_t value, int size);

  void WriteBytes(std::uint64_t addr, std::span<const std::uint8_t> bytes);
  std::vector<std::uint8_t> ReadBytes(std::uint64_t addr,
                                      std::size_t n) const;

  // Order-independent content hash over all bytes (zero bytes contribute
  // nothing, so untouched/zero pages are free).
  std::uint64_t ContentHash() const { return hash_; }

  // Deep copy for checkpointing.
  Memory Clone() const;

  // Number of mapped pages (diagnostics).
  std::size_t MappedPages() const { return pages_.size(); }

  // Pages that currently exist, as page indices (addr / kPageBytes).
  std::vector<std::uint64_t> MappedPageIndices() const;

  // Aligned 8-byte words whose value here differs from `base`, as
  // (address, value-here) pairs in ascending address order. Requires every
  // page mapped in `base` to also be mapped here — true whenever this image
  // evolved from `base` by simulation, since pages are never unmapped.
  // Replaying the pairs onto a copy of `base` (Write(addr, value, 8))
  // reproduces this image exactly, hash included.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> DiffWords(
      const Memory& base) const;

  bool operator==(const Memory& other) const;

 private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  const Page* FindPage(std::uint64_t page_index) const;
  Page& EnsurePage(std::uint64_t page_index);

  // Reads the aligned 8-byte word containing addr.
  std::uint64_t AlignedWord(std::uint64_t aligned_addr) const;

  std::map<std::uint64_t, std::unique_ptr<Page>> pages_;
  std::uint64_t hash_ = 0;
  // One-entry lookup cache (instruction fetch and data accesses are highly
  // page-local); page storage is stable once allocated.
  mutable std::uint64_t cached_index_ = ~0ULL;
  mutable Page* cached_page_ = nullptr;
};

}  // namespace tfsim
