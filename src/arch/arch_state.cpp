#include "arch/arch_state.h"

#include <cstdio>

#include "util/rng.h"

namespace tfsim {

std::uint64_t ArchState::Hash() const {
  std::uint64_t h = mem.ContentHash();
  for (int r = 0; r < kNumArchRegs; ++r)
    h ^= Mix64((static_cast<std::uint64_t>(r) << 56) ^ Mix64(regs[static_cast<std::size_t>(r)] + 1));
  h ^= Mix64(pc ^ 0x5043ULL);
  std::uint64_t oh = 0xdeadbeef;
  for (std::uint8_t b : output) oh = Mix64(oh ^ b);
  return h ^ oh;
}

std::string ToString(const RetireEvent& e) {
  char buf[160];
  std::snprintf(
      buf, sizeof buf,
      "pc=0x%llx insn=0x%08x %s dst=%d val=0x%llx%s%s exc=%s",
      static_cast<unsigned long long>(e.pc), e.insn,
      Disassemble(e.insn, e.pc).c_str(), e.dst == kNoReg ? -1 : e.dst,
      static_cast<unsigned long long>(e.value), e.is_store ? " store" : "",
      e.is_syscall ? " syscall" : "", ExceptionName(e.exc));
  return buf;
}

}  // namespace tfsim
