// Functional (architectural) simulator.
//
// Plays three roles in the reproduction:
//   1. Golden architectural reference for the pipeline model: during golden
//      recording, the pipeline's retire stream is asserted identical to this
//      simulator's execution.
//   2. The substrate for the Section 5 experiments (SimpleScalar stand-in),
//      via the per-instruction fault hooks in soft/soft_inject.
//   3. A fast executor for workload development and tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "arch/arch_state.h"
#include "arch/tlb.h"
#include "isa/assemble.h"
#include "isa/isa.h"

namespace tfsim {

// Loads a program image into state memory and sets pc to the entry point.
void LoadProgram(const Program& program, ArchState& state);

class FunctionalSim {
 public:
  explicit FunctionalSim(const Program& program);

  // Executes exactly one instruction. Returns the retire event (which records
  // any synchronous exception). After an exception or exit the simulator
  // refuses further steps (Running() is false).
  RetireEvent Step();

  // Runs until exit/exception or the instruction limit. Returns the number
  // of instructions executed.
  std::uint64_t Run(std::uint64_t max_insns);

  bool Running() const {
    return !state_.exited && pending_exc_ == Exception::kNone;
  }
  Exception pending_exception() const { return pending_exc_; }

  ArchState& state() { return state_; }
  const ArchState& state() const { return state_; }
  Tlb& tlb() { return tlb_; }
  std::uint64_t InsnCount() const { return insn_count_; }

 private:
  ArchState state_;
  Tlb tlb_;
  Exception pending_exc_ = Exception::kNone;
  std::uint64_t insn_count_ = 0;
};

}  // namespace tfsim
