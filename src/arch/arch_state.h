// Architectural (program-visible) state and the retire-event record used to
// compare the detailed pipeline against the functional reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/memory.h"
#include "isa/isa.h"

namespace tfsim {

// Program-visible machine state: 32 integer registers (r31 reads zero),
// program counter, memory image, and the I/O side effects of syscalls.
struct ArchState {
  std::array<std::uint64_t, kNumArchRegs> regs{};
  std::uint64_t pc = 0;
  Memory mem;
  std::vector<std::uint8_t> output;  // bytes emitted via the write syscall
  bool exited = false;
  std::uint64_t exit_code = 0;

  std::uint64_t Reg(int r) const {
    return r == kZeroReg ? 0 : regs[static_cast<std::size_t>(r & 31)];
  }
  void SetReg(int r, std::uint64_t v) {
    if (r != kZeroReg) regs[static_cast<std::size_t>(r & 31)] = v;
  }

  // Hash of registers + pc + memory + output; equality of the hash is the
  // architectural-state-convergence test of the Section 5 experiments.
  std::uint64_t Hash() const;
};

// One architecturally retired instruction. The pipeline's retire stream is
// compared event-by-event against the functional simulator's stream; any
// divergence is an architectural failure classified per the paper's Table 2.
struct RetireEvent {
  std::uint64_t pc = 0;
  std::uint32_t insn = 0;
  std::uint8_t dst = kNoReg;     // architectural register written (or none)
  std::uint64_t value = 0;       // value written to dst
  bool is_store = false;
  std::uint64_t store_addr = 0;
  std::uint64_t store_value = 0;
  std::uint8_t store_size = 0;
  bool is_syscall = false;
  Exception exc = Exception::kNone;

  bool operator==(const RetireEvent&) const = default;
};

std::string ToString(const RetireEvent& e);

}  // namespace tfsim
