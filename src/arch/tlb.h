// Translation lookaside buffer model.
//
// The paper preloads both TLBs with every page the workload touches in a
// fault-free run, so that any TLB miss observed during an injected trial
// signals a potentially illegal access (classified itlb/dtlb, both SDC).
// We model exactly that: a Tlb is a set of permitted page indices per side
// (instruction / data). In learning mode accesses populate the sets; in
// checking mode an access outside the sets reports a miss.
#pragma once

#include <cstdint>
#include <unordered_set>

namespace tfsim {

class Tlb {
 public:
  // While learning, every access is permitted and recorded.
  void SetLearning(bool learning) { learning_ = learning; }
  bool learning() const { return learning_; }

  // Returns true when the page holding addr is mapped on the given side.
  bool LookupInsn(std::uint64_t addr);
  bool LookupData(std::uint64_t addr);

  std::size_t InsnPages() const { return ipages_.size(); }
  std::size_t DataPages() const { return dpages_.size(); }

 private:
  bool Lookup(std::unordered_set<std::uint64_t>& pages, std::uint64_t addr);

  std::unordered_set<std::uint64_t> ipages_;
  std::unordered_set<std::uint64_t> dpages_;
  bool learning_ = true;
};

}  // namespace tfsim
