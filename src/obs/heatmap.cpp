#include "obs/heatmap.h"

#include <algorithm>
#include <cstdio>

#include "obs/export_meta.h"
#include "obs/json_writer.h"

namespace tfsim::obs {

namespace {

const char* StorageName(Storage s) {
  return s == Storage::kLatch ? "latch" : s == Storage::kRam ? "ram"
                                                             : "background";
}

void WriteLatencyJson(JsonWriter& w, std::string_view key,
                      const VulnerabilityHeatmap::Latency& l) {
  w.BeginObject(key);
  w.Field("n", l.n);
  w.Field("silent", l.silent);
  w.Field("sum_cycles", l.sum);
  if (l.n) {
    w.Field("min", l.min);
    w.Field("max", l.max);
    w.Field("mean", l.Mean());
  }
  w.Field("bucket_width", VulnerabilityHeatmap::kLatencyBucketWidth);
  w.BeginArray("buckets");
  for (std::uint64_t b : l.buckets) w.Value(b);
  w.End();
  w.End();
}

}  // namespace

void VulnerabilityHeatmap::Latency::Add(std::int64_t cycle) {
  if (cycle == kNotTraced) return;
  if (cycle < 0) {
    ++silent;
    return;
  }
  const std::uint64_t c = static_cast<std::uint64_t>(cycle);
  if (n == 0 || c < min) min = c;
  if (n == 0 || c > max) max = c;
  ++n;
  sum += c;
  const std::size_t b = static_cast<std::size_t>(c / kLatencyBucketWidth);
  buckets[b < kLatencyBuckets ? b : kLatencyBuckets]++;
}

std::uint64_t VulnerabilityHeatmap::Cell::Failures() const {
  return outcomes[static_cast<int>(Outcome::kSdc)] +
         outcomes[static_cast<int>(Outcome::kTerminated)];
}

void VulnerabilityHeatmap::Add(const Sample& s) {
  Cell& c = cells_[s.field];
  if (c.trials == 0) {
    c.cat = s.cat;
    c.storage = s.storage;
    c.bits = s.field_bits;
  } else if (c.bits == 0 && s.field_bits) {
    c.bits = s.field_bits;
  }
  ++c.trials;
  ++trials_;
  ++c.outcomes[static_cast<int>(s.outcome)];
  ++c.modes[static_cast<int>(s.mode)];
  c.arch_divergence.Add(s.arch_divergence_cycle);
  c.first_spread.Add(s.first_spread_cycle);
}

std::uint64_t VulnerabilityHeatmap::failures() const {
  std::uint64_t f = 0;
  for (const auto& [name, c] : cells_) f += c.Failures();
  return f;
}

std::vector<VulnerabilityHeatmap::CategoryShare>
VulnerabilityHeatmap::CategoryContributions() const {
  std::array<CategoryShare, kNumStateCats> by_cat{};
  for (int i = 0; i < kNumStateCats; ++i)
    by_cat[static_cast<std::size_t>(i)].cat = static_cast<StateCat>(i);
  for (const auto& [name, c] : cells_) {
    auto& share = by_cat[static_cast<std::size_t>(c.cat)];
    share.trials += c.trials;
    share.failures += c.Failures();
  }
  std::vector<CategoryShare> out;
  for (const auto& s : by_cat)
    if (s.trials) out.push_back(s);
  std::sort(out.begin(), out.end(),
            [](const CategoryShare& a, const CategoryShare& b) {
              if (a.failures != b.failures) return a.failures > b.failures;
              return std::string_view(StateCatName(a.cat)) <
                     std::string_view(StateCatName(b.cat));
            });
  return out;
}

void VulnerabilityHeatmap::WriteJson(std::ostream& os,
                                     std::string_view workload,
                                     std::string_view generated_at) const {
  const std::uint64_t total_failures = failures();
  JsonWriter w(os);
  w.BeginObject();
  w.Field("schema_version", kObsSchemaVersion);
  w.Field("generated_at",
          generated_at.empty() ? Rfc3339Now() : std::string(generated_at));
  if (!workload.empty()) w.Field("workload", workload);
  w.Field("trials", trials_);
  w.Field("failures", total_failures);

  w.BeginArray("fields");
  for (const auto& [name, c] : cells_) {
    w.BeginObject();
    w.Field("field", name);
    w.Field("category", StateCatName(c.cat));
    w.Field("storage", StorageName(c.storage));
    w.Field("bits", c.bits);
    w.Field("trials", c.trials);
    w.BeginObject("outcomes");
    for (int o = 0; o < kNumOutcomes; ++o)
      w.Field(OutcomeName(static_cast<Outcome>(o)), c.outcomes[o]);
    w.End();
    w.BeginObject("failure_modes");
    for (int m = 0; m < kNumFailureModes; ++m)
      if (c.modes[m])
        w.Field(FailureModeName(static_cast<FailureMode>(m)), c.modes[m]);
    w.End();
    w.Field("failures", c.Failures());
    w.Field("failure_share",
            total_failures ? static_cast<double>(c.Failures()) /
                                 static_cast<double>(total_failures)
                           : 0.0);
    WriteLatencyJson(w, "arch_divergence", c.arch_divergence);
    WriteLatencyJson(w, "first_spread", c.first_spread);
    w.End();
  }
  w.End();

  // Figure 8 rollup, already in contribution order.
  w.BeginArray("categories");
  for (const CategoryShare& s : CategoryContributions()) {
    w.BeginObject();
    w.Field("category", StateCatName(s.cat));
    w.Field("trials", s.trials);
    w.Field("failures", s.failures);
    w.Field("failure_share",
            total_failures ? static_cast<double>(s.failures) /
                                 static_cast<double>(total_failures)
                           : 0.0);
    w.End();
  }
  w.End();

  w.End();
  os << '\n';
}

void VulnerabilityHeatmap::WriteCsv(std::ostream& os) const {
  const std::uint64_t total_failures = failures();
  os << "field,category,storage,bits,trials,match,terminated,sdc,gray,"
        "trial_error,failures,failure_share,div_n,div_silent,div_sum,"
        "spread_n,spread_silent,spread_sum\n";
  for (const auto& [name, c] : cells_) {
    os << name << ',' << StateCatName(c.cat) << ',' << StorageName(c.storage)
       << ',' << c.bits << ',' << c.trials;
    for (int o = 0; o < kNumOutcomes; ++o) os << ',' << c.outcomes[o];
    os << ',' << c.Failures() << ',';
    char share[32];
    std::snprintf(share, sizeof(share), "%.6f",
                  total_failures ? static_cast<double>(c.Failures()) /
                                       static_cast<double>(total_failures)
                                 : 0.0);
    os << share << ',' << c.arch_divergence.n << ',' << c.arch_divergence.silent
       << ',' << c.arch_divergence.sum << ',' << c.first_spread.n << ','
       << c.first_spread.silent << ',' << c.first_spread.sum << '\n';
  }
}

}  // namespace tfsim::obs
