// Per-StateRegistry-field vulnerability heatmap: outcome and failure-mode
// counts plus propagation-latency histograms, aggregated per injected field
// (name/category/storage-class). This generalizes the paper's Figure 8 —
// per-*category* contribution to failures — down to field granularity: the
// category rollup of this aggregator reproduces Figure 8's ordering, and the
// per-field cells show *which structure inside* a category carries its
// vulnerability.
//
// Inputs are one Sample per trial: the injection site (from the registry's
// BitLocation for the trial's bit index) joined with the trial record, and —
// when the campaign collected propagation traces — the first-spread /
// arch-divergence latencies from the trace.
//
// Determinism: cells hold only integer counts and sums (no floating-point
// accumulation), keyed by field name in a sorted map, so aggregating the
// same trials in any order — live from the event stream at any --jobs value,
// or post-hoc from a (possibly cached) CampaignResult — renders byte-
// identical JSON/CSV.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "inject/outcome.h"

namespace tfsim::obs {

class VulnerabilityHeatmap {
 public:
  // Latency histograms: fixed linear buckets + overflow, in cycles.
  static constexpr std::uint64_t kLatencyBucketWidth = 64;
  static constexpr std::size_t kLatencyBuckets = 32;
  // Sentinel for "campaign did not trace propagation" (vs -1 = traced and
  // observed silent for the whole window).
  static constexpr std::int64_t kNotTraced = -2;

  struct Sample {
    std::string field;  // registry field name of the injected bit
    StateCat cat = StateCat::kCtrl;
    Storage storage = Storage::kLatch;
    std::uint64_t field_bits = 0;  // injectable bits of the field
    Outcome outcome = Outcome::kGrayArea;
    FailureMode mode = FailureMode::kNoFailure;
    std::uint32_t cycles = 0;  // cycles to classification
    std::int64_t arch_divergence_cycle = kNotTraced;
    std::int64_t first_spread_cycle = kNotTraced;
  };

  // One latency distribution: integer count/sum/min/max plus fixed buckets
  // (order-independent, so the export is deterministic at any job count).
  struct Latency {
    std::uint64_t n = 0;        // trials with an observed (>= 0) latency
    std::uint64_t silent = 0;   // traced trials that never exhibited it
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kLatencyBuckets + 1> buckets{};

    void Add(std::int64_t cycle);
    double Mean() const {
      return n ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
    }
  };

  struct Cell {
    StateCat cat = StateCat::kCtrl;
    Storage storage = Storage::kLatch;
    std::uint64_t bits = 0;
    std::uint64_t trials = 0;
    std::array<std::uint64_t, kNumOutcomes> outcomes{};
    std::array<std::uint64_t, kNumFailureModes> modes{};
    Latency arch_divergence;
    Latency first_spread;

    // SDC + Terminated trials (the paper's failure count).
    std::uint64_t Failures() const;
  };

  void Add(const Sample& s);

  std::uint64_t trials() const { return trials_; }
  std::uint64_t failures() const;
  const std::map<std::string, Cell>& cells() const { return cells_; }

  // Figure 8 rollup: per-category (trials, failures), ordered by failures
  // descending (ties by category name ascending) — the canonical
  // "contribution to failures" ordering the acceptance test compares
  // against bench_fig8_contributions.
  struct CategoryShare {
    StateCat cat = StateCat::kCtrl;
    std::uint64_t trials = 0;
    std::uint64_t failures = 0;
  };
  std::vector<CategoryShare> CategoryContributions() const;

  // Canonical JSON export: schema_version/generated_at header fields, the
  // sorted per-field cells, and the category rollup. `generated_at` empty =
  // current wall clock (tests pass a fixed stamp for byte-stable goldens).
  void WriteJson(std::ostream& os, std::string_view workload = {},
                 std::string_view generated_at = {}) const;

  // CSV flattening of the same cells, one row per field.
  void WriteCsv(std::ostream& os) const;

 private:
  std::map<std::string, Cell> cells_;
  std::uint64_t trials_ = 0;
};

}  // namespace tfsim::obs
