#include "obs/prop_trace.h"

#include "obs/json_writer.h"

namespace tfsim::obs {

void WritePropTraceRow(const PropagationTrace& t, const std::string& workload,
                       std::uint64_t trial_index, std::ostream& os) {
  JsonWriter w(os);
  w.BeginObject();
  w.Field("workload", workload);
  w.Field("trial", trial_index);
  w.Field("field", t.field);
  w.Field("category", StateCatName(t.cat));
  w.Field("storage", t.storage == Storage::kLatch ? "latch" : "ram");
  w.Field("bit", static_cast<std::uint64_t>(t.bit));
  w.Field("flips", t.flips);
  w.Field("outcome", OutcomeName(t.outcome));
  w.Field("failure_mode", FailureModeName(t.mode));
  w.Field("classified_cycle", static_cast<std::uint64_t>(t.classified_cycle));
  w.Field("arch_divergence_cycle",
          static_cast<std::int64_t>(t.arch_divergence_cycle));
  w.Field("first_spread_cycle",
          static_cast<std::int64_t>(t.first_spread_cycle));
  if (t.first_spread_cycle >= 0)
    w.Field("first_spread_category", StateCatName(t.first_spread_cat));
  w.BeginArray("cats_touched");
  for (int c = 0; c < kNumStateCats; ++c)
    if (t.Touched(static_cast<StateCat>(c)))
      w.Value(std::string_view(StateCatName(static_cast<StateCat>(c))));
  w.End();
  w.Field("invariant_violations", t.invariant_violations);
  if (t.invariant_violations != 0) {
    w.Field("first_violation_cycle", t.first_violation_cycle);
    w.Field("first_violation_kind", t.first_violation_kind);
  }
  w.Field("valid_instrs", static_cast<std::uint64_t>(t.valid_instrs));
  w.Field("inflight", static_cast<std::uint64_t>(t.inflight));
  w.End();
  os << '\n';
}

}  // namespace tfsim::obs
