#include "obs/status_server.h"

#include <cstdlib>
#include <sstream>

#include "obs/export_meta.h"
#include "obs/json_writer.h"

namespace tfsim::obs {

CampaignStatusServer::~CampaignStatusServer() { Stop(); }

bool CampaignStatusServer::Start(std::uint16_t port, EventJournal& journal,
                                 std::string* error) {
  if (!http_.Start(port, [this](const HttpRequest& r) { return Handle(r); },
                   error))
    return false;
  journal_ = &journal;
  journal.AddSink(this);
  return true;
}

void CampaignStatusServer::Stop() {
  if (journal_) {
    journal_->RemoveSink(this);
    journal_ = nullptr;
  }
  http_.Stop();
}

void CampaignStatusServer::OnEvent(const Event& e) {
  std::lock_guard<std::mutex> lock(mu_);
  last_ts_us_ = e.ts_us;
  switch (e.kind) {
    case EventKind::kCampaignStart:
      campaign_ = e.detail;
      workload_ = e.field;
      total_ = e.value;
      done_ = 0;
      quarantined_ = 0;
      timeouts_ = 0;
      crashes_ = 0;
      start_ts_us_ = e.ts_us;
      finished_ = false;
      interrupted_ = false;
      outcomes_ = {};
      // A suite reuses one server across campaigns; the heatmap keeps
      // accumulating (it is keyed by field, not by campaign).
      break;
    case EventKind::kCacheHit:
      done_ = e.value;
      break;
    case EventKind::kTrialDone: {
      ++done_;
      ++outcomes_[static_cast<int>(e.outcome)];
      VulnerabilityHeatmap::Sample s;
      s.field = e.field;
      s.cat = e.cat;
      s.storage = e.storage;
      s.field_bits = e.field_bits;
      s.outcome = e.outcome;
      s.mode = e.mode;
      s.cycles = e.cycles;
      s.arch_divergence_cycle = e.arch_divergence_cycle;
      s.first_spread_cycle = e.first_spread_cycle;
      heatmap_.Add(s);
      break;
    }
    case EventKind::kTrialQuarantine:
      ++quarantined_;
      break;
    case EventKind::kTrialTimeout:
      ++quarantined_;
      ++timeouts_;
      break;
    case EventKind::kTrialCrash:
      ++quarantined_;
      ++crashes_;
      break;
    case EventKind::kMetricsSnapshot:
      metrics_json_ = e.detail;
      break;
    case EventKind::kCampaignFinish:
      if (e.value > done_) done_ = e.value;  // resumed-prefix trials
      finished_ = true;
      interrupted_ = e.interrupted;
      break;
    default:
      break;
  }
}

std::string CampaignStatusServer::ProgressJson() const {
  const double elapsed_s =
      static_cast<double>(last_ts_us_ - start_ts_us_) * 1e-6;
  const double rate =
      done_ ? static_cast<double>(done_) /
                  (elapsed_s > 1e-6 ? elapsed_s : 1e-6)
            : 0.0;
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Field("schema_version", kObsSchemaVersion);
  w.Field("generated_at", Rfc3339Now());
  w.Field("campaign", campaign_);
  w.Field("workload", workload_);
  w.Field("trials_total", total_);
  w.Field("trials_done", done_);
  w.Field("quarantined", quarantined_);
  w.Field("timeouts", timeouts_);
  w.Field("crashes", crashes_);
  w.BeginObject("outcomes");
  for (int o = 0; o < kNumOutcomes; ++o)
    w.Field(OutcomeName(static_cast<Outcome>(o)), outcomes_[o]);
  w.End();
  w.Field("elapsed_seconds", elapsed_s);
  w.Field("trials_per_sec", rate);
  w.Field("eta_seconds",
          rate > 0 && total_ > done_
              ? static_cast<double>(total_ - done_) / rate
              : 0.0);
  w.Field("finished", finished_);
  w.Field("interrupted", interrupted_);
  w.End();
  os << '\n';
  return os.str();
}

HttpResponse CampaignStatusServer::Handle(const HttpRequest& req) {
  HttpResponse resp;
  if (req.path == "/progress") {
    std::lock_guard<std::mutex> lock(mu_);
    resp.body = ProgressJson();
  } else if (req.path == "/metrics") {
    std::lock_guard<std::mutex> lock(mu_);
    resp.body = metrics_json_;
  } else if (req.path == "/heatmap") {
    std::ostringstream os;
    {
      std::lock_guard<std::mutex> lock(mu_);
      heatmap_.WriteJson(os, workload_);
    }
    resp.body = os.str();
  } else if (req.path == "/events") {
    std::size_t tail = 64;
    if (auto it = req.query.find("tail"); it != req.query.end()) {
      const long v = std::atol(it->second.c_str());
      if (v < 0) {
        resp.status = 400;
        resp.body = "{\"error\":\"tail must be >= 0\"}\n";
        return resp;
      }
      tail = static_cast<std::size_t>(v);
    }
    // journal_ only changes on Start/Stop; the handler never runs after
    // Stop() (the listener joins first).
    const std::vector<std::string> lines =
        journal_ ? journal_->Tail(tail) : std::vector<std::string>{};
    // Lines are pre-rendered JSON objects; splice them in verbatim.
    std::ostringstream out;
    out << "{\"schema_version\":" << kObsSchemaVersion << ",\"events\":[";
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (i) out << ',';
      out << lines[i];
    }
    out << "]}\n";
    resp.body = out.str();
  } else {
    resp.status = 404;
    resp.body = "{\"error\":\"unknown endpoint\",\"endpoints\":"
                "[\"/progress\",\"/metrics\",\"/heatmap\",\"/events\"]}\n";
  }
  return resp;
}

}  // namespace tfsim::obs
