#include "obs/export_meta.h"

#include <cstdio>
#include <ctime>

namespace tfsim::obs {

std::string Rfc3339Utc(std::chrono::system_clock::time_point tp) {
  const std::time_t t = std::chrono::system_clock::to_time_t(tp);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                tm.tm_year + 1900, (tm.tm_mon % 12) + 1, tm.tm_mday % 100,
                tm.tm_hour % 100, tm.tm_min % 100, tm.tm_sec % 100);
  return buf;
}

std::string Rfc3339Now() { return Rfc3339Utc(std::chrono::system_clock::now()); }

}  // namespace tfsim::obs
