// Per-trial fault-propagation trace: where an injected bit went and how
// long it took to get there. Recorded during differential execution in
// inject/trial.cpp (at category granularity, using the state registry's
// per-category content hashes against the golden timeline) and exported as
// one JSONL row per trial alongside the aggregate CSVs.
//
// This surfaces the paper's latency and masking story per trial: a fault is
// *architecturally latent* between injection and first architectural
// divergence, and *masked* if it never diverges before re-convergence or
// window expiry.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "inject/outcome.h"

namespace tfsim::obs {

struct PropagationTrace {
  // --- injection site ------------------------------------------------------
  std::string field;                     // registry field name of the bit
  StateCat cat = StateCat::kCtrl;        // injected category
  Storage storage = Storage::kLatch;
  std::uint8_t bit = 0;                  // bit position within the element
  int flips = 1;                         // bits flipped (multi-bit models)

  // --- classification ------------------------------------------------------
  Outcome outcome = Outcome::kGrayArea;
  FailureMode mode = FailureMode::kNoFailure;
  std::uint32_t classified_cycle = 0;  // cycles from injection to verdict

  // --- propagation ---------------------------------------------------------
  // First cycle (from injection) at which the architectural view provably
  // diverged from golden: a retire-event mismatch, an exception, or a
  // retirement-count-aligned architectural-state mismatch. -1 when the fault
  // stayed architecturally silent for the whole observation.
  std::int64_t arch_divergence_cycle = -1;
  // First cycle at which a state category OTHER than the injected one
  // diverged from golden (the fault escaped its home structure). -1 when it
  // never spread.
  std::int64_t first_spread_cycle = -1;
  // Category that first received the spread (valid when first_spread_cycle
  // >= 0).
  StateCat first_spread_cat = StateCat::kCtrl;
  // Bitmask (1 << StateCat) of every category observed divergent from golden
  // at any point before classification. Includes the injected category
  // unless the flip was overwritten before the first end-of-cycle sample.
  std::uint32_t cats_touched_mask = 0;

  // --- self-checking -------------------------------------------------------
  // Structural invariant violations observed by the per-cycle checker during
  // the trial. Only populated when the trial core ran with
  // CoreConfig::check_invariants (checked campaigns); all-zero otherwise.
  std::uint64_t invariant_violations = 0;
  std::int64_t first_violation_cycle = -1;  // cycles from injection; -1 = none
  std::string first_violation_kind;         // InvariantKindName, "" = none

  // --- context -------------------------------------------------------------
  std::uint32_t valid_instrs = 0;  // Figure 6 statistic at injection
  std::uint32_t inflight = 0;

  bool Touched(StateCat c) const {
    return cats_touched_mask & (1u << static_cast<int>(c));
  }
};

// Writes one JSONL row (object + newline). `workload` and `trial_index`
// identify the row within a campaign export.
void WritePropTraceRow(const PropagationTrace& t, const std::string& workload,
                       std::uint64_t trial_index, std::ostream& os);

}  // namespace tfsim::obs
