// Lightweight metrics registry for the simulator's observability layer.
//
// Three instrument kinds, all allocation-free on the hot path:
//   * Counter   — monotonically increasing u64 (squashes, replays, misses,
//                 cache hits, trials by outcome).
//   * Histogram — linear fixed-width buckets plus a RunningStat summary
//                 (mean/min/max/stddev); used for per-cycle structure
//                 occupancies and per-trial latency distributions.
//   * Timer     — accumulated wall-clock nanoseconds + start count; used
//                 for campaign phase timing and the trials/sec figure.
//
// Pipeline code holds raw Counter*/Histogram* handles resolved once at
// registration, so a sample is one pointer dereference and an add. Handles
// are stable for the registry's lifetime (instruments are never removed).
//
// Counters and histograms are pure functions of simulated execution, so two
// identical runs export byte-identical counter/histogram sections — a
// property the test suite pins down. Timers are wall-clock and therefore
// excluded from the deterministic portion of the export.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "util/stats.h"

namespace tfsim::obs {

class Counter {
 public:
  void Inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Histogram {
 public:
  // `bucket_width` sim-units per bucket, `buckets` buckets; samples at or
  // beyond the last edge land in the overflow bucket.
  Histogram(std::uint64_t bucket_width, std::size_t buckets)
      : width_(bucket_width ? bucket_width : 1), counts_(buckets + 1, 0) {}

  void Add(std::uint64_t v) {
    stat_.Add(static_cast<double>(v));
    const std::size_t b = static_cast<std::size_t>(v / width_);
    counts_[b < counts_.size() - 1 ? b : counts_.size() - 1]++;
  }

  const RunningStat& stat() const { return stat_; }
  std::uint64_t bucket_width() const { return width_; }
  // Bucket counts; the final entry is the overflow bucket.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  RunningStat stat_;
  std::uint64_t width_;
  std::vector<std::uint64_t> counts_;
};

class Timer {
 public:
  void Start() { start_ = Clock::now(); }
  void Stop() {
    total_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
    ++count_;
  }
  std::uint64_t total_ns() const { return total_ns_; }
  std::uint64_t count() const { return count_; }
  double Seconds() const { return static_cast<double>(total_ns_) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_{};
  std::uint64_t total_ns_ = 0;
  std::uint64_t count_ = 0;
};

// RAII convenience for Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t) : t_(t) { t_.Start(); }
  ~ScopedTimer() { t_.Stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer& t_;
};

class MetricsRegistry {
 public:
  // Instruments are created on first use and returned by stable reference
  // afterwards (the shape arguments of an existing histogram are kept).
  Counter& GetCounter(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          std::uint64_t bucket_width = 1,
                          std::size_t buckets = 64);
  Timer& GetTimer(const std::string& name);

  // Exports the registry as one JSON object with "counters", "histograms"
  // and (when `include_timers`) "timers" sections, keys sorted by name.
  // Stamped with schema_version, plus an RFC3339 generated_at when timers
  // are included (the timestamp is wall-clock like the timers, so the
  // timer-less export remains byte-deterministic across identical runs).
  void WriteJson(std::ostream& os, bool include_timers = true) const;

  std::size_t InstrumentCount() const {
    return counters_.size() + histograms_.size() + timers_.size();
  }

 private:
  // std::map keeps the export deterministically name-sorted; unique_ptr
  // keeps handed-out instrument pointers stable.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace tfsim::obs
