// Bundle of optional observability sinks threaded through the core and the
// injection engine. All pointers may be null; a null sink costs the host one
// pointer test per cycle. Forward declarations only, so hot headers (core.h,
// golden.h) don't pull the full obs implementation in.
#pragma once

#include <cstdint>

namespace tfsim::obs {

class MetricsRegistry;
class ChromeTraceWriter;
class Counter;
class Histogram;
class Timer;
class EventJournal;

struct ObsSinks {
  MetricsRegistry* metrics = nullptr;
  ChromeTraceWriter* chrome = nullptr;
  // Emit one chrome counter sample every this many cycles (occupancy tracks
  // are dense; sampling keeps trace files viewable).
  std::uint64_t chrome_sample_every = 64;

  bool Any() const { return metrics || chrome; }
};

}  // namespace tfsim::obs
