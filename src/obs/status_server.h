// Live campaign status over HTTP/JSON: a CampaignStatusServer subscribes to
// the campaign's EventJournal and serves its aggregated view on a loopback
// HTTP/1.1 listener (util/http). This is the wire format the ROADMAP's
// distributed campaign service (`tfi serve`) is specified to speak — the
// endpoint schemas are documented (and frozen) in EXPERIMENTS.md.
//
//   GET /progress          trials done/total, outcome mix, trials/sec, ETA
//   GET /metrics           the PR 1 metrics-registry JSON (latest snapshot
//                          emitted by the campaign at safe points)
//   GET /heatmap           live per-field vulnerability aggregator snapshot
//   GET /events?tail=N     the last N journal lines as a JSON array
//
// All state is fed exclusively by journal events on the drain thread and
// read by the HTTP thread under one mutex — the campaign workers never see
// the server. Serving (or not serving) requests cannot change trial
// results, and an idle server costs the campaign one event-sink dispatch
// per event.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "obs/events.h"
#include "obs/heatmap.h"
#include "util/http.h"

namespace tfsim::obs {

class CampaignStatusServer : public EventSink {
 public:
  CampaignStatusServer() = default;
  ~CampaignStatusServer() override;

  // Binds 127.0.0.1:`port` (0 = ephemeral; see port()) and subscribes to
  // `journal`. Returns false with a diagnostic on listener failure.
  bool Start(std::uint16_t port, EventJournal& journal,
             std::string* error = nullptr);

  // Unsubscribes and stops the listener. Idempotent; also run by the dtor.
  void Stop();

  bool running() const { return http_.running(); }
  std::uint16_t port() const { return http_.port(); }

  // EventSink (drain thread).
  void OnEvent(const Event& e) override;

 private:
  HttpResponse Handle(const HttpRequest& req);
  std::string ProgressJson() const;  // caller holds mu_

  HttpServer http_;
  EventJournal* journal_ = nullptr;

  mutable std::mutex mu_;
  // Campaign progress state (all guarded by mu_).
  std::string campaign_;
  std::string workload_;
  std::uint64_t total_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t quarantined_ = 0;  // all reasons (exception/timeout/crash)
  std::uint64_t timeouts_ = 0;     // watchdog (kTrialTimeout) subset
  std::uint64_t crashes_ = 0;      // isolated-worker (kTrialCrash) subset
  std::uint64_t start_ts_us_ = 0;
  std::uint64_t last_ts_us_ = 0;
  bool finished_ = false;
  bool interrupted_ = false;
  std::array<std::uint64_t, kNumOutcomes> outcomes_{};
  VulnerabilityHeatmap heatmap_;
  std::string metrics_json_ = "{}\n";
};

}  // namespace tfsim::obs
