// Structured campaign event journal: every campaign-level happening
// (start/finish, golden recorded, cache hit/store, per-trial completion with
// outcome and wall time, retry/quarantine/timeout/crash, checkpoint flush,
// cancellation) becomes one typed Event, pushed into a bounded in-memory
// queue and drained by a dedicated writer thread. Trial workers therefore
// never perform journal I/O, and Emit() never blocks: when the queue is full
// behind a slow sink, the oldest queued event is dropped and counted
// (dropped(); surfaced as `events_dropped` on the campaign_finish footer and
// the campaign.events.dropped metric) — telemetry loss is bounded and
// observable, but it can never stall trial execution.
//
// Consumers subscribe as EventSinks and run on the drain thread, in emit
// order (event timestamps are assigned under the queue lock, so the stream
// is monotone in ts_us). The shipped sinks:
//   * JsonlEventSink — one JSON object per line after a schema_version
//     header; the on-disk wire format of `tfi campaign --events-jsonl`.
//   * ProgressSink   — the `--progress` stderr lines, reimplemented as a
//     journal consumer (monotonic trials/sec, ETA, final summary line even
//     on cancellation).
//   * CampaignStatusServer (status_server.h) — live /progress, /heatmap and
//     /events?tail=N endpoints.
//
// Determinism: the journal is pure telemetry. Campaign trial records,
// classification counts and cache keys are byte-identical with the journal
// attached or absent, at any --jobs value (pinned by tests/test_telemetry).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "inject/outcome.h"

namespace tfsim::obs {

enum class EventKind : std::uint8_t {
  kCampaignStart,     // detail=cache key, field=workload, value=planned trials
  kGoldenDone,        // golden run recorded; value=checkpoints
  kCacheHit,          // results loaded from the on-disk cache; value=trials
  kCacheStore,        // completed results stored; value=trials
  kTrialDone,         // one trial classified; full injection-site payload
  kTrialRetry,        // an execution attempt threw; value=attempt, detail=why
  kTrialQuarantine,   // all attempts failed (or an invariant tripped)
  kCheckpointFlush,   // journal flushed; value=contiguous prefix size
  kCancelRequested,   // cooperative cancellation observed by the campaign
  kMetricsSnapshot,   // detail=metrics registry JSON at a safe point (served
                      // by /metrics; skipped by the JSONL file sink)
  kCampaignFinish,    // value=trials kept; interrupted flag set on cancel;
                      // dropped=events shed by the queue (the journal footer)
  kTrialTimeout,      // watchdog quarantine: the trial exceeded the deadline
                      // (value=timeout ms, detail=diagnostic)
  kTrialCrash,        // isolated worker died mid-trial (value=signal or exit
                      // status, detail=diagnostic); trial quarantined
  kCheckpointDisabled,// journal flush failed after retries; checkpointing is
                      // off for the rest of the run (detail=why)
};
inline constexpr int kNumEventKinds = 14;
const char* EventKindName(EventKind k);

struct Event {
  EventKind kind = EventKind::kCampaignStart;
  std::uint64_t ts_us = 0;  // microseconds since journal creation (monotonic;
                            // stamped by Emit under the queue lock)
  std::int64_t trial = -1;  // trial index, -1 when not trial-scoped

  // Trial payload (kTrialDone; also cat/storage defaults elsewhere).
  Outcome outcome = Outcome::kGrayArea;
  FailureMode mode = FailureMode::kNoFailure;
  StateCat cat = StateCat::kCtrl;
  Storage storage = Storage::kLatch;
  std::uint32_t cycles = 0;       // cycles to classification
  std::uint64_t dur_us = 0;       // trial wall time
  std::string field;              // injected registry field (kTrialDone) or
                                  // workload name (kCampaignStart)
  std::uint64_t field_bits = 0;   // injectable bits of that field
  // Propagation latencies joined from the trial's trace when the campaign
  // collects prop traces; kNotTraced otherwise (-1 = observed silent).
  static constexpr std::int64_t kNotTraced = -2;
  std::int64_t arch_divergence_cycle = kNotTraced;
  std::int64_t first_spread_cycle = kNotTraced;

  // Generic payload (see the per-kind notes above).
  std::uint64_t value = 0;
  std::string detail;
  bool interrupted = false;    // kCampaignFinish only
  std::uint64_t dropped = 0;   // kCampaignFinish only: queue drops this run
};

// Renders one event as a compact JSON object (no trailing newline).
std::string RenderEventJson(const Event& e);

// The JSONL header line: {"type":"header","schema_version":...,
// "generated_at":...}. `generated_at` defaults to the current wall clock;
// tests pass a fixed timestamp for byte-stable output.
std::string RenderJournalHeader(std::string_view generated_at = {});

// A journal consumer. OnEvent runs on the journal's drain thread; keep it
// quick (it is off the trial workers' path, but a slow sink delays every
// other sink and the Flush() at campaign end).
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const Event& e) = 0;
};

class EventJournal {
 public:
  // `capacity` bounds the in-flight event queue. When an Emit finds it full
  // (a slow sink fell behind), the OLDEST queued event is dropped and
  // counted — emitters never block, so telemetry can never stall trials.
  explicit EventJournal(std::size_t capacity = 4096);
  ~EventJournal();  // drains outstanding events, stops the writer thread
  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  // Sinks may be added/removed between campaigns (RunSuite reuses one
  // journal; each campaign attaches its own progress sink). Thread-safe.
  // RemoveSink additionally waits out any in-flight delivery, so the sink
  // may be destroyed the moment it returns.
  void AddSink(EventSink* sink);
  void RemoveSink(EventSink* sink);

  // Stamps e.ts_us and enqueues, dropping the oldest queued event when the
  // queue is full. Callable from any thread; never performs I/O and never
  // blocks on the calling thread.
  void Emit(Event e);

  // Blocks until the queue has drained and no sink delivery is in flight —
  // every surviving (non-dropped) event emitted so far has reached all
  // sinks. RunCampaign flushes before returning so the journal (and the
  // progress summary) is complete when the caller resumes.
  void Flush();

  // Monotonic microseconds since journal creation (the ts_us clock).
  std::uint64_t NowUs() const;

  // The last `n` rendered JSONL lines (most recent last), from a bounded
  // ring the drain thread maintains — the /events?tail=N endpoint.
  std::vector<std::string> Tail(std::size_t n) const;

  std::uint64_t emitted() const;
  // Events shed by the drop-oldest overflow policy since construction.
  std::uint64_t dropped() const;

 private:
  void DrainLoop();

  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable drained_;
  std::deque<Event> queue_;
  std::vector<EventSink*> sinks_;
  std::deque<std::string> tail_;  // bounded rendered-line ring
  std::uint64_t emitted_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  bool in_flight_ = false;  // drain thread is inside sink OnEvent calls
  bool stop_ = false;
  std::thread drain_;
};

// Writes the journal to a stream as JSONL: header line at construction,
// then one line per event (kMetricsSnapshot excluded — metrics snapshots
// are served live, not journaled; the final registry lands in
// --metrics-json). The stream must outlive the sink; the sink flushes the
// stream on campaign finish so a SIGINT-interrupted journal is complete up
// to its last event. A stream write failure (disk full, yanked volume,
// `events.jsonl.write` failpoint) disables the sink for the rest of the run
// with a single stderr warning — the campaign continues without its journal
// file rather than wedging or spamming.
class JsonlEventSink : public EventSink {
 public:
  explicit JsonlEventSink(std::ostream& os, std::string_view generated_at = {});
  void OnEvent(const Event& e) override;

  // True once a write failure permanently silenced the sink.
  bool disabled() const { return disabled_; }

 private:
  std::ostream& os_;
  bool disabled_ = false;
};

// The --progress consumer: a throttled status line per second of trial
// completions plus an unconditional final summary (also on interruption).
// Rates use the journal's monotonic microsecond clock, so sub-second
// campaigns report a real trials/sec figure instead of zero.
class ProgressSink : public EventSink {
 public:
  // `label` prefixes every line (the campaign cache key). Lines go to `os`
  // (stderr in tfi; tests capture a stringstream).
  ProgressSink(std::string label, int total_trials, std::ostream& os);
  void OnEvent(const Event& e) override;

 private:
  void PrintLine(std::uint64_t ts_us, bool final_line, bool interrupted);

  const std::string label_;
  const int total_;
  std::ostream& os_;
  std::uint64_t first_ts_us_ = 0;
  std::uint64_t last_line_us_ = 0;
  bool saw_trial_ = false;
  std::uint64_t done_ = 0;
  std::uint64_t from_cache_ = 0;
  std::array<std::uint64_t, kNumOutcomes> outcomes_{};
};

}  // namespace tfsim::obs
