// Shared metadata for the observability exports: a schema version stamped
// into every obs JSON export (metrics, propagation-trace header, event
// journal header, heatmap) and an RFC3339 UTC timestamp helper.
//
// Versioning contract: readers must accept version-less files (the PR 1
// exports predate the stamp) and files whose schema_version is <= the
// current value. Bump kObsSchemaVersion when a field is renamed or removed,
// not when one is added.
#pragma once

#include <chrono>
#include <string>

namespace tfsim::obs {

// Version 2: adds schema_version/generated_at stamps, the event-journal
// JSONL format, and the vulnerability-heatmap export. (Version 1 is the
// implicit, unstamped PR 1 format.)
inline constexpr int kObsSchemaVersion = 2;

// `tp` as an RFC3339 UTC timestamp: "2026-08-08T12:34:56Z".
std::string Rfc3339Utc(std::chrono::system_clock::time_point tp);

// The current wall-clock time as RFC3339 UTC.
std::string Rfc3339Now();

}  // namespace tfsim::obs
