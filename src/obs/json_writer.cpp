#include "obs/json_writer.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace tfsim::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (!stack_.empty() && has_member_.back()) os_ << ',';
  if (!stack_.empty()) has_member_.back() = true;
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  os_ << '"' << JsonEscape(key) << "\":";
}

void JsonWriter::Raw(std::string_view text) { os_ << text; }

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  os_ << '{';
  stack_.push_back(true);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginObject(std::string_view key) {
  Key(key);
  os_ << '{';
  stack_.push_back(true);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  os_ << '[';
  stack_.push_back(false);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::BeginArray(std::string_view key) {
  Key(key);
  os_ << '[';
  stack_.push_back(false);
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::End() {
  os_ << (stack_.back() ? '}' : ']');
  stack_.pop_back();
  has_member_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  Key(key);
  os_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, std::uint64_t value) {
  Key(key);
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::int64_t value) {
  Key(key);
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, int value) {
  return Field(key, static_cast<std::int64_t>(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, double value) {
  Key(key);
  if (!std::isfinite(value)) {
    os_ << "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::Field(std::string_view key, bool value) {
  Key(key);
  os_ << (value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  Separate();
  os_ << '"' << JsonEscape(value) << '"';
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  Separate();
  os_ << value;
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  Separate();
  if (!std::isfinite(value)) {
    os_ << "null";
    return *this;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os_ << buf;
  return *this;
}

// ---------------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------------

namespace {

struct Lint {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool Fail(const std::string& what) {
    std::ostringstream os;
    os << what << " at byte " << pos;
    error = os.str();
    return false;
  }

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool Literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return Fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool String() {
    if (text[pos] != '"') return Fail("expected string");
    ++pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return Fail("unescaped control character");
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return Fail("truncated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + i >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos + i])))
              return Fail("bad \\u escape");
          }
          pos += 4;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return Fail("bad escape character");
        }
      }
      ++pos;
    }
    return Fail("unterminated string");
  }

  bool Number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    if (pos == start || (text[start] == '-' && pos == start + 1))
      return Fail("expected number");
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return Fail("bad fraction");
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos])))
        return Fail("bad exponent");
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    return true;
  }

  bool ValueAt(int depth) {
    if (depth > 256) return Fail("nesting too deep");
    SkipWs();
    if (pos >= text.size()) return Fail("expected value");
    switch (text[pos]) {
      case '{': {
        ++pos;
        SkipWs();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          return true;
        }
        while (true) {
          SkipWs();
          if (!String()) return false;
          SkipWs();
          if (pos >= text.size() || text[pos] != ':')
            return Fail("expected ':'");
          ++pos;
          if (!ValueAt(depth + 1)) return false;
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == '}') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or '}'");
        }
      }
      case '[': {
        ++pos;
        SkipWs();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          return true;
        }
        while (true) {
          if (!ValueAt(depth + 1)) return false;
          SkipWs();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (pos < text.size() && text[pos] == ']') {
            ++pos;
            return true;
          }
          return Fail("expected ',' or ']'");
        }
      }
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }
};

}  // namespace

bool JsonLint(std::string_view text, std::string* error) {
  Lint lint{text, 0, {}};
  if (!lint.ValueAt(0)) {
    if (error) *error = lint.error;
    return false;
  }
  lint.SkipWs();
  if (lint.pos != text.size()) {
    if (error) *error = "trailing garbage at byte " + std::to_string(lint.pos);
    return false;
  }
  return true;
}

}  // namespace tfsim::obs
