#include "obs/events.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/export_meta.h"
#include "obs/json_writer.h"
#include "util/failpoint.h"

namespace tfsim::obs {

namespace {

// Rendered-line ring capacity for the /events?tail=N endpoint.
constexpr std::size_t kTailCapacity = 1024;

const char* StorageName(Storage s) {
  return s == Storage::kLatch ? "latch" : s == Storage::kRam ? "ram"
                                                             : "background";
}

}  // namespace

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kCampaignStart: return "campaign_start";
    case EventKind::kGoldenDone: return "golden_done";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheStore: return "cache_store";
    case EventKind::kTrialDone: return "trial_done";
    case EventKind::kTrialRetry: return "trial_retry";
    case EventKind::kTrialQuarantine: return "trial_quarantine";
    case EventKind::kCheckpointFlush: return "checkpoint_flush";
    case EventKind::kCancelRequested: return "cancel_requested";
    case EventKind::kMetricsSnapshot: return "metrics_snapshot";
    case EventKind::kCampaignFinish: return "campaign_finish";
    case EventKind::kTrialTimeout: return "trial_timeout";
    case EventKind::kTrialCrash: return "trial_crash";
    case EventKind::kCheckpointDisabled: return "checkpoint_disabled";
  }
  return "unknown";
}

std::string RenderEventJson(const Event& e) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Field("ev", EventKindName(e.kind));
  w.Field("ts_us", e.ts_us);
  if (e.trial >= 0) w.Field("trial", e.trial);
  switch (e.kind) {
    case EventKind::kCampaignStart:
      w.Field("campaign", e.detail);
      w.Field("workload", e.field);
      w.Field("trials", e.value);
      break;
    case EventKind::kGoldenDone:
      w.Field("checkpoints", e.value);
      break;
    case EventKind::kCacheHit:
    case EventKind::kCacheStore:
      w.Field("trials", e.value);
      break;
    case EventKind::kTrialDone:
      w.Field("outcome", OutcomeName(e.outcome));
      w.Field("failure_mode", FailureModeName(e.mode));
      w.Field("category", StateCatName(e.cat));
      w.Field("storage", StorageName(e.storage));
      w.Field("field", e.field);
      w.Field("field_bits", e.field_bits);
      w.Field("cycles", static_cast<std::uint64_t>(e.cycles));
      w.Field("dur_us", e.dur_us);
      if (e.arch_divergence_cycle != Event::kNotTraced)
        w.Field("arch_divergence_cycle", e.arch_divergence_cycle);
      if (e.first_spread_cycle != Event::kNotTraced)
        w.Field("first_spread_cycle", e.first_spread_cycle);
      break;
    case EventKind::kTrialRetry:
      w.Field("attempt", e.value);
      w.Field("error", e.detail);
      break;
    case EventKind::kTrialQuarantine:
      w.Field("error", e.detail);
      break;
    case EventKind::kCheckpointFlush:
      w.Field("prefix", e.value);
      break;
    case EventKind::kCancelRequested:
      break;
    case EventKind::kMetricsSnapshot:
      // Journal consumers see the kind only; the payload is served live.
      break;
    case EventKind::kCampaignFinish:
      w.Field("trials_kept", e.value);
      w.Field("interrupted", e.interrupted);
      w.Field("events_dropped", e.dropped);
      break;
    case EventKind::kTrialTimeout:
      w.Field("timeout_ms", e.value);
      w.Field("error", e.detail);
      break;
    case EventKind::kTrialCrash:
      w.Field("status", e.value);
      w.Field("error", e.detail);
      break;
    case EventKind::kCheckpointDisabled:
      w.Field("error", e.detail);
      break;
  }
  w.End();
  return os.str();
}

std::string RenderJournalHeader(std::string_view generated_at) {
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Field("type", "header");
  w.Field("schema_version", kObsSchemaVersion);
  w.Field("generated_at",
          generated_at.empty() ? Rfc3339Now() : std::string(generated_at));
  w.End();
  return os.str();
}

// ---------------------------------------------------------------------------
// EventJournal
// ---------------------------------------------------------------------------

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(capacity ? capacity : 1),
      epoch_(std::chrono::steady_clock::now()),
      drain_([this] { DrainLoop(); }) {}

EventJournal::~EventJournal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  not_empty_.notify_all();
  drain_.join();
}

void EventJournal::AddSink(EventSink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sinks_.push_back(sink);
}

void EventJournal::RemoveSink(EventSink* sink) {
  std::unique_lock<std::mutex> lock(mu_);
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink), sinks_.end());
  // The drain thread snapshots the sink list before delivering unlocked, so
  // an in-flight delivery may still hold this sink: wait it out, after which
  // the caller may safely destroy the sink.
  drained_.wait(lock, [&] { return !in_flight_; });
}

std::uint64_t EventJournal::NowUs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void EventJournal::Emit(Event e) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return;
  // Stamp under the lock: the journal stream is monotone in ts_us.
  e.ts_us = NowUs();
  // Overflow policy: drop the OLDEST queued event (with a counter) rather
  // than blocking the emitter — a slow sink sheds telemetry, it never stalls
  // a trial worker. Recent events are the valuable ones (the tail ring, the
  // status server, the campaign_finish footer all want the present).
  if (queue_.size() >= capacity_) {
    queue_.pop_front();
    ++dropped_;
  }
  queue_.push_back(std::move(e));
  ++emitted_;
  lock.unlock();
  not_empty_.notify_one();
}

void EventJournal::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  // "Everything delivered" is queue-empty + no sink call in flight: with the
  // drop-oldest policy, delivered_ never catches emitted_ after an overflow.
  drained_.wait(lock,
                [&] { return (queue_.empty() && !in_flight_) || stop_; });
}

std::vector<std::string> EventJournal::Tail(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t take = std::min(n, tail_.size());
  return std::vector<std::string>(tail_.end() - static_cast<std::ptrdiff_t>(take),
                                  tail_.end());
}

std::uint64_t EventJournal::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventJournal::DrainLoop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !queue_.empty() || stop_; });
    if (queue_.empty() && stop_) return;
    const Event e = std::move(queue_.front());
    queue_.pop_front();
    // Snapshot the sink list so OnEvent runs unlocked (a sink may be slow;
    // emitters must only contend on the queue push).
    const std::vector<EventSink*> sinks = sinks_;
    in_flight_ = true;
    lock.unlock();

    for (EventSink* s : sinks) s->OnEvent(e);
    std::string line = RenderEventJson(e);

    lock.lock();
    in_flight_ = false;
    tail_.push_back(std::move(line));
    if (tail_.size() > kTailCapacity) tail_.pop_front();
    ++delivered_;
    lock.unlock();
    // Wakes both Flush (delivered==emitted) and RemoveSink (!in_flight).
    drained_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// JsonlEventSink
// ---------------------------------------------------------------------------

JsonlEventSink::JsonlEventSink(std::ostream& os, std::string_view generated_at)
    : os_(os) {
  os_ << RenderJournalHeader(generated_at) << '\n';
}

void JsonlEventSink::OnEvent(const Event& e) {
  if (disabled_ || e.kind == EventKind::kMetricsSnapshot) return;
  // Chaos site: a firing events.jsonl.write is exactly a disk-level stream
  // failure (the failbit a full disk or yanked volume would raise).
  if (fail::FailHere("events.jsonl.write")) os_.setstate(std::ios::failbit);
  os_ << RenderEventJson(e) << '\n';
  // Keep the on-disk journal a complete prefix at every campaign boundary:
  // an interrupted run's last line is its campaign_finish event.
  if (e.kind == EventKind::kCampaignFinish || e.kind == EventKind::kCancelRequested)
    os_.flush();
  if (!os_) {
    // One warning, then silence: the campaign keeps running without its
    // journal file instead of failing or warning per event.
    disabled_ = true;
    std::fprintf(stderr,
                 "[events] journal write failed; disabling the JSONL sink "
                 "for the rest of the run\n");
  }
}

// ---------------------------------------------------------------------------
// ProgressSink
// ---------------------------------------------------------------------------

ProgressSink::ProgressSink(std::string label, int total_trials,
                           std::ostream& os)
    : label_(std::move(label)), total_(total_trials), os_(os) {}

void ProgressSink::PrintLine(std::uint64_t ts_us, bool final_line,
                             bool interrupted) {
  // Monotonic microsecond elapsed time; the max() keeps sub-millisecond
  // campaigns from dividing by (or reporting) zero.
  const double secs =
      static_cast<double>(std::max<std::uint64_t>(ts_us - first_ts_us_, 1)) *
      1e-6;
  const double rate = static_cast<double>(done_) / secs;
  char head[160];
  std::snprintf(head, sizeof(head),
                "[campaign %s] %llu/%d trials  %.1f trials/s",
                label_.c_str(), static_cast<unsigned long long>(done_), total_,
                rate);
  char mix[160];
  std::snprintf(
      mix, sizeof(mix), "  match=%llu term=%llu sdc=%llu gray=%llu err=%llu",
      static_cast<unsigned long long>(outcomes_[0]),
      static_cast<unsigned long long>(outcomes_[1]),
      static_cast<unsigned long long>(outcomes_[2]),
      static_cast<unsigned long long>(outcomes_[3]),
      static_cast<unsigned long long>(outcomes_[4]));
  os_ << head << mix;
  if (final_line) {
    os_ << "  [" << (interrupted ? "interrupted" : "done") << " in ";
    char secs_buf[32];
    std::snprintf(secs_buf, sizeof(secs_buf), "%.1fs", secs);
    os_ << secs_buf;
    if (from_cache_) os_ << ", cached";
    os_ << ']';
  } else if (rate > 0 && done_ < static_cast<std::uint64_t>(total_)) {
    char eta[32];
    std::snprintf(eta, sizeof(eta), "  eta %.0fs",
                  static_cast<double>(total_ - done_) / rate);
    os_ << eta;
  }
  os_ << '\n';
  os_.flush();
}

void ProgressSink::OnEvent(const Event& e) {
  switch (e.kind) {
    case EventKind::kCampaignStart:
      first_ts_us_ = e.ts_us;
      last_line_us_ = e.ts_us;
      break;
    case EventKind::kCacheHit:
      from_cache_ = e.value;
      break;
    case EventKind::kTrialDone:
      if (!saw_trial_) {
        saw_trial_ = true;
        if (first_ts_us_ == 0 && last_line_us_ == 0) {
          first_ts_us_ = e.ts_us;
          last_line_us_ = e.ts_us;
        }
      }
      ++done_;
      ++outcomes_[static_cast<int>(e.outcome)];
      if (e.ts_us - last_line_us_ >= 1000000) {
        last_line_us_ = e.ts_us;
        PrintLine(e.ts_us, /*final_line=*/false, /*interrupted=*/false);
      }
      break;
    case EventKind::kCampaignFinish:
      // Resumed/cached trials never produced trial_done events; fold them in
      // so the summary reports the campaign's true completed count.
      if (e.value > done_) done_ = e.value;
      PrintLine(e.ts_us, /*final_line=*/true, e.interrupted);
      break;
    default:
      break;
  }
}

}  // namespace tfsim::obs
