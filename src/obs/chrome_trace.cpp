#include "obs/chrome_trace.h"

#include "obs/json_writer.h"

namespace tfsim::obs {

void ChromeTraceWriter::SetProcessName(int pid, const std::string& name) {
  Event e;
  e.ph = 'M';
  e.name = "process_name";
  e.pid = pid;
  e.string_args.emplace_back("name", name);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::SetThreadName(int pid, int tid,
                                      const std::string& name) {
  Event e;
  e.ph = 'M';
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.string_args.emplace_back("name", name);
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::CounterEvent(
    const std::string& name, int pid, std::uint64_t ts_us,
    const std::vector<std::pair<std::string, double>>& series) {
  Event e;
  e.ph = 'C';
  e.name = name;
  e.pid = pid;
  e.ts_us = ts_us;
  e.num_args = series;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::CompleteEvent(const std::string& name, int pid,
                                      int tid, std::uint64_t ts_us,
                                      std::uint64_t dur_us, const Args& args) {
  Event e;
  e.ph = 'X';
  e.name = name;
  e.pid = pid;
  e.tid = tid;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.string_args = args;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::InstantEvent(const std::string& name, int pid,
                                     std::uint64_t ts_us, const Args& args) {
  Event e;
  e.ph = 'I';
  e.name = name;
  e.pid = pid;
  e.ts_us = ts_us;
  e.string_args = args;
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::WriteTo(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Field("displayTimeUnit", "ms");
  w.BeginArray("traceEvents");
  for (const Event& e : events_) {
    w.BeginObject();
    w.Field("name", e.name);
    w.Field("ph", std::string_view(&e.ph, 1));
    w.Field("pid", e.pid);
    w.Field("tid", e.tid);
    if (e.ph != 'M') w.Field("ts", e.ts_us);
    if (e.ph == 'X') w.Field("dur", e.dur_us);
    if (e.ph == 'I') w.Field("s", "g");  // global-scope instant
    if (!e.string_args.empty() || !e.num_args.empty()) {
      w.BeginObject("args");
      for (const auto& [k, v] : e.string_args) w.Field(k, v);
      for (const auto& [k, v] : e.num_args) w.Field(k, v);
      w.End();
    }
    w.End();
  }
  w.End();
  w.End();
  os << '\n';
}

}  // namespace tfsim::obs
