// Chrome trace-event (chrome://tracing / Perfetto) export. Collects counter
// samples, complete spans and name metadata in memory and writes the
// standard `{"traceEvents":[...]}` JSON object.
//
// Two timelines share one file, separated by pid:
//   * pid kPidPipeline — per-stage occupancy counter tracks sampled from the
//     golden (fault-free) pipeline run, with ts = simulated cycle number
//     rendered as microseconds (1 cycle == 1us on screen).
//   * pid kPidCampaign — one complete span per injection trial, with real
//     wall-clock timestamps relative to campaign start.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace tfsim::obs {

class ChromeTraceWriter {
 public:
  static constexpr int kPidPipeline = 1;
  static constexpr int kPidCampaign = 2;

  using Args = std::vector<std::pair<std::string, std::string>>;

  // "M" metadata: names a process/thread lane in the viewer.
  void SetProcessName(int pid, const std::string& name);
  void SetThreadName(int pid, int tid, const std::string& name);

  // "C" counter event: one sample of (possibly several) numeric series.
  void CounterEvent(const std::string& name, int pid, std::uint64_t ts_us,
                    const std::vector<std::pair<std::string, double>>& series);

  // "X" complete span on (pid, tid). String-valued args end up in the
  // viewer's detail pane.
  void CompleteEvent(const std::string& name, int pid, int tid,
                     std::uint64_t ts_us, std::uint64_t dur_us,
                     const Args& args = {});

  // "I" instant event (campaign milestones: checkpoint flushes, trial
  // retries/quarantines, cancellation). Args land in the detail pane.
  void InstantEvent(const std::string& name, int pid, std::uint64_t ts_us,
                    const Args& args = {});

  std::size_t EventCount() const { return events_.size(); }

  void WriteTo(std::ostream& os) const;

 private:
  struct Event {
    char ph;  // 'C', 'X', 'I', 'M'
    std::string name;
    int pid = 0;
    int tid = 0;
    std::uint64_t ts_us = 0;
    std::uint64_t dur_us = 0;              // X only
    Args string_args;                      // X/M
    std::vector<std::pair<std::string, double>> num_args;  // C
  };
  std::vector<Event> events_;
};

}  // namespace tfsim::obs
