// Dependency-free streaming JSON emitter (and a matching validator) for the
// observability exports: metrics snapshots, propagation-trace JSONL rows and
// chrome://tracing event files. The writer produces compact, valid JSON with
// full string escaping; nesting is tracked so commas and closing brackets
// are emitted automatically.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tfsim::obs {

// Escapes `s` for use inside a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  // Containers. Key-less forms are only valid at the top level or inside an
  // array; keyed forms only inside an object.
  JsonWriter& BeginObject();
  JsonWriter& BeginObject(std::string_view key);
  JsonWriter& BeginArray();
  JsonWriter& BeginArray(std::string_view key);
  JsonWriter& End();  // closes the innermost open container

  // Scalars inside an object.
  JsonWriter& Field(std::string_view key, std::string_view value);
  JsonWriter& Field(std::string_view key, const char* value);
  JsonWriter& Field(std::string_view key, std::uint64_t value);
  JsonWriter& Field(std::string_view key, std::int64_t value);
  JsonWriter& Field(std::string_view key, int value);
  JsonWriter& Field(std::string_view key, double value);
  JsonWriter& Field(std::string_view key, bool value);

  // Scalars inside an array (or a bare top-level value).
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(double value);

  // Depth of currently open containers (0 when complete).
  std::size_t Depth() const { return stack_.size(); }

 private:
  void Separate();  // comma between siblings
  void Key(std::string_view key);
  void Raw(std::string_view text);

  std::ostream& os_;
  // One entry per open container: true = object, false = array. The parallel
  // flag tracks whether the container already has at least one member.
  std::vector<bool> stack_;
  std::vector<bool> has_member_;
};

// Minimal recursive-descent JSON validator (objects, arrays, strings with
// escapes, numbers, true/false/null). Returns true when `text` is exactly
// one valid JSON value; on failure, fills `*error` (if non-null) with a
// byte-offset diagnostic. Used by tests and the campaign smoke checker in
// place of an external `python3 -m json.tool` dependency.
bool JsonLint(std::string_view text, std::string* error = nullptr);

}  // namespace tfsim::obs
