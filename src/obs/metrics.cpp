#include "obs/metrics.h"

#include "obs/export_meta.h"
#include "obs/json_writer.h"

namespace tfsim::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::uint64_t bucket_width,
                                         std::size_t buckets) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(bucket_width, buckets);
  return *slot;
}

Timer& MetricsRegistry::GetTimer(const std::string& name) {
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

void MetricsRegistry::WriteJson(std::ostream& os, bool include_timers) const {
  JsonWriter w(os);
  w.BeginObject();
  w.Field("schema_version", kObsSchemaVersion);
  // The timestamp is wall-clock, so it rides with the timers section: the
  // timer-less export stays the byte-deterministic portion (pinned by
  // tests), and version-less PR 1 readers simply ignore both keys.
  if (include_timers) w.Field("generated_at", Rfc3339Now());

  w.BeginObject("counters");
  for (const auto& [name, c] : counters_) w.Field(name, c->value());
  w.End();

  w.BeginObject("histograms");
  for (const auto& [name, h] : histograms_) {
    w.BeginObject(name);
    const RunningStat& s = h->stat();
    w.Field("count", static_cast<std::uint64_t>(s.Count()));
    w.Field("mean", s.Mean());
    w.Field("stddev", s.StdDev());
    w.Field("min", s.Min());
    w.Field("max", s.Max());
    w.Field("bucket_width", h->bucket_width());
    w.BeginArray("buckets");
    for (std::uint64_t b : h->counts()) w.Value(b);
    w.End();
    w.End();
  }
  w.End();

  if (include_timers) {
    w.BeginObject("timers");
    for (const auto& [name, t] : timers_) {
      w.BeginObject(name);
      w.Field("count", t->count());
      w.Field("total_ns", t->total_ns());
      w.Field("seconds", t->Seconds());
      w.End();
    }
    w.End();
  }

  w.End();
  os << '\n';
}

}  // namespace tfsim::obs
