// Anatomy of a fault-injection trial: record a golden run of a workload,
// flip one chosen bit of pipeline state, and narrate how the trial is
// classified — the paper's Section 2.2 methodology, step by step.
#include <cstdio>

#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

int main() {
  using namespace tfsim;

  const WorkloadInfo& wl = WorkloadByName("gcc");
  std::printf("workload: %s — %s\n", wl.name.c_str(), wl.description.c_str());
  const Program program = BuildWorkload(wl, kCampaignIters);

  GoldenSpec gs;
  gs.warmup = 20000;
  gs.points = 4;
  std::printf("recording golden run (%llu warm-up cycles, %d start points, "
              "%llu-cycle windows)...\n",
              static_cast<unsigned long long>(gs.warmup), gs.points,
              static_cast<unsigned long long>(gs.window));
  const auto golden = RecordGolden(CoreConfig{}, program, gs);
  std::printf("golden IPC %.2f, %zu retire events recorded, co-verified "
              "against the functional reference\n\n",
              golden->stats.Ipc(), golden->timeline.events.size());

  TrialRunner runner(golden);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  std::printf("injectable state: %llu bits (latches + RAM arrays)\n\n",
              static_cast<unsigned long long>(bits));

  // A handful of hand-picked injections with different expected outcomes.
  Rng rng(2026);
  int shown = 0;
  for (int t = 0; t < 400 && shown < 12; ++t) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(gs.points));
    ts.offset = rng.NextBelow(gs.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    const BitLocation loc =
        runner.core().registry().LocateBit(ts.bit_index, true);
    const TrialRecord r = runner.Run(ts).record;
    // Show a diverse sample: prefer non-masked outcomes.
    if (r.outcome == Outcome::kMicroArchMatch && shown >= 4 && t < 380)
      continue;
    ++shown;
    std::printf(
        "flip %-22s[%3llu] bit %-2u  (%s, %s)  -> %-11s %s  after %u cycles"
        "  (%u valid insns in flight)\n",
        loc.name.c_str(), static_cast<unsigned long long>(loc.element),
        loc.bit, StateCatName(loc.cat),
        loc.storage == Storage::kLatch ? "latch" : "RAM",
        OutcomeName(r.outcome),
        r.mode == FailureMode::kNoFailure ? "" : FailureModeName(r.mode),
        r.cycles, r.valid_instrs);
  }
  std::printf(
      "\nlegend: uArch Match = every bit of machine state re-converged with "
      "the golden run;\nSDC/Terminated = architectural divergence (Table 2 "
      "failure modes); Gray Area = latent\nwithin the window (Section 2.2 of "
      "the paper).\n");
  return 0;
}
