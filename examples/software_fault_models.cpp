// Section 5 in miniature: inject architectural-level faults into one
// workload under all six fault models and watch the software mask them.
#include <cstdio>

#include "soft/soft_inject.h"

int main() {
  using namespace tfsim;

  SoftCampaignSpec spec;
  spec.workload = "parser";
  spec.iters = 6;
  spec.trials = 120;

  std::printf("software-level fault injection on '%s' (%d trials/model)\n\n",
              spec.workload.c_str(), spec.trials);
  std::printf("%-14s %10s %10s %10s %11s\n", "model", "Exception",
              "State OK", "Output OK", "Output Bad");
  for (int m = 0; m < kNumSoftFaultModels; ++m) {
    spec.model = static_cast<SoftFaultModel>(m);
    const SoftCampaignResult r = RunSoftCampaign(spec, false);
    std::printf("%-14s %9.1f%% %9.1f%% %9.1f%% %10.1f%%\n",
                SoftFaultModelName(spec.model),
                100.0 * r.Rate(SoftOutcome::kException).value,
                100.0 * r.Rate(SoftOutcome::kStateOk).value,
                100.0 * r.Rate(SoftOutcome::kOutputOk).value,
                100.0 * r.Rate(SoftOutcome::kOutputBad).value);
  }
  std::printf(
      "\nState OK = the faulty run's architectural state re-converged with "
      "the\nfault-free reference before a system call (the paper finds ~half "
      "of all\nerrors that escape the hardware are masked here).\n");
  return 0;
}
