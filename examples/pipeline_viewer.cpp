// Watch the out-of-order machine work: runs a short dependency-heavy
// program and dumps the full pipeline state for a window of cycles.
#include <iostream>

#include "isa/assemble.h"
#include "uarch/core.h"

int main(int argc, char** argv) {
  using namespace tfsim;
  const int from = argc > 1 ? std::atoi(argv[1]) : 20;
  const int cycles = argc > 2 ? std::atoi(argv[2]) : 6;

  const Program program = Assemble(R"(
      _start:
      li      r1, 50
      la      r2, tab
      li      r3, 0
      loop:
      ldq     r4, 0(r2)         ; load
      mulq    r4, r1, r5        ; complex op dependent on the load
      addq    r3, r5, r3
      stq     r3, 8(r2)         ; store
      addqi   r2, 16, r2
      subqi   r1, 1, r1
      bgt     r1, loop
      li      v0, 1
      li      a0, 0
      syscall
      .data
      tab: .space 1024
  )");

  Core core(CoreConfig{}, program);
  for (int c = 0; c < from; ++c) core.Cycle();
  for (int c = 0; c < cycles; ++c) {
    core.DumpPipeline(std::cout);
    std::cout << "\n";
    core.Cycle();
  }
  return 0;
}
