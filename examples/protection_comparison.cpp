// The Section 4 story in miniature: run the same fault-injection campaign
// on one workload with and without the four lightweight protection
// mechanisms, and show where the failures went.
#include <cstdio>

#include "inject/campaign.h"

int main() {
  using namespace tfsim;

  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 400;
  spec.golden.warmup = 30000;
  spec.golden.points = 6;

  CampaignOptions opt;
  opt.verbose = false;

  std::printf("running %d trials on %s, unprotected...\n", spec.trials,
              spec.workload.c_str());
  const CampaignResult base = RunCampaign(spec, opt);

  spec.core.protect = ProtectionConfig::All();
  std::printf("running %d trials, all four mechanisms enabled (timeout "
              "counter, regfile ECC, regptr ECC, insn parity)...\n\n",
              spec.trials);
  const CampaignResult prot = RunCampaign(spec, opt);

  auto show = [](const char* name, const CampaignResult& r) {
    const auto o = r.ByOutcome();
    const double n = static_cast<double>(r.trials.size());
    std::printf("%-12s  match %5.1f%%   terminated %4.1f%%   SDC %5.1f%%   "
                "gray %5.1f%%\n",
                name, 100.0 * o[0] / n, 100.0 * o[1] / n, 100.0 * o[2] / n,
                100.0 * o[3] / n);
  };
  show("baseline", base);
  show("protected", prot);

  const auto bm = base.ByFailureMode();
  const auto pm = prot.ByFailureMode();
  std::printf("\nfailure modes (baseline -> protected):\n");
  for (int m = 1; m < kNumFailureModes; ++m) {
    if (bm[m] == 0 && pm[m] == 0) continue;
    std::printf("  %-8s %3llu -> %llu\n",
                FailureModeName(static_cast<FailureMode>(m)),
                static_cast<unsigned long long>(bm[m]),
                static_cast<unsigned long long>(pm[m]));
  }

  const double reduction =
      base.FailureRate().value > 0
          ? 100.0 * (1.0 - prot.FailureRate().value / base.FailureRate().value)
          : 0.0;
  std::printf("\nraw failure-rate reduction: %.0f%%   (paper Section 4.4: "
              "~75%% after normalizing for ~7%% more state — see "
              "bench_fig10 for the full-suite number)\n",
              reduction);
  return 0;
}
