; hello.s — a freestanding miniAlpha program for the tfi CLI:
;   ./build/examples/tfi exec examples/hello.s
;   ./build/examples/tfi run  examples/hello.s --cycles 2000
        .text
_start:
        la      a0, msg           ; write(msg, len)
        li      a1, 14
        li      v0, 2
        syscall
        li      r1, 10            ; sum 1..10 into r2
        li      r2, 0
loop:
        addq    r2, r1, r2
        subqi   r1, 1, r1
        bgt     r1, loop
        la      a0, out           ; write the 8-byte sum
        stq     r2, 0(a0)
        li      a1, 8
        li      v0, 2
        syscall
        li      a0, 0             ; exit(0)
        li      v0, 1
        syscall

        .data
msg:    .asciiz "hello, tfsim\n"
        .align  8
out:    .space  8
