// Quickstart: assemble a miniAlpha program, execute it on both the
// functional simulator and the detailed out-of-order pipeline, and print
// the machine's statistics — the 60-second tour of the library.
#include <cstdio>

#include "arch/functional_sim.h"
#include "isa/assemble.h"
#include "uarch/core.h"

int main() {
  using namespace tfsim;

  // A little program: sum the first 1000 squares, print the result bytes.
  const Program program = Assemble(R"(
      _start:
      li      r1, 1000          ; n
      li      r2, 0             ; sum
      loop:
      mulq    r1, r1, r3        ; n^2 (complex ALU, 3 cycles)
      addq    r2, r3, r2
      subqi   r1, 1, r1
      bgt     r1, loop
      la      a0, out
      stq     r2, 0(a0)
      li      a1, 8
      li      v0, 2             ; write(out, 8)
      syscall
      li      a0, 0
      li      v0, 1             ; exit(0)
      syscall
      .data
      out: .space 8
  )");

  std::printf("entry point: 0x%llx\n",
              static_cast<unsigned long long>(program.entry));
  std::printf("first instructions:\n");
  FunctionalSim preview(program);
  for (int i = 0; i < 4; ++i) {
    const std::uint64_t pc = program.entry + 4u * i;
    const auto word =
        static_cast<std::uint32_t>(preview.state().mem.Read(pc, 4));
    std::printf("  0x%llx: %s\n", static_cast<unsigned long long>(pc),
                Disassemble(word, pc).c_str());
  }

  // 1. Architectural reference execution.
  FunctionalSim ref(program);
  ref.Run(1u << 20);
  std::printf("\nfunctional simulator: %llu instructions, exit code %llu\n",
              static_cast<unsigned long long>(ref.InsnCount()),
              static_cast<unsigned long long>(ref.state().exit_code));

  // 2. The same program on the detailed pipeline (Alpha 21264-class core).
  Core core(CoreConfig{}, program);
  while (!core.exited()) core.Cycle();
  const CoreStats& st = core.stats();
  std::printf(
      "pipeline model: %llu instructions in %llu cycles (IPC %.2f)\n"
      "  branches %llu (%.1f%% predicted), d$ misses %llu, replays %llu\n",
      static_cast<unsigned long long>(st.retired),
      static_cast<unsigned long long>(st.cycles), st.Ipc(),
      static_cast<unsigned long long>(st.branches),
      st.branches ? 100.0 * (1.0 - static_cast<double>(st.mispredicts) /
                                       static_cast<double>(st.branches))
                  : 0.0,
      static_cast<unsigned long long>(st.dcache_misses),
      static_cast<unsigned long long>(st.replays));

  // 3. Both views must agree, instruction for instruction.
  std::uint64_t sum = 0;
  for (int i = 0; i < 8; ++i)
    sum |= static_cast<std::uint64_t>(core.output()[i]) << (8 * i);
  std::printf("\nsum of first 1000 squares = %llu (expected 333833500)\n",
              static_cast<unsigned long long>(sum));
  std::printf("outputs identical: %s\n",
              core.output() == ref.state().output ? "yes" : "NO (bug!)");

  // 4. The machine's injectable fault surface.
  const auto bits = core.registry().TotalInjectable();
  std::printf(
      "\nfault-injection surface: %llu latch bits + %llu RAM bits = %llu\n",
      static_cast<unsigned long long>(bits.latch_bits),
      static_cast<unsigned long long>(bits.ram_bits),
      static_cast<unsigned long long>(bits.latch_bits + bits.ram_bits));
  return core.output() == ref.state().output ? 0 : 1;
}
