// Figure 6: correlation between pipeline utilization and masking — benign
// rate (uArch Match + Gray Area) vs number of valid (will-commit)
// instructions in flight at injection time, with a least-squares trendline.
// Paper: a clear negative trend, yet ~70% of faults remain benign even with
// the pipeline nearly full.
#include <cstdio>

#include <fstream>

#include "bench/common.h"
#include "inject/cache.h"
#include "inject/report.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 6 — benign fault rate vs valid instructions",
                     "Latches+RAMs campaign; each bucket is an average over "
                     "trials with that many valid in-flight instructions");
  const auto suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::None()));
  const CampaignResult agg = MergeResults(suite);

  // Bucket by valid-instruction count (8-wide bins over 0..131).
  constexpr int kBin = 8;
  constexpr int kMaxInFlight = 132;
  std::array<std::uint64_t, kMaxInFlight / kBin + 1> benign{}, total{};
  std::vector<double> xs, ys;
  for (const auto& t : agg.trials) {
    const int bin = static_cast<int>(t.valid_instrs) / kBin;
    if (bin >= static_cast<int>(total.size())) continue;
    ++total[bin];
    const bool is_benign = t.outcome == Outcome::kMicroArchMatch ||
                           t.outcome == Outcome::kGrayArea;
    if (is_benign) ++benign[bin];
    xs.push_back(static_cast<double>(t.valid_instrs));
    ys.push_back(is_benign ? 1.0 : 0.0);
  }

  TextTable t({"valid insns", "trials", "benign%", "bar"});
  for (std::size_t b = 0; b < total.size(); ++b) {
    if (total[b] == 0) continue;
    const double rate =
        static_cast<double>(benign[b]) / static_cast<double>(total[b]);
    t.AddRow({std::to_string(b * kBin) + "-" + std::to_string(b * kBin + kBin - 1),
              std::to_string(total[b]), Fmt(100.0 * rate, 1),
              Bar(rate, 40, '#')});
  }
  std::fputs(t.Render().c_str(), stdout);

  // Machine-readable scatter for external plotting.
  const std::string csv_path = CacheDir() + "/fig6_scatter.csv";
  if (std::ofstream csv(csv_path); csv) {
    WriteUtilizationCsv(agg, csv);
    std::printf("\n(scatter data written to %s)\n", csv_path.c_str());
  }

  const LinearFit fit = FitLeastSquares(xs, ys);
  std::printf(
      "\nleast-squares trendline: benign%% = %.3f %+.4f * valid_insns "
      "(r^2=%.3f over %zu trials)\n",
      100.0 * fit.intercept, 100.0 * fit.slope, fit.r2, xs.size());
  std::printf(
      "[paper: negative slope; ~70%% of faults still benign with the "
      "pipeline nearly full (132 in flight)]\n");
  return 0;
}
