// Figure 10 + the Section 4.4 headline: category contributions to failures
// on the protected machine, and the overall failure-rate reduction after
// normalizing for the extra (mostly non-vulnerable) protection state.
// Paper: failures become dominated by pc/ctrl/data; after accounting for a
// ~7% higher fault rate from the added state, the mechanisms reduce the
// known failure rate by approximately 75%.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

namespace {

std::uint64_t TotalBits(const CampaignResult& r) {
  std::uint64_t bits = 0;
  for (const auto& inv : r.inventory) bits += inv.latch_bits + inv.ram_bits;
  return bits;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 10 — failure contributions, protected machine",
                     "Share of SDC+Terminated trials with all protections on");
  const auto base_suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::None()));
  const auto prot_suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::All()));
  const CampaignResult base = MergeResults(base_suite);
  const CampaignResult prot = MergeResults(prot_suite);

  std::uint64_t total_failed = 0;
  for (const auto& t : prot.trials)
    if (t.outcome == Outcome::kSdc || t.outcome == Outcome::kTerminated)
      ++total_failed;

  auto cats = bench::Table1Cats();
  cats.push_back(StateCat::kEcc);
  cats.push_back(StateCat::kParity);
  TextTable t({"category", "failures", "share%", "bar"});
  for (StateCat cat : cats) {
    if (prot.TrialsForCat(cat) == 0) continue;
    const auto o = prot.ByOutcomeForCat(cat);
    const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                                 o[static_cast<int>(Outcome::kTerminated)];
    const double share =
        total_failed ? static_cast<double>(failed) / total_failed : 0.0;
    t.AddRow({StateCatName(cat), std::to_string(failed), Fmt(100.0 * share, 1),
              Bar(share, 40, '#')});
  }
  std::fputs(t.Render().c_str(), stdout);

  // Section 4.4 headline: failure-rate reduction, normalized for the larger
  // injected-state population (higher raw fault rate).
  const Proportion base_fail = base.FailureRate();
  const Proportion prot_fail = prot.FailureRate();
  const double bits_ratio = static_cast<double>(TotalBits(prot)) /
                            static_cast<double>(TotalBits(base));
  const double reduction =
      1.0 - (prot_fail.value * bits_ratio) / base_fail.value;
  std::printf(
      "\nunprotected failure rate: %s\nprotected   failure rate: %s\n"
      "state overhead factor: %.3fx\n"
      "failure-rate reduction (fault-rate normalized): %.1f%%  "
      "[paper: ~75%% after a ~7%% state-overhead adjustment]\n",
      FmtPct(base_fail.value, base_fail.ci95).c_str(),
      FmtPct(prot_fail.value, prot_fail.ci95).c_str(), bits_ratio,
      100.0 * reduction);
  return 0;
}
