// Table 2 + Figure 7: breakdown of failed trials into the seven failure
// modes, per state category (latches+RAMs campaign). Paper: register file
// inconsistencies dominate (from regfile/RAT/freelist/regptr corruption);
// pipeline deadlock is the second leading source.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Table 2 / Figure 7 — failure modes by category",
                     "Failed (SDC or Terminated) trials only; latches+RAMs");

  // Table 2: the failure-mode taxonomy.
  TextTable t2({"failure", "type", "description"});
  t2.AddRow({"ctrl", "SDC", "control flow violation - incorrect insn executed"});
  t2.AddRow({"dtlb", "SDC", "non-speculative access to an invalid virtual page"});
  t2.AddRow({"except", "Term.", "an exception was generated"});
  t2.AddRow({"itlb", "SDC", "processor redirected to an invalid virtual page"});
  t2.AddRow({"locked", "Term.", "deadlock or livelock detected"});
  t2.AddRow({"mem", "SDC", "memory inconsistent"});
  t2.AddRow({"regfile", "SDC", "register file inconsistent"});
  std::fputs(t2.Render().c_str(), stdout);
  std::printf("\n");

  const auto suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::None()));
  const CampaignResult agg = MergeResults(suite);

  static const FailureMode kModes[] = {
      FailureMode::kCtrl, FailureMode::kDtlb,   FailureMode::kExcept,
      FailureMode::kItlb, FailureMode::kLocked, FailureMode::kMem,
      FailureMode::kRegfile};
  std::vector<std::string> header = {"category"};
  for (FailureMode m : kModes) header.push_back(FailureModeName(m));
  header.push_back("failed/total");
  TextTable t(header);
  for (StateCat cat : bench::Table1Cats()) {
    const auto n = agg.TrialsForCat(cat);
    if (n == 0) continue;
    const auto modes = agg.ByFailureModeForCat(cat);
    std::vector<std::string> row = {StateCatName(cat)};
    std::uint64_t failed = 0;
    for (FailureMode m : kModes) {
      row.push_back(std::to_string(modes[static_cast<int>(m)]));
      failed += modes[static_cast<int>(m)];
    }
    row.push_back(std::to_string(failed) + "/" + std::to_string(n));
    t.AddRow(row);
  }
  const auto all = agg.ByFailureMode();
  std::vector<std::string> row = {"all"};
  std::uint64_t failed = 0;
  for (FailureMode m : kModes) {
    row.push_back(std::to_string(all[static_cast<int>(m)]));
    failed += all[static_cast<int>(m)];
  }
  row.push_back(std::to_string(failed) + "/" + std::to_string(agg.trials.size()));
  t.AddSeparator();
  t.AddRow(row);
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\n[paper: regfile-mode SDC dominates, driven by regfile/RAT/freelist/"
      "regptr corruption; locked is the second leading source]\n");
  return 0;
}
