// Table 1: bits of latches and RAM cells per state category, printed beside
// the paper's numbers. Absolute counts differ (our model stores the
// instruction word in the ROB and carries predicted targets explicitly —
// see DESIGN.md) but the relative populations track the paper.
#include <cstdio>

#include "bench/common.h"
#include "uarch/core.h"
#include "workloads/workloads.h"

using namespace tfsim;

namespace {

struct PaperRow {
  StateCat cat;
  const char* description;
  long paper_latch;  // -1 where the scanned table is incomplete
  long paper_ram;
};

// From Table 1 of the paper (blank cells in the scan are marked -1).
const PaperRow kPaper[] = {
    {StateCat::kAddr, "64-bit address fields for memory operations", 384, 3584},
    {StateCat::kArchFreelist, "architectural register free list", 0, 336},
    {StateCat::kArchRat, "architectural register alias table", 0, 224},
    {StateCat::kCtrl, "misc control words and state machines", -1, -1},
    {StateCat::kData, "instruction input and output operands", 5899, 2820},
    {StateCat::kInsn, "instruction-word bits", -1, 2016},
    {StateCat::kPc, "62-bit program counter fields", 1984, 12480},
    {StateCat::kQctrl, "queue control state", 176, 0},
    {StateCat::kRegfile, "65-bit register file + scoreboard", 80, 5200},
    {StateCat::kRegptr, "7-bit physical register pointers", 978, 1852},
    {StateCat::kRobptr, "6-bit ROB tags", 352, 444},
    {StateCat::kSpecFreelist, "speculative register free list", 0, 336},
    {StateCat::kSpecRat, "speculative register alias table", 0, 224},
    {StateCat::kValid, "valid bits throughout the pipeline", 263, 124},
};

std::string OrDash(long v) { return v < 0 ? "?" : std::to_string(v); }

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Table 1 — state category inventory",
                     "Bits of latches / RAM arrays per category: this model "
                     "vs the paper's");
  Program prog = BuildWorkload(AllWorkloads()[0], kCampaignIters);
  Core core(CoreConfig{}, prog);

  TextTable t({"category", "ours latch", "ours RAM", "paper latch",
               "paper RAM", "description"});
  std::uint64_t latch = 0, ram = 0;
  for (const PaperRow& row : kPaper) {
    const auto inv = core.registry().Inventory(row.cat);
    latch += inv.latch_bits;
    ram += inv.ram_bits;
    t.AddRow({StateCatName(row.cat), std::to_string(inv.latch_bits),
              std::to_string(inv.ram_bits), OrDash(row.paper_latch),
              OrDash(row.paper_ram), row.description});
  }
  t.AddSeparator();
  t.AddRow({"total (injected)", std::to_string(latch), std::to_string(ram),
            "~14000", "~31000", "paper Section 2.2"});
  std::fputs(t.Render().c_str(), stdout);

  // Protection-state overhead (Section 4.3: 3061 extra bits, ~2/3 RAM).
  Core prot(CoreConfig{.protect = ProtectionConfig::All()}, prog);
  const auto base = core.registry().TotalInjectable();
  const auto with = prot.registry().TotalInjectable();
  const std::uint64_t extra = with.latch_bits + with.ram_bits -
                              base.latch_bits - base.ram_bits;
  std::printf(
      "\nProtection-state overhead: %llu bits (%llu latch, %llu RAM) on "
      "%llu baseline bits = %.1f%%  [paper: 3061 extra bits on ~45K, ~6.8%%, "
      "roughly two-thirds RAM]\n",
      (unsigned long long)extra,
      (unsigned long long)(with.latch_bits - base.latch_bits),
      (unsigned long long)(with.ram_bits - base.ram_bits),
      (unsigned long long)(base.latch_bits + base.ram_bits),
      100.0 * (double)extra / (double)(base.latch_bits + base.ram_bits));
  return 0;
}
