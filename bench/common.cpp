#include "bench/common.h"

#include <cstdio>

namespace tfsim::bench {

CampaignSpec BaseSpec(bool include_ram, const ProtectionConfig& protect) {
  CampaignSpec spec;
  spec.include_ram = include_ram;
  spec.core.protect = protect;
  spec.trials = static_cast<int>(EnvInt("TFI_TRIALS", 500));
  spec.golden.points = static_cast<int>(EnvInt("TFI_POINTS", 12));
  return spec;
}

std::vector<CampaignResult> Suite(const CampaignSpec& spec) {
  CampaignSpec s = spec;
  return RunSuite(s);
}

std::vector<std::string> OutcomeCells(
    const std::array<std::uint64_t, kNumOutcomes>& counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  std::vector<std::string> cells;
  std::vector<double> fractions;
  // Paper bar order: uArch Match, Terminated, SDC, Gray Area.
  for (int i = 0; i < kNumOutcomes; ++i) {
    const double f =
        total ? static_cast<double>(counts[i]) / static_cast<double>(total)
              : 0.0;
    fractions.push_back(f);
    cells.push_back(Fmt(100.0 * f, 1));
  }
  cells.push_back(StackedBar(fractions, "MTS.", 40));
  return cells;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("=============================================================\n");
}

const std::vector<StateCat>& Table1Cats() {
  static const std::vector<StateCat> kCats = {
      StateCat::kAddr,        StateCat::kArchFreelist, StateCat::kArchRat,
      StateCat::kCtrl,        StateCat::kData,         StateCat::kInsn,
      StateCat::kPc,          StateCat::kQctrl,        StateCat::kRegfile,
      StateCat::kRegptr,      StateCat::kRobptr,       StateCat::kSpecFreelist,
      StateCat::kSpecRat,     StateCat::kValid,
  };
  return kCats;
}

}  // namespace tfsim::bench
