#include "bench/common.h"

#include <cstdio>
#include <fstream>

#include "obs/metrics.h"
#include "workloads/workloads.h"

namespace tfsim::bench {
namespace {

// One registry shared by every suite a bench binary runs, so the exported
// snapshot accumulates across specs (base + protected, l and l+r...).
obs::MetricsRegistry& GlobalMetrics() {
  static obs::MetricsRegistry m;
  return m;
}

}  // namespace

CampaignSpec BaseSpec(bool include_ram, const ProtectionConfig& protect) {
  CampaignSpec spec;
  spec.include_ram = include_ram;
  spec.core.protect = protect;
  spec.trials = static_cast<int>(EnvInt("TFI_TRIALS", 500));
  spec.golden.points = static_cast<int>(EnvInt("TFI_POINTS", 12));
  return spec;
}

std::vector<CampaignResult> Suite(const CampaignSpec& spec) {
  CampaignSpec s = spec;
  const std::string metrics_path = EnvStr("TFI_METRICS_JSON", "");
  CampaignObs cobs;
  cobs.progress = EnvInt("TFI_PROGRESS", 0) != 0;
  if (!metrics_path.empty()) cobs.sinks.metrics = &GlobalMetrics();
  const CampaignObs* use = cobs.sinks.Any() || cobs.progress ? &cobs : nullptr;

  std::vector<CampaignResult> out;
  for (const auto& w : AllWorkloads()) {
    s.workload = w.name;
    out.push_back(RunCampaign(s, true, use));
  }
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (f) GlobalMetrics().WriteJson(f);
  }
  return out;
}

std::vector<std::string> OutcomeCells(
    const std::array<std::uint64_t, kNumOutcomes>& counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  std::vector<std::string> cells;
  std::vector<double> fractions;
  // Paper bar order: uArch Match, Terminated, SDC, Gray Area.
  for (int i = 0; i < kNumOutcomes; ++i) {
    const double f =
        total ? static_cast<double>(counts[i]) / static_cast<double>(total)
              : 0.0;
    fractions.push_back(f);
    cells.push_back(Fmt(100.0 * f, 1));
  }
  cells.push_back(StackedBar(fractions, "MTS.", 40));
  return cells;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("=============================================================\n");
}

const std::vector<StateCat>& Table1Cats() {
  static const std::vector<StateCat> kCats = {
      StateCat::kAddr,        StateCat::kArchFreelist, StateCat::kArchRat,
      StateCat::kCtrl,        StateCat::kData,         StateCat::kInsn,
      StateCat::kPc,          StateCat::kQctrl,        StateCat::kRegfile,
      StateCat::kRegptr,      StateCat::kRobptr,       StateCat::kSpecFreelist,
      StateCat::kSpecRat,     StateCat::kValid,
  };
  return kCats;
}

}  // namespace tfsim::bench
