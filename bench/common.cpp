#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.h"
#include "util/argparse.h"
#include "workloads/workloads.h"

namespace tfsim::bench {
namespace {

// One registry shared by every suite a bench binary runs, so the exported
// snapshot accumulates across specs (base + protected, l and l+r...).
obs::MetricsRegistry& GlobalMetrics() {
  static obs::MetricsRegistry m;
  return m;
}

BenchOptions& MutableOptions() {
  static BenchOptions opts = [] {
    BenchOptions o;
    o.trials = EnvInt("TFI_TRIALS", 500);
    o.points = EnvInt("TFI_POINTS", 12);
    o.jobs = EnvInt("TFI_JOBS", 1);
    o.progress = EnvInt("TFI_PROGRESS", 0) != 0;
    o.metrics_json = EnvStr("TFI_METRICS_JSON", "");
    return o;
  }();
  return opts;
}

}  // namespace

void Init(int argc, char** argv) {
  BenchOptions& o = MutableOptions();
  ArgParser p;
  p.AddInt("trials", &o.trials, "trials per benchmark per campaign");
  p.AddInt("points", &o.points, "checkpoints (start points) per golden run");
  p.AddInt("jobs", &o.jobs,
           "trial-loop worker threads; 0 = all hardware threads");
  p.AddFlag("progress", &o.progress, "per-campaign progress lines");
  p.AddStr("metrics-json", &o.metrics_json,
           "cumulative metrics-registry JSON snapshot path");
  if (!p.Parse(argc, argv) || !p.positional().empty()) {
    const std::string err = !p.error().empty()
                                ? p.error()
                                : "unexpected argument " + p.positional()[0];
    std::fprintf(stderr, "%s: %s\noptions:\n%s", argv[0], err.c_str(),
                 p.Help().c_str());
    std::exit(2);
  }
}

const BenchOptions& Options() { return MutableOptions(); }

CampaignOptions RunOpts() {
  CampaignOptions opt;
  opt.jobs = static_cast<int>(Options().jobs);
  opt.obs.progress = Options().progress;
  return opt;
}

CampaignSpec BaseSpec(bool include_ram, const ProtectionConfig& protect) {
  CampaignSpec spec;
  spec.include_ram = include_ram;
  spec.core.protect = protect;
  spec.trials = static_cast<int>(Options().trials);
  spec.golden.points = static_cast<int>(Options().points);
  return spec;
}

std::vector<CampaignResult> Suite(const CampaignSpec& spec) {
  CampaignOptions opt = RunOpts();
  const std::string& metrics_path = Options().metrics_json;
  if (!metrics_path.empty()) opt.obs.sinks.metrics = &GlobalMetrics();

  const std::vector<CampaignResult> out = RunSuite(spec, opt);
  for (const auto& r : out)
    if (!r.quarantined.empty())
      std::fprintf(stderr,
                   "[bench] warning: %zu quarantined trial(s) in %s — "
                   "excluded from outcome percentages\n",
                   r.quarantined.size(), r.spec.workload.c_str());
  if (!metrics_path.empty()) {
    std::ofstream f(metrics_path);
    if (f) GlobalMetrics().WriteJson(f);
  }
  return out;
}

std::vector<std::string> OutcomeCells(
    const std::array<std::uint64_t, kNumOutcomes>& counts) {
  // Percentages are over the paper's four outcomes: quarantined trials
  // (Outcome::kTrialError) are sample holes, not machine behaviour, and
  // Suite() reports them separately.
  std::uint64_t total = 0;
  for (int i = 0; i < kNumPaperOutcomes; ++i) total += counts[i];
  std::vector<std::string> cells;
  std::vector<double> fractions;
  // Paper bar order: uArch Match, Terminated, SDC, Gray Area.
  for (int i = 0; i < kNumPaperOutcomes; ++i) {
    const double f =
        total ? static_cast<double>(counts[i]) / static_cast<double>(total)
              : 0.0;
    fractions.push_back(f);
    cells.push_back(Fmt(100.0 * f, 1));
  }
  cells.push_back(StackedBar(fractions, "MTS.", 40));
  return cells;
}

void PrintHeader(const std::string& figure, const std::string& description) {
  std::printf("=============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("=============================================================\n");
}

const std::vector<StateCat>& Table1Cats() {
  static const std::vector<StateCat> kCats = {
      StateCat::kAddr,        StateCat::kArchFreelist, StateCat::kArchRat,
      StateCat::kCtrl,        StateCat::kData,         StateCat::kInsn,
      StateCat::kPc,          StateCat::kQctrl,        StateCat::kRegfile,
      StateCat::kRegptr,      StateCat::kRobptr,       StateCat::kSpecFreelist,
      StateCat::kSpecRat,     StateCat::kValid,
  };
  return kCats;
}

}  // namespace tfsim::bench
