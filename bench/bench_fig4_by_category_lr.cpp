// Figure 4: outcome mix per state category for injections into
// latches+RAMs. Paper observations: archrat, regfile, specrat and
// specfreelist are especially vulnerable (architectural state!); qctrl and
// valid have high fail rates but few bits; data fails least.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 4 — outcomes by state category (latches+RAMs)",
                     "Aggregate over the 10-benchmark suite");
  const auto suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::None()));
  const CampaignResult agg = MergeResults(suite);

  TextTable t({"category", "trials", "uArch match%", "Term%", "SDC%", "Gray%",
               "M=match T=term S=SDC .=gray"});
  for (StateCat cat : bench::Table1Cats()) {
    const auto n = agg.TrialsForCat(cat);
    if (n == 0) continue;
    auto cells = bench::OutcomeCells(agg.ByOutcomeForCat(cat));
    cells.insert(cells.begin(), std::to_string(n));
    cells.insert(cells.begin(), StateCatName(cat));
    t.AddRow(cells);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\n[paper: archrat/regfile/specrat/specfreelist most vulnerable; "
      "data least; qctrl/valid fail often but are few bits]\n");
  return 0;
}
