// Extension beyond the paper: geometry sensitivity sweep. The paper
// characterizes one fixed Alpha-21264-class shape; related AVF work ("Not
// All Faults Are Equal", PAPERS.md) shows vulnerability is a strong
// function of structure sizing because bigger queues run emptier. This
// bench sweeps each sized structure through the default geometry suite
// (ROB 16-128, scheduler 8-64, LQ/SQ 4-32, phys-regs 48-128, pipeline
// width 2-8) and plots per-structure vulnerability against golden-run
// utilization — the figure the sweep layer exists to produce.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "inject/sweep.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Extension — geometry sensitivity (gzip)",
                     "Per-structure failure rate vs golden-run utilization "
                     "as each structure is resized around the paper's shape");

  SweepSpec spec;
  spec.workload = "gzip";
  spec.trials = static_cast<int>(bench::Options().trials);
  spec.golden.points = static_cast<int>(bench::Options().points);
  const SweepResult r = RunSweep(spec, "", bench::RunOpts());

  TextTable pts({"axis", "point", "IPC", "fail rate"});
  for (const SweepPointResult& p : r.points)
    pts.AddRow({p.point.axis, p.point.label, Fmt(p.golden_ipc, 2),
                Fmt(100.0 * p.failure_rate, 1) + "%"});
  std::fputs(pts.Render().c_str(), stdout);

  // The figure: one curve per sized structure, every sweep point that has
  // both coordinates, ordered by utilization (same grouping as the JSON
  // "curves" object WriteSweepJson emits).
  std::map<std::string,
           std::vector<std::pair<const SweepPointResult*,
                                 const StructureCell*>>> curves;
  for (const SweepPointResult& p : r.points)
    for (const StructureCell& c : p.structures)
      if (c.utilization >= 0.0 && c.trials > 0)
        curves[c.structure].push_back({&p, &c});

  for (auto& [structure, cells] : curves) {
    std::stable_sort(cells.begin(), cells.end(),
                     [](const auto& a, const auto& b) {
                       return a.second->utilization < b.second->utilization;
                     });
    std::printf("\nstructure: %s\n", structure.c_str());
    TextTable t({"point", "util%", "vuln%", "trials", "vulnerability"});
    for (const auto& [p, c] : cells)
      t.AddRow({p->point.label, Fmt(100.0 * c->utilization, 1),
                Fmt(100.0 * c->vulnerability, 1),
                std::to_string(c->trials), Bar(c->vulnerability, 30)});
    std::fputs(t.Render().c_str(), stdout);
  }

  std::printf(
      "\n[expectation: within one structure, vulnerability rises with "
      "utilization — shrinking a\nqueue packs it fuller, so a larger "
      "fraction of its bits are architecturally live; points\nfrom other "
      "axes move a structure's utilization without resizing it and should "
      "fall on\nthe same curve]\n");
  return 0;
}
