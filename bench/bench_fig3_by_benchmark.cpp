// Figure 3: fault-injection outcome mix per benchmark, for the latches+RAMs
// campaign and the latches-only campaign. Paper headline: ~85% of
// latch+RAM faults and ~88% of latch-only faults are masked; ~3% Gray Area;
// the rest are SDC/Terminated, with gzip/bzip2 (high IPC) failing most.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

namespace {

void RunOne(bool include_ram) {
  const char* tag = include_ram ? "latches+RAMs (l+r)" : "latches only (l)";
  std::printf("\n--- injections into %s ---\n", tag);
  const auto suite =
      bench::Suite(bench::BaseSpec(include_ram, ProtectionConfig::None()));

  TextTable t({"benchmark", "uArch match%", "Term%", "SDC%", "Gray%",
               "M=match T=term S=SDC .=gray", "IPC"});
  for (const auto& r : suite) {
    auto cells = bench::OutcomeCells(r.ByOutcome());
    cells.insert(cells.begin(), r.spec.workload);
    cells.push_back(Fmt(r.golden_ipc, 2));
    t.AddRow(cells);
  }
  const CampaignResult agg = MergeResults(suite);
  t.AddSeparator();
  auto cells = bench::OutcomeCells(agg.ByOutcome());
  cells.insert(cells.begin(), "aggregate");
  cells.push_back(Fmt(agg.golden_ipc, 2));
  t.AddRow(cells);
  std::fputs(t.Render().c_str(), stdout);

  const auto o = agg.ByOutcome();
  const auto masked = MakeProportion(
      o[static_cast<int>(Outcome::kMicroArchMatch)], agg.trials.size());
  const auto fail = agg.FailureRate();
  std::printf(
      "aggregate: masked %s   failures %s   [paper: %s masked ~%s, failures "
      "~%s]\n",
      FmtPct(masked.value, masked.ci95).c_str(),
      FmtPct(fail.value, fail.ci95).c_str(), tag,
      include_ram ? "85%" : "88%", include_ram ? "12%" : "9%");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 3 — outcomes by benchmark",
                     "Single-bit transient faults injected uniformly over "
                     "eligible pipeline state, 10k-cycle observation window");
  RunOne(true);
  RunOne(false);
  return 0;
}
