// Ablation (beyond the paper): each protection mechanism enabled alone, on a
// three-benchmark subset, attributing the failure-rate reduction per
// mechanism. The paper motivates each mechanism qualitatively (Section 4.2);
// this bench quantifies them individually.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

namespace {

CampaignResult SubSuite(const ProtectionConfig& p, int trials) {
  static const char* kBenchmarks[] = {"gzip", "gcc", "mcf"};
  CampaignSpec spec = bench::BaseSpec(true, p);
  spec.trials = trials;
  std::vector<CampaignResult> parts;
  for (const char* b : kBenchmarks) {
    spec.workload = b;
    parts.push_back(RunCampaign(spec, bench::RunOpts()));
  }
  return MergeResults(parts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Ablation — protection mechanisms in isolation",
                     "Failure rate on {gzip, gcc, mcf} with each Section 4 "
                     "mechanism toggled individually");
  const int trials = static_cast<int>(bench::Options().trials);

  struct Config {
    const char* name;
    ProtectionConfig p;
  };
  const Config kConfigs[] = {
      {"baseline (none)", ProtectionConfig::None()},
      {"timeout counter only", {.timeout_counter = true}},
      {"regfile ECC only", {.regfile_ecc = true}},
      {"regptr ECC only", {.regptr_ecc = true}},
      {"insn parity only", {.insn_parity = true}},
      {"all four", ProtectionConfig::All()},
  };

  CampaignResult base;
  TextTable t({"configuration", "failure rate", "reduction vs baseline"});
  for (const Config& c : kConfigs) {
    const CampaignResult r = SubSuite(c.p, trials);
    const Proportion f = r.FailureRate();
    std::string red = "-";
    if (c.p.Any()) {
      const double b = base.FailureRate().value;
      if (b > 0) red = Fmt(100.0 * (1.0 - f.value / b), 1) + "%";
    } else {
      base = r;
    }
    t.AddRow({c.name, FmtPct(f.value, f.ci95), red});
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\n(reduction here is raw, not normalized for added state; see "
      "bench_fig10 for the paper's normalized 75%% figure)\n");
  return 0;
}
