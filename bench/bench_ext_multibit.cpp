// Extension beyond the paper: multi-bit fault models. Section 6 flags the
// single-bit-flip assumption as a threat to validity; this bench measures
// how masking degrades under spatially correlated (adjacent) and
// independent multi-bit upsets on a three-benchmark subset.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

namespace {

CampaignResult SubSuite(int flips, bool adjacent, int trials) {
  static const char* kBenchmarks[] = {"gzip", "gcc", "mcf"};
  CampaignSpec spec = bench::BaseSpec(true, ProtectionConfig::None());
  spec.trials = trials;
  spec.flips = flips;
  spec.adjacent = adjacent;
  std::vector<CampaignResult> parts;
  for (const char* b : kBenchmarks) {
    spec.workload = b;
    parts.push_back(RunCampaign(spec, bench::RunOpts()));
  }
  return MergeResults(parts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Extension — multi-bit fault models",
                     "Outcome mix on {gzip, gcc, mcf} as the upset grows "
                     "beyond the paper's single-bit model");
  const int trials = static_cast<int>(bench::Options().trials);

  struct Model {
    const char* name;
    int flips;
    bool adjacent;
  };
  const Model kModels[] = {
      {"single bit (paper)", 1, false},
      {"2 adjacent bits", 2, true},
      {"2 independent bits", 2, false},
      {"4-bit adjacent burst", 4, true},
      {"4 independent bits", 4, false},
  };

  TextTable t({"fault model", "uArch match%", "Term%", "SDC%", "Gray%",
               "M=match T=term S=SDC .=gray", "fail rate"});
  for (const Model& m : kModels) {
    const CampaignResult r = SubSuite(m.flips, m.adjacent, trials);
    auto cells = bench::OutcomeCells(r.ByOutcome());
    cells.insert(cells.begin(), m.name);
    const Proportion f = r.FailureRate();
    cells.push_back(FmtPct(f.value, f.ci95));
    t.AddRow(cells);
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\n[expectation: masking declines roughly linearly in the number of "
      "independent flips\n(each flip is an independent chance to land in "
      "live state); adjacent bursts within one\nfield degrade less than "
      "independent flips spread across structures]\n");
  return 0;
}
