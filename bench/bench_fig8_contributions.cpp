// Figure 8: relative contribution of each state category to the total
// number of failures (SDC + Terminated), unprotected machine. Paper: the
// register file, alias tables, free lists and register pointer fields
// together account for the bulk of all failures.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 8 — category contributions to failures",
                     "Share of all SDC+Terminated trials, latches+RAMs, "
                     "unprotected");
  const auto suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::None()));
  const CampaignResult agg = MergeResults(suite);

  std::uint64_t total_failed = 0;
  for (const auto& t : agg.trials)
    if (t.outcome == Outcome::kSdc || t.outcome == Outcome::kTerminated)
      ++total_failed;

  TextTable t({"category", "failures", "share%", "bar"});
  double reg_related = 0.0;
  for (StateCat cat : bench::Table1Cats()) {
    const auto o = agg.ByOutcomeForCat(cat);
    const std::uint64_t failed = o[static_cast<int>(Outcome::kSdc)] +
                                 o[static_cast<int>(Outcome::kTerminated)];
    if (agg.TrialsForCat(cat) == 0) continue;
    const double share =
        total_failed ? static_cast<double>(failed) / total_failed : 0.0;
    if (cat == StateCat::kRegfile || cat == StateCat::kArchRat ||
        cat == StateCat::kSpecRat || cat == StateCat::kArchFreelist ||
        cat == StateCat::kSpecFreelist || cat == StateCat::kRegptr)
      reg_related += share;
    t.AddRow({StateCatName(cat), std::to_string(failed), Fmt(100.0 * share, 1),
              Bar(share, 40, '#')});
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\nregister-related categories (regfile+RATs+freelists+regptr): %.1f%% "
      "of all failures  [paper: \"a large fraction\" — the protection "
      "mechanisms target exactly these]\n",
      100.0 * reg_related);
  return 0;
}
