// Extension (beyond the paper): hardware vs software-only vs combined
// protection, on a three-benchmark subset. The software rows run the
// asmlint-verified hardened workload variants (src/soft/harden.cpp):
// instruction duplication into shadow registers with compare-before-use
// (SWIFT-style) and/or per-block control-flow signatures (CFCSS-style).
// Software detection converts silent corruptions into detected terminations
// (the fault block raises an illegal-instruction exception), so the figure
// of merit here is the SDC rate, not the raw failure rate: a software
// "failure" that is a detection is the mechanism working as designed.
#include <cstdio>

#include "bench/common.h"
#include "soft/soft_inject.h"

using namespace tfsim;

namespace {

CampaignResult SubSuite(const char* suffix, const ProtectionConfig& p,
                        int trials) {
  static const char* kBenchmarks[] = {"gzip", "gcc", "mcf"};
  CampaignSpec spec = bench::BaseSpec(true, p);
  spec.trials = trials;
  std::vector<CampaignResult> parts;
  for (const char* b : kBenchmarks) {
    spec.workload = std::string(b) + suffix;
    parts.push_back(RunCampaign(spec, bench::RunOpts()));
  }
  return MergeResults(parts);
}

std::uint64_t Sample(const CampaignResult& r) {
  const auto by = r.ByOutcome();
  std::uint64_t sample = 0;
  for (int i = 0; i < kNumPaperOutcomes; ++i) sample += by[i];
  return sample;
}

Proportion Rate(const CampaignResult& r, Outcome o) {
  return MakeProportion(r.ByOutcome()[static_cast<int>(o)], Sample(r));
}

// SDC restricted to a corrupted memory image / output stream — the part of
// the architectural state the program's own stores produce, and the only
// part duplication-with-compare-before-store claims to guard. Whole-state
// SDC additionally counts divergence in the shadow registers themselves,
// which the hardened variants *add* to the architectural surface.
Proportion MemSdcRate(const CampaignResult& r) {
  return MakeProportion(
      r.ByFailureMode()[static_cast<int>(FailureMode::kMem)], Sample(r));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader(
      "Extension — hardware vs software-only vs combined protection",
      "SDC/termination mix on {gzip, gcc, mcf}; software rows run the "
      "statically verified hardened variants (+swdup / +swcfc / +sw)");
  const int trials = static_cast<int>(bench::Options().trials);

  struct Config {
    const char* name;
    const char* suffix;  // workload-name suffix selecting the variant
    ProtectionConfig p;
  };
  const Config kConfigs[] = {
      {"baseline (none)", "", ProtectionConfig::None()},
      {"hardware (all four)", "", ProtectionConfig::All()},
      {"software CFC only (+swcfc)", "+swcfc", ProtectionConfig::None()},
      {"software dup only (+swdup)", "+swdup", ProtectionConfig::None()},
      {"software full (+sw)", "+sw", ProtectionConfig::None()},
      {"combined (all four + +sw)", "+sw", ProtectionConfig::All()},
  };

  double base_mem = 0.0;
  TextTable t({"configuration", "SDC rate", "mem SDC", "terminated",
               "mem SDC reduction"});
  for (const Config& c : kConfigs) {
    const CampaignResult r = SubSuite(c.suffix, c.p, trials);
    const Proportion sdc = Rate(r, Outcome::kSdc);
    const Proportion mem = MemSdcRate(r);
    const Proportion term = Rate(r, Outcome::kTerminated);
    std::string red = "-";
    if (c.suffix[0] != '\0' || c.p.Any()) {
      if (base_mem > 0)
        red = Fmt(100.0 * (1.0 - mem.value / base_mem), 1) + "%";
    } else {
      base_mem = mem.value;
    }
    t.AddRow({c.name, FmtPct(sdc.value, sdc.ci95),
              FmtPct(mem.value, mem.ci95), FmtPct(term.value, term.ci95),
              red});
  }
  std::fputs(t.Render().c_str(), stdout);

  // Second table: the fault model software redundancy is actually designed
  // for — architectural-level injection (Section 5), where the fault lands
  // in a *program-visible* register write, instruction word, or branch
  // decision rather than a uniformly random pipeline latch. Detections
  // surface as exceptions (the fault block raises an illegal instruction);
  // Output Bad is the true SDC column here.
  std::printf(
      "\narchitectural fault models (Section 5 machinery), stock vs "
      "hardened:\n\n");
  const SoftFaultModel kModels[] = {SoftFaultModel::kRegBit64,
                                    SoftFaultModel::kInsnBit,
                                    SoftFaultModel::kBranchFlip};
  const int soft_trials =
      static_cast<int>(EnvInt("TFI_SOFT_TRIALS", 100));
  TextTable s({"fault model", "variant", "Exception%", "State OK%",
               "Output OK%", "Output Bad%"});
  for (SoftFaultModel m : kModels) {
    for (const char* suffix : {"", "+sw"}) {
      SoftCampaignResult total;
      for (const char* b : {"gzip", "gcc", "mcf"}) {
        SoftCampaignSpec spec;
        spec.workload = std::string(b) + suffix;
        spec.model = m;
        spec.trials = soft_trials;
        spec.iters = 8;
        const SoftCampaignResult r = RunSoftCampaign(spec);
        for (int o = 0; o < kNumSoftOutcomes; ++o)
          total.by_outcome[o] += r.by_outcome[o];
        total.trials += r.trials;
      }
      const auto pct = [&](SoftOutcome o) {
        const Proportion p = MakeProportion(
            total.by_outcome[static_cast<int>(o)], total.trials);
        return FmtPct(p.value, p.ci95);
      };
      s.AddRow({SoftFaultModelName(m), suffix[0] ? suffix : "stock",
                pct(SoftOutcome::kException), pct(SoftOutcome::kStateOk),
                pct(SoftOutcome::kOutputOk), pct(SoftOutcome::kOutputBad)});
    }
  }
  std::fputs(s.Render().c_str(), stdout);

  std::printf(
      "\n(software detections surface as terminations — the fault block "
      "raises an illegal-instruction exception. Whole-state SDC *rises* "
      "under duplication: the shadow registers double the architectural "
      "surface the classifier hashes, so flips landing in already-compared "
      "shadows count as SDC despite identical program output. The mem-SDC "
      "column scores only the output/memory image — the thing "
      "compare-before-store guards)\n");
  return 0;
}
