// Figure 5: outcome mix per state category for injections into latches
// only. Latch-only masking is higher than latch+RAM masking overall
// (latches are less utilized than RAM payload bits).
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 5 — outcomes by state category (latches only)",
                     "Aggregate over the 10-benchmark suite");
  const auto suite =
      bench::Suite(bench::BaseSpec(false, ProtectionConfig::None()));
  const CampaignResult agg = MergeResults(suite);

  TextTable t({"category", "trials", "uArch match%", "Term%", "SDC%", "Gray%",
               "M=match T=term S=SDC .=gray"});
  for (StateCat cat : bench::Table1Cats()) {
    const auto n = agg.TrialsForCat(cat);
    if (n == 0) continue;
    auto cells = bench::OutcomeCells(agg.ByOutcomeForCat(cat));
    cells.insert(cells.begin(), std::to_string(n));
    cells.insert(cells.begin(), StateCatName(cat));
    t.AddRow(cells);
  }
  std::fputs(t.Render().c_str(), stdout);
  return 0;
}
