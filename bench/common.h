// Shared infrastructure for the per-figure bench binaries: canonical
// campaign specs (so different figures derived from the same campaign share
// the on-disk cache), TFI_* environment scaling, command-line overrides, and
// table/bar rendering of outcome mixes.
//
// Environment knobs (command-line flags of the same name override them):
//   TFI_TRIALS     trials per benchmark per campaign     (default 500)
//   TFI_SOFT_TRIALS trials per benchmark per fault model (default 100)
//   TFI_POINTS     checkpoints (start points) per golden  (default 12)
//   TFI_JOBS       trial-loop worker threads; 0 = all hardware threads
//   TFI_CACHE_DIR  results cache directory (default ./.tfi_cache)
//   TFI_PROGRESS   =1: per-campaign progress lines (trials/sec, outcome mix)
//   TFI_METRICS_JSON  write a cumulative metrics-registry JSON snapshot to
//                     this path after each suite. Campaigns served from the
//                     results cache replay their campaign.* counters into
//                     the registry (identical totals to a live run); only
//                     runs that actually execute also record golden-run
//                     pipeline occupancy.
//
// Command-line flags (parsed by Init, identical spelling to `tfi`):
//   --trials N  --points N  --jobs N  --progress  --metrics-json FILE
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "inject/campaign.h"
#include "soft/soft_inject.h"
#include "util/env.h"
#include "util/table.h"

namespace tfsim::bench {

// Bench-wide options: TFI_* environment defaults, overridden by flags.
struct BenchOptions {
  std::int64_t trials = 500;
  std::int64_t points = 12;
  std::int64_t jobs = 1;
  bool progress = false;
  std::string metrics_json;
};

// Parses the common bench flags over the environment defaults. Call first
// thing in every bench main; unknown flags exit with a usage message.
void Init(int argc, char** argv);

// The options Init resolved (environment defaults if Init was never called).
const BenchOptions& Options();

// Campaign execution options derived from Options(): jobs and progress are
// threaded through; metrics are attached by Suite() only (per-campaign
// callers that want telemetry attach their own sinks).
CampaignOptions RunOpts();

// Canonical campaign spec shared by every figure bench. `protect` toggles
// the Section 4 mechanisms; include_ram selects latches+RAMs vs latches.
CampaignSpec BaseSpec(bool include_ram, const ProtectionConfig& protect);

// Runs (or loads) the whole 10-benchmark suite for a spec.
std::vector<CampaignResult> Suite(const CampaignSpec& spec);

// Renders one outcome mix as "match term sdc gray" percentage cells plus a
// stacked bar (M=match, T=terminated, S=SDC, .=gray area).
std::vector<std::string> OutcomeCells(
    const std::array<std::uint64_t, kNumOutcomes>& counts);

// Prints the standard experiment header.
void PrintHeader(const std::string& figure, const std::string& description);

// Categories in the paper's Table 1 order (the 14 baseline categories), and
// the two protection-state categories.
const std::vector<StateCat>& Table1Cats();

}  // namespace tfsim::bench
