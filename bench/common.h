// Shared infrastructure for the per-figure bench binaries: canonical
// campaign specs (so different figures derived from the same campaign share
// the on-disk cache), TFI_* environment scaling, and table/bar rendering of
// outcome mixes.
//
// Environment knobs:
//   TFI_TRIALS     trials per benchmark per campaign     (default 500)
//   TFI_SOFT_TRIALS trials per benchmark per fault model (default 100)
//   TFI_POINTS     checkpoints (start points) per golden  (default 12)
//   TFI_CACHE_DIR  results cache directory (default ./.tfi_cache)
//   TFI_PROGRESS   =1: per-campaign progress lines (trials/sec, outcome mix)
//   TFI_METRICS_JSON  write a cumulative metrics-registry JSON snapshot to
//                     this path after each suite (campaign + pipeline
//                     occupancy metrics across every benchmark run so far).
//                     Note: metrics observe live execution, so this bypasses
//                     the campaign results cache and re-runs each campaign.
#pragma once

#include <string>
#include <vector>

#include "inject/campaign.h"
#include "soft/soft_inject.h"
#include "util/env.h"
#include "util/table.h"

namespace tfsim::bench {

// Canonical campaign spec shared by every figure bench. `protect` toggles
// the Section 4 mechanisms; include_ram selects latches+RAMs vs latches.
CampaignSpec BaseSpec(bool include_ram, const ProtectionConfig& protect);

// Runs (or loads) the whole 10-benchmark suite for a spec.
std::vector<CampaignResult> Suite(const CampaignSpec& spec);

// Renders one outcome mix as "match term sdc gray" percentage cells plus a
// stacked bar (M=match, T=terminated, S=SDC, .=gray area).
std::vector<std::string> OutcomeCells(
    const std::array<std::uint64_t, kNumOutcomes>& counts);

// Prints the standard experiment header.
void PrintHeader(const std::string& figure, const std::string& description);

// Categories in the paper's Table 1 order (the 14 baseline categories), and
// the two protection-state categories.
const std::vector<StateCat>& Table1Cats();

}  // namespace tfsim::bench
