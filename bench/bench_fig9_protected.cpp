// Figure 9: outcome mix per state category with all four Section 4
// protection mechanisms enabled (latches+RAMs; protection state itself —
// the ecc and parity categories — is injected too). Paper observations:
// archfreelist/archrat/insn/regfile/specfreelist/specrat failures drop
// sharply; insn trials move from uArch Match to Gray Area (parity-triggered
// recovery flushes); timeout-counter recoveries turn locked failures into
// Gray Area.
#include <cstdio>

#include "bench/common.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 9 — outcomes by category, protected machine",
                     "Timeout counter + regfile ECC + regptr ECC + insn "
                     "parity; protection state is injectable");
  const auto suite =
      bench::Suite(bench::BaseSpec(true, ProtectionConfig::All()));
  const CampaignResult agg = MergeResults(suite);

  auto cats = bench::Table1Cats();
  cats.push_back(StateCat::kEcc);
  cats.push_back(StateCat::kParity);

  TextTable t({"category", "trials", "uArch match%", "Term%", "SDC%", "Gray%",
               "M=match T=term S=SDC .=gray"});
  for (StateCat cat : cats) {
    const auto n = agg.TrialsForCat(cat);
    if (n == 0) continue;
    auto cells = bench::OutcomeCells(agg.ByOutcomeForCat(cat));
    cells.insert(cells.begin(), std::to_string(n));
    cells.insert(cells.begin(), StateCatName(cat));
    t.AddRow(cells);
  }
  std::fputs(t.Render().c_str(), stdout);

  const auto fail = agg.FailureRate();
  std::printf("\noverall failure rate (protected): %s\n",
              FmtPct(fail.value, fail.ci95).c_str());
  return 0;
}
