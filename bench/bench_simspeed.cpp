// Throughput of the substrate itself (google-benchmark): detailed-core
// cycles/s, functional-simulator instructions/s, checkpoint save/restore,
// and whole fault-injection trials/s.
#include <benchmark/benchmark.h>

#include <fstream>

#include "arch/functional_sim.h"
#include "inject/campaign.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/status_server.h"
#include "inject/golden.h"
#include "inject/trial.h"
#include "uarch/core.h"
#include "util/rng.h"
#include "workloads/workloads.h"

using namespace tfsim;

namespace {

const Program& GzipProgram() {
  static const Program p =
      BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  return p;
}

void BM_CoreCycle(benchmark::State& state) {
  Core core(CoreConfig{}, GzipProgram());
  for (auto _ : state) core.Cycle();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoreCycle);

// Same loop with the per-cycle invariant checker attached — the ratio to
// BM_CoreCycle is the cost of running self-checked (`tfi campaign --check`).
void BM_CoreCycleChecked(benchmark::State& state) {
  CoreConfig cfg;
  cfg.check_invariants = true;
  Core core(cfg, GzipProgram());
  for (auto _ : state) core.Cycle();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CoreCycleChecked);

void BM_FunctionalStep(benchmark::State& state) {
  FunctionalSim sim(GzipProgram());
  for (auto _ : state) {
    if (!sim.Running()) state.SkipWithError("program exited");
    sim.Step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FunctionalStep);

void BM_SnapshotRestore(benchmark::State& state) {
  Core core(CoreConfig{}, GzipProgram());
  for (int i = 0; i < 2000; ++i) core.Cycle();
  const Core::Snapshot snap = core.Save();
  for (auto _ : state) {
    core.Load(snap);
    benchmark::DoNotOptimize(core.StateHash());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SnapshotRestore);

void BM_InjectionTrial(benchmark::State& state) {
  GoldenSpec gs;
  gs.warmup = 20000;
  gs.points = 2;
  const auto golden = RecordGolden(CoreConfig{}, GzipProgram(), gs);
  TrialRunner runner(golden);  // no FastPathPlan recorded: slow path
  Rng rng(7);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  for (auto _ : state) {
    TrialSpec ts;
    ts.checkpoint = static_cast<int>(rng.NextBelow(2));
    ts.offset = rng.NextBelow(gs.offset_max);
    ts.bit_index = rng.NextBelow(bits);
    benchmark::DoNotOptimize(runner.Run(ts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_InjectionTrial);

// Trial throughput against one pre-recorded golden run, fast path vs slow,
// over the exact trial population a campaign of this shape would run. The
// golden run (recorded once, outside the timing loop, with the fast-path
// capture plan) is shared by both variants; the ratio
// BM_CampaignTrialsFast / BM_CampaignTrialsSlow is the fast-path speedup on
// identical work with identical results.
struct TrialBenchRig {
  CampaignSpec spec;
  std::shared_ptr<const GoldenRun> golden;
  std::vector<TrialSpec> specs;
};

const TrialBenchRig& SharedTrialRig() {
  static const TrialBenchRig rig = [] {
    TrialBenchRig r;
    // Deliberately the stock CampaignSpec/GoldenSpec (500 trials, 12 points,
    // 10 000-cycle window): the ratio below is the fast-path speedup on the
    // default campaign, not on a shape tuned to flatter it.
    r.spec.workload = "gzip";
    Core probe(r.spec.core, GzipProgram());
    r.specs = MakeTrialSpecs(
        r.spec, probe.registry().InjectableBits(r.spec.include_ram));
    const FastPathPlan plan =
        PlanFastPath(r.spec.golden, r.specs, probe.registry());
    r.golden = RecordGolden(r.spec.core, GzipProgram(), r.spec.golden,
                            nullptr, &plan);
    return r;
  }();
  return rig;
}

void RunTrialBench(benchmark::State& state, bool fast) {
  const TrialBenchRig& rig = SharedTrialRig();
  TrialPolicy policy;
  policy.fast_path = fast;
  TrialRunner runner(rig.golden, policy);
  for (auto _ : state) {
    for (const TrialSpec& ts : rig.specs)
      benchmark::DoNotOptimize(runner.Run(ts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rig.specs.size()));
}

void BM_CampaignTrialsFast(benchmark::State& state) {
  RunTrialBench(state, /*fast=*/true);
}
BENCHMARK(BM_CampaignTrialsFast)->Unit(benchmark::kMillisecond);

void BM_CampaignTrialsSlow(benchmark::State& state) {
  RunTrialBench(state, /*fast=*/false);
}
BENCHMARK(BM_CampaignTrialsSlow)->Unit(benchmark::kMillisecond);

// Whole-campaign trials/sec at 1 vs N trial-loop workers (the engine behind
// `tfi campaign --jobs`). Each iteration re-records the golden run, so the
// items/sec figure understates pure trial throughput equally at every jobs
// value; the 1-vs-N ratio is the parallel speedup. The results cache is
// bypassed so the pool actually executes.
void BM_CampaignTrials(benchmark::State& state) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 64;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  CampaignOptions opt;
  opt.jobs = static_cast<int>(state.range(0));
  opt.verbose = false;
  opt.use_cache = false;
  for (auto _ : state) benchmark::DoNotOptimize(RunCampaign(spec, opt));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          spec.trials);
}
BENCHMARK(BM_CampaignTrials)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)  // 0 = one worker per hardware thread
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The same campaign with every telemetry feature on — event journal with a
// JSONL sink to the null device, metrics registry, and the HTTP status
// server listening (no clients connected). The ratio to BM_CampaignTrials
// at the same arg is the telemetry overhead; the budget is <3%.
void BM_CampaignTrialsTelemetry(benchmark::State& state) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 64;
  spec.golden.warmup = 12000;
  spec.golden.points = 3;
  spec.golden.spacing = 500;
  spec.golden.window = 4000;
  spec.golden.slack = 1000;
  // One journal + server for the whole benchmark (as in suite mode); the
  // loop measures the marginal per-campaign cost of live telemetry.
  std::ofstream null_out("/dev/null");
  obs::EventJournal journal;
  obs::JsonlEventSink sink(null_out);
  journal.AddSink(&sink);
  obs::CampaignStatusServer status;
  status.Start(0, journal);
  obs::MetricsRegistry metrics;
  CampaignOptions opt;
  opt.jobs = static_cast<int>(state.range(0));
  opt.verbose = false;
  opt.use_cache = false;
  opt.obs.events = &journal;
  opt.obs.sinks.metrics = &metrics;
  for (auto _ : state) benchmark::DoNotOptimize(RunCampaign(spec, opt));
  status.Stop();
  journal.RemoveSink(&sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          spec.trials);
}
BENCHMARK(BM_CampaignTrialsTelemetry)
    ->Arg(1)
    ->Arg(4)
    ->Arg(0)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
