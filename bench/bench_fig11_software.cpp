// Figure 11: architectural-level fault injection on the functional
// simulator under the six Section 5 fault models, averaged across the
// benchmark suite. Paper: roughly half of all trials reach complete
// architectural state convergence (State OK); 10-20% of State OK trials in
// the first five models had transiently divergent control flow.
#include <cstdio>

#include "bench/common.h"
#include "soft/soft_inject.h"
#include "workloads/workloads.h"

using namespace tfsim;

int main(int argc, char** argv) {
  bench::Init(argc, argv);
  bench::PrintHeader("Figure 11 — software-level fault models",
                     "Architectural fault injection on the functional "
                     "simulator, averaged over the 10-benchmark suite");
  const int trials =
      static_cast<int>(EnvInt("TFI_SOFT_TRIALS", 100));

  TextTable t({"fault model", "Exception%", "State OK%", "Output OK%",
               "Output Bad%", "StateOK w/ ctrl-flow div%"});
  for (int m = 0; m < kNumSoftFaultModels; ++m) {
    SoftCampaignResult total;
    for (const auto& w : AllWorkloads()) {
      SoftCampaignSpec spec;
      spec.workload = w.name;
      spec.model = static_cast<SoftFaultModel>(m);
      spec.trials = trials;
      spec.iters = 8;
      const SoftCampaignResult r = RunSoftCampaign(spec);
      for (int o = 0; o < kNumSoftOutcomes; ++o)
        total.by_outcome[o] += r.by_outcome[o];
      total.state_ok_with_divergence += r.state_ok_with_divergence;
      total.trials += r.trials;
    }
    const auto n = static_cast<double>(total.trials);
    const auto pct = [&](SoftOutcome o) {
      return Fmt(100.0 * total.by_outcome[static_cast<int>(o)] / n, 1);
    };
    const std::uint64_t sok =
        total.by_outcome[static_cast<int>(SoftOutcome::kStateOk)];
    t.AddRow({SoftFaultModelName(static_cast<SoftFaultModel>(m)),
              pct(SoftOutcome::kException), pct(SoftOutcome::kStateOk),
              pct(SoftOutcome::kOutputOk), pct(SoftOutcome::kOutputBad),
              Fmt(sok ? 100.0 * total.state_ok_with_divergence / sok : 0.0,
                  1)});
  }
  std::fputs(t.Render().c_str(), stdout);
  std::printf(
      "\n[paper: ~50%% State OK across models — about half the errors that "
      "escape the hardware are masked by software; 10-20%% of State OK "
      "trials under models 1-5 saw transient control-flow divergence]\n");
  return 0;
}
