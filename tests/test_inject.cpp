// Tests of the fault-injection machinery: golden recording invariants,
// trial classification on targeted injections, cache round trips.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "inject/cache.h"
#include "inject/campaign.h"
#include "inject/golden.h"
#include "inject/trial.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

GoldenSpec SmallSpec() {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 3;
  gs.spacing = 500;
  gs.window = 4000;
  gs.slack = 1000;
  return gs;
}

struct SharedGolden {
  Program prog;
  std::shared_ptr<const GoldenRun> golden;
};

const SharedGolden& Shared() {
  static const SharedGolden s = [] {
    SharedGolden sg;
    sg.prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
    sg.golden = RecordGolden(CoreConfig{}, sg.prog, SmallSpec());
    return sg;
  }();
  return s;
}

TEST(Golden, TimelineShapesAreConsistent) {
  const auto& g = *Shared().golden;
  const std::uint64_t expect =
      2 * 500 + 4000 + 200 + 1000;  // (points-1)*spacing+window+offset+slack
  EXPECT_EQ(g.timeline.state_hash.size(), expect);
  EXPECT_EQ(g.timeline.arch_hash.size(), expect);
  EXPECT_EQ(g.timeline.retired_total.size(), expect);
  EXPECT_EQ(g.checkpoints.size(), 3u);
  EXPECT_GT(g.timeline.events.size(), 1000u);
  EXPECT_GT(g.stats.Ipc(), 0.5);
}

TEST(Golden, RetiredTotalsAreMonotonic) {
  const auto& tl = Shared().golden->timeline;
  for (std::size_t i = 1; i < tl.retired_total.size(); ++i)
    EXPECT_LE(tl.retired_total[i - 1], tl.retired_total[i]);
}

TEST(Golden, CheckpointReplayMatchesTimeline) {
  const auto& g = *Shared().golden;
  Core core(g.cfg, g.program);
  core.Load(g.checkpoints[1]);
  core.tlb() = g.tlb;
  // Replaying from checkpoint 1 must reproduce the recorded hashes exactly.
  for (int c = 0; c < 200; ++c) {
    core.Cycle();
    ASSERT_EQ(core.StateHash(),
              g.timeline.state_hash[1 * 500 + static_cast<std::size_t>(c)])
        << "cycle " << c;
  }
}

TEST(Golden, FailsOnExitingProgram) {
  const Program tiny = BuildWorkload(WorkloadByName("gzip"), 1);
  GoldenSpec gs = SmallSpec();
  gs.warmup = 0;
  gs.window = 300000;  // long enough that the program exits inside
  EXPECT_THROW(RecordGolden(CoreConfig{}, tiny, gs), std::runtime_error);
}

TEST(Trial, NoInjectionEffectMatchesImmediately) {
  // Flip a bit and flip it back via a second trial run: simplest is to pick
  // a bit, run, and verify the double-flip identity through the registry
  // (covered elsewhere); here: inject into a *background-adjacent* dead bit
  // — the upper bit of a free physical register — and expect masking.
  TrialRunner runner(Shared().golden);
  Rng rng(5);
  int masked = 0, trials = 0;
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  for (std::uint64_t i = 0; i < bits && trials < 40; ++i) {
    const BitLocation loc = runner.core().registry().LocateBit(i, true);
    if (loc.name != "regfile.value" || loc.bit < 60) continue;
    TrialSpec ts{1, 10, i, true};
    const TrialRecord r = runner.Run(ts).record;
    ++trials;
    if (r.outcome == Outcome::kMicroArchMatch) ++masked;
  }
  ASSERT_GT(trials, 10);
  // High regfile bits are mostly dead (addresses/counters are small).
  EXPECT_GT(masked, trials / 2);
}

TEST(Trial, ArchRatCorruptionIsRegfileSdc) {
  TrialRunner runner(Shared().golden);
  int sdc = 0, total = 0;
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  for (std::uint64_t i = 0; i < bits; ++i) {
    const BitLocation loc = runner.core().registry().LocateBit(i, true);
    if (loc.name != "rename.archrat") continue;
    // Low pointer bits of actively used architectural registers.
    if (loc.bit >= 3) continue;
    const TrialRecord r = runner.Run({0, 5, i, true}).record;
    ++total;
    if (r.outcome == Outcome::kSdc && r.mode == FailureMode::kRegfile) ++sdc;
  }
  ASSERT_GT(total, 50);
  EXPECT_GT(sdc, total / 3) << "archrat corruption should frequently corrupt "
                               "the architectural register file";
}

TEST(Trial, FetchPcCorruptionDivergesOrRecovers) {
  TrialRunner runner(Shared().golden);
  const std::uint64_t bits = runner.core().registry().InjectableBits(true);
  int classified = 0;
  for (std::uint64_t i = 0; i < bits; ++i) {
    const BitLocation loc = runner.core().registry().LocateBit(i, true);
    if (loc.name != "fetch.pc") continue;
    const TrialRecord r = runner.Run({0, 3, i, true}).record;
    ++classified;
    // Every outcome is acceptable, but the trial must terminate decisively
    // (this exercise is about totality of classification).
    (void)r;
  }
  EXPECT_EQ(classified, 62);
}

TEST(Trial, RecordsUtilizationAtInjection) {
  TrialRunner runner(Shared().golden);
  const TrialRecord r = runner.Run({0, 50, 12345, true}).record;
  EXPECT_GT(r.inflight, 0u);
  EXPECT_LE(r.valid_instrs, 132u);
}

TEST(Campaign, CacheRoundTrips) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_test_cache").string();
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);
  std::filesystem::remove_all(dir);

  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 25;
  spec.golden = SmallSpec();
  CampaignOptions quiet;
  quiet.verbose = false;
  const CampaignResult fresh = RunCampaign(spec, quiet);
  const CampaignResult cached = RunCampaign(spec, quiet);
  ASSERT_EQ(fresh.trials.size(), cached.trials.size());
  for (std::size_t i = 0; i < fresh.trials.size(); ++i) {
    EXPECT_EQ(fresh.trials[i].outcome, cached.trials[i].outcome);
    EXPECT_EQ(fresh.trials[i].mode, cached.trials[i].mode);
    EXPECT_EQ(fresh.trials[i].cat, cached.trials[i].cat);
    EXPECT_EQ(fresh.trials[i].cycles, cached.trials[i].cycles);
  }
  EXPECT_EQ(fresh.ByOutcome(), cached.ByOutcome());
  std::filesystem::remove_all(dir);
  ::unsetenv("TFI_CACHE_DIR");
}

TEST(Campaign, DeterministicForFixedSeed) {
  ::setenv("TFI_CACHE_DIR", "/nonexistent-cache-dir-ignore", 1);
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = 15;
  spec.golden = SmallSpec();
  CampaignOptions quiet;
  quiet.verbose = false;
  const auto a = RunCampaign(spec, quiet).ByOutcome();
  const auto b = RunCampaign(spec, quiet).ByOutcome();
  EXPECT_EQ(a, b);
  ::unsetenv("TFI_CACHE_DIR");
}

TEST(Campaign, MergeAggregates) {
  CampaignResult a, b;
  a.trials.resize(3);
  a.trials[0].outcome = Outcome::kSdc;
  b.trials.resize(2);
  const CampaignResult m = MergeResults({a, b});
  EXPECT_EQ(m.trials.size(), 5u);
  EXPECT_EQ(m.ByOutcome()[static_cast<int>(Outcome::kSdc)], 1u);
}

TEST(Outcome, NamesAreTotal) {
  for (int i = 0; i < kNumOutcomes; ++i)
    EXPECT_STRNE(OutcomeName(static_cast<Outcome>(i)), "?");
  for (int i = 0; i < kNumFailureModes; ++i)
    EXPECT_STRNE(FailureModeName(static_cast<FailureMode>(i)), "?");
}

TEST(Outcome, SdcTypedModes) {
  EXPECT_TRUE(IsSdcMode(FailureMode::kRegfile));
  EXPECT_TRUE(IsSdcMode(FailureMode::kMem));
  EXPECT_TRUE(IsSdcMode(FailureMode::kCtrl));
  EXPECT_TRUE(IsSdcMode(FailureMode::kItlb));
  EXPECT_TRUE(IsSdcMode(FailureMode::kDtlb));
  EXPECT_FALSE(IsSdcMode(FailureMode::kExcept));
  EXPECT_FALSE(IsSdcMode(FailureMode::kLocked));
  EXPECT_FALSE(IsSdcMode(FailureMode::kNoFailure));
}

}  // namespace
}  // namespace tfsim
