#include <gtest/gtest.h>

#include "protect/ecc.h"
#include "util/rng.h"

namespace tfsim {
namespace {

TEST(EccRegptr, CleanDecode) {
  for (std::uint64_t p = 0; p < 128; ++p) {
    const std::uint64_t check = EncodeRegptrEcc(p);
    const EccDecodeResult r = DecodeRegptrEcc(p, check);
    EXPECT_FALSE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(r.data.lo, p);
  }
}

// Exhaustive sweep: every single-bit error in every (11,7) codeword is
// corrected — data bits and check bits alike.
class RegptrBitTest : public ::testing::TestWithParam<int> {};

TEST_P(RegptrBitTest, SingleBitErrorCorrected) {
  const int bit = GetParam();
  for (std::uint64_t p = 0; p < 128; p += 3) {
    std::uint64_t data = p;
    std::uint64_t check = EncodeRegptrEcc(p);
    if (bit < 7) data ^= 1ULL << bit;
    else check ^= 1ULL << (bit - 7);
    const EccDecodeResult r =
        EccDecode({data, false}, check, kRegptrDataBits, kRegptrEccBits);
    EXPECT_TRUE(r.corrected) << "p=" << p << " bit=" << bit;
    EXPECT_EQ(r.data.lo, p) << "p=" << p << " bit=" << bit;
    EXPECT_EQ(r.check, EncodeRegptrEcc(p));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, RegptrBitTest, ::testing::Range(0, 11));

TEST(EccRegfile, CleanDecode) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const Word65 v{rng.Next(), rng.NextBool(0.5)};
    const EccDecodeResult r = DecodeRegfileEcc(v, EncodeRegfileEcc(v));
    EXPECT_FALSE(r.corrected);
    EXPECT_FALSE(r.uncorrectable);
    EXPECT_EQ(r.data, v);
  }
}

// Exhaustive data-bit sweep for the (73,65) SEC-DED register-file code.
class RegfileBitTest : public ::testing::TestWithParam<int> {};

TEST_P(RegfileBitTest, SingleDataBitErrorCorrected) {
  const int bit = GetParam();
  Rng rng(static_cast<std::uint64_t>(bit) + 100);
  for (int i = 0; i < 20; ++i) {
    const Word65 v{rng.Next(), rng.NextBool(0.5)};
    const std::uint64_t check = EncodeRegfileEcc(v);
    Word65 bad = v;
    if (bit < 64) bad.lo ^= 1ULL << bit;
    else bad.hi = !bad.hi;
    const EccDecodeResult r = DecodeRegfileEcc(bad, check);
    EXPECT_TRUE(r.corrected) << bit;
    EXPECT_EQ(r.data, v) << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataBits, RegfileBitTest, ::testing::Range(0, 65));

TEST(EccRegfile, SingleCheckBitErrorCorrected) {
  const Word65 v{0xDEADBEEFCAFEF00Dull, true};
  const std::uint64_t check = EncodeRegfileEcc(v);
  for (int bit = 0; bit < kRegfileEccBits; ++bit) {
    const EccDecodeResult r = DecodeRegfileEcc(v, check ^ (1ULL << bit));
    EXPECT_TRUE(r.corrected) << bit;
    EXPECT_EQ(r.data, v) << bit;
    EXPECT_EQ(r.check, check) << bit;
  }
}

TEST(EccRegfile, DoubleErrorsDetectedNotMiscorrected) {
  // SEC-DED: two data-bit errors must flag uncorrectable (and never silently
  // "repair" to wrong data).
  Rng rng(77);
  int detected = 0;
  const int kTrials = 300;
  for (int i = 0; i < kTrials; ++i) {
    const Word65 v{rng.Next(), rng.NextBool(0.5)};
    const std::uint64_t check = EncodeRegfileEcc(v);
    const int b1 = static_cast<int>(rng.NextBelow(65));
    int b2 = static_cast<int>(rng.NextBelow(65));
    while (b2 == b1) b2 = static_cast<int>(rng.NextBelow(65));
    Word65 bad = v;
    for (int b : {b1, b2}) {
      if (b < 64) bad.lo ^= 1ULL << b;
      else bad.hi = !bad.hi;
    }
    const EccDecodeResult r = DecodeRegfileEcc(bad, check);
    EXPECT_FALSE(r.corrected && r.data == v) << "silent acceptance";
    if (r.uncorrectable) ++detected;
    if (r.corrected) {
      EXPECT_NE(r.data, v);  // (would be a miracle)
    }
  }
  EXPECT_EQ(detected, kTrials);  // all double errors flagged
}

}  // namespace
}  // namespace tfsim
