// Unit tests for the shared command-line flag parser used by tfi, the smoke
// tools and the bench binaries.
#include <gtest/gtest.h>

#include "util/argparse.h"

namespace tfsim {
namespace {

struct Bound {
  std::int64_t trials = 300;
  std::int64_t jobs = 1;
  bool progress = false;
  std::string metrics;
};

ArgParser Make(Bound& b) {
  ArgParser p;
  p.AddInt("trials", &b.trials, "injection trials");
  p.AddInt("jobs", &b.jobs, "worker threads");
  p.AddFlag("progress", &b.progress, "progress lines");
  p.AddStr("metrics-json", &b.metrics, "metrics export path");
  return p;
}

char** Argv(std::vector<const char*>& v) {
  return const_cast<char**>(v.data());
}

TEST(ArgParser, HappyPathFillsTargetsAndPositionals) {
  Bound b;
  ArgParser p = Make(b);
  std::vector<const char*> argv = {"tool",       "gzip", "--trials", "500",
                                   "--progress", "--jobs", "4",
                                   "--metrics-json", "m.json", "extra"};
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), Argv(argv)));
  EXPECT_EQ(b.trials, 500);
  EXPECT_EQ(b.jobs, 4);
  EXPECT_TRUE(b.progress);
  EXPECT_EQ(b.metrics, "m.json");
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "gzip");
  EXPECT_EQ(p.positional()[1], "extra");
  EXPECT_TRUE(p.error().empty());
}

TEST(ArgParser, UnknownFlagIsRejectedNotTreatedAsPositional) {
  Bound b;
  ArgParser p = Make(b);
  std::vector<const char*> argv = {"tool", "--trails", "500"};
  EXPECT_FALSE(p.Parse(static_cast<int>(argv.size()), Argv(argv)));
  EXPECT_NE(p.error().find("--trails"), std::string::npos);
}

TEST(ArgParser, MissingValueIsAnError) {
  Bound b;
  ArgParser p = Make(b);
  std::vector<const char*> argv = {"tool", "--trials"};
  EXPECT_FALSE(p.Parse(static_cast<int>(argv.size()), Argv(argv)));
  EXPECT_NE(p.error().find("requires a value"), std::string::npos);

  std::vector<const char*> argv2 = {"tool", "--metrics-json"};
  ArgParser p2 = Make(b);
  EXPECT_FALSE(p2.Parse(static_cast<int>(argv2.size()), Argv(argv2)));
}

TEST(ArgParser, MalformedIntegerIsAnError) {
  Bound b;
  ArgParser p = Make(b);
  std::vector<const char*> argv = {"tool", "--jobs", "many"};
  EXPECT_FALSE(p.Parse(static_cast<int>(argv.size()), Argv(argv)));
  EXPECT_NE(p.error().find("integer"), std::string::npos);
  EXPECT_EQ(b.jobs, 1);  // target untouched on error
}

TEST(ArgParser, NegativeAndZeroIntegersParse) {
  Bound b;
  ArgParser p = Make(b);
  std::vector<const char*> argv = {"tool", "--jobs", "0", "--trials", "-1"};
  ASSERT_TRUE(p.Parse(static_cast<int>(argv.size()), Argv(argv)));
  EXPECT_EQ(b.jobs, 0);
  EXPECT_EQ(b.trials, -1);
}

TEST(ArgParser, HelpListsEveryFlagInRegistrationOrder) {
  Bound b;
  ArgParser p = Make(b);
  const std::string help = p.Help();
  const auto trials = help.find("--trials");
  const auto jobs = help.find("--jobs");
  const auto progress = help.find("--progress");
  const auto metrics = help.find("--metrics-json");
  EXPECT_NE(trials, std::string::npos);
  EXPECT_LT(trials, jobs);
  EXPECT_LT(jobs, progress);
  EXPECT_LT(progress, metrics);
  EXPECT_NE(help.find("injection trials"), std::string::npos);
}

TEST(ArgParser, ResolveJobsNeverReturnsZeroWorkers) {
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_EQ(ResolveJobs(1), 1);
  // 0 and negative mean "all hardware threads"; even when the hardware
  // concurrency is unknown (reported as 0) at least one worker is spawned.
  EXPECT_GE(ResolveJobs(0), 1);
  EXPECT_GE(ResolveJobs(-3), 1);
  // Absurd requests clamp instead of overflowing int.
  EXPECT_GT(ResolveJobs(std::int64_t{1} << 40), 0);
}

}  // namespace
}  // namespace tfsim
