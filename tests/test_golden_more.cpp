// Additional golden-run and timeline invariants, including protected-config
// recording and the Figure 6 instrumentation.
#include <gtest/gtest.h>

#include "inject/golden.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

GoldenSpec TinySpec() {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 2;
  gs.spacing = 300;
  gs.window = 1500;
  gs.slack = 500;
  return gs;
}

TEST(GoldenMore, ProtectedConfigurationRecordsCleanly) {
  CoreConfig cfg;
  cfg.protect = ProtectionConfig::All();
  const Program prog = BuildWorkload(WorkloadByName("parser"), kCampaignIters);
  const auto g = RecordGolden(cfg, prog, TinySpec());
  EXPECT_GT(g->stats.Ipc(), 0.5);
  EXPECT_EQ(g->checkpoints.size(), 2u);
}

TEST(GoldenMore, ValidInstrsNeverExceedInflight) {
  const Program prog = BuildWorkload(WorkloadByName("gcc"), kCampaignIters);
  const auto g = RecordGolden(CoreConfig{}, prog, TinySpec());
  const auto& tl = g->timeline;
  for (std::size_t c = 0; c < tl.inflight.size(); c += 13) {
    EXPECT_LE(tl.ValidInstrsAt(c), tl.inflight[c]) << c;
    EXPECT_LE(tl.inflight[c], 132u) << c;
  }
}

TEST(GoldenMore, WrongPathInstructionsAreNotValid) {
  // On a mispredict-heavy workload, a healthy share of in-flight
  // instructions must be wrong-path (in-flight > valid).
  const Program prog = BuildWorkload(WorkloadByName("vpr"), kCampaignIters);
  const auto g = RecordGolden(CoreConfig{}, prog, TinySpec());
  const auto& tl = g->timeline;
  std::uint64_t inflight_sum = 0, valid_sum = 0;
  for (std::size_t c = 0; c < tl.inflight.size(); c += 7) {
    inflight_sum += tl.inflight[c];
    valid_sum += tl.ValidInstrsAt(c);
  }
  EXPECT_LT(valid_sum, inflight_sum);
  EXPECT_GT(valid_sum, inflight_sum / 4);
}

TEST(GoldenMore, EventLookupHonoursBase) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const auto g = RecordGolden(CoreConfig{}, prog, TinySpec());
  const auto& tl = g->timeline;
  EXPECT_EQ(tl.EventAt(tl.base_retired - 1), nullptr);
  ASSERT_NE(tl.EventAt(tl.base_retired), nullptr);
  EXPECT_EQ(tl.EventAt(tl.base_retired), &tl.events[0]);
  EXPECT_EQ(tl.EventAt(tl.base_retired + tl.events.size()), nullptr);
}

TEST(GoldenMore, TlbIsFrozenAfterRecording) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const auto g = RecordGolden(CoreConfig{}, prog, TinySpec());
  Tlb tlb = g->tlb;
  EXPECT_FALSE(tlb.learning());
  EXPECT_GT(tlb.InsnPages(), 0u);
  EXPECT_GT(tlb.DataPages(), 0u);
  EXPECT_FALSE(tlb.LookupData(0x40000000ull));  // wild page not preloaded
}

TEST(GoldenMore, CountToCycleMapsFirstOccurrence) {
  const Program prog = BuildWorkload(WorkloadByName("gzip"), kCampaignIters);
  const auto g = RecordGolden(CoreConfig{}, prog, TinySpec());
  const auto& tl = g->timeline;
  for (const auto& [count, cycle] : tl.count_to_cycle) {
    ASSERT_LT(cycle, tl.retired_total.size());
    EXPECT_EQ(tl.retired_total[cycle], count);
    if (cycle > 0) {
      EXPECT_LT(tl.retired_total[cycle - 1], count + 1);
    }
  }
}

}  // namespace
}  // namespace tfsim
