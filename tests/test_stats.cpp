#include <gtest/gtest.h>

#include "util/stats.h"
#include "util/table.h"

namespace tfsim {
namespace {

TEST(Proportion, EmptyTotalIsZero) {
  const Proportion p = MakeProportion(0, 0);
  EXPECT_EQ(p.value, 0.0);
  EXPECT_EQ(p.ci95, 0.0);
}

TEST(Proportion, HalfHasMaximalCi) {
  const Proportion half = MakeProportion(50, 100);
  const Proportion skew = MakeProportion(5, 100);
  EXPECT_DOUBLE_EQ(half.value, 0.5);
  EXPECT_GT(half.ci95, skew.ci95);
}

TEST(Proportion, CiShrinksWithSamples) {
  EXPECT_GT(MakeProportion(50, 100).ci95, MakeProportion(5000, 10000).ci95);
}

TEST(Proportion, PaperScaleCi) {
  // Section 2.3: 25-30k trials yield a CI under 0.7% at 95% confidence.
  const Proportion p = MakeProportion(25000 / 2, 25000);
  EXPECT_LT(p.ci95, 0.007);
}

TEST(LinearFit, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 - 0.25 * i);
  }
  const LinearFit f = FitLeastSquares(xs, ys);
  EXPECT_NEAR(f.slope, -0.25, 1e-12);
  EXPECT_NEAR(f.intercept, 3.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(LinearFit, FlatDataHasZeroSlope) {
  const LinearFit f = FitLeastSquares({1, 2, 3, 4}, {5, 5, 5, 5});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 5.0);
}

TEST(LinearFit, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FitLeastSquares({}, {}).slope, 0.0);
  const LinearFit f = FitLeastSquares({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);  // vertical line: fall back to mean
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(RunningStat, TracksMeanMinMax) {
  RunningStat s;
  for (double v : {3.0, 1.0, 2.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
  EXPECT_EQ(s.Count(), 3u);
}

TEST(RunningStat, WelfordVarianceMatchesClosedForm) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  // Textbook example: mean 5, population variance 4, sample variance 32/7.
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, DegenerateVariance) {
  RunningStat empty;
  EXPECT_DOUBLE_EQ(empty.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(empty.StdDev(), 0.0);
  RunningStat one;
  one.Add(42.0);
  EXPECT_DOUBLE_EQ(one.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.SampleVariance(), 0.0);
  RunningStat constant;
  for (int i = 0; i < 10; ++i) constant.Add(3.5);
  EXPECT_DOUBLE_EQ(constant.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(constant.StdDev(), 0.0);
}

TEST(RunningStat, WelfordIsStableAgainstLargeOffsets) {
  // The naive sum-of-squares formula catastrophically cancels when the mean
  // dwarfs the spread; Welford does not. Same data, huge offset:
  const double kOffset = 1e9;
  RunningStat s;
  for (double v : {4.0, 7.0, 13.0, 16.0}) s.Add(kOffset + v);
  EXPECT_NEAR(s.Variance(), 22.5, 1e-6);
  EXPECT_NEAR(s.Mean(), kOffset + 10.0, 1e-3);
}

TEST(Table, RendersHeaderAndRows) {
  TextTable t({"a", "bb"});
  t.AddRow({"x", "1"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, BarWidthsRespectFraction) {
  EXPECT_EQ(Bar(0.0, 10), "..........");
  EXPECT_EQ(Bar(1.0, 10), "##########");
  EXPECT_EQ(Bar(0.5, 10), "#####.....");
  EXPECT_EQ(Bar(2.0, 4), "####");  // clamped
}

TEST(Table, StackedBarUsesGlyphsInOrder) {
  const std::string bar = StackedBar({0.5, 0.5}, "AB", 10);
  EXPECT_EQ(bar, "AAAAABBBBB");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace tfsim
