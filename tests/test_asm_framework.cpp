// The static-analysis substrate: Lift, canonical-word round-tripping, CFG
// recovery (calls, returns, resolved indirections, exit syscalls,
// dominators), and the register dataflow analyses, on small fixtures and on
// every workload in the suite.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "analyze/asm/cfg.h"
#include "analyze/asm/dataflow.h"
#include "isa/assemble.h"
#include "isa/isa.h"
#include "workloads/workloads.h"

namespace tfsim {
namespace {

using analyze::AsmProgram;
using analyze::BuildCfg;
using analyze::Cfg;
using analyze::Dataflow;
using analyze::kNoBlock;
using analyze::Lift;

AsmProgram LiftSource(const std::string& src) { return Lift(Assemble(src)); }

// Blocks are in address order; the block holding an instruction address is
// the stable way to name a block in a fixture.
std::size_t BlockAt(const Cfg& cfg, std::uint64_t addr) {
  const auto idx = cfg.prog->IndexOf(addr);
  EXPECT_TRUE(idx.has_value()) << "no instruction at " << std::hex << addr;
  return cfg.block_of_inst[*idx];
}

TEST(AsmLift, DecodesTextAndSymbols) {
  const AsmProgram p = LiftSource(
      "_start: addq r1, r2, r3\n"
      "loop:   subqi r3, 1, r3\n"
      "        bne r3, loop\n"
      "        li v0, 1\n"
      "        syscall\n");
  ASSERT_EQ(p.insts.size(), 6u);  // li expands to ldah+lda
  EXPECT_EQ(p.entry, kAsmTextBase);
  EXPECT_EQ(p.insts[0].addr, kAsmTextBase);
  EXPECT_EQ(p.insts[0].d.op, Op::kAddq);
  EXPECT_TRUE(p.insts[0].canonical);
  EXPECT_EQ(p.symbols.at("loop"), kAsmTextBase + 4);
  EXPECT_EQ(p.IndexOf(kAsmTextBase + 8), std::optional<std::size_t>(2));
  EXPECT_FALSE(p.IndexOf(kAsmTextBase + 2).has_value());
  EXPECT_EQ(p.Locate(kAsmTextBase + 8), "loop+0x4");
}

TEST(AsmLift, NonCanonicalWordsAreFlagged) {
  const AsmProgram p = LiftSource(
      "_start: addq r1, r2, r3\n"
      "        .long 0xffffffff\n");
  ASSERT_EQ(p.insts.size(), 2u);
  EXPECT_TRUE(p.insts[0].canonical);
  EXPECT_FALSE(p.insts[1].canonical);
}

// Assemble -> DisassembleProgram -> Assemble is a fixed point on every
// workload: byte-identical chunks, same entry, and the disassembly itself is
// stable. This pins the canonical-form invariant the whole analysis stack
// (and the hardening verifier's word-diff) relies on.
TEST(AsmRoundTrip, WorkloadsReachFixedPoint) {
  for (const auto& w : AllWorkloads()) {
    const Program p = BuildWorkload(w, kCampaignIters);
    const std::string src = analyze::DisassembleProgram(p);
    const Program p2 = Assemble(src);
    EXPECT_EQ(p.entry, p2.entry) << w.name;
    ASSERT_EQ(p.chunks.size(), p2.chunks.size()) << w.name;
    for (std::size_t i = 0; i < p.chunks.size(); ++i) {
      EXPECT_EQ(p.chunks[i].addr, p2.chunks[i].addr) << w.name;
      EXPECT_EQ(p.chunks[i].bytes, p2.chunks[i].bytes) << w.name;
    }
    EXPECT_EQ(analyze::DisassembleProgram(p2), src) << w.name;
  }
}

TEST(AsmRoundTrip, ExampleProgramReachesFixedPoint) {
  std::ifstream in(std::string(TFSIM_SOURCE_DIR) + "/examples/hello.s");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  const Program p = Assemble(ss.str());
  const std::string src = analyze::DisassembleProgram(p);
  const Program p2 = Assemble(src);
  EXPECT_EQ(p.entry, p2.entry);
  ASSERT_EQ(p.chunks.size(), p2.chunks.size());
  for (std::size_t i = 0; i < p.chunks.size(); ++i)
    EXPECT_EQ(p.chunks[i].bytes, p2.chunks[i].bytes);
}

TEST(AsmCfg, DiamondShapeAndDominators) {
  const AsmProgram p = LiftSource(
      "_start: beq r1, else\n"         // b0
      "        addqi r2, 1, r2\n"      // b1 (then)
      "        br join\n"
      "else:   addqi r2, 2, r2\n"      // b2
      "join:   li v0, 1\n"             // b3
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  ASSERT_EQ(cfg.blocks.size(), 4u);
  const std::size_t b0 = cfg.entry_block;
  const std::size_t b1 = BlockAt(cfg, kAsmTextBase + 4);
  const std::size_t b2 = BlockAt(cfg, p.symbols.at("else"));
  const std::size_t b3 = BlockAt(cfg, p.symbols.at("join"));
  // Successor order for conditional branches is [target, fallthrough].
  EXPECT_EQ(cfg.blocks[b0].succs, (std::vector<std::size_t>{b2, b1}));
  EXPECT_EQ(cfg.blocks[b1].succs, (std::vector<std::size_t>{b3}));
  EXPECT_EQ(cfg.blocks[b2].succs, (std::vector<std::size_t>{b3}));
  EXPECT_TRUE(cfg.blocks[b3].is_exit);
  EXPECT_TRUE(cfg.blocks[b3].succs.empty());
  EXPECT_TRUE(cfg.Dominates(b0, b3));
  EXPECT_FALSE(cfg.Dominates(b1, b3));
  EXPECT_FALSE(cfg.Dominates(b2, b3));
  EXPECT_EQ(cfg.idom[b3], b0);
  EXPECT_TRUE(cfg.out_of_text.empty());
  EXPECT_TRUE(cfg.unresolved_indirect.empty());
}

TEST(AsmCfg, CallEdgesAreRasAware) {
  // Two call sites into one function: each call block's successor is the
  // callee entry, and the ret block's successors are exactly the two return
  // points (not every return point in the program).
  const AsmProgram p = LiftSource(
      "_start: bsr ra, fn\n"
      "ret1:   bsr ra, fn\n"
      "ret2:   li v0, 1\n"
      "        syscall\n"
      "fn:     addqi r4, 1, r4\n"
      "        ret r31, ra\n");
  const Cfg cfg = BuildCfg(p);
  const std::size_t c1 = cfg.entry_block;
  const std::size_t c2 = BlockAt(cfg, p.symbols.at("ret1"));
  const std::size_t rp2 = BlockAt(cfg, p.symbols.at("ret2"));
  const std::size_t fn = BlockAt(cfg, p.symbols.at("fn"));
  EXPECT_TRUE(cfg.blocks[c1].is_call);
  EXPECT_EQ(cfg.blocks[c1].call_target, std::optional<std::size_t>(fn));
  EXPECT_EQ(cfg.blocks[c1].succs, (std::vector<std::size_t>{fn}));
  EXPECT_EQ(cfg.ReturnPoint(c1), std::optional<std::size_t>(c2));
  // The function body may span several blocks; the ret block is the last.
  const std::size_t rb = BlockAt(cfg, p.symbols.at("fn") + 4);
  EXPECT_TRUE(cfg.blocks[rb].is_ret);
  std::vector<std::size_t> ret_succs = cfg.blocks[rb].succs;
  std::sort(ret_succs.begin(), ret_succs.end());
  std::vector<std::size_t> expect = {c2, rp2};
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(ret_succs, expect);
  EXPECT_EQ(cfg.func_of[fn], fn);
  EXPECT_EQ(cfg.func_of[cfg.entry_block], cfg.entry_block);
}

TEST(AsmCfg, IndirectJumpResolvedThroughLiPair) {
  const AsmProgram p = LiftSource(
      "_start: la r5, target\n"
      "        jmp r31, r5\n"
      "        addqi r1, 1, r1\n"  // skipped
      "target: li v0, 1\n"
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  EXPECT_TRUE(cfg.unresolved_indirect.empty());
  const std::size_t tb = BlockAt(cfg, p.symbols.at("target"));
  EXPECT_EQ(cfg.blocks[cfg.entry_block].succs,
            (std::vector<std::size_t>{tb}));
  // The skipped straight-line code is present but unreached.
  const std::size_t skipped = BlockAt(cfg, p.symbols.at("target") - 4);
  EXPECT_FALSE(cfg.reachable[skipped]);
}

TEST(AsmCfg, UnmaterializedIndirectIsRecorded) {
  const AsmProgram p = LiftSource(
      "_start: la r4, 0x40000\n"
      "        ldq r5, 0(r4)\n"
      "        jmp r31, r5\n");
  const Cfg cfg = BuildCfg(p);
  EXPECT_EQ(cfg.unresolved_indirect.size(), 1u);
  EXPECT_TRUE(cfg.blocks[cfg.entry_block].indirect_unresolved);
}

TEST(AsmCfg, NonExitSyscallFallsThrough) {
  const AsmProgram p = LiftSource(
      "_start: li v0, 2\n"   // kSysWrite
      "        syscall\n"
      "after:  li v0, 1\n"
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  const std::size_t b0 = cfg.entry_block;
  const std::size_t b1 = BlockAt(cfg, p.symbols.at("after"));
  EXPECT_FALSE(cfg.blocks[b0].is_exit);
  EXPECT_EQ(cfg.blocks[b0].succs, (std::vector<std::size_t>{b1}));
  EXPECT_TRUE(cfg.blocks[b1].is_exit);
}

TEST(AsmCfg, MaterializedConstPatterns) {
  const AsmProgram p = LiftSource(
      "_start: li r5, 0x123456\n"
      "        addqi r31, 7, r6\n"
      "        ldah r7, 2\n"
      "        jmp r31, r5\n");
  const Cfg cfg = BuildCfg(p);
  const auto idx = p.IndexOf(kAsmTextBase + 4 * 4);  // the jmp (li = 2 words)
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(analyze::MaterializedConst(cfg, *idx, 5),
            std::optional<std::int64_t>(0x123456));
  EXPECT_EQ(analyze::MaterializedConst(cfg, *idx, 6),
            std::optional<std::int64_t>(7));
  EXPECT_EQ(analyze::MaterializedConst(cfg, *idx, 7),
            std::optional<std::int64_t>(2 << 16));
  EXPECT_FALSE(analyze::MaterializedConst(cfg, *idx, 8).has_value());
}

TEST(AsmDataflow, UseDefMasks) {
  const AsmProgram p = LiftSource(
      "_start: addq r1, r2, r3\n"
      "        stq r4, 8(r5)\n"
      "        li v0, 1\n"
      "        syscall\n");
  using analyze::DefMask;
  using analyze::UseMask;
  EXPECT_EQ(UseMask(p.insts[0].d), (1u << 1) | (1u << 2));
  EXPECT_EQ(DefMask(p.insts[0].d), 1u << 3);
  EXPECT_EQ(UseMask(p.insts[1].d), (1u << 4) | (1u << 5));
  EXPECT_EQ(DefMask(p.insts[1].d), 0u);
  // syscall: uses the ABI registers (v0, a0, a1), defines v0.
  const auto& sys = p.insts.back().d;
  EXPECT_EQ(UseMask(sys), (1u << 0) | (1u << 16) | (1u << 17));
  EXPECT_EQ(DefMask(sys), 1u << 0);
}

TEST(AsmDataflow, LivenessAcrossBranch) {
  const AsmProgram p = LiftSource(
      "_start: addqi r31, 1, r1\n"
      "        addqi r31, 2, r2\n"
      "        beq r1, skip\n"
      "        addq r2, r2, r3\n"
      "skip:   li v0, 1\n"
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  const Dataflow df(cfg);
  const std::size_t then_b = BlockAt(cfg, p.symbols.at("skip") - 4);
  // r2 is live into the then-block (used by addq); r1 is not (dead after the
  // branch decision).
  EXPECT_TRUE(df.LiveIn(then_b) & (1u << 2));
  EXPECT_FALSE(df.LiveIn(then_b) & (1u << 1));
  // r3 is live out of nothing (never used).
  EXPECT_FALSE(df.LiveOut(then_b) & (1u << 3));
}

TEST(AsmDataflow, MaybeUninitTracksPaths) {
  const AsmProgram p = LiftSource(
      "_start: beq r1, skip\n"
      "        addqi r31, 5, r2\n"
      "skip:   addq r2, r2, r3\n"  // r2 defined on only one path
      "        li v0, 1\n"
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  const Dataflow df(cfg);
  const std::size_t join = BlockAt(cfg, p.symbols.at("skip"));
  EXPECT_TRUE(df.MaybeUninitIn(join) & (1u << 2));
  EXPECT_TRUE(df.MaybeUninitIn(join) & (1u << 1));  // r1 never defined
}

TEST(AsmDataflow, ReachingDefsKilledByRedefinition) {
  const AsmProgram p = LiftSource(
      "_start: addqi r31, 1, r1\n"   // inst 0: def r1 (killed below)
      "        addqi r31, 2, r1\n"   // inst 1: def r1
      "loop:   subqi r1, 1, r1\n"    // inst 2
      "        bne r1, loop\n"
      "        li v0, 1\n"
      "        syscall\n");
  const Cfg cfg = BuildCfg(p);
  const Dataflow df(cfg);
  const std::size_t loop = BlockAt(cfg, p.symbols.at("loop"));
  const auto& reach = df.ReachingIn(loop);
  EXPECT_FALSE(Dataflow::TestBit(reach, 0));  // killed by inst 1
  EXPECT_TRUE(Dataflow::TestBit(reach, 1));
  EXPECT_TRUE(Dataflow::TestBit(reach, 2));   // loop back edge
}

// Structural sanity of the recovered CFGs across the whole suite: entries
// valid, every branch target inside the text, every indirection resolved,
// and the only unreachable code is the post-exit hang loop.
TEST(AsmCfg, WorkloadsRecoverCleanGraphs) {
  for (const auto& w : AllWorkloads()) {
    const AsmProgram p = Lift(BuildWorkload(w, kCampaignIters));
    const Cfg cfg = BuildCfg(p);
    EXPECT_NE(cfg.entry_block, kNoBlock) << w.name;
    EXPECT_TRUE(cfg.out_of_text.empty()) << w.name;
    EXPECT_TRUE(cfg.unresolved_indirect.empty()) << w.name;
    std::size_t unreachable_insts = 0;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
      if (!cfg.reachable[b])
        unreachable_insts += cfg.blocks[b].last - cfg.blocks[b].first + 1;
    EXPECT_EQ(unreachable_insts, 1u) << w.name << ": only `hang` expected";
    for (const auto& inst : p.insts)
      EXPECT_TRUE(inst.canonical)
          << w.name << " @ " << p.Locate(inst.addr);
    // At least one exit block must exist and dominatorily follow the entry.
    bool has_exit = false;
    for (const auto& b : cfg.blocks) has_exit |= b.is_exit;
    EXPECT_TRUE(has_exit) << w.name;
  }
}

}  // namespace
}  // namespace tfsim
