#include <gtest/gtest.h>

#include "state/state_registry.h"
#include "util/rng.h"

namespace tfsim {
namespace {

TEST(StateRegistry, SetMasksToWidth) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kCtrl, Storage::kLatch, 4, 7);
  f.Set(0, 0xFFFF);
  EXPECT_EQ(f.Get(0), 0x7Fu);
}

TEST(StateRegistry, SixtyFourBitFields) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kData, Storage::kRam, 2, 64);
  f.Set(1, ~0ULL);
  EXPECT_EQ(f.Get(1), ~0ULL);
}

TEST(StateRegistry, RejectsBadWidths) {
  StateRegistry reg;
  EXPECT_THROW(reg.Allocate("z", StateCat::kCtrl, Storage::kLatch, 1, 0),
               std::invalid_argument);
  EXPECT_THROW(reg.Allocate("z", StateCat::kCtrl, Storage::kLatch, 1, 65),
               std::invalid_argument);
}

TEST(StateRegistry, IncrementalHashMatchesRecompute) {
  StateRegistry reg;
  StateField a = reg.Allocate("a", StateCat::kCtrl, Storage::kLatch, 16, 13);
  StateField b = reg.Allocate("b", StateCat::kData, Storage::kRam, 8, 64);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    a.Set(rng.NextBelow(16), rng.Next());
    b.Set(rng.NextBelow(8), rng.Next());
    if (i % 500 == 0) {
      EXPECT_EQ(reg.Hash(), reg.RecomputeHash());
    }
  }
  EXPECT_EQ(reg.Hash(), reg.RecomputeHash());
}

TEST(StateRegistry, HashReturnsAfterUndo) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kPc, Storage::kLatch, 4, 62);
  const std::uint64_t h0 = reg.Hash();
  f.Set(2, 12345);
  EXPECT_NE(reg.Hash(), h0);
  f.Set(2, 0);
  EXPECT_EQ(reg.Hash(), h0);
}

TEST(StateRegistry, InjectableBitCountsRespectStorage) {
  StateRegistry reg;
  reg.Allocate("lat", StateCat::kCtrl, Storage::kLatch, 10, 3);   // 30 bits
  reg.Allocate("ram", StateCat::kData, Storage::kRam, 5, 8);      // 40 bits
  reg.Allocate("bg", StateCat::kData, Storage::kBackground, 9, 9);
  EXPECT_EQ(reg.InjectableBits(false), 30u);
  EXPECT_EQ(reg.InjectableBits(true), 70u);
}

TEST(StateRegistry, LocateBitWalksTheWholeSpace) {
  StateRegistry reg;
  reg.Allocate("a", StateCat::kCtrl, Storage::kLatch, 2, 3);
  reg.Allocate("bg", StateCat::kData, Storage::kBackground, 4, 64);
  reg.Allocate("b", StateCat::kAddr, Storage::kRam, 1, 4);
  // 6 latch bits then 4 RAM bits; background skipped entirely.
  for (std::uint64_t i = 0; i < 6; ++i) {
    const BitLocation loc = reg.LocateBit(i, true);
    EXPECT_EQ(loc.name, "a");
    EXPECT_EQ(loc.element, i / 3);
    EXPECT_EQ(loc.bit, i % 3);
  }
  for (std::uint64_t i = 6; i < 10; ++i)
    EXPECT_EQ(reg.LocateBit(i, true).name, "b");
  EXPECT_THROW(reg.LocateBit(10, true), std::out_of_range);
  EXPECT_THROW(reg.LocateBit(6, false), std::out_of_range);
}

TEST(StateRegistry, FlipBitTogglesExactlyThatBit) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kInsn, Storage::kRam, 3, 32);
  f.Set(1, 0xF0F0F0F0);
  const BitLocation loc = reg.LocateBit(32 + 5, true);  // element 1, bit 5
  EXPECT_TRUE(reg.ReadBit(loc));  // bit 5 of 0xF0 is set
  reg.FlipBit(loc);
  EXPECT_FALSE(reg.ReadBit(loc));
  EXPECT_EQ(f.Get(1), 0xF0F0F0F0u ^ (1u << 5));
  EXPECT_EQ(reg.Hash(), reg.RecomputeHash());
}

TEST(StateRegistry, DoubleFlipRestoresHash) {
  StateRegistry reg;
  reg.Allocate("f", StateCat::kValid, Storage::kLatch, 100, 1);
  Rng rng(2);
  const std::uint64_t h0 = reg.Hash();
  for (int i = 0; i < 100; ++i) {
    const BitLocation loc = reg.LocateBit(rng.NextBelow(100), false);
    reg.FlipBit(loc);
    reg.FlipBit(loc);
    EXPECT_EQ(reg.Hash(), h0);
  }
}

TEST(StateRegistry, SnapshotRestoreRoundTrip) {
  StateRegistry reg;
  StateField f = reg.Allocate("f", StateCat::kData, Storage::kRam, 32, 64);
  Rng rng(3);
  for (int i = 0; i < 32; ++i) f.Set(i, rng.Next());
  const auto snap = reg.Snapshot();
  const std::uint64_t h = reg.Hash();
  for (int i = 0; i < 32; ++i) f.Set(i, rng.Next());
  EXPECT_NE(reg.Hash(), h);
  reg.Restore(snap);
  EXPECT_EQ(reg.Hash(), h);
  EXPECT_EQ(reg.Hash(), reg.RecomputeHash());
}

TEST(StateRegistry, RestoreRejectsWrongSize) {
  StateRegistry reg;
  reg.Allocate("f", StateCat::kData, Storage::kRam, 4, 8);
  EXPECT_THROW(reg.Restore(std::vector<std::uint64_t>(3)),
               std::invalid_argument);
}

TEST(StateRegistry, InventoryByCategory) {
  StateRegistry reg;
  reg.Allocate("a", StateCat::kRegptr, Storage::kLatch, 10, 7);
  reg.Allocate("b", StateCat::kRegptr, Storage::kRam, 4, 7);
  reg.Allocate("c", StateCat::kData, Storage::kRam, 2, 64);
  const auto inv = reg.Inventory(StateCat::kRegptr);
  EXPECT_EQ(inv.latch_bits, 70u);
  EXPECT_EQ(inv.ram_bits, 28u);
  const auto total = reg.TotalInjectable();
  EXPECT_EQ(total.latch_bits, 70u);
  EXPECT_EQ(total.ram_bits, 28u + 128u);
}

TEST(StateRegistry, IdenticalAllocationOrderGivesIdenticalLayout) {
  auto build = [](StateRegistry& reg) {
    reg.Allocate("x", StateCat::kCtrl, Storage::kLatch, 7, 11);
    reg.Allocate("y", StateCat::kAddr, Storage::kRam, 3, 58);
  };
  StateRegistry a, b;
  build(a);
  build(b);
  StateField fa = a.Allocate("z", StateCat::kPc, Storage::kLatch, 1, 62);
  StateField fb = b.Allocate("z", StateCat::kPc, Storage::kLatch, 1, 62);
  fa.Set(0, 999);
  fb.Set(0, 999);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(StateCatName, AllNamed) {
  for (int c = 0; c < kNumStateCats; ++c)
    EXPECT_STRNE(StateCatName(static_cast<StateCat>(c)), "?");
}

}  // namespace
}  // namespace tfsim
