// Campaign telemetry: the event journal is pure observation. Attaching it
// (with any set of sinks) must leave trial records, classification counts
// and cache keys byte-identical at every --jobs value, and the journal
// itself must be a well-formed, monotone, complete event stream — including
// when the campaign is cancelled mid-flight.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "inject/campaign.h"
#include "obs/events.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "util/cancel.h"

namespace tfsim {
namespace {

GoldenSpec SmallSpec() {
  GoldenSpec gs;
  gs.warmup = 12000;
  gs.points = 3;
  gs.spacing = 500;
  gs.window = 4000;
  gs.slack = 1000;
  return gs;
}

CampaignSpec SmallCampaign(int trials) {
  CampaignSpec spec;
  spec.workload = "gzip";
  spec.trials = trials;
  spec.golden = SmallSpec();
  return spec;
}

void ExpectSameRecords(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.trials.size(), b.trials.size());
  for (std::size_t i = 0; i < a.trials.size(); ++i) {
    EXPECT_EQ(a.trials[i].outcome, b.trials[i].outcome) << "trial " << i;
    EXPECT_EQ(a.trials[i].mode, b.trials[i].mode) << "trial " << i;
    EXPECT_EQ(a.trials[i].cat, b.trials[i].cat) << "trial " << i;
    EXPECT_EQ(a.trials[i].storage, b.trials[i].storage) << "trial " << i;
    EXPECT_EQ(a.trials[i].cycles, b.trials[i].cycles) << "trial " << i;
    EXPECT_EQ(a.trials[i].valid_instrs, b.trials[i].valid_instrs);
    EXPECT_EQ(a.trials[i].inflight, b.trials[i].inflight);
  }
  EXPECT_EQ(a.ByOutcome(), b.ByOutcome());
  EXPECT_EQ(a.ByFailureMode(), b.ByFailureMode());
  EXPECT_EQ(a.spec.CacheKey(), b.spec.CacheKey());
}

// Collects every delivered event for post-run inspection. OnEvent runs on
// the journal's drain thread; reads happen only after RunCampaign returned
// (which flushes the journal), under the same mutex for rigor.
class CollectSink : public obs::EventSink {
 public:
  void OnEvent(const obs::Event& e) override {
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(e);
  }
  std::vector<obs::Event> Events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<obs::Event> events_;
};

TEST(Telemetry, JournalOnOrOffLeavesResultsByteIdentical) {
  const CampaignSpec spec = SmallCampaign(24);
  CampaignOptions plain;
  plain.verbose = false;
  plain.use_cache = false;
  const CampaignResult baseline = RunCampaign(spec, plain);
  ASSERT_EQ(baseline.trials.size(), 24u);

  for (int jobs : {1, 4}) {
    obs::EventJournal journal;
    std::ostringstream jsonl;
    obs::JsonlEventSink file_sink(jsonl, "2026-01-01T00:00:00Z");
    journal.AddSink(&file_sink);
    obs::MetricsRegistry metrics;
    CampaignOptions opt;
    opt.verbose = false;
    opt.use_cache = false;
    opt.jobs = jobs;
    opt.obs.events = &journal;
    opt.obs.sinks.metrics = &metrics;
    const CampaignResult r = RunCampaign(spec, opt);
    journal.RemoveSink(&file_sink);
    ExpectSameRecords(baseline, r);
    // And the journal accounted for every trial exactly once.
    std::size_t trial_done = 0;
    std::istringstream lines(jsonl.str());
    std::string line;
    while (std::getline(lines, line))
      if (line.find("\"ev\":\"trial_done\"") != std::string::npos)
        ++trial_done;
    EXPECT_EQ(trial_done, r.trials.size()) << "jobs=" << jobs;
  }
}

TEST(Telemetry, JsonlStreamIsWellFormedOrderedAndComplete) {
  const CampaignSpec spec = SmallCampaign(16);
  obs::EventJournal journal;
  std::ostringstream jsonl;
  obs::JsonlEventSink file_sink(jsonl, "2026-01-01T00:00:00Z");
  journal.AddSink(&file_sink);
  CollectSink collect;
  journal.AddSink(&collect);
  obs::MetricsRegistry metrics;
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.jobs = 2;
  opt.obs.events = &journal;
  opt.obs.sinks.metrics = &metrics;
  const CampaignResult r = RunCampaign(spec, opt);
  journal.RemoveSink(&collect);
  journal.RemoveSink(&file_sink);

  // Every line is valid JSON; the first is the schema header.
  std::istringstream lines(jsonl.str());
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  ASSERT_FALSE(all.empty());
  EXPECT_NE(all.front().find("\"type\":\"header\""), std::string::npos);
  EXPECT_NE(all.front().find("\"schema_version\""), std::string::npos);
  for (const std::string& l : all) {
    std::string err;
    EXPECT_TRUE(obs::JsonLint(l, &err)) << err << "\n" << l;
  }
  // Metrics snapshots are served live, never journaled to the file.
  EXPECT_EQ(jsonl.str().find("\"ev\":\"metrics_snapshot\""), std::string::npos);

  // The delivered event stream is monotone in ts_us, brackets the campaign,
  // and covers every trial index exactly once.
  const std::vector<obs::Event> events = collect.Events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, obs::EventKind::kCampaignStart);
  EXPECT_EQ(events.back().kind, obs::EventKind::kCampaignFinish);
  EXPECT_EQ(events.back().value, r.trials.size());
  EXPECT_FALSE(events.back().interrupted);
  std::uint64_t prev_ts = 0;
  std::vector<int> seen(r.trials.size(), 0);
  for (const obs::Event& e : events) {
    EXPECT_GE(e.ts_us, prev_ts);
    prev_ts = e.ts_us;
    if (e.kind == obs::EventKind::kTrialDone) {
      ASSERT_GE(e.trial, 0);
      ASSERT_LT(static_cast<std::size_t>(e.trial), seen.size());
      seen[static_cast<std::size_t>(e.trial)]++;
      EXPECT_EQ(e.outcome, r.trials[static_cast<std::size_t>(e.trial)].outcome);
      EXPECT_FALSE(e.field.empty());
      EXPECT_GT(e.field_bits, 0u);
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], 1) << "trial " << i;
}

TEST(Telemetry, CancellationYieldsWellFormedPrefixAndInterruptedFinish) {
  const CampaignSpec spec = SmallCampaign(40);
  CancellationToken cancel;
  obs::EventJournal journal;
  std::ostringstream jsonl;
  obs::JsonlEventSink file_sink(jsonl, "2026-01-01T00:00:00Z");
  journal.AddSink(&file_sink);
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.jobs = 2;
  opt.cancel = &cancel;
  opt.obs.events = &journal;
  // Request cancellation from inside the trial loop, like a SIGINT landing
  // mid-campaign would.
  opt.trial_fault_hook = [&](std::size_t i) {
    if (i == 9) cancel.Request();
  };
  const CampaignResult r = RunCampaign(spec, opt);
  journal.RemoveSink(&file_sink);

  ASSERT_TRUE(r.interrupted);
  ASSERT_LT(r.trials.size(), 40u);

  std::istringstream lines(jsonl.str());
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  ASSERT_GE(all.size(), 3u);
  for (const std::string& l : all) {
    std::string err;
    EXPECT_TRUE(obs::JsonLint(l, &err)) << err << "\n" << l;
  }
  // The journal observed the cancellation and still closed the campaign.
  EXPECT_NE(jsonl.str().find("\"ev\":\"cancel_requested\""), std::string::npos);
  EXPECT_NE(all.back().find("\"ev\":\"campaign_finish\""), std::string::npos);
  EXPECT_NE(all.back().find("\"interrupted\":true"), std::string::npos);
  // Every kept trial produced its trial_done line (completions past the
  // discarded out-of-order tail may also appear; the kept prefix must).
  for (std::size_t i = 0; i < r.trials.size(); ++i) {
    const std::string needle = "\"trial\":" + std::to_string(i) + ",";
    EXPECT_NE(jsonl.str().find(needle), std::string::npos) << "trial " << i;
  }
}

TEST(Telemetry, RetryAndQuarantineBecomeEvents) {
  const CampaignSpec spec = SmallCampaign(8);
  obs::EventJournal journal;
  CollectSink collect;
  journal.AddSink(&collect);
  CampaignOptions opt;
  opt.verbose = false;
  opt.use_cache = false;
  opt.retries = 1;
  opt.obs.events = &journal;
  opt.trial_fault_hook = [](std::size_t i) {
    if (i == 3) throw std::runtime_error("injected host fault");
  };
  const CampaignResult r = RunCampaign(spec, opt);
  journal.RemoveSink(&collect);

  ASSERT_EQ(r.trials.size(), 8u);
  EXPECT_EQ(r.trials[3].outcome, Outcome::kTrialError);
  ASSERT_EQ(r.quarantined.size(), 1u);
  EXPECT_EQ(r.quarantined[0].index, 3u);

  int retries = 0, quarantines = 0;
  for (const obs::Event& e : collect.Events()) {
    if (e.kind == obs::EventKind::kTrialRetry) {
      ++retries;
      EXPECT_EQ(e.trial, 3);
      EXPECT_EQ(e.detail, "injected host fault");
    }
    if (e.kind == obs::EventKind::kTrialQuarantine) {
      ++quarantines;
      EXPECT_EQ(e.trial, 3);
    }
  }
  EXPECT_EQ(retries, 2);  // initial attempt + one retry, both threw
  EXPECT_EQ(quarantines, 1);
}

TEST(Telemetry, ProgressSinkReportsRateAndFinalSummary) {
  std::ostringstream out;
  obs::ProgressSink sink("test_key", 3, out);
  obs::Event start;
  start.kind = obs::EventKind::kCampaignStart;
  start.ts_us = 100;
  sink.OnEvent(start);
  for (int i = 0; i < 3; ++i) {
    obs::Event e;
    e.kind = obs::EventKind::kTrialDone;
    e.trial = i;
    e.ts_us = 200 + static_cast<std::uint64_t>(i);
    e.outcome = i == 2 ? Outcome::kSdc : Outcome::kMicroArchMatch;
    sink.OnEvent(e);
  }
  obs::Event fin;
  fin.kind = obs::EventKind::kCampaignFinish;
  fin.ts_us = 500;  // 400us elapsed: a sub-second campaign
  fin.value = 3;
  sink.OnEvent(fin);
  const std::string s = out.str();
  EXPECT_NE(s.find("3/3 trials"), std::string::npos) << s;
  EXPECT_NE(s.find("match=2"), std::string::npos) << s;
  EXPECT_NE(s.find("sdc=1"), std::string::npos) << s;
  EXPECT_NE(s.find("[done in"), std::string::npos) << s;
  // The monotonic clock gives a real (huge) rate even under a second.
  EXPECT_EQ(s.find(" 0.0 trials/s"), std::string::npos) << s;
}

TEST(Telemetry, ProgressSinkReportsInterruption) {
  std::ostringstream out;
  obs::ProgressSink sink("test_key", 10, out);
  obs::Event start;
  start.kind = obs::EventKind::kCampaignStart;
  start.ts_us = 0;
  sink.OnEvent(start);
  obs::Event e;
  e.kind = obs::EventKind::kTrialDone;
  e.trial = 0;
  e.ts_us = 50;
  e.outcome = Outcome::kMicroArchMatch;
  sink.OnEvent(e);
  obs::Event fin;
  fin.kind = obs::EventKind::kCampaignFinish;
  fin.ts_us = 90;
  fin.value = 1;
  fin.interrupted = true;
  sink.OnEvent(fin);
  const std::string s = out.str();
  EXPECT_NE(s.find("1/10 trials"), std::string::npos) << s;
  EXPECT_NE(s.find("[interrupted in"), std::string::npos) << s;
}

TEST(Telemetry, CacheHitPathStillBracketsTheJournal) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "tfi_test_cache_telemetry")
          .string();
  ::setenv("TFI_CACHE_DIR", dir.c_str(), 1);
  std::filesystem::remove_all(dir);

  const CampaignSpec spec = SmallCampaign(10);
  CampaignOptions warm;
  warm.verbose = false;
  RunCampaign(spec, warm);  // populate the cache

  obs::EventJournal journal;
  CollectSink collect;
  journal.AddSink(&collect);
  CampaignOptions opt;
  opt.verbose = false;
  opt.obs.events = &journal;
  const CampaignResult r = RunCampaign(spec, opt);
  journal.RemoveSink(&collect);
  EXPECT_EQ(r.trials.size(), 10u);

  const std::vector<obs::Event> events = collect.Events();
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events.front().kind, obs::EventKind::kCampaignStart);
  bool saw_hit = false;
  for (const obs::Event& e : events)
    saw_hit |= e.kind == obs::EventKind::kCacheHit && e.value == 10;
  EXPECT_TRUE(saw_hit);
  EXPECT_EQ(events.back().kind, obs::EventKind::kCampaignFinish);
  EXPECT_EQ(events.back().value, 10u);

  std::filesystem::remove_all(dir);
  ::unsetenv("TFI_CACHE_DIR");
}

TEST(Telemetry, MetricsExportCarriesSchemaVersionDeterministically) {
  obs::MetricsRegistry m;
  m.GetCounter("a").Inc(2);
  std::ostringstream det1, det2, timed;
  m.WriteJson(det1, /*include_timers=*/false);
  m.WriteJson(det2, /*include_timers=*/false);
  m.WriteJson(timed, /*include_timers=*/true);
  // schema_version always; generated_at (wall clock) only with timers, so
  // the deterministic export stays byte-stable.
  EXPECT_EQ(det1.str(), det2.str());
  EXPECT_NE(det1.str().find("\"schema_version\""), std::string::npos);
  EXPECT_EQ(det1.str().find("\"generated_at\""), std::string::npos);
  EXPECT_NE(timed.str().find("\"generated_at\""), std::string::npos);
}

}  // namespace
}  // namespace tfsim
