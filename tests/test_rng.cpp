#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace tfsim {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(5);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoolRespectsExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(Rng, BoolApproximatesProbability) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.25);
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.Next() == child.Next()) ++same;
  EXPECT_EQ(same, 0);
}

// Mix64(0) == 0 by construction — the state-hash contribution convention
// relies on zero values contributing nothing.
TEST(Mix64, ZeroMapsToZero) { EXPECT_EQ(Mix64(0), 0u); }

TEST(Mix64, Deterministic) {
  for (std::uint64_t x : {1ULL, 99ULL, ~0ULL}) EXPECT_EQ(Mix64(x), Mix64(x));
}

TEST(Mix64, AvalancheOnSingleBit) {
  // Flipping one input bit should flip roughly half the output bits.
  int total = 0;
  for (int b = 0; b < 64; ++b)
    total += __builtin_popcountll(Mix64(12345) ^ Mix64(12345 ^ (1ULL << b)));
  EXPECT_GT(total / 64, 20);
  EXPECT_LT(total / 64, 44);
}

}  // namespace
}  // namespace tfsim
